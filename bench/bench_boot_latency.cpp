// Table 1 reproduction: Revelio-imposed delays on first boot.
//
// The paper boots two Revelio-protected workloads — a Boundary Node (BN:
// many system services, 4 GB rootfs, total boot 22.725 s) and a CryptPad
// server (CP: few services, total boot 10.211 s) — and reports the latency
// and relative overhead of the four Revelio first-boot services:
// dm-crypt setup (611/481 ms), dm-verity setup (219/194 ms), dm-verity
// verify (4680/3340 ms) and identity creation (123/132 ms).
//
// We scale every size-dependent quantity by the same factor S = 128
// (4 GB rootfs -> 32 MB class, 84 MB crypt volume -> ~0.7 MB, service
// startup budgets /128), so the *relative* overhead structure survives the
// scaling. Revelio phases do their real cryptographic work and are
// measured in wall time; the other services charge their scaled budgets to
// the simulated clock. Expected shape: dm-verity verify dominates, CP's
// relative overheads exceed BN's (smaller total boot), identity creation
// and dm-verity setup are minor.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "imagebuild/builder.hpp"
#include "revelio/revelio_vm.hpp"

namespace {

using namespace revelio;

struct Workload {
  const char* name;
  std::size_t rootfs_payload_bytes;
  std::uint64_t data_partition_blocks;
  std::vector<vm::ServiceSpec> services;
};

// Scaled service budgets: paper totals minus Revelio phases, divided by 128.
// BN: (22725 - 5633) / 128 ~ 133 ms across many services.
// CP: (10211 - 4147) / 128 ~ 47 ms across few services.
Workload boundary_node_workload() {
  return Workload{
      "BN",
      24 << 20,  // 24 MiB service payload (4 GB class / 128, minus base)
      192,       // ~0.75 MiB crypt volume
      {
          {"systemd-networkd", "/usr/sbin/nginx", 18.0},
          {"chrony", "/usr/sbin/nginx", 9.0},
          {"ic-registry-replicator", "/opt/bn/app", 22.0},
          {"ic-boundary", "/opt/bn/app", 25.0},
          {"icx-proxy", "/opt/bn/app", 15.0},
          {"nginx", "/usr/sbin/nginx", 12.0},
          {"unbound", "/usr/sbin/nginx", 8.0},
          {"prometheus-node-exporter", "/opt/bn/app", 7.0},
          {"filebeat", "/opt/bn/app", 9.0},
          {"danted", "/opt/bn/app", 8.0},
      }};
}

Workload cryptpad_workload() {
  // The CP rootfs is smaller than the BN's but of the same order (the
  // paper's verify times, 4680 vs 3340 ms, imply a ~1.4x rootfs ratio).
  return Workload{"CP",
                  16 << 20,
                  192,
                  {
                      {"nodejs-cryptpad", "/opt/bn/app", 30.0},
                      {"nginx", "/usr/sbin/nginx", 12.0},
                      {"systemd-networkd", "/usr/sbin/nginx", 5.0},
                  }};
}

struct BootOutcome {
  vm::BootReport report;
};

imagebuild::VmImage build_workload_image(const Workload& workload) {
  imagebuild::PackageRegistry registry;
  imagebuild::BaseImage base;
  base.name = "ubuntu";
  base.tag = "20.04";
  base.packages = {{"nginx", "1.18",
                    {{"/usr/sbin/nginx",
                      to_bytes(std::string_view("nginx-binary"))}}}};
  const auto digest = registry.publish(base);

  imagebuild::BuildInputs inputs;
  inputs.base_image_digest = digest;
  Bytes payload(workload.rootfs_payload_bytes);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 2654435761u >> 11);
  }
  inputs.service_files["/opt/bn/app"] = std::move(payload);
  inputs.initrd.services = workload.services;
  inputs.initrd.allowed_inbound_ports = {"443", "8443"};
  inputs.data_partition_blocks = workload.data_partition_blocks;
  imagebuild::ImageBuilder builder(registry);
  return *builder.build(inputs);
}

BootOutcome boot_workload(const Workload& workload) {
  const auto image = build_workload_image(workload);
  SimClock clock;
  net::Network network(clock);
  sevsnp::AmdSp sp(to_bytes(std::string("platform-") + workload.name),
                   sevsnp::TcbVersion{2, 0, 8, 115});
  static crypto::HmacDrbg kds_drbg(to_bytes(std::string_view("bench-kds")));
  sevsnp::KeyDistributionServer kds(kds_drbg);
  kds.register_platform(sp);
  core::KdsService kds_service(kds, network, {"kds.amd.com", 443});

  core::RevelioVmConfig config;
  config.domain = "svc.revelio.app";
  config.host = "10.0.0.1";
  config.image = image;
  config.kds_address = {"kds.amd.com", 443};
  auto node = core::RevelioVm::deploy(sp, network, config, net::HttpRouter{});
  if (!node.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", node.error().to_string().c_str());
    std::abort();
  }
  return BootOutcome{(*node)->boot_report()};
}

void BM_FirstBoot(benchmark::State& state, const Workload& workload) {
  for (auto _ : state) {
    auto outcome = boot_workload(workload);
    benchmark::DoNotOptimize(outcome);
  }
}

void print_table1() {
  std::printf("\n=== Table 1: Revelio-imposed delays on first boot ===\n");
  struct Row {
    const char* phase;
    double paper_bn_ms;
    double paper_cp_ms;
  };
  const Row rows[] = {
      {"dm-crypt setup", 611, 481},
      {"dm-verity setup", 219, 194},
      {"dm-verity verify", 4680, 3340},
      {"identity creation", 123, 132},
  };
  const auto bn = boot_workload(boundary_node_workload());
  const auto cp = boot_workload(cryptpad_workload());
  const double bn_total = bn.report.total_sim_ms();
  const double cp_total = cp.report.total_sim_ms();

  std::printf("%-20s | %10s %9s | %10s %9s | paper ovh (BN/CP)\n", "phase",
              "BN (ms)", "ovh", "CP (ms)", "ovh");
  for (const auto& row : rows) {
    const auto* bn_phase = bn.report.find(row.phase);
    const auto* cp_phase = cp.report.find(row.phase);
    const double bn_ms = bn_phase ? bn_phase->sim_ms : 0.0;
    const double cp_ms = cp_phase ? cp_phase->sim_ms : 0.0;
    std::printf("%-20s | %10.2f %8.2f%% | %10.2f %8.2f%% | %5.2f%% / %5.2f%%\n",
                row.phase, bn_ms, bn_ms / bn_total * 100.0, cp_ms,
                cp_ms / cp_total * 100.0, row.paper_bn_ms / 22725.0 * 100.0,
                row.paper_cp_ms / 10211.0 * 100.0);
  }
  std::printf("%-20s | %10.2f          | %10.2f          | 22725 / 10211 "
              "(ms, unscaled)\n",
              "total boot", bn_total, cp_total);
  std::printf("shape: verify dominates; CP%%s exceed BN%%s; setup+identity "
              "minor\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RegisterBenchmark("BM_FirstBoot/BN", BM_FirstBoot,
                               boundary_node_workload());
  benchmark::RegisterBenchmark("BM_FirstBoot/CP", BM_FirstBoot,
                               cryptpad_workload());
  benchmark::RunSpecifiedBenchmarks();
  print_table1();
  return 0;
}

// Microbenchmarks of the from-scratch cryptographic substrate.
//
// Not a paper table, but the substrate every reproduced number sits on:
// these throughputs explain where the simulation's absolute latencies come
// from (and document the software-vs-hardware-crypto gap called out in
// EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include "crypto/drbg.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/hmac.hpp"
#include "crypto/kdf.hpp"
#include "crypto/merkle.hpp"
#include "crypto/modes.hpp"
#include "crypto/sha2.hpp"

namespace {

using namespace revelio;
using namespace revelio::crypto;

Bytes make_data(std::size_t n) {
  Bytes data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::uint8_t>(i * 167 + 13);
  }
  return data;
}

void BM_Sha256(benchmark::State& state) {
  const Bytes data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(sha256(data));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_Sha384(benchmark::State& state) {
  const Bytes data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(sha384(data));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha384)->Arg(4096)->Arg(1 << 20);

void BM_Sha256x8(benchmark::State& state) {
  // Eight equal-length messages per call — the multi-buffer shape Merkle
  // builds and the batched verifier feed. Items = lane-messages hashed.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Bytes data[Sha256x8::kLanes];
  ByteView views[Sha256x8::kLanes];
  for (std::size_t l = 0; l < Sha256x8::kLanes; ++l) {
    data[l] = make_data(n + l);
    data[l].resize(n);
    views[l] = data[l];
  }
  Digest32 out[Sha256x8::kLanes];
  for (auto _ : state) {
    sha256_x8(views, out);
    benchmark::DoNotOptimize(&out[0]);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) *
                          Sha256x8::kLanes);
}
BENCHMARK(BM_Sha256x8)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key = make_data(32);
  const Bytes data = make_data(4096);
  for (auto _ : state) benchmark::DoNotOptimize(hmac_sha256(key, data));
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_HmacSha256);

void BM_AesXtsSector(benchmark::State& state) {
  HmacDrbg drbg(to_bytes(std::string_view("bench")));
  const AesXts xts(drbg.generate(64));
  Bytes sector = make_data(4096);
  std::uint64_t i = 0;
  for (auto _ : state) {
    xts.encrypt_sector(i++, sector);
    benchmark::DoNotOptimize(sector.data());
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_AesXtsSector);

void BM_AeadSeal(benchmark::State& state) {
  HmacDrbg drbg(to_bytes(std::string_view("bench-aead")));
  const AeadCtrHmac aead(drbg.generate(64));
  const Bytes nonce = drbg.generate(16);
  const Bytes payload = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(aead.seal(nonce, {}, payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AeadSeal)->Arg(256)->Arg(16384);

void BM_EcdsaSign(benchmark::State& state, const Curve& curve) {
  HmacDrbg drbg(to_bytes(std::string_view("bench-sign")));
  const EcKeyPair kp = ec_generate(curve, drbg);
  const auto hash = sha384(make_data(100));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecdsa_sign(curve, kp.d, hash.view()));
  }
}
void BM_EcdsaVerify(benchmark::State& state, const Curve& curve) {
  HmacDrbg drbg(to_bytes(std::string_view("bench-verify")));
  const EcKeyPair kp = ec_generate(curve, drbg);
  const auto hash = sha384(make_data(100));
  const auto sig = ecdsa_sign(curve, kp.d, hash.view());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecdsa_verify(curve, kp.q, hash.view(), sig));
  }
}

void BM_EcdsaVerifyBatch(benchmark::State& state, const Curve& curve) {
  HmacDrbg drbg(to_bytes(std::string_view("bench-verify-batch")));
  const auto n = static_cast<std::size_t>(state.range(0));
  // A handful of signer keys cycling through the batch — the gateway
  // shape, where many sessions verify against a few well-known VCEKs.
  std::vector<EcKeyPair> keys;
  for (int i = 0; i < 4; ++i) keys.push_back(ec_generate(curve, drbg));
  for (const auto& kp : keys) curve.pin_verify_tables(kp.q);
  std::vector<EcdsaBatchItem> items(n);
  for (std::size_t i = 0; i < n; ++i) {
    const EcKeyPair& kp = keys[i % keys.size()];
    const auto hash = sha384(make_data(100 + i));
    items[i].pub = kp.q;
    append(items[i].msg_hash, hash.view());
    items[i].sig = ecdsa_sign(curve, kp.d, hash.view());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecdsa_verify_batch(curve, items));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

// --- scalar-multiplication paths (the fast paths vs the naive ladder) ----

void BM_ScalarMultNaive(benchmark::State& state, const Curve& curve) {
  HmacDrbg drbg(to_bytes(std::string_view("bench-naive")));
  const EcKeyPair kp = ec_generate(curve, drbg);
  const U384 k = U384::from_bytes_be(drbg.generate(48));
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.scalar_mult_naive(k, kp.q));
  }
}

void BM_ScalarMultWnaf(benchmark::State& state, const Curve& curve) {
  HmacDrbg drbg(to_bytes(std::string_view("bench-wnaf")));
  const EcKeyPair kp = ec_generate(curve, drbg);
  const U384 k = U384::from_bytes_be(drbg.generate(48));
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.scalar_mult(k, kp.q));
  }
}

void BM_ScalarMultFixedBase(benchmark::State& state, const Curve& curve) {
  HmacDrbg drbg(to_bytes(std::string_view("bench-fixed-base")));
  const U384 k = U384::from_bytes_be(drbg.generate(48));
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.scalar_mult_base(k));
  }
}

void BM_DoubleScalarMultCached(benchmark::State& state, const Curve& curve) {
  // Repeated same-key verification: after the first iteration the per-key
  // Strauss-Shamir tables come from the LRU cache — the ECDSA verify shape.
  HmacDrbg drbg(to_bytes(std::string_view("bench-double-scalar")));
  const EcKeyPair kp = ec_generate(curve, drbg);
  const U384 u1 = U384::from_bytes_be(drbg.generate(48));
  const U384 u2 = U384::from_bytes_be(drbg.generate(48));
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.double_scalar_mult_base(u1, u2, kp.q));
  }
}

void BM_Pbkdf2_1000(benchmark::State& state) {
  const Bytes password = make_data(32);
  const Bytes salt = make_data(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pbkdf2_sha256(password, salt, 1000, 64));
  }
}
BENCHMARK(BM_Pbkdf2_1000)->Unit(benchmark::kMillisecond);

void BM_MerkleBuild(benchmark::State& state) {
  const Bytes data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MerkleTree::from_blocks(data, 4096));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MerkleBuild)->Arg(1 << 20)->Arg(16 << 20);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RegisterBenchmark("BM_EcdsaSign/P256", BM_EcdsaSign,
                               std::cref(revelio::crypto::p256()));
  benchmark::RegisterBenchmark("BM_EcdsaSign/P384", BM_EcdsaSign,
                               std::cref(revelio::crypto::p384()));
  benchmark::RegisterBenchmark("BM_EcdsaVerify/P256", BM_EcdsaVerify,
                               std::cref(revelio::crypto::p256()));
  benchmark::RegisterBenchmark("BM_EcdsaVerify/P384", BM_EcdsaVerify,
                               std::cref(revelio::crypto::p384()));
  benchmark::RegisterBenchmark("BM_EcdsaVerifyBatch/P384",
                               BM_EcdsaVerifyBatch,
                               std::cref(revelio::crypto::p384()))
      ->Arg(8)
      ->Arg(64)
      ->Arg(512);
  for (const auto* curve : {&revelio::crypto::p256(),
                            &revelio::crypto::p384()}) {
    const std::string name = curve->params().name == "P-256" ? "P256" : "P384";
    benchmark::RegisterBenchmark(("BM_ScalarMultNaive/" + name).c_str(),
                                 BM_ScalarMultNaive, std::cref(*curve));
    benchmark::RegisterBenchmark(("BM_ScalarMultWnaf/" + name).c_str(),
                                 BM_ScalarMultWnaf, std::cref(*curve));
    benchmark::RegisterBenchmark(("BM_ScalarMultFixedBase/" + name).c_str(),
                                 BM_ScalarMultFixedBase, std::cref(*curve));
    benchmark::RegisterBenchmark(("BM_DoubleScalarMultCached/" + name).c_str(),
                                 BM_DoubleScalarMultCached, std::cref(*curve));
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

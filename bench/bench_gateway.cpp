// Gateway load bench: the blocking lane model vs the event-driven staged
// engine (revelio/session_engine.hpp), plus parked-session scale levels.
//
// Five families of levels, all over the same 64 identically-seeded world
// replicas (KDS + attested VM + SP + browser; identical seeds make the
// AMD certificates byte-identical, so worlds share the engine's VCEK and
// chain caches):
//
//  - "blocking":  the legacy engine.run() path at 1 and 4 workers. A
//    session holds its lane for its whole virtual duration, so the
//    makespan is the heaviest lane's sum — the baseline this PR beats.
//  - "staged":    the same 64 full-crypto sessions (fresh TLS handshake,
//    staged attestation, verified page fetch) as state machines on the
//    virtual-time event loop. Waits overlap in virtual time, so the
//    makespan collapses to roughly the slowest single session even at
//    one worker.
//  - "synthetic": 1k/10k/100k-session scale levels with deterministic
//    synthetic stage durations and a width-512 KDS admission gate. This
//    is where parked-population memory (bytes/parked session, flat by
//    construction) and same-seed bit-identical transcripts are measured:
//    the 1k and 100k levels run twice and must reproduce their digests.
//  - "chaos":     1000 full-crypto sessions over 32 lossy worlds (drop +
//    delay fault plan, retries on) with a width-8 KDS gate. The gate that
//    matters: zero unverified-trust acceptances while thousands of wakes
//    interleave.
//  - "staged_batch" (PR 8): the staged levels re-run with the engine's
//    batched verify stage on — whole wavefronts of verify-ready sessions
//    go to ecdsa_verify_batch in one pool task. The staged and
//    staged_batch pairs each run on their own fresh identically-seeded
//    world sets so their transcript digests are comparable; the
//    one-worker pair must match bit for bit (batch_digest_match), and
//    the real verify-stage time ratio is exported as
//    batch_verify_speedup.
//
// Virtual-clock numbers are deterministic and gated by run_benches.sh
// against bench/BENCH_gateway.baseline.json (chaos levels excepted: the
// fault plan keys on absolute virtual time, which inherits real boot
// timing). Real elapsed time is reported but never gated.
//
// PR 7 additions: a "recorder" level re-runs the largest quick-safe
// synthetic level with every session carrying a flight-recorder ring
// (virtual-time overhead ratio gated at <= 1.05), per-stage
// wait-vs-service quantile rows are exported per staged level, and the
// chaos level appends every verdict to a tamper-evident audit chain
// written to --audit-out for tools/audit_verify to replay offline.
//
// PR 9 additions: "restart_cold" / "restart_warm" levels measure the
// durable state tier (src/store) across a full gateway restart. Unlike
// every other level, these run over 16 worlds with PER-INDEX seeds —
// distinct AMD chips — so the cold phase pays one KDS round trip per
// world. The engine's VCEK and chain caches are attached to a KV store,
// the audit chain is persisted append-through, and the revocation set is
// store-backed. Between the phases everything in memory is destroyed
// (engine, caches, audit log, worlds) and rebuilt from the same seeds
// over the reopened store: the warm phase must serve every session with
// ZERO KDS fetches, and the audit chain must re-verify its persisted
// history before accepting a single new record. `--store-dir` points the
// tier at real files (must be a fresh/empty directory) so that
// run_benches.sh can replay the persisted chain offline with
// tools/audit_verify --store; without it the deterministic in-memory
// backend is used.
//
//   bench_gateway [--out BENCH_gateway.json]
//                 [--audit-out AUDIT_gateway.bin]
//                 [--store-dir DIR] [--quick]
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "imagebuild/builder.hpp"
#include "obs/audit_log.hpp"
#include "obs/audit_store.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "revelio/revelio_vm.hpp"
#include "revelio/revocation.hpp"
#include "revelio/session_engine.hpp"
#include "revelio/sp_node.hpp"
#include "revelio/web_extension.hpp"
#include "store/kv_store.hpp"
#include "store/storage_env.hpp"
#include "vm/hypervisor.hpp"

namespace {

using namespace revelio;

constexpr const char* kDomain = "svc.revelio.app";
constexpr const char* kKdsHost = "kds.amd.com";
constexpr const char* kBody = "<html>gateway</html>";
constexpr std::size_t kWorlds = 64;
constexpr std::size_t kFullSessions = 64;
constexpr std::size_t kChaosWorlds = 32;
constexpr std::size_t kChaosSessions = 1000;
constexpr unsigned kScaleWorkers = 8;
constexpr std::size_t kRestartWorlds = 16;

/// One complete single-threaded deployment, driven by whichever engine
/// lane holds its mutex. Identical seeds make the AMD chip/VCEK/root
/// certificates byte-identical across replicas (the platform registers
/// with the KDS at t=0), which is what lets all 64 worlds share the
/// engine's VCEK and chain caches.
struct GatewayWorld {
  explicit GatewayWorld(const std::string& seed)
      : network(clock),
        world_drbg(to_bytes("gateway-bench-" + seed)),
        kds(world_drbg),
        kds_service(kds, network, {kKdsHost, 443}),
        acme(clock, world_drbg),
        browser(network, "laptop", acme.trusted_roots(),
                crypto::HmacDrbg(to_bytes("browser-" + seed))) {
    imagebuild::BaseImage base;
    base.name = "ubuntu";
    base.tag = "20.04";
    base.packages = {{"nginx", "1.18",
                      {{"/usr/sbin/nginx",
                        to_bytes(std::string_view("nginx-binary"))}}}};
    const crypto::Digest32 base_digest = registry.publish(base);

    imagebuild::BuildInputs inputs;
    inputs.base_image_digest = base_digest;
    inputs.service_files["/opt/service/app"] =
        to_bytes(std::string_view("service-binary-v1"));
    inputs.initrd.services = {{"app", "/opt/service/app", 300.0}};
    inputs.initrd.allowed_inbound_ports = {"443", "8443"};
    imagebuild::ImageBuilder builder(registry);
    auto built = builder.build(inputs);
    if (!built.ok()) std::abort();
    image = *built;
    expected_measurement = vm::Hypervisor::expected_measurement(
        image.kernel_blob, image.initrd_blob, image.cmdline);

    net::HttpRouter routes;
    routes.route("GET", "/", [](const net::HttpRequest&) {
      return net::HttpResponse::ok(to_bytes(std::string_view(kBody)),
                                   "text/html");
    });
    platform = std::make_unique<sevsnp::AmdSp>(
        to_bytes("platform-10.0.0.1-" + seed),
        sevsnp::TcbVersion{2, 0, 8, 115});
    kds.register_platform(*platform);
    core::RevelioVmConfig config;
    config.domain = kDomain;
    config.host = "10.0.0.1";
    config.image = image;
    config.kds_address = {kKdsHost, 443};
    auto deployed =
        core::RevelioVm::deploy(*platform, network, config, routes);
    if (!deployed.ok()) std::abort();
    node = std::move(*deployed);

    core::SpNodeConfig sp_config;
    sp_config.domain = kDomain;
    sp_config.kds_address = {kKdsHost, 443};
    sp_config.expected_measurements = {expected_measurement};
    sp = std::make_unique<core::SpNode>(network, acme, sp_config);
    sp->approve_node(node->bootstrap_address(), platform->chip_id());
    if (!sp->provision_fleet().ok()) std::abort();
    network.dns_set_a(kDomain, "10.0.0.1");
  }

  core::SiteRegistration registration() {
    core::SiteRegistration site;
    site.expected_measurements = {expected_measurement};
    return site;
  }

  SimClock clock;
  net::Network network;
  crypto::HmacDrbg world_drbg;
  sevsnp::KeyDistributionServer kds;
  core::KdsService kds_service;
  pki::AcmeIssuer acme;
  core::Browser browser;
  imagebuild::PackageRegistry registry;
  imagebuild::VmImage image;
  sevsnp::Measurement expected_measurement;
  std::unique_ptr<sevsnp::AmdSp> platform;
  std::unique_ptr<core::RevelioVm> node;
  std::unique_ptr<core::SpNode> sp;
  std::mutex mu;  // one lane drives the world at a time
};

// ---------------------------------------------------------------------------
// Level result + JSON

/// One bench level, normalized across the blocking and staged engines so
/// run_benches.sh gates every mode with the same keys. Staged-only fields
/// stay zero for blocking levels.
struct Level {
  std::string mode;  // "blocking" | "staged" | "synthetic" | "chaos"
  unsigned workers = 0;
  std::size_t sessions = 0;
  std::size_t succeeded = 0;
  std::size_t failed = 0;
  std::size_t shed = 0;
  int unverified_accepts = 0;
  std::uint64_t kds_fetch_count_delta = 0;
  double virt_makespan_ms = 0.0;
  double sessions_per_virtual_sec = 0.0;
  double virt_p50_ms = 0.0;
  double virt_p95_ms = 0.0;
  double virt_p99_ms = 0.0;
  double wait_virt_ms = 0.0;
  double real_elapsed_ms = 0.0;
  double sessions_per_real_sec = 0.0;
  std::size_t peak_parked = 0;
  double parked_per_worker = 0.0;
  std::size_t peak_inflight_kds = 0;
  std::size_t peak_queue_depth = 0;
  double wake_p99_ms = 0.0;
  std::size_t engine_bytes = 0;
  double bytes_per_parked_session = 0.0;
  std::string transcript_digest;
  std::uint64_t batch_calls = 0;
  std::size_t max_stage_batch = 0;
  bool determinism_checked = false;
  bool deterministic = false;
  pki::ChainVerificationCache::Stats chain_stats;
  core::VcekCache::Stats vcek_stats;
  /// Per-stage wait-vs-service attribution (staged levels only).
  std::vector<core::SessionEngine::StagedReport::StageBreakdown> stages;
  std::size_t anomaly_dumps = 0;
  std::size_t recorder_bytes = 0;
};

void fill_from(Level& level, const core::SessionEngine::Report& r) {
  level.sessions = r.sessions;
  level.succeeded = r.succeeded;
  level.failed = r.failed;
  level.virt_makespan_ms = r.virt_makespan_ms;
  level.sessions_per_virtual_sec = r.sessions_per_virtual_sec;
  level.virt_p50_ms = r.virt_p50_ms;
  level.virt_p95_ms = r.virt_p95_ms;
  level.virt_p99_ms = r.virt_p99_ms;
  level.real_elapsed_ms = r.real_elapsed_ms;
  level.sessions_per_real_sec = r.sessions_per_real_sec;
  level.chain_stats = r.chain_stats;
  level.vcek_stats = r.vcek_stats;
}

void fill_from(Level& level, const core::SessionEngine::StagedReport& r) {
  level.sessions = r.sessions;
  level.succeeded = r.succeeded;
  level.failed = r.failed;
  level.shed = r.shed;
  level.virt_makespan_ms = r.virt_makespan_ms;
  level.sessions_per_virtual_sec = r.sessions_per_virtual_sec;
  level.virt_p50_ms = r.virt_p50_ms;
  level.virt_p95_ms = r.virt_p95_ms;
  level.virt_p99_ms = r.virt_p99_ms;
  level.wait_virt_ms = r.wait_virt_ms;
  level.real_elapsed_ms = r.real_elapsed_ms;
  level.sessions_per_real_sec = r.sessions_per_real_sec;
  level.peak_parked = r.peak_parked;
  level.parked_per_worker = r.parked_per_worker;
  level.peak_inflight_kds = r.peak_inflight_kds;
  level.peak_queue_depth = r.peak_queue_depth;
  level.wake_p99_ms = r.wake_p99_ms;
  level.engine_bytes = r.engine_bytes;
  level.bytes_per_parked_session = r.bytes_per_parked_session;
  level.transcript_digest = r.transcript_digest;
  level.batch_calls = r.batch_calls;
  level.max_stage_batch = r.max_stage_batch;
  level.chain_stats = r.chain_stats;
  level.vcek_stats = r.vcek_stats;
  level.stages = r.stage_breakdown;
  level.anomaly_dumps = r.anomaly_dumps.size();
  level.recorder_bytes = r.recorder_bytes;
}

std::string level_json(const Level& level) {
  std::string out =
      "{\"mode\":\"" + level.mode + "\"" +
      ",\"workers\":" + std::to_string(level.workers) +
      ",\"sessions\":" + std::to_string(level.sessions) +
      ",\"succeeded\":" + std::to_string(level.succeeded) +
      ",\"failed\":" + std::to_string(level.failed) +
      ",\"shed\":" + std::to_string(level.shed) +
      ",\"unverified_accepts\":" + std::to_string(level.unverified_accepts) +
      ",\"kds_fetch_count_delta\":" +
      std::to_string(level.kds_fetch_count_delta) +
      ",\"virt_makespan_ms\":" + obs::json_number(level.virt_makespan_ms) +
      ",\"sessions_per_virtual_sec\":" +
      obs::json_number(level.sessions_per_virtual_sec) +
      ",\"virt_p50_ms\":" + obs::json_number(level.virt_p50_ms) +
      ",\"virt_p95_ms\":" + obs::json_number(level.virt_p95_ms) +
      ",\"virt_p99_ms\":" + obs::json_number(level.virt_p99_ms) +
      ",\"wait_virt_ms\":" + obs::json_number(level.wait_virt_ms) +
      ",\"real_elapsed_ms\":" + obs::json_number(level.real_elapsed_ms) +
      ",\"sessions_per_real_sec\":" +
      obs::json_number(level.sessions_per_real_sec) +
      ",\"peak_parked\":" + std::to_string(level.peak_parked) +
      ",\"parked_per_worker\":" + obs::json_number(level.parked_per_worker) +
      ",\"peak_inflight_kds\":" + std::to_string(level.peak_inflight_kds) +
      ",\"peak_queue_depth\":" + std::to_string(level.peak_queue_depth) +
      ",\"wake_p99_ms\":" + obs::json_number(level.wake_p99_ms) +
      ",\"engine_bytes\":" + std::to_string(level.engine_bytes) +
      ",\"bytes_per_parked_session\":" +
      obs::json_number(level.bytes_per_parked_session) +
      ",\"transcript_digest\":\"" + level.transcript_digest + "\"" +
      ",\"batch_calls\":" + std::to_string(level.batch_calls) +
      ",\"max_stage_batch\":" + std::to_string(level.max_stage_batch);
  if (level.determinism_checked) {
    out += std::string(",\"deterministic\":") +
           (level.deterministic ? "true" : "false");
  }
  out += ",\"chain\":{\"hits\":" + std::to_string(level.chain_stats.hits) +
         ",\"misses\":" + std::to_string(level.chain_stats.misses) +
         ",\"evictions\":" + std::to_string(level.chain_stats.evictions) +
         ",\"window_rejects\":" +
         std::to_string(level.chain_stats.window_rejects) +
         ",\"store_hits\":" + std::to_string(level.chain_stats.store_hits) +
         ",\"store_write_failures\":" +
         std::to_string(level.chain_stats.store_write_failures) + "}";
  out += ",\"vcek\":{\"hits\":" + std::to_string(level.vcek_stats.hits) +
         ",\"fetches\":" + std::to_string(level.vcek_stats.fetches) +
         ",\"coalesced\":" + std::to_string(level.vcek_stats.coalesced) +
         ",\"failures\":" + std::to_string(level.vcek_stats.failures) +
         ",\"store_hits\":" + std::to_string(level.vcek_stats.store_hits) +
         ",\"store_write_failures\":" +
         std::to_string(level.vcek_stats.store_write_failures) + "}";
  // Per-stage tail attribution: where a session's virtual time goes, split
  // into I/O wait vs service, with log-bucket p50/p99 per stage. This is
  // what run_benches.sh gates stage tails against.
  out += ",\"stages\":[";
  for (std::size_t i = 0; i < level.stages.size(); ++i) {
    const auto& row = level.stages[i];
    if (i > 0) out += ",";
    out += std::string("{\"stage\":\"") + core::to_string(row.stage) +
           "\",\"count\":" + std::to_string(row.count) +
           ",\"wait_p50_ms\":" + obs::json_number(row.wait_p50_ms) +
           ",\"wait_p99_ms\":" + obs::json_number(row.wait_p99_ms) +
           ",\"service_p50_ms\":" + obs::json_number(row.service_p50_ms) +
           ",\"service_p99_ms\":" + obs::json_number(row.service_p99_ms) +
           ",\"wait_total_ms\":" + obs::json_number(row.wait_total_ms) +
           ",\"service_total_ms\":" + obs::json_number(row.service_total_ms) +
           ",\"real_p50_ms\":" + obs::json_number(row.real_p50_ms) +
           ",\"real_p99_ms\":" + obs::json_number(row.real_p99_ms) +
           ",\"real_total_ms\":" + obs::json_number(row.real_total_ms) +
           ",\"batched\":" + std::to_string(row.batched) + "}";
  }
  out += "]";
  out += ",\"anomaly_dumps\":" + std::to_string(level.anomaly_dumps) +
         ",\"recorder_bytes\":" + std::to_string(level.recorder_bytes);
  out += "}";
  return out;
}

void print_level(const Level& level) {
  std::printf("%-9s %3uw %7zu  %5zu/%-6zu %12.1f %12.1f %9zu %10.1f\n",
              level.mode.c_str(), level.workers, level.sessions,
              level.succeeded, level.sessions, level.virt_makespan_ms,
              level.sessions_per_virtual_sec, level.peak_parked,
              level.bytes_per_parked_session);
}

// ---------------------------------------------------------------------------
// Blocking levels (the legacy thread-per-session lane model)

Level run_blocking(std::vector<GatewayWorld*>& worlds, unsigned workers) {
  core::SessionEngineConfig config;
  config.workers = workers;
  core::SessionEngine engine(config);
  std::atomic<int> unverified{0};
  const std::uint64_t kds_before =
      obs::metrics().counter_value("kds.fetch.count");

  Level level;
  level.mode = "blocking";
  level.workers = workers;
  const auto report = engine.run(
      kFullSessions, [&](core::SessionContext& ctx) -> Status {
        GatewayWorld& world = *worlds[ctx.index % worlds.size()];
        std::lock_guard<std::mutex> world_lock(world.mu);
        ScopedClockCurrent clock_scope(world.clock);
        const double virt_start = world.clock.now_ms();

        world.browser.set_chain_cache(ctx.chain_cache);
        world.browser.drop_session(kDomain);
        core::WebExtensionConfig ext_config;
        ext_config.kds_address = {kKdsHost, 443};
        ext_config.shared_chain_cache = ctx.chain_cache;
        ext_config.shared_vcek_cache = ctx.vcek_cache;
        core::WebExtension extension(world.browser, ext_config);
        extension.register_site(kDomain, world.registration());

        auto verified = extension.get(kDomain, 443, "/");
        ctx.virt_ms = world.clock.now_ms() - virt_start;
        if (!verified.ok()) return verified.error();
        if (!verified->checks.all_ok()) {
          unverified.fetch_add(1);
          return Error::make("bench.unverified_trust_accepted");
        }
        return Status::success();
      });
  fill_from(level, report);
  level.unverified_accepts = unverified.load();
  level.kds_fetch_count_delta =
      obs::metrics().counter_value("kds.fetch.count") - kds_before;
  return level;
}

// ---------------------------------------------------------------------------
// Staged full-crypto levels (the event-driven state-machine path)

Level run_staged_full(std::vector<GatewayWorld*>& worlds, unsigned workers,
                      std::size_t sessions, int retry_attempts,
                      const core::AdmissionConfig& admission,
                      const char* mode, obs::AuditLog* audit = nullptr,
                      bool batch_verify = false,
                      store::KvStore* durable = nullptr,
                      RevocationSet* revocations = nullptr) {
  core::SessionEngineConfig config;
  config.workers = workers;
  config.audit_log = audit;  // shed sessions still get a rejected verdict
  core::SessionEngine engine(config);
  if (durable != nullptr) {
    // Restart levels: verified chain windows and fetched VCEK chains go
    // through the KV store, so a rebuilt engine starts warm.
    engine.chain_cache().attach_store(durable);
    engine.vcek_cache().attach_store(durable);
  }
  struct Slot {
    std::unique_ptr<core::WebExtension> ext;
    std::unique_ptr<core::WebExtension::StagedAttestation> staged;
  };
  std::vector<Slot> slots(sessions);
  std::atomic<int> unverified{0};
  const std::uint64_t kds_before =
      obs::metrics().counter_value("kds.fetch.count");

  Level level;
  level.mode = mode;
  level.workers = workers;

  // Batched verify: the engine hands over whole verify wavefronts; one
  // multi-scalar ECDSA pass + one multi-buffer hash walk covers all of
  // them. Every track (== world) in the batch is exclusively owned by
  // this one pool task — the engine only subsumes a track group when ALL
  // its ready sessions sit at the verify stage — so taking every involved
  // world lock up front cannot contend with concurrently dispatched
  // groups.
  core::BatchStageConfig batching;
  if (batch_verify) {
    batching.stage = core::SessionState::kVerify;
    batching.fn = [&](std::vector<core::StagedBatchItem>& items) {
      std::vector<GatewayWorld*> held;
      held.reserve(items.size());
      for (const auto& item : items) {
        held.push_back(worlds[item.ctx.index % worlds.size()]);
      }
      std::sort(held.begin(), held.end());
      held.erase(std::unique(held.begin(), held.end()), held.end());
      std::vector<std::unique_lock<std::mutex>> locks;
      locks.reserve(held.size());
      for (GatewayWorld* world : held) locks.emplace_back(world->mu);

      std::vector<core::WebExtension::StagedAttestation*> staged;
      staged.reserve(items.size());
      for (const auto& item : items) {
        staged.push_back(slots[item.ctx.index].staged.get());
      }
      const auto statuses = core::batch_verify_sessions(staged);
      for (std::size_t k = 0; k < items.size(); ++k) {
        // Verify is pure compute: no world clock advances, so
        // stage_virt_ms stays 0 exactly like the per-session path.
        if (statuses[k].ok()) {
          items[k].next = core::SessionState::kPageFetch;
        } else {
          items[k].ctx.failure = statuses[k];
          items[k].next = core::SessionState::kFailed;
        }
      }
    };
  }

  const auto report = engine.run_staged(
      sessions,
      [&](core::StagedContext& ctx) -> core::SessionState {
        GatewayWorld& world = *worlds[ctx.index % worlds.size()];
        std::lock_guard<std::mutex> world_lock(world.mu);
        ScopedClockCurrent clock_scope(world.clock);
        const double virt_start = world.clock.now_ms();
        Slot& slot = slots[ctx.index];
        const auto finish = [&](core::SessionState next) {
          ctx.stage_virt_ms = world.clock.now_ms() - virt_start;
          return next;
        };
        const auto fail = [&](Error error) {
          ctx.failure = std::move(error);
          return finish(core::SessionState::kFailed);
        };

        switch (ctx.state) {
          case core::SessionState::kHandshake: {
            world.browser.set_chain_cache(ctx.chain_cache);
            world.browser.drop_session(kDomain);
            core::WebExtensionConfig ext_config;
            ext_config.kds_address = {kKdsHost, 443};
            ext_config.retry.max_attempts = retry_attempts;
            ext_config.shared_chain_cache = ctx.chain_cache;
            ext_config.shared_vcek_cache = ctx.vcek_cache;
            ext_config.audit_log = audit;
            ext_config.audit_session_id = ctx.index;
            ext_config.revocation_set = revocations;
            slot.ext =
                std::make_unique<core::WebExtension>(world.browser, ext_config);
            slot.ext->register_site(kDomain, world.registration());
            slot.staged =
                std::make_unique<core::WebExtension::StagedAttestation>(
                    slot.ext->begin_session(kDomain, 443));
            auto st = slot.staged->handshake();
            if (!st.ok()) return fail(st.error());
            return finish(core::SessionState::kEvidenceFetch);
          }
          case core::SessionState::kEvidenceFetch: {
            auto st = slot.staged->fetch_evidence();
            if (!st.ok()) return fail(st.error());
            return finish(core::SessionState::kKdsFetch);
          }
          case core::SessionState::kKdsFetch: {
            auto st = slot.staged->fetch_kds();
            if (!st.ok()) return fail(st.error());
            return finish(core::SessionState::kVerify);
          }
          case core::SessionState::kVerify: {
            auto st = slot.staged->verify();
            if (!st.ok()) return fail(st.error());
            return finish(core::SessionState::kPageFetch);
          }
          case core::SessionState::kPageFetch: {
            auto page = slot.staged->fetch_page("/");
            if (!page.ok()) return fail(page.error());
            if (!slot.staged->checks().all_ok()) {
              unverified.fetch_add(1);
              return fail(Error::make("bench.unverified_trust_accepted"));
            }
            if (to_string(page->body) != kBody) {
              return fail(Error::make("bench.body_mismatch"));
            }
            return finish(core::SessionState::kDone);
          }
          default:
            return fail(Error::make("bench.unexpected_state"));
        }
      },
      admission, [&](std::size_t i) { return i % worlds.size(); }, batching);
  fill_from(level, report);
  for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
    if (!report.outcomes[i].ok()) {  // surface the first failure per level
      std::fprintf(stderr, "  [%s] first failure: session %zu: %s\n", mode, i,
                   report.outcomes[i].error().to_string().c_str());
      break;
    }
  }
  level.unverified_accepts = unverified.load();
  level.kds_fetch_count_delta =
      obs::metrics().counter_value("kds.fetch.count") - kds_before;
  return level;
}

// ---------------------------------------------------------------------------
// Synthetic scale levels (1k / 10k / 100k parked sessions)

/// Deterministic per-(session, stage) duration in [1.0, 10.6] ms —
/// a splitmix-style mixer, no RNG state, so re-runs are bit-identical.
double synth_ms(std::uint64_t index, std::uint64_t stage, std::uint64_t salt) {
  std::uint64_t x = index * 0x9E3779B97F4A7C15ull + stage * 0xBF58476D1CE4E5B9ull +
                    salt * 0x94D049BB133111EBull;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  return 1.0 + static_cast<double>(x % 97) / 10.0;
}

core::SessionEngine::StagedReport run_synthetic_once(std::size_t sessions,
                                                     bool recorder = false) {
  core::SessionEngineConfig config;
  config.workers = kScaleWorkers;
  config.isolate_obs = false;  // 500k dispatches; skip per-stage registries
  config.flight_recorder.enabled = recorder;
  core::SessionEngine engine(config);
  core::AdmissionConfig admission;
  admission.max_inflight_kds = 512;
  return engine.run_staged(
      sessions,
      [](core::StagedContext& ctx) -> core::SessionState {
        const auto stage = static_cast<std::uint64_t>(ctx.state);
        ctx.stage_virt_ms = synth_ms(ctx.index, stage, /*salt=*/29);
        switch (ctx.state) {
          case core::SessionState::kHandshake:
            return core::SessionState::kEvidenceFetch;
          case core::SessionState::kEvidenceFetch:
            return core::SessionState::kKdsFetch;
          case core::SessionState::kKdsFetch:
            return core::SessionState::kVerify;
          case core::SessionState::kVerify:
            return core::SessionState::kPageFetch;
          case core::SessionState::kPageFetch:
            return core::SessionState::kDone;
          default:
            return core::SessionState::kFailed;
        }
      },
      admission, [](std::size_t i) { return i % kWorlds; });
}

Level run_synthetic(std::size_t sessions, bool check_determinism) {
  Level level;
  level.mode = "synthetic";
  level.workers = kScaleWorkers;
  const auto report = run_synthetic_once(sessions);
  fill_from(level, report);
  if (check_determinism) {
    const auto replay = run_synthetic_once(sessions);
    level.determinism_checked = true;
    level.deterministic =
        replay.transcript_digest == report.transcript_digest &&
        replay.virt_makespan_ms == report.virt_makespan_ms;
  }
  return level;
}

/// Recorder-overhead level: the 10k synthetic run again with every session
/// carrying a live flight-recorder ring. The virtual schedule must not
/// move at all (observation must not perturb the simulation — the ratio
/// the bench gate holds at <= 1.05 is virtual time), and the real-time
/// cost is reported for information.
Level run_recorder(std::size_t sessions) {
  Level level;
  level.mode = "recorder";
  level.workers = kScaleWorkers;
  fill_from(level, run_synthetic_once(sessions, /*recorder=*/true));
  return level;
}

// ---------------------------------------------------------------------------

/// Everything the restart levels learned, exported under "restart" in the
/// JSON document for run_benches.sh to gate on.
struct RestartInfo {
  bool ran = false;
  std::string backend;  // "mem" | "real"
  double cold_p50_ms = 0.0;
  double warm_p50_ms = 0.0;
  std::uint64_t cold_fetches = 0;
  std::uint64_t warm_fetches = 0;
  std::uint64_t warm_vcek_store_hits = 0;
  std::uint64_t warm_chain_store_hits = 0;
  std::uint64_t store_write_failures = 0;
  std::uint64_t audit_restored_records = 0;
  bool audit_reverified = false;
  std::uint64_t recovery_generation = 0;
  std::size_t recovery_wal_frames = 0;
  bool recovery_truncated_tail = false;
};

int run_gateway_bench(const char* out_path, const char* audit_path,
                      const char* store_dir, bool quick) {
  std::fprintf(stderr, "building %zu world replicas...\n", kWorlds);
  const auto build_world_set = [](std::vector<std::unique_ptr<GatewayWorld>>&
                                      store) {
    store.clear();
    store.reserve(kWorlds);
    std::vector<GatewayWorld*> ptrs;
    for (std::size_t i = 0; i < kWorlds; ++i) {
      store.push_back(std::make_unique<GatewayWorld>("gw-bench-1"));
      ptrs.push_back(store.back().get());
    }
    return ptrs;
  };
  std::vector<std::unique_ptr<GatewayWorld>> world_store;
  std::vector<GatewayWorld*> worlds = build_world_set(world_store);

  std::vector<Level> levels;
  std::printf("%-9s %4s %7s  %12s %12s %12s %9s %10s\n", "mode", "wrk",
              "sess", "ok/total", "makespan(ms)", "sess/vsec", "parked",
              "B/parked");

  // Blocking vs staged on the same 64 full-crypto sessions.
  for (const unsigned workers : {1u, 4u}) {
    levels.push_back(run_blocking(worlds, workers));
    print_level(levels.back());
  }
  // Staged vs staged_batch run on their own FRESH world sets built from
  // the same seed: worlds are stateful (caches, tickets, DRBG draws), so
  // digest parity is only meaningful when both modes start from identical
  // state. Within a set the 1w level's mutations carry into the 4w level
  // the same way for both modes.
  {
    std::vector<std::unique_ptr<GatewayWorld>> staged_store;
    std::vector<GatewayWorld*> staged_worlds = build_world_set(staged_store);
    for (const unsigned workers : {1u, 4u}) {
      levels.push_back(run_staged_full(staged_worlds, workers, kFullSessions,
                                       /*retry_attempts=*/1, {}, "staged"));
      print_level(levels.back());
    }
  }

  // The same staged levels with batched verify dispatch: wavefronts of
  // sessions parked at verify go through ONE ecdsa_verify_batch +
  // multi-buffer audit hashing. Gated against "staged": bit-identical
  // transcript digest, zero unverified accepts, and less real verify time.
  {
    std::vector<std::unique_ptr<GatewayWorld>> batch_store;
    std::vector<GatewayWorld*> batch_worlds = build_world_set(batch_store);
    for (const unsigned workers : {1u, 4u}) {
      levels.push_back(run_staged_full(batch_worlds, workers, kFullSessions,
                                       /*retry_attempts=*/1, {},
                                       "staged_batch", nullptr,
                                       /*batch_verify=*/true));
      print_level(levels.back());
    }
  }

  // Warm-restart levels (PR 9): the durable state tier under a full
  // gateway restart. Per-index seeds give every world a DISTINCT chip, so
  // a cold engine pays kRestartWorlds KDS round trips; after tearing the
  // whole gateway down and reopening the store, the warm engine must pay
  // zero — every VCEK chain and verified chain window comes back through
  // the KV read-through, and the audit chain re-verifies its persisted
  // history before accepting new verdicts.
  RestartInfo restart;
  {
    std::unique_ptr<store::MemStorageEnv> mem_env;
    std::unique_ptr<store::RealStorageEnv> real_env;
    store::StorageEnv* env = nullptr;
    if (store_dir != nullptr) {
      auto opened = store::RealStorageEnv::open(store_dir);
      if (!opened.ok()) {
        std::fprintf(stderr, "cannot open --store-dir %s: %s\n", store_dir,
                     opened.error().to_string().c_str());
        return 1;
      }
      real_env = std::move(*opened);
      env = real_env.get();
      restart.backend = "real";
    } else {
      mem_env = std::make_unique<store::MemStorageEnv>();
      env = mem_env.get();
      restart.backend = "mem";
    }

    // Opens the whole durable tier: KV store, append-through audit chain
    // (history re-verified before any append), store-backed revocations.
    struct DurableTier {
      std::unique_ptr<store::KvStore> kv;
      std::optional<obs::DurableAudit> audit;
      std::unique_ptr<RevocationSet> revocations;
    };
    const auto open_tier = [&](DurableTier& tier) -> bool {
      auto kv = store::KvStore::open(*env);
      if (!kv.ok()) {
        std::fprintf(stderr, "restart: KvStore::open failed: %s\n",
                     kv.error().to_string().c_str());
        return false;
      }
      tier.kv = std::move(*kv);
      auto audit_opened = obs::open_durable_audit(*tier.kv);
      if (!audit_opened.ok()) {
        std::fprintf(stderr, "restart: open_durable_audit failed: %s\n",
                     audit_opened.error().to_string().c_str());
        return false;
      }
      tier.audit = std::move(*audit_opened);
      auto revocations = RevocationSet::open(*tier.kv);
      if (!revocations.ok()) {
        std::fprintf(stderr, "restart: RevocationSet::open failed: %s\n",
                     revocations.error().to_string().c_str());
        return false;
      }
      tier.revocations = std::move(*revocations);
      return true;
    };
    const auto build_restart_worlds =
        [](std::vector<std::unique_ptr<GatewayWorld>>& store) {
          store.clear();
          store.reserve(kRestartWorlds);
          std::vector<GatewayWorld*> ptrs;
          for (std::size_t i = 0; i < kRestartWorlds; ++i) {
            store.push_back(std::make_unique<GatewayWorld>(
                "gw-restart-" + std::to_string(i)));
            // AMD's KDS is a throttled WAN service, not a LAN neighbour:
            // charge its link a realistic 25 ms one-way latency (set after
            // construction so fleet provisioning is unaffected). The cold
            // phase pays this round trip once per world; the warm phase
            // reads the persisted chains and never touches the KDS.
            store.back()->network.set_link_latency_ms("laptop", kKdsHost,
                                                      25.0);
            ptrs.push_back(store.back().get());
          }
          return ptrs;
        };

    std::fprintf(stderr, "building %zu per-seed restart worlds...\n",
                 kRestartWorlds);
    {  // Cold phase: empty store, every world pays its own KDS fetch.
      DurableTier tier;
      if (!open_tier(tier)) return 1;
      std::vector<std::unique_ptr<GatewayWorld>> restart_store;
      auto restart_worlds = build_restart_worlds(restart_store);
      levels.push_back(run_staged_full(
          restart_worlds, /*workers=*/1, kRestartWorlds, /*retry_attempts=*/1,
          {}, "restart_cold", tier.audit->log.get(), /*batch_verify=*/false,
          tier.kv.get(), tier.revocations.get()));
      print_level(levels.back());
      restart.cold_p50_ms = levels.back().virt_p50_ms;
      restart.cold_fetches = levels.back().vcek_stats.fetches;
      restart.store_write_failures =
          levels.back().vcek_stats.store_write_failures +
          levels.back().chain_stats.store_write_failures;
    }  // <- the restart: engine, caches, audit log, and worlds all die here
    {  // Warm phase: same seeds, reopened store, rebuilt everything else.
      DurableTier tier;
      if (!open_tier(tier)) return 1;
      restart.audit_restored_records = tier.audit->restored_records;
      restart.recovery_generation = tier.kv->recovery().generation;
      restart.recovery_wal_frames = tier.kv->recovery().wal_frames_replayed;
      restart.recovery_truncated_tail = tier.kv->recovery().truncated_tail;
      std::vector<std::unique_ptr<GatewayWorld>> restart_store;
      auto restart_worlds = build_restart_worlds(restart_store);
      levels.push_back(run_staged_full(
          restart_worlds, /*workers=*/1, kRestartWorlds, /*retry_attempts=*/1,
          {}, "restart_warm", tier.audit->log.get(), /*batch_verify=*/false,
          tier.kv.get(), tier.revocations.get()));
      print_level(levels.back());
      restart.warm_p50_ms = levels.back().virt_p50_ms;
      restart.warm_fetches = levels.back().vcek_stats.fetches;
      restart.warm_vcek_store_hits = levels.back().vcek_stats.store_hits;
      restart.warm_chain_store_hits = levels.back().chain_stats.store_hits;
      restart.store_write_failures +=
          levels.back().vcek_stats.store_write_failures +
          levels.back().chain_stats.store_write_failures;
      restart.audit_reverified =
          obs::AuditLog::verify(tier.audit->log->serialize()).ok();
      restart.ran = true;
    }
    std::printf(
        "warm restart (%s store): cold p50 %.1fms / %llu fetches -> "
        "warm p50 %.1fms / %llu fetches, %llu audit records re-verified\n",
        restart.backend.c_str(), restart.cold_p50_ms,
        static_cast<unsigned long long>(restart.cold_fetches),
        restart.warm_p50_ms,
        static_cast<unsigned long long>(restart.warm_fetches),
        static_cast<unsigned long long>(restart.audit_restored_records));
  }

  // Parked-session scale: 1k / 10k / 100k synthetic state machines. The
  // 1k and 100k levels replay to prove same-seed bit-identical digests.
  const std::vector<std::size_t> scale =
      quick ? std::vector<std::size_t>{1000}
            : std::vector<std::size_t>{1000, 10000, 100000};
  for (const std::size_t sessions : scale) {
    const bool check = sessions == 1000 || sessions == 100000;
    levels.push_back(run_synthetic(sessions, check));
    print_level(levels.back());
  }

  // Flight-recorder overhead on the largest quick-safe synthetic level:
  // same sessions, rings armed on every one of them.
  const std::size_t recorder_sessions = quick ? 1000 : 10000;
  levels.push_back(run_recorder(recorder_sessions));
  print_level(levels.back());
  double recorder_overhead_virt = 0.0;
  for (const auto& level : levels) {
    if (level.mode == "synthetic" && level.sessions == recorder_sessions) {
      if (level.virt_makespan_ms > 0.0) {
        recorder_overhead_virt =
            levels.back().virt_makespan_ms / level.virt_makespan_ms;
      }
      break;
    }
  }
  std::printf("flight recorder virtual-time overhead at %zu sessions: %.4fx\n",
              recorder_sessions, recorder_overhead_virt);

  // Chaos soak: lossy links + retries over the first 32 worlds, with a
  // narrow KDS admission gate keeping the herd parked. Every verdict —
  // accepted, rejected, or shed — lands in the tamper-evident audit chain
  // that tools/audit_verify replays offline.
  obs::AuditLog audit(/*checkpoint_interval=*/64);
  if (!quick) {
    net::LinkFaultProfile lossy;
    lossy.drop_prob = 0.08;
    lossy.delay_prob = 0.2;
    lossy.delay_min_ms = 1.0;
    lossy.delay_max_ms = 6.0;
    for (std::size_t i = 0; i < kChaosWorlds; ++i) {
      net::FaultPlan plan(to_bytes("gw-bench-chaos-" + std::to_string(i)));
      plan.set_default_profile(lossy);
      worlds[i]->network.set_fault_plan(std::move(plan));
    }
    std::vector<GatewayWorld*> chaos_worlds(worlds.begin(),
                                            worlds.begin() + kChaosWorlds);
    core::AdmissionConfig admission;
    admission.max_inflight_kds = 8;
    levels.push_back(run_staged_full(chaos_worlds, kScaleWorkers,
                                     kChaosSessions, /*retry_attempts=*/5,
                                     admission, "chaos", &audit));
    print_level(levels.back());
    if (audit_path != nullptr) {
      const Bytes stream = audit.serialize();
      std::FILE* af = std::fopen(audit_path, "wb");
      if (af == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", audit_path);
        return 1;
      }
      std::fwrite(stream.data(), 1, stream.size(), af);
      std::fclose(af);
      std::fprintf(stderr, "audit chain (%llu records) written to %s\n",
                   static_cast<unsigned long long>(audit.records()),
                   audit_path);
    }
  }
  const auto audit_verified = obs::AuditLog::verify(audit.serialize());

  // Headline: virtual throughput of the staged engine vs the blocking
  // lane model at one worker — parked waits overlap, lanes don't.
  auto vsec = [&](const char* mode, unsigned workers) {
    for (const auto& level : levels) {
      if (level.mode == mode && level.workers == workers) {
        return level.sessions_per_virtual_sec;
      }
    }
    return 0.0;
  };
  const double blocking_1 = vsec("blocking", 1);
  const double staged_speedup_1w =
      blocking_1 > 0.0 ? vsec("staged", 1) / blocking_1 : 0.0;
  std::printf("staged vs blocking at 1 worker: %.1fx virtual throughput\n",
              staged_speedup_1w);

  // Batched-verify gates: real CPU time spent in the verify stage (summed
  // over both worker counts to damp scheduling noise), plus transcript
  // parity — batching must not move a single virtual-time bit.
  auto verify_real_total = [&](const char* mode) {
    double total = 0.0;
    for (const auto& level : levels) {
      if (level.mode != mode) continue;
      for (const auto& row : level.stages) {
        if (row.stage == core::SessionState::kVerify) {
          total += row.real_total_ms;
        }
      }
    }
    return total;
  };
  const double verify_real_staged = verify_real_total("staged");
  const double verify_real_batch = verify_real_total("staged_batch");
  const double batch_verify_speedup =
      verify_real_batch > 0.0 ? verify_real_staged / verify_real_batch : 0.0;
  // The bit-identical claim is gated on the single-worker pair: at one
  // worker the staged schedule is fully deterministic, so any digest delta
  // is the batch path's fault. At >1 workers WHICH session pays the
  // single-flight KDS fetch wait is decided by real thread arrival order
  // (pre-existing: plain staged 4w digests already vary run to run), so
  // those pairs usually match but cannot be promised.
  bool batch_digest_match = true;
  std::uint64_t batch_calls = 0;
  for (const auto& level : levels) {
    if (level.mode != "staged_batch") continue;
    batch_calls += level.batch_calls;
    if (level.workers != 1) continue;
    for (const auto& other : levels) {
      if (other.mode == "staged" && other.workers == level.workers) {
        batch_digest_match = batch_digest_match &&
                             other.transcript_digest ==
                                 level.transcript_digest;
      }
    }
  }
  std::printf(
      "batched verify: %.2fx less real verify time (%.1fms -> %.1fms), "
      "%llu batch calls, transcripts %s\n",
      batch_verify_speedup, verify_real_staged, verify_real_batch,
      static_cast<unsigned long long>(batch_calls),
      batch_digest_match ? "identical" : "DIVERGED");

  if (out_path == nullptr) return 0;
  std::string doc = "{\"worlds\":" + std::to_string(kWorlds) +
                    ",\"full_sessions_per_level\":" +
                    std::to_string(kFullSessions) + ",\"levels\":[";
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (i > 0) doc += ",";
    doc += level_json(levels[i]);
  }
  doc += "],\"staged_speedup_1worker\":" + obs::json_number(staged_speedup_1w);
  doc += ",\"verify_real_staged_ms\":" + obs::json_number(verify_real_staged) +
         ",\"verify_real_batch_ms\":" + obs::json_number(verify_real_batch) +
         ",\"batch_verify_speedup\":" + obs::json_number(batch_verify_speedup) +
         ",\"batch_calls\":" + std::to_string(batch_calls) +
         ",\"batch_digest_match\":" + (batch_digest_match ? "true" : "false");
  doc += ",\"recorder_overhead_virt\":" +
         obs::json_number(recorder_overhead_virt);
  doc += ",\"audit\":{\"records\":" + std::to_string(audit.records()) +
         ",\"checkpoints\":" + std::to_string(audit.checkpoints()) +
         ",\"ok\":" + (audit_verified.ok() ? "true" : "false") + "}";
  doc += ",\"restart\":{\"ran\":" + std::string(restart.ran ? "true" : "false") +
         ",\"backend\":\"" + restart.backend + "\"" +
         ",\"worlds\":" + std::to_string(kRestartWorlds) +
         ",\"cold_p50_ms\":" + obs::json_number(restart.cold_p50_ms) +
         ",\"warm_p50_ms\":" + obs::json_number(restart.warm_p50_ms) +
         ",\"cold_fetches\":" + std::to_string(restart.cold_fetches) +
         ",\"warm_fetches\":" + std::to_string(restart.warm_fetches) +
         ",\"warm_vcek_store_hits\":" +
         std::to_string(restart.warm_vcek_store_hits) +
         ",\"warm_chain_store_hits\":" +
         std::to_string(restart.warm_chain_store_hits) +
         ",\"store_write_failures\":" +
         std::to_string(restart.store_write_failures) +
         ",\"audit_restored_records\":" +
         std::to_string(restart.audit_restored_records) +
         ",\"audit_reverified\":" +
         (restart.audit_reverified ? "true" : "false") +
         ",\"recovery_generation\":" +
         std::to_string(restart.recovery_generation) +
         ",\"recovery_wal_frames\":" +
         std::to_string(restart.recovery_wal_frames) +
         ",\"recovery_truncated_tail\":" +
         (restart.recovery_truncated_tail ? "true" : "false") + "}";
  doc += "}";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  std::printf("gateway load summary written to %s\n", out_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = nullptr;
  const char* audit_path = nullptr;
  const char* store_dir = nullptr;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--audit-out") == 0 && i + 1 < argc) {
      audit_path = argv[++i];
    } else if (std::strcmp(argv[i], "--store-dir") == 0 && i + 1 < argc) {
      store_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  return run_gateway_bench(out_path, audit_path, store_dir, quick);
}

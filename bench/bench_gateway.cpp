// Gateway load bench: sessions/sec scaling of the concurrent attestation
// gateway (revelio/session_engine.hpp) at 1 / 4 / 16 / 64 concurrent
// clients.
//
// 64 identically-seeded world replicas (KDS + attested VM + SP + browser)
// are built once; each level drives 64 full client sessions — fresh TLS
// handshake, full attestation, page fetch — over a fresh SessionEngine, so
// every level starts with cold shared caches and the single-flight layer
// must collapse the VCEK stampede into exactly one KDS fetch.
//
// Throughput is measured on the virtual clock with the engine's lane
// model: session i is charged to lane i % clients, the makespan is the
// heaviest lane, sessions_per_virtual_sec = N / makespan. That number is
// deterministic (the simulated worlds are seeded), so run_benches.sh gates
// it against bench/BENCH_gateway.baseline.json and requires >= 3x scaling
// at 16 clients vs 1. Real elapsed time is reported but never gated.
//
//   bench_gateway [--out BENCH_gateway.json]
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "imagebuild/builder.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "revelio/revelio_vm.hpp"
#include "revelio/session_engine.hpp"
#include "revelio/sp_node.hpp"
#include "revelio/web_extension.hpp"
#include "vm/hypervisor.hpp"

namespace {

using namespace revelio;

constexpr const char* kDomain = "svc.revelio.app";
constexpr const char* kKdsHost = "kds.amd.com";
constexpr std::size_t kSessionsPerLevel = 64;
constexpr unsigned kLevels[] = {1, 4, 16, 64};

/// One complete single-threaded deployment, driven by whichever engine
/// lane holds its mutex. Identical seeds make the AMD chip/VCEK/root
/// certificates byte-identical across replicas (the platform registers
/// with the KDS at t=0), which is what lets all 64 worlds share the
/// engine's VCEK and chain caches.
struct GatewayWorld {
  explicit GatewayWorld(const std::string& seed)
      : network(clock),
        world_drbg(to_bytes("gateway-bench-" + seed)),
        kds(world_drbg),
        kds_service(kds, network, {kKdsHost, 443}),
        acme(clock, world_drbg),
        browser(network, "laptop", acme.trusted_roots(),
                crypto::HmacDrbg(to_bytes("browser-" + seed))) {
    imagebuild::BaseImage base;
    base.name = "ubuntu";
    base.tag = "20.04";
    base.packages = {{"nginx", "1.18",
                      {{"/usr/sbin/nginx",
                        to_bytes(std::string_view("nginx-binary"))}}}};
    const crypto::Digest32 base_digest = registry.publish(base);

    imagebuild::BuildInputs inputs;
    inputs.base_image_digest = base_digest;
    inputs.service_files["/opt/service/app"] =
        to_bytes(std::string_view("service-binary-v1"));
    inputs.initrd.services = {{"app", "/opt/service/app", 300.0}};
    inputs.initrd.allowed_inbound_ports = {"443", "8443"};
    imagebuild::ImageBuilder builder(registry);
    auto built = builder.build(inputs);
    if (!built.ok()) std::abort();
    image = *built;
    expected_measurement = vm::Hypervisor::expected_measurement(
        image.kernel_blob, image.initrd_blob, image.cmdline);

    net::HttpRouter routes;
    routes.route("GET", "/", [](const net::HttpRequest&) {
      return net::HttpResponse::ok(
          to_bytes(std::string_view("<html>gateway</html>")), "text/html");
    });
    platform = std::make_unique<sevsnp::AmdSp>(
        to_bytes("platform-10.0.0.1-" + seed),
        sevsnp::TcbVersion{2, 0, 8, 115});
    kds.register_platform(*platform);
    core::RevelioVmConfig config;
    config.domain = kDomain;
    config.host = "10.0.0.1";
    config.image = image;
    config.kds_address = {kKdsHost, 443};
    auto deployed =
        core::RevelioVm::deploy(*platform, network, config, routes);
    if (!deployed.ok()) std::abort();
    node = std::move(*deployed);

    core::SpNodeConfig sp_config;
    sp_config.domain = kDomain;
    sp_config.kds_address = {kKdsHost, 443};
    sp_config.expected_measurements = {expected_measurement};
    sp = std::make_unique<core::SpNode>(network, acme, sp_config);
    sp->approve_node(node->bootstrap_address(), platform->chip_id());
    if (!sp->provision_fleet().ok()) std::abort();
    network.dns_set_a(kDomain, "10.0.0.1");
  }

  core::SiteRegistration registration() {
    core::SiteRegistration site;
    site.expected_measurements = {expected_measurement};
    return site;
  }

  SimClock clock;
  net::Network network;
  crypto::HmacDrbg world_drbg;
  sevsnp::KeyDistributionServer kds;
  core::KdsService kds_service;
  pki::AcmeIssuer acme;
  core::Browser browser;
  imagebuild::PackageRegistry registry;
  imagebuild::VmImage image;
  sevsnp::Measurement expected_measurement;
  std::unique_ptr<sevsnp::AmdSp> platform;
  std::unique_ptr<core::RevelioVm> node;
  std::unique_ptr<core::SpNode> sp;
  std::mutex mu;  // one lane drives the world at a time
};

struct LevelResult {
  unsigned clients = 0;
  core::SessionEngine::Report report;
  int unverified_accepts = 0;
  std::uint64_t kds_fetch_count_delta = 0;
};

/// One load level: N sessions at `clients` concurrency over a FRESH engine
/// (cold shared caches — the level must re-prove the single-flight
/// guarantee). Each session locks its world, binds its clock, and runs a
/// complete fresh-profile client: new TLS handshake, full attestation via
/// the shared caches, verified page fetch.
LevelResult run_level(std::vector<std::unique_ptr<GatewayWorld>>& worlds,
                      unsigned clients) {
  core::SessionEngineConfig config;
  config.workers = clients;
  core::SessionEngine engine(config);
  std::atomic<int> unverified{0};
  const std::uint64_t kds_before =
      obs::metrics().counter_value("kds.fetch.count");

  LevelResult out;
  out.clients = clients;
  out.report = engine.run(
      kSessionsPerLevel, [&](core::SessionContext& ctx) -> Status {
        GatewayWorld& world = *worlds[ctx.index % worlds.size()];
        std::lock_guard<std::mutex> world_lock(world.mu);
        ScopedClockCurrent clock_scope(world.clock);
        const double virt_start = world.clock.now_ms();

        world.browser.set_chain_cache(ctx.chain_cache);
        world.browser.drop_session(kDomain);
        core::WebExtensionConfig ext_config;
        ext_config.kds_address = {kKdsHost, 443};
        ext_config.shared_chain_cache = ctx.chain_cache;
        ext_config.shared_vcek_cache = ctx.vcek_cache;
        core::WebExtension extension(world.browser, ext_config);
        extension.register_site(kDomain, world.registration());

        auto verified = extension.get(kDomain, 443, "/");
        ctx.virt_ms = world.clock.now_ms() - virt_start;
        if (!verified.ok()) return verified.error();
        if (!verified->checks.all_ok()) {
          unverified.fetch_add(1);
          return Error::make("bench.unverified_trust_accepted");
        }
        return Status::success();
      });
  out.unverified_accepts = unverified.load();
  out.kds_fetch_count_delta =
      obs::metrics().counter_value("kds.fetch.count") - kds_before;
  return out;
}

std::string level_json(const LevelResult& level) {
  const auto& r = level.report;
  std::string out = "{\"clients\":" + std::to_string(level.clients) +
                    ",\"sessions\":" + std::to_string(r.sessions) +
                    ",\"succeeded\":" + std::to_string(r.succeeded) +
                    ",\"failed\":" + std::to_string(r.failed) +
                    ",\"unverified_accepts\":" +
                    std::to_string(level.unverified_accepts) +
                    ",\"virt_makespan_ms\":" +
                    obs::json_number(r.virt_makespan_ms) +
                    ",\"sessions_per_virtual_sec\":" +
                    obs::json_number(r.sessions_per_virtual_sec) +
                    ",\"virt_p50_ms\":" + obs::json_number(r.virt_p50_ms) +
                    ",\"virt_p95_ms\":" + obs::json_number(r.virt_p95_ms) +
                    ",\"virt_p99_ms\":" + obs::json_number(r.virt_p99_ms) +
                    ",\"real_elapsed_ms\":" +
                    obs::json_number(r.real_elapsed_ms) +
                    ",\"sessions_per_real_sec\":" +
                    obs::json_number(r.sessions_per_real_sec) +
                    ",\"kds_fetch_count_delta\":" +
                    std::to_string(level.kds_fetch_count_delta);
  out += ",\"chain\":{\"hits\":" + std::to_string(r.chain_stats.hits) +
         ",\"misses\":" + std::to_string(r.chain_stats.misses) +
         ",\"evictions\":" + std::to_string(r.chain_stats.evictions) +
         ",\"window_rejects\":" +
         std::to_string(r.chain_stats.window_rejects) + "}";
  out += ",\"vcek\":{\"hits\":" + std::to_string(r.vcek_stats.hits) +
         ",\"fetches\":" + std::to_string(r.vcek_stats.fetches) +
         ",\"coalesced\":" + std::to_string(r.vcek_stats.coalesced) +
         ",\"failures\":" + std::to_string(r.vcek_stats.failures) + "}";
  out += "}";
  return out;
}

int run_gateway_bench(const char* out_path) {
  std::fprintf(stderr, "building %zu world replicas...\n", kSessionsPerLevel);
  std::vector<std::unique_ptr<GatewayWorld>> worlds;
  worlds.reserve(kSessionsPerLevel);
  for (std::size_t i = 0; i < kSessionsPerLevel; ++i) {
    worlds.push_back(std::make_unique<GatewayWorld>("gw-bench-1"));
  }

  std::vector<LevelResult> levels;
  std::printf("%8s %10s %14s %12s %10s %10s %10s\n", "clients", "sessions",
              "makespan(ms)", "sess/vsec", "p50(ms)", "p95(ms)", "p99(ms)");
  for (const unsigned clients : kLevels) {
    LevelResult level = run_level(worlds, clients);
    std::printf("%8u %7zu/%zu %14.1f %12.1f %10.1f %10.1f %10.1f\n",
                clients, level.report.succeeded, level.report.sessions,
                level.report.virt_makespan_ms,
                level.report.sessions_per_virtual_sec,
                level.report.virt_p50_ms, level.report.virt_p95_ms,
                level.report.virt_p99_ms);
    levels.push_back(std::move(level));
  }

  auto per_vsec = [&](unsigned clients) {
    for (const auto& level : levels) {
      if (level.clients == clients) {
        return level.report.sessions_per_virtual_sec;
      }
    }
    return 0.0;
  };
  const double base = per_vsec(1);
  const double scaling_16v1 = base > 0.0 ? per_vsec(16) / base : 0.0;
  const double scaling_64v1 = base > 0.0 ? per_vsec(64) / base : 0.0;
  std::printf("scaling: 16 clients vs 1 = %.1fx, 64 vs 1 = %.1fx\n",
              scaling_16v1, scaling_64v1);

  if (out_path == nullptr) return 0;
  std::string doc = "{\"sessions_per_level\":" +
                    std::to_string(kSessionsPerLevel) +
                    ",\"worlds\":" + std::to_string(worlds.size()) +
                    ",\"levels\":[";
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (i > 0) doc += ",";
    doc += level_json(levels[i]);
  }
  doc += "],\"scaling_16v1\":" + obs::json_number(scaling_16v1) +
         ",\"scaling_64v1\":" + obs::json_number(scaling_64v1) + "}";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  std::printf("gateway load summary written to %s\n", out_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  return run_gateway_bench(out_path);
}

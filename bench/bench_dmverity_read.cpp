// Figure 6 reproduction: dm-verity read latency.
//
// The paper reads the files of the Boundary Node's verity-protected rootfs
// (largest file 94.8 MB; sha256, 4 KiB data and hash blocks) and observes
// an average 9.35x slowdown over plain reads. The slowdown is dominated by
// verity defeating readahead (every block becomes a synchronous, verified
// read) plus the per-block hashing and hash-device accesses.
//
// Part 1: honest microbenchmarks of our real verity read path (per-block
// SHA-256 leaf hash + Merkle path verification).
// Part 2: the Fig-6 series with a calibrated device model (streaming reads
// with readahead vs synchronous verified reads); constants documented in
// EXPERIMENTS.md. Shape to reproduce: slowdown roughly an order of
// magnitude, approximately flat across file sizes.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>

#include "storage/dm_verity.hpp"
#include "storage/imagefs.hpp"
#include "storage/mem_disk.hpp"

namespace {

using namespace revelio;

constexpr std::size_t kBlockSize = 4096;

struct VerityFixture {
  VerityFixture() {
    // Build a rootfs image with files of the swept sizes.
    storage::ImageFs fs;
    for (std::size_t size = 64 << 10; size <= (16 << 20); size *= 4) {
      Bytes content(size);
      for (std::size_t i = 0; i < size; ++i) {
        content[i] = static_cast<std::uint8_t>(i * 2654435761u >> 13);
      }
      fs.add_file("/data/file-" + std::to_string(size), std::move(content));
    }
    const Bytes image = fs.serialize(kBlockSize);
    data_dev = std::make_shared<storage::MemDisk>(kBlockSize,
                                                  image.size() / kBlockSize);
    (void)data_dev->write(0, image);
    hash_dev = std::make_shared<storage::MemDisk>(
        kBlockSize, image.size() / kBlockSize + 64);
    auto meta = storage::Verity::format(*data_dev, *hash_dev);
    auto opened = storage::Verity::open(data_dev, hash_dev, meta->root_hash);
    verity_dev = *opened;
    plain_fs.emplace(*storage::MountedFs::mount(data_dev));
    verity_fs.emplace(*storage::MountedFs::mount(verity_dev));
  }

  std::shared_ptr<storage::MemDisk> data_dev;
  std::shared_ptr<storage::MemDisk> hash_dev;
  std::shared_ptr<storage::VerityDevice> verity_dev;
  std::optional<storage::MountedFs> plain_fs;
  std::optional<storage::MountedFs> verity_fs;
};

VerityFixture& fixture() {
  static VerityFixture f;
  return f;
}

void BM_VerityReadFile(benchmark::State& state) {
  const std::string path = "/data/file-" + std::to_string(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture().verity_fs->read_file(path));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * state.range(0)));
}

void BM_PlainReadFile(benchmark::State& state) {
  const std::string path = "/data/file-" + std::to_string(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture().plain_fs->read_file(path));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * state.range(0)));
}

void BM_VerityFullVerify(benchmark::State& state) {
  // The boot-time verify_all pass (Table 1's dominant first-boot service).
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture().verity_dev->verify_all());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * fixture().data_dev->size_bytes()));
}

BENCHMARK(BM_PlainReadFile)->RangeMultiplier(4)->Range(64 << 10, 16 << 20);
BENCHMARK(BM_VerityReadFile)->RangeMultiplier(4)->Range(64 << 10, 16 << 20);
BENCHMARK(BM_VerityFullVerify);

// Ablation (DESIGN.md): sensitivity of the verity hash structure to the
// data-block size. Smaller blocks mean finer-grained detection but more
// leaves and deeper trees; larger blocks amortise hashing but every read
// must verify a bigger unit. The tree build stands in for format cost;
// the per-block verify shows the read-path unit cost.
void BM_VerityBlockSizeSweepBuild(benchmark::State& state) {
  const std::size_t block_size = static_cast<std::size_t>(state.range(0));
  Bytes data(4 << 20);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::MerkleTree::from_blocks(data, block_size));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * data.size()));
  state.counters["leaves"] =
      static_cast<double>(data.size() / block_size);
}
BENCHMARK(BM_VerityBlockSizeSweepBuild)
    ->Arg(1024)->Arg(4096)->Arg(16384)->Arg(65536);

void BM_VerityBlockSizeSweepProve(benchmark::State& state) {
  const std::size_t block_size = static_cast<std::size_t>(state.range(0));
  Bytes data(4 << 20);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 37);
  }
  const auto tree = crypto::MerkleTree::from_blocks(data, block_size);
  std::size_t index = 0;
  for (auto _ : state) {
    const std::size_t i = index++ % tree.leaf_count();
    const auto leaf = crypto::MerkleTree::hash_leaf(
        ByteView(data).subspan(i * block_size, block_size));
    benchmark::DoNotOptimize(crypto::MerkleTree::verify_path(
        leaf, i, tree.path(i), tree.leaf_count(), tree.root()));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * block_size));
}
BENCHMARK(BM_VerityBlockSizeSweepProve)
    ->Arg(1024)->Arg(4096)->Arg(16384)->Arg(65536);

/// Measures our verity verification cost per 4 KiB block (hashing + path).
double measure_verify_us_per_block() {
  Bytes buffer(kBlockSize);
  constexpr int kBlocks = 2048;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kBlocks; ++i) {
    (void)fixture().verity_dev->read_block(
        static_cast<std::uint64_t>(i) % fixture().verity_dev->block_count(),
        buffer);
  }
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
             .count() /
         kBlocks;
}

void print_fig6_table() {
  // Calibration (see EXPERIMENTS.md):
  //  - plain file reads stream with readahead: ~12 us per 4 KiB block;
  //  - verity turns each block into a synchronous verified read: ~100 us
  //    device time + hash work (our software SHA-256 rescaled by 4x for a
  //    SHA-extension kernel).
  const double soft_hash_us = measure_verify_us_per_block();
  const double hw_hash_us = soft_hash_us / 4.0;
  const double kPlainStreamUs = 12.0;
  const double kVeritySyncUs = 100.0;

  std::printf("\n=== Figure 6: dm-verity read latency ===\n");
  std::printf("(measured verify: %.1f us/4KiB; modelled SHA-ext kernel: %.2f "
              "us/4KiB)\n",
              soft_hash_us, hw_hash_us);
  std::printf("%12s %14s %14s %10s\n", "file size", "plain (ms)",
              "verity (ms)", "slowdown");
  double sum = 0;
  int count = 0;
  for (std::size_t size = 64 << 10; size <= (96 << 20); size *= 4) {
    const double blocks = static_cast<double>(size) / kBlockSize;
    const double plain_ms = blocks * kPlainStreamUs / 1000.0;
    const double verity_ms =
        blocks * (kVeritySyncUs + hw_hash_us) / 1000.0;
    const double slowdown = verity_ms / plain_ms;
    sum += slowdown;
    ++count;
    std::printf("%10zu B %14.3f %14.3f %9.2fx\n", size, plain_ms, verity_ms,
                slowdown);
  }
  std::printf("average slowdown: %.2fx (paper: 9.35x)\n\n", sum / count);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_fig6_table();
  return 0;
}

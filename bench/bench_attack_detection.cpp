// Security-analysis ablation (§6.1): attack detection with and without
// Revelio's mechanisms.
//
// For each attack of the paper's security analysis (6.1.1 malicious
// kernel/initrd/cmdline via three vectors, 6.1.2 rootfs tampering, 6.1.3
// runtime modification, 6.1.4 rollback), this bench runs the attack twice:
// against a baseline deployment with the corresponding defence disabled
// (no measured boot verification / no dm-verity / no revocation) and
// against the full Revelio configuration — and reports detection plus the
// cost of the defence. This is the ablation DESIGN.md calls out for the
// measured-direct-boot and revocation design choices.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "imagebuild/builder.hpp"
#include "revelio/trusted_registry.hpp"
#include "vm/hypervisor.hpp"

namespace {

using namespace revelio;

struct Rig {
  Rig() {
    imagebuild::BaseImage base;
    base.name = "ubuntu";
    base.tag = "20.04";
    base.packages = {{"nginx", "1.18",
                      {{"/usr/sbin/nginx",
                        to_bytes(std::string_view("nginx-binary"))}}}};
    digest = registry.publish(base);
    image = build(true);
    weak_image = build(false);
    expected = vm::Hypervisor::expected_measurement(
        image.kernel_blob, image.initrd_blob, image.cmdline);
  }

  imagebuild::VmImage build(bool verity) {
    imagebuild::BuildInputs inputs;
    inputs.base_image_digest = digest;
    inputs.service_files["/opt/service/app"] =
        to_bytes(std::string_view("app-v1"));
    inputs.initrd.setup_verity = verity;
    inputs.kernel.enforce_verity = verity;
    inputs.initrd.setup_crypt = false;  // isolate the verity ablation
    inputs.initrd.services = {{"app", "/opt/service/app", 10.0}};
    imagebuild::ImageBuilder builder(registry);
    return *builder.build(inputs);
  }

  vm::LaunchConfig config_for(const imagebuild::VmImage& img) {
    vm::LaunchConfig config;
    config.kernel_blob = img.kernel_blob;
    config.initrd_blob = img.initrd_blob;
    config.cmdline = img.cmdline;
    config.disk = img.instantiate_disk();
    return config;
  }

  imagebuild::PackageRegistry registry;
  crypto::Digest32 digest;
  imagebuild::VmImage image;
  imagebuild::VmImage weak_image;  // verity disabled
  sevsnp::Measurement expected;
};

Rig& rig() {
  static Rig r;
  return r;
}

struct AttackOutcome {
  bool attack_succeeded = false;  // attacker got a running, undetected VM
  std::string detected_by;
};

/// 6.1.1 — hypervisor swaps the kernel after measurement.
AttackOutcome attack_swap_kernel(bool measured_boot_defence) {
  SimClock clock;
  sevsnp::AmdSp sp(to_bytes(std::string_view("attack-platform")),
                   sevsnp::TcbVersion{2, 0, 8, 115});
  vm::Hypervisor hypervisor(sp, clock);
  auto config = rig().config_for(rig().image);
  vm::KernelSpec evil;
  evil.enforce_verity = false;
  config.swap_kernel_after_measure = evil.serialize();
  if (!measured_boot_defence) {
    // Baseline: firmware without the hash-table check.
    config.use_malicious_firmware = true;
  }
  auto guest = hypervisor.launch(config);
  if (!guest.ok()) return {false, "firmware hash table (boot refused)"};
  // Boot succeeded locally; a verifier still compares the measurement.
  if ((*guest)->measurement() == rig().expected) {
    return {true, ""};
  }
  return {false, measured_boot_defence ? "attestation measurement"
                                       : "attestation measurement (firmware "
                                         "swap visible)"};
}

/// 6.1.2 — provider tampers with the rootfs image on disk.
AttackOutcome attack_tamper_rootfs(bool verity_defence) {
  SimClock clock;
  sevsnp::AmdSp sp(to_bytes(std::string_view("attack-platform-2")),
                   sevsnp::TcbVersion{2, 0, 8, 115});
  vm::Hypervisor hypervisor(sp, clock);
  const auto& img = verity_defence ? rig().image : rig().weak_image;
  auto config = rig().config_for(img);
  config.disk->raw_tamper(4096 * 3 + 500, 0x01);
  auto guest = hypervisor.launch(config);
  if (!guest.ok()) return {false, "launch"};
  auto report = (*guest)->boot();
  if (!report.ok()) return {false, "dm-verity (boot failed)"};
  return {true, ""};
}

/// 6.1.3 — runtime modification of a binary on the host disk.
AttackOutcome attack_runtime_tamper(bool verity_defence) {
  SimClock clock;
  sevsnp::AmdSp sp(to_bytes(std::string_view("attack-platform-3")),
                   sevsnp::TcbVersion{2, 0, 8, 115});
  vm::Hypervisor hypervisor(sp, clock);
  const auto& img = verity_defence ? rig().image : rig().weak_image;
  auto config = rig().config_for(img);
  auto disk = config.disk;
  auto guest = hypervisor.launch(config);
  if (!guest.ok() || !(*guest)->boot().ok()) return {false, "boot"};
  const auto entry = (*guest)->rootfs().directory().at("/opt/service/app");
  disk->raw_tamper(4096 + entry.offset, 0x80);
  auto read = (*guest)->rootfs().read_file("/opt/service/app");
  if (!read.ok()) return {false, "dm-verity (read failed)"};
  return {true, ""};
}

/// 6.1.4 — provider boots an obsolete (vulnerable) image.
AttackOutcome attack_rollback(bool revocation_defence) {
  // The old image is perfectly valid; only revocation catches it.
  core::TrustedRegistry registry;
  const sevsnp::Measurement old_measurement = rig().expected;
  registry.publish("svc", old_measurement);
  if (revocation_defence) {
    registry.revoke("svc", old_measurement);  // new release rolled out
  }
  if (registry.is_acceptable("svc", old_measurement)) {
    return {true, ""};
  }
  return {false, "trusted-registry revocation"};
}

void print_matrix() {
  std::printf("\n=== Security analysis (6.1): attack detection matrix ===\n");
  std::printf("%-28s | %-28s | %-28s\n", "attack", "defence disabled",
              "full Revelio");
  auto row = [](const char* name, AttackOutcome weak, AttackOutcome full) {
    std::printf("%-28s | %-28s | %-28s\n", name,
                weak.attack_succeeded ? "UNDETECTED (succeeds)"
                                      : weak.detected_by.c_str(),
                full.attack_succeeded ? "UNDETECTED (succeeds)"
                                      : full.detected_by.c_str());
  };
  row("6.1.1 kernel swap", attack_swap_kernel(false),
      attack_swap_kernel(true));
  row("6.1.2 rootfs tamper", attack_tamper_rootfs(false),
      attack_tamper_rootfs(true));
  row("6.1.3 runtime modification", attack_runtime_tamper(false),
      attack_runtime_tamper(true));
  row("6.1.4 rollback", attack_rollback(false), attack_rollback(true));
  std::printf("expected: left column mostly UNDETECTED, right column never\n\n");
}

void BM_MeasuredBootLaunch(benchmark::State& state) {
  // Cost of the defended launch path (firmware hash verification included).
  SimClock clock;
  sevsnp::AmdSp sp(to_bytes(std::string_view("bench-launch")),
                   sevsnp::TcbVersion{2, 0, 8, 115});
  vm::Hypervisor hypervisor(sp, clock);
  for (auto _ : state) {
    auto config = rig().config_for(rig().image);
    auto guest = hypervisor.launch(config);
    benchmark::DoNotOptimize(guest);
    sp.launch_reset();
  }
}

void BM_ExpectedMeasurementReconstruction(benchmark::State& state) {
  // What a verifying end-user recomputes from the public sources.
  for (auto _ : state) {
    benchmark::DoNotOptimize(vm::Hypervisor::expected_measurement(
        rig().image.kernel_blob, rig().image.initrd_blob,
        rig().image.cmdline));
  }
}

BENCHMARK(BM_MeasuredBootLaunch)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExpectedMeasurementReconstruction)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_matrix();
  return 0;
}

// Bulk-data fast path benchmarks (DESIGN.md "Storage fast path").
//
// Measures the storage-layer paths the fast-path PR optimised:
//
//  - Verity::format          — build-time Merkle construction (parallel
//                              leaf hashing + SHA-NI multi-block cores)
//  - VerityDevice::verify_all — boot-time bulk verify, O(n) leaf + O(n)
//                              inner hashes instead of O(n log n)
//  - VerityDevice::read_block — cold (full climb to the root) vs warm
//                              (short-circuit at a verified ancestor)
//  - DmCryptDevice read/write — AES-XTS sector path with cached key
//                              schedules and word-wise tweak update
//
// run_benches.sh runs this binary, writes BENCH_storage.json at the repo
// root and gates ns_per_op against bench/BENCH_storage.baseline.json
// (fails the run on a >25% regression).
#include <benchmark/benchmark.h>

#include <memory>

#include "crypto/drbg.hpp"
#include "storage/dm_crypt.hpp"
#include "storage/dm_verity.hpp"
#include "storage/mem_disk.hpp"

namespace {

using namespace revelio;

constexpr std::size_t kBlockSize = 4096;
constexpr std::uint64_t kDataBlocks = 4096;  // 16 MiB data device

Bytes patterned_block(std::uint64_t index) {
  Bytes block(kBlockSize);
  for (std::size_t i = 0; i < block.size(); ++i) {
    block[i] = static_cast<std::uint8_t>((i * 2654435761u + index * 40503u) >> 7);
  }
  return block;
}

struct VerityFixture {
  VerityFixture() {
    data_dev = std::make_shared<storage::MemDisk>(kBlockSize, kDataBlocks);
    for (std::uint64_t i = 0; i < kDataBlocks; ++i) {
      (void)data_dev->write_block(i, patterned_block(i));
    }
    hash_dev = std::make_shared<storage::MemDisk>(kBlockSize, kDataBlocks + 64);
    auto meta = storage::Verity::format(*data_dev, *hash_dev);
    root = meta->root_hash;
    device = *storage::Verity::open(data_dev, hash_dev, root);
  }

  std::shared_ptr<storage::VerityDevice> reopen() const {
    return *storage::Verity::open(data_dev, hash_dev, root);
  }

  std::shared_ptr<storage::MemDisk> data_dev;
  std::shared_ptr<storage::MemDisk> hash_dev;
  std::shared_ptr<storage::VerityDevice> device;
  crypto::Digest32 root;
};

VerityFixture& verity_fixture() {
  static VerityFixture f;
  return f;
}

void BM_VerityFormat(benchmark::State& state) {
  auto& f = verity_fixture();
  for (auto _ : state) {
    auto hash_dev =
        std::make_shared<storage::MemDisk>(kBlockSize, kDataBlocks + 64);
    auto meta = storage::Verity::format(*f.data_dev, *hash_dev);
    benchmark::DoNotOptimize(meta->root_hash);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kDataBlocks * kBlockSize);
}
BENCHMARK(BM_VerityFormat)->Unit(benchmark::kMillisecond);

void BM_VerityVerifyAll(benchmark::State& state) {
  auto& f = verity_fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.device->verify_all().ok());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kDataBlocks * kBlockSize);
}
BENCHMARK(BM_VerityVerifyAll)->Unit(benchmark::kMillisecond);

void BM_VerityReadCold(benchmark::State& state) {
  // Fresh device per pass: every read climbs to the first verified
  // ancestor, most of the tree is unverified.
  auto& f = verity_fixture();
  Bytes buf(kBlockSize);
  for (auto _ : state) {
    state.PauseTiming();
    auto device = f.reopen();
    state.ResumeTiming();
    for (std::uint64_t i = 0; i < kDataBlocks; ++i) {
      (void)device->read_block(i, buf);
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kDataBlocks * kBlockSize);
}
BENCHMARK(BM_VerityReadCold)->Unit(benchmark::kMillisecond);

void BM_VerityReadWarm(benchmark::State& state) {
  // Shared long-lived device: after the first pass every ancestor is
  // verified, so a read is one leaf hash + a bitmap probe.
  auto& f = verity_fixture();
  Bytes buf(kBlockSize);
  std::uint64_t i = 0;
  for (auto _ : state) {
    (void)f.device->read_block(i, buf);
    i = (i + 1) % kDataBlocks;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBlockSize);
}
BENCHMARK(BM_VerityReadWarm);

struct CryptFixture {
  CryptFixture() {
    auto disk = std::make_shared<storage::MemDisk>(kBlockSize, 4096);
    crypto::HmacDrbg drbg(to_bytes(std::string_view("bench-storage-crypt")));
    device = *storage::CryptVolume::format(disk, drbg.generate(32),
                                           drbg.generate(32));
    const Bytes block(kBlockSize, 0x5c);
    for (std::uint64_t i = 0; i < device->block_count(); ++i) {
      (void)device->write_block(i, block);
    }
  }
  std::shared_ptr<storage::DmCryptDevice> device;
};

CryptFixture& crypt_fixture() {
  static CryptFixture f;
  return f;
}

void BM_DmCryptReadBlock(benchmark::State& state) {
  auto& f = crypt_fixture();
  Bytes buf(kBlockSize);
  std::uint64_t i = 0;
  for (auto _ : state) {
    (void)f.device->read_block(i, buf);
    i = (i + 1) % f.device->block_count();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBlockSize);
}
BENCHMARK(BM_DmCryptReadBlock);

void BM_DmCryptWriteBlock(benchmark::State& state) {
  auto& f = crypt_fixture();
  const Bytes block(kBlockSize, 0xd6);
  std::uint64_t i = 0;
  for (auto _ : state) {
    (void)f.device->write_block(i, block);
    i = (i + 1) % f.device->block_count();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBlockSize);
}
BENCHMARK(BM_DmCryptWriteBlock);

}  // namespace

BENCHMARK_MAIN();

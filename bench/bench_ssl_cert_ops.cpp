// Table 2 reproduction: SSL certificate generation and distribution.
//
// Paper rows (one node, SP-node viewpoint):
//   attestation evidence retrieval   17 ms   (fetch report-CSR bundle)
//   attestation evidence validation  13 ms   (chain + signature + binding)
//   SSL certificate generation     2996 ms   (ACME/Let's Encrypt pipeline)
//   SSL certificate distribution     15 ms   (POST to the node)
//
// Retrieval/distribution are network round trips (simulated clock);
// validation is real cryptography (wall time); generation is the modelled
// CA pipeline latency. Times reported to google-benchmark are simulated
// seconds (manual time). An ablation at the end shows why the fleet shares
// one certificate: per-node issuance trips the CA rate limit.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "imagebuild/builder.hpp"
#include "revelio/revelio_vm.hpp"
#include "revelio/sp_node.hpp"

namespace {

using namespace revelio;

constexpr const char* kDomain = "svc.revelio.app";

struct Fleet {
  Fleet()
      : network(clock),
        drbg(to_bytes(std::string_view("bench-ssl"))),
        kds(drbg),
        kds_service(kds, network, {"kds.amd.com", 443}),
        acme(clock, drbg) {
    // Paper's SP-node <-> node link: 17 ms retrieval round trip.
    network.set_default_latency_ms(8.5);

    imagebuild::BaseImage base;
    base.name = "ubuntu";
    base.tag = "20.04";
    base.packages = {{"nginx", "1.18",
                      {{"/usr/sbin/nginx",
                        to_bytes(std::string_view("nginx-binary"))}}}};
    imagebuild::PackageRegistry registry;
    const auto digest = registry.publish(base);
    imagebuild::BuildInputs inputs;
    inputs.base_image_digest = digest;
    inputs.service_files["/opt/service/app"] =
        to_bytes(std::string_view("app-v1"));
    inputs.initrd.services = {{"app", "/opt/service/app", 50.0}};
    inputs.initrd.allowed_inbound_ports = {"443", "8443"};
    imagebuild::ImageBuilder builder(registry);
    image = *builder.build(inputs);
    expected = vm::Hypervisor::expected_measurement(
        image.kernel_blob, image.initrd_blob, image.cmdline);

    for (const std::string host : {"10.0.0.1", "10.0.0.2", "10.0.0.3"}) {
      auto platform = std::make_unique<sevsnp::AmdSp>(
          to_bytes("platform-" + host), sevsnp::TcbVersion{2, 0, 8, 115});
      kds.register_platform(*platform);
      core::RevelioVmConfig config;
      config.domain = kDomain;
      config.host = host;
      config.image = image;
      config.kds_address = {"kds.amd.com", 443};
      auto node =
          core::RevelioVm::deploy(*platform, network, config, net::HttpRouter{});
      nodes.push_back(std::move(*node));
      platforms.push_back(std::move(platform));
    }
    core::SpNodeConfig sp_config;
    sp_config.domain = kDomain;
    sp_config.kds_address = {"kds.amd.com", 443};
    sp_config.expected_measurements = {expected};
    sp = std::make_unique<core::SpNode>(network, acme, sp_config);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      sp->approve_node(nodes[i]->bootstrap_address(), platforms[i]->chip_id());
    }
  }

  SimClock clock;
  net::Network network;
  crypto::HmacDrbg drbg;
  sevsnp::KeyDistributionServer kds;
  core::KdsService kds_service;
  pki::AcmeIssuer acme;
  imagebuild::VmImage image;
  sevsnp::Measurement expected;
  std::vector<std::unique_ptr<sevsnp::AmdSp>> platforms;
  std::vector<std::unique_ptr<core::RevelioVm>> nodes;
  std::unique_ptr<core::SpNode> sp;
};

Fleet& fleet() {
  static Fleet f;
  return f;
}

/// Evidence retrieval: the GET /revelio/csr-bundle round trip.
double measure_retrieval_sim_ms() {
  auto& f = fleet();
  net::HttpRequest request;
  request.method = "GET";
  request.path = "/revelio/csr-bundle";
  request.host = kDomain;
  const double before = f.clock.now_ms();
  auto raw = f.network.call({"sp-node.internal", 9000},
                            f.nodes[0]->bootstrap_address(),
                            request.serialize());
  benchmark::DoNotOptimize(raw);
  return f.clock.now_ms() - before;
}

/// Evidence validation: pure crypto over an already-retrieved bundle.
double measure_validation_real_ms() {
  auto& f = fleet();
  const auto& bundle = f.nodes[0]->csr_evidence();
  auto vcek = f.kds.fetch_vcek(bundle.report.chip_id,
                               bundle.report.reported_tcb);
  const auto start = std::chrono::steady_clock::now();
  const bool binding = bundle.binding_ok();
  auto st = sevsnp::verify_report(bundle.report, *vcek,
                                  {f.kds.ask_certificate()},
                                  {f.kds.ark_certificate()}, {});
  benchmark::DoNotOptimize(binding);
  benchmark::DoNotOptimize(st);
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void BM_EvidenceRetrieval(benchmark::State& state) {
  for (auto _ : state) {
    state.SetIterationTime(measure_retrieval_sim_ms() / 1000.0);
  }
}

void BM_EvidenceValidation(benchmark::State& state) {
  for (auto _ : state) {
    state.SetIterationTime(measure_validation_real_ms() / 1000.0);
  }
}

void BM_CertificateGeneration(benchmark::State& state) {
  auto& f = fleet();
  for (auto _ : state) {
    const double before = f.clock.now_ms();
    const std::string token = f.acme.request_challenge("bench", kDomain);
    f.network.dns_set_txt("_acme-challenge." + std::string(kDomain), token);
    auto cert = f.acme.finalize("bench", f.nodes[0]->csr(),
                                [&](const std::string& name) {
                                  return f.network.dns_txt(name);
                                });
    f.network.dns_clear_txt("_acme-challenge." + std::string(kDomain));
    benchmark::DoNotOptimize(cert);
    state.SetIterationTime((f.clock.now_ms() - before) / 1000.0);
  }
}

void BM_FullFleetProvisioning(benchmark::State& state) {
  for (auto _ : state) {
    // Fresh fleet per iteration: provisioning is one-shot per deployment.
    state.PauseTiming();
    Fleet local;
    state.ResumeTiming();
    const double before = local.clock.now_ms();
    auto outcomes = local.sp->provision_fleet();
    benchmark::DoNotOptimize(outcomes);
    state.SetIterationTime((local.clock.now_ms() - before) / 1000.0);
  }
}

BENCHMARK(BM_EvidenceRetrieval)->UseManualTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EvidenceValidation)->UseManualTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CertificateGeneration)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);
BENCHMARK(BM_FullFleetProvisioning)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void print_table2() {
  auto& f = fleet();
  const double retrieval = measure_retrieval_sim_ms();
  const double validation = measure_validation_real_ms();

  // Generation.
  double before = f.clock.now_ms();
  const std::string token = f.acme.request_challenge("t2", kDomain);
  f.network.dns_set_txt("_acme-challenge." + std::string(kDomain), token);
  auto cert = f.acme.finalize("t2", f.nodes[0]->csr(),
                              [&](const std::string& name) {
                                return f.network.dns_txt(name);
                              });
  f.network.dns_clear_txt("_acme-challenge." + std::string(kDomain));
  const double generation = f.clock.now_ms() - before;

  // Distribution: the POST /revelio/certificate round trip (leader case
  // installs immediately, so this includes the node-side install work).
  Bytes body;
  auto field = [&body](ByteView v) {
    append_u32be(body, static_cast<std::uint32_t>(v.size()));
    append(body, v);
  };
  field(cert->serialize());
  append_u32be(body, 1);
  field(f.acme.intermediates()[0].serialize());
  field(to_bytes(f.nodes[0]->bootstrap_address().host));
  append_u32be(body, f.nodes[0]->bootstrap_address().port);
  net::HttpRequest post;
  post.method = "POST";
  post.path = "/revelio/certificate";
  post.host = kDomain;
  post.body = std::move(body);
  before = f.clock.now_ms();
  auto raw = f.network.call({"sp-node.internal", 9000},
                            f.nodes[0]->bootstrap_address(), post.serialize());
  const double distribution = f.clock.now_ms() - before;
  benchmark::DoNotOptimize(raw);

  std::printf("\n=== Table 2: SSL certificate generation and distribution ===\n");
  std::printf("%-34s %12s %10s\n", "operation", "measured", "paper");
  std::printf("%-34s %9.1f ms %7d ms\n", "attestation evidence retrieval",
              retrieval, 17);
  std::printf("%-34s %9.1f ms %7d ms\n", "attestation evidence validation",
              validation, 13);
  std::printf("%-34s %9.1f ms %7d ms\n", "SSL certificate generation",
              generation, 2996);
  std::printf("%-34s %9.1f ms %7d ms\n", "SSL certificate distribution",
              distribution, 15);
  std::printf("shape: generation dominates by ~2 orders of magnitude\n");

  // Ablation: shared certificate vs per-node certificates under the CA
  // rate limit (the design choice of §3.4.6).
  pki::AcmeConfig limited_config;
  limited_config.certs_per_domain = 5;
  SimClock ablation_clock;
  crypto::HmacDrbg ablation_drbg(to_bytes(std::string_view("ablation")));
  pki::AcmeIssuer limited(ablation_clock, ablation_drbg, limited_config);
  net::Network ablation_net(ablation_clock);
  int issued = 0, rate_limited = 0;
  for (int node = 0; node < 8; ++node) {
    crypto::HmacDrbg key_drbg(to_bytes("node" + std::to_string(node)));
    const auto key = crypto::ec_generate(crypto::p256(), key_drbg);
    const auto csr = pki::make_csr(crypto::p256(), key,
                                   {kDomain, "Svc", "US"}, {kDomain});
    const std::string t = limited.request_challenge("sp", kDomain);
    ablation_net.dns_set_txt("_acme-challenge." + std::string(kDomain), t);
    auto r = limited.finalize("sp", csr, [&](const std::string& name) {
      return ablation_net.dns_txt(name);
    });
    ablation_net.dns_clear_txt("_acme-challenge." + std::string(kDomain));
    if (r.ok()) {
      ++issued;
    } else {
      ++rate_limited;
    }
  }
  std::printf("\nablation (per-node certs, CA limit 5/window): %d issued, %d "
              "rate-limited of 8 nodes\n",
              issued, rate_limited);
  std::printf("=> the shared-certificate design needs exactly 1 issuance per "
              "fleet per 90 days\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table2();
  return 0;
}

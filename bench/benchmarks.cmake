# Benchmark targets, included from the top-level CMakeLists so that
# ${CMAKE_BINARY_DIR}/bench contains ONLY the bench binaries — the runner
# loop `for b in build/bench/*; do $b; done` must not trip over CMake
# bookkeeping files.

function(revelio_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE ${ARGN} benchmark::benchmark)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

revelio_bench(bench_crypto_primitives revelio_crypto)
revelio_bench(bench_dmcrypt_io revelio_storage)
revelio_bench(bench_dmverity_read revelio_storage)
revelio_bench(bench_storage revelio_storage)
revelio_bench(bench_boot_latency revelio_core)
revelio_bench(bench_ssl_cert_ops revelio_core)
revelio_bench(bench_client_attestation revelio_core)
revelio_bench(bench_attack_detection revelio_core)
revelio_bench(bench_gateway revelio_core)

// Table 3 reproduction: browser-based remote attestation and validation.
//
// Paper rows (mobile client, wireless, against a Revelio Boundary Node):
//   network latency                    5.2 ms
//   plain HTTP GET                   100.9 ms
//   HTTP GET + remote attestation    778.9 ms  (KDS VCEK fetch: 427.3 ms)
//   HTTP GET + connection validation 115.0 ms
//
// Link latencies are configured to the paper's observed values (client <->
// service RTT 5.2 ms, client <-> AMD KDS RTT 427.3 ms); server-side page
// work models the measured plain-GET gap. The attestation crypto is real.
// Shapes to reproduce: fresh attestation is dominated by the KDS round
// trip; once the VCEK is cached, a monitored GET costs only ~14 ms over a
// plain one.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "imagebuild/builder.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "revelio/revelio_vm.hpp"
#include "revelio/sp_node.hpp"
#include "revelio/web_extension.hpp"

namespace {

using namespace revelio;

constexpr const char* kDomain = "svc.revelio.app";
constexpr double kPageWorkMs = 90.5;  // server-side work on the app route

struct ClientRig {
  ClientRig()
      : network(clock),
        drbg(to_bytes(std::string_view("bench-client"))),
        kds(drbg),
        kds_service(kds, network, {"kds.amd.com", 443}),
        acme(clock, drbg) {
    network.set_default_latency_ms(2.6);                     // RTT 5.2 ms
    network.set_link_latency_ms("laptop", "kds.amd.com", 213.65);  // 427.3

    imagebuild::BaseImage base;
    base.name = "ubuntu";
    base.tag = "20.04";
    base.packages = {{"nginx", "1.18",
                      {{"/usr/sbin/nginx",
                        to_bytes(std::string_view("nginx-binary"))}}}};
    imagebuild::PackageRegistry registry;
    const auto digest = registry.publish(base);
    imagebuild::BuildInputs inputs;
    inputs.base_image_digest = digest;
    inputs.service_files["/opt/service/app"] =
        to_bytes(std::string_view("bn-v1"));
    inputs.initrd.services = {{"app", "/opt/service/app", 50.0}};
    inputs.initrd.allowed_inbound_ports = {"443", "8443"};
    imagebuild::ImageBuilder builder(registry);
    const auto image = *builder.build(inputs);
    expected = vm::Hypervisor::expected_measurement(
        image.kernel_blob, image.initrd_blob, image.cmdline);

    platform = std::make_unique<sevsnp::AmdSp>(
        to_bytes(std::string_view("client-bench-platform")),
        sevsnp::TcbVersion{2, 0, 8, 115});
    kds.register_platform(*platform);

    net::HttpRouter routes;
    SimClock* clock_ptr = &clock;
    routes.route("GET", "/", [clock_ptr](const net::HttpRequest&) {
      clock_ptr->advance_ms(kPageWorkMs);  // page assembly + app logic
      return net::HttpResponse::ok(
          to_bytes(std::string_view("<html>boundary node</html>")),
          "text/html");
    });
    core::RevelioVmConfig config;
    config.domain = kDomain;
    config.host = "10.0.0.1";
    config.image = image;
    config.kds_address = {"kds.amd.com", 443};
    auto deployed = core::RevelioVm::deploy(*platform, network, config,
                                            std::move(routes));
    node = std::move(*deployed);

    core::SpNodeConfig sp_config;
    sp_config.domain = kDomain;
    sp_config.kds_address = {"kds.amd.com", 443};
    sp_config.expected_measurements = {expected};
    sp = std::make_unique<core::SpNode>(network, acme, sp_config);
    sp->approve_node(node->bootstrap_address(), platform->chip_id());
    auto outcomes = sp->provision_fleet();
    if (!outcomes.ok()) std::abort();
    network.dns_set_a(kDomain, "10.0.0.1");
  }

  core::Browser make_browser() {
    return core::Browser(network, "laptop", acme.trusted_roots(),
                         crypto::HmacDrbg(drbg.generate(32)));
  }
  core::WebExtension make_extension(core::Browser& browser) {
    core::WebExtensionConfig config;
    config.kds_address = {"kds.amd.com", 443};
    return make_extension(browser, config);
  }
  core::WebExtension make_extension(core::Browser& browser,
                                    core::WebExtensionConfig config) {
    core::WebExtension ext(browser, config);
    core::SiteRegistration site;
    site.expected_measurements = {expected};
    ext.register_site(kDomain, site);
    return ext;
  }

  SimClock clock;
  net::Network network;
  crypto::HmacDrbg drbg;
  sevsnp::KeyDistributionServer kds;
  core::KdsService kds_service;
  pki::AcmeIssuer acme;
  sevsnp::Measurement expected;
  std::unique_ptr<sevsnp::AmdSp> platform;
  std::unique_ptr<core::RevelioVm> node;
  std::unique_ptr<core::SpNode> sp;
};

ClientRig& rig() {
  static ClientRig r;
  return r;
}

void BM_NetworkLatency(benchmark::State& state) {
  auto& r = rig();
  r.network.listen({"10.0.0.9", 7}, [](ByteView req, const net::Address&) {
    return to_bytes(req);
  });
  for (auto _ : state) {
    const double before = r.clock.now_ms();
    benchmark::DoNotOptimize(
        r.network.call({"laptop", 1}, {"10.0.0.9", 7}, {}));
    state.SetIterationTime((r.clock.now_ms() - before) / 1000.0);
  }
}

void BM_PlainHttpGet(benchmark::State& state) {
  auto& r = rig();
  core::Browser browser = r.make_browser();
  (void)browser.get(kDomain, 443, "/");  // establish the session
  for (auto _ : state) {
    const double before = r.clock.now_ms();
    benchmark::DoNotOptimize(browser.get(kDomain, 443, "/"));
    state.SetIterationTime((r.clock.now_ms() - before) / 1000.0);
  }
}

void BM_GetWithRemoteAttestation(benchmark::State& state) {
  auto& r = rig();
  for (auto _ : state) {
    // Fresh browser + cold VCEK cache: the paper's "fresh web session".
    core::Browser browser = r.make_browser();
    core::WebExtension extension = r.make_extension(browser);
    const double before = r.clock.now_ms();
    auto verified = extension.get(kDomain, 443, "/");
    benchmark::DoNotOptimize(verified);
    state.SetIterationTime((r.clock.now_ms() - before) / 1000.0);
  }
}

void BM_GetWithCachedVcek(benchmark::State& state) {
  auto& r = rig();
  core::Browser browser = r.make_browser();
  core::WebExtension extension = r.make_extension(browser);
  (void)extension.get(kDomain, 443, "/");  // warm the VCEK cache
  for (auto _ : state) {
    browser.drop_session(kDomain);
    extension.invalidate(kDomain);
    const double before = r.clock.now_ms();
    benchmark::DoNotOptimize(extension.get(kDomain, 443, "/"));
    state.SetIterationTime((r.clock.now_ms() - before) / 1000.0);
  }
}

void BM_GetWithConnectionValidation(benchmark::State& state) {
  auto& r = rig();
  core::Browser browser = r.make_browser();
  core::WebExtension extension = r.make_extension(browser);
  (void)extension.get(kDomain, 443, "/");  // attested session
  for (auto _ : state) {
    const double before = r.clock.now_ms();
    benchmark::DoNotOptimize(extension.get(kDomain, 443, "/"));
    state.SetIterationTime((r.clock.now_ms() - before) / 1000.0);
  }
}

BENCHMARK(BM_NetworkLatency)->UseManualTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PlainHttpGet)->UseManualTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GetWithRemoteAttestation)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);
BENCHMARK(BM_GetWithCachedVcek)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);
BENCHMARK(BM_GetWithConnectionValidation)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void print_table3() {
  auto& r = rig();
  auto measure = [&](auto&& fn) {
    const double before = r.clock.now_ms();
    fn();
    return r.clock.now_ms() - before;
  };

  r.network.listen({"10.0.0.9", 7}, [](ByteView req, const net::Address&) {
    return to_bytes(req);
  });
  const double net_ms = measure([&] {
    (void)r.network.call({"laptop", 1}, {"10.0.0.9", 7}, {});
  });

  core::Browser plain_browser = r.make_browser();
  (void)plain_browser.get(kDomain, 443, "/");
  const double plain_ms = measure([&] {
    (void)plain_browser.get(kDomain, 443, "/");
  });

  core::Browser fresh_browser = r.make_browser();
  core::WebExtension fresh_ext = r.make_extension(fresh_browser);
  double kds_ms = 0.0;
  const double attest_ms = measure([&] {
    (void)fresh_ext.get(kDomain, 443, "/");
  });
  {
    // Isolate the KDS round trip.
    const double before = r.clock.now_ms();
    (void)core::KdsService::fetch(
        r.network, {"laptop", 2}, {"kds.amd.com", 443}, r.platform->chip_id(),
        r.platform->tcb());
    kds_ms = r.clock.now_ms() - before;
  }

  const double monitored_ms = measure([&] {
    (void)fresh_ext.get(kDomain, 443, "/");
  });

  core::Browser cached_browser = r.make_browser();
  core::WebExtension cached_ext = r.make_extension(cached_browser);
  (void)cached_ext.get(kDomain, 443, "/");
  cached_browser.drop_session(kDomain);
  cached_ext.invalidate(kDomain);
  const double cached_attest_ms = measure([&] {
    (void)cached_ext.get(kDomain, 443, "/");
  });

  std::printf("\n=== Table 3: browser-based remote attestation ===\n");
  std::printf("%-36s %12s %10s\n", "operation", "measured", "paper");
  std::printf("%-36s %9.1f ms %7.1f ms\n", "network latency (RTT)", net_ms,
              5.2);
  std::printf("%-36s %9.1f ms %7.1f ms\n", "plain HTTP GET", plain_ms, 100.9);
  std::printf("%-36s %9.1f ms %7.1f ms\n", "HTTP GET + remote attestation",
              attest_ms, 778.9);
  std::printf("%-36s %9.1f ms %7.1f ms\n", "  of which KDS VCEK fetch",
              kds_ms, 427.3);
  std::printf("%-36s %9.1f ms %7s\n", "HTTP GET + attestation (VCEK cached)",
              cached_attest_ms, "n/a");
  std::printf("%-36s %9.1f ms %7.1f ms\n", "HTTP GET + conn. validation",
              monitored_ms, 115.0);
  std::printf("shape: fresh attestation dominated by the KDS round trip; "
              "caching collapses it;\n"
              "       monitored requests cost ~14 ms over plain\n\n");
}

// --stages-out mode: one attested GET with tracing on, aggregated per span
// name. Virtual-clock stage totals are deterministic, so run_benches.sh can
// diff them against a committed baseline without noise.
std::string run_traced_get(core::WebExtension& extension) {
  auto& r = rig();
  obs::tracer().clear();
  const double before = r.clock.now_ms();
  auto verified = extension.get(kDomain, 443, "/");
  if (!verified.ok()) std::abort();
  const double total_virt_ms = r.clock.now_ms() - before;

  struct Agg {
    std::uint64_t count = 0;
    double virt_us = 0.0;
    double real_us = 0.0;
  };
  std::map<std::string, Agg> stages;
  for (const auto& span : obs::tracer().finished_spans()) {
    Agg& agg = stages[span.name];
    ++agg.count;
    agg.virt_us += span.virt_us();
    agg.real_us += span.real_us();
  }

  std::string out = "{\"total_virt_ms\":" + obs::json_number(total_virt_ms) +
                    ",\"stages\":{";
  bool first = true;
  for (const auto& [name, agg] : stages) {
    if (!first) out += ",";
    first = false;
    out += "\"" + obs::json_escape(name) + "\":{\"count\":" +
           std::to_string(agg.count) +
           ",\"virt_ms\":" + obs::json_number(agg.virt_us / 1000.0) +
           ",\"real_ms\":" + obs::json_number(agg.real_us / 1000.0) + "}";
  }
  out += "}}";
  return out;
}

int run_stages_out(const char* path) {
  auto& r = rig();
  obs::tracer().set_enabled(true);

  // Cold: fresh browser + extension, empty VCEK and chain caches.
  core::Browser browser = r.make_browser();
  core::WebExtension extension = r.make_extension(browser);
  const std::string cold = run_traced_get(extension);

  // Cached: drop the session and the attested state, keep the caches — the
  // re-attestation skips the KDS round trip and the chain walk.
  browser.drop_session(kDomain);
  extension.invalidate(kDomain);
  const std::string cached = run_traced_get(extension);

  obs::tracer().set_enabled(false);

  // Fault-free overhead of the resilience layer: monitored GETs on an
  // attested session, with the retry/failover machinery disabled
  // (max_attempts = 1, the default) vs fully armed (retries, a KDS mirror
  // list, a per-pass deadline). The virtual-clock delta is the honest
  // measure — backoff is the only thing the layer may charge, and on the
  // fault-free path it must charge none. run_benches.sh gates the
  // percentage at < 2%.
  constexpr int kOverheadIters = 25;
  auto monitored_virt_ms = [&](core::WebExtensionConfig config) {
    core::Browser b = r.make_browser();
    core::WebExtension ext = r.make_extension(b, std::move(config));
    auto warm = ext.get(kDomain, 443, "/");
    if (!warm.ok()) std::abort();
    const double before = r.clock.now_ms();
    for (int i = 0; i < kOverheadIters; ++i) {
      if (!ext.get(kDomain, 443, "/").ok()) std::abort();
    }
    return (r.clock.now_ms() - before) / kOverheadIters;
  };
  core::WebExtensionConfig plain_config;
  plain_config.kds_address = {"kds.amd.com", 443};
  const double plain_virt_ms = monitored_virt_ms(plain_config);
  core::WebExtensionConfig resilient_config = plain_config;
  resilient_config.kds_mirrors = {{"kds-mirror.amd.com", 443}};
  resilient_config.retry.max_attempts = 4;
  resilient_config.attest_deadline_ms = 30'000.0;
  const double resilient_virt_ms = monitored_virt_ms(resilient_config);
  const double overhead_pct =
      plain_virt_ms > 0.0
          ? (resilient_virt_ms - plain_virt_ms) / plain_virt_ms * 100.0
          : 0.0;
  const std::string retry_overhead =
      "{\"plain_virt_ms\":" + obs::json_number(plain_virt_ms) +
      ",\"resilient_virt_ms\":" + obs::json_number(resilient_virt_ms) +
      ",\"overhead_pct\":" + obs::json_number(overhead_pct) + "}";

  const std::string doc = "{\"cold\":" + cold + ",\"cached\":" + cached +
                          ",\"retry_overhead\":" + retry_overhead + "}";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  std::printf("per-stage attestation breakdown written to %s\n", path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stages-out") == 0 && i + 1 < argc) {
      return run_stages_out(argv[i + 1]);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table3();
  return 0;
}

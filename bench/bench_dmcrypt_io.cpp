// Figure 5 reproduction: dm-crypt I/O latency.
//
// The paper issues dd-style sequential 4 KiB I/O (totals up to 256 MiB)
// against a 10 GB aes-xts-plain64 volume and reports read/write latency
// with and without encryption: read overhead min ~2 % avg ~26 %, write
// overhead min ~0.4 % avg ~12 %.
//
// Two parts here:
//  1. Honest microbenchmarks of our real dm-crypt path (AES-NI when the
//     CPU has it, scalar AES otherwise — set REVELIO_NO_ISA=1 to compare).
//  2. A calibrated Fig-5 table: measured XTS work rescaled to an AES-NI
//     class cipher and combined with a representative block-device model
//     (constants documented in EXPERIMENTS.md). The *shape* to reproduce:
//     reads suffer more than writes, overheads in the tens of percent,
//     shrinking as transfer size grows.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>

#include "crypto/drbg.hpp"
#include "crypto/kdf.hpp"
#include "storage/dm_crypt.hpp"
#include "storage/mem_disk.hpp"

namespace {

using namespace revelio;

constexpr std::size_t kBlockSize = 4096;
constexpr std::uint64_t kVolumeBlocks = 16 * 1024;  // 64 MiB backing volume

struct CryptVolumeFixture {
  CryptVolumeFixture() {
    auto disk = std::make_shared<storage::MemDisk>(kBlockSize, kVolumeBlocks);
    crypto::HmacDrbg drbg(to_bytes(std::string_view("bench-crypt")));
    auto formatted = storage::CryptVolume::format(disk, drbg.generate(32),
                                                  drbg.generate(32));
    device = *formatted;
    Bytes buffer(kBlockSize, 0x7a);
    for (std::uint64_t i = 0; i < device->block_count(); ++i) {
      (void)device->write_block(i, buffer);
    }
  }
  std::shared_ptr<storage::DmCryptDevice> device;
};

CryptVolumeFixture& fixture() {
  static CryptVolumeFixture f;
  return f;
}

void BM_CryptReadBlock(benchmark::State& state) {
  Bytes buffer(kBlockSize);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture().device->read_block(i++ % fixture().device->block_count(),
                                     buffer));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * kBlockSize));
}

void BM_CryptWriteBlock(benchmark::State& state) {
  Bytes buffer(kBlockSize, 0x55);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture().device->write_block(i++ % fixture().device->block_count(),
                                      buffer));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * kBlockSize));
}

void BM_Pbkdf2KeySlot(benchmark::State& state) {
  // cryptsetup's pbkdf2 with 1000 iterations (the paper's configuration).
  const Bytes password = to_bytes(std::string_view("sealing-key"));
  const Bytes salt = to_bytes(std::string_view("0123456789abcdef0123456789abcdef"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::pbkdf2_sha256(password, salt, 1000, 64));
  }
}

BENCHMARK(BM_CryptReadBlock);
BENCHMARK(BM_CryptWriteBlock);
BENCHMARK(BM_Pbkdf2KeySlot);

/// Measures our software XTS cost per 4 KiB block (decrypt path).
double measure_soft_xts_us_per_block() {
  Bytes buffer(kBlockSize);
  constexpr int kBlocks = 2048;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kBlocks; ++i) {
    (void)fixture().device->read_block(
        static_cast<std::uint64_t>(i) % fixture().device->block_count(),
        buffer);
  }
  const double total_us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  return total_us / kBlocks;
}

void print_fig5_table() {
  // Calibration model (see EXPERIMENTS.md):
  //  - AES-NI-class XTS is ~50x our table-free software AES.
  //  - Device model: sync 4 KiB read 120 us; sync 4 KiB write 250 us
  //    (writes also pay the journal/flush path, hence the paper's lower
  //    *relative* crypt overhead on writes).
  //  - dm-crypt adds a fixed kcryptd workqueue hop of ~25 us per request,
  //    amortised across the blocks of larger requests.
  const double soft_us = measure_soft_xts_us_per_block();
  // dm-crypt per-block cost on the paper's machine: AES-NI cipher work
  // (~2 us / 4 KiB at ~2 GB/s) plus kcryptd bio handling (~28 us).
  const double kCryptPerBlockUs = 30.0;
  const double kReadDeviceUs = 120.0;
  const double kWriteDeviceUs = 250.0;

  std::printf("\n=== Figure 5: dm-crypt I/O latency ===\n");
  std::printf("(measured soft-XTS: %.1f us/4KiB; modelled dm-crypt cost: "
              "%.1f us/4KiB before pipelining)\n",
              soft_us, kCryptPerBlockUs);
  std::printf("%12s | %10s %10s %9s | %10s %10s %9s\n", "total size",
              "read plain", "read crypt", "ovh", "write plain", "write crypt",
              "ovh");
  double read_sum = 0, write_sum = 0, read_min = 1e9, write_min = 1e9;
  int count = 0;
  for (std::int64_t size = 4 << 10; size <= (256 << 20);
       size *= 4) {
    const double blocks = static_cast<double>(size) / kBlockSize;
    // Pipelining: with deeper queues the kcryptd workers overlap crypto
    // with device I/O, hiding up to ~8x of the per-block cost — this is
    // what makes the paper's overhead shrink for large transfers.
    const double overlap = std::min(8.0, std::max(1.0, blocks / 4.0));
    const double visible_crypt_us = blocks * kCryptPerBlockUs / overlap;
    const double read_plain = blocks * kReadDeviceUs;
    const double read_crypt = read_plain + visible_crypt_us;
    const double write_plain = blocks * kWriteDeviceUs;
    const double write_crypt = write_plain + visible_crypt_us;
    const double read_ovh = (read_crypt / read_plain - 1.0) * 100.0;
    const double write_ovh = (write_crypt / write_plain - 1.0) * 100.0;
    read_sum += read_ovh;
    write_sum += write_ovh;
    read_min = std::min(read_min, read_ovh);
    write_min = std::min(write_min, write_ovh);
    ++count;
    std::printf("%10lld B | %8.2fms %8.2fms %8.2f%% | %8.2fms %8.2fms %8.2f%%\n",
                static_cast<long long>(size), read_plain / 1000.0,
                read_crypt / 1000.0, read_ovh, write_plain / 1000.0,
                write_crypt / 1000.0, write_ovh);
  }
  std::printf("overhead: read min %.2f%% avg %.2f%% | write min %.2f%% avg "
              "%.2f%%\n",
              read_min, read_sum / count, write_min, write_sum / count);
  std::printf("paper:    read min 1.99%% avg 26.32%% | write min 0.35%% avg "
              "12.03%%\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_fig5_table();
  return 0;
}

#!/usr/bin/env bash
# Runs the crypto benchmarks and emits a machine-readable summary.
#
#   bench/run_benches.sh [build-dir] [bench-name...]
#
# Defaults: build-dir = ./build, benches = bench_crypto_primitives.
# Output: BENCH_crypto.json at the repo root — a JSON array of
# {"bench": ..., "op": ..., "ns_per_op": ..., "iterations": ...}, one entry
# per benchmark, suitable for jq / CI regression tracking.
#
# Each binary is run with --benchmark_out so the JSON stays clean even for
# benches that print their own human-readable tables to stdout.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true
benches=("$@")
if [ "${#benches[@]}" -eq 0 ]; then
  benches=(bench_crypto_primitives)
fi

out_json="$repo_root/BENCH_crypto.json"
tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT

for bench in "${benches[@]}"; do
  bin="$build_dir/bench/$bench"
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (run: cmake --build $build_dir -j)" >&2
    exit 1
  fi
  echo "== $bench" >&2
  "$bin" --benchmark_out="$tmp_dir/$bench.json" \
         --benchmark_out_format=json >&2
done

python3 - "$out_json" "$tmp_dir"/*.json <<'PY'
import json
import os
import sys

out_path = sys.argv[1]
scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
rows = []
for path in sys.argv[2:]:
    bench = os.path.splitext(os.path.basename(path))[0]
    with open(path) as f:
        report = json.load(f)
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = scale.get(b.get("time_unit", "ns"), 1.0)
        rows.append({
            "bench": bench,
            "op": b["name"],
            "ns_per_op": round(b["real_time"] * unit, 1),
            "iterations": b["iterations"],
        })
with open(out_path, "w") as f:
    json.dump(rows, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} ({len(rows)} entries)", file=sys.stderr)
PY

#!/usr/bin/env bash
# Runs the crypto benchmarks and emits a machine-readable summary.
#
#   bench/run_benches.sh [build-dir] [bench-name...]
#
# Defaults: build-dir = ./build, benches = bench_crypto_primitives.
# Output: BENCH_crypto.json at the repo root — a JSON array of
# {"bench": ..., "op": ..., "ns_per_op": ..., "iterations": ...}, one entry
# per benchmark, suitable for jq / CI regression tracking.
#
# Also writes BENCH_storage.json: the storage fast-path numbers from
# bench_storage (parallel Merkle format/verify_all, verified-ancestor
# cached verity reads, AES-XTS dm-crypt I/O), diffed against the committed
# baseline bench/BENCH_storage.baseline.json — any op whose ns_per_op
# regresses by more than 25% fails the run.
#
# Also writes BENCH_attestation.json: per-stage virtual/real time breakdown
# of one attested GET (cold and VCEK-cached), from the tracing spans inside
# bench_client_attestation --stages-out. The virtual-clock stage totals are
# deterministic, so they are diffed against the committed baseline
# bench/BENCH_attestation.baseline.json; a stage whose virt_ms regresses by
# more than 25% fails the run.
#
# Each binary is run with --benchmark_out so the JSON stays clean even for
# benches that print their own human-readable tables to stdout.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true
benches=("$@")
if [ "${#benches[@]}" -eq 0 ]; then
  benches=(bench_crypto_primitives)
fi

out_json="$repo_root/BENCH_crypto.json"
tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT

for bench in "${benches[@]}"; do
  bin="$build_dir/bench/$bench"
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (run: cmake --build $build_dir -j)" >&2
    exit 1
  fi
  echo "== $bench" >&2
  "$bin" --benchmark_out="$tmp_dir/$bench.json" \
         --benchmark_out_format=json >&2
done

python3 - "$out_json" "$tmp_dir"/*.json <<'PY'
import json
import os
import sys

out_path = sys.argv[1]
scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
rows = []
for path in sys.argv[2:]:
    bench = os.path.splitext(os.path.basename(path))[0]
    with open(path) as f:
        report = json.load(f)
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = scale.get(b.get("time_unit", "ns"), 1.0)
        rows.append({
            "bench": bench,
            "op": b["name"],
            "ns_per_op": round(b["real_time"] * unit, 1),
            "iterations": b["iterations"],
        })
with open(out_path, "w") as f:
    json.dump(rows, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} ({len(rows)} entries)", file=sys.stderr)
PY

# --- storage fast path + regression gate ----------------------------------
storage_bin="$build_dir/bench/bench_storage"
storage_json="$repo_root/BENCH_storage.json"
storage_baseline="$repo_root/bench/BENCH_storage.baseline.json"
if [ -x "$storage_bin" ]; then
  echo "== bench_storage" >&2
  "$storage_bin" --benchmark_out="$tmp_dir/bench_storage.json" \
                 --benchmark_out_format=json >&2
  python3 - "$storage_json" "$storage_baseline" \
    "$tmp_dir/bench_storage.json" <<'PY'
import json
import sys

out_path, baseline_path, report_path = sys.argv[1], sys.argv[2], sys.argv[3]
scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
with open(report_path) as f:
    report = json.load(f)
rows = []
for b in report.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    unit = scale.get(b.get("time_unit", "ns"), 1.0)
    rows.append({
        "bench": "bench_storage",
        "op": b["name"],
        "ns_per_op": round(b["real_time"] * unit, 1),
        "iterations": b["iterations"],
    })
with open(out_path, "w") as f:
    json.dump(rows, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} ({len(rows)} entries)", file=sys.stderr)

try:
    with open(baseline_path) as f:
        baseline = {r["op"]: r["ns_per_op"] for r in json.load(f)}
except FileNotFoundError:
    print(f"no baseline at {baseline_path}; skipping regression gate",
          file=sys.stderr)
    sys.exit(0)

THRESHOLD = 0.25
failures = []
for row in rows:
    base = baseline.get(row["op"])
    if base is None or base <= 0:
        print(f"  {row['op']:24s} {row['ns_per_op']:14.1f} ns  (no baseline)",
              file=sys.stderr)
        continue
    delta = (row["ns_per_op"] - base) / base
    flag = ""
    if delta > THRESHOLD:
        failures.append(f"{row['op']}: {base:.1f} -> {row['ns_per_op']:.1f} ns"
                        f" (+{delta*100:.0f}%)")
        flag = "  <-- REGRESSION"
    print(f"  {row['op']:24s} {row['ns_per_op']:14.1f} ns"
          f" (baseline {base:14.1f} ns, {delta*100:+5.1f}%){flag}",
          file=sys.stderr)
if failures:
    print("storage benchmark regression(s) beyond 25%:", file=sys.stderr)
    for f_ in failures:
        print(f"  {f_}", file=sys.stderr)
    sys.exit(1)
print("storage benchmarks within 25% of baseline", file=sys.stderr)
PY
else
  echo "note: $storage_bin not built; skipping storage fast-path benches" >&2
fi

# --- per-stage attestation breakdown + regression gate --------------------
stages_bin="$build_dir/bench/bench_client_attestation"
stages_json="$repo_root/BENCH_attestation.json"
baseline_json="$repo_root/bench/BENCH_attestation.baseline.json"
if [ -x "$stages_bin" ]; then
  echo "== bench_client_attestation --stages-out" >&2
  "$stages_bin" --stages-out "$stages_json" >&2
  python3 - "$stages_json" "$baseline_json" <<'PY'
import json
import sys

current_path, baseline_path = sys.argv[1], sys.argv[2]
with open(current_path) as f:
    current = json.load(f)
try:
    with open(baseline_path) as f:
        baseline = json.load(f)
except FileNotFoundError:
    print(f"no baseline at {baseline_path}; skipping regression gate",
          file=sys.stderr)
    sys.exit(0)

# Only virtual-clock time is diffed: it is deterministic. Real time varies
# with the machine and is reported for information only.
THRESHOLD = 0.25
failures = []
for mode in ("cold", "cached"):
    cur, base = current.get(mode, {}), baseline.get(mode, {})
    rows = [("total", cur.get("total_virt_ms", 0.0),
             base.get("total_virt_ms", 0.0))]
    for name, stats in sorted(base.get("stages", {}).items()):
        cur_stats = cur.get("stages", {}).get(name, {})
        rows.append((name, cur_stats.get("virt_ms", 0.0),
                     stats.get("virt_ms", 0.0)))
    for name, cur_ms, base_ms in rows:
        delta = (cur_ms - base_ms) / base_ms if base_ms > 0 else 0.0
        flag = ""
        if base_ms > 0 and delta > THRESHOLD:
            failures.append(f"{mode}/{name}: {base_ms:.2f} -> {cur_ms:.2f} ms"
                            f" (+{delta*100:.0f}%)")
            flag = "  <-- REGRESSION"
        print(f"  {mode:7s} {name:28s} {cur_ms:9.2f} ms"
              f" (baseline {base_ms:9.2f} ms){flag}", file=sys.stderr)
if failures:
    print("attestation stage regression(s) beyond 25%:", file=sys.stderr)
    for f_ in failures:
        print(f"  {f_}", file=sys.stderr)
    sys.exit(1)
print("attestation stages within 25% of baseline", file=sys.stderr)

# Fault-free overhead of the resilience layer (retry/failover/deadline
# machinery armed but never firing) on a monitored GET. Hard gate: < 2%
# of virtual time, i.e. the layer must be free when nothing fails.
overhead = current.get("retry_overhead", {})
if overhead:
    pct = overhead.get("overhead_pct", 0.0)
    print(f"  retry-layer fault-free overhead: "
          f"{overhead.get('plain_virt_ms', 0.0):.2f} ms -> "
          f"{overhead.get('resilient_virt_ms', 0.0):.2f} ms "
          f"({pct:+.2f}%)", file=sys.stderr)
    if pct >= 2.0:
        print(f"retry-layer overhead {pct:.2f}% breaches the 2% gate",
              file=sys.stderr)
        sys.exit(1)
    print("retry-layer fault-free overhead within the 2% gate",
          file=sys.stderr)
PY
else
  echo "note: $stages_bin not built; skipping attestation stage breakdown" >&2
fi

#!/usr/bin/env bash
# Runs the crypto benchmarks and emits a machine-readable summary.
#
#   bench/run_benches.sh [build-dir] [bench-name...]
#
# Defaults: build-dir = ./build, benches = bench_crypto_primitives.
# Output: BENCH_crypto.json at the repo root — a JSON array of
# {"bench": ..., "op": ..., "ns_per_op": ..., "iterations": ...}, one entry
# per benchmark, suitable for jq / CI regression tracking.
#
# Also writes BENCH_storage.json: the storage fast-path numbers from
# bench_storage (parallel Merkle format/verify_all, verified-ancestor
# cached verity reads, AES-XTS dm-crypt I/O), diffed against the committed
# baseline bench/BENCH_storage.baseline.json — any op whose ns_per_op
# regresses by more than 2x fails the run (wall-clock micro-op noise on
# shared CI hosts swings 25-50% run to run; only wholesale regressions
# are detectable per op).
#
# Also writes BENCH_attestation.json: per-stage virtual/real time breakdown
# of one attested GET (cold and VCEK-cached), from the tracing spans inside
# bench_client_attestation --stages-out. The virtual-clock stage totals are
# deterministic, so they are diffed against the committed baseline
# bench/BENCH_attestation.baseline.json; a stage whose virt_ms regresses by
# more than 25% fails the run.
#
# Also writes BENCH_gateway.json: the event-driven session engine vs the
# blocking lane model (bench_gateway). Gated: >= 3x staged-vs-blocking
# virtual throughput at one worker, exactly one KDS fetch per cold
# full-crypto level (single-flight), zero unverified-trust acceptances
# everywhere (chaos soak included), >= 1000 parked sessions per worker at
# the 100k-session level, bytes/parked-session flat (100k within 15% of
# 1k), bit-identical transcript digests on the replayed synthetic levels,
# and virtual makespan/latency percentiles within 25% of
# bench/BENCH_gateway.baseline.json (chaos levels excepted: their fault
# draws key on absolute virtual time, which inherits real boot timing).
# A missing or malformed gateway baseline fails the run with a clear
# message — regenerate it by copying a trusted BENCH_gateway.json over
# bench/BENCH_gateway.baseline.json.
#
# PR 7 gates on top of the gateway bench: per-stage wait/service p99s are
# diffed against the baseline (25%, non-chaos levels), the flight-recorder
# level's virtual-time overhead must stay <= 1.05x its recorder-off twin,
# and the chaos level's audit chain (AUDIT_gateway.bin) must verify with
# tools/audit_verify — and *stop* verifying after a single flipped byte.
#
# PR 8 gates (batch crypto): BENCH_crypto.json is diffed against
# bench/BENCH_crypto.baseline.json (2x per op — wall-clock micro-op noise
# on shared hosts makes anything tighter flap), batch ECDSA must cost
# >= 3x less per signature than a single verify at N=64
# (BM_EcdsaVerify/P384 vs BM_EcdsaVerifyBatch/P384/64), and the 8-way
# SHA-256 core must sustain >= 2x the pure-scalar single-stream
# throughput — the scalar reference comes from one extra REVELIO_NO_ISA=1
# run of BM_Sha256/4096, since on SHA-NI hosts the dispatched
# single-stream core is already hardware-accelerated. On the gateway
# side, the "staged_batch" levels must pass the same succeed-all and
# single-flight gates as "staged", cut real verify-stage time by >= 1.5x
# (batch_verify_speedup), actually coalesce work (batch_calls > 0), and
# reproduce the unbatched transcript digest bit for bit at one worker
# (batch_digest_match).
#
# PR 9 gates (durable state tier): bench_gateway runs with --store-dir so
# the restart levels persist through real files. The warm-restart section
# must report ran=true, the cold phase must pay exactly one KDS fetch per
# restart world (distinct chips), the warm phase must pay ZERO KDS fetches
# (every VCEK chain comes back through the store read-through) with warm
# p50 session latency <= 0.5x cold, no durable write-throughs may fail,
# and the persisted audit chain must both re-verify on open
# (audit_reverified, restored_records > 0) and replay offline via
# tools/audit_verify --store against the store directory itself. A
# bench_gateway binary without the restart section fails with a clear
# message, as does a cold phase that produced no latency baseline.
#
# Each binary is run with --benchmark_out so the JSON stays clean even for
# benches that print their own human-readable tables to stdout.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true
benches=("$@")
if [ "${#benches[@]}" -eq 0 ]; then
  benches=(bench_crypto_primitives)
fi

out_json="$repo_root/BENCH_crypto.json"
tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT

for bench in "${benches[@]}"; do
  bin="$build_dir/bench/$bench"
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (run: cmake --build $build_dir -j)" >&2
    exit 1
  fi
  echo "== $bench" >&2
  "$bin" --benchmark_out="$tmp_dir/$bench.json" \
         --benchmark_out_format=json >&2
done

# Scalar SHA-256 reference for the multi-buffer gate: on SHA-NI hosts the
# dispatched single-stream core is hardware-accelerated, so the "2x scalar"
# comparison needs one extra run with ISA extensions disabled.
noisa_bin="$build_dir/bench/bench_crypto_primitives"
if [ -x "$noisa_bin" ]; then
  echo "== bench_crypto_primitives (REVELIO_NO_ISA=1 scalar reference)" >&2
  REVELIO_NO_ISA=1 "$noisa_bin" \
    --benchmark_filter='^BM_Sha256/4096$' \
    --benchmark_out="$tmp_dir/bench_crypto_scalar_ref.json" \
    --benchmark_out_format=json >&2
fi

crypto_baseline="$repo_root/bench/BENCH_crypto.baseline.json"
python3 - "$out_json" "$crypto_baseline" "$tmp_dir"/*.json <<'PY'
import json
import os
import sys

out_path, baseline_path = sys.argv[1], sys.argv[2]
scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
rows = []
for path in sys.argv[3:]:
    bench = os.path.splitext(os.path.basename(path))[0]
    with open(path) as f:
        report = json.load(f)
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = scale.get(b.get("time_unit", "ns"), 1.0)
        rows.append({
            "bench": bench,
            "op": b["name"],
            "ns_per_op": round(b["real_time"] * unit, 1),
            "iterations": b["iterations"],
        })
with open(out_path, "w") as f:
    json.dump(rows, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} ({len(rows)} entries)", file=sys.stderr)

failures = []
ns = {(r["bench"], r["op"]): r["ns_per_op"] for r in rows}

# Derived gate: one batched verify must amortize the shared doubling
# ladder into >= 3x less work per signature than N independent verifies.
single = ns.get(("bench_crypto_primitives", "BM_EcdsaVerify/P384"))
batch64 = ns.get(("bench_crypto_primitives", "BM_EcdsaVerifyBatch/P384/64"))
MIN_BATCH_ECDSA_SPEEDUP = 3.0
if single and batch64:
    per_sig = batch64 / 64.0
    ratio = single / per_sig
    print(f"  batch ECDSA @64: {per_sig:.0f} ns/sig vs {single:.0f} ns "
          f"single ({ratio:.2f}x)", file=sys.stderr)
    if ratio < MIN_BATCH_ECDSA_SPEEDUP:
        failures.append(f"batch ECDSA verify at N=64 is only {ratio:.2f}x "
                        f"a single verify (gate {MIN_BATCH_ECDSA_SPEEDUP}x)")
else:
    failures.append("BM_EcdsaVerify/P384 or BM_EcdsaVerifyBatch/P384/64 "
                    "missing from bench output")

# Derived gate: 8 lanes of multi-buffer SHA-256 must beat the pure-scalar
# single-stream core by >= 2x in bytes/s. Equal message sizes, so the
# throughput ratio is 8 * scalar_ns / x8_ns.
x8 = ns.get(("bench_crypto_primitives", "BM_Sha256x8/4096"))
scalar = ns.get(("bench_crypto_scalar_ref", "BM_Sha256/4096"))
MIN_SHA_X8_SPEEDUP = 2.0
if x8 and scalar:
    ratio = 8.0 * scalar / x8
    print(f"  sha256 x8 vs scalar core: {ratio:.2f}x scalar throughput",
          file=sys.stderr)
    if ratio < MIN_SHA_X8_SPEEDUP:
        failures.append(f"8-way SHA-256 is only {ratio:.2f}x the scalar "
                        f"core (gate {MIN_SHA_X8_SPEEDUP}x)")
else:
    failures.append("BM_Sha256x8/4096 or the REVELIO_NO_ISA=1 scalar "
                    "reference missing from bench output")

# Per-op regression gate vs the committed baseline. Deliberately wide:
# these are single-op wall-clock numbers on whatever host runs CI, and
# back-to-back runs have been observed to swing 25-45% on shared
# single-core machines. The ratio gates above are the precise ones (noise
# cancels); this one only catches wholesale regressions — an accidentally
# disabled fast path shows up as 2-4x, never 1.4x.
try:
    with open(baseline_path) as f:
        baseline = {(r["bench"], r["op"]): r["ns_per_op"]
                    for r in json.load(f)}
except FileNotFoundError:
    print(f"no baseline at {baseline_path}; skipping regression gate",
          file=sys.stderr)
    baseline = None
except json.JSONDecodeError as e:
    print(f"error: crypto baseline {baseline_path} is not valid JSON "
          f"({e}); restore or regenerate it", file=sys.stderr)
    sys.exit(1)

THRESHOLD = 1.0
if baseline is not None:
    for row in rows:
        base = baseline.get((row["bench"], row["op"]))
        if base is None or base <= 0:
            continue
        delta = (row["ns_per_op"] - base) / base
        if delta > THRESHOLD:
            failures.append(f"{row['op']}: {base:.1f} -> "
                            f"{row['ns_per_op']:.1f} ns (+{delta*100:.0f}%)")
    print("crypto ops diffed against baseline (2x)", file=sys.stderr)

if failures:
    print("crypto benchmark gate failure(s):", file=sys.stderr)
    for f_ in failures:
        print(f"  {f_}", file=sys.stderr)
    sys.exit(1)
print("crypto batch/multi-buffer gates green", file=sys.stderr)
PY

# --- storage fast path + regression gate ----------------------------------
storage_bin="$build_dir/bench/bench_storage"
storage_json="$repo_root/BENCH_storage.json"
storage_baseline="$repo_root/bench/BENCH_storage.baseline.json"
if [ -x "$storage_bin" ]; then
  echo "== bench_storage" >&2
  "$storage_bin" --benchmark_out="$tmp_dir/bench_storage.json" \
                 --benchmark_out_format=json >&2
  python3 - "$storage_json" "$storage_baseline" \
    "$tmp_dir/bench_storage.json" <<'PY'
import json
import sys

out_path, baseline_path, report_path = sys.argv[1], sys.argv[2], sys.argv[3]
scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
with open(report_path) as f:
    report = json.load(f)
rows = []
for b in report.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    unit = scale.get(b.get("time_unit", "ns"), 1.0)
    rows.append({
        "bench": "bench_storage",
        "op": b["name"],
        "ns_per_op": round(b["real_time"] * unit, 1),
        "iterations": b["iterations"],
    })
with open(out_path, "w") as f:
    json.dump(rows, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} ({len(rows)} entries)", file=sys.stderr)

try:
    with open(baseline_path) as f:
        baseline = {r["op"]: r["ns_per_op"] for r in json.load(f)}
except FileNotFoundError:
    print(f"no baseline at {baseline_path}; skipping regression gate",
          file=sys.stderr)
    sys.exit(0)
except json.JSONDecodeError as e:
    print(f"error: storage baseline {baseline_path} is not valid JSON "
          f"({e}); restore or regenerate it", file=sys.stderr)
    sys.exit(1)

# Wide on purpose: per-op wall clock swings 25-50% between runs on the
# shared single-core CI hosts, so only a wholesale regression (a disabled
# fast path reads 2-4x) is detectable here.
THRESHOLD = 1.0
failures = []
for row in rows:
    base = baseline.get(row["op"])
    if base is None or base <= 0:
        print(f"  {row['op']:24s} {row['ns_per_op']:14.1f} ns  (no baseline)",
              file=sys.stderr)
        continue
    delta = (row["ns_per_op"] - base) / base
    flag = ""
    if delta > THRESHOLD:
        failures.append(f"{row['op']}: {base:.1f} -> {row['ns_per_op']:.1f} ns"
                        f" (+{delta*100:.0f}%)")
        flag = "  <-- REGRESSION"
    print(f"  {row['op']:24s} {row['ns_per_op']:14.1f} ns"
          f" (baseline {base:14.1f} ns, {delta*100:+5.1f}%){flag}",
          file=sys.stderr)
if failures:
    print("storage benchmark regression(s) beyond 2x:", file=sys.stderr)
    for f_ in failures:
        print(f"  {f_}", file=sys.stderr)
    sys.exit(1)
print("storage benchmarks within 2x of baseline", file=sys.stderr)
PY
else
  echo "note: $storage_bin not built; skipping storage fast-path benches" >&2
fi

# --- per-stage attestation breakdown + regression gate --------------------
stages_bin="$build_dir/bench/bench_client_attestation"
stages_json="$repo_root/BENCH_attestation.json"
baseline_json="$repo_root/bench/BENCH_attestation.baseline.json"
if [ -x "$stages_bin" ]; then
  echo "== bench_client_attestation --stages-out" >&2
  "$stages_bin" --stages-out "$stages_json" >&2
  python3 - "$stages_json" "$baseline_json" <<'PY'
import json
import sys

current_path, baseline_path = sys.argv[1], sys.argv[2]
with open(current_path) as f:
    current = json.load(f)
try:
    with open(baseline_path) as f:
        baseline = json.load(f)
except FileNotFoundError:
    print(f"no baseline at {baseline_path}; skipping regression gate",
          file=sys.stderr)
    sys.exit(0)
except json.JSONDecodeError as e:
    print(f"error: attestation baseline {baseline_path} is not valid JSON "
          f"({e}); restore or regenerate it", file=sys.stderr)
    sys.exit(1)

# Only virtual-clock time is diffed: it is deterministic. Real time varies
# with the machine and is reported for information only.
THRESHOLD = 0.25
failures = []
for mode in ("cold", "cached"):
    cur, base = current.get(mode, {}), baseline.get(mode, {})
    rows = [("total", cur.get("total_virt_ms", 0.0),
             base.get("total_virt_ms", 0.0))]
    for name, stats in sorted(base.get("stages", {}).items()):
        cur_stats = cur.get("stages", {}).get(name, {})
        rows.append((name, cur_stats.get("virt_ms", 0.0),
                     stats.get("virt_ms", 0.0)))
    for name, cur_ms, base_ms in rows:
        delta = (cur_ms - base_ms) / base_ms if base_ms > 0 else 0.0
        flag = ""
        if base_ms > 0 and delta > THRESHOLD:
            failures.append(f"{mode}/{name}: {base_ms:.2f} -> {cur_ms:.2f} ms"
                            f" (+{delta*100:.0f}%)")
            flag = "  <-- REGRESSION"
        print(f"  {mode:7s} {name:28s} {cur_ms:9.2f} ms"
              f" (baseline {base_ms:9.2f} ms){flag}", file=sys.stderr)
if failures:
    print("attestation stage regression(s) beyond 25%:", file=sys.stderr)
    for f_ in failures:
        print(f"  {f_}", file=sys.stderr)
    sys.exit(1)
print("attestation stages within 25% of baseline", file=sys.stderr)

# Fault-free overhead of the resilience layer (retry/failover/deadline
# machinery armed but never firing) on a monitored GET. Hard gate: < 2%
# of virtual time, i.e. the layer must be free when nothing fails.
overhead = current.get("retry_overhead", {})
if overhead:
    pct = overhead.get("overhead_pct", 0.0)
    print(f"  retry-layer fault-free overhead: "
          f"{overhead.get('plain_virt_ms', 0.0):.2f} ms -> "
          f"{overhead.get('resilient_virt_ms', 0.0):.2f} ms "
          f"({pct:+.2f}%)", file=sys.stderr)
    if pct >= 2.0:
        print(f"retry-layer overhead {pct:.2f}% breaches the 2% gate",
              file=sys.stderr)
        sys.exit(1)
    print("retry-layer fault-free overhead within the 2% gate",
          file=sys.stderr)
PY
else
  echo "note: $stages_bin not built; skipping attestation stage breakdown" >&2
fi

# --- gateway load scaling + regression gate -------------------------------
gateway_bin="$build_dir/bench/bench_gateway"
gateway_json="$repo_root/BENCH_gateway.json"
gateway_baseline="$repo_root/bench/BENCH_gateway.baseline.json"
gateway_audit="$repo_root/AUDIT_gateway.bin"
gateway_store="$tmp_dir/gateway_store"
if [ -x "$gateway_bin" ]; then
  echo "== bench_gateway" >&2
  "$gateway_bin" --out "$gateway_json" --audit-out "$gateway_audit" \
                 --store-dir "$gateway_store" >&2
  python3 - "$gateway_json" "$gateway_baseline" <<'PY'
import json
import sys

current_path, baseline_path = sys.argv[1], sys.argv[2]
try:
    with open(current_path) as f:
        current = json.load(f)
except json.JSONDecodeError as e:
    print(f"error: {current_path} is not valid JSON ({e}); bench_gateway "
          f"output is corrupt", file=sys.stderr)
    sys.exit(1)

failures = []


def key(level):
    return f"{level['mode']}/w{level['workers']}/n{level['sessions']}"


# Correctness gates: these hold regardless of any baseline.
blocking = [l for l in current.get("levels", []) if l["mode"] == "blocking"]
staged = [l for l in current.get("levels", []) if l["mode"] == "staged"]
staged_batch = [l for l in current.get("levels", [])
                if l["mode"] == "staged_batch"]
synthetic = [l for l in current.get("levels", []) if l["mode"] == "synthetic"]
chaos = [l for l in current.get("levels", []) if l["mode"] == "chaos"]
restart_levels = [l for l in current.get("levels", [])
                  if l["mode"] in ("restart_cold", "restart_warm")]

# Every fully-verified path must succeed end to end, nothing may be served
# unverified (chaos included: sessions may fail closed, never open), and a
# cold cache costs exactly one KDS round trip per full-crypto level no
# matter how many sessions stampede it.
for level in blocking + staged + staged_batch + synthetic + restart_levels:
    if level["succeeded"] != level["sessions"]:
        failures.append(f"{key(level)}: {level['succeeded']}/"
                        f"{level['sessions']} sessions succeeded")
for level in current.get("levels", []):
    if level["unverified_accepts"] != 0:
        failures.append(f"{key(level)}: "
                        f"{level['unverified_accepts']} unverified accepts")
for level in blocking + staged + staged_batch + chaos:
    if level["vcek"]["fetches"] != 1:
        failures.append(f"{key(level)}: {level['vcek']['fetches']} KDS "
                        f"fetches on a cold cache (single-flight broken)")
    if level["kds_fetch_count_delta"] != 1:
        failures.append(f"{key(level)}: kds.fetch.count rose by "
                        f"{level['kds_fetch_count_delta']}, expected 1")

# The tentpole: parked sessions scale past thread counts. The largest
# synthetic level must park >= 1000 sessions per worker with per-session
# memory flat relative to the smallest level, and every replayed level
# must reproduce its transcript digest bit for bit.
MIN_PARKED_PER_WORKER = 1000.0
MAX_MEMORY_GROWTH = 1.15
if not synthetic:
    failures.append("no synthetic scale levels in bench output")
else:
    largest = max(synthetic, key=lambda l: l["sessions"])
    smallest = min(synthetic, key=lambda l: l["sessions"])
    if largest["parked_per_worker"] < MIN_PARKED_PER_WORKER:
        failures.append(
            f"{key(largest)}: {largest['parked_per_worker']:.0f} parked "
            f"sessions/worker, below the {MIN_PARKED_PER_WORKER:.0f} gate")
    small_bytes = smallest["bytes_per_parked_session"]
    large_bytes = largest["bytes_per_parked_session"]
    if small_bytes > 0 and large_bytes > small_bytes * MAX_MEMORY_GROWTH:
        failures.append(
            f"bytes/parked-session grew {small_bytes:.1f} -> "
            f"{large_bytes:.1f} from {smallest['sessions']} to "
            f"{largest['sessions']} sessions (not flat)")
    for level in synthetic:
        if "deterministic" in level and not level["deterministic"]:
            failures.append(f"{key(level)}: replay produced a different "
                            f"transcript digest (nondeterministic)")

# Chaos soak: lossy links may fail sessions, but most must still land.
for level in chaos:
    if level["succeeded"] < 0.8 * level["sessions"]:
        failures.append(f"{key(level)}: only {level['succeeded']}/"
                        f"{level['sessions']} chaos sessions succeeded")

# Observability must not perturb the simulation: the recorder level re-runs
# a synthetic level with flight-recorder rings on every session, and its
# virtual makespan may grow at most 5%.
MAX_RECORDER_OVERHEAD = 1.05
recorder_overhead = current.get("recorder_overhead_virt", 0.0)
if recorder_overhead <= 0.0:
    failures.append("recorder_overhead_virt missing from bench output")
elif recorder_overhead > MAX_RECORDER_OVERHEAD:
    failures.append(f"flight recorder virtual-time overhead "
                    f"{recorder_overhead:.3f}x breaches the "
                    f"{MAX_RECORDER_OVERHEAD}x gate")
print(f"  recorder_overhead_virt = {recorder_overhead:.4f}x",
      file=sys.stderr)

# The audit chain self-verified in-process (the offline tools/audit_verify
# replay plus tamper probe runs below, in the shell).
audit = current.get("audit", {})
if chaos and not audit.get("ok", False):
    failures.append("in-process audit-chain verification failed")
if chaos and audit.get("records", 0) <= 0:
    failures.append("chaos level produced an empty audit chain")

MIN_STAGED_SPEEDUP = 3.0
speedup = current.get("staged_speedup_1worker", 0.0)
if speedup < MIN_STAGED_SPEEDUP:
    failures.append(f"staged_speedup_1worker = {speedup:.2f}x, below the "
                    f"{MIN_STAGED_SPEEDUP}x gate")

# Batched verify stage: the staged_batch levels hand whole wavefronts of
# verify-ready sessions to the batch crypto layer in one pool task. The
# batching must actually engage, must cut real verify-stage time, and must
# leave the observable outcome untouched — the one-worker staged_batch
# level reproduces the one-worker staged transcript digest bit for bit
# (the 4-worker pair is excluded: which session wins the single-flight
# KDS fetch is a real-time race there, so equal digests can't be
# promised even between two unbatched runs).
MIN_BATCH_VERIFY_SPEEDUP = 1.5
if not staged_batch:
    failures.append("no staged_batch levels in bench output")
batch_speedup = current.get("batch_verify_speedup", 0.0)
batch_calls = current.get("batch_calls", 0)
if batch_calls <= 0:
    failures.append("batch_calls = 0: the verify stage never batched")
if batch_speedup < MIN_BATCH_VERIFY_SPEEDUP:
    failures.append(f"batch_verify_speedup = {batch_speedup:.2f}x, below "
                    f"the {MIN_BATCH_VERIFY_SPEEDUP}x gate")
if not current.get("batch_digest_match", False):
    failures.append("staged_batch transcript digest diverged from the "
                    "unbatched staged run (1-worker pair)")
print(f"  batch_verify_speedup = {batch_speedup:.2f}x "
      f"({batch_calls} batch calls, digest_match="
      f"{current.get('batch_digest_match', False)})", file=sys.stderr)

# Durable state tier (PR 9): the warm-restart levels. A gateway rebuilt
# over a reopened store must serve every session without touching the KDS
# (the persisted VCEK/chain entries are the cache), must be at least 2x
# faster at the median, and must have re-verified its persisted audit
# chain before accepting a single new verdict. These gates have no
# baseline file — the contract is absolute — but a bench binary that
# never ran the restart section is itself a failure, not a skip.
MAX_WARM_COLD_RATIO = 0.5
restart = current.get("restart")
if restart is None or not restart.get("ran", False):
    failures.append("restart section missing from bench output "
                    "(bench_gateway predates the durable state tier, or "
                    "the restart levels never ran)")
else:
    worlds = restart.get("worlds", 0)
    cold_p50 = restart.get("cold_p50_ms", 0.0)
    warm_p50 = restart.get("warm_p50_ms", 0.0)
    if len(restart_levels) != 2:
        failures.append(f"expected restart_cold + restart_warm levels, "
                        f"found {len(restart_levels)}")
    if restart.get("cold_fetches", 0) != worlds:
        failures.append(f"restart cold phase paid "
                        f"{restart.get('cold_fetches', 0)} KDS fetches "
                        f"for {worlds} distinct-chip worlds, expected "
                        f"{worlds}")
    if restart.get("warm_fetches", -1) != 0:
        failures.append(f"restart warm phase paid "
                        f"{restart.get('warm_fetches', -1)} KDS fetches, "
                        f"expected 0 (store read-through broken)")
    if restart.get("warm_vcek_store_hits", 0) < worlds:
        failures.append(f"warm phase served only "
                        f"{restart.get('warm_vcek_store_hits', 0)} VCEK "
                        f"chains from the store, expected {worlds}")
    if restart.get("store_write_failures", 0) != 0:
        failures.append(f"{restart.get('store_write_failures', 0)} durable "
                        f"cache write-throughs failed during the restart "
                        f"levels")
    if cold_p50 <= 0.0:
        failures.append("restart cold phase produced no p50 latency "
                        "baseline (cold_p50_ms missing or zero); cannot "
                        "gate the warm/cold ratio")
    elif warm_p50 > MAX_WARM_COLD_RATIO * cold_p50:
        failures.append(f"warm restart p50 {warm_p50:.1f} ms vs cold "
                        f"{cold_p50:.1f} ms: ratio "
                        f"{warm_p50 / cold_p50:.2f} breaches the "
                        f"{MAX_WARM_COLD_RATIO}x gate")
    if not restart.get("audit_reverified", False):
        failures.append("persisted audit chain failed re-verification "
                        "across the restart")
    if restart.get("audit_restored_records", 0) <= 0:
        failures.append("warm restart restored no audit records; the "
                        "cold phase's verdicts did not persist")
    ratio = warm_p50 / cold_p50 if cold_p50 > 0 else 0.0
    print(f"  warm restart ({restart.get('backend', '?')} store): "
          f"p50 {cold_p50:.1f} -> {warm_p50:.1f} ms ({ratio:.2f}x), "
          f"fetches {restart.get('cold_fetches', 0)} -> "
          f"{restart.get('warm_fetches', 0)}, "
          f"{restart.get('audit_restored_records', 0)} audit records "
          f"re-verified", file=sys.stderr)

# Regression gate: virtual-clock makespan and latency vs the committed
# baseline. Real time is machine-dependent and reported only. The baseline
# is required: a missing or unreadable one is a failure, not a skip.
THRESHOLD = 0.25
try:
    with open(baseline_path) as f:
        baseline = json.load(f)
except FileNotFoundError:
    print(f"error: gateway baseline missing at {baseline_path}; copy a "
          f"trusted BENCH_gateway.json there to re-baseline", file=sys.stderr)
    sys.exit(1)
except json.JSONDecodeError as e:
    print(f"error: gateway baseline {baseline_path} is not valid JSON "
          f"({e}); restore or regenerate it", file=sys.stderr)
    sys.exit(1)

base_levels = {key(l): l for l in baseline.get("levels", [])}
for level in current.get("levels", []):
    if level["mode"] == "chaos":
        continue  # absolute-time-keyed fault draws; not reproducible
    base = base_levels.get(key(level))
    if base is None:
        print(f"  {key(level):26s} (no baseline entry)", file=sys.stderr)
        continue
    for metric in ("virt_makespan_ms", "virt_p50_ms", "virt_p95_ms",
                   "virt_p99_ms"):
        cur_ms = level.get(metric, 0.0)
        base_ms = base.get(metric, 0.0)
        delta = (cur_ms - base_ms) / base_ms if base_ms > 0 else 0.0
        flag = ""
        if base_ms > 0 and delta > THRESHOLD:
            failures.append(f"{key(level)} {metric}: {base_ms:.1f} -> "
                            f"{cur_ms:.1f} ms (+{delta*100:.0f}%)")
            flag = "  <-- REGRESSION"
        print(f"  {key(level):26s} {metric:18s} {cur_ms:9.1f} ms"
              f" (baseline {base_ms:9.1f} ms){flag}", file=sys.stderr)
    # Per-stage tail attribution: a stage whose wait or service p99 grows
    # past the threshold is a localized regression even when the end-to-end
    # percentiles absorb it.
    base_stages = {s["stage"]: s for s in base.get("stages", [])}
    for stage in level.get("stages", []):
        base_stage = base_stages.get(stage["stage"])
        if base_stage is None:
            continue
        for metric in ("wait_p99_ms", "service_p99_ms"):
            cur_ms = stage.get(metric, 0.0)
            base_ms = base_stage.get(metric, 0.0)
            delta = (cur_ms - base_ms) / base_ms if base_ms > 0 else 0.0
            if base_ms > 0 and delta > THRESHOLD:
                failures.append(
                    f"{key(level)} stage {stage['stage']} {metric}: "
                    f"{base_ms:.2f} -> {cur_ms:.2f} ms (+{delta*100:.0f}%)")
                print(f"  {key(level):26s} {stage['stage']}/{metric}: "
                      f"{base_ms:.2f} -> {cur_ms:.2f} ms  <-- REGRESSION",
                      file=sys.stderr)
print(f"  staged_speedup_1worker = {speedup:.2f}x", file=sys.stderr)

if failures:
    print("gateway gate failure(s):", file=sys.stderr)
    for f_ in failures:
        print(f"  {f_}", file=sys.stderr)
    sys.exit(1)
print("gateway engine, scale, memory, and determinism gates all green",
      file=sys.stderr)
PY

  # Offline audit replay: the standalone verifier (no gateway state) must
  # accept the chain the chaos level exported, and must reject it again
  # after a single flipped byte — the tamper-evidence property itself.
  audit_bin="$build_dir/tools/audit_verify"
  if [ ! -x "$audit_bin" ]; then
    echo "error: $audit_bin not built (run: cmake --build $build_dir -j)" >&2
    exit 1
  fi
  if [ ! -s "$gateway_audit" ]; then
    echo "error: $gateway_audit missing or empty; bench_gateway should" \
         "have written the chaos level's audit chain" >&2
    exit 1
  fi
  echo "== tools/audit_verify $gateway_audit" >&2
  "$audit_bin" "$gateway_audit" >&2
  tampered="$tmp_dir/audit_tampered.bin"
  python3 - "$gateway_audit" "$tampered" <<'PY'
import sys
with open(sys.argv[1], "rb") as f:
    data = bytearray(f.read())
data[len(data) // 2] ^= 0x01  # flip one bit mid-stream
with open(sys.argv[2], "wb") as f:
    f.write(data)
PY
  if "$audit_bin" "$tampered" >&2; then
    echo "error: audit_verify accepted a tampered chain" >&2
    exit 1
  fi
  echo "audit chain verified; single-byte tamper correctly rejected" >&2

  # Durable tier end-to-end: the restart levels persisted their audit
  # chain through the real-file store backend; the standalone verifier
  # must rebuild the stream from the store directory and re-verify the
  # whole hash chain offline.
  if [ ! -d "$gateway_store" ]; then
    echo "error: $gateway_store missing; bench_gateway --store-dir should" \
         "have persisted the restart levels' durable state" >&2
    exit 1
  fi
  echo "== tools/audit_verify --store $gateway_store" >&2
  "$audit_bin" --store "$gateway_store" >&2
  echo "store-backed audit chain verified offline" >&2
else
  echo "note: $gateway_bin not built; skipping gateway load bench" >&2
fi

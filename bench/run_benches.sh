#!/usr/bin/env bash
# Runs the crypto benchmarks and emits a machine-readable summary.
#
#   bench/run_benches.sh [build-dir] [bench-name...]
#
# Defaults: build-dir = ./build, benches = bench_crypto_primitives.
# Output: BENCH_crypto.json at the repo root — a JSON array of
# {"bench": ..., "op": ..., "ns_per_op": ..., "iterations": ...}, one entry
# per benchmark, suitable for jq / CI regression tracking.
#
# Also writes BENCH_storage.json: the storage fast-path numbers from
# bench_storage (parallel Merkle format/verify_all, verified-ancestor
# cached verity reads, AES-XTS dm-crypt I/O), diffed against the committed
# baseline bench/BENCH_storage.baseline.json — any op whose ns_per_op
# regresses by more than 25% fails the run.
#
# Also writes BENCH_attestation.json: per-stage virtual/real time breakdown
# of one attested GET (cold and VCEK-cached), from the tracing spans inside
# bench_client_attestation --stages-out. The virtual-clock stage totals are
# deterministic, so they are diffed against the committed baseline
# bench/BENCH_attestation.baseline.json; a stage whose virt_ms regresses by
# more than 25% fails the run.
#
# Also writes BENCH_gateway.json: sessions/sec scaling of the concurrent
# attestation gateway (bench_gateway) at 1/4/16/64 concurrent clients. The
# virtual-clock numbers are deterministic and gated: >= 3x throughput at 16
# clients vs 1, exactly one KDS fetch per cold level (single-flight), zero
# unverified-trust acceptances, and virtual makespan/latency percentiles
# within 25% of bench/BENCH_gateway.baseline.json.
#
# Each binary is run with --benchmark_out so the JSON stays clean even for
# benches that print their own human-readable tables to stdout.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true
benches=("$@")
if [ "${#benches[@]}" -eq 0 ]; then
  benches=(bench_crypto_primitives)
fi

out_json="$repo_root/BENCH_crypto.json"
tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT

for bench in "${benches[@]}"; do
  bin="$build_dir/bench/$bench"
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (run: cmake --build $build_dir -j)" >&2
    exit 1
  fi
  echo "== $bench" >&2
  "$bin" --benchmark_out="$tmp_dir/$bench.json" \
         --benchmark_out_format=json >&2
done

python3 - "$out_json" "$tmp_dir"/*.json <<'PY'
import json
import os
import sys

out_path = sys.argv[1]
scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
rows = []
for path in sys.argv[2:]:
    bench = os.path.splitext(os.path.basename(path))[0]
    with open(path) as f:
        report = json.load(f)
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = scale.get(b.get("time_unit", "ns"), 1.0)
        rows.append({
            "bench": bench,
            "op": b["name"],
            "ns_per_op": round(b["real_time"] * unit, 1),
            "iterations": b["iterations"],
        })
with open(out_path, "w") as f:
    json.dump(rows, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} ({len(rows)} entries)", file=sys.stderr)
PY

# --- storage fast path + regression gate ----------------------------------
storage_bin="$build_dir/bench/bench_storage"
storage_json="$repo_root/BENCH_storage.json"
storage_baseline="$repo_root/bench/BENCH_storage.baseline.json"
if [ -x "$storage_bin" ]; then
  echo "== bench_storage" >&2
  "$storage_bin" --benchmark_out="$tmp_dir/bench_storage.json" \
                 --benchmark_out_format=json >&2
  python3 - "$storage_json" "$storage_baseline" \
    "$tmp_dir/bench_storage.json" <<'PY'
import json
import sys

out_path, baseline_path, report_path = sys.argv[1], sys.argv[2], sys.argv[3]
scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
with open(report_path) as f:
    report = json.load(f)
rows = []
for b in report.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    unit = scale.get(b.get("time_unit", "ns"), 1.0)
    rows.append({
        "bench": "bench_storage",
        "op": b["name"],
        "ns_per_op": round(b["real_time"] * unit, 1),
        "iterations": b["iterations"],
    })
with open(out_path, "w") as f:
    json.dump(rows, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} ({len(rows)} entries)", file=sys.stderr)

try:
    with open(baseline_path) as f:
        baseline = {r["op"]: r["ns_per_op"] for r in json.load(f)}
except FileNotFoundError:
    print(f"no baseline at {baseline_path}; skipping regression gate",
          file=sys.stderr)
    sys.exit(0)

THRESHOLD = 0.25
failures = []
for row in rows:
    base = baseline.get(row["op"])
    if base is None or base <= 0:
        print(f"  {row['op']:24s} {row['ns_per_op']:14.1f} ns  (no baseline)",
              file=sys.stderr)
        continue
    delta = (row["ns_per_op"] - base) / base
    flag = ""
    if delta > THRESHOLD:
        failures.append(f"{row['op']}: {base:.1f} -> {row['ns_per_op']:.1f} ns"
                        f" (+{delta*100:.0f}%)")
        flag = "  <-- REGRESSION"
    print(f"  {row['op']:24s} {row['ns_per_op']:14.1f} ns"
          f" (baseline {base:14.1f} ns, {delta*100:+5.1f}%){flag}",
          file=sys.stderr)
if failures:
    print("storage benchmark regression(s) beyond 25%:", file=sys.stderr)
    for f_ in failures:
        print(f"  {f_}", file=sys.stderr)
    sys.exit(1)
print("storage benchmarks within 25% of baseline", file=sys.stderr)
PY
else
  echo "note: $storage_bin not built; skipping storage fast-path benches" >&2
fi

# --- per-stage attestation breakdown + regression gate --------------------
stages_bin="$build_dir/bench/bench_client_attestation"
stages_json="$repo_root/BENCH_attestation.json"
baseline_json="$repo_root/bench/BENCH_attestation.baseline.json"
if [ -x "$stages_bin" ]; then
  echo "== bench_client_attestation --stages-out" >&2
  "$stages_bin" --stages-out "$stages_json" >&2
  python3 - "$stages_json" "$baseline_json" <<'PY'
import json
import sys

current_path, baseline_path = sys.argv[1], sys.argv[2]
with open(current_path) as f:
    current = json.load(f)
try:
    with open(baseline_path) as f:
        baseline = json.load(f)
except FileNotFoundError:
    print(f"no baseline at {baseline_path}; skipping regression gate",
          file=sys.stderr)
    sys.exit(0)

# Only virtual-clock time is diffed: it is deterministic. Real time varies
# with the machine and is reported for information only.
THRESHOLD = 0.25
failures = []
for mode in ("cold", "cached"):
    cur, base = current.get(mode, {}), baseline.get(mode, {})
    rows = [("total", cur.get("total_virt_ms", 0.0),
             base.get("total_virt_ms", 0.0))]
    for name, stats in sorted(base.get("stages", {}).items()):
        cur_stats = cur.get("stages", {}).get(name, {})
        rows.append((name, cur_stats.get("virt_ms", 0.0),
                     stats.get("virt_ms", 0.0)))
    for name, cur_ms, base_ms in rows:
        delta = (cur_ms - base_ms) / base_ms if base_ms > 0 else 0.0
        flag = ""
        if base_ms > 0 and delta > THRESHOLD:
            failures.append(f"{mode}/{name}: {base_ms:.2f} -> {cur_ms:.2f} ms"
                            f" (+{delta*100:.0f}%)")
            flag = "  <-- REGRESSION"
        print(f"  {mode:7s} {name:28s} {cur_ms:9.2f} ms"
              f" (baseline {base_ms:9.2f} ms){flag}", file=sys.stderr)
if failures:
    print("attestation stage regression(s) beyond 25%:", file=sys.stderr)
    for f_ in failures:
        print(f"  {f_}", file=sys.stderr)
    sys.exit(1)
print("attestation stages within 25% of baseline", file=sys.stderr)

# Fault-free overhead of the resilience layer (retry/failover/deadline
# machinery armed but never firing) on a monitored GET. Hard gate: < 2%
# of virtual time, i.e. the layer must be free when nothing fails.
overhead = current.get("retry_overhead", {})
if overhead:
    pct = overhead.get("overhead_pct", 0.0)
    print(f"  retry-layer fault-free overhead: "
          f"{overhead.get('plain_virt_ms', 0.0):.2f} ms -> "
          f"{overhead.get('resilient_virt_ms', 0.0):.2f} ms "
          f"({pct:+.2f}%)", file=sys.stderr)
    if pct >= 2.0:
        print(f"retry-layer overhead {pct:.2f}% breaches the 2% gate",
              file=sys.stderr)
        sys.exit(1)
    print("retry-layer fault-free overhead within the 2% gate",
          file=sys.stderr)
PY
else
  echo "note: $stages_bin not built; skipping attestation stage breakdown" >&2
fi

# --- gateway load scaling + regression gate -------------------------------
gateway_bin="$build_dir/bench/bench_gateway"
gateway_json="$repo_root/BENCH_gateway.json"
gateway_baseline="$repo_root/bench/BENCH_gateway.baseline.json"
if [ -x "$gateway_bin" ]; then
  echo "== bench_gateway" >&2
  "$gateway_bin" --out "$gateway_json" >&2
  python3 - "$gateway_json" "$gateway_baseline" <<'PY'
import json
import sys

current_path, baseline_path = sys.argv[1], sys.argv[2]
with open(current_path) as f:
    current = json.load(f)

failures = []

# Correctness gates: these hold regardless of any baseline. Every session
# must succeed fully verified, and a cold cache must cost exactly one KDS
# round trip per level no matter how many clients stampede it.
MIN_SCALING_16V1 = 3.0
for level in current.get("levels", []):
    c = level["clients"]
    if level["succeeded"] != level["sessions"]:
        failures.append(f"clients={c}: {level['succeeded']}/"
                        f"{level['sessions']} sessions succeeded")
    if level["unverified_accepts"] != 0:
        failures.append(f"clients={c}: "
                        f"{level['unverified_accepts']} unverified accepts")
    if level["vcek"]["fetches"] != 1:
        failures.append(f"clients={c}: {level['vcek']['fetches']} KDS "
                        f"fetches on a cold cache (single-flight broken)")
    if level["kds_fetch_count_delta"] != 1:
        failures.append(f"clients={c}: kds.fetch.count rose by "
                        f"{level['kds_fetch_count_delta']}, expected 1")
scaling = current.get("scaling_16v1", 0.0)
if scaling < MIN_SCALING_16V1:
    failures.append(f"scaling_16v1 = {scaling:.2f}x, "
                    f"below the {MIN_SCALING_16V1}x gate")

# Regression gate: virtual-clock throughput and latency vs the committed
# baseline. Real time is machine-dependent and reported only.
THRESHOLD = 0.25
try:
    with open(baseline_path) as f:
        baseline = json.load(f)
except FileNotFoundError:
    baseline = None
    print(f"no baseline at {baseline_path}; skipping regression gate",
          file=sys.stderr)

base_levels = ({level["clients"]: level
                for level in baseline.get("levels", [])} if baseline else {})
for level in current.get("levels", []):
    c = level["clients"]
    base = base_levels.get(c)
    rows = [("virt_makespan_ms", 1), ("virt_p50_ms", 1),
            ("virt_p95_ms", 1), ("virt_p99_ms", 1)]
    for key, _ in rows:
        cur_ms = level.get(key, 0.0)
        base_ms = base.get(key, 0.0) if base else 0.0
        delta = (cur_ms - base_ms) / base_ms if base_ms > 0 else 0.0
        flag = ""
        if base_ms > 0 and delta > THRESHOLD:
            failures.append(f"clients={c} {key}: {base_ms:.1f} -> "
                            f"{cur_ms:.1f} ms (+{delta*100:.0f}%)")
            flag = "  <-- REGRESSION"
        print(f"  clients={c:<3d} {key:18s} {cur_ms:9.1f} ms"
              f" (baseline {base_ms:9.1f} ms){flag}", file=sys.stderr)
print(f"  scaling_16v1 = {scaling:.2f}x, scaling_64v1 = "
      f"{current.get('scaling_64v1', 0.0):.2f}x", file=sys.stderr)

if failures:
    print("gateway gate failure(s):", file=sys.stderr)
    for f_ in failures:
        print(f"  {f_}", file=sys.stderr)
    sys.exit(1)
print("gateway scaling and latency within gates", file=sys.stderr)
PY
else
  echo "note: $gateway_bin not built; skipping gateway load bench" >&2
fi

#!/usr/bin/env bash
# Documentation checker (ctest label `docs`).
#
# Three guarantees:
#   1. Every intra-repo markdown link in the maintained docs (README.md,
#      DESIGN.md, EXPERIMENTS.md, ROADMAP.md, CHANGES.md, docs/**) points
#      at a file that exists. External links (http/https/mailto) and pure
#      anchors are skipped; a link's #fragment is stripped before the
#      check. ISSUE.md / PAPERS.md / SNIPPETS.md are generated inputs and
#      are not checked.
#   2. docs/ARCHITECTURE.md names every subsystem directory under src/ —
#      adding a module without documenting it fails the build.
#   3. ctest labels stay in sync both ways: every label referenced from
#      README.md / DESIGN.md (`-L <label>` invocations and the README
#      label table) is declared in tests/CMakeLists.txt, and every
#      declared label has a row in the README label table — adding a
#      suite label without documenting how to run it fails the build.
#
# Usage: tools/check_docs.sh [repo-root]   (defaults to the script's repo)
set -euo pipefail

repo_root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"

python3 - "$repo_root" <<'PY'
import os
import re
import sys

root = sys.argv[1]
failures = []

# --- 1. intra-repo markdown links -----------------------------------------
doc_files = []
for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md",
             "CHANGES.md"):
    path = os.path.join(root, name)
    if os.path.exists(path):
        doc_files.append(path)
docs_dir = os.path.join(root, "docs")
if os.path.isdir(docs_dir):
    for dirpath, _, names in os.walk(docs_dir):
        doc_files.extend(os.path.join(dirpath, n) for n in sorted(names)
                         if n.endswith(".md"))

# [text](target) — skip images' leading ! by matching the bracket pair
# itself; inline code spans are stripped first so `[i % C]`-style snippets
# aren't mistaken for links.
link_re = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
code_re = re.compile(r"`[^`]*`")
checked = 0
for path in doc_files:
    rel = os.path.relpath(path, root)
    with open(path) as f:
        text = code_re.sub("", f.read())
    for target in link_re.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(path), target))
        checked += 1
        if not os.path.exists(resolved):
            failures.append(f"{rel}: broken link -> {target}")
print(f"checked {checked} intra-repo links across {len(doc_files)} docs")

# --- 2. ARCHITECTURE.md covers every src/ subsystem ------------------------
arch_path = os.path.join(root, "docs", "ARCHITECTURE.md")
if not os.path.exists(arch_path):
    failures.append("docs/ARCHITECTURE.md is missing")
else:
    with open(arch_path) as f:
        arch = f.read()
    subsystems = sorted(
        d for d in os.listdir(os.path.join(root, "src"))
        if os.path.isdir(os.path.join(root, "src", d)))
    for d in subsystems:
        if f"src/{d}" not in arch:
            failures.append(
                f"docs/ARCHITECTURE.md does not mention src/{d}")
    print(f"architecture doc covers {len(subsystems)} src/ subsystems")

# --- 3. ctest labels: docs <-> tests/CMakeLists.txt -------------------------
cmake_path = os.path.join(root, "tests", "CMakeLists.txt")
if not os.path.exists(cmake_path):
    failures.append("tests/CMakeLists.txt is missing")
else:
    with open(cmake_path) as f:
        cmake = f.read()
    declared = set()
    # Matches both `LABELS tsan` and `LABELS "fleet;chaos;tsan"`.
    for group in re.findall(r'LABELS\s+"?([A-Za-z0-9;_-]+)"?', cmake):
        declared.update(group.split(";"))

    readme_path = os.path.join(root, "README.md")
    design_path = os.path.join(root, "DESIGN.md")
    with open(readme_path) as f:
        readme = f.read()
    design = ""
    if os.path.exists(design_path):
        with open(design_path) as f:
            design = f.read()

    # Labels the docs tell readers to run: `-L <label>` invocations plus
    # the README label table's first column (backticked label per row).
    referenced = set(re.findall(r"-L\s+([A-Za-z0-9_-]+)", readme + design))
    table_labels = set(re.findall(r"^\| `([A-Za-z0-9_-]+)` \|", readme,
                                  re.MULTILINE))
    referenced |= table_labels

    for label in sorted(referenced - declared):
        failures.append(
            f"docs reference ctest label '{label}' but tests/CMakeLists.txt "
            "never declares it")
    for label in sorted(declared - table_labels):
        failures.append(
            f"tests/CMakeLists.txt declares ctest label '{label}' but the "
            "README label table has no row for it")
    print(f"ctest labels in sync: {len(declared)} declared, "
          f"{len(referenced)} referenced")

if failures:
    print("documentation check failure(s):", file=sys.stderr)
    for f_ in failures:
        print(f"  {f_}", file=sys.stderr)
    sys.exit(1)
print("documentation checks passed")
PY

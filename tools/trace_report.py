#!/usr/bin/env python3
"""Fold a Chrome trace export and an attestation audit chain into a
per-stage critical-path report.

Usage:
    tools/trace_report.py TRACE.json [AUDIT.bin] [--top N]

TRACE.json is the output of Tracer::chrome_trace_json() (e.g. from
`quickstart --trace`); AUDIT.bin is the serialized obs::AuditLog stream
written by `bench_gateway --audit-out` (verify it with tools/audit_verify
first — this tool reports, it does not authenticate).

The report answers "where did the virtual time go":
  - per span name: dispatch count, total / self virtual time (self =
    total minus child spans), p50/p99 of span duration;
  - the virtual-time critical path: the chain of nested spans whose
    durations dominate the trace, from root to leaf;
  - from the audit chain: verdict counts and the failure-step histogram,
    so rejected sessions can be matched against the stages they died in.

Stdlib only; no third-party dependencies.
"""

import json
import math
import struct
import sys

AUDIT_MAGIC = b"RVAUDT01"
AUDIT_HEADER = 16       # magic + u32 interval + u32 record size
FRAME_RECORD = 0x01
FRAME_CHECKPOINT = 0x02
FRAME_TRAILER = 0x03
RECORD_SIZE = 154
CHECKPOINT_SIZE = 40
TRAILER_SIZE = 32


def percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank - 1, len(sorted_values) - 1)]


def load_virt_spans(path):
    """Virtual-clock complete events ('cat': 'virt'), one per span."""
    with open(path) as f:
        doc = json.load(f)
    spans = []
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") != "X" or ev.get("cat") != "virt":
            continue
        args = ev.get("args", {})
        spans.append({
            "name": ev.get("name", "?"),
            "ts": ev.get("ts", 0),
            "dur": ev.get("dur", 0),
            "id": args.get("span_id", 0),
            "parent": args.get("parent_id", 0),
        })
    return spans


def stage_table(spans):
    by_id = {s["id"]: s for s in spans}
    child_dur = {}
    for s in spans:
        if s["parent"] in by_id:
            child_dur[s["parent"]] = child_dur.get(s["parent"], 0) + s["dur"]
    rows = {}
    for s in spans:
        row = rows.setdefault(s["name"],
                              {"count": 0, "total": 0, "self": 0, "durs": []})
        row["count"] += 1
        row["total"] += s["dur"]
        row["self"] += max(0, s["dur"] - child_dur.get(s["id"], 0))
        row["durs"].append(s["dur"])
    for row in rows.values():
        row["durs"].sort()
    return rows


def critical_path(spans):
    """Longest-duration chain of nested spans, root to leaf."""
    children = {}
    by_id = {s["id"]: s for s in spans}
    roots = []
    for s in spans:
        if s["parent"] in by_id:
            children.setdefault(s["parent"], []).append(s)
        else:
            roots.append(s)
    if not roots:
        return []
    path = []
    node = max(roots, key=lambda s: s["dur"])
    while node is not None:
        path.append(node)
        kids = children.get(node["id"], [])
        node = max(kids, key=lambda s: s["dur"]) if kids else None
    return path


def load_audit(path):
    """Parses the audit stream structurally (no hash verification)."""
    with open(path, "rb") as f:
        data = f.read()
    if len(data) < AUDIT_HEADER or data[:8] != AUDIT_MAGIC:
        raise ValueError(f"{path}: not an audit stream (bad magic)")
    interval, record_size = struct.unpack_from(">II", data, 8)
    if record_size != RECORD_SIZE:
        raise ValueError(f"{path}: unexpected record size {record_size}")
    off = AUDIT_HEADER
    accepted = rejected = checkpoints = 0
    failure_steps = {}
    while off < len(data):
        frame = data[off]
        off += 1
        if frame == FRAME_RECORD:
            body = data[off:off + RECORD_SIZE]
            if len(body) < RECORD_SIZE:
                raise ValueError(f"{path}: truncated record at {off}")
            if body[16]:
                accepted += 1
            else:
                rejected += 1
                step = body[18:34].split(b"\0", 1)[0].decode(
                    "ascii", "replace") or "(none)"
                failure_steps[step] = failure_steps.get(step, 0) + 1
            off += RECORD_SIZE
        elif frame == FRAME_CHECKPOINT:
            checkpoints += 1
            off += CHECKPOINT_SIZE
        elif frame == FRAME_TRAILER:
            off += TRAILER_SIZE
        else:
            raise ValueError(f"{path}: unknown frame 0x{frame:02x} at {off}")
    return {
        "interval": interval,
        "accepted": accepted,
        "rejected": rejected,
        "checkpoints": checkpoints,
        "failure_steps": failure_steps,
    }


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    top = 10
    for i, a in enumerate(argv[1:]):
        if a == "--top" and i + 2 < len(argv):
            top = int(argv[i + 2])
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    trace_path = args[0]
    audit_path = args[1] if len(args) > 1 else None

    spans = load_virt_spans(trace_path)
    if not spans:
        print(f"{trace_path}: no virtual-clock spans found", file=sys.stderr)
        return 1
    rows = stage_table(spans)

    print(f"== per-stage virtual time ({len(spans)} spans, "
          f"{len(rows)} distinct names)")
    print(f"{'span':32s} {'count':>7s} {'total ms':>10s} {'self ms':>10s} "
          f"{'p50 ms':>8s} {'p99 ms':>8s}")
    ranked = sorted(rows.items(), key=lambda kv: kv[1]["self"], reverse=True)
    for name, row in ranked[:top]:
        print(f"{name:32s} {row['count']:7d} {row['total']/1000.0:10.2f} "
              f"{row['self']/1000.0:10.2f} "
              f"{percentile(row['durs'], 0.5)/1000.0:8.2f} "
              f"{percentile(row['durs'], 0.99)/1000.0:8.2f}")
    if len(ranked) > top:
        print(f"... {len(ranked) - top} more (raise with --top N)")

    path = critical_path(spans)
    print("\n== virtual-time critical path (heaviest nested chain)")
    for depth, s in enumerate(path):
        print(f"{'  ' * depth}{s['name']}  {s['dur']/1000.0:.2f} ms")

    if audit_path:
        audit = load_audit(audit_path)
        total = audit["accepted"] + audit["rejected"]
        print(f"\n== audit chain ({total} verdicts, "
              f"{audit['checkpoints']} Merkle checkpoints, "
              f"epoch interval {audit['interval']})")
        print(f"accepted: {audit['accepted']}   rejected: {audit['rejected']}")
        if audit["failure_steps"]:
            print("failure steps:")
            for step, count in sorted(audit["failure_steps"].items(),
                                      key=lambda kv: -kv[1]):
                print(f"  {step:24s} {count}")
        print("note: structural read only — authenticate the chain with "
              "tools/audit_verify")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

// Offline verifier for the gateway's attestation audit chain.
//
//   audit_verify <audit-stream-file>
//   audit_verify --store <store-dir>
//
// File mode replays a stream exported by obs::AuditLog::serialize() with
// no gateway state: recomputes the hash chain record by record, recomputes
// every Merkle checkpoint root, and compares the trailer head. Store mode
// opens the gateway's durable KV store directly (read path only) and
// rebuilds the stream from the individually persisted frames, so an
// auditor can validate a crashed gateway's disk without the gateway
// running. This is the external party's side of the trust story: the
// gateway publishes the stream (or the disk), anyone re-derives the head.
//
// Exit codes:
//   0  chain verifies end to end (trailer present, head matches)
//   1  tampering — a flipped byte, reordered frame, or corrupt store
//   2  usage / IO errors
//   3  truncated tail — the stream stops mid-frame or before the trailer
//      (what a crash mid-append produces); the verified prefix and the
//      last valid record index are reported so the auditor knows exactly
//      how much history still stands
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "obs/audit_log.hpp"
#include "obs/audit_store.hpp"
#include "store/kv_store.hpp"
#include "store/storage_env.hpp"

namespace {

using revelio::obs::AuditLog;

void print_summary(const AuditLog::VerifySummary& s) {
  std::printf(
      "records=%llu checkpoints=%llu accepted=%llu rejected=%llu\n"
      "head=%s\n",
      static_cast<unsigned long long>(s.records),
      static_cast<unsigned long long>(s.checkpoints),
      static_cast<unsigned long long>(s.accepted),
      static_cast<unsigned long long>(s.rejected), s.head_hex.c_str());
}

int verify_stream(revelio::ByteView stream) {
  const auto result = AuditLog::verify_prefix(stream);
  if (!result.ok()) {
    // Header-level damage: nothing verifiable at all.
    std::fprintf(stderr, "FAIL %s\n", result.error().to_string().c_str());
    return 1;
  }
  const auto& p = result.value();
  if (p.complete) {
    std::printf("OK ");
    print_summary(p.summary);
    return 0;
  }
  if (p.truncated) {
    std::printf("TRUNCATED %s (%s)\nvalid_frames=%llu last_valid_record=%llu\n",
                p.failure_code.c_str(), p.failure_detail.c_str(),
                static_cast<unsigned long long>(p.valid_frames),
                static_cast<unsigned long long>(p.last_valid_record));
    std::printf("verified prefix: ");
    print_summary(p.summary);
    return 3;
  }
  std::fprintf(stderr,
               "FAIL %s (%s)\nvalid_frames=%llu last_valid_record=%llu\n",
               p.failure_code.c_str(), p.failure_detail.c_str(),
               static_cast<unsigned long long>(p.valid_frames),
               static_cast<unsigned long long>(p.last_valid_record));
  return 1;
}

int verify_store(const char* dir) {
  auto env = revelio::store::RealStorageEnv::open(dir);
  if (!env.ok()) {
    std::fprintf(stderr, "audit_verify: cannot open store %s: %s\n", dir,
                 env.error().to_string().c_str());
    return 2;
  }
  auto kv = revelio::store::KvStore::open(**env);
  if (!kv.ok()) {
    // The KV layer failed its own integrity checks (CRC, manifest): the
    // durable state is not trustworthy, which for an auditor is tamper.
    std::fprintf(stderr, "FAIL store: %s\n", kv.error().to_string().c_str());
    return 1;
  }
  auto stream = revelio::obs::load_audit_stream(**kv);
  if (!stream.ok()) {
    if (stream.error().code == "audit.store_empty") {
      std::fprintf(stderr, "audit_verify: store holds no audit chain\n");
      return 2;
    }
    std::fprintf(stderr, "FAIL %s\n", stream.error().to_string().c_str());
    return 1;
  }
  return verify_stream(*stream);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--store") == 0) {
    return verify_store(argv[2]);
  }
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: audit_verify <audit-stream-file>\n"
                 "       audit_verify --store <store-dir>\n");
    return 2;
  }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "audit_verify: cannot open %s\n", argv[1]);
    return 2;
  }
  const std::vector<std::uint8_t> stream(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return verify_stream(stream);
}

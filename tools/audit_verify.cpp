// Offline verifier for the gateway's attestation audit chain.
//
//   audit_verify <audit-stream-file>
//
// Replays a stream exported by obs::AuditLog::serialize() with no gateway
// state: recomputes the hash chain record by record, recomputes every
// Merkle checkpoint root, and compares the trailer head. Exit 0 when the
// chain verifies, 1 on any tampering (a single flipped byte anywhere in
// the stream fails), 2 on usage/IO errors. This is the external party's
// side of the trust story: the gateway publishes the stream and its head,
// anyone re-derives both.
#include <cstdio>
#include <fstream>
#include <vector>

#include "obs/audit_log.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: audit_verify <audit-stream-file>\n");
    return 2;
  }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "audit_verify: cannot open %s\n", argv[1]);
    return 2;
  }
  const std::vector<std::uint8_t> stream(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  const auto result = revelio::obs::AuditLog::verify(stream);
  if (!result.ok()) {
    std::fprintf(stderr, "FAIL %s\n", result.error().to_string().c_str());
    return 1;
  }
  const auto& s = result.value();
  std::printf(
      "OK records=%llu checkpoints=%llu accepted=%llu rejected=%llu\n"
      "head=%s\n",
      static_cast<unsigned long long>(s.records),
      static_cast<unsigned long long>(s.checkpoints),
      static_cast<unsigned long long>(s.accepted),
      static_cast<unsigned long long>(s.rejected), s.head_hex.c_str());
  return 0;
}

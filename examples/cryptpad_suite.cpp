// Use case §4.1: an end-to-end-encrypted collaboration suite ("CryptPad")
// hardened with Revelio.
//
// CryptPad's model: clients encrypt documents locally; the server only
// stores ciphertext. The residual gap the paper identifies is that users
// must still trust the JavaScript/server code the provider runs — a
// malicious server build can exfiltrate keys. Revelio closes it: users
// attest the exact server build before use, the pad store lives on the
// sealed volume, and a swapped server build is caught by the measurement.
//
// Run: ./build/examples/cryptpad_suite
#include <cstdio>
#include <map>

#include "common/hex.hpp"
#include "crypto/kdf.hpp"
#include "crypto/modes.hpp"
#include "imagebuild/builder.hpp"
#include "revelio/revelio_vm.hpp"
#include "revelio/sp_node.hpp"
#include "revelio/web_extension.hpp"

using namespace revelio;

namespace {

/// Client-side crypto: the pad key never leaves the user's machine.
struct PadClient {
  explicit PadClient(std::string_view passphrase)
      : key(crypto::pbkdf2_sha256(to_bytes(passphrase),
                                  to_bytes(std::string_view("pad-salt")),
                                  1000, 64)),
        aead(key),
        nonce_drbg(key, to_bytes(std::string_view("nonces"))) {}

  Bytes encrypt(std::string_view plaintext) {
    return aead.seal(nonce_drbg.generate(16), {}, to_bytes(plaintext));
  }
  std::string decrypt(ByteView ciphertext) {
    auto pt = aead.open({}, ciphertext);
    return pt.ok() ? to_string(*pt) : "<decryption failed>";
  }

  Bytes key;
  crypto::AeadCtrHmac aead;
  crypto::HmacDrbg nonce_drbg;
};

/// The server-side pad store: an opaque blob store. It runs INSIDE the
/// Revelio VM and persists pads to the sealed data volume.
class PadStore {
 public:
  explicit PadStore(std::shared_ptr<storage::BlockDevice> sealed_volume)
      : volume_(std::move(sealed_volume)) {}

  void put(const std::string& pad_id, ByteView ciphertext) {
    pads_[pad_id] = to_bytes(ciphertext);
    persist();
  }
  Result<Bytes> get(const std::string& pad_id) const {
    const auto it = pads_.find(pad_id);
    if (it == pads_.end()) return Error::make("pad.not_found", pad_id);
    return it->second;
  }

  /// Reloads the store from the sealed volume (after a reboot).
  static PadStore load(std::shared_ptr<storage::BlockDevice> volume) {
    PadStore store(volume);
    Bytes block(volume->block_size());
    if (!volume->read_block(1, block).ok()) return store;
    std::size_t off = 0;
    const std::uint32_t count = read_u32be(block, off);
    off += 4;
    for (std::uint32_t i = 0; i < count && off < block.size(); ++i) {
      const std::uint32_t id_len = read_u32be(block, off);
      off += 4;
      std::string id(block.begin() + static_cast<std::ptrdiff_t>(off),
                     block.begin() + static_cast<std::ptrdiff_t>(off + id_len));
      off += id_len;
      const std::uint32_t ct_len = read_u32be(block, off);
      off += 4;
      store.pads_[id] = to_bytes(ByteView(block).subspan(off, ct_len));
      off += ct_len;
    }
    return store;
  }

 private:
  void persist() {
    Bytes record;
    append_u32be(record, static_cast<std::uint32_t>(pads_.size()));
    for (const auto& [id, ct] : pads_) {
      append_u32be(record, static_cast<std::uint32_t>(id.size()));
      append(record, id);
      append_u32be(record, static_cast<std::uint32_t>(ct.size()));
      append(record, ct);
    }
    record.resize(volume_->block_size(), 0);
    (void)volume_->write_block(1, record);
  }

  std::shared_ptr<storage::BlockDevice> volume_;
  std::map<std::string, Bytes> pads_;
};

}  // namespace

int main() {
  std::printf("== CryptPad-style E2EE collaboration suite on Revelio ==\n\n");

  SimClock clock;
  net::Network network(clock);
  crypto::HmacDrbg drbg(to_bytes(std::string_view("cryptpad-example")));
  sevsnp::KeyDistributionServer kds(drbg);
  core::KdsService kds_service(kds, network, {"kds.amd.com", 443});
  pki::AcmeIssuer acme(clock, drbg);
  sevsnp::AmdSp platform(to_bytes(std::string_view("cryptpad-host")),
                         sevsnp::TcbVersion{2, 0, 8, 115});
  kds.register_platform(platform);

  // Build the CryptPad server image (CP workload of the paper: only the
  // suite and the Revelio system services).
  imagebuild::PackageRegistry registry;
  imagebuild::BaseImage base;
  base.name = "ubuntu";
  base.tag = "20.04";
  base.packages = {{"nodejs", "16",
                    {{"/usr/bin/node", to_bytes(std::string_view("node"))}}}};
  imagebuild::BuildInputs inputs;
  inputs.base_image_digest = registry.publish(base);
  inputs.service_files["/opt/cryptpad/server.js"] =
      to_bytes(std::string_view("cryptpad-server-5.2.1"));
  inputs.initrd.services = {{"cryptpad", "/opt/cryptpad/server.js", 400.0},
                            {"nginx", "/usr/bin/node", 120.0}};
  inputs.initrd.allowed_inbound_ports = {"443", "8443"};
  inputs.data_partition_blocks = 64;  // the pad store
  imagebuild::ImageBuilder builder(registry);
  const auto image = *builder.build(inputs);
  const auto expected = vm::Hypervisor::expected_measurement(
      image.kernel_blob, image.initrd_blob, image.cmdline);

  // Deploy. The HTTP app is the pad API: PUT/GET ciphertext blobs.
  std::shared_ptr<PadStore> store;  // wired to the sealed volume below
  net::HttpRouter routes;
  routes.route("POST", "/pad/*", [&store](const net::HttpRequest& request) {
    store->put(request.path.substr(5), request.body);
    return net::HttpResponse::ok(to_bytes(std::string_view("stored")));
  });
  routes.route("GET", "/pad/*", [&store](const net::HttpRequest& request) {
    auto pad = store->get(request.path.substr(5));
    if (!pad.ok()) return net::HttpResponse::not_found();
    return net::HttpResponse::ok(std::move(*pad),
                                 "application/octet-stream");
  });
  core::RevelioVmConfig config;
  config.domain = "pads.revelio.app";
  config.host = "10.0.0.1";
  config.image = image;
  config.kds_address = {"kds.amd.com", 443};
  auto node = core::RevelioVm::deploy(platform, network, config,
                                      std::move(routes));
  if (!node.ok()) {
    std::printf("deploy failed: %s\n", node.error().to_string().c_str());
    return 1;
  }
  store = std::make_shared<PadStore>(
      const_cast<vm::GuestVm&>((*node)->guest()).data_volume());

  // Certify via the SP node.
  core::SpNodeConfig sp_config;
  sp_config.domain = "pads.revelio.app";
  sp_config.kds_address = {"kds.amd.com", 443};
  sp_config.expected_measurements = {expected};
  core::SpNode sp(network, acme, sp_config);
  sp.approve_node((*node)->bootstrap_address(), platform.chip_id());
  if (auto r = sp.provision_fleet(); !r.ok()) {
    std::printf("provisioning failed: %s\n", r.error().to_string().c_str());
    return 1;
  }
  network.dns_set_a("pads.revelio.app", "10.0.0.1");
  std::printf("[server] CryptPad VM attested & serving HTTPS\n");

  // Alice attests the server BEFORE typing anything into it.
  core::Browser alice(network, "alice-laptop", acme.trusted_roots(),
                      crypto::HmacDrbg(to_bytes(std::string_view("alice"))));
  core::WebExtensionConfig ext_config;
  ext_config.kds_address = {"kds.amd.com", 443};
  core::WebExtension alice_ext(alice, ext_config);
  core::SiteRegistration site;
  site.expected_measurements = {expected};
  alice_ext.register_site("pads.revelio.app", site);

  auto hello = alice_ext.get("pads.revelio.app", 443,
                             "/.well-known/revelio-attestation");
  std::printf("[alice] attestation before first use: %s\n",
              hello.ok() && hello->checks.all_ok() ? "PASS" : "FAIL");

  // Alice writes an E2EE pad; the server only ever sees ciphertext.
  PadClient alice_client("correct horse battery staple");
  const std::string secret_text =
      "Q3 planning: acquire Initech, budget 4.2M";
  net::HttpRequest put;
  put.method = "POST";
  put.path = "/pad/q3-planning";
  put.host = "pads.revelio.app";
  put.body = alice_client.encrypt(secret_text);
  auto put_result = alice_ext.fetch("pads.revelio.app", 443, put);
  std::printf("[alice] pad stored: %s\n",
              put_result.ok() ? "ok" : put_result.error().to_string().c_str());

  // Bob (sharing the pad passphrase out of band) attests and reads it.
  core::Browser bob(network, "bob-laptop", acme.trusted_roots(),
                    crypto::HmacDrbg(to_bytes(std::string_view("bob"))));
  core::WebExtension bob_ext(bob, ext_config);
  bob_ext.register_site("pads.revelio.app", site);
  auto pad = bob_ext.get("pads.revelio.app", 443, "/pad/q3-planning");
  if (pad.ok()) {
    PadClient bob_client("correct horse battery staple");
    std::printf("[bob]   pad decrypts to: \"%s\"\n",
                bob_client.decrypt(pad->response.body).c_str());
  }

  // What does the honest-but-curious (or malicious) provider see?
  auto snooped = (*node)->dispatch([&] {
    net::HttpRequest r;
    r.method = "GET";
    r.path = "/pad/q3-planning";
    return r;
  }());
  std::printf("[provider] sees only ciphertext: %s...\n",
              to_hex(ByteView(snooped.body).subspan(0, 16)).c_str());

  // And at rest? The sealed volume is dm-crypt'ed with the sealing key; the
  // raw disk bytes leak nothing (F6 / decommissioning).
  std::printf("[provider] at-rest pad store is AES-XTS ciphertext under a\n"
              "           measurement-derived sealing key: offline attacks "
              "recover nothing\n");

  // The gap Revelio closes: the provider silently swaps the server build
  // for one that would exfiltrate client keys via doctored JavaScript.
  imagebuild::BuildInputs evil = inputs;
  evil.service_files["/opt/cryptpad/server.js"] =
      to_bytes(std::string_view("cryptpad-server-5.2.1-keylogger"));
  const auto evil_image = *builder.build(evil);
  sevsnp::AmdSp evil_platform(to_bytes(std::string_view("evil-host")),
                              sevsnp::TcbVersion{2, 0, 8, 115});
  kds.register_platform(evil_platform);
  core::RevelioVmConfig evil_config = config;
  evil_config.host = "10.0.0.66";
  evil_config.image = evil_image;
  auto evil_node = core::RevelioVm::deploy(evil_platform, network,
                                           evil_config, net::HttpRouter{});
  // The malicious provider controls DNS, so it can even run its own SP
  // provisioning round for the backdoored build and obtain a CA-valid
  // certificate: TLS alone is satisfied.
  const auto evil_measurement = vm::Hypervisor::expected_measurement(
      evil_image.kernel_blob, evil_image.initrd_blob, evil_image.cmdline);
  core::SpNodeConfig evil_sp_config;
  evil_sp_config.domain = "pads.revelio.app";
  evil_sp_config.kds_address = {"kds.amd.com", 443};
  evil_sp_config.expected_measurements = {evil_measurement};
  core::SpNode evil_sp(network, acme, evil_sp_config);
  evil_sp.approve_node((*evil_node)->bootstrap_address(),
                       evil_platform.chip_id());
  (void)evil_sp.provision_fleet();
  network.dns_set_a("pads.revelio.app", "10.0.0.66");
  alice.drop_session("pads.revelio.app");
  alice_ext.invalidate("pads.revelio.app");
  auto attack = alice_ext.get("pads.revelio.app", 443, "/pad/q3-planning");
  std::printf("\n[attack] provider swaps in a keylogger build and repoints "
              "DNS\n");
  std::printf("[alice]  next access: %s\n",
              attack.ok() ? "ACCEPTED (bad!)"
                          : ("REFUSED — " + attack.error().to_string()).c_str());
  return 0;
}

// Quickstart: the whole Revelio lifecycle in ~100 lines of API use.
//
//  1. reproducibly build a VM image for a toy web service,
//  2. deploy it on a (simulated) SEV-SNP platform via measured direct boot,
//  3. let the service provider's SP node attest it and obtain an ACME
//     certificate for its in-VM TLS identity,
//  4. attest it as an end-user through the browser web extension, and
//  5. show that a tampered deployment fails every step of the way.
//
// Run: ./build/examples/quickstart
//      ./build/examples/quickstart --trace out.json   # Chrome trace dump
#include <cstdio>
#include <cstring>
#include <string>

#include "common/hex.hpp"
#include "imagebuild/builder.hpp"
#include "obs/trace.hpp"
#include "revelio/revelio_vm.hpp"
#include "revelio/sp_node.hpp"
#include "revelio/web_extension.hpp"

using namespace revelio;

int main(int argc, char** argv) {
  // --trace <file>: record every span and write a Chrome trace_event file
  // (open in chrome://tracing or https://ui.perfetto.dev).
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    }
  }
  if (!trace_path.empty()) obs::tracer().set_enabled(true);

  std::printf("== Revelio quickstart ==\n\n");

  // ---------------------------------------------------------------- 0
  // World: simulated clock + network, one SEV-SNP platform, the AMD KDS,
  // and a Let's Encrypt-style ACME CA.
  SimClock clock;
  net::Network network(clock);
  crypto::HmacDrbg drbg(to_bytes(std::string_view("quickstart")));
  sevsnp::KeyDistributionServer kds(drbg);
  core::KdsService kds_service(kds, network, {"kds.amd.com", 443});
  pki::AcmeIssuer acme(clock, drbg);

  sevsnp::AmdSp platform(to_bytes(std::string_view("epyc-7313-node-1")),
                         sevsnp::TcbVersion{2, 0, 8, 115});
  kds.register_platform(platform);

  // ---------------------------------------------------------------- 1
  // Reproducible image build: pinned base image, canonical rootfs,
  // dm-verity metadata, firewall posture — all measured.
  imagebuild::PackageRegistry registry;
  imagebuild::BaseImage base;
  base.name = "ubuntu";
  base.tag = "20.04";
  base.packages = {{"nginx", "1.18",
                    {{"/usr/sbin/nginx",
                      to_bytes(std::string_view("nginx-binary"))}}}};
  const auto base_digest = registry.publish(base);

  imagebuild::BuildInputs inputs;
  inputs.base_image_digest = base_digest;
  inputs.service_files["/opt/hello/server"] =
      to_bytes(std::string_view("hello-service-v1.0"));
  inputs.initrd.services = {{"hello", "/opt/hello/server", 150.0}};
  inputs.initrd.allowed_inbound_ports = {"443", "8443"};
  imagebuild::ImageBuilder builder(registry);
  const auto image = *builder.build(inputs);
  const auto expected = vm::Hypervisor::expected_measurement(
      image.kernel_blob, image.initrd_blob, image.cmdline);
  std::printf("[build] image digest        %s\n",
              to_hex(image.digest().view()).substr(0, 32).c_str());
  std::printf("[build] expected measurement %s...\n",
              to_hex(expected.view()).substr(0, 32).c_str());

  // Anyone can rebuild and get the same bits (requirement F5).
  const auto rebuilt = *builder.build(inputs);
  std::printf("[build] independent rebuild matches: %s\n\n",
              rebuilt.digest() == image.digest() ? "yes" : "NO!");

  // ---------------------------------------------------------------- 2
  // Deploy: measured direct boot, dm-verity rootfs, sealed data volume,
  // in-VM identity creation.
  net::HttpRouter routes;
  routes.route("GET", "/", [](const net::HttpRequest&) {
    return net::HttpResponse::ok(
        to_bytes(std::string_view("<h1>hello from inside the TEE</h1>")),
        "text/html");
  });
  core::RevelioVmConfig config;
  config.domain = "hello.revelio.app";
  config.host = "10.0.0.1";
  config.image = image;
  config.kds_address = {"kds.amd.com", 443};
  auto node = core::RevelioVm::deploy(platform, network, config,
                                      std::move(routes));
  if (!node.ok()) {
    std::printf("deploy failed: %s\n", node.error().to_string().c_str());
    return 1;
  }
  std::printf("[deploy] boot phases:\n");
  for (const auto& phase : (*node)->boot_report().phases) {
    std::printf("  %-24s %8.2f ms\n", phase.name.c_str(), phase.sim_ms);
  }
  std::printf("[deploy] measurement matches expected: %s\n\n",
              (*node)->measurement() == expected ? "yes" : "NO!");

  // ---------------------------------------------------------------- 3
  // SP node: attest the VM, obtain the certificate, distribute it.
  core::SpNodeConfig sp_config;
  sp_config.domain = "hello.revelio.app";
  sp_config.kds_address = {"kds.amd.com", 443};
  sp_config.expected_measurements = {expected};
  core::SpNode sp(network, acme, sp_config);
  sp.approve_node((*node)->bootstrap_address(), platform.chip_id());
  auto outcomes = sp.provision_fleet();
  if (!outcomes.ok()) {
    std::printf("provisioning failed: %s\n",
                outcomes.error().to_string().c_str());
    return 1;
  }
  std::printf("[sp] node attested and certified; VM serving HTTPS: %s\n\n",
              (*node)->serving_tls() ? "yes" : "no");
  network.dns_set_a("hello.revelio.app", "10.0.0.1");

  // ---------------------------------------------------------------- 4
  // End-user: browser + web extension. The user pins the measurement they
  // computed from the public sources in step 1.
  core::Browser browser(network, "laptop", acme.trusted_roots(),
                        crypto::HmacDrbg(to_bytes(std::string_view("user"))));
  core::WebExtensionConfig ext_config;
  ext_config.kds_address = {"kds.amd.com", 443};
  core::WebExtension extension(browser, ext_config);
  core::SiteRegistration site;
  site.expected_measurements = {expected};
  extension.register_site("hello.revelio.app", site);

  auto verified = extension.get("hello.revelio.app", 443, "/");
  if (!verified.ok()) {
    std::printf("attestation failed: %s\n",
                verified.error().to_string().c_str());
    return 1;
  }
  const auto& checks = verified->checks;
  std::printf("[user] attestation checks:\n");
  std::printf("  evidence fetched   %s\n", checks.evidence_fetched ? "ok" : "FAIL");
  std::printf("  REPORT_DATA binding %s\n", checks.binding_ok ? "ok" : "FAIL");
  std::printf("  VCEK chain          %s\n", checks.chain_ok ? "ok" : "FAIL");
  std::printf("  report signature    %s\n", checks.signature_ok ? "ok" : "FAIL");
  std::printf("  measurement         %s\n", checks.measurement_ok ? "ok" : "FAIL");
  std::printf("  TLS binding         %s\n", checks.tls_binding_ok ? "ok" : "FAIL");
  std::printf("[user] page: %s\n\n", to_string(verified->response.body).c_str());

  // ---------------------------------------------------------------- 5
  // The counterexample: a backdoored build fails the user's check.
  imagebuild::BuildInputs evil_inputs = inputs;
  evil_inputs.service_files["/opt/hello/server"] =
      to_bytes(std::string_view("hello-service-v1.0-with-backdoor"));
  const auto evil_image = *builder.build(evil_inputs);
  sevsnp::AmdSp evil_platform(to_bytes(std::string_view("evil-node")),
                              sevsnp::TcbVersion{2, 0, 8, 115});
  kds.register_platform(evil_platform);
  core::RevelioVmConfig evil_config = config;
  evil_config.host = "10.0.0.66";
  evil_config.image = evil_image;
  auto evil_node = core::RevelioVm::deploy(evil_platform, network,
                                           evil_config, net::HttpRouter{});
  std::printf("[attack] backdoored VM boots locally: %s\n",
              evil_node.ok() ? "yes (nothing stops the provider)" : "no");
  std::printf("[attack] but its measurement differs: %s\n",
              (*evil_node)->measurement() == expected
                  ? "NO (bad!)"
                  : "yes -> every verifier rejects it");

  std::printf("\nquickstart complete at %s simulated time\n",
              clock.to_string().c_str());

  if (!trace_path.empty()) {
    const std::string trace = obs::tracer().chrome_trace_json();
    std::FILE* f = std::fopen(trace_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("[trace] cannot open %s for writing\n", trace_path.c_str());
      return 1;
    }
    std::fwrite(trace.data(), 1, trace.size(), f);
    std::fclose(f);
    std::printf("[trace] %zu spans written to %s\n",
                obs::tracer().finished_spans().size(), trace_path.c_str());
  }
  return 0;
}

// Attack gallery: the paper's §6.1 security analysis, executed.
//
// Each scene stages one attack from the threat model against a deployed
// Revelio VM and shows which mechanism stops it (or detects it):
//
//   scene 1 — 6.1.1: hypervisor boots a modified kernel/initrd/cmdline
//   scene 2 — 6.1.1: hypervisor forges the firmware hash table
//   scene 3 — 6.1.2: provider tampers with the rootfs image
//   scene 4 — 6.1.3: runtime modification of the running system
//   scene 5 — 6.1.4: rollback to an obsolete vulnerable release
//   scene 6 — MITM: certificate-swap redirect after attestation
//   scene 7 — 6.1.1: measurement permutations (swapped blobs, shifted
//             boundaries) under a forged hash table
//   scene 8 — 2.1.1: guest-channel protocol-state fuzzing (replay,
//             reflection, truncation, bit-flips, type confusion)
//
// Each scene also asserts on the *observability* signal the attack leaves
// behind — the specific failed-verification counter or span attribute —
// not just the boolean outcome. A blocked attack with the wrong metric
// trail means the failure was misattributed, which this gallery now
// catches (exit code 1).
//
// Run: ./build/examples/attack_gallery
#include <cstdio>

#include "imagebuild/builder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "revelio/revelio_vm.hpp"
#include "revelio/sp_node.hpp"
#include "revelio/web_extension.hpp"

using namespace revelio;

namespace {

int g_metric_failures = 0;

void scene(int number, const char* title) {
  std::printf("\n--- scene %d: %s ---\n", number, title);
}

void verdict(bool blocked, const char* how) {
  if (!blocked) ++g_metric_failures;  // a successful attack fails the run
  std::printf("    verdict: %s (%s)\n",
              blocked ? "ATTACK BLOCKED/DETECTED" : "ATTACK SUCCEEDED",
              how);
}

std::uint64_t counter(const std::string& name,
                      const obs::Labels& labels = {}) {
  return obs::metrics().counter_value(name, labels);
}

/// Asserts the counter moved by exactly `want` (or at least `want` when
/// `at_least`) across the scene.
void expect_delta(const char* what, std::uint64_t before, std::uint64_t after,
                  std::uint64_t want, bool at_least = false) {
  const std::uint64_t delta = after - before;
  const bool ok = at_least ? delta >= want : delta == want;
  if (!ok) ++g_metric_failures;
  std::printf("    metric  %-48s +%llu %s\n", what,
              static_cast<unsigned long long>(delta),
              ok ? "(as expected)" : "(UNEXPECTED)");
}

void expect_attr(const char* span_name, const char* key,
                 const std::string& want) {
  for (const auto& span : obs::tracer().finished_spans()) {
    if (span.name != span_name) continue;
    const std::string got = span.attr(key);
    const bool ok = got == want;
    if (!ok) ++g_metric_failures;
    std::printf("    span    %s.%s = \"%s\" %s\n", span_name, key,
                got.c_str(), ok ? "(as expected)" : "(UNEXPECTED)");
    return;
  }
  ++g_metric_failures;
  std::printf("    span    %s MISSING\n", span_name);
}

}  // namespace

int main() {
  std::printf("== Revelio attack gallery (paper section 6.1) ==\n");

  SimClock clock;
  net::Network network(clock);
  crypto::HmacDrbg drbg(to_bytes(std::string_view("attack-gallery")));
  sevsnp::KeyDistributionServer kds(drbg);
  core::KdsService kds_service(kds, network, {"kds.amd.com", 443});
  pki::AcmeIssuer acme(clock, drbg);

  imagebuild::PackageRegistry registry;
  imagebuild::BaseImage base;
  base.name = "ubuntu";
  base.tag = "20.04";
  base.packages = {{"nginx", "1.18",
                    {{"/usr/sbin/nginx",
                      to_bytes(std::string_view("nginx-binary"))}}}};
  imagebuild::BuildInputs inputs;
  inputs.base_image_digest = registry.publish(base);
  inputs.service_files["/opt/service/app"] =
      to_bytes(std::string_view("service-v2"));
  inputs.initrd.services = {{"app", "/opt/service/app", 100.0}};
  inputs.initrd.allowed_inbound_ports = {"443", "8443"};
  imagebuild::ImageBuilder builder(registry);
  const auto image = *builder.build(inputs);
  const auto expected = vm::Hypervisor::expected_measurement(
      image.kernel_blob, image.initrd_blob, image.cmdline);

  // ------------------------------------------------------------- scene 1
  scene(1, "6.1.1 — boot a modified kernel (hash table intact)");
  {
    sevsnp::AmdSp sp(to_bytes(std::string_view("scene1")),
                     sevsnp::TcbVersion{2, 0, 8, 115});
    vm::Hypervisor hypervisor(sp, clock);
    vm::LaunchConfig config;
    config.kernel_blob = image.kernel_blob;
    config.initrd_blob = image.initrd_blob;
    config.cmdline = image.cmdline;
    config.disk = image.instantiate_disk();
    vm::KernelSpec evil;
    evil.enforce_verity = false;
    config.swap_kernel_after_measure = evil.serialize();
    const auto fw_fail0 =
        counter("vm.firmware_check.fail.count", {{"blob", "kernel"}});
    auto guest = hypervisor.launch(config);
    std::printf("    firmware: %s\n",
                guest.ok() ? "booted (?)" : guest.error().to_string().c_str());
    expect_delta("vm.firmware_check.fail.count{blob=kernel}", fw_fail0,
                 counter("vm.firmware_check.fail.count", {{"blob", "kernel"}}),
                 1);
    verdict(!guest.ok(), "OVMF re-measures each blob against the table");
  }

  // ------------------------------------------------------------- scene 2
  scene(2, "6.1.1 — forge the hash table to match malicious blobs");
  {
    sevsnp::AmdSp sp(to_bytes(std::string_view("scene2")),
                     sevsnp::TcbVersion{2, 0, 8, 115});
    vm::Hypervisor hypervisor(sp, clock);
    vm::KernelSpec evil_kernel;
    evil_kernel.enforce_verity = false;
    vm::InitrdSpec evil_initrd;
    evil_initrd.setup_verity = false;
    evil_initrd.setup_crypt = false;
    vm::KernelCmdline evil_cmdline;
    vm::LaunchConfig config;
    config.kernel_blob = image.kernel_blob;
    config.initrd_blob = image.initrd_blob;
    config.cmdline = image.cmdline;
    config.disk = image.instantiate_disk();
    config.forged_hash_table = vm::FirmwareHashTable::over(
        evil_kernel.serialize(), evil_initrd.serialize(),
        to_bytes(evil_cmdline.to_string()));
    config.swap_kernel_after_measure = evil_kernel.serialize();
    config.swap_initrd_after_measure = evil_initrd.serialize();
    config.swap_cmdline_after_measure = evil_cmdline.to_string();
    const auto fw_fail0 =
        counter("vm.firmware_check.fail.count", {{"blob", "kernel"}});
    const auto fw_ok0 = counter("vm.firmware_check.ok.count");
    auto guest = hypervisor.launch(config);
    std::printf("    boot: %s\n", guest.ok() ? "succeeds locally" : "refused");
    const bool detected =
        guest.ok() && !((*guest)->measurement() == expected);
    std::printf("    measurement == expected: %s\n", detected ? "no" : "yes");
    // The local firmware check *passes* (the table was forged to match), so
    // the only signal is the measurement itself — exactly the paper's point.
    expect_delta("vm.firmware_check.fail.count{blob=kernel}", fw_fail0,
                 counter("vm.firmware_check.fail.count", {{"blob", "kernel"}}),
                 0);
    expect_delta("vm.firmware_check.ok.count", fw_ok0,
                 counter("vm.firmware_check.ok.count"), 1);
    verdict(detected,
            "the forged table is inside the measured firmware bytes");
  }

  // ------------------------------------------------------------- scene 3
  scene(3, "6.1.2 — tamper with the rootfs image before boot");
  {
    sevsnp::AmdSp sp(to_bytes(std::string_view("scene3")),
                     sevsnp::TcbVersion{2, 0, 8, 115});
    vm::Hypervisor hypervisor(sp, clock);
    vm::LaunchConfig config;
    config.kernel_blob = image.kernel_blob;
    config.initrd_blob = image.initrd_blob;
    config.cmdline = image.cmdline;
    config.disk = image.instantiate_disk();
    // One bit inside the rootfs partition (disk block 1 = rootfs block 0,
    // the filesystem directory).
    config.disk->raw_tamper(4096 * 1 + 100, 0x04);
    const auto vr_fail0 = counter("storage.verity_read.fail.count",
                                  {{"reason", "verity.block_mismatch"}});
    auto guest = hypervisor.launch(config);
    auto report = guest.ok() ? (*guest)->boot()
                             : Result<vm::BootReport>(guest.error());
    std::printf("    boot: %s\n",
                report.ok() ? "succeeded (?)"
                            : report.error().to_string().c_str());
    expect_delta("storage.verity_read.fail.count{..block_mismatch}", vr_fail0,
                 counter("storage.verity_read.fail.count",
                         {{"reason", "verity.block_mismatch"}}),
                 1, /*at_least=*/true);
    verdict(!report.ok(), "dm-verity root-hash chain down from the cmdline");
  }

  // ------------------------------------------------------------- scene 4
  scene(4, "6.1.3 — modify the running system from the host");
  {
    sevsnp::AmdSp sp(to_bytes(std::string_view("scene4")),
                     sevsnp::TcbVersion{2, 0, 8, 115});
    vm::Hypervisor hypervisor(sp, clock);
    vm::LaunchConfig config;
    config.kernel_blob = image.kernel_blob;
    config.initrd_blob = image.initrd_blob;
    config.cmdline = image.cmdline;
    config.disk = image.instantiate_disk();
    auto disk = config.disk;
    auto guest = hypervisor.launch(config);
    (void)(*guest)->boot();
    std::printf("    ssh to the VM: %s\n",
                (*guest)->inbound_allowed(22)
                    ? "open (?)"
                    : "blocked by the measured firewall posture");
    const auto entry =
        (*guest)->rootfs().directory().at("/opt/service/app");
    disk->raw_tamper(4096 + entry.offset, 0x01);
    const auto vr_fail0 = counter("storage.verity_read.fail.count",
                                  {{"reason", "verity.block_mismatch"}});
    const bool read_fails =
        !(*guest)->rootfs().read_file("/opt/service/app").ok();
    std::printf("    bit-flip the service binary on the host disk: read %s\n",
                read_fails ? "fails" : "returns tampered bytes (?)");
    expect_delta("storage.verity_read.fail.count{..block_mismatch}", vr_fail0,
                 counter("storage.verity_read.fail.count",
                         {{"reason", "verity.block_mismatch"}}),
                 1, /*at_least=*/true);
    verdict(read_fails && !(*guest)->inbound_allowed(22),
            "no inward access + per-read verity verification");
  }

  // ------------------------------------------------------------- scene 5
  scene(5, "6.1.4 — roll back to an obsolete vulnerable release");
  {
    // v1 had a bug; v2 is current. The provider re-deploys v1.
    imagebuild::BuildInputs v1_inputs = inputs;
    v1_inputs.service_files["/opt/service/app"] =
        to_bytes(std::string_view("service-v1-with-cve"));
    const auto v1 = *builder.build(v1_inputs);
    const auto v1_measurement = vm::Hypervisor::expected_measurement(
        v1.kernel_blob, v1.initrd_blob, v1.cmdline);

    core::TrustedRegistry trusted;
    trusted.publish("svc", v1_measurement);
    trusted.publish("svc", expected);      // v2 rollout...
    trusted.revoke("svc", v1_measurement);  // ...revokes v1
    const auto revoked0 =
        counter("registry.lookup.count", {{"result", "revoked"}});
    const bool v1_ok = trusted.is_acceptable("svc", v1_measurement);
    std::printf("    v1 acceptable after revocation: %s\n",
                v1_ok ? "yes (?)" : "no");
    expect_delta("registry.lookup.count{result=revoked}", revoked0,
                 counter("registry.lookup.count", {{"result", "revoked"}}), 1);
    verdict(!v1_ok, "trusted-registry revocation of obsolete hashes");
  }

  // ------------------------------------------------------------- scene 6
  scene(6, "MITM — certificate-swap redirect after attestation");
  {
    sevsnp::AmdSp platform(to_bytes(std::string_view("scene6")),
                           sevsnp::TcbVersion{2, 0, 8, 115});
    kds.register_platform(platform);
    core::RevelioVmConfig config;
    config.domain = "svc.revelio.app";
    config.host = "10.0.0.1";
    config.image = image;
    config.kds_address = {"kds.amd.com", 443};
    net::HttpRouter routes;
    routes.route("GET", "/", [](const net::HttpRequest&) {
      return net::HttpResponse::ok(to_bytes(std::string_view("legit")));
    });
    auto node = core::RevelioVm::deploy(platform, network, config,
                                        std::move(routes));
    core::SpNodeConfig sp_config;
    sp_config.domain = "svc.revelio.app";
    sp_config.kds_address = {"kds.amd.com", 443};
    sp_config.expected_measurements = {expected};
    core::SpNode sp(network, acme, sp_config);
    sp.approve_node((*node)->bootstrap_address(), platform.chip_id());
    (void)sp.provision_fleet();
    network.dns_set_a("svc.revelio.app", "10.0.0.1");

    core::Browser browser(network, "laptop", acme.trusted_roots(),
                          crypto::HmacDrbg(to_bytes(std::string_view("u"))));
    core::WebExtensionConfig ext_config;
    ext_config.kds_address = {"kds.amd.com", 443};
    core::WebExtension extension(browser, ext_config);
    core::SiteRegistration site;
    site.expected_measurements = {expected};
    extension.register_site("svc.revelio.app", site);
    const bool first = extension.get("svc.revelio.app", 443, "/").ok();
    std::printf("    initial attested access: %s\n", first ? "ok" : "failed");

    // The provider gets a fresh CA-valid certificate for the domain (it
    // controls DNS) and redirects traffic to a commodity server.
    crypto::HmacDrbg evil_drbg(to_bytes(std::string_view("evil")));
    const auto evil_key = crypto::ec_generate(crypto::p256(), evil_drbg);
    const auto evil_csr =
        pki::make_csr(crypto::p256(), evil_key,
                      {"svc.revelio.app", "Evil", "US"}, {"svc.revelio.app"});
    const std::string token =
        acme.request_challenge("evil", "svc.revelio.app");
    network.dns_set_txt("_acme-challenge.svc.revelio.app", token);
    auto evil_cert = acme.finalize("evil", evil_csr, [&](const auto& name) {
      return network.dns_txt(name);
    });
    net::TlsServerIdentity evil_identity;
    evil_identity.curve = &crypto::p256();
    evil_identity.key = evil_key;
    evil_identity.certificate = *evil_cert;
    evil_identity.intermediates = acme.intermediates();
    net::TlsServer evil_server(
        std::move(evil_identity),
        [](ByteView, const net::Address&) {
          return net::HttpResponse::ok(to_bytes(std::string_view("phish")))
              .serialize();
        },
        crypto::HmacDrbg(to_bytes(std::string_view("evil-tls"))));
    evil_server.install(network, {"6.6.6.6", 443});
    network.dns_set_a("svc.revelio.app", "6.6.6.6");
    browser.drop_session("svc.revelio.app");

    // The dropped session forces a full re-attestation; the evil server has
    // no SEV-SNP evidence to serve, so the attempt dies at evidence parsing
    // and the trace pins the failure to that exact step.
    const auto parse0 = counter("ext.attest.result.count",
                                {{"result", "evidence_parse"}});
    obs::tracer().clear();
    obs::tracer().set_enabled(true);
    auto redirected = extension.get("svc.revelio.app", 443, "/");
    obs::tracer().set_enabled(false);
    std::printf("    browser alone would accept the new CA-valid cert\n");
    std::printf("    extension: %s\n",
                redirected.ok()
                    ? "ACCEPTED (?)"
                    : redirected.error().to_string().c_str());
    expect_delta("ext.attest.result.count{result=evidence_parse}", parse0,
                 counter("ext.attest.result.count",
                         {{"result", "evidence_parse"}}),
                 1);
    expect_attr("ext.attest", "result", "evidence_parse");
    if (const auto* checks = extension.last_checks("svc.revelio.app")) {
      std::printf("    checks.failure_step = \"%s\"\n",
                  checks->failure_step.c_str());
    }
    verdict(!redirected.ok(),
            "per-request TLS-key monitoring against the attested key");
  }

  // ------------------------------------------------------------- scene 7
  scene(7, "6.1.1 — measurement permutations under a forged hash table");
  {
    // Both variants present blobs whose *contents* are made of the genuine
    // bytes — only their arrangement changes — and forge the firmware hash
    // table to match, so every local firmware check passes. The only line
    // of defence left is the launch measurement itself: because the AMD-SP
    // length-frames every LAUNCH_UPDATE extend, neither permutation can
    // collide with the genuine digest.
    const auto fw_ok0 = counter("vm.firmware_check.ok.count");

    // 7a: swap kernel and initrd wholesale.
    sevsnp::AmdSp sp_a(to_bytes(std::string_view("scene7a")),
                       sevsnp::TcbVersion{2, 0, 8, 115});
    vm::Hypervisor hyp_a(sp_a, clock);
    vm::LaunchConfig swapped;
    swapped.kernel_blob = image.initrd_blob;  // permuted order
    swapped.initrd_blob = image.kernel_blob;
    swapped.cmdline = image.cmdline;
    swapped.disk = image.instantiate_disk();
    swapped.forged_hash_table = vm::FirmwareHashTable::over(
        swapped.kernel_blob, swapped.initrd_blob, to_bytes(swapped.cmdline));
    auto guest_a = hyp_a.launch(swapped);
    // The forged table is built over exactly the permuted blobs, so the
    // firmware the SP measures is bit-identical to the honest reference
    // firmware *for that permutation* — expected_measurement over the
    // permuted blobs reproduces the launch measurement even when the
    // guest never gets far enough to hand one out (a wholesale swap dies
    // at the kernel handoff: an initrd is not a parseable kernel).
    const auto measured_a = vm::Hypervisor::expected_measurement(
        swapped.kernel_blob, swapped.initrd_blob, swapped.cmdline);
    const bool swap_detected = !(measured_a == expected);
    std::printf("    swapped kernel/initrd: firmware checks pass, boots: "
                "%s, measurement == genuine: %s\n",
                guest_a.ok() ? "yes" : "no",
                swap_detected ? "no" : "yes (?)");

    // 7b: shift one byte across the kernel/initrd boundary. The
    // concatenation of all measured blobs is bit-identical to the genuine
    // image; only the boundary moved. An unframed digest would collide.
    sevsnp::AmdSp sp_b(to_bytes(std::string_view("scene7b")),
                       sevsnp::TcbVersion{2, 0, 8, 115});
    vm::Hypervisor hyp_b(sp_b, clock);
    vm::LaunchConfig shifted;
    shifted.kernel_blob = image.kernel_blob;
    shifted.initrd_blob = image.initrd_blob;
    shifted.initrd_blob.insert(shifted.initrd_blob.begin(),
                               shifted.kernel_blob.back());
    shifted.kernel_blob.pop_back();
    shifted.cmdline = image.cmdline;
    shifted.disk = image.instantiate_disk();
    shifted.forged_hash_table = vm::FirmwareHashTable::over(
        shifted.kernel_blob, shifted.initrd_blob, to_bytes(shifted.cmdline));
    auto guest_b = hyp_b.launch(shifted);
    const auto measured_b = vm::Hypervisor::expected_measurement(
        shifted.kernel_blob, shifted.initrd_blob, shifted.cmdline);
    const bool shift_detected = !(measured_b == expected);
    std::printf("    boundary-shifted blobs: concatenation identical, "
                "boots: %s, measurement == genuine: %s\n",
                guest_b.ok() ? "yes" : "no",
                shift_detected ? "no" : "yes (?)");

    // The forged tables matched their permuted blobs, so the firmware
    // checks *passed* — the permutations are invisible to every local
    // check and only the measurement separates them.
    expect_delta("vm.firmware_check.ok.count", fw_ok0,
                 counter("vm.firmware_check.ok.count"), 2);
    verdict(swap_detected && shift_detected,
            "the per-blob hash table puts blob boundaries into the "
            "measured firmware, so no permutation can collide");
  }

  // ------------------------------------------------------------- scene 8
  scene(8, "2.1.1 — guest-channel protocol-state fuzzing");
  {
    sevsnp::AmdSp sp(to_bytes(std::string_view("scene8")),
                     sevsnp::TcbVersion{2, 0, 8, 115});
    vm::Hypervisor hypervisor(sp, clock);
    vm::LaunchConfig config;
    config.kernel_blob = image.kernel_blob;
    config.initrd_blob = image.initrd_blob;
    config.cmdline = image.cmdline;
    config.disk = image.instantiate_disk();
    auto guest = hypervisor.launch(config);
    (void)(*guest)->boot();
    auto& channel = (*guest)->channel();

    const auto auth0 = counter("sevsnp.channel.auth_fail.count",
                               {{"side", "sp"}});
    int rejected = 0;
    const auto attempt = [&](const char* what, const Result<Bytes>& r) {
      const bool blocked = !r.ok();
      if (blocked) ++rejected;
      std::printf("    %-44s %s\n", what,
                  blocked ? r.error().code.c_str() : "ACCEPTED (?)");
    };

    // A malicious hypervisor owns the transport: capture a legitimate
    // sealed exchange to replay and reflect later.
    Bytes captured_request, captured_response;
    channel.set_transport([&](ByteView sealed) -> Result<Bytes> {
      captured_request = to_bytes(sealed);
      auto response = channel.deliver_to_sp(sealed);
      if (response.ok()) captured_response = *response;
      return response;
    });
    (void)channel.request_counter(0, false);
    channel.set_transport(nullptr);

    // Out-of-order / replayed: the captured request carries an old seq.
    attempt("replay an already-delivered request",
            channel.deliver_to_sp(captured_request));
    // Reflection: a response sealed in the SP->guest direction can never
    // authenticate as a guest->SP request.
    attempt("reflect an SP response back at the SP",
            channel.deliver_to_sp(captured_response));
    // Truncation and bit-flips break the AEAD tag.
    Bytes truncated = channel.seal_request(to_bytes(std::string_view("x")));
    truncated.pop_back();
    attempt("truncate a sealed request", channel.deliver_to_sp(truncated));
    Bytes flipped = channel.seal_request(to_bytes(std::string_view("x")));
    flipped[flipped.size() / 2] ^= 0x40;
    attempt("bit-flip a sealed ciphertext", channel.deliver_to_sp(flipped));
    // A message from a *future* sequence number must not be accepted early
    // (the hypervisor withholding one message cannot skip the stream).
    {
      Bytes skip;  // seal at seq n+1 by advancing guest_seq_ past n first
      append_u8(skip, 4);  // COUNTER_REQ
      append_u8(skip, 0);
      append_u8(skip, 0);
      // Seal at current seq, advance the guest with a *delivered* message,
      // then replay the earlier seal: from the SP's view that seq already
      // passed, equivalent to an out-of-order arrival.
      const Bytes early = channel.seal_request(skip);
      (void)channel.request_counter(0, false);  // consumes the seq
      attempt("deliver an out-of-order (stale-seq) request",
              channel.deliver_to_sp(early));
    }
    // Type confusion: validly sealed, in-sequence messages whose plaintext
    // confuses one message type for another. The AEAD opens — only the
    // per-type body validators hold the line, and they must reject before
    // any state moves. Each probe runs on a fresh channel (same VMPCK,
    // fresh sequence space) because a valid-but-malformed message consumes
    // an SP-side sequence number: the channel fails closed afterwards
    // rather than resynchronising.
    const auto confuse = [&](const char* what, Bytes plaintext) {
      auto fuzz = sevsnp::GuestChannel::open(sp);
      if (!fuzz.ok()) {
        ++g_metric_failures;
        return;
      }
      attempt(what, fuzz->deliver_to_sp(fuzz->seal_request(plaintext)));
    };
    {
      Bytes keyreq_as_counter;
      append_u8(keyreq_as_counter, 4);  // COUNTER_REQ type...
      append_u8(keyreq_as_counter, 1);  // ...with a KEY_REQ-shaped body
      append_u8(keyreq_as_counter, 1);
      append_u32be(keyreq_as_counter, 4);
      append(keyreq_as_counter, std::string_view("seal"));
      append_u32be(keyreq_as_counter, 32);
      confuse("COUNTER_REQ with a KEY_REQ body", keyreq_as_counter);
    }
    {
      Bytes unknown;
      append_u8(unknown, 9);  // no such message type
      append(unknown, std::string_view("junk"));
      confuse("unknown message type 9", unknown);
    }

    const auto auth_delta =
        counter("sevsnp.channel.auth_fail.count", {{"side", "sp"}}) - auth0;
    expect_delta("sevsnp.channel.auth_fail.count{side=sp}", 0, auth_delta,
                 5);  // replay, reflect, truncate, flip, stale-seq
    const bool counter_still_zero = [&] {
      // None of the fuzzed messages may have moved the counter slot.
      auto v = channel.request_counter(0, false);
      return v.ok() && *v == 0;
    }();
    std::printf("    counter slot after the barrage: %s\n",
                counter_still_zero ? "untouched" : "MOVED (?)");
    verdict(rejected == 7 && counter_still_zero,
            "AEAD over (direction, seq) AAD + strict per-type validators");
  }

  if (g_metric_failures > 0) {
    std::printf("\nall scenes complete — %d metric assertion(s) FAILED\n",
                g_metric_failures);
    return 1;
  }
  std::printf("\nall scenes complete, every metric trail as expected\n");
  return 0;
}

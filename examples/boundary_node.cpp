// Use case §4.2: a Revelio-protected Internet Computer Boundary Node.
//
// The Boundary Node translates ordinary HTTPS into IC protocol calls
// against a Byzantine-fault-tolerant subnet and hands browsers the
// verifying service worker. A malicious BN can tamper with responses or
// serve a doctored worker — compromising the IC's fault tolerance from
// outside. This example runs the whole path:
//
//   browser + extension --HTTPS--> Revelio BN --IC protocol--> subnet
//
// and demonstrates the two complementary defences: threshold certificates
// (catch tampered responses) and Revelio attestation (catch a tampered BN
// build, including the doctored service worker).
//
// Run: ./build/examples/boundary_node
#include <cstdio>

#include "ic/boundary_node.hpp"
#include "imagebuild/builder.hpp"
#include "revelio/revelio_vm.hpp"
#include "revelio/sp_node.hpp"
#include "revelio/web_extension.hpp"

using namespace revelio;

int main() {
  std::printf("== Revelio-protected IC Boundary Node ==\n\n");

  SimClock clock;
  net::Network network(clock);
  crypto::HmacDrbg drbg(to_bytes(std::string_view("bn-example")));
  sevsnp::KeyDistributionServer kds(drbg);
  core::KdsService kds_service(kds, network, {"kds.amd.com", 443});
  pki::AcmeIssuer acme(clock, drbg);

  // ------------------------------------------------------------- the IC
  // One subnet, f=1 (4 replicas, certification threshold 3), hosting a
  // counter dapp and its frontend assets.
  ic::Subnet subnet(1, drbg);
  subnet.install_canister("counter", ic::CounterCanister{});
  ic::AssetCanister frontend;
  frontend.deploy_asset("/index.html",
                        to_bytes(std::string_view("<html>counter dapp</html>")),
                        "text/html");
  subnet.install_canister("frontend", frontend);
  const auto subnet_keys = subnet.public_keys();
  std::printf("[ic] subnet: %u replicas, threshold %u\n",
              subnet.replica_count(), subnet.threshold());

  // ---------------------------------------------------- the boundary node
  ic::BoundaryNode bn(subnet);

  // BN workload image (the paper's BN: many services).
  imagebuild::PackageRegistry registry;
  imagebuild::BaseImage base;
  base.name = "ubuntu";
  base.tag = "20.04";
  base.packages = {{"nginx", "1.18",
                    {{"/usr/sbin/nginx",
                      to_bytes(std::string_view("nginx-binary"))}}}};
  imagebuild::BuildInputs inputs;
  inputs.base_image_digest = registry.publish(base);
  inputs.service_files["/opt/ic/boundary-node"] =
      to_bytes(std::string_view("ic-boundary-node-release-2023-08"));
  // The service worker the BN serves is part of the measured image.
  inputs.service_files["/opt/ic/service-worker.js"] =
      ic::BoundaryNode::reference_service_worker();
  inputs.initrd.services = {
      {"ic-boundary", "/opt/ic/boundary-node", 800.0},
      {"icx-proxy", "/opt/ic/boundary-node", 300.0},
      {"nginx", "/usr/sbin/nginx", 150.0},
      {"unbound", "/usr/sbin/nginx", 90.0},
      {"ic-registry-replicator", "/opt/ic/boundary-node", 400.0},
  };
  inputs.initrd.allowed_inbound_ports = {"443", "8443"};
  imagebuild::ImageBuilder builder(registry);
  const auto image = *builder.build(inputs);
  const auto expected = vm::Hypervisor::expected_measurement(
      image.kernel_blob, image.initrd_blob, image.cmdline);

  sevsnp::AmdSp platform(to_bytes(std::string_view("bn-host-zh2")),
                         sevsnp::TcbVersion{2, 0, 8, 115});
  kds.register_platform(platform);

  // The VM's HTTP surface IS the boundary node proxy.
  net::HttpRouter routes;
  routes.route("GET", "/*", [&bn](const net::HttpRequest& request) {
    return bn.handle(request);
  });
  routes.route("POST", "/*", [&bn](const net::HttpRequest& request) {
    return bn.handle(request);
  });
  core::RevelioVmConfig config;
  config.domain = "ic0.revelio.app";
  config.host = "10.1.0.1";
  config.image = image;
  config.kds_address = {"kds.amd.com", 443};
  auto node = core::RevelioVm::deploy(platform, network, config,
                                      std::move(routes));
  if (!node.ok()) {
    std::printf("deploy failed: %s\n", node.error().to_string().c_str());
    return 1;
  }
  std::printf("[bn] boot: %.1f ms simulated (%zu phases)\n",
              (*node)->boot_report().total_sim_ms(),
              (*node)->boot_report().phases.size());

  core::SpNodeConfig sp_config;
  sp_config.domain = "ic0.revelio.app";
  sp_config.kds_address = {"kds.amd.com", 443};
  sp_config.expected_measurements = {expected};
  core::SpNode sp(network, acme, sp_config);
  sp.approve_node((*node)->bootstrap_address(), platform.chip_id());
  if (auto r = sp.provision_fleet(); !r.ok()) {
    std::printf("provisioning failed: %s\n", r.error().to_string().c_str());
    return 1;
  }
  network.dns_set_a("ic0.revelio.app", "10.1.0.1");
  std::printf("[bn] attested, certified, serving HTTPS\n\n");

  // -------------------------------------------------------- the end-user
  core::Browser browser(network, "user", acme.trusted_roots(),
                        crypto::HmacDrbg(to_bytes(std::string_view("user"))));
  core::WebExtensionConfig ext_config;
  ext_config.kds_address = {"kds.amd.com", 443};
  core::WebExtension extension(browser, ext_config);
  core::SiteRegistration site;
  site.expected_measurements = {expected};
  extension.register_site("ic0.revelio.app", site);

  // 1. Attested first contact; fetch the service worker.
  auto sw = extension.get("ic0.revelio.app", 443, "/sw.js");
  std::printf("[user] BN attestation: %s\n",
              sw.ok() && sw->checks.all_ok() ? "PASS" : "FAIL");
  std::printf("[user] service worker matches reference: %s\n",
              sw.ok() && sw->response.body ==
                             ic::BoundaryNode::reference_service_worker()
                  ? "yes"
                  : "NO");

  // 2. Interact with the dapp through the BN; verify every certificate the
  //    way the service worker does.
  net::HttpRequest increment;
  increment.method = "POST";
  increment.path = "/api/counter/update/increment";
  increment.host = "ic0.revelio.app";
  for (int i = 0; i < 3; ++i) {
    auto response = extension.fetch("ic0.revelio.app", 443, increment);
    if (!response.ok()) {
      std::printf("update failed: %s\n", response.error().to_string().c_str());
      return 1;
    }
    const auto cert_check = ic::verify_bn_response(
        response->response, subnet_keys, subnet.threshold());
    std::printf("[user] increment -> value %llu, certificate %s\n",
                static_cast<unsigned long long>(
                    read_u64be(response->response.body, 0)),
                cert_check.ok() ? "valid" : "INVALID");
  }
  auto page = extension.get("ic0.revelio.app", 443,
                            "/assets/frontend/index.html");
  std::printf("[user] frontend: %s (certificate %s)\n",
              to_string(page->response.body).c_str(),
              ic::verify_bn_response(page->response, subnet_keys,
                                     subnet.threshold())
                      .ok()
                  ? "valid"
                  : "INVALID");

  // ------------------------------------------------------------- attacks
  std::printf("\n-- attack 1: BN tampers with certified responses --\n");
  bn.set_tamper_mode(ic::BnTamperMode::kTamperResponses);
  auto tampered = extension.get("ic0.revelio.app", 443,
                                "/api/counter/query/get");
  if (tampered.ok()) {
    const auto st = ic::verify_bn_response(tampered->response, subnet_keys,
                                           subnet.threshold());
    std::printf("   certificate check: %s\n",
                st.ok() ? "passed (BAD)" : ("rejected — " + st.error().code).c_str());
  }
  bn.set_tamper_mode(ic::BnTamperMode::kHonest);

  std::printf("\n-- attack 2: a Byzantine replica corrupts execution --\n");
  subnet.set_byzantine(2, ic::ByzantineMode::kCorruptExecution);
  auto masked = extension.fetch("ic0.revelio.app", 443, increment);
  std::printf("   f=1 fault masked by the subnet: %s\n",
              masked.ok() && ic::verify_bn_response(masked->response,
                                                    subnet_keys,
                                                    subnet.threshold())
                                 .ok()
                  ? "yes"
                  : "NO");
  subnet.set_byzantine(2, ic::ByzantineMode::kHonest);

  std::printf("\n-- attack 3: provider deploys a BN with a doctored service "
              "worker --\n");
  imagebuild::BuildInputs evil = inputs;
  evil.service_files["/opt/ic/service-worker.js"] = to_bytes(
      std::string_view("// ic-service-worker v1 (doctored)\n"
                       "verify_certificates=false\n"));
  const auto evil_image = *builder.build(evil);
  std::printf("   doctored build measurement differs: %s\n",
              vm::Hypervisor::expected_measurement(
                  evil_image.kernel_blob, evil_image.initrd_blob,
                  evil_image.cmdline) == expected
                  ? "NO (bad)"
                  : "yes -> end-user attestation rejects the doctored BN");

  std::printf("\ndone at %s simulated time\n", clock.to_string().c_str());
  return 0;
}

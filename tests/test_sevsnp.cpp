#include <gtest/gtest.h>

#include "sevsnp/amd_sp.hpp"
#include "sevsnp/attestation_report.hpp"
#include "obs/metrics.hpp"
#include "sevsnp/guest_channel.hpp"
#include "sevsnp/kds.hpp"

namespace revelio::sevsnp {
namespace {

using crypto::HmacDrbg;

TcbVersion tcb(std::uint8_t bl, std::uint8_t tee, std::uint8_t snp,
               std::uint8_t ucode) {
  return TcbVersion{bl, tee, snp, ucode};
}

struct SnpFixture : ::testing::Test {
  SnpFixture()
      : sp(to_bytes(std::string_view("platform-seed-1")), tcb(2, 0, 8, 115)),
        kds_drbg(to_bytes(std::string_view("kds-seed"))),
        kds(kds_drbg) {
    kds.register_platform(sp);
  }

  Measurement launch_guest(std::string_view blob = "firmware-image") {
    EXPECT_TRUE(sp.launch_start(0x30000).ok());
    EXPECT_TRUE(sp.launch_update(to_bytes(blob)).ok());
    auto m = sp.launch_finish();
    EXPECT_TRUE(m.ok());
    return *m;
  }

  AmdSp sp;
  HmacDrbg kds_drbg;
  KeyDistributionServer kds;
};

// ------------------------------------------------------------ TcbVersion

TEST(TcbVersion, EncodeDecodeRoundTrip) {
  const TcbVersion v = tcb(3, 1, 8, 115);
  EXPECT_EQ(TcbVersion::decode(v.encode()), v);
}

TEST(TcbVersion, AtLeastIsComponentwise) {
  EXPECT_TRUE(tcb(3, 1, 8, 115).at_least(tcb(2, 0, 8, 100)));
  EXPECT_FALSE(tcb(3, 1, 7, 115).at_least(tcb(2, 0, 8, 100)))
      << "one older component must fail the floor check";
  EXPECT_TRUE(tcb(1, 1, 1, 1).at_least(tcb(1, 1, 1, 1)));
}

// ----------------------------------------------------------------- AmdSp

TEST_F(SnpFixture, ChipIdIsStableAndUnique) {
  AmdSp same_seed(to_bytes(std::string_view("platform-seed-1")),
                  tcb(2, 0, 8, 115));
  AmdSp other_seed(to_bytes(std::string_view("platform-seed-2")),
                   tcb(2, 0, 8, 115));
  EXPECT_EQ(sp.chip_id(), same_seed.chip_id());
  EXPECT_NE(sp.chip_id().bytes(), other_seed.chip_id().bytes());
}

TEST_F(SnpFixture, LaunchStateMachineEnforced) {
  EXPECT_FALSE(sp.launch_update(to_bytes(std::string_view("x"))).ok());
  EXPECT_FALSE(sp.launch_finish().ok());
  EXPECT_FALSE(sp.get_report({}).ok());
  ASSERT_TRUE(sp.launch_start(0).ok());
  EXPECT_FALSE(sp.launch_start(0).ok()) << "no nested launches";
  ASSERT_TRUE(sp.launch_update(to_bytes(std::string_view("fw"))).ok());
  ASSERT_TRUE(sp.launch_finish().ok());
  EXPECT_TRUE(sp.get_report({}).ok());
  sp.launch_reset();
  EXPECT_FALSE(sp.get_report({}).ok());
}

TEST_F(SnpFixture, MeasurementDependsOnContent) {
  const auto m1 = launch_guest("image-a");
  sp.launch_reset();
  const auto m2 = launch_guest("image-b");
  EXPECT_FALSE(m1 == m2);
}

TEST_F(SnpFixture, MeasurementDependsOnBlobBoundaries) {
  ASSERT_TRUE(sp.launch_start(0).ok());
  ASSERT_TRUE(sp.launch_update(to_bytes(std::string_view("ab"))).ok());
  ASSERT_TRUE(sp.launch_update(to_bytes(std::string_view("c"))).ok());
  const auto m1 = sp.launch_finish();
  sp.launch_reset();
  ASSERT_TRUE(sp.launch_start(0).ok());
  ASSERT_TRUE(sp.launch_update(to_bytes(std::string_view("a"))).ok());
  ASSERT_TRUE(sp.launch_update(to_bytes(std::string_view("bc"))).ok());
  const auto m2 = sp.launch_finish();
  EXPECT_FALSE(*m1 == *m2)
      << "length framing must distinguish split points";
}

TEST_F(SnpFixture, MeasurementIsReproducible) {
  const auto m1 = launch_guest("same-image");
  sp.launch_reset();
  const auto m2 = launch_guest("same-image");
  EXPECT_EQ(m1, m2);
}

TEST_F(SnpFixture, ReportSerializationRoundTrip) {
  launch_guest();
  ReportData rd = ReportData::from(to_bytes(std::string_view("user data")));
  auto report = sp.get_report(rd);
  ASSERT_TRUE(report.ok());
  auto parsed = AttestationReport::parse(report->serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->measurement, report->measurement);
  EXPECT_EQ(parsed->report_data, rd);
  EXPECT_EQ(parsed->chip_id, sp.chip_id());
  EXPECT_EQ(parsed->reported_tcb, sp.tcb());
  EXPECT_EQ(parsed->signature, report->signature);
}

TEST(AttestationReport, ParseRejectsGarbage) {
  EXPECT_FALSE(AttestationReport::parse({}).ok());
  EXPECT_FALSE(
      AttestationReport::parse(to_bytes(std::string_view("junk"))).ok());
  Bytes big(300, 0xab);
  EXPECT_FALSE(AttestationReport::parse(big).ok());
}

// ------------------------------------------------------- Report + KDS

TEST_F(SnpFixture, ReportVerifiesAgainstKdsChain) {
  launch_guest();
  auto report = sp.get_report({});
  ASSERT_TRUE(report.ok());
  auto vcek = kds.fetch_vcek(report->chip_id, report->reported_tcb);
  ASSERT_TRUE(vcek.ok());
  EXPECT_TRUE(verify_report(*report, *vcek, kds.intermediates(),
                            kds.trusted_roots(), {})
                  .ok());
}

TEST_F(SnpFixture, TamperedReportFieldsFailVerification) {
  launch_guest();
  auto report = sp.get_report({});
  ASSERT_TRUE(report.ok());
  auto vcek = kds.fetch_vcek(report->chip_id, report->reported_tcb);
  ASSERT_TRUE(vcek.ok());

  AttestationReport tampered = *report;
  tampered.measurement[0] ^= 1;
  EXPECT_FALSE(verify_report(tampered, *vcek, kds.intermediates(),
                             kds.trusted_roots(), {})
                   .ok());
  tampered = *report;
  tampered.report_data[0] ^= 1;
  EXPECT_FALSE(verify_report(tampered, *vcek, kds.intermediates(),
                             kds.trusted_roots(), {})
                   .ok());
  tampered = *report;
  tampered.guest_policy ^= 1;
  EXPECT_FALSE(verify_report(tampered, *vcek, kds.intermediates(),
                             kds.trusted_roots(), {})
                   .ok());
}

TEST_F(SnpFixture, ReportSignedByOtherChipFails) {
  launch_guest();
  auto report = sp.get_report({});
  ASSERT_TRUE(report.ok());

  AmdSp other(to_bytes(std::string_view("other-platform")), sp.tcb());
  kds.register_platform(other);
  auto other_vcek = kds.fetch_vcek(other.chip_id(), sp.tcb());
  ASSERT_TRUE(other_vcek.ok());
  const auto st = verify_report(*report, *other_vcek, kds.intermediates(),
                                kds.trusted_roots(), {});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "snp.signature_invalid");
}

TEST_F(SnpFixture, KdsRejectsUnknownChip) {
  ChipId unknown = ChipId::from(to_bytes(std::string_view("nobody")));
  EXPECT_EQ(kds.fetch_vcek(unknown, sp.tcb()).error().code,
            "kds.unknown_chip");
}

TEST_F(SnpFixture, FirmwareUpdateRotatesVcek) {
  const Bytes old_key = sp.vcek_public_key(sp.tcb());
  const TcbVersion new_tcb = tcb(3, 0, 9, 120);
  sp.update_firmware(new_tcb);
  const Bytes new_key = sp.vcek_public_key(sp.tcb());
  EXPECT_NE(old_key, new_key);
  // Old TCB still derivable (KDS serves certs for historic TCBs).
  EXPECT_EQ(sp.vcek_public_key(tcb(2, 0, 8, 115)), old_key);
}

TEST_F(SnpFixture, TcbFloorRejectsOldFirmware) {
  launch_guest();
  auto report = sp.get_report({});
  ASSERT_TRUE(report.ok());
  auto vcek = kds.fetch_vcek(report->chip_id, report->reported_tcb);
  ASSERT_TRUE(vcek.ok());
  ReportVerifyOptions options;
  options.minimum_tcb = tcb(3, 0, 9, 120);  // higher than platform's
  const auto st = verify_report(*report, *vcek, kds.intermediates(),
                                kds.trusted_roots(), options);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "snp.tcb_too_old");
}

TEST_F(SnpFixture, ReportAfterFirmwareUpdateNeedsNewVcek) {
  launch_guest();
  auto old_vcek = kds.fetch_vcek(sp.chip_id(), sp.tcb());
  ASSERT_TRUE(old_vcek.ok());
  sp.update_firmware(tcb(3, 0, 9, 120));
  auto report = sp.get_report({});
  ASSERT_TRUE(report.ok());
  // Old VCEK no longer verifies the new report...
  EXPECT_FALSE(verify_report(*report, *old_vcek, kds.intermediates(),
                             kds.trusted_roots(), {})
                   .ok());
  // ...but the TCB-matched VCEK does.
  auto new_vcek = kds.fetch_vcek(report->chip_id, report->reported_tcb);
  ASSERT_TRUE(new_vcek.ok());
  EXPECT_TRUE(verify_report(*report, *new_vcek, kds.intermediates(),
                            kds.trusted_roots(), {})
                  .ok());
}

// -------------------------------------------------------- Key derivation

TEST_F(SnpFixture, SealingKeyBoundToMeasurement) {
  launch_guest("image-a");
  KeyDerivationPolicy policy;
  policy.context = "disk-encryption";
  auto key_a = sp.derive_key(policy);
  ASSERT_TRUE(key_a.ok());

  // Same measurement again -> same key (across "reboots").
  sp.launch_reset();
  launch_guest("image-a");
  auto key_a2 = sp.derive_key(policy);
  ASSERT_TRUE(key_a2.ok());
  EXPECT_EQ(*key_a, *key_a2);

  // Different image -> different key.
  sp.launch_reset();
  launch_guest("image-b");
  auto key_b = sp.derive_key(policy);
  ASSERT_TRUE(key_b.ok());
  EXPECT_NE(*key_a, *key_b);
}

TEST_F(SnpFixture, SealingKeyBoundToPlatform) {
  launch_guest("image-a");
  KeyDerivationPolicy policy;
  policy.context = "disk-encryption";
  auto key_here = sp.derive_key(policy);
  ASSERT_TRUE(key_here.ok());

  AmdSp other(to_bytes(std::string_view("other-platform")), sp.tcb());
  ASSERT_TRUE(other.launch_start(0x30000).ok());
  ASSERT_TRUE(other.launch_update(to_bytes(std::string_view("image-a"))).ok());
  ASSERT_TRUE(other.launch_finish().ok());
  auto key_there = other.derive_key(policy);
  ASSERT_TRUE(key_there.ok());
  EXPECT_NE(*key_here, *key_there)
      << "sealing keys must not migrate across chips";
}

TEST_F(SnpFixture, ContextSeparatesKeys) {
  launch_guest();
  KeyDerivationPolicy a;
  a.context = "disk";
  KeyDerivationPolicy b;
  b.context = "tls";
  EXPECT_NE(*sp.derive_key(a), *sp.derive_key(b));
}

TEST_F(SnpFixture, UnmeasuredPolicyIgnoresMeasurement) {
  launch_guest("image-a");
  KeyDerivationPolicy policy;
  policy.mix_measurement = false;
  policy.context = "platform-key";
  auto k1 = sp.derive_key(policy);
  sp.launch_reset();
  launch_guest("image-b");
  auto k2 = sp.derive_key(policy);
  EXPECT_EQ(*k1, *k2);
}

// ----------------------------------------------------- Runtime RTMRs

TEST_F(SnpFixture, RtmrExtendReflectsInReports) {
  launch_guest();
  auto before = sp.get_report({});
  ASSERT_TRUE(before.ok());
  const Measurement event = crypto::sha384(to_bytes(std::string_view("ev1")));
  ASSERT_TRUE(sp.rtmr_extend(0, event).ok());
  auto after = sp.get_report({});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->measurement, after->measurement)
      << "the launch measurement never changes";
  EXPECT_FALSE(before->rtmrs[0] == after->rtmrs[0]);
  EXPECT_EQ(before->rtmrs[1], after->rtmrs[1]) << "other RTMRs untouched";
}

TEST_F(SnpFixture, RtmrReplayMatchesHardwareValue) {
  launch_guest();
  std::vector<Measurement> events;
  for (const char* name : {"service:a", "service:b", "config:v2"}) {
    events.push_back(crypto::sha384(to_bytes(std::string_view(name))));
    ASSERT_TRUE(sp.rtmr_extend(2, events.back()).ok());
  }
  auto report = sp.get_report({});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rtmrs[2], replay_rtmr(events));
  // Replay is order-sensitive.
  std::swap(events[0], events[1]);
  EXPECT_FALSE(report->rtmrs[2] == replay_rtmr(events));
}

TEST_F(SnpFixture, RtmrGuardsIndexAndState) {
  EXPECT_FALSE(sp.rtmr_extend(0, {}).ok()) << "no guest running";
  launch_guest();
  EXPECT_FALSE(sp.rtmr_extend(kRtmrCount, {}).ok()) << "index out of range";
  sp.launch_reset();
  launch_guest();
  auto report = sp.get_report({});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rtmrs[0], Measurement{})
      << "RTMRs reset with the guest context";
}

TEST_F(SnpFixture, RtmrsAreSigned) {
  launch_guest();
  ASSERT_TRUE(
      sp.rtmr_extend(0, crypto::sha384(to_bytes(std::string_view("e")))).ok());
  auto report = sp.get_report({});
  ASSERT_TRUE(report.ok());
  auto vcek = kds.fetch_vcek(report->chip_id, report->reported_tcb);
  ASSERT_TRUE(vcek.ok());
  ASSERT_TRUE(verify_report(*report, *vcek, kds.intermediates(),
                            kds.trusted_roots(), {})
                  .ok());
  // Tampering an RTMR invalidates the signature.
  AttestationReport tampered = *report;
  tampered.rtmrs[0][0] ^= 1;
  EXPECT_FALSE(verify_report(tampered, *vcek, kds.intermediates(),
                             kds.trusted_roots(), {})
                   .ok());
}

TEST_F(SnpFixture, ChannelRtmrExtendWorks) {
  launch_guest();
  auto channel = GuestChannel::open(sp);
  ASSERT_TRUE(channel.ok());
  const Measurement event =
      crypto::sha384(to_bytes(std::string_view("channel-event")));
  ASSERT_TRUE(channel->extend_rtmr(1, event).ok());
  EXPECT_EQ(sp.rtmrs()[1], replay_rtmr(std::vector<Measurement>{event}));
  EXPECT_FALSE(channel->extend_rtmr(99, event).ok());
}

// ------------------------------------------------------------- Channel

TEST_F(SnpFixture, ChannelReportMatchesDirectRequest) {
  launch_guest();
  auto channel = GuestChannel::open(sp);
  ASSERT_TRUE(channel.ok());
  ReportData rd = ReportData::from(to_bytes(std::string_view("pubkey-hash")));
  auto via_channel = channel->request_report(rd);
  ASSERT_TRUE(via_channel.ok());
  auto direct = sp.get_report(rd);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(via_channel->serialize(), direct->serialize());
}

TEST_F(SnpFixture, ChannelKeyRequestWorks) {
  launch_guest();
  auto channel = GuestChannel::open(sp);
  ASSERT_TRUE(channel.ok());
  KeyDerivationPolicy policy;
  policy.context = "disk";
  auto via_channel = channel->request_key(policy, 32);
  ASSERT_TRUE(via_channel.ok());
  EXPECT_EQ(*via_channel, *sp.derive_key(policy, 32));
}

TEST_F(SnpFixture, ChannelRejectsReplay) {
  launch_guest();
  auto channel = GuestChannel::open(sp);
  ASSERT_TRUE(channel.ok());
  // Capture a sealed request, deliver it once (ok), then replay it.
  Bytes request;
  append_u8(request, 1);  // MSG_REPORT_REQ
  request.resize(1 + 64, 0);
  const Bytes sealed = channel->seal_request(request);
  EXPECT_TRUE(channel->deliver_to_sp(sealed).ok());
  const auto replay = channel->deliver_to_sp(sealed);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.error().code, "snp.channel_auth_failed");
}

TEST_F(SnpFixture, ChannelRejectsForgedMessages) {
  launch_guest();
  auto channel = GuestChannel::open(sp);
  ASSERT_TRUE(channel.ok());
  Bytes forged(120, 0x41);  // hypervisor-invented ciphertext
  EXPECT_FALSE(channel->deliver_to_sp(forged).ok());
}

TEST_F(SnpFixture, ChannelRequiresRunningGuest) {
  EXPECT_FALSE(GuestChannel::open(sp).ok());
}

TEST_F(SnpFixture, ChannelRetriesFlakyTransportAndRecovers) {
  launch_guest();
  auto channel = GuestChannel::open(sp);
  ASSERT_TRUE(channel.ok());
  SimClock clock;
  net::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.jitter = 0.0;
  channel->set_resilience(clock, policy);
  // The hypervisor shuttle loses the first two *requests* — the SP never
  // sees them, so resending the identical ciphertext is safe.
  int attempts = 0;
  channel->set_transport([&](ByteView sealed) -> Result<Bytes> {
    if (++attempts <= 2) return Error::make("net.drop", "shuttle lost it");
    return channel->deliver_to_sp(sealed);
  });
  const auto before = obs::metrics().counter_value(
      "retry.attempts", {{"op", "snp.guest_channel"}});
  ReportData rd = ReportData::from(to_bytes(std::string_view("flaky")));
  auto report = channel->request_report(rd);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_EQ(attempts, 3);
  EXPECT_DOUBLE_EQ(clock.now_ms(), 150.0) << "50 + 100 ms virtual backoff";
  EXPECT_EQ(obs::metrics().counter_value("retry.attempts",
                                         {{"op", "snp.guest_channel"}}),
            before + 3);
}

TEST_F(SnpFixture, ChannelLostResponseFailsClosed) {
  launch_guest();
  auto channel = GuestChannel::open(sp);
  ASSERT_TRUE(channel.ok());
  SimClock clock;
  net::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.jitter = 0.0;
  channel->set_resilience(clock, policy);
  // The SP processes the request but the *response* is lost in transit. On
  // resend the SP has already advanced its expected sequence number, so the
  // identical ciphertext authenticates as a replay: the channel must fail
  // closed rather than resynchronise — the guest cannot tell an unlucky
  // drop from an active replay attempt.
  int attempts = 0;
  channel->set_transport([&](ByteView sealed) -> Result<Bytes> {
    auto response = channel->deliver_to_sp(sealed);
    if (++attempts == 1 && response.ok()) {
      return Error::make("net.drop", "response lost on the way back");
    }
    return response;
  });
  ReportData rd = ReportData::from(to_bytes(std::string_view("lost-resp")));
  auto report = channel->request_report(rd);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, "snp.channel_auth_failed");
  EXPECT_EQ(attempts, 2) << "the auth failure is permanent: no third try";
}

TEST_F(SnpFixture, ChannelRejectsMalformedRequests) {
  launch_guest();
  auto channel = GuestChannel::open(sp);
  ASSERT_TRUE(channel.ok());
  // Type 9 does not exist; sealed correctly but semantically invalid.
  Bytes request;
  append_u8(request, 9);
  const Bytes sealed = channel->seal_request(request);
  const auto r = channel->deliver_to_sp(sealed);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "snp.unknown_message_type");
}

}  // namespace
}  // namespace revelio::sevsnp

#include <gtest/gtest.h>

#include <limits>

#include "ic/boundary_node.hpp"
#include "ic/service_worker.hpp"
#include "ic/canister.hpp"
#include "ic/shamir.hpp"
#include "ic/subnet.hpp"

namespace revelio::ic {
namespace {

using crypto::HmacDrbg;
using crypto::U384;

Bytes kv_arg(std::string_view key, std::string_view value = {}) {
  Bytes arg = to_bytes(key);
  if (!value.empty()) {
    arg.push_back(0);
    append(arg, value);
  }
  return arg;
}

// ---------------------------------------------------------------- Shamir

TEST(Shamir, SplitRecoverRoundTrip) {
  HmacDrbg drbg(to_bytes(std::string_view("shamir")));
  const U384 secret = U384::from_u64(0xdeadbeefcafeULL);
  auto shares = shamir_split(secret, 3, 5, drbg);
  ASSERT_TRUE(shares.ok());
  ASSERT_EQ(shares->size(), 5u);

  // Any 3 shares recover.
  const std::vector<SecretShare> subset{(*shares)[0], (*shares)[2],
                                        (*shares)[4]};
  auto recovered = shamir_recover(subset);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*recovered, secret);
}

TEST(Shamir, DifferentSubsetsAgree) {
  HmacDrbg drbg(to_bytes(std::string_view("shamir-2")));
  const U384 secret = U384::from_bytes_be(drbg.generate(31));
  auto shares = shamir_split(secret, 4, 7, drbg);
  ASSERT_TRUE(shares.ok());
  const std::vector<SecretShare> a{(*shares)[0], (*shares)[1], (*shares)[2],
                                   (*shares)[3]};
  const std::vector<SecretShare> b{(*shares)[3], (*shares)[4], (*shares)[5],
                                   (*shares)[6]};
  EXPECT_EQ(*shamir_recover(a), secret);
  EXPECT_EQ(*shamir_recover(b), secret);
}

TEST(Shamir, TooFewSharesYieldWrongSecret) {
  HmacDrbg drbg(to_bytes(std::string_view("shamir-3")));
  const U384 secret = U384::from_u64(42);
  auto shares = shamir_split(secret, 3, 5, drbg);
  ASSERT_TRUE(shares.ok());
  const std::vector<SecretShare> two{(*shares)[0], (*shares)[1]};
  auto wrong = shamir_recover(two);
  ASSERT_TRUE(wrong.ok());
  EXPECT_FALSE(*wrong == secret)
      << "below-threshold interpolation must not recover the secret";
}

TEST(Shamir, RejectsBadParameters) {
  HmacDrbg drbg(to_bytes(std::string_view("shamir-4")));
  EXPECT_FALSE(shamir_split(U384::from_u64(1), 0, 5, drbg).ok());
  EXPECT_FALSE(shamir_split(U384::from_u64(1), 6, 5, drbg).ok());
  EXPECT_FALSE(shamir_split(crypto::p256().params().n, 2, 3, drbg).ok());
  EXPECT_FALSE(shamir_recover({}).ok());
  auto shares = shamir_split(U384::from_u64(7), 2, 3, drbg);
  ASSERT_TRUE(shares.ok());
  EXPECT_FALSE(
      shamir_recover({(*shares)[0], (*shares)[0]}).ok());
}

// -------------------------------------------------------------- Canisters

TEST(KeyValueCanister, SetGetDelete) {
  KeyValueCanister kv;
  EXPECT_TRUE(kv.update("set", kv_arg("k", "v")).ok());
  auto got = kv.query("get", kv_arg("k"));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(to_string(*got), "v");
  EXPECT_TRUE(kv.update("delete", kv_arg("k")).ok());
  EXPECT_FALSE(kv.query("get", kv_arg("k")).ok());
  EXPECT_FALSE(kv.update("nope", {}).ok());
  EXPECT_FALSE(kv.update("set", kv_arg("")).ok());
}

TEST(KeyValueCanister, StateHashTracksContent) {
  KeyValueCanister a, b;
  EXPECT_EQ(a.state_hash(), b.state_hash());
  ASSERT_TRUE(a.update("set", kv_arg("k", "v")).ok());
  EXPECT_FALSE(a.state_hash() == b.state_hash());
  ASSERT_TRUE(b.update("set", kv_arg("k", "v")).ok());
  EXPECT_EQ(a.state_hash(), b.state_hash());
}

TEST(CounterCanister, IncrementAndAdd) {
  CounterCanister counter;
  ASSERT_TRUE(counter.update("increment", {}).ok());
  Bytes five;
  append_u64be(five, 5);
  ASSERT_TRUE(counter.update("add", five).ok());
  auto got = counter.query("get", {});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(read_u64be(*got, 0), 6u);
  EXPECT_FALSE(counter.update("add", Bytes(3)).ok());
}

TEST(AssetCanister, DeployAndServe) {
  AssetCanister assets;
  assets.deploy_asset("/index.html", to_bytes(std::string_view("<html>")),
                      "text/html");
  Bytes arg = to_bytes(std::string_view("/index.html"));
  arg.push_back(0);
  auto got = assets.query("http_request", arg);
  ASSERT_TRUE(got.ok());
  const std::string reply = to_string(*got);
  EXPECT_EQ(reply, std::string("text/html") + '\0' + "<html>");
  EXPECT_FALSE(assets.query("http_request", kv_arg("/missing")).ok());
}

TEST(Canister, CloneIsDeep) {
  KeyValueCanister kv;
  ASSERT_TRUE(kv.update("set", kv_arg("k", "v1")).ok());
  auto copy = kv.clone();
  ASSERT_TRUE(kv.update("set", kv_arg("k", "v2")).ok());
  auto got = copy->query("get", kv_arg("k"));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(to_string(*got), "v1");
}

// ----------------------------------------------------------------- Subnet

struct SubnetFixture : ::testing::Test {
  SubnetFixture()
      : drbg(to_bytes(std::string_view("subnet-tests"))), subnet(1, drbg) {
    subnet.install_canister("kv", KeyValueCanister{});
    subnet.install_canister("counter", CounterCanister{});
  }
  HmacDrbg drbg;
  Subnet subnet;  // f=1 -> 4 replicas, threshold 3
};

TEST_F(SubnetFixture, SizesFollowByzantineFormula) {
  EXPECT_EQ(subnet.replica_count(), 4u);
  EXPECT_EQ(subnet.threshold(), 3u);
}

TEST_F(SubnetFixture, CertifiedUpdateVerifies) {
  auto r = subnet.update("kv", "set", kv_arg("user", "alice"));
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_TRUE(verify_certificate(r->certificate, r->reply,
                                 subnet.public_keys(), subnet.threshold())
                  .ok());
}

TEST_F(SubnetFixture, CertifiedQueryReflectsUpdates) {
  ASSERT_TRUE(subnet.update("counter", "increment", {}).ok());
  ASSERT_TRUE(subnet.update("counter", "increment", {}).ok());
  auto r = subnet.query("counter", "get", {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(read_u64be(r->reply, 0), 2u);
  EXPECT_TRUE(verify_certificate(r->certificate, r->reply,
                                 subnet.public_keys(), subnet.threshold())
                  .ok());
}

TEST_F(SubnetFixture, ToleratesOneByzantineReplica) {
  subnet.set_byzantine(2, ByzantineMode::kCorruptExecution);
  auto r = subnet.update("kv", "set", kv_arg("k", "v"));
  ASSERT_TRUE(r.ok()) << "f=1 faults must be masked";
  EXPECT_TRUE(verify_certificate(r->certificate, r->reply,
                                 subnet.public_keys(), subnet.threshold())
                  .ok());
}

TEST_F(SubnetFixture, ToleratesOneSilentReplica) {
  subnet.set_byzantine(0, ByzantineMode::kSilent);
  EXPECT_TRUE(subnet.update("kv", "set", kv_arg("k", "v")).ok());
}

TEST_F(SubnetFixture, TwoByzantineReplicasBreakAgreement) {
  subnet.set_byzantine(0, ByzantineMode::kCorruptExecution);
  subnet.set_byzantine(1, ByzantineMode::kSilent);
  // Corrupt + silent leaves only 2 honest signers of the right value... the
  // corrupt replica still counts in the execution bucket for its own wrong
  // value, honest bucket has 2 < 3.
  auto r = subnet.update("kv", "set", kv_arg("k", "v"));
  // Either agreement fails or certification fails, never a bad certificate.
  if (r.ok()) {
    FAIL() << "update must not certify with 2 faulty replicas out of 4";
  }
}

TEST_F(SubnetFixture, GarbageSignaturesDoNotCount) {
  subnet.set_byzantine(3, ByzantineMode::kSignGarbage);
  auto r = subnet.update("kv", "set", kv_arg("k", "v"));
  if (r.ok()) {
    // If the garbage signer landed in the certificate, verification must
    // still pass only when 3 *valid* signatures exist; check strictly.
    const auto st = verify_certificate(r->certificate, r->reply,
                                       subnet.public_keys(),
                                       subnet.threshold());
    // With 3 honest replicas agreeing, the certificate can carry their 3
    // valid signatures even if the garbage signer was skipped.
    EXPECT_TRUE(st.ok());
  }
}

TEST_F(SubnetFixture, TamperedReplyFailsVerification) {
  auto r = subnet.update("kv", "set", kv_arg("k", "v"));
  ASSERT_TRUE(r.ok());
  Bytes tampered = r->reply;
  tampered.push_back('!');
  EXPECT_FALSE(verify_certificate(r->certificate, tampered,
                                  subnet.public_keys(), subnet.threshold())
                   .ok());
}

TEST_F(SubnetFixture, ForgedCertificateFailsVerification) {
  auto r = subnet.update("kv", "set", kv_arg("k", "v"));
  ASSERT_TRUE(r.ok());
  Certificate forged = r->certificate;
  forged.response_hash = crypto::sha256(to_bytes(std::string_view("lie")));
  EXPECT_FALSE(verify_certificate(forged, to_bytes(std::string_view("lie")),
                                  subnet.public_keys(), subnet.threshold())
                   .ok());
}

TEST_F(SubnetFixture, DuplicateSignerRejected) {
  auto r = subnet.update("kv", "set", kv_arg("k", "v"));
  ASSERT_TRUE(r.ok());
  Certificate padded = r->certificate;
  padded.signatures.push_back(padded.signatures[0]);
  const auto st = verify_certificate(padded, r->reply, subnet.public_keys(),
                                     subnet.threshold());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "ic.duplicate_signer");
}

TEST_F(SubnetFixture, CertificateSerializationRoundTrip) {
  auto r = subnet.update("kv", "set", kv_arg("k", "v"));
  ASSERT_TRUE(r.ok());
  auto parsed = Certificate::parse(r->certificate.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(verify_certificate(*parsed, r->reply, subnet.public_keys(),
                                 subnet.threshold())
                  .ok());
  EXPECT_FALSE(Certificate::parse(to_bytes(std::string_view("junk"))).ok());
}

TEST_F(SubnetFixture, UnknownCanisterFails) {
  EXPECT_FALSE(subnet.update("ghost", "set", kv_arg("k", "v")).ok());
}

// ----------------------------------------------------------- BoundaryNode

struct BnFixture : SubnetFixture {
  BnFixture() : bn(subnet) {
    AssetCanister assets;
    assets.deploy_asset("/index.html",
                        to_bytes(std::string_view("<html>dapp</html>")),
                        "text/html");
    subnet.install_canister("frontend", assets);
  }

  net::HttpRequest get(const std::string& path) {
    net::HttpRequest req;
    req.method = "GET";
    req.path = path;
    return req;
  }

  BoundaryNode bn;
};

TEST_F(BnFixture, ServesServiceWorker) {
  auto resp = bn.handle(get("/sw.js"));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, BoundaryNode::reference_service_worker());
}

TEST_F(BnFixture, TranslatesUpdateAndQuery) {
  net::HttpRequest post;
  post.method = "POST";
  post.path = "/api/kv/update/set";
  post.body = kv_arg("greeting", "hello");
  auto update_resp = bn.handle(post);
  EXPECT_EQ(update_resp.status, 200);
  EXPECT_TRUE(verify_bn_response(update_resp, subnet.public_keys(),
                                 subnet.threshold())
                  .ok());

  net::HttpRequest query = get("/api/kv/query/get");
  query.body = kv_arg("greeting");
  auto query_resp = bn.handle(query);
  EXPECT_EQ(query_resp.status, 200);
  EXPECT_EQ(to_string(query_resp.body), "hello");
  EXPECT_TRUE(verify_bn_response(query_resp, subnet.public_keys(),
                                 subnet.threshold())
                  .ok());
}

TEST_F(BnFixture, ServesCertifiedAssets) {
  auto resp = bn.handle(get("/assets/frontend/index.html"));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(to_string(resp.body), "<html>dapp</html>");
  EXPECT_EQ(resp.headers.at("content-type"), "text/html");
  EXPECT_TRUE(
      verify_bn_response(resp, subnet.public_keys(), subnet.threshold()).ok());
}

TEST_F(BnFixture, TamperingBoundaryNodeIsDetected) {
  bn.set_tamper_mode(BnTamperMode::kTamperResponses);
  net::HttpRequest query = get("/api/counter/query/get");
  auto resp = bn.handle(query);
  EXPECT_EQ(resp.status, 200);
  const auto st =
      verify_bn_response(resp, subnet.public_keys(), subnet.threshold());
  ASSERT_FALSE(st.ok()) << "certificate check must expose BN tampering";
}

TEST_F(BnFixture, StrippedCertificateIsDetected) {
  bn.set_tamper_mode(BnTamperMode::kStripCertificates);
  auto resp = bn.handle(get("/assets/frontend/index.html"));
  const auto st =
      verify_bn_response(resp, subnet.public_keys(), subnet.threshold());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "ic.missing_certificate");
}

TEST_F(BnFixture, DoctoredServiceWorkerDiffersFromReference) {
  bn.set_tamper_mode(BnTamperMode::kServeDoctoredWorker);
  auto resp = bn.handle(get("/sw.js"));
  EXPECT_NE(resp.body, BoundaryNode::reference_service_worker())
      << "the doctored worker is byte-detectable (and Revelio-attestable)";
}

// ---------------------------------------------------------- ServiceWorker

TEST_F(BnFixture, ServiceWorkerInstallsFromHonestBn) {
  auto resp = bn.handle(get("/sw.js"));
  auto worker = ServiceWorkerClient::install(
      resp.body, ServiceWorkerClient::reference_digest(),
      subnet.public_keys(), subnet.threshold());
  ASSERT_TRUE(worker.ok());
}

TEST_F(BnFixture, DoctoredWorkerRefusedAtInstall) {
  bn.set_tamper_mode(BnTamperMode::kServeDoctoredWorker);
  auto resp = bn.handle(get("/sw.js"));
  auto worker = ServiceWorkerClient::install(
      resp.body, ServiceWorkerClient::reference_digest(),
      subnet.public_keys(), subnet.threshold());
  ASSERT_FALSE(worker.ok());
  EXPECT_EQ(worker.error().code, "sw.digest_mismatch");
}

TEST_F(BnFixture, WorkerPassesHonestTrafficBlocksTampered) {
  auto install_resp = bn.handle(get("/sw.js"));
  auto worker = ServiceWorkerClient::install(
      install_resp.body, ServiceWorkerClient::reference_digest(),
      subnet.public_keys(), subnet.threshold());
  ASSERT_TRUE(worker.ok());

  net::HttpRequest query = get("/api/counter/query/get");
  auto honest = worker->process(bn.handle(query));
  ASSERT_TRUE(honest.ok());
  EXPECT_EQ(worker->verified_count(), 1u);

  bn.set_tamper_mode(BnTamperMode::kTamperResponses);
  auto tampered = worker->process(bn.handle(query));
  ASSERT_FALSE(tampered.ok());
  EXPECT_EQ(worker->rejected_count(), 1u);

  bn.set_tamper_mode(BnTamperMode::kStripCertificates);
  EXPECT_FALSE(worker->process(bn.handle(query)).ok());
  EXPECT_EQ(worker->rejected_count(), 2u);
}

// ---------------------------------------------------------- BnFleetClient

struct BnFleetFixture : BnFixture {
  BnFleetFixture() : network(clock), bn2(subnet) {
    listen("bn1.ic.example", bn, bn1_handled);
    listen("bn2.ic.example", bn2, bn2_handled);
  }

  void listen(const std::string& host, BoundaryNode& node, int& counter) {
    network.listen({host, 443},
                   [&node, &counter](ByteView raw, const net::Address&) {
                     ++counter;
                     auto req = net::HttpRequest::parse(raw);
                     if (!req.ok()) {
                       return net::HttpResponse::error(400, "bad frame")
                           .serialize();
                     }
                     return node.handle(*req).serialize();
                   });
  }

  ServiceWorkerClient make_worker() {
    auto resp = bn.handle(get("/sw.js"));
    auto worker = ServiceWorkerClient::install(
        resp.body, ServiceWorkerClient::reference_digest(),
        subnet.public_keys(), subnet.threshold());
    EXPECT_TRUE(worker.ok());
    return *worker;
  }

  BnFleetClient make_client() {
    BnFleetClient::Config config;
    config.retry.max_attempts = 2;
    config.retry.jitter = 0.0;
    return BnFleetClient(network, {"laptop", 40000},
                         {{"bn1.ic.example", 443}, {"bn2.ic.example", 443}},
                         make_worker(), config);
  }

  SimClock clock;
  net::Network network;
  BoundaryNode bn2;
  int bn1_handled = 0;
  int bn2_handled = 0;
};

TEST_F(BnFleetFixture, CallVerifiesThroughPrimary) {
  auto client = make_client();
  auto resp = client.get("/api/counter/query/get");
  ASSERT_TRUE(resp.ok()) << resp.error().to_string();
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(client.worker().verified_count(), 1u);
  EXPECT_EQ(bn1_handled, 1);
  EXPECT_EQ(bn2_handled, 0);
}

TEST_F(BnFleetFixture, FailsOverWhenPrimaryIsBlackholed) {
  net::FaultPlan plan(to_bytes(std::string_view("bn-hole")));
  plan.blackhole("bn1.ic.example", 0,
                 std::numeric_limits<SimClock::Micros>::max());
  network.set_fault_plan(std::move(plan));
  auto client = make_client();
  auto resp = client.get("/api/counter/query/get");
  ASSERT_TRUE(resp.ok()) << resp.error().to_string();
  EXPECT_EQ(bn1_handled, 0);
  EXPECT_EQ(bn2_handled, 1) << "the backup replica served the call";
  EXPECT_EQ(client.worker().verified_count(), 1u)
      << "failed-over responses still pass threshold verification";
}

TEST_F(BnFleetFixture, TamperedResponseNeverFailsOver) {
  bn.set_tamper_mode(BnTamperMode::kTamperResponses);
  auto client = make_client();
  auto resp = client.get("/api/counter/query/get");
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.error().code, "sw.verification_failed");
  EXPECT_EQ(bn1_handled, 1);
  EXPECT_EQ(bn2_handled, 0)
      << "a tampered certificate is an attack verdict, not an outage: the "
         "client must not mask it by asking another replica";
  EXPECT_EQ(client.worker().rejected_count(), 1u);
}

TEST_F(BnFixture, UnknownRoutesAre404) {
  EXPECT_EQ(bn.handle(get("/nope")).status, 404);
  EXPECT_EQ(bn.handle(get("/api/kv/bad")).status, 404);
  net::HttpRequest wrong_verb = get("/api/kv/update/set");
  EXPECT_EQ(bn.handle(wrong_verb).status, 405);
}

}  // namespace
}  // namespace revelio::ic

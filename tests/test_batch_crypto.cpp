// Batch crypto layer: ecdsa_verify_batch vs N single verifies (bit for
// bit, including the fail-closed offender fallback), the 8-way
// multi-buffer SHA-256 vs the scalar core, the pinned verify-table
// registry under threads, and the batched verify stage end to end — a
// staged gateway wavefront through ONE batch dispatch must reproduce the
// unbatched transcript digest exactly, and a bad session inside a batched
// wavefront must land as a rejection in the tamper-evident audit chain.
// Labelled `batchcrypto`; runs tier-1 and under the asan/tsan presets.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "crypto/cpu_features.hpp"
#include "crypto/drbg.hpp"
#include "crypto/ec_precomp.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/sha2.hpp"
#include "imagebuild/builder.hpp"
#include "obs/audit_log.hpp"
#include "revelio/revelio_vm.hpp"
#include "revelio/session_engine.hpp"
#include "revelio/sp_node.hpp"
#include "revelio/web_extension.hpp"
#include "sevsnp/amd_sp.hpp"
#include "sevsnp/kds.hpp"
#include "vm/hypervisor.hpp"

namespace revelio::core {
namespace {

using crypto::HmacDrbg;

// ---------------------------------------------------------------------------
// ecdsa_verify_batch vs singles

std::vector<crypto::EcdsaBatchItem> make_batch(const crypto::Curve& curve,
                                               std::size_t n,
                                               std::string_view seed,
                                               std::size_t signer_keys = 4) {
  HmacDrbg drbg(to_bytes(seed));
  std::vector<crypto::EcKeyPair> keys;
  for (std::size_t i = 0; i < signer_keys; ++i) {
    keys.push_back(crypto::ec_generate(curve, drbg));
  }
  std::vector<crypto::EcdsaBatchItem> items(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& kp = keys[i % keys.size()];
    const auto hash = crypto::sha384(drbg.generate(100));
    items[i].pub = kp.q;
    append(items[i].msg_hash, hash.view());
    items[i].sig = crypto::ecdsa_sign(curve, kp.d, hash.view());
  }
  return items;
}

std::vector<bool> verify_singly(const crypto::Curve& curve,
                                const std::vector<crypto::EcdsaBatchItem>& v) {
  std::vector<bool> out;
  out.reserve(v.size());
  for (const auto& item : v) {
    out.push_back(
        crypto::ecdsa_verify(curve, item.pub, item.msg_hash, item.sig));
  }
  return out;
}

class BatchEcdsa : public ::testing::TestWithParam<const crypto::Curve*> {
 protected:
  const crypto::Curve& curve() const { return *GetParam(); }
};

TEST_P(BatchEcdsa, BatchVerdictsMatchSinglesOnValidBatch) {
  auto items = make_batch(curve(), 64, "batch-valid");
  EXPECT_EQ(crypto::ecdsa_verify_batch(curve(), items),
            verify_singly(curve(), items));
}

TEST_P(BatchEcdsa, EmptyAndSingleItemBatches) {
  EXPECT_TRUE(crypto::ecdsa_verify_batch(curve(), {}).empty());
  auto one = make_batch(curve(), 1, "batch-one", 1);
  EXPECT_EQ(crypto::ecdsa_verify_batch(curve(), one),
            std::vector<bool>{true});
}

TEST_P(BatchEcdsa, OneForgedSignatureInSixtyFourIsIdentifiedExactly) {
  auto items = make_batch(curve(), 64, "batch-forged");
  // Perturb one s; the combined equation collapses, the fallback must
  // pin the failure on exactly this index.
  crypto::add_with_carry(items[23].sig.s, items[23].sig.s,
                         crypto::U384::from_u64(1));
  const auto verdicts = crypto::ecdsa_verify_batch(curve(), items);
  ASSERT_EQ(verdicts.size(), 64u);
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    EXPECT_EQ(verdicts[i], i != 23) << "index " << i;
  }
  EXPECT_EQ(verdicts, verify_singly(curve(), items));
}

TEST_P(BatchEcdsa, WrongMessageInBatchIsIdentifiedExactly) {
  auto items = make_batch(curve(), 32, "batch-wrong-msg");
  items[7].msg_hash[0] ^= 0x01;
  const auto verdicts = crypto::ecdsa_verify_batch(curve(), items);
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    EXPECT_EQ(verdicts[i], i != 7) << "index " << i;
  }
  EXPECT_EQ(verdicts, verify_singly(curve(), items));
}

TEST_P(BatchEcdsa, HighSTwinFallsBackToSinglesAndStillVerifies) {
  // (r, n-s) verifies identically in single verification but its nonce
  // point has odd y, which lift_x_even cannot represent — the batch
  // equation fails and the fail-closed fallback must ACCEPT the twin.
  auto items = make_batch(curve(), 8, "batch-twin");
  crypto::U384 twin;
  crypto::sub_with_borrow(twin, curve().params().n, items[3].sig.s);
  items[3].sig.s = twin;
  ASSERT_TRUE(crypto::ecdsa_verify(curve(), items[3].pub, items[3].msg_hash,
                                   items[3].sig));
  const auto verdicts = crypto::ecdsa_verify_batch(curve(), items);
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    EXPECT_TRUE(verdicts[i]) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Curves, BatchEcdsa,
                         ::testing::Values(&crypto::p256(), &crypto::p384()));

// ---------------------------------------------------------------------------
// 8-way multi-buffer SHA-256 vs the scalar core

TEST(Sha256x8, MatchesScalarAcrossLengths) {
  // Block-boundary lengths: empty, short, the 55/56 padding split, one
  // block, one block + 1, and a bulk size.
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{55},
                              std::size_t{56}, std::size_t{63}, std::size_t{64},
                              std::size_t{65}, std::size_t{4096}}) {
    HmacDrbg drbg(to_bytes("sha-x8-" + std::to_string(n)));
    Bytes lanes[crypto::Sha256x8::kLanes];
    ByteView views[crypto::Sha256x8::kLanes];
    for (std::size_t l = 0; l < crypto::Sha256x8::kLanes; ++l) {
      lanes[l] = drbg.generate(n);
      views[l] = lanes[l];
    }
    crypto::Digest32 out[crypto::Sha256x8::kLanes];
    crypto::sha256_x8(views, out);
    for (std::size_t l = 0; l < crypto::Sha256x8::kLanes; ++l) {
      EXPECT_EQ(out[l], crypto::sha256(lanes[l]))
          << "lane " << l << " length " << n;
    }
  }
}

TEST(Sha256x8, StreamingSplitsMatchOneShot) {
  HmacDrbg drbg(to_bytes(std::string_view("sha-x8-stream")));
  Bytes lanes[crypto::Sha256x8::kLanes];
  for (auto& lane : lanes) lane = drbg.generate(4096);
  // Lockstep updates with an uneven split straddling a block boundary.
  for (const std::size_t split : {std::size_t{1}, std::size_t{63},
                                  std::size_t{64}, std::size_t{1000}}) {
    crypto::Sha256x8 hasher;
    ByteView head[crypto::Sha256x8::kLanes];
    ByteView tail[crypto::Sha256x8::kLanes];
    for (std::size_t l = 0; l < crypto::Sha256x8::kLanes; ++l) {
      head[l] = ByteView(lanes[l].data(), split);
      tail[l] = ByteView(lanes[l].data() + split, lanes[l].size() - split);
    }
    hasher.update(head);
    hasher.update(tail);
    crypto::Digest32 out[crypto::Sha256x8::kLanes];
    hasher.finish(out);
    for (std::size_t l = 0; l < crypto::Sha256x8::kLanes; ++l) {
      EXPECT_EQ(out[l], crypto::sha256(lanes[l]))
          << "split " << split << " lane " << l;
    }
  }
}

// ---------------------------------------------------------------------------
// Pinned verify-table registry under threads

TEST(PinnedTables, RegistryServesConcurrentVerifiers) {
  const crypto::Curve& curve = crypto::p384();
  HmacDrbg drbg(to_bytes(std::string_view("pinned-threads")));
  const auto kp = crypto::ec_generate(curve, drbg);
  const auto hash = crypto::sha384(drbg.generate(64));
  const auto sig = crypto::ecdsa_sign(curve, kp.d, hash.view());

  curve.pin_verify_tables(kp.q);
  const auto before = crypto::ecp::PinnedTableRegistry::instance().stats();

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 8; ++i) {
        if (!crypto::ecdsa_verify(curve, kp.q, hash.view(), sig)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  const auto after = crypto::ecp::PinnedTableRegistry::instance().stats();
  EXPECT_GE(after.pinned, 1u);
  EXPECT_GE(after.hits, before.hits + 32);
}

// ---------------------------------------------------------------------------
// sevsnp split verify: one forged report in a batch

TEST(SevsnpBatchVerify, ForgedReportAmongSixtyFourIsTheOnlyRejection) {
  HmacDrbg drbg(to_bytes(std::string_view("sevsnp-batch")));
  sevsnp::KeyDistributionServer kds(drbg);
  const sevsnp::TcbVersion tcb{2, 0, 8, 115};
  sevsnp::AmdSp platform(to_bytes(std::string_view("sevsnp-batch-sp")), tcb);
  kds.register_platform(platform);
  ASSERT_TRUE(platform.launch_start(0x30000).ok());
  ASSERT_TRUE(platform.launch_update(to_bytes(std::string_view("guest"))).ok());
  ASSERT_TRUE(platform.launch_finish().ok());
  auto vcek = kds.fetch_vcek(platform.chip_id(), tcb);
  ASSERT_TRUE(vcek.ok());

  constexpr std::size_t kReports = 64;
  constexpr std::size_t kForged = 41;
  std::vector<sevsnp::AttestationReport> reports;
  for (std::size_t i = 0; i < kReports; ++i) {
    sevsnp::ReportData data;
    data.data[0] = static_cast<std::uint8_t>(i);
    auto report = platform.get_report(data);
    ASSERT_TRUE(report.ok());
    reports.push_back(std::move(*report));
  }
  reports[kForged].signature[10] ^= 0x40;

  sevsnp::ReportVerifyOptions options;
  options.minimum_tcb = tcb;
  std::vector<crypto::EcdsaBatchItem> items(kReports);
  for (std::size_t i = 0; i < kReports; ++i) {
    auto prepared = sevsnp::prepare_report_verify(
        reports[i], *vcek, kds.intermediates(), kds.trusted_roots(), options);
    ASSERT_TRUE(prepared.ok()) << "report " << i;
    items[i].pub = prepared->vcek_pub;
    append(items[i].msg_hash, prepared->digest.view());
    items[i].sig = prepared->signature;
  }
  const auto verdicts = crypto::ecdsa_verify_batch(crypto::p384(), items);
  for (std::size_t i = 0; i < kReports; ++i) {
    const Status st =
        sevsnp::finish_report_verify(reports[i], verdicts[i], options);
    if (i == kForged) {
      ASSERT_FALSE(st.ok());
      EXPECT_EQ(st.error().code, "snp.signature_invalid");
      // The split halves must report the same error the blocking path does.
      const Status blocking = sevsnp::verify_report(
          reports[i], *vcek, kds.intermediates(), kds.trusted_roots(),
          options);
      ASSERT_FALSE(blocking.ok());
      EXPECT_EQ(st.error().code, blocking.error().code);
    } else {
      EXPECT_TRUE(st.ok()) << "report " << i << ": "
                           << st.error().to_string();
    }
  }
}

// ---------------------------------------------------------------------------
// Staged gateway end to end: batched wavefront vs per-session dispatch

constexpr const char* kDomain = "svc.revelio.app";
constexpr const char* kKdsPrimary = "kds.amd.com";
constexpr const char* kBody = "<html>app</html>";

/// Trimmed copy of the session-engine test fixture: one complete simulated
/// deployment per world, single-threaded by design (a session locks the
/// world and binds its clock for the duration of a stage).
struct GatewayWorld {
  explicit GatewayWorld(const std::string& seed)
      : network(clock),
        world_drbg(to_bytes("batch-gateway-" + seed)),
        kds(world_drbg),
        kds_service(kds, network, {kKdsPrimary, 443}),
        acme(clock, world_drbg),
        browser(network, "laptop", acme.trusted_roots(),
                HmacDrbg(to_bytes("browser-" + seed))) {
    imagebuild::BaseImage base;
    base.name = "ubuntu";
    base.tag = "20.04";
    base.packages = {
        {"nginx", "1.18", {{"/usr/sbin/nginx",
                            to_bytes(std::string_view("nginx-binary"))}}}};
    const crypto::Digest32 base_digest = registry.publish(base);

    imagebuild::BuildInputs inputs;
    inputs.base_image_digest = base_digest;
    inputs.service_files["/opt/service/app"] =
        to_bytes(std::string_view("service-binary-v1"));
    inputs.initrd.services = {{"app", "/opt/service/app", 300.0}};
    inputs.initrd.allowed_inbound_ports = {"443", "8443"};
    imagebuild::ImageBuilder builder(registry);
    auto built = builder.build(inputs);
    EXPECT_TRUE(built.ok());
    image = *built;
    expected_measurement = vm::Hypervisor::expected_measurement(
        image.kernel_blob, image.initrd_blob, image.cmdline);

    net::HttpRouter routes;
    routes.route("GET", "/", [](const net::HttpRequest&) {
      return net::HttpResponse::ok(to_bytes(std::string_view(kBody)),
                                   "text/html");
    });
    platform = std::make_unique<sevsnp::AmdSp>(
        to_bytes("platform-10.0.0.1-" + seed),
        sevsnp::TcbVersion{2, 0, 8, 115});
    kds.register_platform(*platform);
    RevelioVmConfig config;
    config.domain = kDomain;
    config.host = "10.0.0.1";
    config.image = image;
    config.kds_address = {kKdsPrimary, 443};
    auto deployed = RevelioVm::deploy(*platform, network, config, routes);
    EXPECT_TRUE(deployed.ok());
    node = std::move(*deployed);

    SpNodeConfig sp_config;
    sp_config.domain = kDomain;
    sp_config.kds_address = {kKdsPrimary, 443};
    sp_config.expected_measurements = {expected_measurement};
    sp = std::make_unique<SpNode>(network, acme, sp_config);
    sp->approve_node(node->bootstrap_address(), platform->chip_id());
    EXPECT_TRUE(sp->provision_fleet().ok());
    network.dns_set_a(kDomain, "10.0.0.1");
  }

  SiteRegistration registration() {
    SiteRegistration site;
    site.expected_measurements = {expected_measurement};
    return site;
  }

  SimClock clock;
  net::Network network;
  HmacDrbg world_drbg;
  sevsnp::KeyDistributionServer kds;
  KdsService kds_service;
  pki::AcmeIssuer acme;
  Browser browser;
  imagebuild::PackageRegistry registry;
  imagebuild::VmImage image;
  sevsnp::Measurement expected_measurement;
  std::unique_ptr<sevsnp::AmdSp> platform;
  std::unique_ptr<RevelioVm> node;
  std::unique_ptr<SpNode> sp;
  std::mutex mu;  // one lane drives the world at a time
};

std::vector<std::unique_ptr<GatewayWorld>> build_worlds(std::size_t count,
                                                        const char* seed) {
  std::vector<std::unique_ptr<GatewayWorld>> worlds;
  worlds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    worlds.push_back(std::make_unique<GatewayWorld>(seed));
  }
  return worlds;
}

struct StagedBatchRun {
  SessionEngine::StagedReport report;
  int unverified_accepts = 0;
};

/// Staged driver with optional batched verify dispatch — the bench's
/// staged_batch level in miniature. `bad_measurement_session`, when set,
/// registers that one session against a corrupted expected-measurement set
/// so its verdict fails policy INSIDE a batched wavefront.
StagedBatchRun run_staged(SessionEngine& engine,
                          std::vector<std::unique_ptr<GatewayWorld>>& worlds,
                          std::size_t sessions, bool batch_verify,
                          obs::AuditLog* audit = nullptr,
                          std::size_t bad_measurement_session = SIZE_MAX) {
  struct Slot {
    std::unique_ptr<WebExtension> ext;
    std::unique_ptr<WebExtension::StagedAttestation> staged;
  };
  std::vector<Slot> slots(sessions);
  std::atomic<int> unverified{0};

  BatchStageConfig batching;
  if (batch_verify) {
    batching.stage = SessionState::kVerify;
    batching.fn = [&](std::vector<StagedBatchItem>& items) {
      // The engine hands over track groups it fully subsumed, so these
      // worlds have no other lane touching them; lock them all for the
      // duration of the one-pass verify.
      std::vector<GatewayWorld*> held;
      for (const auto& item : items) {
        held.push_back(worlds[item.ctx.index % worlds.size()].get());
      }
      std::sort(held.begin(), held.end());
      held.erase(std::unique(held.begin(), held.end()), held.end());
      std::vector<std::unique_lock<std::mutex>> locks;
      for (GatewayWorld* world : held) locks.emplace_back(world->mu);

      std::vector<WebExtension::StagedAttestation*> staged;
      staged.reserve(items.size());
      for (const auto& item : items) {
        staged.push_back(slots[item.ctx.index].staged.get());
      }
      const std::vector<Status> statuses = batch_verify_sessions(staged);
      for (std::size_t k = 0; k < items.size(); ++k) {
        if (statuses[k].ok()) {
          items[k].next = SessionState::kPageFetch;
        } else {
          items[k].ctx.failure = statuses[k];
          items[k].next = SessionState::kFailed;
        }
      }
    };
  }

  StagedBatchRun out;
  out.report = engine.run_staged(
      sessions,
      [&](StagedContext& ctx) -> SessionState {
        GatewayWorld& world = *worlds[ctx.index % worlds.size()];
        std::lock_guard<std::mutex> world_lock(world.mu);
        ScopedClockCurrent clock_scope(world.clock);
        const double virt_start = world.clock.now_ms();
        Slot& slot = slots[ctx.index];
        const auto finish = [&](SessionState next) {
          ctx.stage_virt_ms = world.clock.now_ms() - virt_start;
          return next;
        };
        const auto fail = [&](Error error) {
          ctx.failure = std::move(error);
          return finish(SessionState::kFailed);
        };

        switch (ctx.state) {
          case SessionState::kHandshake: {
            world.browser.drop_session(kDomain);
            WebExtensionConfig config;
            config.kds_address = {kKdsPrimary, 443};
            config.shared_chain_cache = ctx.chain_cache;
            config.shared_vcek_cache = ctx.vcek_cache;
            config.audit_log = audit;
            config.audit_session_id = ctx.index;
            slot.ext = std::make_unique<WebExtension>(world.browser, config);
            SiteRegistration site = world.registration();
            if (ctx.index == bad_measurement_session) {
              site.expected_measurements[0].data[0] ^= 0xff;
            }
            slot.ext->register_site(kDomain, site);
            slot.staged = std::make_unique<WebExtension::StagedAttestation>(
                slot.ext->begin_session(kDomain, 443));
            auto st = slot.staged->handshake();
            if (!st.ok()) return fail(st.error());
            return finish(SessionState::kEvidenceFetch);
          }
          case SessionState::kEvidenceFetch: {
            auto st = slot.staged->fetch_evidence();
            if (!st.ok()) return fail(st.error());
            return finish(SessionState::kKdsFetch);
          }
          case SessionState::kKdsFetch: {
            auto st = slot.staged->fetch_kds();
            if (!st.ok()) return fail(st.error());
            return finish(SessionState::kVerify);
          }
          case SessionState::kVerify: {
            auto st = slot.staged->verify();
            if (!st.ok()) return fail(st.error());
            return finish(SessionState::kPageFetch);
          }
          case SessionState::kPageFetch: {
            auto page = slot.staged->fetch_page("/");
            if (!page.ok()) return fail(page.error());
            if (!slot.staged->checks().all_ok()) {
              unverified.fetch_add(1);
              return fail(Error::make("test.unverified_trust_accepted"));
            }
            return finish(SessionState::kDone);
          }
          default:
            return fail(Error::make("test.unexpected_state"));
        }
      },
      {}, [&](std::size_t i) { return i % worlds.size(); }, batching);
  out.unverified_accepts = unverified.load();
  return out;
}

TEST(BatchedStagedGateway, TranscriptMatchesUnbatchedBitForBit) {
  constexpr std::size_t kSessions = 4;
  SessionEngineConfig config;
  config.workers = 1;  // deterministic schedule; any digest delta is real

  SessionEngine plain_engine(config);
  auto plain_worlds = build_worlds(kSessions, "digest-parity");
  const StagedBatchRun plain =
      run_staged(plain_engine, plain_worlds, kSessions, /*batch_verify=*/false);

  SessionEngine batch_engine(config);
  auto batch_worlds = build_worlds(kSessions, "digest-parity");
  const StagedBatchRun batched =
      run_staged(batch_engine, batch_worlds, kSessions, /*batch_verify=*/true);

  EXPECT_EQ(plain.report.succeeded, kSessions);
  EXPECT_EQ(batched.report.succeeded, kSessions);
  EXPECT_EQ(plain.unverified_accepts, 0);
  EXPECT_EQ(batched.unverified_accepts, 0);
  EXPECT_GE(batched.report.batch_calls, 1u);
  EXPECT_EQ(plain.report.batch_calls, 0u);
  EXPECT_EQ(batched.report.transcript_digest, plain.report.transcript_digest);
}

TEST(BatchedStagedGateway, RejectionInsideBatchedWavefrontLandsInAuditChain) {
  constexpr std::size_t kSessions = 8;
  constexpr std::size_t kBad = 5;
  SessionEngineConfig config;
  config.workers = 2;
  SessionEngine engine(config);
  auto worlds = build_worlds(4, "batch-audit");
  obs::AuditLog audit(/*checkpoint_interval=*/4);

  const StagedBatchRun run = run_staged(engine, worlds, kSessions,
                                        /*batch_verify=*/true, &audit, kBad);

  EXPECT_GE(run.report.batch_calls, 1u);
  EXPECT_EQ(run.report.succeeded, kSessions - 1);
  EXPECT_EQ(run.report.failed, 1u);
  EXPECT_EQ(run.unverified_accepts, 0);
  for (std::size_t i = 0; i < kSessions; ++i) {
    if (i == kBad) {
      ASSERT_FALSE(run.report.outcomes[i].ok());
      EXPECT_EQ(run.report.outcomes[i].error().code,
                "extension.attestation_failed");
    } else {
      EXPECT_TRUE(run.report.outcomes[i].ok()) << "session " << i;
    }
  }

  // The rejection is a first-class record in the tamper-evident chain.
  const Bytes stream = audit.serialize();
  const auto summary = obs::AuditLog::verify(stream);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(audit.records(), kSessions);
  EXPECT_EQ(summary->accepted, kSessions - 1);
}

}  // namespace
}  // namespace revelio::core

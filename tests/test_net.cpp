#include <gtest/gtest.h>

#include "net/http.hpp"
#include "net/network.hpp"
#include "net/resilience.hpp"
#include "net/tls.hpp"
#include "obs/metrics.hpp"
#include "pki/ca.hpp"

namespace revelio::net {
namespace {

using crypto::HmacDrbg;

constexpr std::uint64_t kYearUs = 365ull * 24 * 3600 * 1000 * 1000;

// ---------------------------------------------------------------- Network

struct NetFixture : ::testing::Test {
  SimClock clock;
  Network network{clock};
};

TEST_F(NetFixture, CallReachesHandlerAndChargesLatency) {
  const Address server{"10.0.0.1", 80};
  network.listen(server, [](ByteView req, const Address& from) {
    EXPECT_EQ(from.host, "10.0.0.9");
    return concat(to_bytes(std::string_view("echo:")), req);
  });
  network.set_default_latency_ms(5.0);
  const double before = clock.now_ms();
  auto r = network.call({"10.0.0.9", 1234}, server,
                        to_bytes(std::string_view("hi")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_string(*r), "echo:hi");
  EXPECT_DOUBLE_EQ(clock.now_ms() - before, 10.0) << "one RTT";
}

TEST_F(NetFixture, ConnectionRefusedWithoutListener) {
  auto r = network.call({"a", 1}, {"b", 2}, {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "net.connection_refused");
}

TEST_F(NetFixture, CloseStopsListening) {
  const Address addr{"h", 80};
  network.listen(addr, [](ByteView, const Address&) { return Bytes{}; });
  EXPECT_TRUE(network.is_listening(addr));
  network.close(addr);
  EXPECT_FALSE(network.is_listening(addr));
}

TEST_F(NetFixture, LinkLatencyOverridesDefault) {
  network.set_default_latency_ms(10.0);
  network.set_link_latency_ms("client", "server", 1.0);
  network.listen({"server", 80},
                 [](ByteView, const Address&) { return Bytes{}; });
  const double before = clock.now_ms();
  ASSERT_TRUE(network.call({"client", 1}, {"server", 80}, {}).ok());
  EXPECT_DOUBLE_EQ(clock.now_ms() - before, 2.0);
}

TEST_F(NetFixture, InterceptorCanDrop) {
  network.listen({"s", 80}, [](ByteView, const Address&) {
    return to_bytes(std::string_view("ok"));
  });
  network.set_interceptor([](const Address&, const Address&, ByteView) {
    return MitmAction::drop();
  });
  network.set_call_timeout_ms(500.0);
  const double before = clock.now_ms();
  auto r = network.call({"c", 1}, {"s", 80}, {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "net.timeout");
  // A drop is never free: the caller waits out the configured timeout.
  EXPECT_DOUBLE_EQ(clock.now_ms() - before, 500.0);
  network.clear_interceptor();
  EXPECT_TRUE(network.call({"c", 1}, {"s", 80}, {}).ok());
}

TEST_F(NetFixture, InterceptorCanTamper) {
  network.listen({"s", 80}, [](ByteView req, const Address&) {
    return to_bytes(req);
  });
  network.set_interceptor([](const Address&, const Address&, ByteView) {
    return MitmAction::tamper(to_bytes(std::string_view("evil")));
  });
  auto r = network.call({"c", 1}, {"s", 80}, to_bytes(std::string_view("hi")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_string(*r), "evil");
}

TEST_F(NetFixture, InterceptorCanRedirect) {
  network.listen({"good", 80}, [](ByteView, const Address&) {
    return to_bytes(std::string_view("good"));
  });
  network.listen({"evil", 80}, [](ByteView, const Address&) {
    return to_bytes(std::string_view("evil"));
  });
  network.set_interceptor([](const Address&, const Address&, ByteView) {
    return MitmAction::redirect({"evil", 80});
  });
  auto r = network.call({"c", 1}, {"good", 80}, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_string(*r), "evil");
}

TEST_F(NetFixture, DnsResolveAndNxdomain) {
  network.dns_set_a("svc.example.com", "10.1.2.3");
  auto addr = network.resolve("svc.example.com", 443);
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(addr->host, "10.1.2.3");
  EXPECT_EQ(addr->port, 443);
  EXPECT_EQ(network.resolve("nope.example", 1).error().code, "net.nxdomain");
  network.dns_remove_a("svc.example.com");
  EXPECT_FALSE(network.resolve("svc.example.com", 443).ok());
}

TEST_F(NetFixture, DnsTxtRecords) {
  EXPECT_TRUE(network.dns_txt("x").empty());
  network.dns_set_txt("x", "a");
  network.dns_set_txt("x", "b");
  EXPECT_EQ(network.dns_txt("x").size(), 2u);
  network.dns_clear_txt("x");
  EXPECT_TRUE(network.dns_txt("x").empty());
}

// ------------------------------------------------------------- FaultPlan

TEST(FaultPlan, SameSeedSameSchedule) {
  LinkFaultProfile lossy;
  lossy.drop_prob = 0.2;
  lossy.delay_prob = 0.3;
  lossy.duplicate_prob = 0.1;
  FaultPlan a(to_bytes(std::string_view("chaos-seed")));
  FaultPlan b(to_bytes(std::string_view("chaos-seed")));
  FaultPlan c(to_bytes(std::string_view("other-seed")));
  a.set_default_profile(lossy);
  b.set_default_profile(lossy);
  c.set_default_profile(lossy);
  bool c_diverged = false;
  for (int i = 0; i < 300; ++i) {
    const auto da = a.decide("x", "y", 0);
    const auto db = b.decide("x", "y", 0);
    const auto dc = c.decide("x", "y", 0);
    EXPECT_EQ(da.verdict, db.verdict);
    EXPECT_DOUBLE_EQ(da.extra_delay_ms, db.extra_delay_ms);
    EXPECT_EQ(da.duplicate, db.duplicate);
    if (da.verdict != dc.verdict || da.extra_delay_ms != dc.extra_delay_ms ||
        da.duplicate != dc.duplicate) {
      c_diverged = true;
    }
  }
  EXPECT_TRUE(c_diverged) << "a different seed must change the schedule";
}

TEST_F(NetFixture, FaultPlanDropChargesConfiguredTimeout) {
  network.listen({"s", 80}, [](ByteView, const Address&) {
    return to_bytes(std::string_view("ok"));
  });
  LinkFaultProfile always_drop;
  always_drop.drop_prob = 1.0;
  FaultPlan plan(to_bytes(std::string_view("drop")));
  plan.set_default_profile(always_drop);
  network.set_fault_plan(std::move(plan));
  network.set_call_timeout_ms(250.0);
  const auto before_faults =
      obs::metrics().counter_value("net.fault.injected", {{"kind", "drop"}});
  const double before_ms = clock.now_ms();
  auto r = network.call({"c", 1}, {"s", 80}, {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "net.timeout");
  EXPECT_TRUE(r.error().is_transient());
  EXPECT_DOUBLE_EQ(clock.now_ms() - before_ms, 250.0)
      << "a drop costs the full configured timeout, never zero";
  EXPECT_EQ(obs::metrics().counter_value("net.fault.injected",
                                         {{"kind", "drop"}}),
            before_faults + 1);
}

TEST_F(NetFixture, FaultPlanPartitionIsUnreachableUntilHealed) {
  network.listen({"s", 80}, [](ByteView, const Address&) {
    return to_bytes(std::string_view("ok"));
  });
  FaultPlan plan(to_bytes(std::string_view("split")));
  plan.partition("c", "s");
  network.set_fault_plan(std::move(plan));
  auto r = network.call({"c", 1}, {"s", 80}, {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "net.unreachable");
  network.fault_plan()->heal("c", "s");
  EXPECT_TRUE(network.call({"c", 1}, {"s", 80}, {}).ok());
}

TEST_F(NetFixture, FaultPlanBlackholeWindowExpiresWithVirtualTime) {
  network.listen({"s", 80}, [](ByteView, const Address&) {
    return to_bytes(std::string_view("ok"));
  });
  FaultPlan plan(to_bytes(std::string_view("hole")));
  plan.blackhole("s", 0, 1'000'000);  // down for the first virtual second
  network.set_fault_plan(std::move(plan));
  auto r = network.call({"c", 1}, {"s", 80}, {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "net.unreachable");
  // The failed call itself charged the timeout (1000 ms), which carries the
  // clock past the window's end: the endpoint is back.
  EXPECT_GE(clock.now_us(), 1'000'000u);
  EXPECT_TRUE(network.call({"c", 1}, {"s", 80}, {}).ok());
}

TEST_F(NetFixture, FaultPlanFlapAlternatesAvailability) {
  network.listen({"s", 80}, [](ByteView, const Address&) {
    return to_bytes(std::string_view("ok"));
  });
  FaultPlan plan(to_bytes(std::string_view("flap")));
  // Down for the first 4 ms of every 10 ms period.
  plan.flap("s", 10'000, 4'000);
  network.set_fault_plan(std::move(plan));
  network.set_call_timeout_ms(1.0);
  EXPECT_EQ(network.call({"c", 1}, {"s", 80}, {}).error().code,
            "net.unreachable");  // t=0: inside the down window
  clock.advance_us(5'000 - clock.now_us());
  EXPECT_TRUE(network.call({"c", 1}, {"s", 80}, {}).ok());  // t=5ms: up
  clock.advance_us(11'000 - clock.now_us());
  EXPECT_EQ(network.call({"c", 1}, {"s", 80}, {}).error().code,
            "net.unreachable");  // t=11ms: next period's down window
}

TEST_F(NetFixture, FaultPlanDuplicateDeliversHandlerTwice) {
  int handled = 0;
  network.listen({"s", 80}, [&](ByteView, const Address&) {
    ++handled;
    return to_bytes("reply-" + std::to_string(handled));
  });
  LinkFaultProfile dup;
  dup.duplicate_prob = 1.0;
  FaultPlan plan(to_bytes(std::string_view("dup")));
  plan.set_default_profile(dup);
  network.set_fault_plan(std::move(plan));
  auto r = network.call({"c", 1}, {"s", 80}, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_string(*r), "reply-1") << "caller gets the first response";
  EXPECT_EQ(handled, 2) << "the duplicate still reaches the handler";
}

TEST_F(NetFixture, FaultPlanDelayAddsLatencyOnTopOfRtt) {
  network.listen({"s", 80}, [](ByteView, const Address&) {
    return to_bytes(std::string_view("ok"));
  });
  network.set_default_latency_ms(5.0);
  LinkFaultProfile slow;
  slow.delay_prob = 1.0;
  slow.delay_min_ms = 7.0;
  slow.delay_max_ms = 7.0;
  FaultPlan plan(to_bytes(std::string_view("slow")));
  plan.set_default_profile(slow);
  network.set_fault_plan(std::move(plan));
  const double before = clock.now_ms();
  ASSERT_TRUE(network.call({"c", 1}, {"s", 80}, {}).ok());
  EXPECT_DOUBLE_EQ(clock.now_ms() - before, 10.0 + 7.0);
}

TEST_F(NetFixture, FaultPlanClearFaultsRestoresCleanDelivery) {
  network.listen({"s", 80}, [](ByteView, const Address&) {
    return to_bytes(std::string_view("ok"));
  });
  LinkFaultProfile lossy;
  lossy.drop_prob = 1.0;
  FaultPlan plan(to_bytes(std::string_view("clear")));
  plan.set_default_profile(lossy);
  plan.partition("c", "s");
  network.set_fault_plan(std::move(plan));
  EXPECT_FALSE(network.call({"c", 1}, {"s", 80}, {}).ok());
  network.fault_plan()->clear_faults();
  EXPECT_TRUE(network.call({"c", 1}, {"s", 80}, {}).ok());
}

// ------------------------------------------------------------ Resilience

struct ResilienceFixture : ::testing::Test {
  SimClock clock;
  HmacDrbg jitter{to_bytes(std::string_view("resilience-tests"))};
  RetryPolicy no_jitter(std::uint32_t attempts) {
    RetryPolicy p;
    p.max_attempts = attempts;
    p.jitter = 0.0;  // deterministic backoff for exact clock assertions
    return p;
  }
};

TEST_F(ResilienceFixture, RetriesTransientAndChargesBackoffToClock) {
  int calls = 0;
  auto r = with_retries(clock, jitter, no_jitter(4), Deadline::unlimited(),
                        "test.op", [&]() -> Result<int> {
                          if (++calls < 3) return Error::make("net.timeout");
                          return 7;
                        });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(calls, 3);
  // Two backoffs: 50 ms then 100 ms, all virtual.
  EXPECT_DOUBLE_EQ(clock.now_ms(), 150.0);
}

TEST_F(ResilienceFixture, NeverRetriesPermanentErrors) {
  int calls = 0;
  auto r = with_retries(clock, jitter, no_jitter(5), Deadline::unlimited(),
                        "test.op", [&]() -> Result<int> {
                          ++calls;
                          return Error::make("tls.untrusted_certificate");
                        });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "tls.untrusted_certificate");
  EXPECT_EQ(calls, 1) << "a fail-closed verdict must not be retried";
  EXPECT_DOUBLE_EQ(clock.now_ms(), 0.0) << "no backoff charged";
}

TEST_F(ResilienceFixture, ReturnsLastTransientWhenAttemptsRunOut) {
  int calls = 0;
  auto r = with_retries(clock, jitter, no_jitter(3), Deadline::unlimited(),
                        "test.op", [&]() -> Result<int> {
                          ++calls;
                          return Error::make("net.drop");
                        });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "net.drop");
  EXPECT_EQ(calls, 3);
}

TEST_F(ResilienceFixture, DeadlineExhaustionIsPermanent) {
  int calls = 0;
  const Deadline deadline = Deadline::after_ms(clock, 200.0);
  auto r = with_retries(clock, jitter, no_jitter(10), deadline, "test.op",
                        [&]() -> Result<int> {
                          ++calls;
                          clock.advance_ms(60.0);  // the call itself is slow
                          return Error::make("net.timeout");
                        });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "net.deadline_exceeded");
  EXPECT_FALSE(r.error().is_transient())
      << "budget exhaustion must not be retried by an outer layer";
  EXPECT_EQ(calls, 2) << "backoff was clamped to the remaining budget";
}

TEST_F(ResilienceFixture, DeadlineCapsChildBudgets) {
  const Deadline parent = Deadline::after_ms(clock, 100.0);
  const Deadline child = parent.capped_ms(clock, 500.0);
  EXPECT_DOUBLE_EQ(child.remaining_ms(clock), 100.0)
      << "a child never outlives its parent";
  const Deadline small = parent.capped_ms(clock, 10.0);
  EXPECT_DOUBLE_EQ(small.remaining_ms(clock), 10.0);
  EXPECT_TRUE(Deadline::unlimited().is_unlimited());
  EXPECT_FALSE(Deadline::unlimited().expired(clock));
  clock.advance_ms(11.0);
  EXPECT_TRUE(small.expired(clock));
  EXPECT_DOUBLE_EQ(small.remaining_ms(clock), 0.0);
}

TEST_F(ResilienceFixture, BackoffIsCappedAndJittered) {
  RetryPolicy p;
  p.initial_backoff_ms = 50.0;
  p.multiplier = 2.0;
  p.max_backoff_ms = 300.0;
  p.jitter = 0.0;
  EXPECT_DOUBLE_EQ(p.backoff_ms(1, jitter), 50.0);
  EXPECT_DOUBLE_EQ(p.backoff_ms(2, jitter), 100.0);
  EXPECT_DOUBLE_EQ(p.backoff_ms(4, jitter), 300.0) << "capped";
  p.jitter = 0.25;
  for (int i = 0; i < 50; ++i) {
    const double b = p.backoff_ms(1, jitter);
    EXPECT_GE(b, 50.0 * 0.75);
    EXPECT_LE(b, 50.0 * 1.25);
  }
}

TEST_F(ResilienceFixture, CircuitBreakerFullStateMachine) {
  CircuitBreaker::Config cfg;
  cfg.failure_threshold = 2;
  cfg.open_ms = 100.0;
  CircuitBreaker br("kds.example:443", cfg);
  EXPECT_EQ(br.state(clock), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(br.allow(clock));

  br.on_failure(clock);
  EXPECT_EQ(br.state(clock), CircuitBreaker::State::kClosed);
  br.on_failure(clock);  // threshold reached
  EXPECT_EQ(br.state(clock), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(br.allow(clock)) << "open breaker short-circuits";
  EXPECT_EQ(br.times_opened(), 1u);

  clock.advance_ms(100.0);  // cooldown elapses
  EXPECT_EQ(br.state(clock), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(br.allow(clock)) << "half-open admits a probe";

  br.on_failure(clock);  // failed probe re-opens for a fresh cooldown
  EXPECT_EQ(br.state(clock), CircuitBreaker::State::kOpen);
  EXPECT_EQ(br.times_opened(), 2u);
  clock.advance_ms(99.0);
  EXPECT_FALSE(br.allow(clock)) << "fresh cooldown, not the stale one";
  clock.advance_ms(1.0);
  EXPECT_TRUE(br.allow(clock));

  br.on_success(clock);  // successful probe closes
  EXPECT_EQ(br.state(clock), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(br.allow(clock));
}

TEST_F(ResilienceFixture, FailoverSwitchesToHealthyReplica) {
  Failover fo({{"primary", 443}, {"backup", 443}}, {}, "test");
  const auto switches_before =
      obs::metrics().counter_value("failover.switch.count",
                                   {{"service", "test"}});
  std::vector<std::string> tried;
  auto r = fo.execute(clock, [&](const Address& a) -> Result<int> {
    tried.push_back(a.host);
    if (a.host == "primary") return Error::make("net.timeout");
    return 1;
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(tried, (std::vector<std::string>{"primary", "backup"}));
  EXPECT_EQ(obs::metrics().counter_value("failover.switch.count",
                                         {{"service", "test"}}),
            switches_before + 1);
}

TEST_F(ResilienceFixture, FailoverReturnsPermanentErrorImmediately) {
  Failover fo({{"primary", 443}, {"backup", 443}}, {}, "test");
  std::vector<std::string> tried;
  auto r = fo.execute(clock, [&](const Address& a) -> Result<int> {
    tried.push_back(a.host);
    return Error::make("snp.signature_invalid");
  });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "snp.signature_invalid");
  EXPECT_EQ(tried, (std::vector<std::string>{"primary"}))
      << "verification failures never fail over";
}

TEST_F(ResilienceFixture, FailoverSkipsOpenBreakersAndRecovers) {
  CircuitBreaker::Config cfg;
  cfg.failure_threshold = 1;
  cfg.open_ms = 200.0;
  Failover fo({{"primary", 443}, {"backup", 443}}, cfg, "test");
  int primary_calls = 0;
  auto attempt = [&]() {
    return fo.execute(clock, [&](const Address& a) -> Result<int> {
      if (a.host == "primary") {
        ++primary_calls;
        return Error::make("net.timeout");
      }
      return 1;
    });
  };
  EXPECT_TRUE(attempt().ok());  // primary fails once -> breaker opens
  EXPECT_EQ(primary_calls, 1);
  EXPECT_TRUE(attempt().ok());  // open breaker: primary not even tried
  EXPECT_EQ(primary_calls, 1);
  clock.advance_ms(200.0);      // cooldown: half-open admits a probe again
  EXPECT_TRUE(attempt().ok());
  EXPECT_EQ(primary_calls, 2);
}

TEST_F(ResilienceFixture, AllReplicasShortCircuitedYieldsTransientError) {
  CircuitBreaker::Config cfg;
  cfg.failure_threshold = 1;
  cfg.open_ms = 1000.0;
  Failover fo({{"only", 443}}, cfg, "test");
  auto fail = [&]() {
    return fo.execute(clock,
                      [&](const Address&) -> Result<int> {
                        return Error::make("net.timeout");
                      });
  };
  EXPECT_EQ(fail().error().code, "net.timeout");
  const auto r = fail();  // breaker now open: nothing is attempted
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "net.unreachable");
  EXPECT_TRUE(r.error().is_transient())
      << "an outer retry may wait for the breaker to half-open";
}

// ------------------------------------------------------------------ HTTP

TEST(Http, RequestRoundTrip) {
  HttpRequest req;
  req.method = "POST";
  req.path = "/api/submit";
  req.host = "svc.example.com";
  req.headers["content-type"] = "application/json";
  req.body = to_bytes(std::string_view("{\"k\":1}"));
  auto parsed = HttpRequest::parse(req.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->method, "POST");
  EXPECT_EQ(parsed->path, "/api/submit");
  EXPECT_EQ(parsed->headers.at("content-type"), "application/json");
  EXPECT_EQ(parsed->body, req.body);
}

TEST(Http, ResponseRoundTrip) {
  HttpResponse resp = HttpResponse::ok(to_bytes(std::string_view("<html>")),
                                       "text/html");
  auto parsed = HttpResponse::parse(resp.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->status, 200);
  EXPECT_EQ(parsed->headers.at("content-type"), "text/html");
}

TEST(Http, ParseRejectsGarbage) {
  EXPECT_FALSE(HttpRequest::parse(to_bytes(std::string_view("junk"))).ok());
  EXPECT_FALSE(HttpResponse::parse({}).ok());
}

TEST(Http, ParseRejectsOversizedHeaderCount) {
  // A frame claiming 2^32-1 headers (or anything past the 256 cap) must be
  // rejected before the parser loops on it.
  Bytes frame = to_bytes(std::string_view("HTQ1"));
  for (int i = 0; i < 3; ++i) append_u32be(frame, 0);  // method/path/host ""
  append_u32be(frame, 0xffffffffu);                    // header count
  auto r = HttpRequest::parse(frame);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "http.bad_request_frame");

  Bytes capped = to_bytes(std::string_view("HTS1"));
  append_u32be(capped, 200);  // status
  append_u32be(capped, 257);  // one past the cap
  EXPECT_FALSE(HttpResponse::parse(capped).ok());
}

TEST(Http, ParseRejectsHostileLengthFields) {
  // A string length of 2^32-1 with almost no payload: the bounds check must
  // not overflow `off + len` into accepting it.
  Bytes frame = to_bytes(std::string_view("HTQ1"));
  append_u32be(frame, 0xffffffffu);  // method length
  frame.push_back('G');
  EXPECT_FALSE(HttpRequest::parse(frame).ok());

  // Same hostile length on a header value.
  Bytes hdr = to_bytes(std::string_view("HTQ1"));
  for (int i = 0; i < 3; ++i) append_u32be(hdr, 0);
  append_u32be(hdr, 1);             // one header
  append_u32be(hdr, 1);
  hdr.push_back('k');
  append_u32be(hdr, 0xfffffff0u);   // value length
  EXPECT_FALSE(HttpRequest::parse(hdr).ok());
}

TEST(Http, ParseRejectsBodyLengthMismatch) {
  HttpRequest req;
  req.method = "POST";
  req.path = "/p";
  req.host = "h";
  req.body = to_bytes(std::string_view("12345"));
  Bytes wire = req.serialize();
  ASSERT_TRUE(HttpRequest::parse(wire).ok());

  Bytes truncated = wire;
  truncated.pop_back();  // declared length over-runs the frame
  EXPECT_FALSE(HttpRequest::parse(truncated).ok());

  Bytes padded = wire;
  padded.push_back(0x00);  // trailing bytes: a smuggled second message
  EXPECT_FALSE(HttpRequest::parse(padded).ok());

  Bytes resp_wire = HttpResponse::ok(req.body).serialize();
  ASSERT_TRUE(HttpResponse::parse(resp_wire).ok());
  resp_wire.push_back(0x00);
  EXPECT_FALSE(HttpResponse::parse(resp_wire).ok());
}

TEST(Http, TruncationSweepNeverCrashes) {
  // Every prefix of a real frame must be cleanly rejected — truncation is
  // what a dropped tail segment looks like to the parser. Run under asan
  // this doubles as an out-of-bounds probe on every reader path.
  HttpRequest req;
  req.method = "POST";
  req.path = "/api/submit";
  req.host = "svc.example.com";
  req.headers["content-type"] = "application/json";
  req.headers["x-trace"] = "abc123";
  req.body = to_bytes(std::string_view("{\"k\":1}"));
  const Bytes wire = req.serialize();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(HttpRequest::parse(ByteView(wire).subspan(0, len)).ok())
        << "prefix of length " << len << " must not parse";
  }
  EXPECT_TRUE(HttpRequest::parse(wire).ok());

  const Bytes resp_wire =
      HttpResponse::ok(req.body, "application/json").serialize();
  for (std::size_t len = 0; len < resp_wire.size(); ++len) {
    EXPECT_FALSE(
        HttpResponse::parse(ByteView(resp_wire).subspan(0, len)).ok());
  }
  EXPECT_TRUE(HttpResponse::parse(resp_wire).ok());
}

TEST(Http, RouterLongestPrefixWins) {
  HttpRouter router;
  router.route("GET", "/a/*", [](const HttpRequest&) {
    return HttpResponse::ok(to_bytes(std::string_view("short")));
  });
  router.route("GET", "/a/b/*", [](const HttpRequest&) {
    return HttpResponse::ok(to_bytes(std::string_view("long")));
  });
  HttpRequest req;
  req.path = "/a/b/c";
  EXPECT_EQ(to_string(router.dispatch(req).body), "long");
  req.path = "/a/x";
  EXPECT_EQ(to_string(router.dispatch(req).body), "short");
}

TEST(Http, ResponseHelpers) {
  EXPECT_EQ(HttpResponse::not_found().status, 404);
  const auto err = HttpResponse::error(503, "down");
  EXPECT_EQ(err.status, 503);
  EXPECT_EQ(to_string(err.body), "down");
  const auto ok = HttpResponse::ok({}, "application/json");
  EXPECT_EQ(ok.headers.at("content-type"), "application/json");
}

TEST(Http, RouterExactAndPrefixDispatch) {
  HttpRouter router;
  router.route("GET", "/", [](const HttpRequest&) {
    return HttpResponse::ok(to_bytes(std::string_view("index")));
  });
  router.route("GET", "/api/*", [](const HttpRequest& r) {
    return HttpResponse::ok(to_bytes("api:" + r.path));
  });
  router.route("GET", "/api/special", [](const HttpRequest&) {
    return HttpResponse::ok(to_bytes(std::string_view("special")));
  });

  HttpRequest req;
  req.path = "/";
  EXPECT_EQ(to_string(router.dispatch(req).body), "index");
  req.path = "/api/special";
  EXPECT_EQ(to_string(router.dispatch(req).body), "special");
  req.path = "/api/other";
  EXPECT_EQ(to_string(router.dispatch(req).body), "api:/api/other");
  req.path = "/missing";
  EXPECT_EQ(router.dispatch(req).status, 404);
  req.method = "DELETE";
  req.path = "/";
  EXPECT_EQ(router.dispatch(req).status, 404);
}

// ------------------------------------------------------------------- TLS

struct TlsFixture : ::testing::Test {
  TlsFixture()
      : network(clock),
        drbg(to_bytes(std::string_view("tls-tests"))),
        root(pki::CertificateAuthority::create_root(
            crypto::p384(), {"TLS Root", "Org", "US"}, 0, 10 * kYearUs,
            drbg)) {}

  TlsServerIdentity make_identity(const std::string& dns_name) {
    TlsServerIdentity id;
    id.curve = &crypto::p256();
    id.key = crypto::ec_generate(crypto::p256(), drbg);
    id.certificate = root.issue_for_key(
        "P-256", id.key.public_encoded(crypto::p256()),
        {dns_name, "Svc", "US"}, {dns_name}, 0, kYearUs);
    return id;
  }

  std::unique_ptr<TlsServer> make_server(const std::string& dns_name,
                                         const Address& addr) {
    auto server = std::make_unique<TlsServer>(
        make_identity(dns_name),
        [](ByteView plaintext, const Address&) {
          return concat(to_bytes(std::string_view("srv:")), plaintext);
        },
        HmacDrbg(to_bytes(std::string_view("server-entropy")),
                 to_bytes(dns_name)));
    server->install(network, addr);
    return server;
  }

  TlsTrustConfig trust_for(const std::string& name) {
    TlsTrustConfig trust;
    trust.roots = {root.certificate()};
    trust.server_name = name;
    trust.now_us = clock.now_us();
    return trust;
  }

  SimClock clock;
  Network network{clock};
  HmacDrbg drbg;
  pki::CertificateAuthority root;
};

TEST_F(TlsFixture, HandshakeAndEcho) {
  auto server = make_server("svc.example.com", {"10.0.0.1", 443});
  auto session = TlsSession::connect(network, {"laptop", 40000},
                                     {"10.0.0.1", 443},
                                     trust_for("svc.example.com"), drbg);
  ASSERT_TRUE(session.ok()) << session.error().to_string();
  auto r = session->request(to_bytes(std::string_view("ping")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_string(*r), "srv:ping");
  // Multiple sequenced requests on the same session.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(session->request(to_bytes(std::string_view("x"))).ok());
  }
}

TEST_F(TlsFixture, ClientSeesServerLeafKey) {
  auto server = make_server("svc.example.com", {"10.0.0.1", 443});
  auto session = TlsSession::connect(network, {"laptop", 40000},
                                     {"10.0.0.1", 443},
                                     trust_for("svc.example.com"), drbg);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->server_public_key(),
            server->certificate().public_key);
}

TEST_F(TlsFixture, UntrustedRootRejected) {
  auto server = make_server("svc.example.com", {"10.0.0.1", 443});
  HmacDrbg other_drbg(to_bytes(std::string_view("other")));
  auto other_root = pki::CertificateAuthority::create_root(
      crypto::p384(), {"Other Root", "X", "US"}, 0, kYearUs, other_drbg);
  TlsTrustConfig trust;
  trust.roots = {other_root.certificate()};
  trust.server_name = "svc.example.com";
  auto session = TlsSession::connect(network, {"laptop", 1}, {"10.0.0.1", 443},
                                     trust, drbg);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.error().code, "tls.untrusted_certificate");
}

TEST_F(TlsFixture, NameMismatchRejected) {
  auto server = make_server("svc.example.com", {"10.0.0.1", 443});
  auto session = TlsSession::connect(network, {"laptop", 1}, {"10.0.0.1", 443},
                                     trust_for("other.example.com"), drbg);
  EXPECT_FALSE(session.ok());
}

TEST_F(TlsFixture, ServerWithoutPrivateKeyFailsTranscript) {
  // An impostor presents svc's real certificate but holds a different key:
  // the transcript signature cannot verify.
  auto real_identity = make_identity("svc.example.com");
  TlsServerIdentity impostor = real_identity;
  impostor.key = crypto::ec_generate(crypto::p256(), drbg);  // wrong key
  TlsServer server(std::move(impostor),
                   [](ByteView, const Address&) { return Bytes{}; },
                   HmacDrbg(to_bytes(std::string_view("imp"))));
  server.install(network, {"10.0.0.2", 443});
  auto session = TlsSession::connect(network, {"laptop", 1}, {"10.0.0.2", 443},
                                     trust_for("svc.example.com"), drbg);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.error().code, "tls.bad_transcript_signature");
}

TEST_F(TlsFixture, TamperedRecordRejectedByServer) {
  auto server = make_server("svc.example.com", {"10.0.0.1", 443});
  auto session = TlsSession::connect(network, {"laptop", 1}, {"10.0.0.1", 443},
                                     trust_for("svc.example.com"), drbg);
  ASSERT_TRUE(session.ok());
  // Attacker flips a byte in every data frame.
  network.set_interceptor(
      [](const Address&, const Address&, ByteView request) {
        if (!request.empty() && request[0] == 0x03) {
          Bytes tampered = to_bytes(request);
          tampered.back() ^= 0x01;
          return MitmAction::tamper(std::move(tampered));
        }
        return MitmAction::forward();
      });
  auto r = session->request(to_bytes(std::string_view("payload")));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "tls.alert");
}

TEST_F(TlsFixture, SessionResetDetected) {
  auto server = make_server("svc.example.com", {"10.0.0.1", 443});
  auto session = TlsSession::connect(network, {"laptop", 1}, {"10.0.0.1", 443},
                                     trust_for("svc.example.com"), drbg);
  ASSERT_TRUE(session.ok());
  server->reset_sessions();
  auto r = session->request(to_bytes(std::string_view("hello")));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "tls.alert");
}

TEST_F(TlsFixture, RedirectToLookalikeYieldsDifferentKey) {
  // The provider redirects traffic to another server with a CA-valid
  // certificate for the same name (it controls DNS/issuance): TLS alone
  // accepts it — only the Revelio key comparison catches it. Here we verify
  // the sessions expose different keys for the detection layer.
  auto good = make_server("svc.example.com", {"10.0.0.1", 443});
  auto evil = make_server("svc.example.com", {"6.6.6.6", 443});

  auto s1 = TlsSession::connect(network, {"laptop", 1}, {"10.0.0.1", 443},
                                trust_for("svc.example.com"), drbg);
  ASSERT_TRUE(s1.ok());
  network.set_interceptor([](const Address&, const Address& to, ByteView) {
    if (to.host == "10.0.0.1") return MitmAction::redirect({"6.6.6.6", 443});
    return MitmAction::forward();
  });
  auto s2 = TlsSession::connect(network, {"laptop", 1}, {"10.0.0.1", 443},
                                trust_for("svc.example.com"), drbg);
  ASSERT_TRUE(s2.ok()) << "TLS alone accepts the lookalike";
  EXPECT_NE(s1->server_public_key(), s2->server_public_key());
}

TEST_F(TlsFixture, P384ServerIdentityWorks) {
  // Server identities may sit on P-384 (the handshake ephemerals stay on
  // P-256); the AMD-style chain uses this.
  TlsServerIdentity id;
  id.curve = &crypto::p384();
  id.key = crypto::ec_generate(crypto::p384(), drbg);
  id.certificate = root.issue_for_key(
      "P-384", id.key.public_encoded(crypto::p384()),
      {"svc384.example", "Svc", "US"}, {"svc384.example"}, 0, kYearUs);
  TlsServer server(std::move(id),
                   [](ByteView, const Address&) {
                     return to_bytes(std::string_view("ok"));
                   },
                   HmacDrbg(to_bytes(std::string_view("p384-server"))));
  server.install(network, {"10.0.0.5", 443});
  auto session = TlsSession::connect(network, {"laptop", 1}, {"10.0.0.5", 443},
                                     trust_for("svc384.example"), drbg);
  ASSERT_TRUE(session.ok()) << session.error().to_string();
  EXPECT_TRUE(session->request(to_bytes(std::string_view("x"))).ok());
}

TEST_F(TlsFixture, ConcurrentSessionsAreIndependent) {
  auto server = make_server("svc.example.com", {"10.0.0.1", 443});
  auto s1 = TlsSession::connect(network, {"laptop", 1}, {"10.0.0.1", 443},
                                trust_for("svc.example.com"), drbg);
  auto s2 = TlsSession::connect(network, {"phone", 2}, {"10.0.0.1", 443},
                                trust_for("svc.example.com"), drbg);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  // Interleaved traffic on both sessions keeps sequence state separate.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(s1->request(to_bytes(std::string_view("a"))).ok());
    EXPECT_TRUE(s2->request(to_bytes(std::string_view("b"))).ok());
    EXPECT_TRUE(s2->request(to_bytes(std::string_view("c"))).ok());
  }
}

TEST_F(TlsFixture, ExpiredServerCertificateRejected) {
  TlsServerIdentity id = make_identity("svc.example.com");
  // Reissue with a validity window already over.
  id.certificate = root.issue_for_key(
      "P-256", id.key.public_encoded(crypto::p256()),
      {"svc.example.com", "Svc", "US"}, {"svc.example.com"}, 0, 1000);
  TlsServer server(std::move(id),
                   [](ByteView, const Address&) { return Bytes{}; },
                   HmacDrbg(to_bytes(std::string_view("expired"))));
  server.install(network, {"10.0.0.6", 443});
  clock.advance_ms(10.0);  // past the 1 ms validity
  auto session = TlsSession::connect(network, {"laptop", 1}, {"10.0.0.6", 443},
                                     trust_for("svc.example.com"), drbg);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.error().code, "tls.untrusted_certificate");
}

TEST_F(TlsFixture, HandshakeRejectsGarbageFrames) {
  auto server = make_server("svc.example.com", {"10.0.0.1", 443});
  auto r = network.call({"laptop", 1}, {"10.0.0.1", 443},
                        to_bytes(std::string_view("garbage")));
  ASSERT_TRUE(r.ok());  // transport succeeds, TLS alerts
  EXPECT_EQ((*r)[0], 0x0f);
}

}  // namespace
}  // namespace revelio::net

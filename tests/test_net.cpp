#include <gtest/gtest.h>

#include "net/http.hpp"
#include "net/network.hpp"
#include "net/tls.hpp"
#include "pki/ca.hpp"

namespace revelio::net {
namespace {

using crypto::HmacDrbg;

constexpr std::uint64_t kYearUs = 365ull * 24 * 3600 * 1000 * 1000;

// ---------------------------------------------------------------- Network

struct NetFixture : ::testing::Test {
  SimClock clock;
  Network network{clock};
};

TEST_F(NetFixture, CallReachesHandlerAndChargesLatency) {
  const Address server{"10.0.0.1", 80};
  network.listen(server, [](ByteView req, const Address& from) {
    EXPECT_EQ(from.host, "10.0.0.9");
    return concat(to_bytes(std::string_view("echo:")), req);
  });
  network.set_default_latency_ms(5.0);
  const double before = clock.now_ms();
  auto r = network.call({"10.0.0.9", 1234}, server,
                        to_bytes(std::string_view("hi")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_string(*r), "echo:hi");
  EXPECT_DOUBLE_EQ(clock.now_ms() - before, 10.0) << "one RTT";
}

TEST_F(NetFixture, ConnectionRefusedWithoutListener) {
  auto r = network.call({"a", 1}, {"b", 2}, {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "net.connection_refused");
}

TEST_F(NetFixture, CloseStopsListening) {
  const Address addr{"h", 80};
  network.listen(addr, [](ByteView, const Address&) { return Bytes{}; });
  EXPECT_TRUE(network.is_listening(addr));
  network.close(addr);
  EXPECT_FALSE(network.is_listening(addr));
}

TEST_F(NetFixture, LinkLatencyOverridesDefault) {
  network.set_default_latency_ms(10.0);
  network.set_link_latency_ms("client", "server", 1.0);
  network.listen({"server", 80},
                 [](ByteView, const Address&) { return Bytes{}; });
  const double before = clock.now_ms();
  ASSERT_TRUE(network.call({"client", 1}, {"server", 80}, {}).ok());
  EXPECT_DOUBLE_EQ(clock.now_ms() - before, 2.0);
}

TEST_F(NetFixture, InterceptorCanDrop) {
  network.listen({"s", 80}, [](ByteView, const Address&) {
    return to_bytes(std::string_view("ok"));
  });
  network.set_interceptor([](const Address&, const Address&, ByteView) {
    return MitmAction::drop();
  });
  auto r = network.call({"c", 1}, {"s", 80}, {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "net.timeout");
  network.clear_interceptor();
  EXPECT_TRUE(network.call({"c", 1}, {"s", 80}, {}).ok());
}

TEST_F(NetFixture, InterceptorCanTamper) {
  network.listen({"s", 80}, [](ByteView req, const Address&) {
    return to_bytes(req);
  });
  network.set_interceptor([](const Address&, const Address&, ByteView) {
    return MitmAction::tamper(to_bytes(std::string_view("evil")));
  });
  auto r = network.call({"c", 1}, {"s", 80}, to_bytes(std::string_view("hi")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_string(*r), "evil");
}

TEST_F(NetFixture, InterceptorCanRedirect) {
  network.listen({"good", 80}, [](ByteView, const Address&) {
    return to_bytes(std::string_view("good"));
  });
  network.listen({"evil", 80}, [](ByteView, const Address&) {
    return to_bytes(std::string_view("evil"));
  });
  network.set_interceptor([](const Address&, const Address&, ByteView) {
    return MitmAction::redirect({"evil", 80});
  });
  auto r = network.call({"c", 1}, {"good", 80}, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_string(*r), "evil");
}

TEST_F(NetFixture, DnsResolveAndNxdomain) {
  network.dns_set_a("svc.example.com", "10.1.2.3");
  auto addr = network.resolve("svc.example.com", 443);
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(addr->host, "10.1.2.3");
  EXPECT_EQ(addr->port, 443);
  EXPECT_EQ(network.resolve("nope.example", 1).error().code, "net.nxdomain");
  network.dns_remove_a("svc.example.com");
  EXPECT_FALSE(network.resolve("svc.example.com", 443).ok());
}

TEST_F(NetFixture, DnsTxtRecords) {
  EXPECT_TRUE(network.dns_txt("x").empty());
  network.dns_set_txt("x", "a");
  network.dns_set_txt("x", "b");
  EXPECT_EQ(network.dns_txt("x").size(), 2u);
  network.dns_clear_txt("x");
  EXPECT_TRUE(network.dns_txt("x").empty());
}

// ------------------------------------------------------------------ HTTP

TEST(Http, RequestRoundTrip) {
  HttpRequest req;
  req.method = "POST";
  req.path = "/api/submit";
  req.host = "svc.example.com";
  req.headers["content-type"] = "application/json";
  req.body = to_bytes(std::string_view("{\"k\":1}"));
  auto parsed = HttpRequest::parse(req.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->method, "POST");
  EXPECT_EQ(parsed->path, "/api/submit");
  EXPECT_EQ(parsed->headers.at("content-type"), "application/json");
  EXPECT_EQ(parsed->body, req.body);
}

TEST(Http, ResponseRoundTrip) {
  HttpResponse resp = HttpResponse::ok(to_bytes(std::string_view("<html>")),
                                       "text/html");
  auto parsed = HttpResponse::parse(resp.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->status, 200);
  EXPECT_EQ(parsed->headers.at("content-type"), "text/html");
}

TEST(Http, ParseRejectsGarbage) {
  EXPECT_FALSE(HttpRequest::parse(to_bytes(std::string_view("junk"))).ok());
  EXPECT_FALSE(HttpResponse::parse({}).ok());
}

TEST(Http, RouterLongestPrefixWins) {
  HttpRouter router;
  router.route("GET", "/a/*", [](const HttpRequest&) {
    return HttpResponse::ok(to_bytes(std::string_view("short")));
  });
  router.route("GET", "/a/b/*", [](const HttpRequest&) {
    return HttpResponse::ok(to_bytes(std::string_view("long")));
  });
  HttpRequest req;
  req.path = "/a/b/c";
  EXPECT_EQ(to_string(router.dispatch(req).body), "long");
  req.path = "/a/x";
  EXPECT_EQ(to_string(router.dispatch(req).body), "short");
}

TEST(Http, ResponseHelpers) {
  EXPECT_EQ(HttpResponse::not_found().status, 404);
  const auto err = HttpResponse::error(503, "down");
  EXPECT_EQ(err.status, 503);
  EXPECT_EQ(to_string(err.body), "down");
  const auto ok = HttpResponse::ok({}, "application/json");
  EXPECT_EQ(ok.headers.at("content-type"), "application/json");
}

TEST(Http, RouterExactAndPrefixDispatch) {
  HttpRouter router;
  router.route("GET", "/", [](const HttpRequest&) {
    return HttpResponse::ok(to_bytes(std::string_view("index")));
  });
  router.route("GET", "/api/*", [](const HttpRequest& r) {
    return HttpResponse::ok(to_bytes("api:" + r.path));
  });
  router.route("GET", "/api/special", [](const HttpRequest&) {
    return HttpResponse::ok(to_bytes(std::string_view("special")));
  });

  HttpRequest req;
  req.path = "/";
  EXPECT_EQ(to_string(router.dispatch(req).body), "index");
  req.path = "/api/special";
  EXPECT_EQ(to_string(router.dispatch(req).body), "special");
  req.path = "/api/other";
  EXPECT_EQ(to_string(router.dispatch(req).body), "api:/api/other");
  req.path = "/missing";
  EXPECT_EQ(router.dispatch(req).status, 404);
  req.method = "DELETE";
  req.path = "/";
  EXPECT_EQ(router.dispatch(req).status, 404);
}

// ------------------------------------------------------------------- TLS

struct TlsFixture : ::testing::Test {
  TlsFixture()
      : network(clock),
        drbg(to_bytes(std::string_view("tls-tests"))),
        root(pki::CertificateAuthority::create_root(
            crypto::p384(), {"TLS Root", "Org", "US"}, 0, 10 * kYearUs,
            drbg)) {}

  TlsServerIdentity make_identity(const std::string& dns_name) {
    TlsServerIdentity id;
    id.curve = &crypto::p256();
    id.key = crypto::ec_generate(crypto::p256(), drbg);
    id.certificate = root.issue_for_key(
        "P-256", id.key.public_encoded(crypto::p256()),
        {dns_name, "Svc", "US"}, {dns_name}, 0, kYearUs);
    return id;
  }

  std::unique_ptr<TlsServer> make_server(const std::string& dns_name,
                                         const Address& addr) {
    auto server = std::make_unique<TlsServer>(
        make_identity(dns_name),
        [](ByteView plaintext, const Address&) {
          return concat(to_bytes(std::string_view("srv:")), plaintext);
        },
        HmacDrbg(to_bytes(std::string_view("server-entropy")),
                 to_bytes(dns_name)));
    server->install(network, addr);
    return server;
  }

  TlsTrustConfig trust_for(const std::string& name) {
    TlsTrustConfig trust;
    trust.roots = {root.certificate()};
    trust.server_name = name;
    trust.now_us = clock.now_us();
    return trust;
  }

  SimClock clock;
  Network network{clock};
  HmacDrbg drbg;
  pki::CertificateAuthority root;
};

TEST_F(TlsFixture, HandshakeAndEcho) {
  auto server = make_server("svc.example.com", {"10.0.0.1", 443});
  auto session = TlsSession::connect(network, {"laptop", 40000},
                                     {"10.0.0.1", 443},
                                     trust_for("svc.example.com"), drbg);
  ASSERT_TRUE(session.ok()) << session.error().to_string();
  auto r = session->request(to_bytes(std::string_view("ping")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_string(*r), "srv:ping");
  // Multiple sequenced requests on the same session.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(session->request(to_bytes(std::string_view("x"))).ok());
  }
}

TEST_F(TlsFixture, ClientSeesServerLeafKey) {
  auto server = make_server("svc.example.com", {"10.0.0.1", 443});
  auto session = TlsSession::connect(network, {"laptop", 40000},
                                     {"10.0.0.1", 443},
                                     trust_for("svc.example.com"), drbg);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->server_public_key(),
            server->certificate().public_key);
}

TEST_F(TlsFixture, UntrustedRootRejected) {
  auto server = make_server("svc.example.com", {"10.0.0.1", 443});
  HmacDrbg other_drbg(to_bytes(std::string_view("other")));
  auto other_root = pki::CertificateAuthority::create_root(
      crypto::p384(), {"Other Root", "X", "US"}, 0, kYearUs, other_drbg);
  TlsTrustConfig trust;
  trust.roots = {other_root.certificate()};
  trust.server_name = "svc.example.com";
  auto session = TlsSession::connect(network, {"laptop", 1}, {"10.0.0.1", 443},
                                     trust, drbg);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.error().code, "tls.untrusted_certificate");
}

TEST_F(TlsFixture, NameMismatchRejected) {
  auto server = make_server("svc.example.com", {"10.0.0.1", 443});
  auto session = TlsSession::connect(network, {"laptop", 1}, {"10.0.0.1", 443},
                                     trust_for("other.example.com"), drbg);
  EXPECT_FALSE(session.ok());
}

TEST_F(TlsFixture, ServerWithoutPrivateKeyFailsTranscript) {
  // An impostor presents svc's real certificate but holds a different key:
  // the transcript signature cannot verify.
  auto real_identity = make_identity("svc.example.com");
  TlsServerIdentity impostor = real_identity;
  impostor.key = crypto::ec_generate(crypto::p256(), drbg);  // wrong key
  TlsServer server(std::move(impostor),
                   [](ByteView, const Address&) { return Bytes{}; },
                   HmacDrbg(to_bytes(std::string_view("imp"))));
  server.install(network, {"10.0.0.2", 443});
  auto session = TlsSession::connect(network, {"laptop", 1}, {"10.0.0.2", 443},
                                     trust_for("svc.example.com"), drbg);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.error().code, "tls.bad_transcript_signature");
}

TEST_F(TlsFixture, TamperedRecordRejectedByServer) {
  auto server = make_server("svc.example.com", {"10.0.0.1", 443});
  auto session = TlsSession::connect(network, {"laptop", 1}, {"10.0.0.1", 443},
                                     trust_for("svc.example.com"), drbg);
  ASSERT_TRUE(session.ok());
  // Attacker flips a byte in every data frame.
  network.set_interceptor(
      [](const Address&, const Address&, ByteView request) {
        if (!request.empty() && request[0] == 0x03) {
          Bytes tampered = to_bytes(request);
          tampered.back() ^= 0x01;
          return MitmAction::tamper(std::move(tampered));
        }
        return MitmAction::forward();
      });
  auto r = session->request(to_bytes(std::string_view("payload")));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "tls.alert");
}

TEST_F(TlsFixture, SessionResetDetected) {
  auto server = make_server("svc.example.com", {"10.0.0.1", 443});
  auto session = TlsSession::connect(network, {"laptop", 1}, {"10.0.0.1", 443},
                                     trust_for("svc.example.com"), drbg);
  ASSERT_TRUE(session.ok());
  server->reset_sessions();
  auto r = session->request(to_bytes(std::string_view("hello")));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "tls.alert");
}

TEST_F(TlsFixture, RedirectToLookalikeYieldsDifferentKey) {
  // The provider redirects traffic to another server with a CA-valid
  // certificate for the same name (it controls DNS/issuance): TLS alone
  // accepts it — only the Revelio key comparison catches it. Here we verify
  // the sessions expose different keys for the detection layer.
  auto good = make_server("svc.example.com", {"10.0.0.1", 443});
  auto evil = make_server("svc.example.com", {"6.6.6.6", 443});

  auto s1 = TlsSession::connect(network, {"laptop", 1}, {"10.0.0.1", 443},
                                trust_for("svc.example.com"), drbg);
  ASSERT_TRUE(s1.ok());
  network.set_interceptor([](const Address&, const Address& to, ByteView) {
    if (to.host == "10.0.0.1") return MitmAction::redirect({"6.6.6.6", 443});
    return MitmAction::forward();
  });
  auto s2 = TlsSession::connect(network, {"laptop", 1}, {"10.0.0.1", 443},
                                trust_for("svc.example.com"), drbg);
  ASSERT_TRUE(s2.ok()) << "TLS alone accepts the lookalike";
  EXPECT_NE(s1->server_public_key(), s2->server_public_key());
}

TEST_F(TlsFixture, P384ServerIdentityWorks) {
  // Server identities may sit on P-384 (the handshake ephemerals stay on
  // P-256); the AMD-style chain uses this.
  TlsServerIdentity id;
  id.curve = &crypto::p384();
  id.key = crypto::ec_generate(crypto::p384(), drbg);
  id.certificate = root.issue_for_key(
      "P-384", id.key.public_encoded(crypto::p384()),
      {"svc384.example", "Svc", "US"}, {"svc384.example"}, 0, kYearUs);
  TlsServer server(std::move(id),
                   [](ByteView, const Address&) {
                     return to_bytes(std::string_view("ok"));
                   },
                   HmacDrbg(to_bytes(std::string_view("p384-server"))));
  server.install(network, {"10.0.0.5", 443});
  auto session = TlsSession::connect(network, {"laptop", 1}, {"10.0.0.5", 443},
                                     trust_for("svc384.example"), drbg);
  ASSERT_TRUE(session.ok()) << session.error().to_string();
  EXPECT_TRUE(session->request(to_bytes(std::string_view("x"))).ok());
}

TEST_F(TlsFixture, ConcurrentSessionsAreIndependent) {
  auto server = make_server("svc.example.com", {"10.0.0.1", 443});
  auto s1 = TlsSession::connect(network, {"laptop", 1}, {"10.0.0.1", 443},
                                trust_for("svc.example.com"), drbg);
  auto s2 = TlsSession::connect(network, {"phone", 2}, {"10.0.0.1", 443},
                                trust_for("svc.example.com"), drbg);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  // Interleaved traffic on both sessions keeps sequence state separate.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(s1->request(to_bytes(std::string_view("a"))).ok());
    EXPECT_TRUE(s2->request(to_bytes(std::string_view("b"))).ok());
    EXPECT_TRUE(s2->request(to_bytes(std::string_view("c"))).ok());
  }
}

TEST_F(TlsFixture, ExpiredServerCertificateRejected) {
  TlsServerIdentity id = make_identity("svc.example.com");
  // Reissue with a validity window already over.
  id.certificate = root.issue_for_key(
      "P-256", id.key.public_encoded(crypto::p256()),
      {"svc.example.com", "Svc", "US"}, {"svc.example.com"}, 0, 1000);
  TlsServer server(std::move(id),
                   [](ByteView, const Address&) { return Bytes{}; },
                   HmacDrbg(to_bytes(std::string_view("expired"))));
  server.install(network, {"10.0.0.6", 443});
  clock.advance_ms(10.0);  // past the 1 ms validity
  auto session = TlsSession::connect(network, {"laptop", 1}, {"10.0.0.6", 443},
                                     trust_for("svc.example.com"), drbg);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.error().code, "tls.untrusted_certificate");
}

TEST_F(TlsFixture, HandshakeRejectsGarbageFrames) {
  auto server = make_server("svc.example.com", {"10.0.0.1", 443});
  auto r = network.call({"laptop", 1}, {"10.0.0.1", 443},
                        to_bytes(std::string_view("garbage")));
  ASSERT_TRUE(r.ok());  // transport succeeds, TLS alerts
  EXPECT_EQ((*r)[0], 0x0f);
}

}  // namespace
}  // namespace revelio::net

// Chaos soak: hundreds of end-to-end attestation sessions under seeded
// fault schedules (FoundationDB-style deterministic simulation).
//
// Three properties are soaked, per ISSUE and DESIGN.md "Fault injection &
// resilience":
//   (a) fail-closed under chaos — no session ever *accepts* unverified
//       trust: every successful fetch carries a fully green check list and
//       the untampered body; failures are transport verdicts, not partial
//       trust;
//   (b) recovery — once faults clear and breaker cooldowns elapse,
//       sessions succeed again;
//   (c) determinism — the same seed reproduces the identical transcript
//       bit for bit, including per-session virtual-time deltas.
//
// Virtual-time note: RevelioVm::deploy charges *measured* key-generation
// time to the SimClock, so the absolute post-provision timestamp differs
// across runs. Every fault window is therefore anchored at the
// post-provision epoch t0 and transcripts record deltas from t0 — after
// t0 all charges (latency, timeouts, backoff, fault delays) are pure
// virtual time and reproduce exactly.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "imagebuild/builder.hpp"
#include "obs/metrics.hpp"
#include "revelio/revelio_vm.hpp"
#include "revelio/sp_node.hpp"
#include "revelio/web_extension.hpp"
#include "vm/hypervisor.hpp"

namespace revelio::core {
namespace {

using crypto::HmacDrbg;

constexpr const char* kDomain = "svc.revelio.app";
constexpr const char* kKdsPrimary = "kds.amd.com";
constexpr const char* kKdsMirror = "kds-mirror.amd.com";
constexpr const char* kBody = "<html>app</html>";

/// A complete deployment, provisioned fault-free: 3 attested VMs behind
/// one domain, a KDS with one mirror, and a browser. Chaos is armed
/// afterwards via arm(), anchored at the post-provision epoch t0().
struct ChaosWorld {
  explicit ChaosWorld(const std::string& seed)
      : network(clock),
        world_drbg(to_bytes("chaos-world-" + seed)),
        kds(world_drbg),
        kds_service(kds, network, {kKdsPrimary, 443}),
        kds_mirror_service(kds, network, {kKdsMirror, 443}),
        acme(clock, world_drbg),
        browser(network, "laptop", acme.trusted_roots(),
                HmacDrbg(to_bytes("browser-" + seed))) {
    imagebuild::BaseImage base;
    base.name = "ubuntu";
    base.tag = "20.04";
    base.packages = {
        {"nginx", "1.18", {{"/usr/sbin/nginx",
                            to_bytes(std::string_view("nginx-binary"))}}}};
    const crypto::Digest32 base_digest = registry.publish(base);

    imagebuild::BuildInputs inputs;
    inputs.base_image_digest = base_digest;
    inputs.service_files["/opt/service/app"] =
        to_bytes(std::string_view("service-binary-v1"));
    inputs.initrd.services = {{"nginx", "/usr/sbin/nginx", 120.0},
                              {"app", "/opt/service/app", 300.0}};
    inputs.initrd.allowed_inbound_ports = {"443", "8443"};
    imagebuild::ImageBuilder builder(registry);
    auto built = builder.build(inputs);
    EXPECT_TRUE(built.ok());
    image = *built;
    expected_measurement = vm::Hypervisor::expected_measurement(
        image.kernel_blob, image.initrd_blob, image.cmdline);

    net::HttpRouter routes;
    routes.route("GET", "/", [](const net::HttpRequest&) {
      return net::HttpResponse::ok(to_bytes(std::string_view(kBody)),
                                   "text/html");
    });
    for (const std::string host : {"10.0.0.1", "10.0.0.2", "10.0.0.3"}) {
      auto sp_chip = std::make_unique<sevsnp::AmdSp>(
          to_bytes("platform-" + host + "-" + seed),
          sevsnp::TcbVersion{2, 0, 8, 115});
      kds.register_platform(*sp_chip);
      RevelioVmConfig config;
      config.domain = kDomain;
      config.host = host;
      config.image = image;
      config.kds_address = {kKdsPrimary, 443};
      config.kds_mirrors = {{kKdsMirror, 443}};
      auto node = RevelioVm::deploy(*sp_chip, network, config, routes);
      EXPECT_TRUE(node.ok()) << (node.ok() ? "" : node.error().to_string());
      platforms.push_back(std::move(sp_chip));
      nodes.push_back(std::move(*node));
    }

    SpNodeConfig sp_config;
    sp_config.domain = kDomain;
    sp_config.kds_address = {kKdsPrimary, 443};
    sp_config.expected_measurements = {expected_measurement};
    sp = std::make_unique<SpNode>(network, acme, sp_config);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      sp->approve_node(nodes[i]->bootstrap_address(),
                       platforms[i]->chip_id());
    }
    auto outcomes = sp->provision_fleet();
    EXPECT_TRUE(outcomes.ok())
        << (outcomes.ok() ? "" : outcomes.error().to_string());
    if (outcomes.ok()) {
      for (const auto& outcome : *outcomes) {
        EXPECT_TRUE(outcome.attested) << outcome.failure;
      }
    }
    network.dns_set_a(kDomain, "10.0.0.1");
    t0_ = clock.now_us();
  }

  SimClock::Micros t0() const { return t0_; }
  SimClock::Micros delta_us() const { return clock.now_us() - t0_; }

  /// Arms a fault plan; windows inside `plan` must already be t0-relative.
  void arm(net::FaultPlan plan) { network.set_fault_plan(std::move(plan)); }

  WebExtension make_extension() {
    WebExtensionConfig config;
    config.kds_address = {kKdsPrimary, 443};
    config.kds_mirrors = {{kKdsMirror, 443}};
    config.retry.max_attempts = 5;
    return WebExtension(browser, config);
  }

  SiteRegistration registration() {
    SiteRegistration site;
    site.expected_measurements = {expected_measurement};
    return site;
  }

  SimClock clock;
  net::Network network;
  HmacDrbg world_drbg;
  sevsnp::KeyDistributionServer kds;
  KdsService kds_service;
  KdsService kds_mirror_service;
  pki::AcmeIssuer acme;
  Browser browser;
  imagebuild::PackageRegistry registry;
  imagebuild::VmImage image;
  sevsnp::Measurement expected_measurement;
  std::vector<std::unique_ptr<sevsnp::AmdSp>> platforms;
  std::vector<std::unique_ptr<RevelioVm>> nodes;
  std::unique_ptr<SpNode> sp;

 private:
  SimClock::Micros t0_ = 0;
};

struct SoakStats {
  int sessions = 0;
  int succeeded = 0;
  int failed = 0;
};

/// Summary line per schedule (EXPERIMENTS.md's soak table is filled from
/// these): sessions, outcomes, and how many faults the schedule injected.
void report(const char* schedule, const SoakStats& stats,
            std::uint64_t faults_injected) {
  std::printf("[soak] %-16s sessions=%d ok=%d failed-closed=%d faults=%llu\n",
              schedule, stats.sessions, stats.succeeded, stats.failed,
              static_cast<unsigned long long>(faults_injected));
}

std::uint64_t total_faults_injected() {
  std::uint64_t total = 0;
  for (const char* kind : {"drop", "delay", "duplicate", "partition",
                           "blackhole", "flap"}) {
    total += obs::metrics().counter_value("net.fault.injected",
                                          {{"kind", kind}});
  }
  return total;
}

/// One full end-user session: a fresh extension (fresh caches, fresh
/// breakers — a new browser profile) attests and fetches the page. The
/// fail-closed property is asserted on every outcome: success means every
/// check is green and the body is untampered; failure must be a transport
/// verdict, never a verification code that slipped through as transient.
SoakStats run_sessions(ChaosWorld& world, int count,
                       std::string* transcript = nullptr) {
  SoakStats stats;
  for (int i = 0; i < count; ++i) {
    world.browser.drop_session(kDomain);
    WebExtension extension = world.make_extension();
    extension.register_site(kDomain, world.registration());
    auto verified = extension.get(kDomain, 443, "/");
    ++stats.sessions;
    if (verified.ok()) {
      ++stats.succeeded;
      // (a) No unverified trust: an accepted session is fully verified.
      EXPECT_TRUE(verified->checks.all_ok())
          << "session " << i << " accepted with a non-green check list";
      EXPECT_EQ(to_string(verified->response.body), kBody);
    } else {
      ++stats.failed;
      EXPECT_NE(verified.error().code, "extension.site_not_registered");
    }
    if (transcript != nullptr) {
      *transcript += "s" + std::to_string(i) + ":" +
                     (verified.ok() ? "ok" : verified.error().code) + ":" +
                     std::to_string(world.delta_us()) + "\n";
    }
  }
  return stats;
}

/// (b) Recovery: clears all faults, lets breaker cooldowns elapse, and
/// requires clean sessions to succeed again.
void expect_recovery(ChaosWorld& world) {
  world.network.fault_plan()->clear_faults();
  world.clock.advance_ms(6000.0);  // past the default 5 s breaker cooldown
  const SoakStats after = run_sessions(world, 3);
  EXPECT_EQ(after.succeeded, 3)
      << "sessions must succeed once faults clear and breakers half-open";
}

// Schedule 1 — lossy fabric: every link drops 15% of messages, delays 25%
// and duplicates 5%. Sessions retry through it; whatever the outcome, no
// partial trust is ever accepted.
std::string run_lossy_schedule(const std::string& seed, SoakStats* out) {
  ChaosWorld world(seed);
  net::LinkFaultProfile lossy;
  lossy.drop_prob = 0.15;
  lossy.delay_prob = 0.25;
  lossy.delay_min_ms = 1.0;
  lossy.delay_max_ms = 10.0;
  lossy.duplicate_prob = 0.05;
  net::FaultPlan plan(to_bytes("lossy-" + seed));
  plan.set_default_profile(lossy);
  world.arm(std::move(plan));

  const auto faults_before =
      obs::metrics().counter_value("net.fault.injected", {{"kind", "drop"}});
  const auto total_before = total_faults_injected();
  std::string transcript;
  const SoakStats stats = run_sessions(world, 80, &transcript);
  report(("lossy/" + seed).c_str(), stats,
         total_faults_injected() - total_before);
  EXPECT_GT(obs::metrics().counter_value("net.fault.injected",
                                         {{"kind", "drop"}}),
            faults_before)
      << "the schedule must actually inject faults";
  EXPECT_GT(stats.succeeded, 0) << "retries must carry some sessions through";
  expect_recovery(world);
  if (out != nullptr) *out = stats;
  return transcript;
}

TEST(ChaosSoak, LossyFabricFailsClosedAndRecovers) {
  SoakStats stats;
  run_lossy_schedule("seed-1", &stats);
  EXPECT_EQ(stats.sessions, 80);
}

// (c) Determinism: the same seed replays the identical transcript —
// outcome codes AND virtual-time deltas — in a freshly built world.
TEST(ChaosSoak, SameSeedReproducesBitIdenticalTranscript) {
  const std::string first = run_lossy_schedule("seed-replay", nullptr);
  const std::string second = run_lossy_schedule("seed-replay", nullptr);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
  // And a different seed must not replay the same schedule.
  const std::string other = run_lossy_schedule("seed-other", nullptr);
  EXPECT_NE(first, other);
}

// Schedule 2 — KDS outage: the primary KDS flaps (down 2 s of every 4 s,
// phase-anchored at t0) on top of a mildly lossy fabric. The extension's
// KDS failover must ride over to the mirror; attestation never accepts a
// chain it could not verify.
TEST(ChaosSoak, KdsFlapFailsOverToMirror) {
  ChaosWorld world("seed-2");
  net::LinkFaultProfile mild;
  mild.drop_prob = 0.05;
  net::FaultPlan plan(to_bytes(std::string_view("kds-flap")));
  plan.set_default_profile(mild);
  plan.flap(kKdsPrimary, 4'000'000, 2'000'000, world.t0());
  world.arm(std::move(plan));

  const auto switches_before =
      obs::metrics().counter_value("failover.switch.count",
                                   {{"service", "kds"}});
  const auto total_before = total_faults_injected();
  const SoakStats stats = run_sessions(world, 80);
  report("kds-flap", stats, total_faults_injected() - total_before);
  EXPECT_EQ(stats.sessions, 80);
  EXPECT_GT(stats.succeeded, stats.sessions / 2)
      << "the mirror must keep most sessions alive through primary outages";
  EXPECT_GT(obs::metrics().counter_value("failover.switch.count",
                                         {{"service", "kds"}}),
            switches_before)
      << "some sessions must have been served by the mirror";
  expect_recovery(world);
}

// Schedule 3 — partitioned primary KDS plus duplicate-heavy links, and a
// mid-schedule hard blackhole of the service itself: the browser is
// hard-partitioned from the primary KDS (every session must verify via
// the mirror), 30% of messages are duplicated (stateful endpoints observe
// the replay), and for a 20 s window the service host is gone entirely —
// sessions inside the window MUST fail, and fail closed with a transport
// verdict, never a half-verified acceptance.
TEST(ChaosSoak, PartitionAndDuplicatesStayFailClosed) {
  ChaosWorld world("seed-3");
  net::LinkFaultProfile dup_heavy;
  dup_heavy.duplicate_prob = 0.3;
  dup_heavy.drop_prob = 0.05;
  net::FaultPlan plan(to_bytes(std::string_view("partition-dup")));
  plan.set_default_profile(dup_heavy);
  plan.partition("laptop", kKdsPrimary);
  plan.blackhole("10.0.0.1", world.t0() + 5'000'000,
                 world.t0() + 25'000'000);
  world.arm(std::move(plan));

  const auto total_before = total_faults_injected();
  const SoakStats stats = run_sessions(world, 60);
  report("partition-dup", stats, total_faults_injected() - total_before);
  EXPECT_EQ(stats.sessions, 60);
  EXPECT_GT(stats.succeeded, 0);
  EXPECT_GT(stats.failed, 0)
      << "sessions inside the service blackhole must fail (closed)";
  expect_recovery(world);
}

// The chaos layer's own observability: after soaking, the metrics export
// carries the fault, retry and breaker series the runbook points at.
TEST(ChaosSoak, MetricsExportCarriesChaosSeries) {
  ChaosWorld world("seed-metrics");
  net::LinkFaultProfile lossy;
  lossy.drop_prob = 0.3;
  net::FaultPlan plan(to_bytes(std::string_view("metrics")));
  plan.set_default_profile(lossy);
  world.arm(std::move(plan));
  run_sessions(world, 10);

  const std::string json = obs::metrics().to_json();
  EXPECT_NE(json.find("net.fault.injected"), std::string::npos);
  EXPECT_NE(json.find("retry.attempts"), std::string::npos);
  EXPECT_NE(json.find("breaker.state"), std::string::npos);
}

}  // namespace
}  // namespace revelio::core

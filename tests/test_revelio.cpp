#include <gtest/gtest.h>

#include "imagebuild/builder.hpp"
#include "obs/metrics.hpp"
#include "revelio/revelio_vm.hpp"
#include "revelio/sp_node.hpp"
#include "revelio/trusted_registry.hpp"
#include "revelio/web_extension.hpp"

namespace revelio::core {
namespace {

using crypto::HmacDrbg;

constexpr const char* kDomain = "svc.revelio.app";

/// Full deployment fixture: 3 SEV-SNP platforms, KDS, ACME, SP node,
/// 3 Revelio VMs behind one domain, a browser with the extension.
struct RevelioFixture : ::testing::Test {
  RevelioFixture()
      : network(clock),
        fixture_drbg(to_bytes(std::string_view("revelio-e2e"))),
        kds(fixture_drbg),
        kds_service(kds, network, {"kds.amd.com", 443}),
        acme(clock, fixture_drbg) {
    // Base image + service artefacts.
    imagebuild::BaseImage base;
    base.name = "ubuntu";
    base.tag = "20.04";
    base.packages = {
        {"nginx", "1.18", {{"/usr/sbin/nginx",
                            to_bytes(std::string_view("nginx-binary"))}}}};
    base_digest = registry.publish(base);

    image = build_image("service-binary-v1");
    expected_measurement = vm::Hypervisor::expected_measurement(
        image.kernel_blob, image.initrd_blob, image.cmdline);
  }

  imagebuild::VmImage build_image(std::string_view service_content) {
    imagebuild::BuildInputs inputs;
    inputs.base_image_digest = base_digest;
    inputs.service_files["/opt/service/app"] = to_bytes(service_content);
    inputs.initrd.services = {{"nginx", "/usr/sbin/nginx", 120.0},
                              {"app", "/opt/service/app", 300.0}};
    inputs.initrd.allowed_inbound_ports = {"443", "8443"};
    imagebuild::ImageBuilder builder(registry);
    auto built = builder.build(inputs);
    EXPECT_TRUE(built.ok());
    return *built;
  }

  net::HttpRouter app_routes() {
    net::HttpRouter routes;
    routes.route("GET", "/", [](const net::HttpRequest&) {
      return net::HttpResponse::ok(to_bytes(std::string_view("<html>app</html>")),
                                   "text/html");
    });
    return routes;
  }

  /// Deploys one node on a fresh platform.
  std::unique_ptr<RevelioVm> deploy_node(const std::string& host,
                                         const imagebuild::VmImage& img) {
    auto sp = std::make_unique<sevsnp::AmdSp>(
        to_bytes("platform-" + host), sevsnp::TcbVersion{2, 0, 8, 115});
    kds.register_platform(*sp);
    RevelioVmConfig config;
    config.domain = kDomain;
    config.host = host;
    config.image = img;
    config.kds_address = {"kds.amd.com", 443};
    auto node = RevelioVm::deploy(*sp, network, config, app_routes());
    EXPECT_TRUE(node.ok()) << (node.ok() ? "" : node.error().to_string());
    platforms.push_back(std::move(sp));
    return std::move(*node);
  }

  /// Deploys the standard 3-node fleet and provisions certificates.
  void provision_standard_fleet() {
    for (const std::string host : {"10.0.0.1", "10.0.0.2", "10.0.0.3"}) {
      nodes.push_back(deploy_node(host, image));
    }
    SpNodeConfig sp_config;
    sp_config.domain = kDomain;
    sp_config.kds_address = {"kds.amd.com", 443};
    sp_config.expected_measurements = {expected_measurement};
    sp = std::make_unique<SpNode>(network, acme, sp_config);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      sp->approve_node(nodes[i]->bootstrap_address(),
                       platforms[i]->chip_id());
    }
    auto outcomes = sp->provision_fleet();
    ASSERT_TRUE(outcomes.ok()) << outcomes.error().to_string();
    fleet_outcomes = *outcomes;
    network.dns_set_a(kDomain, "10.0.0.1");
  }

  Browser make_browser() {
    return Browser(network, "laptop", acme.trusted_roots(),
                   HmacDrbg(to_bytes(std::string_view("browser-entropy"))));
  }

  WebExtension make_extension(Browser& browser) {
    WebExtensionConfig config;
    config.kds_address = {"kds.amd.com", 443};
    return WebExtension(browser, config);
  }

  SiteRegistration manual_registration() {
    SiteRegistration site;
    site.expected_measurements = {expected_measurement};
    return site;
  }

  SimClock clock;
  net::Network network;
  HmacDrbg fixture_drbg;
  sevsnp::KeyDistributionServer kds;
  KdsService kds_service;
  pki::AcmeIssuer acme;
  imagebuild::PackageRegistry registry;
  crypto::Digest32 base_digest;
  imagebuild::VmImage image;
  sevsnp::Measurement expected_measurement;
  std::vector<std::unique_ptr<sevsnp::AmdSp>> platforms;
  std::vector<std::unique_ptr<RevelioVm>> nodes;
  std::unique_ptr<SpNode> sp;
  std::vector<NodeAttestation> fleet_outcomes;
};

// ------------------------------------------------------------ provisioning

TEST_F(RevelioFixture, FleetProvisioningSharesOneCertificate) {
  provision_standard_fleet();
  ASSERT_EQ(fleet_outcomes.size(), 3u);
  for (const auto& outcome : fleet_outcomes) {
    EXPECT_TRUE(outcome.attested) << outcome.failure;
  }
  for (const auto& node : nodes) {
    EXPECT_TRUE(node->serving_tls());
  }
  // One ACME issuance for the whole fleet (rate-limit friendly, §3.4.6).
  EXPECT_EQ(acme.issued_in_window("revelio.app"), 1u);
  ASSERT_TRUE(sp->issued_certificate().has_value());
  // The certificate key is the leader's identity key.
  EXPECT_EQ(sp->issued_certificate()->public_key,
            nodes[0]->identity_public_key());
}

TEST_F(RevelioFixture, AcmeOutageRetriedOnBackoffUntilWindowEnds) {
  for (const std::string host : {"10.0.0.1", "10.0.0.2", "10.0.0.3"}) {
    nodes.push_back(deploy_node(host, image));
  }
  SpNodeConfig sp_config;
  sp_config.domain = kDomain;
  sp_config.kds_address = {"kds.amd.com", 443};
  sp_config.expected_measurements = {expected_measurement};
  sp_config.retry = {.max_attempts = 6,
                     .initial_backoff_ms = 200.0,
                     .multiplier = 2.0,
                     .max_backoff_ms = 1600.0,
                     .jitter = 0.0};
  sp = std::make_unique<SpNode>(network, acme, sp_config);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    sp->approve_node(nodes[i]->bootstrap_address(), platforms[i]->chip_id());
  }
  // CA maintenance window opens now and lasts 500ms of virtual time; the
  // SP's backoff schedule (200, 400, ...) carries the clock past it.
  const auto outage_end = clock.now_us() + 500'000;
  acme.set_outage_window(clock.now_us(), outage_end);
  const std::uint64_t attempts_before = obs::metrics().counter_value(
      "retry.attempts", {{"op", "sp.acme_finalize"}});

  auto outcomes = sp->provision_fleet();
  ASSERT_TRUE(outcomes.ok()) << outcomes.error().to_string();
  for (const auto& outcome : *outcomes) {
    EXPECT_TRUE(outcome.attested) << outcome.failure;
  }
  ASSERT_TRUE(sp->issued_certificate().has_value());
  // Issuance only succeeded after the window closed, on a later attempt.
  EXPECT_GE(clock.now_us(), outage_end);
  EXPECT_GE(obs::metrics().counter_value("retry.attempts",
                                         {{"op", "sp.acme_finalize"}}),
            attempts_before + 2);
}

TEST_F(RevelioFixture, AllNodesServeTheSameTlsIdentity) {
  provision_standard_fleet();
  Browser browser = make_browser();
  // Hit every node directly: the served leaf key must be identical.
  Bytes first_key;
  for (const std::string host : {"10.0.0.1", "10.0.0.2", "10.0.0.3"}) {
    network.dns_set_a(kDomain, host);
    browser.drop_session(kDomain);
    auto result = browser.get(kDomain, 443, "/");
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    if (first_key.empty()) {
      first_key = result->tls_server_key;
    } else {
      EXPECT_EQ(result->tls_server_key, first_key);
    }
  }
}

TEST_F(RevelioFixture, TamperedNodeFailsSpAttestationOthersProceed) {
  nodes.push_back(deploy_node("10.0.0.1", image));
  // Node 2 runs a backdoored build.
  const imagebuild::VmImage backdoored = build_image("service-backdoored");
  nodes.push_back(deploy_node("10.0.0.2", backdoored));

  SpNodeConfig sp_config;
  sp_config.domain = kDomain;
  sp_config.kds_address = {"kds.amd.com", 443};
  sp_config.expected_measurements = {expected_measurement};
  sp = std::make_unique<SpNode>(network, acme, sp_config);
  sp->approve_node(nodes[0]->bootstrap_address(), platforms[0]->chip_id());
  sp->approve_node(nodes[1]->bootstrap_address(), platforms[1]->chip_id());

  auto outcomes = sp->provision_fleet();
  ASSERT_TRUE(outcomes.ok());
  ASSERT_EQ(outcomes->size(), 2u);
  EXPECT_TRUE((*outcomes)[0].attested);
  EXPECT_FALSE((*outcomes)[1].attested);
  EXPECT_NE((*outcomes)[1].failure.find("sp.measurement_mismatch"),
            std::string::npos);
  EXPECT_TRUE(nodes[0]->serving_tls());
  EXPECT_FALSE(nodes[1]->serving_tls());
}

TEST_F(RevelioFixture, WrongChipRejectedDespiteValidReport) {
  nodes.push_back(deploy_node("10.0.0.1", image));
  SpNodeConfig sp_config;
  sp_config.domain = kDomain;
  sp_config.kds_address = {"kds.amd.com", 443};
  sp_config.expected_measurements = {expected_measurement};
  sp = std::make_unique<SpNode>(network, acme, sp_config);
  // Approve the address but bind it to a different chip.
  sevsnp::AmdSp other(to_bytes(std::string_view("unrelated-platform")),
                      sevsnp::TcbVersion{2, 0, 8, 115});
  sp->approve_node(nodes[0]->bootstrap_address(), other.chip_id());
  auto csr = sp->attest_node(nodes[0]->bootstrap_address());
  ASSERT_FALSE(csr.ok());
  EXPECT_EQ(csr.error().code, "sp.chip_mismatch");
}

TEST_F(RevelioFixture, UnapprovedNodeRejected) {
  nodes.push_back(deploy_node("10.0.0.1", image));
  SpNodeConfig sp_config;
  sp_config.domain = kDomain;
  sp_config.kds_address = {"kds.amd.com", 443};
  sp_config.expected_measurements = {expected_measurement};
  sp = std::make_unique<SpNode>(network, acme, sp_config);
  auto csr = sp->attest_node(nodes[0]->bootstrap_address());
  ASSERT_FALSE(csr.ok());
  EXPECT_EQ(csr.error().code, "sp.node_not_approved");
}

TEST_F(RevelioFixture, TcbFloorBlocksOldFirmware) {
  nodes.push_back(deploy_node("10.0.0.1", image));
  SpNodeConfig sp_config;
  sp_config.domain = kDomain;
  sp_config.kds_address = {"kds.amd.com", 443};
  sp_config.expected_measurements = {expected_measurement};
  sp_config.minimum_tcb = sevsnp::TcbVersion{3, 0, 9, 120};
  sp = std::make_unique<SpNode>(network, acme, sp_config);
  sp->approve_node(nodes[0]->bootstrap_address(), platforms[0]->chip_id());
  auto csr = sp->attest_node(nodes[0]->bootstrap_address());
  ASSERT_FALSE(csr.ok());
  EXPECT_EQ(csr.error().code, "sp.report_invalid");
}

TEST_F(RevelioFixture, KeyRequestFromUntrustedImageRefused) {
  provision_standard_fleet();
  // A backdoored node (valid report, wrong measurement) asks the leader
  // for the shared key.
  const imagebuild::VmImage backdoored = build_image("service-backdoored");
  auto rogue = deploy_node("6.6.6.6", backdoored);
  net::HttpRequest request;
  request.method = "POST";
  request.path = "/revelio/key-request";
  request.host = kDomain;
  request.body = rogue->identity_evidence().serialize();
  auto raw = network.call({"6.6.6.6", 1}, nodes[0]->bootstrap_address(),
                          request.serialize());
  ASSERT_TRUE(raw.ok());
  auto response = net::HttpResponse::parse(*raw);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 403);
}

// --------------------------------------------------------------- end-user

TEST_F(RevelioFixture, EndUserAttestationSucceeds) {
  provision_standard_fleet();
  Browser browser = make_browser();
  WebExtension extension = make_extension(browser);
  extension.register_site(kDomain, manual_registration());

  auto verified = extension.get(kDomain, 443, "/");
  ASSERT_TRUE(verified.ok()) << verified.error().to_string();
  EXPECT_TRUE(verified->checks.all_ok());
  EXPECT_EQ(to_string(verified->response.body), "<html>app</html>");
  EXPECT_EQ(extension.attestations_performed(), 1u);
  EXPECT_EQ(extension.kds_fetches(), 1u);
}

TEST_F(RevelioFixture, MonitoringSkipsReattestationWithinSession) {
  provision_standard_fleet();
  Browser browser = make_browser();
  WebExtension extension = make_extension(browser);
  extension.register_site(kDomain, manual_registration());
  ASSERT_TRUE(extension.get(kDomain, 443, "/").ok());
  const double after_attest = clock.now_ms();
  for (int i = 0; i < 5; ++i) {
    auto verified = extension.get(kDomain, 443, "/");
    ASSERT_TRUE(verified.ok());
    EXPECT_TRUE(verified->checks.all_ok());
  }
  EXPECT_EQ(extension.attestations_performed(), 1u);
  // Monitoring costs the connection-context query, not a full attestation.
  const double per_request = (clock.now_ms() - after_attest) / 5.0;
  EXPECT_LT(per_request, 100.0);
  EXPECT_GE(per_request, 14.0);
}

TEST_F(RevelioFixture, VcekCacheEliminatesKdsRoundTrip) {
  provision_standard_fleet();
  Browser browser = make_browser();
  WebExtension extension = make_extension(browser);
  extension.register_site(kDomain, manual_registration());
  ASSERT_TRUE(extension.get(kDomain, 443, "/").ok());
  EXPECT_EQ(extension.kds_fetches(), 1u);
  // Fresh browser session -> full re-attestation, but the VCEK is cached.
  browser.drop_session(kDomain);
  extension.invalidate(kDomain);
  ASSERT_TRUE(extension.get(kDomain, 443, "/").ok());
  EXPECT_EQ(extension.attestations_performed(), 2u);
  EXPECT_EQ(extension.kds_fetches(), 1u);
  EXPECT_EQ(extension.vcek_cache_hits(), 1u);
}

TEST_F(RevelioFixture, UnregisteredSiteIsRejected) {
  provision_standard_fleet();
  Browser browser = make_browser();
  WebExtension extension = make_extension(browser);
  auto r = extension.get(kDomain, 443, "/");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "extension.site_not_registered");
}

TEST_F(RevelioFixture, DiscoveryFindsRevelioSites) {
  provision_standard_fleet();
  Browser browser = make_browser();
  WebExtension extension = make_extension(browser);
  auto discovered = extension.discover(kDomain, 443);
  ASSERT_TRUE(discovered.ok());
  EXPECT_TRUE(*discovered);
}

TEST_F(RevelioFixture, WrongExpectedMeasurementFailsClosed) {
  provision_standard_fleet();
  Browser browser = make_browser();
  WebExtension extension = make_extension(browser);
  SiteRegistration site;
  sevsnp::Measurement wrong = expected_measurement;
  wrong[0] ^= 1;
  site.expected_measurements = {wrong};
  extension.register_site(kDomain, site);
  auto r = extension.get(kDomain, 443, "/");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "extension.attestation_failed");
  const auto* checks = extension.last_checks(kDomain);
  ASSERT_NE(checks, nullptr);
  EXPECT_TRUE(checks->signature_ok);
  EXPECT_FALSE(checks->measurement_ok);
}

TEST_F(RevelioFixture, RegistryDelegationAndRollbackRevocation) {
  provision_standard_fleet();
  TrustedRegistry trusted;
  trusted.publish(kDomain, expected_measurement);

  Browser browser = make_browser();
  WebExtension extension = make_extension(browser);
  SiteRegistration site;
  site.registry = &trusted;
  site.registry_service = kDomain;
  extension.register_site(kDomain, site);
  ASSERT_TRUE(extension.get(kDomain, 443, "/").ok());

  // 6.1.4: the image is found vulnerable and revoked; users must now
  // reject the (otherwise valid) measurement.
  trusted.revoke(kDomain, expected_measurement);
  browser.drop_session(kDomain);
  extension.invalidate(kDomain);
  auto r = extension.get(kDomain, 443, "/");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "extension.attestation_failed");
}

TEST_F(RevelioFixture, RedirectToLookalikeDetectedByKeyMonitoring) {
  provision_standard_fleet();
  Browser browser = make_browser();
  WebExtension extension = make_extension(browser);
  extension.register_site(kDomain, manual_registration());
  ASSERT_TRUE(extension.get(kDomain, 443, "/").ok());

  // The malicious provider obtains a *CA-valid* certificate for the domain
  // with a fresh key (it controls DNS) and stands up a lookalike server.
  HmacDrbg evil_drbg(to_bytes(std::string_view("evil")));
  const auto evil_key = crypto::ec_generate(crypto::p256(), evil_drbg);
  const auto evil_csr = pki::make_csr(crypto::p256(), evil_key,
                                      {kDomain, "Evil", "US"}, {kDomain});
  const std::string token = acme.request_challenge("evil-acct", kDomain);
  network.dns_set_txt("_acme-challenge." + std::string(kDomain), token);
  auto evil_cert = acme.finalize("evil-acct", evil_csr, [&](const auto& n) {
    return network.dns_txt(n);
  });
  ASSERT_TRUE(evil_cert.ok());

  net::TlsServerIdentity evil_identity;
  evil_identity.curve = &crypto::p256();
  evil_identity.key = evil_key;
  evil_identity.certificate = *evil_cert;
  evil_identity.intermediates = acme.intermediates();
  net::TlsServer evil_server(
      std::move(evil_identity),
      [](ByteView, const net::Address&) {
        return net::HttpResponse::ok(
                   to_bytes(std::string_view("<html>phish</html>")))
            .serialize();
      },
      HmacDrbg(to_bytes(std::string_view("evil-entropy"))));
  evil_server.install(network, {"6.6.6.6", 443});

  // Reset the victim's sessions and repoint DNS: the browser reconnects to
  // the lookalike. Plain TLS accepts it — the extension must not.
  network.dns_set_a(kDomain, "6.6.6.6");
  browser.drop_session(kDomain);
  auto r = extension.get(kDomain, 443, "/");
  ASSERT_FALSE(r.ok());
  // The reconnect triggers a fresh attestation, which fails at evidence or
  // binding: the lookalike has no valid report for its key.
  EXPECT_EQ(r.error().code, "extension.attestation_failed");
}

TEST_F(RevelioFixture, StolenEvidenceCannotCoverForeignTlsKey) {
  provision_standard_fleet();
  // The attacker replays the *real* node's evidence bundle from its own
  // server: every signature checks out, but the TLS session terminates at
  // the attacker's key, so the binding check fails.
  const Bytes stolen_evidence = nodes[0]->identity_evidence().serialize();

  HmacDrbg evil_drbg(to_bytes(std::string_view("evil-2")));
  const auto evil_key = crypto::ec_generate(crypto::p256(), evil_drbg);
  const auto evil_csr = pki::make_csr(crypto::p256(), evil_key,
                                      {kDomain, "Evil", "US"}, {kDomain});
  const std::string token = acme.request_challenge("evil-acct", kDomain);
  network.dns_set_txt("_acme-challenge." + std::string(kDomain), token);
  auto evil_cert = acme.finalize("evil-acct", evil_csr, [&](const auto& n) {
    return network.dns_txt(n);
  });
  ASSERT_TRUE(evil_cert.ok());

  net::TlsServerIdentity evil_identity;
  evil_identity.curve = &crypto::p256();
  evil_identity.key = evil_key;
  evil_identity.certificate = *evil_cert;
  evil_identity.intermediates = acme.intermediates();
  net::TlsServer evil_server(
      std::move(evil_identity),
      [stolen_evidence](ByteView raw, const net::Address&) {
        auto request = net::HttpRequest::parse(raw);
        if (request.ok() &&
            request->path == "/.well-known/revelio-attestation") {
          return net::HttpResponse::ok(stolen_evidence).serialize();
        }
        return net::HttpResponse::ok(
                   to_bytes(std::string_view("<html>phish</html>")))
            .serialize();
      },
      HmacDrbg(to_bytes(std::string_view("evil-entropy-2"))));
  evil_server.install(network, {"6.6.6.6", 443});
  network.dns_set_a(kDomain, "6.6.6.6");

  Browser browser = make_browser();
  WebExtension extension = make_extension(browser);
  extension.register_site(kDomain, manual_registration());
  auto r = extension.get(kDomain, 443, "/");
  ASSERT_FALSE(r.ok());
  const auto* checks = extension.last_checks(kDomain);
  ASSERT_NE(checks, nullptr);
  EXPECT_TRUE(checks->signature_ok) << "the stolen report itself is genuine";
  EXPECT_TRUE(checks->measurement_ok);
  EXPECT_FALSE(checks->tls_binding_ok)
      << "the TLS binding is what catches the replay";
}

// ----------------------------------------------------------- registry/misc

TEST(TrustedRegistry, PublishRevokeLifecycle) {
  TrustedRegistry registry;
  sevsnp::Measurement m1 = sevsnp::Measurement::from(
      crypto::sha384(to_bytes(std::string_view("v1"))).view());
  sevsnp::Measurement m2 = sevsnp::Measurement::from(
      crypto::sha384(to_bytes(std::string_view("v2"))).view());
  registry.publish("svc", m1);
  registry.publish("svc", m2);
  EXPECT_TRUE(registry.is_acceptable("svc", m1));
  EXPECT_EQ(registry.good_measurements("svc").size(), 2u);
  registry.revoke("svc", m1);
  EXPECT_FALSE(registry.is_acceptable("svc", m1));
  EXPECT_TRUE(registry.is_revoked("svc", m1));
  // Re-publishing a revoked measurement must not resurrect it.
  registry.publish("svc", m1);
  EXPECT_FALSE(registry.is_acceptable("svc", m1));
  EXPECT_FALSE(registry.is_acceptable("other", m2));
}

TEST(TrustedRegistry, CommunityVotingQuorum) {
  TrustedRegistry registry;
  for (const char* voter : {"a", "b", "c", "d", "e"}) {
    registry.register_voter(voter);
  }
  sevsnp::Measurement m = sevsnp::Measurement::from(
      crypto::sha384(to_bytes(std::string_view("release"))).view());
  const auto id = registry.propose("svc", m);
  EXPECT_FALSE(registry.is_acceptable("svc", m));
  ASSERT_TRUE(registry.vote(id, "a", true).ok());
  ASSERT_TRUE(registry.vote(id, "b", true).ok());
  EXPECT_FALSE(registry.is_acceptable("svc", m)) << "2 of 5 is not quorum";
  ASSERT_TRUE(registry.vote(id, "c", true).ok());
  EXPECT_TRUE(registry.is_acceptable("svc", m)) << "3 of 5 adopts";
  EXPECT_TRUE(registry.proposal(id)->adopted);
  EXPECT_FALSE(registry.vote(id, "d", true).ok()) << "proposal closed";
}

TEST(TrustedRegistry, VotingGuards) {
  TrustedRegistry registry;
  registry.register_voter("a");
  registry.register_voter("b");
  registry.register_voter("c");
  sevsnp::Measurement m{};
  const auto id = registry.propose("svc", m);
  EXPECT_FALSE(registry.vote(id, "stranger", true).ok());
  EXPECT_FALSE(registry.vote(999, "a", true).ok());
  ASSERT_TRUE(registry.vote(id, "a", false).ok());
  EXPECT_FALSE(registry.vote(id, "a", true).ok()) << "no double voting";
  ASSERT_TRUE(registry.vote(id, "b", false).ok());
  EXPECT_TRUE(registry.proposal(id)->rejected);
}

TEST_F(RevelioFixture, NinetyDayCertificateRenewalFlow) {
  provision_standard_fleet();
  Browser browser = make_browser();
  WebExtension extension = make_extension(browser);
  extension.register_site(kDomain, manual_registration());
  ASSERT_TRUE(extension.get(kDomain, 443, "/").ok());

  // 91 days later the certificate has expired: fresh sessions must fail.
  clock.advance_us(91ull * 24 * 3600 * 1000 * 1000);
  browser.drop_session(kDomain);
  extension.invalidate(kDomain);
  auto expired = extension.get(kDomain, 443, "/");
  ASSERT_FALSE(expired.ok());

  // The SP node runs its renewal round (re-attest, re-issue, re-distribute
  // — the same provisioning workflow, §5.3.1).
  auto renewed = sp->provision_fleet();
  ASSERT_TRUE(renewed.ok()) << renewed.error().to_string();
  for (const auto& outcome : *renewed) {
    EXPECT_TRUE(outcome.attested) << outcome.failure;
  }

  browser.drop_session(kDomain);
  extension.invalidate(kDomain);
  auto again = extension.get(kDomain, 443, "/");
  ASSERT_TRUE(again.ok()) << again.error().to_string();
  EXPECT_TRUE(again->checks.all_ok());
}

TEST_F(RevelioFixture, LastChecksExposedForExtensionUi) {
  provision_standard_fleet();
  Browser browser = make_browser();
  WebExtension extension = make_extension(browser);
  extension.register_site(kDomain, manual_registration());
  EXPECT_EQ(extension.last_checks(kDomain), nullptr);
  ASSERT_TRUE(extension.get(kDomain, 443, "/").ok());
  const auto* checks = extension.last_checks(kDomain);
  ASSERT_NE(checks, nullptr);
  EXPECT_TRUE(checks->all_ok());
  EXPECT_TRUE(checks->failure.empty());
}

// ----------------------------------------------------------- persistence

TEST_F(RevelioFixture, RebootResumesServiceWithoutReprovisioning) {
  provision_standard_fleet();
  ASSERT_TRUE(nodes[0]->serving_tls());
  const Bytes cert_key = sp->issued_certificate()->public_key;
  auto disk = nodes[0]->disk();

  // Power-cycle node 0: same platform, same image, same disk.
  platforms[0]->launch_reset();
  nodes[0].reset();  // releases the network listeners? (handlers replaced)
  RevelioVmConfig config;
  config.domain = kDomain;
  config.host = "10.0.0.1";
  config.image = image;
  config.kds_address = {"kds.amd.com", 443};
  config.existing_disk = disk;
  auto rebooted =
      RevelioVm::deploy(*platforms[0], network, config, app_routes());
  ASSERT_TRUE(rebooted.ok()) << rebooted.error().to_string();
  EXPECT_FALSE((*rebooted)->boot_report().first_boot)
      << "the sealed volume already exists";
  EXPECT_TRUE((*rebooted)->serving_tls())
      << "TLS identity must be unsealed from the data volume";
  EXPECT_EQ((*rebooted)->identity_public_key(), cert_key)
      << "same measurement + chip => same identity key";

  // An end-user session still attests cleanly against the rebooted node.
  Browser browser = make_browser();
  WebExtension extension = make_extension(browser);
  extension.register_site(kDomain, manual_registration());
  auto verified = extension.get(kDomain, 443, "/");
  ASSERT_TRUE(verified.ok()) << verified.error().to_string();
  EXPECT_TRUE(verified->checks.all_ok());
}

TEST_F(RevelioFixture, RebootWithDifferentImageCannotUnseal) {
  provision_standard_fleet();
  auto disk = nodes[0]->disk();
  platforms[0]->launch_reset();
  nodes[0].reset();

  const imagebuild::VmImage backdoored = build_image("service-backdoored");
  RevelioVmConfig config;
  config.domain = kDomain;
  config.host = "10.0.0.1";
  config.image = backdoored;
  config.kds_address = {"kds.amd.com", 443};
  config.existing_disk = disk;
  auto rebooted =
      RevelioVm::deploy(*platforms[0], network, config, app_routes());
  ASSERT_FALSE(rebooted.ok())
      << "a different measurement derives a different sealing key";
}

TEST_F(RevelioFixture, RebootOnDifferentChipCannotUnseal) {
  provision_standard_fleet();
  auto disk = nodes[0]->disk();
  auto foreign = std::make_unique<sevsnp::AmdSp>(
      to_bytes(std::string_view("stolen-disk-platform")),
      sevsnp::TcbVersion{2, 0, 8, 115});
  kds.register_platform(*foreign);
  RevelioVmConfig config;
  config.domain = kDomain;
  config.host = "10.0.0.9";
  config.image = image;
  config.kds_address = {"kds.amd.com", 443};
  config.existing_disk = disk;
  auto moved = RevelioVm::deploy(*foreign, network, config, app_routes());
  ASSERT_FALSE(moved.ok())
      << "migrating the disk to another chip must not unseal it";
}

TEST(EvidenceBundle, BindAndRoundTrip) {
  const Bytes payload = to_bytes(std::string_view("some public key"));
  EvidenceBundle bundle;
  bundle.payload = payload;
  bundle.report.report_data = EvidenceBundle::bind(payload);
  EXPECT_TRUE(bundle.binding_ok());
  auto parsed = EvidenceBundle::parse(bundle.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->binding_ok());
  EXPECT_EQ(parsed->payload, payload);

  bundle.payload.push_back('!');
  EXPECT_FALSE(bundle.binding_ok());
  EXPECT_FALSE(EvidenceBundle::parse(to_bytes(std::string_view("x"))).ok());
}

}  // namespace
}  // namespace revelio::core

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "obs/metrics.hpp"
#include "storage/block_device.hpp"
#include "storage/dm_crypt.hpp"
#include "storage/dm_verity.hpp"
#include "storage/imagefs.hpp"
#include "storage/mem_disk.hpp"
#include "storage/partition.hpp"

namespace revelio::storage {
namespace {

using crypto::HmacDrbg;

Bytes pattern_bytes(std::size_t n, std::uint8_t seed = 0) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(i * 131 + seed);
  }
  return out;
}

// ---------------------------------------------------------------- MemDisk

TEST(MemDisk, BlockRoundTrip) {
  MemDisk disk(512, 8);
  const Bytes data = pattern_bytes(512);
  ASSERT_TRUE(disk.write_block(3, data).ok());
  Bytes back(512);
  ASSERT_TRUE(disk.read_block(3, back).ok());
  EXPECT_EQ(back, data);
}

TEST(MemDisk, RejectsOutOfRangeAndBadBuffer) {
  MemDisk disk(512, 4);
  Bytes buf(512);
  EXPECT_FALSE(disk.read_block(4, buf).ok());
  EXPECT_FALSE(disk.write_block(4, buf).ok());
  Bytes small(100);
  EXPECT_FALSE(disk.read_block(0, small).ok());
  EXPECT_FALSE(disk.write_block(0, small).ok());
}

TEST(MemDisk, TracksIoStats) {
  MemDisk disk(512, 4);
  Bytes buf(512);
  ASSERT_TRUE(disk.write_block(0, buf).ok());
  ASSERT_TRUE(disk.read_block(0, buf).ok());
  ASSERT_TRUE(disk.read_block(1, buf).ok());
  EXPECT_EQ(disk.stats().blocks_written, 1u);
  EXPECT_EQ(disk.stats().blocks_read, 2u);
  disk.reset_stats();
  EXPECT_EQ(disk.stats().blocks_read, 0u);
}

TEST(MemDisk, RawTamperBypassesInterface) {
  MemDisk disk(512, 2);
  Bytes buf(512, 0x00);
  ASSERT_TRUE(disk.write_block(0, buf).ok());
  disk.raw_tamper(100, 0xff);
  ASSERT_TRUE(disk.read_block(0, buf).ok());
  EXPECT_EQ(buf[100], 0xff);
}

TEST(MemDisk, RawDumpSeesCiphertextLayout) {
  MemDisk disk(512, 2);
  const Bytes data = pattern_bytes(512);
  ASSERT_TRUE(disk.write_block(1, data).ok());
  const Bytes dump = disk.raw_dump(512, 512);
  EXPECT_EQ(dump, data);
  EXPECT_TRUE(disk.raw_dump(2000, 10).empty());
}

// ---------------------------------------------------------- byte helpers

TEST(BlockDevice, ByteReadWriteSpansBlocks) {
  MemDisk disk(64, 16);
  const Bytes data = pattern_bytes(200);
  ASSERT_TRUE(disk.write(30, data).ok());
  auto back = disk.read(30, 200);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(BlockDevice, ByteAccessRejectsOutOfRange) {
  MemDisk disk(64, 2);
  EXPECT_FALSE(disk.read(100, 100).ok());
  EXPECT_FALSE(disk.write(120, pattern_bytes(100)).ok());
}

TEST(SliceDevice, WindowsParentRange) {
  auto disk = std::make_shared<MemDisk>(64, 10);
  SliceDevice slice(disk, 4, 3);
  EXPECT_EQ(slice.block_count(), 3u);
  const Bytes data = pattern_bytes(64);
  ASSERT_TRUE(slice.write_block(0, data).ok());
  Bytes back(64);
  ASSERT_TRUE(disk->read_block(4, back).ok());
  EXPECT_EQ(back, data);
  EXPECT_FALSE(slice.read_block(3, back).ok());
}

// ------------------------------------------------------------- Partition

TEST(PartitionTable, RoundTripThroughDevice) {
  auto disk = std::make_shared<MemDisk>(4096, 100);
  PartitionTable table;
  FixedBytes<16> uuid_a = FixedBytes<16>::from(pattern_bytes(16, 1));
  FixedBytes<16> uuid_b = FixedBytes<16>::from(pattern_bytes(16, 2));
  table.add("rootfs", uuid_a, 50);
  table.add("verity", uuid_b, 20);
  ASSERT_TRUE(table.write_to(*disk).ok());

  auto parsed = PartitionTable::read_from(*disk);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->entries().size(), 2u);
  EXPECT_EQ(parsed->entries()[0].label, "rootfs");
  EXPECT_EQ(parsed->entries()[0].first_block, 1u);
  EXPECT_EQ(parsed->entries()[1].first_block, 51u);
  EXPECT_EQ(parsed->entries()[1].uuid, uuid_b);
}

TEST(PartitionTable, OpenReturnsCorrectSlice) {
  auto disk = std::make_shared<MemDisk>(4096, 100);
  PartitionTable table;
  table.add("a", {}, 10);
  table.add("b", {}, 5);
  ASSERT_TRUE(table.write_to(*disk).ok());

  auto part = PartitionTable::open(disk, "b");
  ASSERT_TRUE(part.ok());
  EXPECT_EQ((*part)->block_count(), 5u);
  const Bytes data = pattern_bytes(4096);
  ASSERT_TRUE((*part)->write_block(0, data).ok());
  Bytes back(4096);
  ASSERT_TRUE(disk->read_block(11, back).ok());
  EXPECT_EQ(back, data);
}

TEST(PartitionTable, MissingLabelAndBadMagic) {
  auto disk = std::make_shared<MemDisk>(4096, 10);
  PartitionTable table;
  table.add("only", {}, 2);
  ASSERT_TRUE(table.write_to(*disk).ok());
  EXPECT_FALSE(PartitionTable::open(disk, "nope").ok());

  auto blank = std::make_shared<MemDisk>(4096, 10);
  EXPECT_EQ(PartitionTable::read_from(*blank).error().code,
            "partition.bad_magic");
}

// -------------------------------------------------------------- DmCrypt

class DmCryptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_shared<MemDisk>(4096, 32);
    HmacDrbg drbg(to_bytes(std::string_view("crypt-test")));
    key_ = drbg.generate(32);
    salt_ = drbg.generate(32);
  }
  std::shared_ptr<MemDisk> disk_;
  Bytes key_;
  Bytes salt_;
};

TEST_F(DmCryptTest, FormatOpenRoundTrip) {
  auto dev = CryptVolume::format(disk_, key_, salt_);
  ASSERT_TRUE(dev.ok());
  const Bytes data = pattern_bytes(4096);
  ASSERT_TRUE((*dev)->write_block(5, data).ok());

  auto reopened = CryptVolume::open(disk_, key_);
  ASSERT_TRUE(reopened.ok());
  Bytes back(4096);
  ASSERT_TRUE((*reopened)->read_block(5, back).ok());
  EXPECT_EQ(back, data);
}

TEST_F(DmCryptTest, WrongKeyRejectedAtOpen) {
  ASSERT_TRUE(CryptVolume::format(disk_, key_, salt_).ok());
  Bytes wrong = key_;
  wrong[0] ^= 1;
  auto r = CryptVolume::open(disk_, wrong);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "crypt.wrong_key");
}

TEST_F(DmCryptTest, CiphertextOnDiskDiffersFromPlaintext) {
  auto dev = CryptVolume::format(disk_, key_, salt_);
  ASSERT_TRUE(dev.ok());
  const Bytes data = pattern_bytes(4096);
  ASSERT_TRUE((*dev)->write_block(0, data).ok());
  // Payload block 0 lands at backing block 1 (after the header).
  const Bytes on_disk = disk_->raw_dump(4096, 4096);
  EXPECT_NE(on_disk, data) << "plaintext must never reach the disk";
}

TEST_F(DmCryptTest, IdenticalPlaintextBlocksEncryptDifferently) {
  auto dev = CryptVolume::format(disk_, key_, salt_);
  ASSERT_TRUE(dev.ok());
  const Bytes data = pattern_bytes(4096);
  ASSERT_TRUE((*dev)->write_block(0, data).ok());
  ASSERT_TRUE((*dev)->write_block(1, data).ok());
  EXPECT_NE(disk_->raw_dump(4096, 4096), disk_->raw_dump(8192, 4096))
      << "XTS sector tweak must separate identical sectors";
}

TEST_F(DmCryptTest, HostTamperGarblesPlaintext) {
  auto dev = CryptVolume::format(disk_, key_, salt_);
  ASSERT_TRUE(dev.ok());
  const Bytes data = pattern_bytes(4096);
  ASSERT_TRUE((*dev)->write_block(2, data).ok());
  disk_->raw_tamper(3 * 4096 + 7, 0x01);  // payload block 2 = backing block 3
  Bytes back(4096);
  ASSERT_TRUE((*dev)->read_block(2, back).ok());
  EXPECT_NE(back, data) << "XTS decrypt of tampered ciphertext must differ";
}

TEST_F(DmCryptTest, DetectsFormattedDevice) {
  EXPECT_FALSE(CryptVolume::is_formatted(*disk_));
  ASSERT_TRUE(CryptVolume::format(disk_, key_, salt_).ok());
  EXPECT_TRUE(CryptVolume::is_formatted(*disk_));
}

TEST_F(DmCryptTest, RejectsBadSaltAndTinyDevice) {
  EXPECT_FALSE(CryptVolume::format(disk_, key_, pattern_bytes(5)).ok());
  auto tiny = std::make_shared<MemDisk>(4096, 1);
  EXPECT_FALSE(CryptVolume::format(tiny, key_, salt_).ok());
}

// -------------------------------------------------------------- DmVerity

class DmVerityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_dev_ = std::make_shared<MemDisk>(4096, 16);
    hash_dev_ = std::make_shared<MemDisk>(4096, 16);
    for (std::uint64_t i = 0; i < data_dev_->block_count(); ++i) {
      ASSERT_TRUE(data_dev_
                      ->write_block(i, pattern_bytes(4096,
                                                     static_cast<std::uint8_t>(i)))
                      .ok());
    }
    auto meta = Verity::format(*data_dev_, *hash_dev_);
    ASSERT_TRUE(meta.ok());
    meta_ = *meta;
  }
  std::shared_ptr<MemDisk> data_dev_;
  std::shared_ptr<MemDisk> hash_dev_;
  VerityMetadata meta_;
};

TEST_F(DmVerityTest, OpenAndReadAllBlocks) {
  auto dev = Verity::open(data_dev_, hash_dev_, meta_.root_hash);
  ASSERT_TRUE(dev.ok());
  EXPECT_TRUE((*dev)->verify_all().ok());
}

TEST_F(DmVerityTest, SingleBitFlipFailsExactlyThatBlock) {
  auto dev = Verity::open(data_dev_, hash_dev_, meta_.root_hash);
  ASSERT_TRUE(dev.ok());
  data_dev_->raw_tamper(5 * 4096 + 123, 0x40);  // flip one bit in block 5

  Bytes buf(4096);
  for (std::uint64_t i = 0; i < (*dev)->block_count(); ++i) {
    const auto st = (*dev)->read_block(i, buf);
    if (i == 5) {
      ASSERT_FALSE(st.ok());
      EXPECT_EQ(st.error().code, "verity.block_mismatch");
    } else {
      EXPECT_TRUE(st.ok()) << "block " << i;
    }
  }
}

TEST_F(DmVerityTest, WritesAlwaysRejected) {
  auto dev = Verity::open(data_dev_, hash_dev_, meta_.root_hash);
  ASSERT_TRUE(dev.ok());
  const auto st = (*dev)->write_block(0, pattern_bytes(4096));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "verity.read_only");
}

TEST_F(DmVerityTest, WrongRootHashFailsOpen) {
  crypto::Digest32 wrong = meta_.root_hash;
  wrong[0] ^= 1;
  const auto r = Verity::open(data_dev_, hash_dev_, wrong);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "verity.root_mismatch");
}

TEST_F(DmVerityTest, TamperedHashDeviceFailsOpen) {
  // Corrupt a serialized tree node (skip the length header block).
  hash_dev_->raw_tamper(4096 + 64, 0x01);
  const auto r = Verity::open(data_dev_, hash_dev_, meta_.root_hash);
  EXPECT_FALSE(r.ok());
}

TEST_F(DmVerityTest, ConsistentTamperOfDataAndLeafStillFailsViaRoot) {
  // Attacker rewrites a data block AND recomputes its leaf in the hash
  // device; inner nodes no longer match, so deserialize or open fails.
  Bytes new_block = pattern_bytes(4096, 0xEE);
  ASSERT_TRUE(data_dev_->write_block(5, new_block).ok());
  const auto leaf = crypto::MerkleTree::hash_leaf(new_block);
  // Serialized layout: u64 leaf_count, u64 level_count, then level 0:
  // u64 node_count followed by the leaves.
  const std::uint64_t leaf_offset = 4096 /*len header block*/ + 8 + 8 + 8 +
                                    5 * 32;
  Bytes leaf_bytes = leaf.bytes();
  ASSERT_TRUE(hash_dev_->write(leaf_offset, leaf_bytes).ok());
  EXPECT_FALSE(Verity::open(data_dev_, hash_dev_, meta_.root_hash).ok());
}

TEST_F(DmVerityTest, TamperRejectedAfterAncestorsCached) {
  auto dev = Verity::open(data_dev_, hash_dev_, meta_.root_hash);
  ASSERT_TRUE(dev.ok());
  Bytes buf(4096);
  // Warm the ancestor cache: a clean read of block 5 authenticates (and
  // marks) every node on its path, so a follow-up read short-circuits.
  ASSERT_TRUE((*dev)->read_block(5, buf).ok());
  ASSERT_TRUE((*dev)->read_block(4, buf).ok());
  // Tamper the backing store afterwards. The cache holds trust in tree
  // nodes, not block contents: the per-read leaf recompute must still
  // catch this even with every ancestor of block 5 marked verified.
  data_dev_->raw_tamper(5 * 4096 + 1000, 0x01);
  const auto st = (*dev)->read_block(5, buf);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "verity.block_mismatch");
  EXPECT_FALSE((*dev)->read_block(5, buf).ok()) << "must stay rejected";
}

TEST_F(DmVerityTest, AncestorCacheShortCircuitsRepeatReads) {
  auto dev = Verity::open(data_dev_, hash_dev_, meta_.root_hash);
  ASSERT_TRUE(dev.ok());
  auto& reg = obs::metrics();
  const auto full0 = reg.counter_value(
      "storage.verity_read.ancestor_cache.full_walk.count");
  const auto hit0 =
      reg.counter_value("storage.verity_read.ancestor_cache.hit.count");
  Bytes buf(4096);
  ASSERT_TRUE((*dev)->read_block(7, buf).ok());  // cold: climbs to the root
  ASSERT_TRUE((*dev)->read_block(7, buf).ok());  // warm: leaf hash only
  ASSERT_TRUE((*dev)->read_block(6, buf).ok());  // sibling: warm too
  EXPECT_EQ(reg.counter_value(
                "storage.verity_read.ancestor_cache.full_walk.count") -
                full0,
            1u);
  EXPECT_EQ(
      reg.counter_value("storage.verity_read.ancestor_cache.hit.count") - hit0,
      2u);
}

TEST_F(DmVerityTest, VerifyAllWarmsWholeAncestorCache) {
  auto dev = Verity::open(data_dev_, hash_dev_, meta_.root_hash);
  ASSERT_TRUE(dev.ok());
  ASSERT_TRUE((*dev)->verify_all().ok());
  auto& reg = obs::metrics();
  const auto full0 = reg.counter_value(
      "storage.verity_read.ancestor_cache.full_walk.count");
  Bytes buf(4096);
  for (std::uint64_t i = 0; i < (*dev)->block_count(); ++i) {
    ASSERT_TRUE((*dev)->read_block(i, buf).ok());
  }
  EXPECT_EQ(reg.counter_value(
                "storage.verity_read.ancestor_cache.full_walk.count"),
            full0)
      << "every post-verify_all read should stop at a verified ancestor";
}

TEST_F(DmVerityTest, FormatRejectsTooSmallHashDevice) {
  auto tiny_hash = std::make_shared<MemDisk>(4096, 1);
  EXPECT_FALSE(Verity::format(*data_dev_, *tiny_hash).ok());
}

TEST_F(DmVerityTest, BlockSizeMismatchRejected) {
  MemDisk small_blocks(512, 4);
  MemDisk hash(4096, 4);
  EXPECT_EQ(Verity::format(small_blocks, hash).error().code,
            "verity.block_size_mismatch");
}

// --------------------------------------------------------------- ImageFs

TEST(ImageFs, AddReadListRemove) {
  ImageFs fs;
  fs.add_file("/bin/server", pattern_bytes(100), 0755);
  fs.add_file("/etc/conf", to_bytes(std::string_view("key=value")));
  EXPECT_TRUE(fs.exists("/bin/server"));
  EXPECT_EQ(fs.file_count(), 2u);
  auto content = fs.read_file("/etc/conf");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(to_string(*content), "key=value");
  fs.remove_file("/etc/conf");
  EXPECT_FALSE(fs.exists("/etc/conf"));
  EXPECT_FALSE(fs.read_file("/etc/conf").ok());
}

TEST(ImageFs, SerializationIsCanonical) {
  ImageFs a;
  a.add_file("/z", pattern_bytes(10));
  a.add_file("/a", pattern_bytes(20, 1));
  ImageFs b;
  b.add_file("/a", pattern_bytes(20, 1));  // insertion order differs
  b.add_file("/z", pattern_bytes(10));
  EXPECT_EQ(a.serialize(), b.serialize())
      << "file insertion order must not affect the image bits";
}

TEST(ImageFs, SerializeParseRoundTrip) {
  ImageFs fs;
  fs.add_file("/bin/app", pattern_bytes(10000), 0755);
  fs.add_file("/etc/nginx/nginx.conf", to_bytes(std::string_view("worker;")));
  fs.add_file("/empty", {});
  const Bytes image = fs.serialize();
  EXPECT_EQ(image.size() % 4096, 0u);
  auto parsed = ImageFs::parse(image);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->file_count(), 3u);
  EXPECT_EQ(*parsed->read_file("/bin/app"), *fs.read_file("/bin/app"));
  EXPECT_EQ(parsed->read_file("/empty")->size(), 0u);
}

TEST(ImageFs, ParseRejectsGarbage) {
  EXPECT_FALSE(ImageFs::parse(pattern_bytes(100)).ok());
  EXPECT_FALSE(ImageFs::parse({}).ok());
}

TEST(MountedFs, ReadsFilesThroughDevice) {
  ImageFs fs;
  fs.add_file("/data/big", pattern_bytes(9000, 3));
  fs.add_file("/data/small", to_bytes(std::string_view("tiny")));
  const Bytes image = fs.serialize();

  auto disk = std::make_shared<MemDisk>(4096, image.size() / 4096);
  ASSERT_TRUE(disk->write(0, image).ok());

  auto mounted = MountedFs::mount(disk);
  ASSERT_TRUE(mounted.ok());
  EXPECT_TRUE(mounted->exists("/data/big"));
  EXPECT_EQ(mounted->list().size(), 2u);
  auto big = mounted->read_file("/data/big");
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(*big, pattern_bytes(9000, 3));
  EXPECT_FALSE(mounted->read_file("/nope").ok());
}

TEST(MountedFs, WorksThroughVerityAndDetectsTamper) {
  ImageFs fs;
  fs.add_file("/bin/service", pattern_bytes(20000, 7), 0755);
  const Bytes image = fs.serialize();

  auto data_dev = std::make_shared<MemDisk>(4096, image.size() / 4096);
  ASSERT_TRUE(data_dev->write(0, image).ok());
  auto hash_dev = std::make_shared<MemDisk>(4096, 64);
  auto meta = Verity::format(*data_dev, *hash_dev);
  ASSERT_TRUE(meta.ok());

  auto verity = Verity::open(data_dev, hash_dev, meta->root_hash);
  ASSERT_TRUE(verity.ok());
  auto mounted = MountedFs::mount(*verity);
  ASSERT_TRUE(mounted.ok());
  auto content = mounted->read_file("/bin/service");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, pattern_bytes(20000, 7));

  // Malicious host flips a bit in the file's data area: read now fails.
  const auto entry = mounted->directory().at("/bin/service");
  data_dev->raw_tamper(entry.offset + 5000, 0x10);
  EXPECT_FALSE(mounted->read_file("/bin/service").ok());
}

}  // namespace
}  // namespace revelio::storage

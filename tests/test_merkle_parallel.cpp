// Tier-2 equivalence suite: the pool-parallel Merkle build must be
// bit-identical to a sequential build for every tree shape. The reference
// implementation below is deliberately independent of common/parallel.hpp.
// Run with REVELIO_THREADS > 1 (ctest sets 4) so the parallel path is
// actually exercised even on single-core machines.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "crypto/merkle.hpp"

namespace revelio::crypto {
namespace {

/// Plain sequential build: one level at a time, one node at a time.
std::vector<std::vector<Digest32>> reference_levels(
    std::vector<Digest32> leaves) {
  std::vector<std::vector<Digest32>> levels;
  if (leaves.empty()) return levels;
  levels.push_back(std::move(leaves));
  while (levels.back().size() > 1) {
    const auto& below = levels.back();
    std::vector<Digest32> up;
    for (std::size_t i = 0; i < below.size(); i += 2) {
      const Digest32& left = below[i];
      const Digest32& right = (i + 1 < below.size()) ? below[i + 1] : below[i];
      up.push_back(MerkleTree::hash_inner(left, right));
    }
    levels.push_back(std::move(up));
  }
  return levels;
}

std::vector<Digest32> make_leaves(std::size_t n) {
  std::vector<Digest32> leaves;
  leaves.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Bytes seed(8);
    for (int b = 0; b < 8; ++b) {
      seed[b] = static_cast<std::uint8_t>(i >> (8 * b));
    }
    leaves.push_back(sha256(seed));
  }
  return leaves;
}

TEST(MerkleParallel, MatchesSequentialReferenceAcrossShapes) {
  // Empty, single leaf, powers of two, odd counts, and counts straddling
  // the parallel grain sizes (64 leaves / 512 inner nodes per chunk).
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3},
        std::size_t{5}, std::size_t{8}, std::size_t{9}, std::size_t{63},
        std::size_t{64}, std::size_t{65}, std::size_t{127}, std::size_t{128},
        std::size_t{129}, std::size_t{1023}, std::size_t{1024},
        std::size_t{1500}}) {
    const auto leaves = make_leaves(n);
    const auto tree = MerkleTree::from_leaves(leaves);
    const auto ref = reference_levels(leaves);
    ASSERT_EQ(tree.leaf_count(), n);
    if (n == 0) {
      EXPECT_EQ(tree.level_count(), 0u);
      EXPECT_TRUE(tree.root() == MerkleTree::hash_leaf({}));
      continue;
    }
    ASSERT_EQ(tree.level_count(), ref.size()) << "n=" << n;
    for (std::size_t l = 0; l < ref.size(); ++l) {
      ASSERT_EQ(tree.level(l).size(), ref[l].size()) << "n=" << n;
      for (std::size_t i = 0; i < ref[l].size(); ++i) {
        ASSERT_TRUE(tree.level(l)[i] == ref[l][i])
            << "n=" << n << " level=" << l << " node=" << i;
      }
    }
    ASSERT_TRUE(tree.root() == ref.back()[0]) << "n=" << n;
  }
}

TEST(MerkleParallel, FromBlocksMatchesManualLeafHashing) {
  // 37 blocks of 256 bytes plus a short 100-byte tail (zero-padded).
  Bytes data(37 * 256 + 100);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  const auto tree = MerkleTree::from_blocks(data, 256);

  std::vector<Digest32> leaves;
  for (std::size_t off = 0; off < data.size(); off += 256) {
    Bytes block(256, 0);
    const std::size_t len = std::min<std::size_t>(256, data.size() - off);
    std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(off), len,
                block.begin());
    leaves.push_back(MerkleTree::hash_leaf(block));
  }
  const auto expect = MerkleTree::from_leaves(std::move(leaves));
  EXPECT_TRUE(tree.root() == expect.root());
  EXPECT_EQ(tree.leaf_count(), 38u);
}

TEST(MerkleParallel, DeserializeRecomputeAcceptsAndRejectsUnderParallelism) {
  // Big enough that the parallel recompute sweep actually chunks.
  const auto tree = MerkleTree::from_leaves(make_leaves(1500));
  Bytes blob = tree.serialize();
  const auto ok = MerkleTree::deserialize(blob);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->root() == tree.root());

  // Flip one byte of one inner node: whichever chunk inspects it must
  // propagate the mismatch through the shared flag.
  blob[16 + 8 + 1500 * 32 + 8 + 5 * 32 + 3] ^= 0x20;  // level 1, node 5
  EXPECT_FALSE(MerkleTree::deserialize(blob).ok());
}

}  // namespace
}  // namespace revelio::crypto

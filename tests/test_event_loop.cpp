// Deterministic virtual-time event loop (common/event_loop.hpp) and the
// single-flight failure-propagation contract the staged engine relies on.
//
// Runs tier-1 and under `ctest -L eventloop` / `-L tsan`: the EventLoop
// itself is single-threaded by contract, but the SingleFlight suites here
// drive real thread herds at a failing leader, which is exactly the
// interleaving the race sanitizer needs to see.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/event_loop.hpp"
#include "common/result.hpp"
#include "common/single_flight.hpp"

namespace revelio {
namespace {

using common::EventLoop;

// ---------------------------------------------------------------------------
// EventLoop ordering

TEST(EventLoop, DispatchesInDueThenTrackThenSeqOrder) {
  EventLoop loop;
  loop.schedule_at(200, /*track=*/1, /*payload=*/10);
  loop.schedule_at(100, 5, 20);
  loop.schedule_at(100, 2, 30);
  loop.schedule_at(100, 2, 40);  // same (due, track): seq breaks the tie

  auto batch = loop.next_batch();
  ASSERT_EQ(batch.size(), 3u) << "everything due at t=100, nothing later";
  EXPECT_EQ(loop.now_us(), 100u);
  EXPECT_EQ(batch[0].payload, 30u);  // track 2 before track 5
  EXPECT_EQ(batch[1].payload, 40u);  // same track: scheduling order
  EXPECT_EQ(batch[2].payload, 20u);

  batch = loop.next_batch();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].payload, 10u);
  EXPECT_EQ(loop.now_us(), 200u);
  EXPECT_TRUE(loop.empty());
  EXPECT_TRUE(loop.next_batch().empty());
}

TEST(EventLoop, SchedulingInThePastClampsToNow) {
  EventLoop loop;
  loop.schedule_at(500, 0, 1);
  (void)loop.next_batch();
  ASSERT_EQ(loop.now_us(), 500u);

  loop.schedule_at(100, 0, 2);  // the past is not addressable
  auto batch = loop.next_batch();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].due_us, 500u);
  EXPECT_EQ(loop.now_us(), 500u) << "clock never moves backwards";
}

TEST(EventLoop, ScheduleAfterIsRelativeToTheCurrentBatchInstant) {
  EventLoop loop;
  loop.schedule_at(250, 0, 1);
  (void)loop.next_batch();
  loop.schedule_after(50, 0, 2);
  auto batch = loop.next_batch();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(loop.now_us(), 300u);
}

TEST(EventLoop, CancelSuppressesDispatchAndIsIdempotent) {
  EventLoop loop;
  const auto keep = loop.schedule_at(100, 0, 1);
  const auto drop = loop.schedule_at(100, 0, 2);
  EXPECT_EQ(loop.pending(), 2u);

  EXPECT_TRUE(loop.cancel(drop));
  EXPECT_FALSE(loop.cancel(drop)) << "second cancel is a no-op";
  EXPECT_FALSE(loop.cancel(9999)) << "unknown ids are rejected";
  EXPECT_EQ(loop.pending(), 1u);

  auto batch = loop.next_batch();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].id, keep);
  EXPECT_FALSE(loop.cancel(keep)) << "already fired";
  EXPECT_EQ(loop.stats().cancelled, 1u);
}

TEST(EventLoop, CancellingTheEntireEarliestInstantSkipsToTheNextOne) {
  EventLoop loop;
  const auto a = loop.schedule_at(100, 0, 1);
  const auto b = loop.schedule_at(100, 1, 2);
  loop.schedule_at(900, 0, 3);
  EXPECT_TRUE(loop.cancel(a));
  EXPECT_TRUE(loop.cancel(b));

  auto batch = loop.next_batch();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].payload, 3u);
  EXPECT_EQ(loop.now_us(), 900u)
      << "a fully-cancelled instant must not advance the clock to itself";
}

TEST(EventLoop, RunSerialDrainsHandlersThatReschedule) {
  EventLoop loop;
  loop.schedule_at(10, 0, 0);
  std::vector<std::uint64_t> instants;
  loop.run_serial([&](const EventLoop::Event& e, EventLoop::Micros now) {
    instants.push_back(now);
    if (e.payload < 4) {
      loop.schedule_after(10, 0, e.payload + 1);  // a 5-link wake chain
    }
  });
  ASSERT_EQ(instants.size(), 5u);
  EXPECT_EQ(instants.front(), 10u);
  EXPECT_EQ(instants.back(), 50u);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoop, StatsTrackPeaksAndHeapBytes) {
  EventLoop loop;
  for (std::uint64_t i = 0; i < 100; ++i) loop.schedule_at(i, 0, i);
  EXPECT_EQ(loop.stats().peak_pending, 100u);
  EXPECT_EQ(loop.peak_heap_bytes(),
            100 * (sizeof(EventLoop::Event) + sizeof(std::uint64_t)));

  std::size_t dispatched = 0;
  loop.run_serial([&](const EventLoop::Event&, EventLoop::Micros) {
    ++dispatched;
  });
  EXPECT_EQ(dispatched, 100u);
  EXPECT_EQ(loop.stats().dispatched, 100u);
  EXPECT_EQ(loop.stats().batches, 100u);
  EXPECT_EQ(loop.stats().max_batch, 1u);
  EXPECT_EQ(loop.stats().peak_pending, 100u) << "peak survives the drain";
}

TEST(EventLoop, IdenticalSchedulesProduceIdenticalTranscripts) {
  // The engine's determinism reduces to this: replaying the same schedule
  // (including mid-drain rescheduling) yields the same dispatch sequence.
  const auto transcript = [] {
    EventLoop loop;
    for (std::uint64_t i = 0; i < 64; ++i) {
      loop.schedule_at((i * 37) % 11, i % 4, i);
    }
    std::vector<std::uint64_t> out;
    loop.run_serial([&](const EventLoop::Event& e, EventLoop::Micros now) {
      out.push_back(now);
      out.push_back(e.payload);
      if (e.payload % 3 == 0) loop.schedule_after(5, e.track, 1000 + e.payload);
    });
    return out;
  };
  EXPECT_EQ(transcript(), transcript());
}

// ---------------------------------------------------------------------------
// Virtual-wait observation

TEST(VirtualWait, NoScopeBoundIsANoOp) {
  common::note_virtual_wait_us(123);  // must not crash or leak anywhere
}

TEST(VirtualWait, ScopeCollectsReportedWaits) {
  common::VirtualWaitScope scope;
  common::note_virtual_wait_us(1500);
  common::note_virtual_wait_ms(2.5);
  EXPECT_EQ(scope.waited_us(), 4000u);
  EXPECT_DOUBLE_EQ(scope.waited_ms(), 4.0);
}

TEST(VirtualWait, NestedScopesInnermostWins) {
  common::VirtualWaitScope outer;
  {
    common::VirtualWaitScope inner;
    common::note_virtual_wait_us(100);
    EXPECT_EQ(inner.waited_us(), 100u);
  }
  common::note_virtual_wait_us(7);
  EXPECT_EQ(outer.waited_us(), 7u)
      << "inner waits are charged to the inner scope only";
}

// ---------------------------------------------------------------------------
// SingleFlight failure propagation under real thread herds (the staged
// engine's wake-on-single-flight-completion path depends on a failing
// leader releasing every waiter exactly once).

TEST(SingleFlightConcurrent, LeaderErrorReachesEveryCoalescedWaiter) {
  common::SingleFlight<int, int> flights;
  constexpr int kThreads = 8;
  std::atomic<int> calls{0};
  std::atomic<int> entered{0};
  std::vector<std::string> codes(kThreads);
  std::vector<char> coalesced(kThreads, 0);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      entered.fetch_add(1);
      bool waited = false;
      auto result = flights.run(1, &waited, [&]() -> Result<int> {
        calls.fetch_add(1);
        while (entered.load() < kThreads) std::this_thread::yield();
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return Error::make("net.timeout", "kds saturated");
      });
      codes[t] = result.ok() ? "" : result.error().code;
      coalesced[t] = waited ? 1 : 0;
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(calls.load(), 1) << "one leader, no retry amplification";
  int waited_count = 0;
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(codes[t], "net.timeout") << "waiter " << t;
    waited_count += coalesced[t];
  }
  EXPECT_EQ(waited_count, kThreads - 1);

  // The failure is not sticky: the next caller becomes a fresh leader.
  auto retried = flights.run(1, nullptr, []() -> Result<int> { return 9; });
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(*retried, 9);
  EXPECT_EQ(flights.inflight(), 0u);
}

TEST(SingleFlightConcurrent, ThrowingLeaderWakesWaitersAndRethrows) {
  common::SingleFlight<int, int> flights;
  constexpr int kThreads = 8;
  std::atomic<int> entered{0};
  std::atomic<int> threw{0};
  std::vector<std::string> codes(kThreads);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      entered.fetch_add(1);
      try {
        auto result = flights.run(1, nullptr, [&]() -> Result<int> {
          while (entered.load() < kThreads) std::this_thread::yield();
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
          throw std::runtime_error("leader exploded");
        });
        codes[t] = result.ok() ? "" : result.error().code;
      } catch (const std::runtime_error&) {
        threw.fetch_add(1);  // only the leader's caller sees the exception
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(threw.load(), 1) << "the exception stays with the leader";
  int errored = 0;
  for (int t = 0; t < kThreads; ++t) {
    if (codes[t] == "singleflight.leader_failed") ++errored;
  }
  EXPECT_EQ(errored, kThreads - 1)
      << "every waiter is woken with the leader-failed error, none strand";

  // Nothing left in flight; a later caller leads a fresh, working flight.
  EXPECT_EQ(flights.inflight(), 0u);
  auto retried = flights.run(1, nullptr, []() -> Result<int> { return 3; });
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(*retried, 3);
}

}  // namespace
}  // namespace revelio

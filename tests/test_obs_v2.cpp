// PR 7 observability layer: log-bucket quantile summaries, the per-session
// flight recorder, the tamper-evident attestation audit chain, and
// pool-lane tagging in the Chrome trace export. Companion to test_obs.cpp
// (tracer/metrics/log basics) — everything here is new surface.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/hex.hpp"
#include "common/parallel.hpp"
#include "common/sim_clock.hpp"
#include "obs/audit_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "revelio/session_engine.hpp"

namespace revelio {
namespace {

// ------------------------------------------------- quantile summaries

/// Deterministic 64-bit mix (splitmix64) — same stream on every platform,
/// so the estimator-vs-exact comparison is reproducible bit for bit.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Exact nearest-rank quantile over a sorted sample — the reference the
/// log-bucket estimator is gated against.
double exact_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(rank == 0 ? 0 : rank - 1, sorted.size() - 1)];
}

TEST(Summary, EstimatorTracksExactNearestRankWithinBound) {
  // A heavy-tailed mix spanning ~6 decades: mostly sub-10ms with a long
  // tail into the tens of seconds, like real stage latencies.
  obs::Summary summary;
  std::vector<double> values;
  for (std::uint64_t i = 0; i < 20000; ++i) {
    const std::uint64_t r = mix64(i * 0x2545f4914f6cdd1dull + 17);
    double v = 0.05 + static_cast<double>(r % 10000) / 1000.0;  // 0.05..10ms
    if (r % 97 == 0) v *= 100.0;   // 1% tail: ~x100
    if (r % 997 == 0) v *= 1000.0; // 0.1% deep tail: ~x1000
    values.push_back(v);
    summary.observe(v);
  }
  std::sort(values.begin(), values.end());

  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact = exact_quantile(values, q);
    const double est = summary.quantile(q);
    EXPECT_LE(std::abs(est - exact) / exact, 0.04)
        << "q=" << q << " exact=" << exact << " est=" << est;
  }
  // The edges are exact, not bucket midpoints.
  EXPECT_DOUBLE_EQ(summary.quantile(0.0), values.front());
  EXPECT_DOUBLE_EQ(summary.quantile(1.0), values.back());
  const auto snap = summary.snapshot();
  EXPECT_EQ(snap.count, values.size());
  EXPECT_DOUBLE_EQ(snap.min, values.front());
  EXPECT_DOUBLE_EQ(snap.max, values.back());
}

TEST(Summary, NonPositiveValuesLandInTheFloorBucket) {
  obs::Summary summary;
  summary.observe(0.0);
  summary.observe(-3.5);
  summary.observe(2.0);
  EXPECT_EQ(summary.count(), 3u);
  const auto snap = summary.snapshot();
  EXPECT_DOUBLE_EQ(snap.min, -3.5);
  EXPECT_DOUBLE_EQ(snap.max, 2.0);
  // Two of three observations are <= 0, so the median is clamped to the
  // floor side — never a fabricated positive midpoint.
  EXPECT_LE(snap.p50, 0.0);
}

TEST(Summary, MergeFromMatchesSingleSummaryExactly) {
  // Four threads each observe a private summary; the merge must be
  // bucket-wise identical to observing everything in one summary — run
  // with real threads so tsan checks the locking too.
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 5000;
  obs::Summary reference;
  for (int t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      reference.observe(0.01 +
                        static_cast<double>(mix64(t * 1000003ull + i) % 100000) /
                            100.0);
    }
  }

  std::vector<obs::Summary> parts(kThreads);
  obs::Summary merged;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        parts[t].observe(
            0.01 +
            static_cast<double>(mix64(t * 1000003ull + i) % 100000) / 100.0);
      }
      merged.merge_from(parts[t]);  // merge_from is thread-safe
    });
  }
  for (auto& th : threads) th.join();

  const auto a = reference.snapshot();
  const auto b = merged.snapshot();
  EXPECT_EQ(a.count, b.count);
  // Bucket-wise the merge is exact; the running sums differ only by
  // float addition order.
  EXPECT_NEAR(a.sum, b.sum, 1e-6 * a.sum);
  EXPECT_DOUBLE_EQ(a.min, b.min);
  EXPECT_DOUBLE_EQ(a.max, b.max);
  EXPECT_DOUBLE_EQ(a.p50, b.p50);
  EXPECT_DOUBLE_EQ(a.p99, b.p99);
  EXPECT_DOUBLE_EQ(a.p999, b.p999);
}

TEST(Summary, RegistryExportsSummariesInJsonAndMergesThem) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.summary("stage.ms", {{"stage", "verify"}}).observe(4.0);
  b.summary("stage.ms", {{"stage", "verify"}}).observe(8.0);
  b.summary("stage.ms", {{"stage", "kds"}}).observe(1.0);

  a.merge_from(b);
  EXPECT_EQ(a.summary("stage.ms", {{"stage", "verify"}}).count(), 2u);
  EXPECT_EQ(a.summary("stage.ms", {{"stage", "kds"}}).count(), 1u);

  const std::string json = a.to_json();
  EXPECT_NE(json.find("\"summaries\""), std::string::npos);
  EXPECT_NE(json.find("stage.ms{stage="), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);

  // A registry with no summaries keeps the original 3-section layout.
  obs::MetricsRegistry empty;
  empty.counter("c").inc();
  EXPECT_EQ(empty.to_json().find("\"summaries\""), std::string::npos);
}

// The satellite regression: silently handing back a histogram with
// *different* bounds than the caller asked for corrupted every later
// observation. Conflicting re-registration must fail loudly instead.
TEST(Metrics, HistogramConflictingBoundsThrow) {
  obs::MetricsRegistry registry;
  registry.histogram("lat.ms", {1.0, 5.0, 25.0}).observe(3.0);
  // Same bounds (any order — they are sorted on registration): fine.
  EXPECT_NO_THROW(registry.histogram("lat.ms", {25.0, 1.0, 5.0}));
  // Conflicting bounds: loud failure, not silent reuse.
  EXPECT_THROW(registry.histogram("lat.ms", {1.0, 5.0, 26.0}),
               std::invalid_argument);
  // Same name, different labels = a different series; no conflict.
  EXPECT_NO_THROW(registry.histogram("lat.ms", {2.0}, {{"op", "kds"}}));
}

// --------------------------------------------------- flight recorder

TEST(FlightRecorder, RingWrapKeepsNewestAndCountsDrops) {
  obs::FlightRecorder rec(4);
  EXPECT_EQ(rec.bytes(), 4 * sizeof(obs::FlightRecorder::Event));
  for (std::uint32_t i = 0; i < 6; ++i) {
    rec.record_at(i * 10, obs::FlightEventType::kStageEnter,
                  static_cast<std::uint16_t>(i), i);
  }
  EXPECT_EQ(rec.recorded(), 6u);
  EXPECT_EQ(rec.dropped(), 2u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first, and the two oldest (arg 0, 1) were overwritten.
  EXPECT_EQ(events.front().arg, 2u);
  EXPECT_EQ(events.back().arg, 5u);
  EXPECT_EQ(events.back().t_us, 50u);

  const std::string dump = rec.to_json(42, "failed");
  EXPECT_NE(dump.find("\"session\":42"), std::string::npos);
  EXPECT_NE(dump.find("\"reason\":\"failed\""), std::string::npos);
  EXPECT_NE(dump.find("\"dropped\":2"), std::string::npos);
  EXPECT_NE(dump.find("\"stage_enter\""), std::string::npos);
}

TEST(FlightRecorder, ThreadBindingMakesChargeSitesFree) {
  // Unbound: flight_record is a no-op, not a crash.
  ASSERT_EQ(obs::flight_recorder(), nullptr);
  obs::flight_record(obs::FlightEventType::kRetry, 1, 100);

  obs::FlightRecorder rec(8);
  {
    obs::ScopedFlightRecorder scope(rec);
    EXPECT_EQ(obs::flight_recorder(), &rec);
    obs::flight_record(obs::FlightEventType::kCacheMiss, 1);
    obs::flight_record(obs::FlightEventType::kCacheHit, 1);
  }
  EXPECT_EQ(obs::flight_recorder(), nullptr);
  obs::flight_record(obs::FlightEventType::kVerdict, 1);  // after unbind
  EXPECT_EQ(rec.recorded(), 2u);
  EXPECT_EQ(static_cast<obs::FlightEventType>(rec.events()[0].type),
            obs::FlightEventType::kCacheMiss);
}

TEST(FlightRecorder, RecordStampsTheThreadClock) {
  SimClock clock;
  clock.advance_us(1234);
  obs::FlightRecorder rec(2);
  rec.record(obs::FlightEventType::kPark, 0, 7);
  EXPECT_EQ(rec.events().front().t_us, 1234u);
}

// --------------------------------------------------- audit hash chain

obs::AuditRecord sample_record(std::uint64_t i, bool accepted) {
  obs::AuditRecord rec;
  rec.session = i;
  rec.virt_us = 1000 * i;
  rec.accepted = accepted;
  rec.checks = accepted ? 0x3f : 0x07;
  rec.failure_step = accepted ? "" : "report_sig";
  rec.measurement.data.fill(static_cast<std::uint8_t>(i + 1));
  rec.vcek_chain.data.fill(static_cast<std::uint8_t>(i + 2));
  rec.tcb = 0x0200080073ull;
  rec.evidence_digest.data.fill(static_cast<std::uint8_t>(i + 3));
  return rec;
}

TEST(AuditLog, RecordRoundTripsThroughTheWire) {
  const obs::AuditRecord rec = sample_record(9, false);
  const Bytes wire = rec.serialize();
  ASSERT_EQ(wire.size(), obs::AuditRecord::kWireSize);
  const auto parsed = obs::AuditRecord::parse(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const obs::AuditRecord& back = *parsed;
  EXPECT_EQ(back.session, rec.session);
  EXPECT_EQ(back.virt_us, rec.virt_us);
  EXPECT_EQ(back.accepted, rec.accepted);
  EXPECT_EQ(back.checks, rec.checks);
  EXPECT_EQ(back.failure_step, rec.failure_step);
  EXPECT_EQ(back.measurement, rec.measurement);
  EXPECT_EQ(back.vcek_chain, rec.vcek_chain);
  EXPECT_EQ(back.tcb, rec.tcb);
  EXPECT_EQ(back.evidence_digest, rec.evidence_digest);
}

TEST(AuditLog, VerifyReplaysChainCheckpointsAndHead) {
  obs::AuditLog log(/*checkpoint_interval=*/4);
  for (std::uint64_t i = 0; i < 11; ++i) {
    log.append(sample_record(i, i % 3 != 0));
  }
  EXPECT_EQ(log.records(), 11u);
  EXPECT_EQ(log.checkpoints(), 2u);  // records 0-3 and 4-7; 8-10 still open

  const Bytes stream = log.serialize();
  const auto verified = obs::AuditLog::verify(stream);
  ASSERT_TRUE(verified.ok()) << verified.error().to_string();
  EXPECT_EQ(verified.value().records, 11u);
  EXPECT_EQ(verified.value().checkpoints, 2u);
  EXPECT_EQ(verified.value().accepted, 7u);
  EXPECT_EQ(verified.value().rejected, 4u);
  EXPECT_EQ(verified.value().head_hex, to_hex(log.head().view()));
}

TEST(AuditLog, AnySingleFlippedByteIsDetected) {
  obs::AuditLog log(/*checkpoint_interval=*/2);
  for (std::uint64_t i = 0; i < 5; ++i) log.append(sample_record(i, true));
  const Bytes stream = log.serialize();
  ASSERT_TRUE(obs::AuditLog::verify(stream).ok());

  // Flip one byte at a time across the whole stream — header, every
  // record, both checkpoints, the trailer. Every position must fail.
  for (std::size_t pos = 0; pos < stream.size(); ++pos) {
    Bytes tampered = stream;
    tampered[pos] ^= 0x01;
    const auto result = obs::AuditLog::verify(tampered);
    EXPECT_FALSE(result.ok()) << "flipped byte at offset " << pos;
    if (!result.ok() && pos >= 16) {
      EXPECT_EQ(result.error().code, "audit.tamper") << "offset " << pos;
    }
  }

  // Truncation (dropping the trailer or a whole frame) must also fail.
  EXPECT_FALSE(
      obs::AuditLog::verify(ByteView(stream).subspan(0, stream.size() - 33))
          .ok());
}

TEST(AuditLog, ConcurrentAppendsKeepTheChainConsistent) {
  obs::AuditLog log(/*checkpoint_interval=*/8);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 64;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        log.append(sample_record(t * kPerThread + i, true));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(log.records(), kThreads * kPerThread);
  const auto verified = obs::AuditLog::verify(log.serialize());
  ASSERT_TRUE(verified.ok()) << verified.error().to_string();
  EXPECT_EQ(verified.value().records, kThreads * kPerThread);
  EXPECT_EQ(verified.value().checkpoints, kThreads * kPerThread / 8);
}

TEST(AuditLog, ParseRejectsTruncatedAndOversizedWires) {
  const Bytes wire = sample_record(3, true).serialize();

  // Every strict prefix must be refused — no partial record ever parses.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const auto short_parse =
        obs::AuditRecord::parse(ByteView(wire).subspan(0, len));
    ASSERT_FALSE(short_parse.ok()) << "prefix of " << len << " parsed";
    EXPECT_EQ(short_parse.error().code, "audit.record_truncated");
  }

  // Trailing garbage must be refused too: a record is exactly kWireSize.
  Bytes padded = wire;
  padded.push_back(0x00);
  const auto long_parse = obs::AuditRecord::parse(padded);
  ASSERT_FALSE(long_parse.ok());
  EXPECT_EQ(long_parse.error().code, "audit.record_oversized");
}

TEST(AuditLog, VerifyPrefixDistinguishesTruncationFromTampering) {
  obs::AuditLog log(/*checkpoint_interval=*/4);
  for (std::uint64_t i = 0; i < 6; ++i) log.append(sample_record(i, true));
  const Bytes stream = log.serialize();

  // Intact stream: complete, every frame valid.
  const auto whole = obs::AuditLog::verify_prefix(stream);
  ASSERT_TRUE(whole.ok());
  EXPECT_TRUE(whole->complete);
  EXPECT_FALSE(whole->truncated);
  EXPECT_EQ(whole->summary.records, 6u);
  EXPECT_EQ(whole->last_valid_record, 6u);

  // Chop the stream anywhere after the header: always reported as a
  // clean truncation (what a crash mid-append produces), never tamper,
  // and the verified prefix tells the auditor how much history stands.
  for (std::size_t len = 16; len < stream.size(); ++len) {
    const auto cut = obs::AuditLog::verify_prefix(
        ByteView(stream).subspan(0, len));
    ASSERT_TRUE(cut.ok()) << "cut at " << len;
    EXPECT_FALSE(cut->complete) << "cut at " << len;
    EXPECT_TRUE(cut->truncated) << "cut at " << len;
    EXPECT_LE(cut->summary.records, 6u);
    EXPECT_EQ(cut->last_valid_record, cut->summary.records);
  }

  // A flipped byte inside a *complete* stream is tampering, not truncation.
  Bytes tampered = stream;
  tampered[40] ^= 0x01;
  const auto flip = obs::AuditLog::verify_prefix(tampered);
  ASSERT_TRUE(flip.ok());
  EXPECT_FALSE(flip->complete);
  EXPECT_FALSE(flip->truncated);
  EXPECT_EQ(flip->failure_code, "audit.tamper");
}

TEST(AuditLog, RestoreRebuildsChainAndContinuesAppending) {
  obs::AuditLog original(/*checkpoint_interval=*/4);
  for (std::uint64_t i = 0; i < 9; ++i) {
    original.append(sample_record(i, i % 2 == 0));
  }
  const Bytes stream = original.serialize();

  obs::AuditLog revived(/*checkpoint_interval=*/4);
  ASSERT_TRUE(revived.restore(stream).ok());
  EXPECT_EQ(revived.records(), original.records());
  EXPECT_EQ(revived.checkpoints(), original.checkpoints());
  EXPECT_EQ(revived.head(), original.head());

  // Appends continue the chain seamlessly: both logs fed the same next
  // record reach the same head.
  revived.append(sample_record(9, true));
  original.append(sample_record(9, true));
  EXPECT_EQ(revived.head(), original.head());
  ASSERT_TRUE(obs::AuditLog::verify(revived.serialize()).ok());

  // A truncated stream restores nothing (fail closed) ...
  obs::AuditLog blank(/*checkpoint_interval=*/4);
  EXPECT_FALSE(
      blank.restore(ByteView(stream).subspan(0, stream.size() - 1)).ok());
  EXPECT_EQ(blank.records(), 0u);
  // ... and so does an interval mismatch.
  obs::AuditLog wrong_interval(/*checkpoint_interval=*/8);
  EXPECT_FALSE(wrong_interval.restore(stream).ok());

  // Restore is only for empty logs: the revived one must refuse.
  EXPECT_FALSE(revived.restore(stream).ok());
}

TEST(AuditLog, SinkSeesEveryFrameAndFailuresAreCounted) {
  obs::AuditLog log(/*checkpoint_interval=*/2);
  std::vector<std::uint8_t> types;
  int fail_after = 5;
  log.set_sink([&](std::uint8_t frame_type, ByteView) {
    if (static_cast<int>(types.size()) >= fail_after) {
      return Status(Error::make("store.io_crashed", "disk gone"));
    }
    types.push_back(frame_type);
    return Status::success();
  });

  for (std::uint64_t i = 0; i < 6; ++i) log.append(sample_record(i, true));
  // 6 records + 3 checkpoints (after records 2, 4, 6) = 9 frames; the sink
  // accepted 5 and then failed. The in-memory chain is unaffected.
  EXPECT_EQ(types.size(), 5u);
  EXPECT_EQ(log.sink_failures(), 4u);
  EXPECT_EQ(log.records(), 6u);
  ASSERT_TRUE(obs::AuditLog::verify(log.serialize()).ok());
}

// ------------------------------------------------ pool-lane trace tags

TEST(Trace, PoolWorkSpansCarryLaneIdsIntoTheChromeExport) {
  common::ThreadPool pool(4);
  ASSERT_GE(pool.width(), 2u);

  // Two tasks that must be in flight simultaneously: a two-party barrier
  // guarantees two *distinct* lanes participate, so at least one task runs
  // on a pool worker (lane != 0) no matter how claiming races.
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  std::vector<obs::Tracer> tracers(2);
  std::vector<unsigned> lanes(2, 0);

  pool.for_tasks(2, [&](std::size_t i) {
    {
      std::unique_lock<std::mutex> lock(mu);
      ++arrived;
      cv.notify_all();
      cv.wait(lock, [&] { return arrived == 2; });
    }
    tracers[i].set_enabled(true);
    obs::ScopedThreadTracer bind(tracers[i]);
    lanes[i] = common::current_lane();
    obs::Span span("task");
    span.end();
  });

  EXPECT_TRUE(lanes[0] != 0 || lanes[1] != 0)
      << "two concurrent tasks cannot both be the caller lane";
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_EQ(tracers[i].finished_spans().size(), 1u);
    EXPECT_EQ(tracers[i].finished_spans().front().lane, lanes[i]);
    const std::string chrome = tracers[i].chrome_trace_json();
    if (lanes[i] != 0) {
      // Worker-lane spans get their own real-clock row, named after the
      // lane, so staged batches render as parallel lanes in about:tracing.
      EXPECT_NE(chrome.find("pool lane"), std::string::npos);
      EXPECT_NE(chrome.find("\"tid\":" + std::to_string(100 + lanes[i])),
                std::string::npos);
    } else {
      // Caller-lane spans keep the documented tid 2 real row.
      EXPECT_NE(chrome.find("\"tid\":2"), std::string::npos);
    }
  }
}

// ------------------------------------------- engine integration (staged)

double synth_stage_ms(std::size_t index, int stage) {
  std::uint64_t x = static_cast<std::uint64_t>(index) * 2654435761ull +
                    static_cast<std::uint64_t>(stage) * 40503ull + 11;
  x = mix64(x);
  return 1.0 + static_cast<double>(x % 97) / 10.0;
}

core::SessionState advance(core::StagedContext& ctx) {
  using core::SessionState;
  switch (ctx.state) {
    case SessionState::kHandshake: return SessionState::kEvidenceFetch;
    case SessionState::kEvidenceFetch: return SessionState::kKdsFetch;
    case SessionState::kKdsFetch: return SessionState::kVerify;
    case SessionState::kVerify: return SessionState::kPageFetch;
    case SessionState::kPageFetch: return SessionState::kDone;
    default: return SessionState::kFailed;
  }
}

TEST(StagedEngine, RecorderDumpsAnomaliesAndBreaksDownStages) {
  core::SessionEngineConfig config;
  config.workers = 4;
  config.isolate_obs = false;
  config.flight_recorder.enabled = true;
  config.flight_recorder.ring_events = 16;
  config.flight_recorder.tail_quantile = 0.99;
  obs::AuditLog audit(/*checkpoint_interval=*/16);
  config.audit_log = &audit;
  core::SessionEngine engine(config);

  constexpr std::size_t kSessions = 256;
  core::AdmissionConfig admission;
  admission.max_inflight_kds = 2;
  admission.on_overload = core::AdmissionConfig::Overload::kShed;

  const auto report = engine.run_staged(
      kSessions, [&](core::StagedContext& ctx) -> core::SessionState {
        ctx.stage_virt_ms =
            synth_stage_ms(ctx.index, static_cast<int>(ctx.state));
        // Fail before the kds gate so the failure cannot be shed away.
        if (ctx.state == core::SessionState::kEvidenceFetch &&
            ctx.index == 7) {
          ctx.failure = Error::make("test.evidence_rejected");
          return core::SessionState::kFailed;
        }
        return advance(ctx);
      },
      admission);

  EXPECT_EQ(report.sessions, kSessions);
  EXPECT_GT(report.shed, 0u) << "kds gate of 2 must shed under 256 sessions";

  // Every anomaly (the failed session, every shed session, the latency
  // tail) dumped a timeline; healthy sessions cost only ring bytes.
  EXPECT_FALSE(report.anomaly_dumps.empty());
  EXPECT_EQ(report.recorder_bytes,
            kSessions * 16 * sizeof(obs::FlightRecorder::Event));
  EXPECT_GE(report.engine_bytes, report.recorder_bytes);
  bool saw_failed = false;
  bool saw_shed = false;
  for (const auto& dump : report.anomaly_dumps) {
    if (dump.find("\"reason\":\"failed\"") != std::string::npos)
      saw_failed = true;
    if (dump.find("\"reason\":\"shed\"") != std::string::npos) saw_shed = true;
  }
  EXPECT_TRUE(saw_failed);
  EXPECT_TRUE(saw_shed);

  // Per-stage wait-vs-service attribution: rows in state-machine order,
  // every dispatched stage present, quantiles ordered and finite.
  ASSERT_FALSE(report.stage_breakdown.empty());
  EXPECT_EQ(report.stage_breakdown.front().stage,
            core::SessionState::kHandshake);
  for (const auto& row : report.stage_breakdown) {
    EXPECT_GT(row.count, 0u);
    EXPECT_LE(row.service_p50_ms, row.service_p99_ms);
    EXPECT_GE(row.service_total_ms, 0.0);
    EXPECT_GE(row.wait_total_ms, 0.0);
  }
  // Every session dispatched a handshake before any gate could shed it.
  EXPECT_EQ(report.stage_breakdown.front().count, kSessions);

  // Shed sessions never reach a web extension, but the audit chain still
  // accounts for them as rejected verdicts.
  EXPECT_EQ(audit.records(), report.shed);
  const auto verified = obs::AuditLog::verify(audit.serialize());
  ASSERT_TRUE(verified.ok()) << verified.error().to_string();
  EXPECT_EQ(verified.value().rejected, report.shed);

  // The process registry got the merged per-stage summaries.
  EXPECT_GT(obs::metrics()
                .summary("gw.stage.service.ms", {{"stage", "handshake"}})
                .count(),
            0u);
}

TEST(StagedEngine, RecorderOffCostsNothingAndStaysDeterministic) {
  core::SessionEngineConfig config;
  config.workers = 2;
  config.isolate_obs = false;
  core::SessionEngine engine(config);

  const auto report = engine.run_staged(
      64, [&](core::StagedContext& ctx) -> core::SessionState {
        ctx.stage_virt_ms =
            synth_stage_ms(ctx.index, static_cast<int>(ctx.state));
        return advance(ctx);
      });

  EXPECT_TRUE(report.anomaly_dumps.empty());
  EXPECT_EQ(report.recorder_bytes, 0u);
  EXPECT_EQ(report.succeeded, 64u);

  // Same inputs with the recorder ON: the virtual schedule (and therefore
  // the transcript) must be bit-identical — observation must not perturb
  // the simulation.
  core::SessionEngineConfig config2 = config;
  config2.flight_recorder.enabled = true;
  core::SessionEngine engine2(config2);
  const auto report2 = engine2.run_staged(
      64, [&](core::StagedContext& ctx) -> core::SessionState {
        ctx.stage_virt_ms =
            synth_stage_ms(ctx.index, static_cast<int>(ctx.state));
        return advance(ctx);
      });
  EXPECT_EQ(report2.transcript_digest, report.transcript_digest);
  EXPECT_GT(report2.recorder_bytes, 0u);
}

}  // namespace
}  // namespace revelio

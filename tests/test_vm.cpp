#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "imagebuild/builder.hpp"
#include "storage/partition.hpp"
#include "imagebuild/registry.hpp"
#include "vm/hypervisor.hpp"

namespace revelio::vm {
namespace {

using imagebuild::BaseImage;
using imagebuild::BuildInputs;
using imagebuild::BuildOptions;
using imagebuild::ImageBuilder;
using imagebuild::Package;
using imagebuild::PackageRegistry;
using imagebuild::VmImage;

// ------------------------------------------------------------------ blobs

TEST(KernelSpec, SerializeParseRoundTrip) {
  KernelSpec spec;
  spec.version = "6.1.0-custom";
  spec.enforce_verity = false;
  auto parsed = KernelSpec::parse(spec.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, spec);
  EXPECT_FALSE(KernelSpec::parse(to_bytes(std::string_view("junk"))).ok());
}

TEST(InitrdSpec, SerializeParseRoundTrip) {
  InitrdSpec spec;
  spec.block_inbound_network = true;
  spec.allowed_inbound_ports = {"443", "8080"};
  spec.services = {{"nginx", "/usr/sbin/nginx", 250.0},
                   {"app", "/opt/app", 1000.5}};
  auto parsed = InitrdSpec::parse(spec.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, spec);
}

TEST(InitrdSpec, BehaviourChangesChangeBytes) {
  InitrdSpec honest;
  InitrdSpec weakened = honest;
  weakened.setup_verity = false;
  EXPECT_NE(honest.serialize(), weakened.serialize())
      << "any behavioural difference must be measurable";
}

TEST(KernelCmdline, RoundTripWithVerity) {
  KernelCmdline cmdline;
  cmdline.verity_root_hash_hex = std::string(64, 'a');
  cmdline.extra["console"] = "ttyS0";
  auto parsed = KernelCmdline::parse(cmdline.to_string());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->root_partition, "rootfs");
  EXPECT_EQ(parsed->verity_root_hash_hex, cmdline.verity_root_hash_hex);
  EXPECT_EQ(parsed->extra.at("console"), "ttyS0");
}

TEST(KernelCmdline, ParseRejectsMalformed) {
  EXPECT_FALSE(KernelCmdline::parse("no-equals-token").ok());
  EXPECT_FALSE(KernelCmdline::parse("data=PART=data").ok())
      << "missing root= must be rejected";
}

// --------------------------------------------------------------- firmware

TEST(Firmware, SerializeParseRoundTrip) {
  Firmware fw;
  fw.table = FirmwareHashTable::over(to_bytes(std::string_view("k")),
                                     to_bytes(std::string_view("i")),
                                     to_bytes(std::string_view("c")));
  auto parsed = Firmware::parse(fw.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->vendor, fw.vendor);
  EXPECT_EQ(parsed->table, fw.table);
  EXPECT_TRUE(parsed->verify_hash_table);
}

TEST(Firmware, VerifyBlobsDetectsEachMismatch) {
  const Bytes k = to_bytes(std::string_view("kernel"));
  const Bytes i = to_bytes(std::string_view("initrd"));
  const Bytes c = to_bytes(std::string_view("cmdline"));
  Firmware fw;
  fw.table = FirmwareHashTable::over(k, i, c);
  EXPECT_TRUE(fw.verify_blobs(k, i, c).ok());
  EXPECT_FALSE(fw.verify_blobs(to_bytes(std::string_view("evil")), i, c).ok());
  EXPECT_FALSE(fw.verify_blobs(k, to_bytes(std::string_view("evil")), c).ok());
  EXPECT_FALSE(fw.verify_blobs(k, i, to_bytes(std::string_view("evil"))).ok());
}

TEST(Firmware, MaliciousFirmwareSkipsChecksButDiffersInBytes) {
  Firmware honest;
  Firmware malicious;
  malicious.verify_hash_table = false;
  malicious.vendor = honest.vendor;
  EXPECT_TRUE(malicious
                  .verify_blobs(to_bytes(std::string_view("anything")),
                                {}, {})
                  .ok());
  EXPECT_NE(honest.serialize(), malicious.serialize());
}

// -------------------------------------------------------------- imagebuild

struct BuildFixture : ::testing::Test {
  BuildFixture() {
    BaseImage base;
    base.name = "ubuntu";
    base.tag = "20.04";
    Package libc{"libc", "2.31", {{"/lib/libc.so", to_bytes(std::string_view("libc-bits"))}}};
    Package nginx{"nginx", "1.18",
                  {{"/usr/sbin/nginx", to_bytes(std::string_view("nginx-bits"))}}};
    base.packages = {libc, nginx};
    base_digest = registry.publish(base);
  }

  BuildInputs default_inputs() {
    BuildInputs inputs;
    inputs.service_files["/opt/service/app"] =
        to_bytes(std::string_view("app-binary-v1"));
    inputs.base_image_digest = base_digest;
    inputs.initrd.services = {{"app", "/opt/service/app", 500.0}};
    inputs.initrd.allowed_inbound_ports = {"443"};
    return inputs;
  }

  PackageRegistry registry;
  crypto::Digest32 base_digest;
};

TEST_F(BuildFixture, HermeticBuildIsBitReproducible) {
  ImageBuilder builder(registry);
  BuildOptions opts_a;
  opts_a.wall_clock_us = 111;
  opts_a.build_path = "/home/alice/src";
  BuildOptions opts_b;
  opts_b.wall_clock_us = 999999;
  opts_b.build_path = "/tmp/ci-7331";
  auto a = builder.build(default_inputs(), opts_a);
  auto b = builder.build(default_inputs(), opts_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->digest(), b->digest())
      << "hermetic builds must not see wall clock or paths";
  EXPECT_EQ(a->disk_bytes, b->disk_bytes);
}

TEST_F(BuildFixture, NonHermeticBuildDrifts) {
  ImageBuilder builder(registry);
  BuildOptions opts_a;
  opts_a.hermetic = false;
  opts_a.wall_clock_us = 111;
  BuildOptions opts_b;
  opts_b.hermetic = false;
  opts_b.wall_clock_us = 222;
  auto a = builder.build(default_inputs(), opts_a);
  auto b = builder.build(default_inputs(), opts_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a->digest() == b->digest())
      << "non-hermetic builds leak timestamps into the image";
}

TEST_F(BuildFixture, SourceChangeChangesDigest) {
  ImageBuilder builder(registry);
  auto a = builder.build(default_inputs());
  BuildInputs changed = default_inputs();
  changed.service_files["/opt/service/app"] =
      to_bytes(std::string_view("app-binary-v2"));
  auto b = builder.build(changed);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a->digest() == b->digest());
  EXPECT_FALSE(a->verity_root == b->verity_root);
}

TEST_F(BuildFixture, TagPullDriftsDigestPinDoesNot) {
  ImageBuilder builder(registry);
  BuildInputs by_tag = default_inputs();
  by_tag.base_image_digest.reset();  // pull ubuntu:20.04 by tag
  auto before = builder.build(by_tag);
  ASSERT_TRUE(before.ok());

  // Upstream republishes the tag with a newer package.
  BaseImage updated;
  updated.name = "ubuntu";
  updated.tag = "20.04";
  updated.packages = {{"libc", "2.32",
                       {{"/lib/libc.so", to_bytes(std::string_view("libc-2.32"))}}}};
  registry.publish(updated);

  auto after_tag = builder.build(by_tag);
  ASSERT_TRUE(after_tag.ok());
  EXPECT_FALSE(before->digest() == after_tag->digest())
      << "tag-based pulls drift when upstream republishes";

  auto after_pin = builder.build(default_inputs());
  ASSERT_TRUE(after_pin.ok());
  auto original_pin = builder.build(default_inputs());
  ASSERT_TRUE(original_pin.ok());
  EXPECT_EQ(after_pin->digest(), original_pin->digest())
      << "digest-pinned pulls stay reproducible";
}

TEST_F(BuildFixture, UnknownBaseImageFails) {
  ImageBuilder builder(registry);
  BuildInputs inputs = default_inputs();
  inputs.base_image_digest.reset();
  inputs.base_image_tag = "99.99";
  EXPECT_FALSE(builder.build(inputs).ok());
}

TEST_F(BuildFixture, FirewallPostureLandsInRootfs) {
  ImageBuilder builder(registry);
  auto image = builder.build(default_inputs());
  ASSERT_TRUE(image.ok());
  auto disk = image->instantiate_disk();
  auto rootfs_part = storage::PartitionTable::open(disk, "rootfs");
  ASSERT_TRUE(rootfs_part.ok());
  auto fs = storage::MountedFs::mount(*rootfs_part);
  ASSERT_TRUE(fs.ok());
  auto fw = fs->read_file("/etc/firewall.conf");
  ASSERT_TRUE(fw.ok());
  const std::string text = to_string(*fw);
  EXPECT_NE(text.find("policy=drop-inbound"), std::string::npos);
  EXPECT_NE(text.find("allow=443"), std::string::npos);
}

// ------------------------------------------------------- launch + boot

struct LaunchFixture : BuildFixture {
  LaunchFixture()
      : sp(to_bytes(std::string_view("vm-test-platform")),
           sevsnp::TcbVersion{2, 0, 8, 115}),
        hypervisor(sp, clock) {}

  VmImage build_image(BuildInputs inputs) {
    ImageBuilder builder(registry);
    auto image = builder.build(inputs);
    EXPECT_TRUE(image.ok()) << (image.ok() ? "" : image.error().to_string());
    return *image;
  }

  LaunchConfig config_for(const VmImage& image) {
    LaunchConfig config;
    config.kernel_blob = image.kernel_blob;
    config.initrd_blob = image.initrd_blob;
    config.cmdline = image.cmdline;
    config.disk = image.instantiate_disk();
    return config;
  }

  SimClock clock;
  sevsnp::AmdSp sp;
  Hypervisor hypervisor;
};

TEST_F(LaunchFixture, HonestLaunchBootsAndMatchesExpectedMeasurement) {
  const VmImage image = build_image(default_inputs());
  auto guest = hypervisor.launch(config_for(image));
  ASSERT_TRUE(guest.ok()) << guest.error().to_string();

  const auto expected = Hypervisor::expected_measurement(
      image.kernel_blob, image.initrd_blob, image.cmdline);
  EXPECT_EQ((*guest)->measurement(), expected);

  auto report = (*guest)->boot();
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_TRUE(report->first_boot);
  EXPECT_NE(report->find("dm-verity setup"), nullptr);
  EXPECT_NE(report->find("dm-verity verify"), nullptr);
  EXPECT_NE(report->find("dm-crypt setup"), nullptr);
  EXPECT_NE(report->find("service:app"), nullptr);
  EXPECT_TRUE((*guest)->rootfs().exists("/opt/service/app"));
}

TEST_F(LaunchFixture, Attack611WrongKernelRefusedByFirmware) {
  const VmImage image = build_image(default_inputs());
  LaunchConfig config = config_for(image);
  KernelSpec evil;
  evil.enforce_verity = false;
  config.swap_kernel_after_measure = evil.serialize();
  auto guest = hypervisor.launch(config);
  ASSERT_FALSE(guest.ok());
  EXPECT_EQ(guest.error().code, "vm.boot_refused");
}

TEST_F(LaunchFixture, Attack611WrongCmdlineRefusedByFirmware) {
  const VmImage image = build_image(default_inputs());
  LaunchConfig config = config_for(image);
  KernelCmdline forged;
  forged.verity_root_hash_hex = std::string(64, '0');
  config.swap_cmdline_after_measure = forged.to_string();
  EXPECT_FALSE(hypervisor.launch(config).ok());
}

TEST_F(LaunchFixture, Attack611ForgedTableChangesMeasurement) {
  // Host fills the table with hashes of malicious blobs and boots those:
  // the boot succeeds locally, but the measurement no longer equals the
  // reference value a verifier computes.
  const VmImage image = build_image(default_inputs());
  KernelSpec evil_kernel;
  evil_kernel.enforce_verity = false;
  InitrdSpec evil_initrd;
  evil_initrd.setup_verity = false;
  evil_initrd.setup_crypt = false;
  KernelCmdline evil_cmdline;

  LaunchConfig config = config_for(image);
  config.forged_hash_table = FirmwareHashTable::over(
      evil_kernel.serialize(), evil_initrd.serialize(),
      to_bytes(evil_cmdline.to_string()));
  config.swap_kernel_after_measure = evil_kernel.serialize();
  config.swap_initrd_after_measure = evil_initrd.serialize();
  config.swap_cmdline_after_measure = evil_cmdline.to_string();

  auto guest = hypervisor.launch(config);
  ASSERT_TRUE(guest.ok()) << "locally the forged launch boots";
  const auto expected = Hypervisor::expected_measurement(
      image.kernel_blob, image.initrd_blob, image.cmdline);
  EXPECT_FALSE((*guest)->measurement() == expected)
      << "but the measurement betrays the forgery";
}

TEST_F(LaunchFixture, Attack611MaliciousFirmwareChangesMeasurement) {
  const VmImage image = build_image(default_inputs());
  LaunchConfig config = config_for(image);
  config.use_malicious_firmware = true;
  KernelSpec evil;
  evil.enforce_verity = false;
  config.swap_kernel_after_measure = evil.serialize();
  auto guest = hypervisor.launch(config);
  ASSERT_TRUE(guest.ok()) << "the no-verify firmware boots anything";
  const auto expected = Hypervisor::expected_measurement(
      image.kernel_blob, image.initrd_blob, image.cmdline);
  EXPECT_FALSE((*guest)->measurement() == expected);
}

TEST_F(LaunchFixture, Attack612TamperedRootfsFailsBoot) {
  const VmImage image = build_image(default_inputs());
  LaunchConfig config = config_for(image);
  // Flip one bit somewhere inside the rootfs partition (after block 0).
  config.disk->raw_tamper(4096 * 3 + 1000, 0x01);
  auto guest = hypervisor.launch(config);
  ASSERT_TRUE(guest.ok()) << "measurement covers blobs, not the disk";
  auto report = (*guest)->boot();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, "vm.boot_failed");
}

TEST_F(LaunchFixture, Attack613RuntimeTamperBreaksReads) {
  const VmImage image = build_image(default_inputs());
  LaunchConfig config = config_for(image);
  auto disk = config.disk;
  auto guest = hypervisor.launch(config);
  ASSERT_TRUE(guest.ok());
  ASSERT_TRUE((*guest)->boot().ok());
  // Runtime modification of the app binary on the host disk.
  ASSERT_TRUE((*guest)->rootfs().read_file("/opt/service/app").ok());
  const auto entry = (*guest)->rootfs().directory().at("/opt/service/app");
  // The mounted fs sits on the rootfs partition; its offsets are partition-
  // relative. Partition starts at block 1 of the raw disk.
  disk->raw_tamper(4096 + entry.offset, 0x80);
  EXPECT_FALSE((*guest)->rootfs().read_file("/opt/service/app").ok())
      << "dm-verity must fail reads of the tampered binary";
}

TEST_F(LaunchFixture, SealedVolumeSurvivesRebootOfSameImage) {
  const VmImage image = build_image(default_inputs());
  auto disk = image.instantiate_disk();

  LaunchConfig config = config_for(image);
  config.disk = disk;
  auto guest = hypervisor.launch(config);
  ASSERT_TRUE(guest.ok());
  auto report = (*guest)->boot();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->first_boot);
  // Write a secret into the sealed volume.
  const Bytes secret(4096, 0x5e);
  ASSERT_TRUE((*guest)->data_volume()->write_block(0, secret).ok());

  // Power cycle: same disk, same image.
  sp.launch_reset();
  LaunchConfig config2 = config_for(image);
  config2.disk = disk;
  auto guest2 = hypervisor.launch(config2);
  ASSERT_TRUE(guest2.ok());
  auto report2 = (*guest2)->boot();
  ASSERT_TRUE(report2.ok());
  EXPECT_FALSE(report2->first_boot);
  Bytes back(4096);
  ASSERT_TRUE((*guest2)->data_volume()->read_block(0, back).ok());
  EXPECT_EQ(back, secret);
}

TEST_F(LaunchFixture, SealedVolumeUnreadableByDifferentImage) {
  const VmImage image = build_image(default_inputs());
  auto disk = image.instantiate_disk();
  {
    LaunchConfig config = config_for(image);
    config.disk = disk;
    auto guest = hypervisor.launch(config);
    ASSERT_TRUE(guest.ok());
    ASSERT_TRUE((*guest)->boot().ok());
    ASSERT_TRUE(
        (*guest)->data_volume()->write_block(0, Bytes(4096, 0x5e)).ok());
  }
  sp.launch_reset();

  // A different (e.g. backdoored) image on the same platform cannot unseal.
  BuildInputs changed = default_inputs();
  changed.service_files["/opt/service/app"] =
      to_bytes(std::string_view("backdoored"));
  const VmImage other = build_image(changed);
  // Attacker keeps the victim's data partition: graft the other image's
  // boot chain onto the original disk.
  LaunchConfig config;
  config.kernel_blob = other.kernel_blob;
  config.initrd_blob = other.initrd_blob;
  config.cmdline = other.cmdline;
  // Disk contents are the other image's rootfs but the original data
  // partition — approximate by reusing the other disk and copying the
  // sealed partition across.
  auto other_disk = other.instantiate_disk();
  {
    auto src = storage::PartitionTable::open(disk, "data");
    auto dst = storage::PartitionTable::open(other_disk, "data");
    ASSERT_TRUE(src.ok());
    ASSERT_TRUE(dst.ok());
    Bytes block(4096);
    for (std::uint64_t i = 0; i < (*src)->block_count(); ++i) {
      ASSERT_TRUE((*src)->read_block(i, block).ok());
      ASSERT_TRUE((*dst)->write_block(i, block).ok());
    }
  }
  config.disk = other_disk;
  auto guest = hypervisor.launch(config);
  ASSERT_TRUE(guest.ok());
  auto report = (*guest)->boot();
  ASSERT_FALSE(report.ok())
      << "measurement-derived key must not unseal foreign data";
  EXPECT_EQ(report.error().code, "vm.boot_failed");
}

TEST_F(LaunchFixture, FirewallPostureEnforced) {
  const VmImage image = build_image(default_inputs());
  auto guest = hypervisor.launch(config_for(image));
  ASSERT_TRUE(guest.ok());
  EXPECT_TRUE((*guest)->inbound_allowed(443));
  EXPECT_FALSE((*guest)->inbound_allowed(22)) << "ssh must be blocked";
  EXPECT_FALSE((*guest)->inbound_allowed(8080));
}

TEST_F(LaunchFixture, MissingServiceBinaryFailsBoot) {
  BuildInputs inputs = default_inputs();
  inputs.initrd.services.push_back({"ghost", "/bin/ghost", 10.0});
  const VmImage image = build_image(inputs);
  auto guest = hypervisor.launch(config_for(image));
  ASSERT_TRUE(guest.ok());
  auto report = (*guest)->boot();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, "vm.boot_failed");
}

TEST_F(LaunchFixture, BootChargesServiceStartupToSimClock) {
  BuildInputs inputs = default_inputs();
  inputs.initrd.services = {{"app", "/opt/service/app", 750.0}};
  const VmImage image = build_image(inputs);
  auto guest = hypervisor.launch(config_for(image));
  ASSERT_TRUE(guest.ok());
  const double before = clock.now_ms();
  auto report = (*guest)->boot();
  ASSERT_TRUE(report.ok());
  EXPECT_GE(clock.now_ms() - before, 750.0);
  EXPECT_GE(report->total_sim_ms(), 750.0);
}

TEST_F(LaunchFixture, BootMeasuresServicesIntoEventLog) {
  const VmImage image = build_image(default_inputs());
  auto guest = hypervisor.launch(config_for(image));
  ASSERT_TRUE(guest.ok());
  ASSERT_TRUE((*guest)->boot().ok());
  const auto& log = (*guest)->event_log();
  ASSERT_EQ(log.size(), 1u);  // one service in default_inputs
  EXPECT_EQ(log[0].description, "service:app");
  EXPECT_EQ(log[0].rtmr_index, 0u);

  // The verifier story: replay the published log and compare with the
  // RTMR in a fresh signed report.
  std::vector<sevsnp::Measurement> digests;
  for (const auto& event : log) digests.push_back(event.digest);
  auto report = sp.get_report({});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rtmrs[0], sevsnp::replay_rtmr(digests));
}

TEST_F(LaunchFixture, ApplicationEventsExtendRuntimeMeasurement) {
  const VmImage image = build_image(default_inputs());
  auto guest = hypervisor.launch(config_for(image));
  ASSERT_TRUE(guest.ok());
  ASSERT_TRUE((*guest)->boot().ok());
  ASSERT_TRUE((*guest)
                  ->extend_runtime_measurement(
                      1, "config:reload", to_bytes(std::string_view("v2")))
                  .ok());
  auto report = sp.get_report({});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->rtmrs[1] == sevsnp::Measurement{});
  // A VM that loaded different config shows a different RTMR1 — runtime
  // divergence is now attestable.
}

TEST_F(LaunchFixture, DoubleBootRejected) {
  const VmImage image = build_image(default_inputs());
  auto guest = hypervisor.launch(config_for(image));
  ASSERT_TRUE(guest.ok());
  ASSERT_TRUE((*guest)->boot().ok());
  EXPECT_FALSE((*guest)->boot().ok());
}

}  // namespace
}  // namespace revelio::vm

#include <gtest/gtest.h>

#include <map>

#include "pki/acme.hpp"
#include "pki/ca.hpp"
#include "pki/cert.hpp"
#include "pki/chain_cache.hpp"

namespace revelio::pki {
namespace {

using crypto::HmacDrbg;

constexpr std::uint64_t kYearUs = 365ull * 24 * 3600 * 1000 * 1000;

struct PkiFixture : ::testing::Test {
  PkiFixture()
      : drbg(to_bytes(std::string_view("pki-tests"))),
        root(CertificateAuthority::create_root(
            crypto::p384(), {"Test Root", "TestOrg", "US"}, 0, 10 * kYearUs,
            drbg)),
        inter(CertificateAuthority::create_intermediate(
            crypto::p384(), {"Test Intermediate", "TestOrg", "US"}, 0,
            5 * kYearUs, root, drbg)) {}

  Certificate issue_leaf(const std::string& cn,
                         std::vector<std::string> sans,
                         std::uint64_t not_before = 0,
                         std::uint64_t not_after = kYearUs) {
    const auto key = crypto::ec_generate(crypto::p256(), drbg);
    const auto csr = make_csr(crypto::p256(), key, {cn, "Leaf", "US"},
                              std::move(sans));
    auto cert = inter.issue(csr, not_before, not_after);
    EXPECT_TRUE(cert.ok());
    return *cert;
  }

  HmacDrbg drbg;
  CertificateAuthority root;
  CertificateAuthority inter;
};

TEST_F(PkiFixture, CertificateSerializationRoundTrip) {
  const auto cert = issue_leaf("example.com", {"example.com", "www.example.com"});
  const Bytes wire = cert.serialize();
  auto parsed = Certificate::parse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->subject.common_name, "example.com");
  EXPECT_EQ(parsed->san_dns.size(), 2u);
  EXPECT_EQ(parsed->serialize(), wire);
  EXPECT_EQ(parsed->fingerprint(), cert.fingerprint());
}

TEST_F(PkiFixture, ParseRejectsGarbage) {
  EXPECT_FALSE(Certificate::parse({}).ok());
  EXPECT_FALSE(Certificate::parse(to_bytes(std::string_view("nonsense"))).ok());
  Bytes wire = issue_leaf("a.com", {"a.com"}).serialize();
  wire.resize(wire.size() / 2);
  EXPECT_FALSE(Certificate::parse(wire).ok());
}

TEST_F(PkiFixture, ChainVerifies) {
  const auto leaf = issue_leaf("site.example", {"site.example"});
  ChainVerifyOptions options;
  options.now_us = kYearUs / 2;
  options.dns_name = "site.example";
  EXPECT_TRUE(verify_chain(leaf, {inter.certificate()}, {root.certificate()},
                           options)
                  .ok());
}

TEST_F(PkiFixture, ChainFailsWithoutIntermediate) {
  const auto leaf = issue_leaf("site.example", {"site.example"});
  ChainVerifyOptions options;
  options.now_us = kYearUs / 2;
  const auto st = verify_chain(leaf, {}, {root.certificate()}, options);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "pki.untrusted");
}

TEST_F(PkiFixture, ChainFailsWithWrongRoot) {
  HmacDrbg other_drbg(to_bytes(std::string_view("other-root")));
  auto other_root = CertificateAuthority::create_root(
      crypto::p384(), {"Evil Root", "Evil", "US"}, 0, 10 * kYearUs,
      other_drbg);
  const auto leaf = issue_leaf("site.example", {"site.example"});
  ChainVerifyOptions options;
  options.now_us = kYearUs / 2;
  EXPECT_FALSE(verify_chain(leaf, {inter.certificate()},
                            {other_root.certificate()}, options)
                   .ok());
}

TEST_F(PkiFixture, ExpiredLeafRejected) {
  const auto leaf = issue_leaf("site.example", {"site.example"}, 0, kYearUs);
  ChainVerifyOptions options;
  options.now_us = 2 * kYearUs;  // after expiry
  const auto st = verify_chain(leaf, {inter.certificate()},
                               {root.certificate()}, options);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "pki.cert_expired");
}

// The validity window is half-open: [not_before, not_after). A clock that
// lands EXACTLY on not_after must reject — "valid through the last
// microsecond" off-by-ones on either side of the boundary are a classic
// expiry-edge bug (a certificate that validates at its own expiry instant
// is honoured one tick too long, fleet-wide).
TEST_F(PkiFixture, ExpiryBoundaryIsHalfOpen) {
  const auto leaf = issue_leaf("site.example", {"site.example"}, 0, kYearUs);
  ChainVerifyOptions options;
  options.dns_name = "site.example";
  options.now_us = kYearUs - 1;  // last valid instant
  EXPECT_TRUE(verify_chain(leaf, {inter.certificate()}, {root.certificate()},
                           options)
                  .ok());
  options.now_us = kYearUs;  // exactly not_after: expired
  const auto st = verify_chain(leaf, {inter.certificate()},
                               {root.certificate()}, options);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "pki.cert_expired");
  // And the lower bound is closed: not_before itself is valid.
  const auto future =
      issue_leaf("site.example", {"site.example"}, kYearUs, 2 * kYearUs);
  options.now_us = kYearUs;
  EXPECT_TRUE(verify_chain(future, {inter.certificate()},
                           {root.certificate()}, options)
                  .ok());
}

TEST_F(PkiFixture, NotYetValidLeafRejected) {
  const auto leaf =
      issue_leaf("site.example", {"site.example"}, kYearUs, 2 * kYearUs);
  ChainVerifyOptions options;
  options.now_us = kYearUs / 2;
  EXPECT_FALSE(verify_chain(leaf, {inter.certificate()},
                            {root.certificate()}, options)
                   .ok());
}

TEST_F(PkiFixture, DnsNameMismatchRejected) {
  const auto leaf = issue_leaf("site.example", {"site.example"});
  ChainVerifyOptions options;
  options.now_us = kYearUs / 2;
  options.dns_name = "other.example";
  const auto st = verify_chain(leaf, {inter.certificate()},
                               {root.certificate()}, options);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "pki.name_mismatch");
}

TEST_F(PkiFixture, TamperedCertificateSignatureFails) {
  auto leaf = issue_leaf("site.example", {"site.example"});
  leaf.san_dns.push_back("injected.example");  // mutate after signing
  ChainVerifyOptions options;
  options.now_us = kYearUs / 2;
  EXPECT_FALSE(verify_chain(leaf, {inter.certificate()},
                            {root.certificate()}, options)
                   .ok());
}

TEST_F(PkiFixture, LeafCannotActAsCa) {
  // A leaf (is_ca=false) tries to issue; chain verification must reject the
  // non-CA link.
  const auto key = crypto::ec_generate(crypto::p256(), drbg);
  const auto csr =
      make_csr(crypto::p256(), key, {"leaf-ca", "X", "US"}, {"leaf-ca"});
  auto leaf_cert = inter.issue(csr, 0, kYearUs, /*is_ca=*/false);
  ASSERT_TRUE(leaf_cert.ok());

  // Hand-craft a child signed by the leaf key.
  Certificate child;
  child.serial = 99;
  child.subject = {"victim.example", "X", "US"};
  child.issuer = leaf_cert->subject;
  child.not_before_us = 0;
  child.not_after_us = kYearUs;
  child.curve_name = "P-256";
  const auto child_key = crypto::ec_generate(crypto::p256(), drbg);
  child.public_key = child_key.public_encoded(crypto::p256());
  child.san_dns = {"victim.example"};
  child.sig_curve_name = "P-256";
  const auto hash = crypto::sha384(child.tbs());
  child.signature =
      crypto::ecdsa_sign(crypto::p256(), key.d, hash.view())
          .encode(crypto::p256());

  ChainVerifyOptions options;
  options.now_us = kYearUs / 2;
  const auto st = verify_chain(child, {*leaf_cert, inter.certificate()},
                               {root.certificate()}, options);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "pki.intermediate_not_ca");
}

TEST_F(PkiFixture, WildcardSanMatching) {
  const auto leaf = issue_leaf("w.example", {"*.example.com"});
  EXPECT_TRUE(leaf.matches_dns("api.example.com"));
  EXPECT_FALSE(leaf.matches_dns("example.com"));
  EXPECT_FALSE(leaf.matches_dns("a.b.example.com"))
      << "wildcard must only cover one label";
}

TEST_F(PkiFixture, CommonNameFallbackOnlyWithoutSans) {
  const auto key = crypto::ec_generate(crypto::p256(), drbg);
  const auto csr = make_csr(crypto::p256(), key, {"cn.example", "X", "US"}, {});
  auto cert = inter.issue(csr, 0, kYearUs);
  ASSERT_TRUE(cert.ok());
  EXPECT_TRUE(cert->matches_dns("cn.example"));
  const auto with_san = issue_leaf("cn.example", {"other.example"});
  EXPECT_FALSE(with_san.matches_dns("cn.example"))
      << "CN fallback must be disabled when SANs are present";
}

TEST_F(PkiFixture, CsrVerifyDetectsTamper) {
  const auto key = crypto::ec_generate(crypto::p256(), drbg);
  auto csr = make_csr(crypto::p256(), key, {"host", "X", "US"}, {"host"});
  EXPECT_TRUE(csr.verify());
  csr.san_dns[0] = "evil";
  EXPECT_FALSE(csr.verify());
}

TEST_F(PkiFixture, CsrSerializationRoundTrip) {
  const auto key = crypto::ec_generate(crypto::p256(), drbg);
  const auto csr =
      make_csr(crypto::p256(), key, {"host", "X", "US"}, {"host", "alt"});
  auto parsed = CertificateSigningRequest::parse(csr.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->verify());
  EXPECT_EQ(parsed->digest(), csr.digest());
  EXPECT_EQ(parsed->san_dns, csr.san_dns);
}

TEST_F(PkiFixture, CaRejectsBadCsr) {
  const auto key = crypto::ec_generate(crypto::p256(), drbg);
  auto csr = make_csr(crypto::p256(), key, {"host", "X", "US"}, {"host"});
  csr.subject.common_name = "tampered";
  const auto r = inter.issue(csr, 0, kYearUs);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "ca.bad_csr");
}

TEST(CurveByName, KnownAndUnknown) {
  EXPECT_TRUE(curve_by_name("P-256").ok());
  EXPECT_TRUE(curve_by_name("P-384").ok());
  EXPECT_FALSE(curve_by_name("P-521").ok());
}

// ------------------------------------------------------------------ ACME

struct AcmeFixture : ::testing::Test {
  AcmeFixture()
      : drbg(to_bytes(std::string_view("acme-tests"))),
        issuer(clock, drbg) {}

  DnsTxtLookup dns_lookup() {
    return [this](const std::string& name) {
      const auto it = dns.find(name);
      return it == dns.end() ? std::vector<std::string>{} : it->second;
    };
  }

  CertificateSigningRequest domain_csr(const std::string& domain) {
    const auto key = crypto::ec_generate(crypto::p256(), drbg);
    return make_csr(crypto::p256(), key, {domain, "Svc", "US"}, {domain});
  }

  SimClock clock;
  HmacDrbg drbg;
  AcmeIssuer issuer;
  std::map<std::string, std::vector<std::string>> dns;
};

TEST_F(AcmeFixture, HappyPathIssuance) {
  const std::string token = issuer.request_challenge("acct", "svc.example.com");
  dns["_acme-challenge.svc.example.com"] = {token};
  const auto csr = domain_csr("svc.example.com");
  auto cert = issuer.finalize("acct", csr, dns_lookup());
  ASSERT_TRUE(cert.ok());
  EXPECT_TRUE(cert->matches_dns("svc.example.com"));

  ChainVerifyOptions options;
  options.now_us = clock.now_us();
  options.dns_name = "svc.example.com";
  EXPECT_TRUE(verify_chain(*cert, issuer.intermediates(),
                           issuer.trusted_roots(), options)
                  .ok());
}

TEST_F(AcmeFixture, IssuanceChargesLatency) {
  const std::string token = issuer.request_challenge("acct", "svc.example.com");
  dns["_acme-challenge.svc.example.com"] = {token};
  const double before_ms = clock.now_ms();
  ASSERT_TRUE(issuer.finalize("acct", domain_csr("svc.example.com"),
                              dns_lookup())
                  .ok());
  EXPECT_GT(clock.now_ms() - before_ms, 1000.0)
      << "cert generation should dominate Table 2";
}

TEST_F(AcmeFixture, MissingChallengeRejected) {
  const auto r =
      issuer.finalize("acct", domain_csr("svc.example.com"), dns_lookup());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "acme.no_challenge");
}

TEST_F(AcmeFixture, WrongTokenRejected) {
  issuer.request_challenge("acct", "svc.example.com");
  dns["_acme-challenge.svc.example.com"] = {"not-the-token"};
  const auto r =
      issuer.finalize("acct", domain_csr("svc.example.com"), dns_lookup());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "acme.challenge_failed");
}

TEST_F(AcmeFixture, ChallengeIsAccountScoped) {
  const std::string token =
      issuer.request_challenge("acct-a", "svc.example.com");
  dns["_acme-challenge.svc.example.com"] = {token};
  EXPECT_FALSE(issuer
                   .finalize("acct-b", domain_csr("svc.example.com"),
                             dns_lookup())
                   .ok());
}

TEST_F(AcmeFixture, RateLimitEnforced) {
  AcmeConfig config;
  config.certs_per_domain = 3;
  AcmeIssuer limited(clock, drbg, config);
  for (int i = 0; i < 3; ++i) {
    const std::string domain =
        "node" + std::to_string(i) + ".svc.example.com";
    const std::string token = limited.request_challenge("acct", domain);
    dns["_acme-challenge." + domain] = {token};
    ASSERT_TRUE(limited.finalize("acct", domain_csr(domain), dns_lookup()).ok());
  }
  EXPECT_EQ(limited.issued_in_window("example.com"), 3u);
  const std::string domain = "node3.svc.example.com";
  const std::string token = limited.request_challenge("acct", domain);
  dns["_acme-challenge." + domain] = {token};
  const auto r = limited.finalize("acct", domain_csr(domain), dns_lookup());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "acme.rate_limited");
}

TEST_F(AcmeFixture, RateLimitWindowSlides) {
  AcmeConfig config;
  config.certs_per_domain = 1;
  AcmeIssuer limited(clock, drbg, config);
  auto issue_once = [&](const std::string& domain) {
    const std::string token = limited.request_challenge("acct", domain);
    dns["_acme-challenge." + domain] = {token};
    return limited.finalize("acct", domain_csr(domain), dns_lookup());
  };
  ASSERT_TRUE(issue_once("a.example.com").ok());
  EXPECT_FALSE(issue_once("b.example.com").ok());
  clock.advance_us(config.rate_window_us + 1);
  EXPECT_TRUE(issue_once("b.example.com").ok())
      << "old issuances must age out of the sliding window";
}

TEST_F(AcmeFixture, EmptyCsrRejected) {
  const auto key = crypto::ec_generate(crypto::p256(), drbg);
  const auto csr = make_csr(crypto::p256(), key, {"x", "X", "US"}, {});
  EXPECT_EQ(issuer.finalize("acct", csr, dns_lookup()).error().code,
            "acme.no_identifiers");
}

// ------------------------------------------- chain verification cache

struct ChainCacheFixture : PkiFixture {
  ChainVerifyOptions at(std::uint64_t now_us,
                        std::optional<std::string> dns = {}) const {
    ChainVerifyOptions options;
    options.now_us = now_us;
    options.dns_name = std::move(dns);
    return options;
  }
};

TEST_F(ChainCacheFixture, SecondVerificationIsAHit) {
  ChainVerificationCache cache;
  const auto leaf = issue_leaf("site.example", {"site.example"});
  const std::vector<Certificate> inters{inter.certificate()};
  const std::vector<Certificate> roots{root.certificate()};
  EXPECT_TRUE(cache.verify(leaf, inters, roots, at(1)).ok());
  EXPECT_TRUE(cache.verify(leaf, inters, roots, at(2)).ok());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(ChainCacheFixture, FailuresAreNeverCached) {
  ChainVerificationCache cache;
  const auto leaf = issue_leaf("site.example", {"site.example"});
  const std::vector<Certificate> roots{root.certificate()};
  // Missing intermediate: fails both times, and nothing is cached.
  EXPECT_FALSE(cache.verify(leaf, {}, roots, at(1)).ok());
  EXPECT_FALSE(cache.verify(leaf, {}, roots, at(1)).ok());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST_F(ChainCacheFixture, HitRespectsValidityWindow) {
  ChainVerificationCache cache;
  const auto leaf = issue_leaf("site.example", {"site.example"}, 0, kYearUs);
  const std::vector<Certificate> inters{inter.certificate()};
  const std::vector<Certificate> roots{root.certificate()};
  EXPECT_TRUE(cache.verify(leaf, inters, roots, at(1)).ok());
  // Past the leaf's expiry the cached success must not be served; the
  // re-verification then fails on expiry like the uncached path.
  EXPECT_FALSE(cache.verify(leaf, inters, roots, at(kYearUs + 1)).ok());
  EXPECT_EQ(cache.stats().window_rejects, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST_F(ChainCacheFixture, RotatedRootChangesTheKey) {
  ChainVerificationCache cache;
  HmacDrbg other_drbg(to_bytes(std::string_view("other-root")));
  auto other_root = CertificateAuthority::create_root(
      crypto::p384(), {"Other Root", "OtherOrg", "US"}, 0, 10 * kYearUs,
      other_drbg);
  const auto leaf = issue_leaf("site.example", {"site.example"});
  const std::vector<Certificate> inters{inter.certificate()};
  EXPECT_TRUE(cache.verify(leaf, inters, {root.certificate()}, at(1)).ok());
  // Same chain against a rotated root set: different key, full
  // re-verification (which fails — the chain doesn't reach the new root).
  EXPECT_FALSE(
      cache.verify(leaf, inters, {other_root.certificate()}, at(1)).ok());
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST_F(ChainCacheFixture, DnsConstraintIsPartOfTheKey) {
  ChainVerificationCache cache;
  const auto leaf = issue_leaf("site.example", {"site.example"});
  const std::vector<Certificate> inters{inter.certificate()};
  const std::vector<Certificate> roots{root.certificate()};
  EXPECT_TRUE(
      cache.verify(leaf, inters, roots, at(1, "site.example")).ok());
  // Verifying without the name constraint must not reuse the entry.
  EXPECT_TRUE(cache.verify(leaf, inters, roots, at(1)).ok());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST_F(ChainCacheFixture, LruEvictionIsBounded) {
  ChainVerificationCache cache(2);
  const std::vector<Certificate> inters{inter.certificate()};
  const std::vector<Certificate> roots{root.certificate()};
  const auto a = issue_leaf("a.example", {"a.example"});
  const auto b = issue_leaf("b.example", {"b.example"});
  const auto c = issue_leaf("c.example", {"c.example"});
  EXPECT_TRUE(cache.verify(a, inters, roots, at(1)).ok());
  EXPECT_TRUE(cache.verify(b, inters, roots, at(1)).ok());
  // Touch `a` so `b` is the LRU entry when `c` forces an eviction.
  EXPECT_TRUE(cache.verify(a, inters, roots, at(1)).ok());
  EXPECT_TRUE(cache.verify(c, inters, roots, at(1)).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // `a` survived, `b` was evicted.
  EXPECT_TRUE(cache.verify(a, inters, roots, at(1)).ok());
  EXPECT_TRUE(cache.verify(b, inters, roots, at(1)).ok());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);    // a touched, a after the eviction round
  EXPECT_EQ(stats.misses, 4u);  // a, b, c, b re-verified
}

}  // namespace
}  // namespace revelio::pki

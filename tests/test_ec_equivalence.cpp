// Tier-2 property tests: the optimized scalar-multiplication paths (wNAF,
// fixed-base window table, Strauss–Shamir double-scalar) must agree with
// the naive double-and-add reference ladder on random scalars and on the
// boundary scalars 0, 1, n-1, n, n+1. Slow by design (the naive ladder is
// the baseline the fast paths are benchmarked against); labelled `tier2`
// in ctest so the tier-1 loop stays quick.
#include <vector>

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "crypto/ec.hpp"

namespace revelio::crypto {
namespace {

Bytes seed_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

U384 random_scalar(HmacDrbg& drbg) {
  return U384::from_bytes_be(drbg.generate(48));
}

bool same_point(const Curve::Point& a, const Curve::Point& b) {
  if (a.infinity || b.infinity) return a.infinity == b.infinity;
  return a.x == b.x && a.y == b.y;
}

std::vector<U384> edge_scalars(const Curve& curve) {
  const U384& n = curve.params().n;
  U384 n_minus_1, n_plus_1;
  sub_with_borrow(n_minus_1, n, U384::from_u64(1));
  add_with_carry(n_plus_1, n, U384::from_u64(1));
  return {U384::zero(), U384::from_u64(1), n_minus_1, n, n_plus_1};
}

class EcEquivalence : public ::testing::TestWithParam<const Curve*> {
 protected:
  const Curve& curve() const { return *GetParam(); }
};

TEST_P(EcEquivalence, WnafMatchesNaiveOnRandomScalars) {
  HmacDrbg drbg(seed_bytes("wnaf-vs-naive"));
  const Curve::Point g = curve().generator();
  // Use a non-generator base point so the wNAF path cannot be confused
  // with the fixed-base path.
  const Curve::Point q = curve().scalar_mult_naive(U384::from_u64(7), g);
  for (int i = 0; i < 24; ++i) {
    const U384 k = random_scalar(drbg);
    EXPECT_TRUE(same_point(curve().scalar_mult(k, q),
                           curve().scalar_mult_naive(k, q)))
        << "iteration " << i;
  }
}

TEST_P(EcEquivalence, FixedBaseMatchesNaiveOnRandomScalars) {
  HmacDrbg drbg(seed_bytes("fixed-base-vs-naive"));
  const Curve::Point g = curve().generator();
  for (int i = 0; i < 24; ++i) {
    const U384 k = random_scalar(drbg);
    EXPECT_TRUE(same_point(curve().scalar_mult_base(k),
                           curve().scalar_mult_naive(k, g)))
        << "iteration " << i;
  }
}

TEST_P(EcEquivalence, DoubleScalarMatchesNaiveOnRandomScalars) {
  HmacDrbg drbg(seed_bytes("strauss-shamir-vs-naive"));
  const Curve::Point g = curve().generator();
  const Curve::Point q = curve().scalar_mult_naive(U384::from_u64(11), g);
  for (int i = 0; i < 24; ++i) {
    const U384 u1 = random_scalar(drbg);
    const U384 u2 = random_scalar(drbg);
    const Curve::Point expected = curve().add(
        curve().scalar_mult_naive(u1, g), curve().scalar_mult_naive(u2, q));
    EXPECT_TRUE(
        same_point(curve().double_scalar_mult_base(u1, u2, q), expected))
        << "iteration " << i;
  }
}

TEST_P(EcEquivalence, AllPathsAgreeOnEdgeScalars) {
  const Curve::Point g = curve().generator();
  const Curve::Point q = curve().scalar_mult_naive(U384::from_u64(5), g);
  for (const U384& k : edge_scalars(curve())) {
    const Curve::Point via_naive_g = curve().scalar_mult_naive(k, g);
    EXPECT_TRUE(same_point(curve().scalar_mult_base(k), via_naive_g));
    EXPECT_TRUE(same_point(curve().scalar_mult(k, g), via_naive_g));
    const Curve::Point via_naive_q = curve().scalar_mult_naive(k, q);
    EXPECT_TRUE(same_point(curve().scalar_mult(k, q), via_naive_q));
  }
}

TEST_P(EcEquivalence, DoubleScalarHandlesEdgeCombinations) {
  const Curve::Point g = curve().generator();
  const Curve::Point q = curve().scalar_mult_naive(U384::from_u64(5), g);
  const auto edges = edge_scalars(curve());
  for (const U384& u1 : edges) {
    for (const U384& u2 : edges) {
      const Curve::Point expected = curve().add(
          curve().scalar_mult_naive(u1, g), curve().scalar_mult_naive(u2, q));
      EXPECT_TRUE(
          same_point(curve().double_scalar_mult_base(u1, u2, q), expected));
    }
  }
}

TEST_P(EcEquivalence, ScalarReductionIsSound) {
  // k and k + n must land on the same point (cofactor-1 curves).
  HmacDrbg drbg(seed_bytes("reduction-soundness"));
  const Curve::Point g = curve().generator();
  for (int i = 0; i < 8; ++i) {
    // Keep k below n so the sum stays representable in 384 bits for P-384.
    const U384 k = curve().scalar_field().reduce(random_scalar(drbg));
    U384 k_plus_n;
    if (add_with_carry(k_plus_n, k, curve().params().n) != 0) continue;
    EXPECT_TRUE(same_point(curve().scalar_mult_base(k),
                           curve().scalar_mult_base(k_plus_n)));
    EXPECT_TRUE(same_point(curve().scalar_mult(k, g),
                           curve().scalar_mult(k_plus_n, g)));
  }
}

INSTANTIATE_TEST_SUITE_P(Curves, EcEquivalence,
                         ::testing::Values(&p256(), &p384()),
                         [](const auto& info) {
                           return info.param->params().name == "P-256"
                                      ? "P256"
                                      : "P384";
                         });

}  // namespace
}  // namespace revelio::crypto

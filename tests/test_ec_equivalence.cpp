// Tier-2 property tests: the optimized scalar-multiplication paths (wNAF,
// fixed-base window table, Strauss–Shamir double-scalar) must agree with
// the naive double-and-add reference ladder on random scalars and on the
// boundary scalars 0, 1, n-1, n, n+1. Slow by design (the naive ladder is
// the baseline the fast paths are benchmarked against); labelled `tier2`
// in ctest so the tier-1 loop stays quick.
#include <vector>

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "crypto/ec.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/sha2.hpp"

namespace revelio::crypto {
namespace {

Bytes seed_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

U384 random_scalar(HmacDrbg& drbg) {
  return U384::from_bytes_be(drbg.generate(48));
}

bool same_point(const Curve::Point& a, const Curve::Point& b) {
  if (a.infinity || b.infinity) return a.infinity == b.infinity;
  return a.x == b.x && a.y == b.y;
}

std::vector<U384> edge_scalars(const Curve& curve) {
  const U384& n = curve.params().n;
  U384 n_minus_1, n_plus_1;
  sub_with_borrow(n_minus_1, n, U384::from_u64(1));
  add_with_carry(n_plus_1, n, U384::from_u64(1));
  return {U384::zero(), U384::from_u64(1), n_minus_1, n, n_plus_1};
}

class EcEquivalence : public ::testing::TestWithParam<const Curve*> {
 protected:
  const Curve& curve() const { return *GetParam(); }
};

TEST_P(EcEquivalence, WnafMatchesNaiveOnRandomScalars) {
  HmacDrbg drbg(seed_bytes("wnaf-vs-naive"));
  const Curve::Point g = curve().generator();
  // Use a non-generator base point so the wNAF path cannot be confused
  // with the fixed-base path.
  const Curve::Point q = curve().scalar_mult_naive(U384::from_u64(7), g);
  for (int i = 0; i < 24; ++i) {
    const U384 k = random_scalar(drbg);
    EXPECT_TRUE(same_point(curve().scalar_mult(k, q),
                           curve().scalar_mult_naive(k, q)))
        << "iteration " << i;
  }
}

TEST_P(EcEquivalence, FixedBaseMatchesNaiveOnRandomScalars) {
  HmacDrbg drbg(seed_bytes("fixed-base-vs-naive"));
  const Curve::Point g = curve().generator();
  for (int i = 0; i < 24; ++i) {
    const U384 k = random_scalar(drbg);
    EXPECT_TRUE(same_point(curve().scalar_mult_base(k),
                           curve().scalar_mult_naive(k, g)))
        << "iteration " << i;
  }
}

TEST_P(EcEquivalence, DoubleScalarMatchesNaiveOnRandomScalars) {
  HmacDrbg drbg(seed_bytes("strauss-shamir-vs-naive"));
  const Curve::Point g = curve().generator();
  const Curve::Point q = curve().scalar_mult_naive(U384::from_u64(11), g);
  for (int i = 0; i < 24; ++i) {
    const U384 u1 = random_scalar(drbg);
    const U384 u2 = random_scalar(drbg);
    const Curve::Point expected = curve().add(
        curve().scalar_mult_naive(u1, g), curve().scalar_mult_naive(u2, q));
    EXPECT_TRUE(
        same_point(curve().double_scalar_mult_base(u1, u2, q), expected))
        << "iteration " << i;
  }
}

TEST_P(EcEquivalence, AllPathsAgreeOnEdgeScalars) {
  const Curve::Point g = curve().generator();
  const Curve::Point q = curve().scalar_mult_naive(U384::from_u64(5), g);
  for (const U384& k : edge_scalars(curve())) {
    const Curve::Point via_naive_g = curve().scalar_mult_naive(k, g);
    EXPECT_TRUE(same_point(curve().scalar_mult_base(k), via_naive_g));
    EXPECT_TRUE(same_point(curve().scalar_mult(k, g), via_naive_g));
    const Curve::Point via_naive_q = curve().scalar_mult_naive(k, q);
    EXPECT_TRUE(same_point(curve().scalar_mult(k, q), via_naive_q));
  }
}

TEST_P(EcEquivalence, DoubleScalarHandlesEdgeCombinations) {
  const Curve::Point g = curve().generator();
  const Curve::Point q = curve().scalar_mult_naive(U384::from_u64(5), g);
  const auto edges = edge_scalars(curve());
  for (const U384& u1 : edges) {
    for (const U384& u2 : edges) {
      const Curve::Point expected = curve().add(
          curve().scalar_mult_naive(u1, g), curve().scalar_mult_naive(u2, q));
      EXPECT_TRUE(
          same_point(curve().double_scalar_mult_base(u1, u2, q), expected));
    }
  }
}

TEST_P(EcEquivalence, ScalarReductionIsSound) {
  // k and k + n must land on the same point (cofactor-1 curves).
  HmacDrbg drbg(seed_bytes("reduction-soundness"));
  const Curve::Point g = curve().generator();
  for (int i = 0; i < 8; ++i) {
    // Keep k below n so the sum stays representable in 384 bits for P-384.
    const U384 k = curve().scalar_field().reduce(random_scalar(drbg));
    U384 k_plus_n;
    if (add_with_carry(k_plus_n, k, curve().params().n) != 0) continue;
    EXPECT_TRUE(same_point(curve().scalar_mult_base(k),
                           curve().scalar_mult_base(k_plus_n)));
    EXPECT_TRUE(same_point(curve().scalar_mult(k, g),
                           curve().scalar_mult(k_plus_n, g)));
  }
}

TEST_P(EcEquivalence, MultiScalarMatchesNaiveSum) {
  // base*G + sum(full_i * Q_i) + sum(small_j * P_j) over the interleaved
  // ladder must equal the naive term-by-term sum. Mix repeated keys (the
  // gateway shape) with distinct ones, and ~128-bit small scalars.
  HmacDrbg drbg(seed_bytes("msm-vs-naive"));
  const Curve::Point g = curve().generator();
  for (int round = 0; round < 4; ++round) {
    const U384 base = random_scalar(drbg);
    std::vector<Curve::MsmTerm> full, small;
    const Curve::Point shared =
        curve().scalar_mult_naive(random_scalar(drbg), g);
    for (int i = 0; i < 5; ++i) {
      const Curve::Point q =
          i < 2 ? shared : curve().scalar_mult_naive(random_scalar(drbg), g);
      full.push_back({random_scalar(drbg), q});
    }
    for (int i = 0; i < 6; ++i) {
      U384 coeff = U384::from_bytes_be(drbg.generate(16));  // ~128 bits
      small.push_back(
          {coeff, curve().scalar_mult_naive(random_scalar(drbg), g)});
    }
    Curve::Point expected = curve().scalar_mult_naive(base, g);
    for (const auto& t : full) {
      expected =
          curve().add(expected, curve().scalar_mult_naive(t.scalar, t.point));
    }
    for (const auto& t : small) {
      expected =
          curve().add(expected, curve().scalar_mult_naive(t.scalar, t.point));
    }
    EXPECT_TRUE(same_point(curve().multi_scalar_mult_base(base, full, small),
                           expected))
        << "round " << round;
  }
}

TEST_P(EcEquivalence, MultiScalarHandlesEdgeScalars) {
  const Curve::Point g = curve().generator();
  const Curve::Point q = curve().scalar_mult_naive(U384::from_u64(9), g);
  for (const U384& k : edge_scalars(curve())) {
    const Curve::Point expected =
        curve().add(curve().scalar_mult_naive(k, g),
                    curve().scalar_mult_naive(k, q));
    EXPECT_TRUE(same_point(
        curve().multi_scalar_mult_base(k, {{k, q}}, {}), expected));
    // Small-term slot must cope with full-width scalars too (reduction).
    EXPECT_TRUE(same_point(
        curve().multi_scalar_mult_base(k, {}, {{k, q}}), expected));
  }
}

TEST_P(EcEquivalence, LiftXEvenRoundTripsEvenPointsOnly) {
  HmacDrbg drbg(seed_bytes("lift-x-even"));
  const Curve::Point g = curve().generator();
  for (int i = 0; i < 16; ++i) {
    const Curve::Point p =
        curve().scalar_mult_naive(random_scalar(drbg), g);
    ASSERT_FALSE(p.infinity);
    const auto lifted = curve().lift_x_even(p.x);
    ASSERT_TRUE(lifted.has_value());
    // Same x; y is either p.y or its field negation, and always even.
    U384 neg_y;
    sub_with_borrow(neg_y, curve().params().p, p.y);
    EXPECT_TRUE(lifted->x == p.x);
    EXPECT_TRUE(lifted->y == p.y || lifted->y == neg_y);
    EXPECT_FALSE(lifted->y.bit(0));
    EXPECT_TRUE(curve().on_curve(*lifted));
  }
}

TEST_P(EcEquivalence, BatchVerifyMatchesSinglesBitForBit) {
  // The batch verifier sits on the MSM path above; random valid batches
  // plus a corrupted item must reproduce N independent ecdsa_verify calls
  // exactly.
  HmacDrbg drbg(seed_bytes("batch-vs-single"));
  std::vector<EcKeyPair> keys;
  for (int i = 0; i < 3; ++i) keys.push_back(ec_generate(curve(), drbg));
  std::vector<EcdsaBatchItem> items(24);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& kp = keys[i % keys.size()];
    const Bytes msg = drbg.generate(80);
    const auto hash = sha384(msg);
    items[i].pub = kp.q;
    append(items[i].msg_hash, hash.view());
    items[i].sig = ecdsa_sign(curve(), kp.d, hash.view());
  }
  items[11].msg_hash[5] ^= 0x80;
  std::vector<bool> singles;
  for (const auto& item : items) {
    singles.push_back(
        ecdsa_verify(curve(), item.pub, item.msg_hash, item.sig));
  }
  EXPECT_EQ(ecdsa_verify_batch(curve(), items), singles);
}

INSTANTIATE_TEST_SUITE_P(Curves, EcEquivalence,
                         ::testing::Values(&p256(), &p384()),
                         [](const auto& info) {
                           return info.param->params().name == "P-256"
                                      ? "P256"
                                      : "P384";
                         });

}  // namespace
}  // namespace revelio::crypto

#include <gtest/gtest.h>

#include <memory>

#include "common/bytes.hpp"
#include "common/hex.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/sim_clock.hpp"

namespace revelio {
namespace {

TEST(Hex, RoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  const std::string hex = to_hex(data);
  EXPECT_EQ(hex, "0001abff7f");
  const auto back = from_hex(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(Hex, AcceptsUpperCase) {
  const auto v = from_hex("DEADBEEF");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_hex(*v), "deadbeef");
}

TEST(Hex, RejectsOddLength) { EXPECT_FALSE(from_hex("abc").has_value()); }

TEST(Hex, RejectsNonHexCharacters) {
  EXPECT_FALSE(from_hex("zz").has_value());
  EXPECT_FALSE(from_hex("0g").has_value());
}

TEST(Hex, EmptyString) {
  const auto v = from_hex("");
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->empty());
  EXPECT_EQ(to_hex(*v), "");
}

TEST(Bytes, ConcatJoinsInOrder) {
  const Bytes a = to_bytes(std::string_view("ab"));
  const Bytes b = to_bytes(std::string_view("cd"));
  EXPECT_EQ(to_string(concat(a, b)), "abcd");
  EXPECT_EQ(to_string(concat(a, b, a)), "abcdab");
}

TEST(Bytes, CtEqualBasics) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, d));
}

TEST(Bytes, BigEndianRoundTrip) {
  Bytes buf;
  append_u32be(buf, 0xdeadbeef);
  append_u64be(buf, 0x0123456789abcdefULL);
  EXPECT_EQ(read_u32be(buf, 0), 0xdeadbeefu);
  EXPECT_EQ(read_u64be(buf, 4), 0x0123456789abcdefULL);
}

TEST(Bytes, FixedBytesFromShortInput) {
  const Bytes short_input = {0xaa, 0xbb};
  const auto fb = FixedBytes<4>::from(short_input);
  EXPECT_EQ(fb[0], 0xaa);
  EXPECT_EQ(fb[1], 0xbb);
  EXPECT_EQ(fb[2], 0x00);
  EXPECT_EQ(fb[3], 0x00);
}

TEST(Bytes, XorInto) {
  Bytes a = {0xff, 0x0f, 0x00};
  const Bytes b = {0x0f, 0x0f, 0x0f};
  xor_into(a, b);
  EXPECT_EQ(a, (Bytes{0xf0, 0x00, 0x0f}));
}

TEST(Result, ValueAndError) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  Result<int> err = Error::make("x.failed", "context");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.error().code, "x.failed");
  EXPECT_EQ(err.error().to_string(), "x.failed: context");
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(Result, VoidStatus) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  Status bad = Error::make("broken");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, "broken");
}

TEST(SimClock, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now_us(), 0u);
  clock.advance_ms(1.5);
  EXPECT_EQ(clock.now_us(), 1500u);
  clock.advance_us(500);
  EXPECT_DOUBLE_EQ(clock.now_ms(), 2.0);
  clock.reset();
  EXPECT_EQ(clock.now_us(), 0u);
}

TEST(SimClock, FormatsTimestamp) {
  SimClock clock;
  clock.advance_ms(3723004.0);  // 1h 2m 3s 4ms
  EXPECT_EQ(clock.to_string(), "T+01:02:03.004");
}

// Regression: destroying a copied clock used to null out current() even
// though the original was still alive, silently zeroing virtual timestamps
// in the tracer. The registry must re-expose the surviving clock.
TEST(SimClock, CurrentSurvivesCopyDestruction) {
  SimClock original;
  original.advance_ms(5.0);
  ASSERT_EQ(SimClock::current(), &original);
  {
    SimClock copy(original);
    EXPECT_EQ(SimClock::current(), &copy);  // latest wins while alive
    EXPECT_EQ(copy.now_us(), original.now_us());
  }
  EXPECT_EQ(SimClock::current(), &original);  // not nullptr, not dangling
}

TEST(SimClock, CurrentHandlesInterleavedLifetimes) {
  auto a = std::make_unique<SimClock>();
  auto b = std::make_unique<SimClock>(*a);
  auto c = std::make_unique<SimClock>(*b);
  EXPECT_EQ(SimClock::current(), c.get());
  b.reset();  // destroying a middle clock keeps the latest survivor
  EXPECT_EQ(SimClock::current(), c.get());
  c.reset();
  EXPECT_EQ(SimClock::current(), a.get());
  a.reset();
  EXPECT_EQ(SimClock::current(), nullptr);
}

TEST(Result, ErrorTaxonomyTransientVsPermanent) {
  // Transport losses a retry can cure.
  EXPECT_TRUE(Error::make("net.timeout").is_transient());
  EXPECT_TRUE(Error::make("net.drop").is_transient());
  EXPECT_TRUE(Error::make("net.unreachable").is_transient());
  EXPECT_TRUE(Error::make("net.connection_refused").is_transient());
  EXPECT_TRUE(Error::make("acme.unavailable").is_transient());
  // Fail-closed verdicts that must never be retried.
  EXPECT_FALSE(Error::make("snp.signature_invalid").is_transient());
  EXPECT_FALSE(Error::make("snp.vcek_chain_invalid").is_transient());
  EXPECT_FALSE(Error::make("tls.untrusted_certificate").is_transient());
  EXPECT_FALSE(Error::make("extension.attestation_failed").is_transient());
  EXPECT_FALSE(Error::make("sw.verification_failed").is_transient());
  EXPECT_FALSE(Error::make("net.deadline_exceeded").is_transient());
  EXPECT_FALSE(Error::make("acme.rate_limited").is_transient());
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BytesHaveRequestedLength) {
  Rng rng(5);
  EXPECT_EQ(rng.next_bytes(0).size(), 0u);
  EXPECT_EQ(rng.next_bytes(7).size(), 7u);
  EXPECT_EQ(rng.next_bytes(64).size(), 64u);
}

// Distribution smoke check: all byte values should appear over a large draw.
TEST(Rng, BytesCoverValueSpace) {
  Rng rng(42);
  const Bytes sample = rng.next_bytes(1 << 16);
  std::array<int, 256> histogram{};
  for (auto b : sample) ++histogram[b];
  for (int count : histogram) EXPECT_GT(count, 0);
}

}  // namespace
}  // namespace revelio

// Fleet lifecycle engine (src/fleet) — TCB update horizons, certificate
// rotation, revocation push, rollback defence — soaked as chaos-layer
// scenarios on the virtual-time session engine.
//
// The headline test is the lifecycle chaos soak: 320 staged gateway
// sessions over a seeded lossy fabric, with a certificate rotation, a
// staged TCB update (fail-closed horizon, then evidence refresh), a
// sealed-volume rollback attempt and a revocation push all firing
// *mid-soak* through SessionEngineConfig::on_virtual_time. Gates:
//   - zero unverified-trust acceptances across every scenario;
//   - the same seed reproduces a bit-identical transcript;
//   - the audit chain (session verdicts interleaved with lifecycle
//     records) verifies offline.
// The suite runs tier-1 and under the tsan preset (`fleet` label).
#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "fleet/lifecycle.hpp"
#include "fleet/tcb_horizon.hpp"
#include "imagebuild/builder.hpp"
#include "obs/audit_log.hpp"
#include "obs/metrics.hpp"
#include "revelio/revelio_vm.hpp"
#include "revelio/revocation.hpp"
#include "revelio/session_engine.hpp"
#include "revelio/sp_node.hpp"
#include "revelio/web_extension.hpp"
#include "store/kv_store.hpp"
#include "store/storage_env.hpp"
#include "vm/hypervisor.hpp"

namespace revelio::core {
namespace {

using crypto::HmacDrbg;

constexpr const char* kDomain = "svc.revelio.app";
constexpr const char* kKdsPrimary = "kds.amd.com";
constexpr const char* kKdsMirror = "kds-mirror.amd.com";
constexpr const char* kBody = "<html>app</html>";

sevsnp::TcbVersion old_tcb() { return sevsnp::TcbVersion{2, 0, 8, 115}; }
sevsnp::TcbVersion new_tcb() { return sevsnp::TcbVersion{3, 0, 9, 120}; }

struct FleetWorldOptions {
  std::size_t vm_count = 3;
  /// Forwarded to KeyDistributionServer::set_vcek_not_after BEFORE any
  /// VCEK is issued (0 = the century default).
  std::uint64_t vcek_not_after_us = 0;
  pki::AcmeConfig acme;
};

/// ChaosWorld's fleet-lifecycle sibling: N attested VMs behind one domain,
/// KDS + mirror, an SP node kept around for rotation rounds, and the app
/// routes kept as a member so lifecycle ops can redeploy a node (reboot,
/// rollback probe) mid-test.
struct FleetWorld {
  explicit FleetWorld(const std::string& seed, FleetWorldOptions options = {})
      : network(clock),
        world_drbg(to_bytes("fleet-world-" + seed)),
        kds(world_drbg),
        kds_service(kds, network, {kKdsPrimary, 443}),
        kds_mirror_service(kds, network, {kKdsMirror, 443}),
        acme(clock, world_drbg, options.acme),
        browser(network, "laptop", acme.trusted_roots(),
                HmacDrbg(to_bytes("browser-" + seed))) {
    if (options.vcek_not_after_us != 0) {
      kds.set_vcek_not_after(options.vcek_not_after_us);
    }
    imagebuild::BaseImage base;
    base.name = "ubuntu";
    base.tag = "20.04";
    base.packages = {
        {"nginx", "1.18", {{"/usr/sbin/nginx",
                            to_bytes(std::string_view("nginx-binary"))}}}};
    const crypto::Digest32 base_digest = registry.publish(base);

    imagebuild::BuildInputs inputs;
    inputs.base_image_digest = base_digest;
    inputs.service_files["/opt/service/app"] =
        to_bytes(std::string_view("service-binary-v1"));
    inputs.initrd.services = {{"nginx", "/usr/sbin/nginx", 120.0},
                              {"app", "/opt/service/app", 300.0}};
    inputs.initrd.allowed_inbound_ports = {"443", "8443"};
    imagebuild::ImageBuilder builder(registry);
    auto built = builder.build(inputs);
    EXPECT_TRUE(built.ok());
    image = *built;
    expected_measurement = vm::Hypervisor::expected_measurement(
        image.kernel_blob, image.initrd_blob, image.cmdline);

    routes.route("GET", "/", [](const net::HttpRequest&) {
      return net::HttpResponse::ok(to_bytes(std::string_view(kBody)),
                                   "text/html");
    });
    for (std::size_t i = 0; i < options.vm_count; ++i) {
      const std::string host = "10.0.0." + std::to_string(i + 1);
      auto sp_chip = std::make_unique<sevsnp::AmdSp>(
          to_bytes("platform-" + host + "-" + seed), old_tcb());
      kds.register_platform(*sp_chip);
      auto node = RevelioVm::deploy(*sp_chip, network, vm_config(host),
                                    routes);
      EXPECT_TRUE(node.ok()) << (node.ok() ? "" : node.error().to_string());
      platforms.push_back(std::move(sp_chip));
      nodes.push_back(std::move(*node));
    }

    SpNodeConfig sp_config;
    sp_config.domain = kDomain;
    sp_config.kds_address = {kKdsPrimary, 443};
    sp_config.expected_measurements = {expected_measurement};
    sp_config.retry.max_attempts = 5;  // rotation rounds ride over chaos
    sp = std::make_unique<SpNode>(network, acme, sp_config);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      sp->approve_node(nodes[i]->bootstrap_address(),
                       platforms[i]->chip_id());
    }
    auto outcomes = sp->provision_fleet();
    EXPECT_TRUE(outcomes.ok())
        << (outcomes.ok() ? "" : outcomes.error().to_string());
    if (outcomes.ok()) {
      for (const auto& outcome : *outcomes) {
        EXPECT_TRUE(outcome.attested) << outcome.failure;
      }
    }
    network.dns_set_a(kDomain, "10.0.0.1");
    t0_ = clock.now_us();
  }

  RevelioVmConfig vm_config(const std::string& host) const {
    RevelioVmConfig config;
    config.domain = kDomain;
    config.host = host;
    config.image = image;
    config.kds_address = {kKdsPrimary, 443};
    config.kds_mirrors = {{kKdsMirror, 443}};
    return config;
  }

  SimClock::Micros t0() const { return t0_; }
  void arm(net::FaultPlan plan) { network.set_fault_plan(std::move(plan)); }

  SiteRegistration registration() {
    SiteRegistration site;
    site.expected_measurements = {expected_measurement};
    return site;
  }

  SimClock clock;
  net::Network network;
  HmacDrbg world_drbg;
  sevsnp::KeyDistributionServer kds;
  KdsService kds_service;
  KdsService kds_mirror_service;
  pki::AcmeIssuer acme;
  Browser browser;
  imagebuild::PackageRegistry registry;
  imagebuild::VmImage image;
  net::HttpRouter routes;
  sevsnp::Measurement expected_measurement;
  std::vector<std::unique_ptr<sevsnp::AmdSp>> platforms;
  std::vector<std::unique_ptr<RevelioVm>> nodes;
  std::unique_ptr<SpNode> sp;
  std::mutex mu;  // one engine lane drives the world at a time

 private:
  SimClock::Micros t0_ = 0;
};

// ------------------------------------------------------------ TcbHorizon

TEST(TcbHorizon, GatesByInstantAndNeverLowersTheFloor) {
  const sevsnp::AmdSp chip_a(to_bytes(std::string_view("horizon-a")),
                             old_tcb());
  const sevsnp::AmdSp chip_b(to_bytes(std::string_view("horizon-b")),
                             old_tcb());
  fleet::TcbHorizon horizon;

  // No announcement: everything passes.
  EXPECT_TRUE(horizon.acceptable(chip_a.chip_id(), old_tcb(), 0));

  auto applied = horizon.announce(chip_a.chip_id(), new_tcb(), 1000);
  ASSERT_TRUE(applied.ok());
  EXPECT_TRUE(*applied);
  // Before the horizon the rollout is in progress — old reports verify.
  EXPECT_TRUE(horizon.acceptable(chip_a.chip_id(), old_tcb(), 999));
  // At the horizon, old reports are rejected; updated ones pass.
  EXPECT_FALSE(horizon.acceptable(chip_a.chip_id(), old_tcb(), 1000));
  EXPECT_TRUE(horizon.acceptable(chip_a.chip_id(), new_tcb(), 1000));
  // Other chips are unaffected.
  EXPECT_TRUE(horizon.acceptable(chip_b.chip_id(), old_tcb(), 1000));

  // A later announcement may not lower the floor (fail-open otherwise) —
  // and the drop is reported to the caller, not recorded as applied.
  auto ignored = horizon.announce(chip_a.chip_id(), old_tcb(), 0);
  ASSERT_TRUE(ignored.ok());
  EXPECT_FALSE(*ignored) << "a lowered floor must report as ignored";
  EXPECT_FALSE(horizon.acceptable(chip_a.chip_id(), old_tcb(), 1000));
  // Re-announcing an equal-or-higher minimum may move the horizon.
  auto reannounced = horizon.announce(chip_a.chip_id(), new_tcb(), 5000);
  ASSERT_TRUE(reannounced.ok());
  EXPECT_TRUE(*reannounced);
  EXPECT_TRUE(horizon.acceptable(chip_a.chip_id(), old_tcb(), 4999));
  EXPECT_FALSE(horizon.acceptable(chip_a.chip_id(), old_tcb(), 5000));

  const auto stats = horizon.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.checks, 8u);
  EXPECT_EQ(stats.rejections, 3u);
}

TEST(TcbHorizon, DurableHorizonsSurviveReopenAndFailClosedOnCorruption) {
  store::MemStorageEnv env;
  const sevsnp::AmdSp chip(to_bytes(std::string_view("horizon-durable")),
                           old_tcb());
  {
    auto kv = store::KvStore::open(env);
    ASSERT_TRUE(kv.ok());
    auto horizon = fleet::TcbHorizon::open(**kv);
    ASSERT_TRUE(horizon.ok());
    ASSERT_TRUE(
        (*horizon)->announce(chip.chip_id(), new_tcb(), 42, "CVE-x").ok());
    EXPECT_FALSE((*horizon)->acceptable(chip.chip_id(), old_tcb(), 42));
  }
  {
    // A restarted gateway must still enforce the horizon.
    auto kv = store::KvStore::open(env);
    ASSERT_TRUE(kv.ok());
    auto horizon = fleet::TcbHorizon::open(**kv);
    ASSERT_TRUE(horizon.ok());
    EXPECT_EQ((*horizon)->size(), 1u);
    EXPECT_FALSE((*horizon)->acceptable(chip.chip_id(), old_tcb(), 42));
    EXPECT_TRUE((*horizon)->acceptable(chip.chip_id(), new_tcb(), 42));

    // A malformed persisted entry fails the open closed — a horizon set
    // that silently dropped entries would be a fail-open.
    ASSERT_TRUE((*kv)->put(to_bytes(std::string_view("fleet/tcb/short")),
                           to_bytes(std::string_view("junk"))).ok());
    auto corrupt = fleet::TcbHorizon::open(**kv);
    ASSERT_FALSE(corrupt.ok());
    EXPECT_EQ(corrupt.error().code, "fleet.tcb_corrupt");
  }
}

// ------------------------------------------------------- LifecycleEngine

TEST(LifecycleEngine, AppliesDueOpsOnceInOrderAndAuditsThem) {
  obs::AuditLog audit(4);
  fleet::LifecycleEngine engine(&audit);
  std::vector<std::string> ran;
  const auto op = [&](const char* name, std::uint64_t at,
                      Status result = Status::success()) {
    engine.schedule({at, name, [&ran, name, result](std::uint64_t) {
                       ran.push_back(name);
                       return result;
                     }});
  };
  op("late", 100);
  op("early", 50);
  op("late_too", 100, Error::make("fleet.test_failure"));

  EXPECT_EQ(engine.apply_due(10), 0u);
  EXPECT_EQ(engine.stats().pending, 3u);

  // Due ops run in (instant, insertion) order, exactly once.
  EXPECT_EQ(engine.apply_due(100), 3u);
  EXPECT_EQ(ran, (std::vector<std::string>{"early", "late", "late_too"}));
  EXPECT_EQ(engine.apply_due(100), 0u);
  EXPECT_EQ(engine.apply_due(1000), 0u);

  auto stats = engine.stats();
  EXPECT_EQ(stats.applied, 3u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.pending, 0u);

  // The hook() adapter drives the same apply path.
  op("hooked", 200);
  engine.hook()(250);
  EXPECT_EQ(ran.back(), "hooked");
  EXPECT_EQ(engine.stats().applied, 4u);

  // Every application landed in the tamper-evident chain and the chain
  // still verifies.
  EXPECT_EQ(audit.records(), 4u);
  auto summary = obs::AuditLog::verify(audit.serialize());
  ASSERT_TRUE(summary.ok()) << summary.error().to_string();
  EXPECT_EQ(summary->records, 4u);
}

// Regression: apply_due used to collect raw Scheduled* into ops_ and run
// them after dropping the lock; an op scheduling follow-ups (the retry
// pattern the header documents) could push_back-reallocate ops_ mid-batch
// and dangle every remaining pointer. Due ops are moved out by value now —
// a follow-up storm must leave the rest of the batch intact (ASAN pins
// the use-after-free on the old code).
TEST(LifecycleEngine, OpsMaySafelyScheduleFollowUpsMidBatch) {
  fleet::LifecycleEngine engine;
  std::vector<std::string> ran;
  // Two due ops; the first schedules enough follow-ups to force ops_ to
  // reallocate before the second op (and its own audit/metric tail) runs.
  engine.schedule({10, "storm", [&](std::uint64_t now_us) {
                     ran.push_back("storm");
                     for (int i = 0; i < 256; ++i) {
                       engine.schedule({now_us, "follow_up",
                                        [&ran](std::uint64_t) {
                                          ran.push_back("follow_up");
                                          return Status::success();
                                        }});
                     }
                     return Status::success();
                   }});
  engine.schedule({20, "tail", [&](std::uint64_t) {
                     ran.push_back("tail");
                     return Status::success();
                   }});

  // The storm's follow-ups are already due but belong to the NEXT batch —
  // the in-flight batch was snapshotted before any op ran.
  EXPECT_EQ(engine.apply_due(100), 2u);
  EXPECT_EQ(ran, (std::vector<std::string>{"storm", "tail"}));
  EXPECT_EQ(engine.stats().pending, 256u);
  EXPECT_EQ(engine.apply_due(100), 256u);
  auto stats = engine.stats();
  EXPECT_EQ(stats.applied, 258u);
  EXPECT_EQ(stats.pending, 0u);
}

// --------------------------------------------- VcekCache durable binding

// Regression (fleet TCB updates): a durable VCEK record must be bound to
// the (chip, TCB) it was fetched for. A record copied under another key —
// the pre-update chain surfacing under the post-update key — must parse
// as a miss and be repaired by a real fetch, never served as a hit.
TEST(VcekCacheDurable, RecordsAreBoundToTheirChipAndTcb) {
  HmacDrbg drbg(to_bytes(std::string_view("vcek-binding")));
  sevsnp::KeyDistributionServer kds(drbg);
  const sevsnp::AmdSp chip(to_bytes(std::string_view("vcek-chip")),
                           old_tcb());
  kds.register_platform(chip);
  const auto fetch_for = [&](sevsnp::TcbVersion tcb) {
    return [&kds, &chip, tcb]() -> Result<KdsService::VcekResponse> {
      auto vcek = kds.fetch_vcek(chip.chip_id(), tcb);
      if (!vcek.ok()) return vcek.error();
      KdsService::VcekResponse response;
      response.vcek = *vcek;
      response.ask = kds.ask_certificate();
      response.ark = kds.ark_certificate();
      return response;
    };
  };
  const auto store_key = [&](sevsnp::TcbVersion tcb) {
    Bytes key;
    append(key, std::string_view("vcek/"));
    append(key, chip.chip_id().view());
    append_u64be(key, tcb.encode());
    return key;
  };

  store::MemStorageEnv env;
  auto kv = store::KvStore::open(env);
  ASSERT_TRUE(kv.ok());

  {
    VcekCache cache(2, 8);
    cache.attach_store(kv->get());
    auto got = cache.get_or_fetch(chip.chip_id(), old_tcb(),
                                  fetch_for(old_tcb()));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(cache.stats().fetches, 1u);
  }
  // Warm restart, same key: served from the durable tier, zero fetches.
  {
    VcekCache cache(2, 8);
    cache.attach_store(kv->get());
    auto got = cache.get_or_fetch(
        chip.chip_id(), old_tcb(), []() -> Result<KdsService::VcekResponse> {
          ADD_FAILURE() << "a persisted chain must not be re-fetched";
          return Error::make("test.unexpected_fetch");
        });
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(cache.stats().store_hits, 1u);
    EXPECT_EQ(cache.stats().fetches, 0u);
  }

  // Copy the old-TCB record under the new-TCB key — exactly what a fleet
  // TCB update must never be confused by.
  const auto old_record = (*kv)->get(store_key(old_tcb()));
  ASSERT_TRUE(old_record.has_value());
  ASSERT_TRUE((*kv)->put(store_key(new_tcb()), *old_record).ok());
  {
    VcekCache cache(2, 8);
    cache.attach_store(kv->get());
    auto got = cache.get_or_fetch(chip.chip_id(), new_tcb(),
                                  fetch_for(new_tcb()));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(cache.stats().store_hits, 0u)
        << "a record bound to another TCB must not serve this key";
    EXPECT_EQ(cache.stats().fetches, 1u);
  }

  // Same for a record surfacing under another chip's key.
  const sevsnp::AmdSp other(to_bytes(std::string_view("vcek-chip-2")),
                            old_tcb());
  kds.register_platform(other);
  Bytes other_key;
  append(other_key, std::string_view("vcek/"));
  append(other_key, other.chip_id().view());
  append_u64be(other_key, old_tcb().encode());
  ASSERT_TRUE((*kv)->put(other_key, *old_record).ok());
  {
    VcekCache cache(2, 8);
    cache.attach_store(kv->get());
    bool fetched = false;
    auto got = cache.get_or_fetch(
        other.chip_id(), old_tcb(),
        [&]() -> Result<KdsService::VcekResponse> {
          fetched = true;
          auto vcek = kds.fetch_vcek(other.chip_id(), old_tcb());
          if (!vcek.ok()) return vcek.error();
          return KdsService::VcekResponse{*vcek, kds.ask_certificate(),
                                          kds.ark_certificate()};
        });
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(fetched) << "a record bound to another chip must be a miss";
    EXPECT_EQ(cache.stats().store_hits, 0u);
  }
}

// ------------------------------------------------- certificate rotation

TEST(CertRotation, RenewalWindowRotationAndExpiryDrivenRehandshake) {
  FleetWorldOptions options;
  options.vm_count = 1;
  options.acme.cert_lifetime_us = 2ull * 3600 * 1000 * 1000;  // 2 h
  FleetWorld world("rotate-1", options);

  const auto session = [&]() {
    world.browser.drop_session(kDomain);
    WebExtensionConfig config;
    config.kds_address = {kKdsPrimary, 443};
    config.kds_mirrors = {{kKdsMirror, 443}};
    WebExtension extension(world.browser, config);
    extension.register_site(kDomain, world.registration());
    return extension.get(kDomain, 443, "/");
  };

  ASSERT_TRUE(world.sp->issued_certificate().has_value());
  const pki::Certificate first = *world.sp->issued_certificate();
  constexpr std::uint64_t kOverlap = 30ull * 60 * 1000 * 1000;  // 30 min

  // Fresh certificate: far from its overlap window.
  EXPECT_FALSE(world.sp->renewal_due(world.clock.now_us(), kOverlap));
  // Regression: a maximal overlap window ("rotate always") used to wrap
  // now + overlap around std::uint64_t and spuriously suppress rotation;
  // century-scale overlaps (the codebase's "never expires" magnitude) are
  // the realistic variant of the same hazard.
  EXPECT_TRUE(world.sp->renewal_due(
      world.clock.now_us(), std::numeric_limits<std::uint64_t>::max()));
  EXPECT_TRUE(world.sp->renewal_due(
      world.clock.now_us(), world.acme.trusted_roots()[0].not_after_us));

  // Step inside the overlap window: renewal is due, the old certificate
  // still verifies, and a rotation round (the same provisioning workflow,
  // under the same ACME rate limits) issues + distributes a successor.
  world.clock.advance_us(first.not_after_us - world.clock.now_us() -
                         kOverlap / 2);
  EXPECT_TRUE(world.sp->renewal_due(world.clock.now_us(), kOverlap));
  ASSERT_TRUE(session().ok()) << "old certificate is still valid";
  auto rotated = world.sp->provision_fleet();
  ASSERT_TRUE(rotated.ok()) << rotated.error().to_string();
  const pki::Certificate second = *world.sp->issued_certificate();
  EXPECT_GT(second.not_after_us, first.not_after_us);
  // Both issues count against the registered domain's rate-limit window.
  EXPECT_EQ(world.acme.issued_in_window("revelio.app"), 2u);

  // Cross the old certificate's expiry: pki's half-open validity window
  // fails it closed, and a fresh handshake lands on the rotated one —
  // sessions never observe a gap.
  world.clock.advance_us(first.not_after_us - world.clock.now_us());
  auto after_expiry = session();
  ASSERT_TRUE(after_expiry.ok()) << after_expiry.error().to_string();
  EXPECT_TRUE(after_expiry->checks.all_ok());

  // And when the *rotated* certificate expires with no further renewal,
  // sessions fail closed at the handshake rather than serving stale trust.
  world.clock.advance_us(second.not_after_us - world.clock.now_us());
  auto expired = session();
  ASSERT_FALSE(expired.ok());
}

// ----------------------------------------------------- rollback defence

TEST(RollbackDefense, RestoredSealedVolumeIsRejectedOnReboot) {
  FleetWorldOptions options;
  options.vm_count = 1;
  FleetWorld world("rollback-1", options);
  auto disk = world.nodes[0]->disk();
  const std::size_t disk_bytes =
      disk->block_size() * static_cast<std::size_t>(disk->block_count());

  // Snapshot the sealed volume as the host could (raw device bytes), then
  // advance state past it: a rotation round re-persists the identity and
  // bumps the AMD-SP monotonic counter.
  const Bytes snapshot = disk->raw_dump(0, disk_bytes);
  auto rotated = world.sp->provision_fleet();
  ASSERT_TRUE(rotated.ok()) << rotated.error().to_string();

  // A reboot from the *current* disk resumes service (counter matches).
  world.platforms[0]->launch_reset();
  world.nodes[0].reset();
  RevelioVmConfig config = world.vm_config("10.0.0.1");
  config.existing_disk = disk;
  auto rebooted =
      RevelioVm::deploy(*world.platforms[0], world.network, config,
                        world.routes);
  ASSERT_TRUE(rebooted.ok()) << rebooted.error().to_string();
  EXPECT_TRUE((*rebooted)->serving_tls());
  world.nodes[0] = std::move(*rebooted);

  // The attack: restore the pre-rotation snapshot byte for byte. The
  // ciphertext is genuine (same chip, same measurement — it unseals), but
  // its stamp is older than the chip counter, which the host cannot roll
  // back. The reboot must fail closed on TRUST — the stale identity is
  // discarded unserved and the detection surfaced — but not on
  // availability: the node boots unprovisioned instead of bricking.
  const Bytes current = disk->raw_dump(0, disk_bytes);
  for (std::size_t i = 0; i < disk_bytes; ++i) {
    if (current[i] != snapshot[i]) {
      disk->raw_tamper(i, current[i] ^ snapshot[i]);
    }
  }
  world.platforms[0]->launch_reset();
  world.nodes[0].reset();
  auto rolled_back =
      RevelioVm::deploy(*world.platforms[0], world.network, config,
                        world.routes);
  ASSERT_TRUE(rolled_back.ok()) << rolled_back.error().to_string();
  EXPECT_FALSE((*rolled_back)->serving_tls())
      << "a rolled-back sealed volume must never boot into service";
  EXPECT_TRUE((*rolled_back)->rollback_detected());
  EXPECT_NE((*rolled_back)->rollback_detail().find("stamp"),
            std::string::npos);
  world.nodes[0] = std::move(*rolled_back);

  // Recovery: a fresh SP provisioning round re-attests the node from
  // scratch and re-seals a NEW identity — service resumes on the current
  // certificate, and the snapshot's identity was never served.
  auto reprovisioned = world.sp->provision_fleet();
  ASSERT_TRUE(reprovisioned.ok()) << reprovisioned.error().to_string();
  EXPECT_TRUE(world.nodes[0]->serving_tls());

  // The re-sealed record carries a fresh stamp: a plain reboot resumes
  // service again with no detection.
  world.platforms[0]->launch_reset();
  world.nodes[0].reset();
  auto resumed = RevelioVm::deploy(*world.platforms[0], world.network,
                                   config, world.routes);
  ASSERT_TRUE(resumed.ok()) << resumed.error().to_string();
  EXPECT_TRUE((*resumed)->serving_tls());
  EXPECT_FALSE((*resumed)->rollback_detected());
}

// The review scenario that motivated fail-closed-on-trust-only: the chip
// counter ends up AHEAD of the sealed stamp through an ordinary fault
// (a persist's durable write lost, or a crash between write and counter
// increment) — indistinguishable on disk from a rollback. The node must
// not be bricked: boot discards the record, reports the detection, and a
// provisioning round restores service.
TEST(RollbackDefense, CounterAheadOfStampRecoversByReprovisioning) {
  FleetWorldOptions options;
  options.vm_count = 1;
  FleetWorld world("rollback-2", options);
  auto disk = world.nodes[0]->disk();

  // Simulate the lost persist: the chip counter moves, the volume doesn't.
  ASSERT_TRUE(world.platforms[0]->counter_increment(0).ok());

  world.platforms[0]->launch_reset();
  world.nodes[0].reset();
  RevelioVmConfig config = world.vm_config("10.0.0.1");
  config.existing_disk = disk;
  auto rebooted = RevelioVm::deploy(*world.platforms[0], world.network,
                                    config, world.routes);
  ASSERT_TRUE(rebooted.ok())
      << "a lost persist must not brick the node: "
      << rebooted.error().to_string();
  EXPECT_FALSE((*rebooted)->serving_tls());
  EXPECT_TRUE((*rebooted)->rollback_detected());
  world.nodes[0] = std::move(*rebooted);

  auto reprovisioned = world.sp->provision_fleet();
  ASSERT_TRUE(reprovisioned.ok()) << reprovisioned.error().to_string();
  EXPECT_TRUE(world.nodes[0]->serving_tls());
}

// ------------------------------------------------- expiry edge cases

// Three lifecycle edge cases, one world, three DISTINCT failure steps:
//   (1) the VCEK certificate expiring exactly at the validation instant
//       fails at "chain" (half-open validity; the exact not_after - 1 /
//       not_after boundary is pinned at the pki layer in test_pki);
//   (2) evidence cached before a TCB update, served at/after the horizon,
//       fails at "tcb_horizon" — before any chain or signature work, even
//       though its chain is *also* expired;
//   (3) a revocation entry added between a session's KDS fetch and its
//       verify stage fails at "revocation".
TEST(ExpiryEdges, DistinctFailureStepsForChainHorizonAndRevocation) {
  constexpr std::uint64_t kVcekNotAfter = 3600ull * 1000 * 1000;  // t = 1 h
  FleetWorldOptions options;
  options.vm_count = 1;
  options.vcek_not_after_us = kVcekNotAfter;
  FleetWorld world("expiry-1", options);
  ASSERT_LT(world.clock.now_us(), kVcekNotAfter);

  RevocationSet revocation;
  fleet::TcbHorizon horizon;
  const auto make_extension = [&]() {
    world.browser.drop_session(kDomain);
    WebExtensionConfig config;
    config.kds_address = {kKdsPrimary, 443};
    config.kds_mirrors = {{kKdsMirror, 443}};
    config.revocation_set = &revocation;
    config.tcb_horizon = &horizon;
    WebExtension extension(world.browser, config);
    extension.register_site(kDomain, world.registration());
    return extension;
  };
  // Fresh extension per attempt: fresh chain-verdict and VCEK caches, so
  // every attempt re-validates against the current instant.
  struct Attempt {
    bool ok = false;
    std::string step;
    std::string error;
  };
  const auto attempt = [&]() -> Attempt {
    WebExtension extension = make_extension();
    auto got = extension.get(kDomain, 443, "/");
    const auto* checks = extension.last_checks(kDomain);
    return {got.ok(), checks != nullptr ? checks->failure_step : "(none)",
            got.ok() ? "" : got.error().to_string()};
  };
  std::set<std::string> steps;

  // (1) A session that *verifies* before not_after passes. The chain walk
  // runs at verify time, after the handshake/evidence/KDS round-trips have
  // advanced the shared virtual clock, so start the session with a margin
  // that covers those RTTs. (The exact half-open boundary — valid at
  // not_after - 1, expired at not_after — is pinned at the pki layer by
  // test_pki's ExpiryBoundaryIsHalfOpen.)
  constexpr std::uint64_t kSessionRttBudgetUs = 2'000'000;  // >> session RTTs
  world.clock.advance_us(kVcekNotAfter - kSessionRttBudgetUs -
                         world.clock.now_us());
  auto before = attempt();
  EXPECT_TRUE(before.ok) << "chain must verify before not_after: "
                         << before.error << " (step " << before.step << ")";
  // ...and a session starting AT not_after verifies at now >= not_after,
  // so the half-open window rejects it.
  world.clock.advance_us(kVcekNotAfter - world.clock.now_us());
  auto at_expiry = attempt();
  EXPECT_FALSE(at_expiry.ok);
  EXPECT_EQ(at_expiry.step, "chain") << at_expiry.error;
  steps.insert(at_expiry.step);

  // (2) Stage a TCB update with an immediate horizon. The VM still serves
  // evidence signed under the old TCB — cached before the update — so the
  // horizon gate rejects it before any signature work. (Its chain is also
  // expired; "tcb_horizon", not "chain", proves the gate runs first.)
  world.kds.set_vcek_not_after(0);  // future issues get the century default
  world.platforms[0]->update_firmware(new_tcb());
  ASSERT_TRUE(horizon
                  .announce(world.platforms[0]->chip_id(), new_tcb(),
                            world.clock.now_us(), "staged update")
                  .ok());
  auto stale = attempt();
  EXPECT_FALSE(stale.ok);
  EXPECT_EQ(stale.step, "tcb_horizon") << stale.error;
  steps.insert(stale.step);

  // After the VM refreshes its evidence at the updated TCB, sessions are
  // green again: the new VCEK (fresh validity window) passes the chain
  // walk and the new report passes the horizon.
  ASSERT_TRUE(world.nodes[0]->refresh_evidence().ok());
  auto refreshed = attempt();
  EXPECT_TRUE(refreshed.ok)
      << "post-refresh sessions must verify at the new TCB";

  // (3) Revoke the serving chip between a session's KDS fetch and its
  // verify stage: the staged pipeline must reject at "revocation".
  WebExtension extension = make_extension();
  auto staged = extension.begin_session(kDomain, 443);
  ASSERT_TRUE(staged.handshake().ok());
  ASSERT_TRUE(staged.fetch_evidence().ok());
  ASSERT_TRUE(staged.fetch_kds().ok());
  ASSERT_TRUE(revocation.revoke_chip(world.platforms[0]->chip_id(),
                                     "endorsement key leaked").ok());
  EXPECT_FALSE(staged.verify().ok());
  EXPECT_EQ(staged.checks().failure_step, "revocation");
  steps.insert(staged.checks().failure_step);

  // The three edges are distinguishable in the audit trail.
  EXPECT_EQ(steps.size(), 3u);
}

// --------------------------------------------- lifecycle chaos soak

struct WaveResult {
  SessionEngine::StagedReport report;
  std::vector<std::string> failure_steps;  // per session, "" on success
  int unverified_accepts = 0;
  int wrong_bodies = 0;
};

struct SoakResult {
  std::string transcript;
  std::size_t sessions = 0;
  std::size_t succeeded = 0;
  std::uint64_t horizon_rejections = 0;
  std::uint64_t revocation_hits = 0;
  fleet::LifecycleEngine::Stats lifecycle;
  bool audit_ok = false;
  std::uint64_t audit_records = 0;
};

/// One wave of staged sessions against `world` through `engine`. All
/// sessions share track 0 (one single-threaded world) — stages still
/// interleave across sessions on the event loop, and the lifecycle hook
/// fires between batches.
WaveResult run_wave(SessionEngine& engine, FleetWorld& world,
                    obs::AuditLog& audit, const RevocationSet* revocation,
                    const fleet::TcbHorizon* horizon, std::size_t sessions) {
  struct Slot {
    std::unique_ptr<WebExtension> ext;
    std::unique_ptr<WebExtension::StagedAttestation> staged;
  };
  std::vector<Slot> slots(sessions);
  WaveResult out;
  out.failure_steps.assign(sessions, "");
  std::atomic<int> unverified{0};
  std::atomic<int> wrong_body{0};

  out.report = engine.run_staged(
      sessions,
      [&](StagedContext& ctx) -> SessionState {
        std::lock_guard<std::mutex> world_lock(world.mu);
        ScopedClockCurrent clock_scope(world.clock);
        const double virt_start = world.clock.now_ms();
        Slot& slot = slots[ctx.index];
        const auto finish = [&](SessionState next) {
          ctx.stage_virt_ms = world.clock.now_ms() - virt_start;
          return next;
        };
        const auto fail = [&](Error error) {
          if (slot.staged != nullptr) {
            out.failure_steps[ctx.index] = slot.staged->checks().failure_step;
          }
          ctx.failure = std::move(error);
          return finish(SessionState::kFailed);
        };

        switch (ctx.state) {
          case SessionState::kHandshake: {
            world.browser.drop_session(kDomain);
            WebExtensionConfig config;
            config.kds_address = {kKdsPrimary, 443};
            config.kds_mirrors = {{kKdsMirror, 443}};
            config.retry.max_attempts = 4;
            config.shared_chain_cache = ctx.chain_cache;
            config.shared_vcek_cache = ctx.vcek_cache;
            config.audit_log = &audit;
            config.audit_session_id = ctx.index;
            config.revocation_set = revocation;
            config.tcb_horizon = horizon;
            slot.ext = std::make_unique<WebExtension>(world.browser, config);
            slot.ext->register_site(kDomain, world.registration());
            slot.staged = std::make_unique<WebExtension::StagedAttestation>(
                slot.ext->begin_session(kDomain, 443));
            auto st = slot.staged->handshake();
            if (!st.ok()) return fail(st.error());
            return finish(SessionState::kEvidenceFetch);
          }
          case SessionState::kEvidenceFetch: {
            auto st = slot.staged->fetch_evidence();
            if (!st.ok()) return fail(st.error());
            return finish(SessionState::kKdsFetch);
          }
          case SessionState::kKdsFetch: {
            auto st = slot.staged->fetch_kds();
            if (!st.ok()) return fail(st.error());
            return finish(SessionState::kVerify);
          }
          case SessionState::kVerify: {
            auto st = slot.staged->verify();
            if (!st.ok()) return fail(st.error());
            return finish(SessionState::kPageFetch);
          }
          case SessionState::kPageFetch: {
            auto page = slot.staged->fetch_page("/");
            if (!page.ok()) return fail(page.error());
            if (!slot.staged->checks().all_ok()) {
              unverified.fetch_add(1);
              return fail(Error::make("test.unverified_trust_accepted"));
            }
            if (to_string(page->body) != kBody) {
              wrong_body.fetch_add(1);
              return fail(Error::make("test.body_mismatch"));
            }
            return finish(SessionState::kDone);
          }
          default:
            return fail(Error::make("test.unexpected_state"));
        }
      },
      {}, [](std::size_t) { return std::size_t{0}; });
  out.unverified_accepts = unverified.load();
  out.wrong_bodies = wrong_body.load();
  return out;
}

/// The full lifecycle soak for one seed. Four waves, 320 sessions total,
/// over a seeded lossy fabric; lifecycle ops fire mid-wave through the
/// engine's on_virtual_time hook (instants are loop-virtual-time, paced
/// off the deterministic wave-A makespan):
///   wave A (60):  baseline under chaos — paces the op schedule;
///   wave B (80):  cert_rotate mid-wave (ACME re-issue + redistribute);
///   wave C (100): tcb_update (horizon rejects stale evidence), then
///                 vm_refresh (sessions recover at the new TCB);
///   wave D (80):  rollback_probe (snapshot-restore + reboot must be
///                 refused), then revoke_push (remaining sessions fail
///                 closed at "revocation").
SoakResult run_lifecycle_soak(const std::string& seed) {
  FleetWorld world(seed);

  // Durable control plane: revocations and horizons must survive a
  // gateway restart, VCEK chains read through the same store.
  store::MemStorageEnv env;
  auto kv = store::KvStore::open(env);
  EXPECT_TRUE(kv.ok());
  auto revocation = RevocationSet::open(**kv);
  EXPECT_TRUE(revocation.ok());
  auto horizon = fleet::TcbHorizon::open(**kv);
  EXPECT_TRUE(horizon.ok());

  obs::AuditLog audit(16);
  fleet::LifecycleEngine lifecycle(&audit);

  SessionEngineConfig engine_config;
  engine_config.workers = 4;
  engine_config.audit_log = &audit;
  engine_config.on_virtual_time = lifecycle.hook();
  SessionEngine engine(engine_config);
  engine.vcek_cache().attach_store(kv->get());
  world.browser.set_chain_cache(&engine.chain_cache());

  // Seeded fault schedule: a mildly lossy fabric for the whole soak.
  net::LinkFaultProfile lossy;
  lossy.drop_prob = 0.03;
  lossy.delay_prob = 0.2;
  lossy.delay_min_ms = 1.0;
  lossy.delay_max_ms = 5.0;
  net::FaultPlan plan(to_bytes("fleet-soak-" + seed));
  plan.set_default_profile(lossy);
  world.arm(std::move(plan));

  // Pre-soak snapshot of node 2's sealed volume — wave D's rollback probe
  // restores it after the rotation has advanced the chip counter.
  auto probe_disk = world.nodes[1]->disk();
  const std::size_t probe_bytes =
      probe_disk->block_size() *
      static_cast<std::size_t>(probe_disk->block_count());
  const Bytes probe_snapshot = probe_disk->raw_dump(0, probe_bytes);

  SoakResult out;
  std::vector<std::pair<const char*, WaveResult>> waves;
  const auto soak_wave = [&](const char* name, std::size_t sessions) {
    WaveResult wave = run_wave(engine, world, audit, revocation->get(),
                               horizon->get(), sessions);
    out.sessions += wave.report.sessions;
    out.succeeded += wave.report.succeeded;
    out.transcript += std::string("wave=") + name +
                      " digest=" + wave.report.transcript_digest + "\n";
    for (std::size_t i = 0; i < sessions; ++i) {
      out.transcript += std::to_string(i) + ":" +
                        (wave.report.outcomes[i].ok()
                             ? "ok"
                             : wave.report.outcomes[i].error().code) +
                        ":" + wave.failure_steps[i] + "\n";
    }
    EXPECT_EQ(wave.unverified_accepts, 0)
        << "wave " << name << " accepted unverified trust";
    EXPECT_EQ(wave.wrong_bodies, 0);
    waves.emplace_back(name, std::move(wave));
    // A wave is a maintenance window: an op still pending when the wave
    // drains is applied at the window boundary. Waves whose sessions fail
    // early (skipping the page fetch) accumulate virtual time slower than
    // the baseline pace, so a late-scheduled op can miss its own wave —
    // the boundary reconcile keeps the op sequence deterministic anyway.
    lifecycle.apply_due(std::numeric_limits<std::uint64_t>::max());
  };
  const auto with_world = [&](const std::function<Status()>& fn) {
    std::lock_guard<std::mutex> world_lock(world.mu);
    ScopedClockCurrent clock_scope(world.clock);
    return fn();
  };

  // Wave A: baseline; its deterministic makespan paces every later op.
  soak_wave("baseline", 60);
  const auto pace_us = static_cast<std::uint64_t>(
      waves[0].second.report.virt_makespan_ms * 1000.0 / 60.0);
  EXPECT_GT(pace_us, 0u);

  // Wave B: certificate rotation mid-wave. In-flight sessions keep
  // verifying — the node identity (and the attested key) is unchanged;
  // later handshakes land on the rotated certificate.
  lifecycle.schedule(
      {30 * pace_us, "cert_rotate", [&](std::uint64_t) -> Status {
         return with_world([&]() -> Status {
           EXPECT_TRUE(world.sp->renewal_due(
               world.clock.now_us(),
               world.acme.trusted_roots()[0].not_after_us))
               << "forced-early rotation: any overlap covering now is due";
           auto outcome = world.sp->provision_fleet();
           if (!outcome.ok()) return outcome.error();
           return Status::success();
         });
       }});
  soak_wave("cert_rotate", 80);

  // Wave C: staged TCB update on the serving chip. Sessions verifying
  // inside the (update, refresh) window see the old evidence rejected
  // fail-closed at "tcb_horizon"; after vm_refresh they recover.
  lifecycle.schedule(
      {20 * pace_us, "tcb_update", [&](std::uint64_t) -> Status {
         return with_world([&]() -> Status {
           world.platforms[0]->update_firmware(new_tcb());
           auto applied = horizon.value()->announce(
               world.platforms[0]->chip_id(), new_tcb(),
               world.clock.now_us(), "fleet-wide TCB update");
           if (!applied.ok()) return applied.error();
           // An ignored (below-floor) announcement must not audit as an
           // applied tcb_update — surface it as a distinct failed op.
           return *applied ? Status::success()
                           : Error::make("fleet.tcb_ignored",
                                         "minimum below the announced floor");
         });
       }});
  lifecycle.schedule(
      {40 * pace_us, "vm_refresh", [&](std::uint64_t) -> Status {
         return with_world([&]() { return world.nodes[0]->refresh_evidence(); });
       }});
  soak_wave("tcb_update", 100);

  // Wave D: a rollback probe against node 2 (its restored snapshot must
  // be refused at reboot — the op fails if the attack *succeeds*), then a
  // revocation push that kills the serving chip for good.
  lifecycle.schedule(
      {10 * pace_us, "rollback_probe", [&](std::uint64_t) -> Status {
         return with_world([&]() -> Status {
           const Bytes current = probe_disk->raw_dump(0, probe_bytes);
           for (std::size_t i = 0; i < probe_bytes; ++i) {
             if (current[i] != probe_snapshot[i]) {
               probe_disk->raw_tamper(i, current[i] ^ probe_snapshot[i]);
             }
           }
           world.platforms[1]->launch_reset();
           world.nodes[1].reset();
           RevelioVmConfig config = world.vm_config("10.0.0.2");
           config.existing_disk = probe_disk;
           auto rebooted = RevelioVm::deploy(*world.platforms[1],
                                             world.network, config,
                                             world.routes);
           if (!rebooted.ok()) return rebooted.error();
           // Fail closed on trust, not availability: the node must boot
           // (unprovisioned) but never serve the rolled-back identity.
           if ((*rebooted)->serving_tls() ||
               !(*rebooted)->rollback_detected()) {
             return Error::make("fleet.rollback_not_detected",
                                "stale sealed volume booted into service");
           }
           world.nodes[1] = std::move(*rebooted);
           return Status::success();
         });
       }});
  lifecycle.schedule(
      {25 * pace_us, "revoke_push", [&](std::uint64_t) -> Status {
         return with_world([&]() {
           return revocation.value()->revoke_chip(
               world.platforms[0]->chip_id(), "endorsement key leaked");
         });
       }});
  soak_wave("revoke_push", 80);

  // Scenario-specific outcomes.
  const auto count_step = [&](const WaveResult& wave, const char* step) {
    int n = 0;
    for (const auto& s : wave.failure_steps) n += (s == step) ? 1 : 0;
    return n;
  };
  EXPECT_GT(waves[1].second.report.succeeded, 0u)
      << "sessions must keep succeeding across the rotation";
  EXPECT_GT(count_step(waves[2].second, "tcb_horizon"), 0)
      << "stale evidence inside the update window must hit the horizon";
  EXPECT_GT(waves[2].second.report.succeeded, 0u)
      << "sessions must recover after the evidence refresh";
  EXPECT_GT(waves[3].second.report.succeeded, 0u)
      << "recovery must persist into the next wave (pre-revocation)";
  EXPECT_GT(count_step(waves[3].second, "revocation"), 0)
      << "sessions after the push must fail closed at revocation";

  out.horizon_rejections = horizon.value()->stats().rejections;
  out.revocation_hits = revocation.value()->stats().hits;
  out.lifecycle = lifecycle.stats();
  const auto audit_summary = obs::AuditLog::verify(audit.serialize());
  out.audit_ok = audit_summary.ok();
  out.audit_records = audit.records();
  std::printf(
      "[fleet-soak] seed=%s sessions=%zu ok=%zu horizon_rej=%llu "
      "revoked=%llu ops=%llu audit_records=%llu\n",
      seed.c_str(), out.sessions, out.succeeded,
      static_cast<unsigned long long>(out.horizon_rejections),
      static_cast<unsigned long long>(out.revocation_hits),
      static_cast<unsigned long long>(out.lifecycle.applied),
      static_cast<unsigned long long>(out.audit_records));
  return out;
}

TEST(FleetLifecycleSoak, LifecycleOpsUnderChaosStayFailClosed) {
  const SoakResult soak = run_lifecycle_soak("seed-1");
  EXPECT_EQ(soak.sessions, 320u);
  EXPECT_GT(soak.succeeded, soak.sessions / 2)
      << "most sessions ride over the mild fault schedule";
  // Every lifecycle op fired exactly once and succeeded — including the
  // rollback probe, which *succeeds* iff the attack was refused.
  EXPECT_EQ(soak.lifecycle.applied, 5u);
  EXPECT_EQ(soak.lifecycle.failed, 0u);
  EXPECT_EQ(soak.lifecycle.pending, 0u);
  EXPECT_GT(soak.horizon_rejections, 0u);
  EXPECT_GT(soak.revocation_hits, 0u);
  // Session verdicts + lifecycle records share one verifiable chain.
  EXPECT_TRUE(soak.audit_ok);
  // Every *reached* verdict and every lifecycle op is on the chain
  // (transport-level failures never get as far as a verdict).
  EXPECT_GE(soak.audit_records,
            soak.succeeded + soak.lifecycle.applied);
}

TEST(FleetLifecycleSoak, SameSeedReproducesBitIdenticalTranscript) {
  const SoakResult first = run_lifecycle_soak("seed-replay");
  const SoakResult second = run_lifecycle_soak("seed-replay");
  EXPECT_EQ(first.transcript, second.transcript);
  EXPECT_FALSE(first.transcript.empty());
}

}  // namespace
}  // namespace revelio::core

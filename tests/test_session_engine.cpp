// Concurrent attestation gateway: session engine, sharded caches,
// single-flight KDS fetch coalescing, and the per-session observability
// isolation they rely on. Runs tier-1 and under the tsan preset — most of
// these tests exist precisely to put real threads on the shared state.
//
// The end-to-end tests drive several complete simulated worlds (the
// chaos-soak fixture, trimmed to one VM) from the engine's worker lanes:
// each world is single-threaded by design, so a session locks its world,
// binds the world's clock to the worker thread (ScopedClockCurrent), and
// shares only the engine's thread-safe caches with other sessions.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/single_flight.hpp"
#include "imagebuild/builder.hpp"
#include "obs/metrics.hpp"
#include "pki/ca.hpp"
#include "revelio/revelio_vm.hpp"
#include "revelio/session_engine.hpp"
#include "revelio/sp_node.hpp"
#include "revelio/web_extension.hpp"
#include "vm/hypervisor.hpp"

namespace revelio::core {
namespace {

using crypto::HmacDrbg;

// ---------------------------------------------------------------------------
// Histogram / registry merge (the concurrent session-end bugfix)

TEST(MetricsMerge, SnapshotIsConsistentUnderConcurrentObserve) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("gw.x.ms", {1.0, 10.0});
  constexpr int kObservations = 200000;
  std::thread writer([&h] {
    for (int i = 0; i < kObservations; ++i) h.observe(3.0);
  });
  // Every snapshot taken mid-write must be internally consistent: the
  // bucket total, the count and the sum all describe the same instant.
  for (int i = 0; i < 50; ++i) {
    const obs::Histogram::Snapshot snap = h.snapshot();
    std::uint64_t bucket_total = 0;
    for (const auto c : snap.counts) bucket_total += c;
    EXPECT_EQ(bucket_total, snap.count);
    EXPECT_DOUBLE_EQ(snap.sum, 3.0 * static_cast<double>(snap.count));
  }
  writer.join();
  EXPECT_EQ(h.snapshot().count, static_cast<std::uint64_t>(kObservations));
}

TEST(MetricsMerge, ConcurrentSessionEndLosesNoObservations) {
  // The regression this PR fixes: merging per-session histograms into one
  // registry from many threads at once (sessions ending together) while
  // other threads keep observing. Every observation must land exactly once.
  obs::MetricsRegistry global;
  constexpr int kSessions = 8;
  constexpr int kPerSession = 2000;
  constexpr int kDirect = 5000;

  std::thread direct_writer([&global] {
    obs::Histogram& h = global.histogram("gw.session.virt.ms", {1.0, 10.0});
    for (int i = 0; i < kDirect; ++i) h.observe(5.0);
  });
  std::vector<std::thread> sessions;
  sessions.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    sessions.emplace_back([&global] {
      obs::MetricsRegistry session;
      obs::Histogram& h =
          session.histogram("gw.session.virt.ms", {1.0, 10.0});
      for (int i = 0; i < kPerSession; ++i) {
        h.observe(static_cast<double>(i % 20));
      }
      session.counter("gw.sessions.count").inc();
      session.gauge("gw.last.ms").add(1.0);
      global.merge_from(session);
    });
  }
  for (auto& t : sessions) t.join();
  direct_writer.join();

  const obs::Histogram::Snapshot snap =
      global.histograms().at("gw.session.virt.ms").snapshot();
  EXPECT_EQ(snap.count,
            static_cast<std::uint64_t>(kSessions * kPerSession + kDirect));
  std::uint64_t bucket_total = 0;
  for (const auto c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_EQ(global.counter_value("gw.sessions.count"),
            static_cast<std::uint64_t>(kSessions));
  EXPECT_DOUBLE_EQ(global.gauges().at("gw.last.ms").value(),
                   static_cast<double>(kSessions));
}

TEST(MetricsMerge, MismatchedBucketsFoldIntoOverflowKeepingTotalsExact) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.histogram("h", {10.0}).observe(2.0);
  b.histogram("h", {1.0, 2.0}).observe(1.5);
  b.histogram("h", {1.0, 2.0}).observe(100.0);
  a.merge_from(b);
  const obs::Histogram::Snapshot snap = a.histograms().at("h").snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 103.5);
  // a's own observation sits in its bucket; b's two observations (bounds
  // differ) are parked in +inf rather than guessed into bins.
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 2u);
}

TEST(MetricsMerge, ThreadBindingIsolatesAndMergeFolds) {
  obs::MetricsRegistry session;
  obs::MetricsRegistry* global = &obs::metrics();
  const std::uint64_t before = global->counter_value("gw.bind.count");
  {
    obs::ScopedThreadMetrics scope(session);
    EXPECT_EQ(&obs::metrics(), &session);
    obs::metrics().counter("gw.bind.count").inc(3);
  }
  EXPECT_EQ(&obs::metrics(), global);
  EXPECT_EQ(global->counter_value("gw.bind.count"), before);
  EXPECT_EQ(session.counter_value("gw.bind.count"), 3u);
  global->merge_from(session);
  EXPECT_EQ(global->counter_value("gw.bind.count"), before + 3);
}

// ---------------------------------------------------------------------------
// SingleFlight

TEST(SingleFlight, CoalescesConcurrentSameKeyCallers) {
  common::SingleFlight<int, int> flights;
  constexpr int kThreads = 8;
  std::atomic<int> calls{0};
  std::atomic<int> entered{0};
  std::vector<int> values(kThreads, 0);
  std::vector<char> coalesced(kThreads, 0);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      entered.fetch_add(1);
      bool waited = false;
      auto result = flights.run(7, &waited, [&]() -> Result<int> {
        calls.fetch_add(1);
        // Leader: hold the flight open until every thread has at least
        // reached run(), then a grace period for them to hit the wait.
        while (entered.load() < kThreads) {
          std::this_thread::yield();
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        return 42;
      });
      ASSERT_TRUE(result.ok());
      values[t] = *result;
      coalesced[t] = waited ? 1 : 0;
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(calls.load(), 1) << "exactly one leader executes the function";
  int waited_count = 0;
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(values[t], 42);
    waited_count += coalesced[t];
  }
  EXPECT_EQ(waited_count, kThreads - 1);
  EXPECT_EQ(flights.inflight(), 0u);
}

TEST(SingleFlight, DistinctKeysRunIndependently) {
  common::SingleFlight<int, int> flights;
  std::atomic<int> calls{0};
  std::vector<std::thread> threads;
  for (int k = 0; k < 4; ++k) {
    threads.emplace_back([&flights, &calls, k] {
      auto result = flights.run(k, nullptr, [&calls, k]() -> Result<int> {
        calls.fetch_add(1);
        return k * 10;
      });
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(*result, k * 10);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(calls.load(), 4);
}

TEST(SingleFlight, LeaderErrorReachesWaitersAndIsNotSticky) {
  common::SingleFlight<int, int> flights;
  auto failed = flights.run(1, nullptr, []() -> Result<int> {
    return Error::make("net.timeout");
  });
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code, "net.timeout");
  // A failed flight leaves nothing behind; the next caller runs fresh.
  auto retried = flights.run(1, nullptr, []() -> Result<int> { return 5; });
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(*retried, 5);
}

// ---------------------------------------------------------------------------
// ShardedChainCache

constexpr std::uint64_t kYearUs = 365ull * 24 * 3600 * 1000 * 1000;

struct ChainFixture {
  ChainFixture()
      : drbg(to_bytes(std::string_view("gateway-chain-tests"))),
        root(pki::CertificateAuthority::create_root(
            crypto::p384(), {"Gateway Root", "TestOrg", "US"}, 0, 10 * kYearUs,
            drbg)),
        inter(pki::CertificateAuthority::create_intermediate(
            crypto::p384(), {"Gateway Intermediate", "TestOrg", "US"}, 0,
            5 * kYearUs, root, drbg)) {}

  pki::Certificate issue_leaf(const std::string& cn) {
    const auto key = crypto::ec_generate(crypto::p256(), drbg);
    const auto csr =
        pki::make_csr(crypto::p256(), key, {cn, "Leaf", "US"}, {cn});
    auto cert = inter.issue(csr, 0, kYearUs);
    EXPECT_TRUE(cert.ok());
    return *cert;
  }

  pki::ChainVerifyOptions options(const std::string& cn) const {
    pki::ChainVerifyOptions o;
    o.now_us = kYearUs / 2;
    o.dns_name = cn;
    return o;
  }

  HmacDrbg drbg;
  pki::CertificateAuthority root;
  pki::CertificateAuthority inter;
};

TEST(ShardedChainCache, ConcurrentVerificationsAgreeAndHit) {
  ChainFixture fx;
  constexpr int kLeaves = 16;
  std::vector<pki::Certificate> leaves;
  std::vector<std::string> names;
  for (int i = 0; i < kLeaves; ++i) {
    names.push_back("site-" + std::to_string(i) + ".example");
    leaves.push_back(fx.issue_leaf(names.back()));
  }
  pki::Certificate tampered = leaves[0];
  tampered.signature[0] ^= 0x01;

  pki::ShardedChainCache cache(4, 16);
  constexpr int kThreads = 8;
  constexpr int kIters = 100;
  std::atomic<int> good_failures{0};
  std::atomic<int> bad_successes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const int leaf = (t + i) % kLeaves;
        const auto st =
            cache.verify(leaves[leaf], {fx.inter.certificate()},
                         {fx.root.certificate()}, fx.options(names[leaf]));
        if (!st.ok()) good_failures.fetch_add(1);
        if (t == 0 && i % 10 == 0) {
          const auto bad =
              cache.verify(tampered, {fx.inter.certificate()},
                           {fx.root.certificate()}, fx.options(names[0]));
          if (bad.ok()) bad_successes.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(good_failures.load(), 0) << "valid chains must verify everywhere";
  EXPECT_EQ(bad_successes.load(), 0)
      << "a tampered chain must fail even while hits fly on other shards";
  const auto stats = cache.stats();
  // Every distinct chain misses once; everything else is hits (failures
  // count as misses — they are never cached).
  EXPECT_GT(stats.hits, 0u);
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads * kIters + kIters / 10));
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kLeaves));
  // Cross-shard spread: 16 distinct chains across 4 shards must touch
  // more than one shard (SHA-256 keyed, astronomically unlikely not to).
  int populated = 0;
  for (std::size_t s = 0; s < cache.shard_count(); ++s) {
    if (cache.shard(s).size() > 0) ++populated;
  }
  EXPECT_GT(populated, 1);
}

TEST(ShardedChainCache, EvictionUnderContentionStaysCorrect) {
  ChainFixture fx;
  constexpr int kLeaves = 8;
  std::vector<pki::Certificate> leaves;
  std::vector<std::string> names;
  for (int i = 0; i < kLeaves; ++i) {
    names.push_back("evict-" + std::to_string(i) + ".example");
    leaves.push_back(fx.issue_leaf(names.back()));
  }
  // One shard, capacity 2: eight chains hammering it from four threads
  // churn the LRU constantly. Verdicts must stay correct throughout.
  pki::ShardedChainCache cache(1, 2);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 100; ++i) {
        const int leaf = (t * 3 + i) % kLeaves;
        if (!cache
                 .verify(leaves[leaf], {fx.inter.certificate()},
                         {fx.root.certificate()}, fx.options(names[leaf]))
                 .ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_LE(cache.size(), 2u);
}

// ---------------------------------------------------------------------------
// VcekCache

KdsService::VcekResponse fake_vcek(const std::string& tag) {
  KdsService::VcekResponse r;
  r.vcek.subject.common_name = "vcek-" + tag;
  r.ask.subject.common_name = "ask-" + tag;
  r.ark.subject.common_name = "ark-" + tag;
  return r;
}

TEST(VcekCache, ConcurrentColdMissesCostExactlyOneFetch) {
  VcekCache cache(4, 8);
  sevsnp::ChipId chip;
  chip[0] = 0x42;
  const sevsnp::TcbVersion tcb{2, 0, 8, 115};
  std::atomic<int> fetches{0};
  const std::uint64_t metric_before =
      obs::metrics().counter_value("kds.fetch.count");

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto result = cache.get_or_fetch(
          chip, tcb, [&]() -> Result<KdsService::VcekResponse> {
            fetches.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            return fake_vcek("A");
          });
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->vcek.subject.common_name, "vcek-A");
    });
  }
  for (auto& t : threads) t.join();

  // The strong guarantee: whether a caller coalesced into the flight or
  // arrived after it completed (cache hit), the fetch ran exactly once.
  EXPECT_EQ(fetches.load(), 1);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.fetches, 1u);
  EXPECT_EQ(stats.hits + stats.coalesced,
            static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(obs::metrics().counter_value("kds.fetch.count"),
            metric_before + 1);
  EXPECT_EQ(cache.size(), 1u);

  // Warm path: no new fetch.
  auto warm = cache.get_or_fetch(
      chip, tcb, [&]() -> Result<KdsService::VcekResponse> {
        fetches.fetch_add(1);
        return fake_vcek("B");
      });
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->vcek.subject.common_name, "vcek-A");
  EXPECT_EQ(fetches.load(), 1);
}

TEST(VcekCache, FailuresAreDeliveredButNeverCached) {
  VcekCache cache(2, 4);
  sevsnp::ChipId chip;
  chip[0] = 0x07;
  const sevsnp::TcbVersion tcb{2, 0, 8, 115};
  auto failed = cache.get_or_fetch(
      chip, tcb, []() -> Result<KdsService::VcekResponse> {
        return Error::make("net.timeout", "kds unreachable");
      });
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code, "net.timeout");
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().failures, 1u);

  auto recovered = cache.get_or_fetch(
      chip, tcb,
      []() -> Result<KdsService::VcekResponse> { return fake_vcek("ok"); });
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(cache.stats().fetches, 2u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(VcekCache, DistinctChipsSpreadAcrossShardsAndEvict) {
  VcekCache cache(4, 2);
  for (int i = 0; i < 32; ++i) {
    sevsnp::ChipId chip;
    chip[0] = static_cast<std::uint8_t>(i);
    auto r = cache.get_or_fetch(
        chip, sevsnp::TcbVersion{2, 0, 8, 115},
        [i]() -> Result<KdsService::VcekResponse> {
          return fake_vcek(std::to_string(i));
        });
    ASSERT_TRUE(r.ok());
  }
  // Per-shard LRU capacity 2 over 4 shards: at most 8 survivors.
  EXPECT_LE(cache.size(), 8u);
  std::size_t populated = 0;
  for (std::size_t s = 0; s < cache.shard_count(); ++s) {
    if (cache.shard_size(s) > 0) ++populated;
  }
  EXPECT_GT(populated, 1u);
  EXPECT_EQ(cache.stats().fetches, 32u);
}

// ---------------------------------------------------------------------------
// SessionEngine: scheduling, aggregation, obs isolation (synthetic sessions)

TEST(SessionEngine, AggregatesLaneModelAndPercentiles) {
  SessionEngineConfig config;
  config.workers = 4;
  SessionEngine engine(config);
  const auto report = engine.run(8, [](SessionContext& ctx) -> Status {
    EXPECT_NE(ctx.chain_cache, nullptr);
    EXPECT_NE(ctx.vcek_cache, nullptr);
    ctx.virt_ms = static_cast<double>(ctx.index + 1) * 10.0;
    if (ctx.index == 3) return Error::make("test.synthetic_failure");
    return Status::success();
  });

  EXPECT_EQ(report.sessions, 8u);
  EXPECT_EQ(report.succeeded, 7u);
  EXPECT_EQ(report.failed, 1u);
  ASSERT_FALSE(report.outcomes[3].ok());
  EXPECT_EQ(report.outcomes[3].error().code, "test.synthetic_failure");
  // Round-robin lanes over 4 workers: lane 3 carries sessions 3 and 7
  // (40 + 80 ms) — the heaviest lane, so the makespan.
  EXPECT_DOUBLE_EQ(report.virt_makespan_ms, 120.0);
  EXPECT_DOUBLE_EQ(report.virt_p50_ms, 40.0);
  EXPECT_DOUBLE_EQ(report.virt_p95_ms, 80.0);
  EXPECT_DOUBLE_EQ(report.virt_p99_ms, 80.0);
  EXPECT_NEAR(report.sessions_per_virtual_sec, 8.0 / 0.12, 1e-6);
  EXPECT_GT(report.real_elapsed_ms, 0.0);
}

TEST(SessionEngine, IsolatesSessionObsAndMergesAtSessionEnd) {
  obs::MetricsRegistry* global = &obs::metrics();
  const std::uint64_t before = global->counter_value("gw.engine.test.count");
  SessionEngineConfig config;
  config.workers = 4;
  config.trace_sessions = true;
  SessionEngine engine(config);
  std::vector<std::size_t> span_counts(16, 0);
  const auto report = engine.run(16, [&](SessionContext& ctx) -> Status {
    // The worker thread must see a private registry, not the global one.
    EXPECT_NE(&obs::metrics(), global);
    obs::metrics().counter("gw.engine.test.count").inc();
    obs::metrics()
        .histogram("gw.engine.test.ms", {1.0, 10.0})
        .observe(static_cast<double>(ctx.index));
    {
      obs::Span span("gw.test.session");
      span.attr("index", static_cast<std::uint64_t>(ctx.index));
    }
    span_counts[ctx.index] = ctx.tracer->finished_spans().size();
    return Status::success();
  });
  EXPECT_EQ(report.succeeded, 16u);
  // Merged: every session's private counter landed in the global registry.
  EXPECT_EQ(global->counter_value("gw.engine.test.count"), before + 16);
  const auto snap =
      global->histograms().at("gw.engine.test.ms").snapshot();
  EXPECT_GE(snap.count, 16u);
  // Each session saw exactly its own span in its own tracer.
  for (const auto count : span_counts) EXPECT_EQ(count, 1u);
}

// ---------------------------------------------------------------------------
// End-to-end gateway: several complete worlds driven concurrently

constexpr const char* kDomain = "svc.revelio.app";
constexpr const char* kKdsPrimary = "kds.amd.com";
constexpr const char* kKdsMirror = "kds-mirror.amd.com";
constexpr const char* kBody = "<html>app</html>";

/// One-VM variant of the chaos-soak world: a complete deployment (KDS +
/// mirror, attested VM, SP provisioning, browser), single-threaded, driven
/// by whichever gateway lane holds its mutex. Identical seeds produce
/// byte-identical AMD certificates (registered at t=0, before any
/// real-time-measured deploy), which is what lets worlds share the
/// engine's VCEK and chain caches.
struct GatewayWorld {
  explicit GatewayWorld(const std::string& seed)
      : network(clock),
        world_drbg(to_bytes("gateway-world-" + seed)),
        kds(world_drbg),
        kds_service(kds, network, {kKdsPrimary, 443}),
        kds_mirror_service(kds, network, {kKdsMirror, 443}),
        acme(clock, world_drbg),
        browser(network, "laptop", acme.trusted_roots(),
                HmacDrbg(to_bytes("browser-" + seed))) {
    imagebuild::BaseImage base;
    base.name = "ubuntu";
    base.tag = "20.04";
    base.packages = {
        {"nginx", "1.18", {{"/usr/sbin/nginx",
                            to_bytes(std::string_view("nginx-binary"))}}}};
    const crypto::Digest32 base_digest = registry.publish(base);

    imagebuild::BuildInputs inputs;
    inputs.base_image_digest = base_digest;
    inputs.service_files["/opt/service/app"] =
        to_bytes(std::string_view("service-binary-v1"));
    inputs.initrd.services = {{"nginx", "/usr/sbin/nginx", 120.0},
                              {"app", "/opt/service/app", 300.0}};
    inputs.initrd.allowed_inbound_ports = {"443", "8443"};
    imagebuild::ImageBuilder builder(registry);
    auto built = builder.build(inputs);
    EXPECT_TRUE(built.ok());
    image = *built;
    expected_measurement = vm::Hypervisor::expected_measurement(
        image.kernel_blob, image.initrd_blob, image.cmdline);

    net::HttpRouter routes;
    routes.route("GET", "/", [](const net::HttpRequest&) {
      return net::HttpResponse::ok(to_bytes(std::string_view(kBody)),
                                   "text/html");
    });
    platform = std::make_unique<sevsnp::AmdSp>(
        to_bytes("platform-10.0.0.1-" + seed),
        sevsnp::TcbVersion{2, 0, 8, 115});
    kds.register_platform(*platform);
    RevelioVmConfig config;
    config.domain = kDomain;
    config.host = "10.0.0.1";
    config.image = image;
    config.kds_address = {kKdsPrimary, 443};
    config.kds_mirrors = {{kKdsMirror, 443}};
    auto deployed = RevelioVm::deploy(*platform, network, config, routes);
    EXPECT_TRUE(deployed.ok())
        << (deployed.ok() ? "" : deployed.error().to_string());
    node = std::move(*deployed);

    SpNodeConfig sp_config;
    sp_config.domain = kDomain;
    sp_config.kds_address = {kKdsPrimary, 443};
    sp_config.expected_measurements = {expected_measurement};
    sp = std::make_unique<SpNode>(network, acme, sp_config);
    sp->approve_node(node->bootstrap_address(), platform->chip_id());
    auto outcomes = sp->provision_fleet();
    EXPECT_TRUE(outcomes.ok())
        << (outcomes.ok() ? "" : outcomes.error().to_string());
    network.dns_set_a(kDomain, "10.0.0.1");
    t0_ = clock.now_us();
  }

  SimClock::Micros t0() const { return t0_; }

  SiteRegistration registration() {
    SiteRegistration site;
    site.expected_measurements = {expected_measurement};
    return site;
  }

  SimClock clock;
  net::Network network;
  HmacDrbg world_drbg;
  sevsnp::KeyDistributionServer kds;
  KdsService kds_service;
  KdsService kds_mirror_service;
  pki::AcmeIssuer acme;
  Browser browser;
  imagebuild::PackageRegistry registry;
  imagebuild::VmImage image;
  sevsnp::Measurement expected_measurement;
  std::unique_ptr<sevsnp::AmdSp> platform;
  std::unique_ptr<RevelioVm> node;
  std::unique_ptr<SpNode> sp;
  std::mutex mu;  // one lane drives the world at a time

 private:
  SimClock::Micros t0_ = 0;
};

struct GatewayRun {
  SessionEngine::Report report;
  int unverified_accepts = 0;
  int wrong_bodies = 0;
};

/// Drives `sessions` full client sessions over `worlds` via the engine,
/// sharing its caches. Each session: lock the world, bind its clock, fresh
/// extension (fresh breakers/retry state — a new browser profile) wired to
/// the shared caches, attest + fetch the page.
GatewayRun run_gateway(SessionEngine& engine,
                       std::vector<std::unique_ptr<GatewayWorld>>& worlds,
                       std::size_t sessions, int retry_attempts) {
  std::atomic<int> unverified{0};
  std::atomic<int> wrong_body{0};
  GatewayRun out;
  out.report = engine.run(sessions, [&](SessionContext& ctx) -> Status {
    GatewayWorld& world = *worlds[ctx.index % worlds.size()];
    std::lock_guard<std::mutex> world_lock(world.mu);
    ScopedClockCurrent clock_scope(world.clock);
    const double virt_start = world.clock.now_ms();

    world.browser.drop_session(kDomain);
    WebExtensionConfig config;
    config.kds_address = {kKdsPrimary, 443};
    config.kds_mirrors = {{kKdsMirror, 443}};
    config.retry.max_attempts = retry_attempts;
    config.shared_chain_cache = ctx.chain_cache;
    config.shared_vcek_cache = ctx.vcek_cache;
    WebExtension extension(world.browser, config);
    extension.register_site(kDomain, world.registration());

    auto verified = extension.get(kDomain, 443, "/");
    ctx.virt_ms = world.clock.now_ms() - virt_start;
    if (!verified.ok()) return verified.error();
    // Fail-closed: an accepted session must be fully verified, end to end.
    if (!verified->checks.all_ok()) {
      unverified.fetch_add(1);
      return Error::make("test.unverified_trust_accepted");
    }
    if (to_string(verified->response.body) != kBody) {
      wrong_body.fetch_add(1);
      return Error::make("test.body_mismatch");
    }
    return Status::success();
  });
  out.unverified_accepts = unverified.load();
  out.wrong_bodies = wrong_body.load();
  return out;
}

std::vector<std::unique_ptr<GatewayWorld>> build_worlds(std::size_t count,
                                                        const char* seed) {
  std::vector<std::unique_ptr<GatewayWorld>> worlds;
  worlds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    worlds.push_back(std::make_unique<GatewayWorld>(seed));
  }
  return worlds;
}

TEST(GatewayEndToEnd, ConcurrentSessionsShareCachesAndFetchKdsOnce) {
  SessionEngineConfig config;
  config.workers = 4;
  SessionEngine engine(config);
  auto worlds = build_worlds(4, "gw-seed-1");
  for (auto& world : worlds) {
    world->browser.set_chain_cache(&engine.chain_cache());
  }
  const std::uint64_t kds_before =
      obs::metrics().counter_value("kds.fetch.count");

  const GatewayRun run = run_gateway(engine, worlds, 16, 1);

  EXPECT_EQ(run.report.sessions, 16u);
  EXPECT_EQ(run.report.succeeded, 16u) << "fault-free run must be all green";
  EXPECT_EQ(run.unverified_accepts, 0);
  EXPECT_EQ(run.wrong_bodies, 0);

  // Single-flight + same-seed worlds: every session needs the same VCEK
  // chain, and exactly one KDS round trip happens — the rest coalesce into
  // it or hit the cache it filled.
  const auto vcek = run.report.vcek_stats;
  EXPECT_EQ(vcek.fetches, 1u);
  EXPECT_EQ(vcek.hits + vcek.coalesced, 15u);
  EXPECT_EQ(vcek.failures, 0u);
  EXPECT_EQ(obs::metrics().counter_value("kds.fetch.count"), kds_before + 1);

  // The SNP chain (byte-identical across worlds) verifies once and hits 15
  // times; TLS chains add per-world misses then hit on reconnects.
  EXPECT_GT(run.report.chain_stats.hits, 0u);
  EXPECT_GT(run.report.virt_makespan_ms, 0.0);
  EXPECT_GT(run.report.sessions_per_virtual_sec, 0.0);
  EXPECT_GE(run.report.virt_p99_ms, run.report.virt_p50_ms);
}

TEST(GatewayEndToEnd, ConcurrentChaosSoakNeverAcceptsUnverifiedTrust) {
  SessionEngineConfig config;
  config.workers = 4;
  SessionEngine engine(config);
  auto worlds = build_worlds(4, "gw-chaos-1");
  for (auto& world : worlds) {
    world->browser.set_chain_cache(&engine.chain_cache());
    net::LinkFaultProfile lossy;
    lossy.drop_prob = 0.12;
    lossy.delay_prob = 0.2;
    lossy.delay_min_ms = 1.0;
    lossy.delay_max_ms = 8.0;
    lossy.duplicate_prob = 0.05;
    net::FaultPlan plan(to_bytes(std::string_view("gw-chaos-plan")));
    plan.set_default_profile(lossy);
    world->network.set_fault_plan(std::move(plan));
  }

  const GatewayRun run = run_gateway(engine, worlds, 24, 5);

  EXPECT_EQ(run.report.sessions, 24u);
  EXPECT_EQ(run.report.succeeded + run.report.failed, 24u);
  // The property under chaos: zero unverified-trust acceptances. Failures
  // are fine (and expected under a 12% drop rate) — acceptances that are
  // not fully green are not.
  EXPECT_EQ(run.unverified_accepts, 0);
  EXPECT_EQ(run.wrong_bodies, 0);
  EXPECT_GT(run.report.succeeded, 0u)
      << "retries must carry some sessions through";
  for (const auto& st : run.report.outcomes) {
    if (!st.ok()) {
      EXPECT_NE(st.error().code, "test.unverified_trust_accepted");
      EXPECT_NE(st.error().code, "extension.site_not_registered");
    }
  }
  // Even under chaos the successful fetch population coalesces: real KDS
  // round trips stay far below one per session.
  EXPECT_LT(run.report.vcek_stats.fetches, 24u);
}

// ---------------------------------------------------------------------------
// Staged engine: synthetic state machines on the virtual-time event loop

/// Deterministic per-session stage duration: a fixed mix of (index, stage,
/// salt) — no wall clock, no shared state, so same inputs give the same
/// schedule on every run.
double synth_ms(std::size_t index, int stage, std::uint64_t salt) {
  std::uint64_t x = static_cast<std::uint64_t>(index) * 2654435761ull +
                    static_cast<std::uint64_t>(stage) * 40503ull + salt;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  return 1.0 + static_cast<double>(x % 97) / 10.0;
}

TEST(StagedEngine, DrivesTheFullStateMachineAndAggregates) {
  SessionEngineConfig config;
  config.workers = 4;
  SessionEngine engine(config);
  constexpr std::size_t kSessions = 8;
  // Per-index slots: each session appends only to its own sequence.
  std::vector<std::vector<SessionState>> sequences(kSessions);

  const auto report = engine.run_staged(
      kSessions, [&](StagedContext& ctx) -> SessionState {
        EXPECT_NE(ctx.chain_cache, nullptr);
        EXPECT_NE(ctx.vcek_cache, nullptr);
        sequences[ctx.index].push_back(ctx.state);
        ctx.stage_virt_ms = static_cast<double>(ctx.index + 1);
        switch (ctx.state) {
          case SessionState::kHandshake: return SessionState::kEvidenceFetch;
          case SessionState::kEvidenceFetch: return SessionState::kKdsFetch;
          case SessionState::kKdsFetch: return SessionState::kVerify;
          case SessionState::kVerify:
            if (ctx.index == 2) {
              ctx.failure = Error::make("test.verify_rejected");
              return SessionState::kFailed;
            }
            return SessionState::kPageFetch;
          case SessionState::kPageFetch: return SessionState::kDone;
          default:
            ADD_FAILURE() << "terminal state dispatched";
            return SessionState::kFailed;
        }
      });

  EXPECT_EQ(report.sessions, kSessions);
  EXPECT_EQ(report.succeeded, 7u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.shed, 0u);
  ASSERT_FALSE(report.outcomes[2].ok());
  EXPECT_EQ(report.outcomes[2].error().code, "test.verify_rejected");
  EXPECT_EQ(report.final_states[2], SessionState::kFailed);

  const std::vector<SessionState> full{
      SessionState::kHandshake, SessionState::kEvidenceFetch,
      SessionState::kKdsFetch, SessionState::kVerify,
      SessionState::kPageFetch};
  for (std::size_t i = 0; i < kSessions; ++i) {
    if (i == 2) {
      EXPECT_EQ(sequences[i],
                std::vector<SessionState>(full.begin(), full.end() - 1));
      EXPECT_DOUBLE_EQ(report.session_virt_ms[i], 4.0 * 3.0);
    } else {
      EXPECT_EQ(sequences[i], full) << "session " << i;
      EXPECT_EQ(report.final_states[i], SessionState::kDone);
      EXPECT_DOUBLE_EQ(report.session_virt_ms[i],
                       5.0 * static_cast<double>(i + 1));
    }
  }
  // All sessions start at t=0 and *overlap*: the makespan is the slowest
  // session (8 * 5ms), not the lane-model sum a blocking pool would give.
  EXPECT_DOUBLE_EQ(report.virt_makespan_ms, 40.0);
  // 5 dispatches per completed session, 4 for the one failing at verify.
  EXPECT_EQ(report.events_dispatched, 7u * 5u + 4u);
  EXPECT_EQ(report.peak_parked, kSessions);
  EXPECT_GT(report.bytes_per_parked_session, 0.0);
  EXPECT_FALSE(report.transcript_digest.empty());
}

TEST(StagedEngine, OneWorkerParksThousandsOfSessions) {
  SessionEngineConfig config;
  config.workers = 1;  // the whole point: parked sessions hold no thread
  config.isolate_obs = false;
  SessionEngine engine(config);
  constexpr std::size_t kSessions = 4096;

  const auto report = engine.run_staged(
      kSessions, [&](StagedContext& ctx) -> SessionState {
        ctx.stage_virt_ms = synth_ms(ctx.index, static_cast<int>(ctx.state), 7);
        switch (ctx.state) {
          case SessionState::kHandshake: return SessionState::kEvidenceFetch;
          case SessionState::kEvidenceFetch: return SessionState::kKdsFetch;
          case SessionState::kKdsFetch: return SessionState::kVerify;
          case SessionState::kVerify: return SessionState::kPageFetch;
          case SessionState::kPageFetch: return SessionState::kDone;
          default: return SessionState::kFailed;
        }
      });

  EXPECT_EQ(report.succeeded, kSessions);
  EXPECT_EQ(report.peak_parked, kSessions)
      << "every session in flight at once, none holding a thread";
  EXPECT_GE(report.parked_per_worker, 4096.0);
  // Flat per-session memory: one cell + one heap event, nothing per-stage.
  EXPECT_LT(report.bytes_per_parked_session, 256.0);
  // The makespan is bounded by the slowest *session* (~5 stages * <=10.7ms),
  // not by sessions/workers — 4096 sessions complete inside ~54 virtual ms.
  EXPECT_LT(report.virt_makespan_ms, 60.0);
}

TEST(StagedEngine, AdmissionControlBoundsInflightKdsAndParksTheRest) {
  SessionEngineConfig config;
  config.workers = 4;
  config.isolate_obs = false;
  SessionEngine engine(config);
  constexpr std::size_t kSessions = 64;
  AdmissionConfig admission;
  admission.max_inflight_kds = 4;

  const std::uint64_t parks_before =
      obs::metrics().counter_value("gw.admission.park.count");

  const auto report = engine.run_staged(
      kSessions, [&](StagedContext& ctx) -> SessionState {
        switch (ctx.state) {
          case SessionState::kHandshake:
            ctx.stage_virt_ms = 1.0;
            return SessionState::kEvidenceFetch;
          case SessionState::kEvidenceFetch:
            ctx.stage_virt_ms = 2.0;
            return SessionState::kKdsFetch;
          case SessionState::kKdsFetch:
            ctx.stage_virt_ms = 100.0;  // a slow, saturated KDS
            return SessionState::kVerify;
          case SessionState::kVerify:
            ctx.stage_virt_ms = 0.5;
            return SessionState::kPageFetch;
          case SessionState::kPageFetch:
            ctx.stage_virt_ms = 1.0;
            return SessionState::kDone;
          default:
            return SessionState::kFailed;
        }
      },
      admission);

  EXPECT_EQ(report.succeeded, kSessions) << "park policy sheds nothing";
  EXPECT_EQ(report.shed, 0u);
  // The gate's own accounting: capacity is held from kds_fetch dispatch
  // until the wake that runs verify, and never exceeded the limit.
  EXPECT_EQ(report.peak_inflight_kds, 4u);
  EXPECT_GE(report.peak_queue_depth, kSessions - 8)
      << "the herd parks at the gate instead of fanning out";
  EXPECT_EQ(report.peak_parked, kSessions)
      << "waiting sessions park; none holds a pool lane while gated";
  EXPECT_GT(report.wake_p99_ms, 0.0) << "parked sessions waited measurably";
  EXPECT_GT(obs::metrics().counter_value("gw.admission.park.count"),
            parks_before);
  // The bound is provable from the timeline: 64 sessions through a
  // width-4 gate of a 100ms stage is at least 16 serial gate turns, so a
  // makespan under 1600ms would mean the gate admitted more than 4 at
  // some virtual instant.
  EXPECT_GE(report.virt_makespan_ms, 1600.0);
}

TEST(StagedEngine, ShedPolicyFailsClosedAndNeverReachesVerify) {
  SessionEngineConfig config;
  config.workers = 4;
  config.isolate_obs = false;
  SessionEngine engine(config);
  constexpr std::size_t kSessions = 32;
  AdmissionConfig admission;
  admission.max_inflight_kds = 2;
  admission.on_overload = AdmissionConfig::Overload::kShed;

  std::vector<char> verify_ran(kSessions, 0);
  const auto report = engine.run_staged(
      kSessions, [&](StagedContext& ctx) -> SessionState {
        ctx.stage_virt_ms = 1.0;  // identical timing: the herd arrives at
                                  // the gate in one batch
        switch (ctx.state) {
          case SessionState::kHandshake: return SessionState::kEvidenceFetch;
          case SessionState::kEvidenceFetch: return SessionState::kKdsFetch;
          case SessionState::kKdsFetch: return SessionState::kVerify;
          case SessionState::kVerify:
            verify_ran[ctx.index] = 1;
            return SessionState::kPageFetch;
          case SessionState::kPageFetch: return SessionState::kDone;
          default: return SessionState::kFailed;
        }
      },
      admission);

  EXPECT_EQ(report.succeeded, 2u) << "only the admitted pair completes";
  EXPECT_EQ(report.shed, kSessions - 2);
  EXPECT_EQ(report.failed, kSessions - 2);
  for (std::size_t i = 0; i < kSessions; ++i) {
    if (report.outcomes[i].ok()) {
      EXPECT_EQ(verify_ran[i], 1);
      EXPECT_EQ(report.final_states[i], SessionState::kDone);
      continue;
    }
    // Fail-closed: a shed session fails with the admission code, never
    // runs verify, and can never be mistaken for an attested session.
    EXPECT_EQ(report.outcomes[i].error().code, "gw.admission.shed");
    EXPECT_EQ(report.final_states[i], SessionState::kFailed);
    EXPECT_EQ(verify_ran[i], 0);
  }
}

TEST(StagedEngine, SameSeedRerunsAreBitIdentical) {
  const auto run_once = [](std::uint64_t salt) {
    SessionEngineConfig config;
    config.workers = 4;
    config.isolate_obs = false;
    SessionEngine engine(config);
    AdmissionConfig admission;
    admission.max_inflight_kds = 8;
    admission.max_inflight_evidence = 16;
    return engine.run_staged(
        256,
        [salt](StagedContext& ctx) -> SessionState {
          ctx.stage_virt_ms =
              synth_ms(ctx.index, static_cast<int>(ctx.state), salt);
          switch (ctx.state) {
            case SessionState::kHandshake:
              return SessionState::kEvidenceFetch;
            case SessionState::kEvidenceFetch:
              return SessionState::kKdsFetch;
            case SessionState::kKdsFetch: return SessionState::kVerify;
            case SessionState::kVerify:
              if (ctx.index % 17 == 0) {
                ctx.failure = Error::make("test.rejected");
                return SessionState::kFailed;
              }
              return SessionState::kPageFetch;
            case SessionState::kPageFetch: return SessionState::kDone;
            default: return SessionState::kFailed;
          }
        },
        admission);
  };

  const auto a = run_once(11);
  const auto b = run_once(11);
  const auto c = run_once(12);
  EXPECT_EQ(a.transcript_digest, b.transcript_digest)
      << "same seed, same transcript, bit for bit — across real threads";
  EXPECT_EQ(a.virt_makespan_ms, b.virt_makespan_ms);
  EXPECT_EQ(a.session_virt_ms, b.session_virt_ms);
  EXPECT_NE(a.transcript_digest, c.transcript_digest)
      << "the digest actually depends on the schedule";
}

// ---------------------------------------------------------------------------
// Staged engine end-to-end: real worlds, staged WebExtension sessions

struct StagedGatewayRun {
  SessionEngine::StagedReport report;
  int unverified_accepts = 0;
  int wrong_bodies = 0;
};

/// run_gateway's staged twin: one WebExtension + StagedAttestation per
/// session live across stages (per-index slots), tracks map sessions to
/// their world so one world is never driven from two lanes at once. Each
/// stage binds the world clock and reports its clock delta as the park
/// interval — the engine never sees the world internals.
StagedGatewayRun run_gateway_staged(
    SessionEngine& engine, std::vector<std::unique_ptr<GatewayWorld>>& worlds,
    std::size_t sessions, int retry_attempts,
    const AdmissionConfig& admission = {}) {
  struct Slot {
    std::unique_ptr<WebExtension> ext;
    std::unique_ptr<WebExtension::StagedAttestation> staged;
  };
  std::vector<Slot> slots(sessions);
  std::atomic<int> unverified{0};
  std::atomic<int> wrong_body{0};

  StagedGatewayRun out;
  out.report = engine.run_staged(
      sessions,
      [&](StagedContext& ctx) -> SessionState {
        GatewayWorld& world = *worlds[ctx.index % worlds.size()];
        std::lock_guard<std::mutex> world_lock(world.mu);
        ScopedClockCurrent clock_scope(world.clock);
        const double virt_start = world.clock.now_ms();
        Slot& slot = slots[ctx.index];
        const auto finish = [&](SessionState next) {
          ctx.stage_virt_ms = world.clock.now_ms() - virt_start;
          return next;
        };
        const auto fail = [&](Error error) {
          ctx.failure = std::move(error);
          return finish(SessionState::kFailed);
        };

        switch (ctx.state) {
          case SessionState::kHandshake: {
            world.browser.drop_session(kDomain);
            WebExtensionConfig config;
            config.kds_address = {kKdsPrimary, 443};
            config.kds_mirrors = {{kKdsMirror, 443}};
            config.retry.max_attempts = retry_attempts;
            config.shared_chain_cache = ctx.chain_cache;
            config.shared_vcek_cache = ctx.vcek_cache;
            slot.ext = std::make_unique<WebExtension>(world.browser, config);
            slot.ext->register_site(kDomain, world.registration());
            slot.staged = std::make_unique<WebExtension::StagedAttestation>(
                slot.ext->begin_session(kDomain, 443));
            auto st = slot.staged->handshake();
            if (!st.ok()) return fail(st.error());
            return finish(SessionState::kEvidenceFetch);
          }
          case SessionState::kEvidenceFetch: {
            auto st = slot.staged->fetch_evidence();
            if (!st.ok()) return fail(st.error());
            return finish(SessionState::kKdsFetch);
          }
          case SessionState::kKdsFetch: {
            auto st = slot.staged->fetch_kds();
            if (!st.ok()) return fail(st.error());
            return finish(SessionState::kVerify);
          }
          case SessionState::kVerify: {
            auto st = slot.staged->verify();
            if (!st.ok()) return fail(st.error());
            return finish(SessionState::kPageFetch);
          }
          case SessionState::kPageFetch: {
            auto page = slot.staged->fetch_page("/");
            if (!page.ok()) return fail(page.error());
            // Fail-closed audit: a served page without fully green checks
            // is an unverified-trust acceptance.
            if (!slot.staged->checks().all_ok()) {
              unverified.fetch_add(1);
              return fail(Error::make("test.unverified_trust_accepted"));
            }
            if (to_string(page->body) != kBody) {
              wrong_body.fetch_add(1);
              return fail(Error::make("test.body_mismatch"));
            }
            return finish(SessionState::kDone);
          }
          default:
            return fail(Error::make("test.unexpected_state"));
        }
      },
      admission, [&](std::size_t i) { return i % worlds.size(); });
  out.unverified_accepts = unverified.load();
  out.wrong_bodies = wrong_body.load();
  return out;
}

TEST(StagedGatewayEndToEnd, StagedSessionsShareCachesAndFetchKdsOnce) {
  SessionEngineConfig config;
  config.workers = 4;
  SessionEngine engine(config);
  auto worlds = build_worlds(4, "gw-staged-1");
  for (auto& world : worlds) {
    world->browser.set_chain_cache(&engine.chain_cache());
  }

  const StagedGatewayRun run = run_gateway_staged(engine, worlds, 16, 1);

  EXPECT_EQ(run.report.sessions, 16u);
  EXPECT_EQ(run.report.succeeded, 16u)
      << "fault-free staged run must be all green";
  EXPECT_EQ(run.unverified_accepts, 0);
  EXPECT_EQ(run.wrong_bodies, 0);
  for (const auto state : run.report.final_states) {
    EXPECT_EQ(state, SessionState::kDone);
  }

  // The staged path preserves the caching story: one KDS round trip total.
  const auto vcek = run.report.vcek_stats;
  EXPECT_EQ(vcek.fetches, 1u);
  EXPECT_EQ(vcek.hits + vcek.coalesced, 15u);
  EXPECT_EQ(vcek.failures, 0u);

  EXPECT_GT(run.report.virt_makespan_ms, 0.0);
  // Sessions genuinely overlap: total session-time exceeds the makespan.
  double total = 0.0;
  for (const double v : run.report.session_virt_ms) total += v;
  EXPECT_GT(total, run.report.virt_makespan_ms);
  EXPECT_GT(run.report.wait_virt_ms, 0.0)
      << "network round trips were observed as virtual waits";
}

TEST(StagedGatewayEndToEnd, ChaosSoakNeverAcceptsUnverifiedTrustWhileParked) {
  SessionEngineConfig config;
  config.workers = 4;
  SessionEngine engine(config);
  auto worlds = build_worlds(4, "gw-staged-chaos-1");
  for (auto& world : worlds) {
    world->browser.set_chain_cache(&engine.chain_cache());
    net::LinkFaultProfile lossy;
    lossy.drop_prob = 0.12;
    lossy.delay_prob = 0.2;
    lossy.delay_min_ms = 1.0;
    lossy.delay_max_ms = 8.0;
    lossy.duplicate_prob = 0.05;
    net::FaultPlan plan(to_bytes(std::string_view("gw-staged-chaos-plan")));
    plan.set_default_profile(lossy);
    world->network.set_fault_plan(std::move(plan));
  }
  AdmissionConfig admission;
  admission.max_inflight_kds = 8;

  const StagedGatewayRun run =
      run_gateway_staged(engine, worlds, 24, 5, admission);

  EXPECT_EQ(run.report.sessions, 24u);
  EXPECT_EQ(run.report.succeeded + run.report.failed, 24u);
  EXPECT_EQ(run.unverified_accepts, 0);
  EXPECT_EQ(run.wrong_bodies, 0);
  EXPECT_GT(run.report.succeeded, 0u)
      << "retries must carry some sessions through the chaos";
  for (std::size_t i = 0; i < 24; ++i) {
    const auto& st = run.report.outcomes[i];
    if (!st.ok()) {
      EXPECT_NE(st.error().code, "test.unverified_trust_accepted");
      EXPECT_EQ(run.report.final_states[i], SessionState::kFailed);
    }
  }
  EXPECT_LT(run.report.vcek_stats.fetches, 24u);
}

TEST(StagedGatewayEndToEnd, SameSeedWorldsGiveBitIdenticalTranscripts) {
  // One world => one track: every stage of every session runs in a single
  // deterministic serial order, so even the chaos plan's draws replay
  // exactly. Two fresh same-seed worlds must produce the same digest.
  const auto run_once = [] {
    SessionEngineConfig config;
    config.workers = 2;
    SessionEngine engine(config);
    auto worlds = build_worlds(1, "gw-staged-det-1");
    worlds[0]->browser.set_chain_cache(&engine.chain_cache());
    net::LinkFaultProfile lossy;
    lossy.drop_prob = 0.10;
    lossy.delay_prob = 0.2;
    lossy.delay_min_ms = 1.0;
    lossy.delay_max_ms = 6.0;
    net::FaultPlan plan(to_bytes(std::string_view("gw-staged-det-plan")));
    plan.set_default_profile(lossy);
    worlds[0]->network.set_fault_plan(std::move(plan));
    // Pin the session-start instant. Boot charges measured wall time to
    // the virtual clock (vm::PhaseTimer), and the fault plan keys its
    // draws on absolute virtual time, so two runs replay identically only
    // if their sessions begin at the same t0. Deploy finishes well inside
    // one virtual minute; snapping up to the next minute boundary lands
    // every run on exactly the same instant without rewinding past the
    // certificates issued during provisioning.
    constexpr SimClock::Micros kMinute = 60'000'000;
    auto& clock = worlds[0]->clock;
    clock.advance_us(kMinute - clock.now_us() % kMinute);
    return run_gateway_staged(engine, worlds, 6, 3).report;
  };

  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.transcript_digest, b.transcript_digest);
  EXPECT_EQ(a.session_virt_ms, b.session_virt_ms);
  EXPECT_EQ(a.succeeded, b.succeeded);
  EXPECT_EQ(a.virt_makespan_ms, b.virt_makespan_ms);
}

}  // namespace
}  // namespace revelio::core

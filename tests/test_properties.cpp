// Property-based tests: invariants checked across swept parameter spaces
// (TEST_P / INSTANTIATE_TEST_SUITE_P) and randomized inputs with fixed
// seeds. These complement the per-module example-based suites.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "crypto/drbg.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/ecies.hpp"
#include "crypto/kdf.hpp"
#include "crypto/merkle.hpp"
#include "crypto/modes.hpp"
#include "ic/shamir.hpp"
#include "ic/subnet.hpp"
#include "net/http.hpp"
#include "storage/dm_crypt.hpp"
#include "storage/dm_verity.hpp"
#include "storage/imagefs.hpp"
#include "sevsnp/amd_sp.hpp"
#include "storage/mem_disk.hpp"

namespace revelio {
namespace {

using crypto::HmacDrbg;

// =====================================================================
// Crypto properties
// =====================================================================

// --- Hash avalanche: flipping any single bit changes the digest. ------

class HashAvalanche : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HashAvalanche, SingleBitFlipChangesDigest) {
  Rng rng(GetParam());
  Bytes data = rng.next_bytes(GetParam());
  const auto base = crypto::sha256(data);
  // Sample up to 32 bit positions spread over the buffer.
  const std::size_t bits = data.size() * 8;
  for (std::size_t sample = 0; sample < std::min<std::size_t>(32, bits);
       ++sample) {
    const std::size_t bit = rng.next_below(bits);
    data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(crypto::sha256(data) == base) << "bit " << bit;
    data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
  EXPECT_EQ(crypto::sha256(data), base) << "restoration must round-trip";
}

INSTANTIATE_TEST_SUITE_P(Sizes, HashAvalanche,
                         ::testing::Values(1, 55, 56, 64, 65, 127, 128, 1000));

// --- Streaming == one-shot for every chunking. -------------------------

class HashChunking : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HashChunking, AnyChunkSizeMatchesOneShot) {
  Rng rng(7);
  const Bytes data = rng.next_bytes(777);
  const auto expected = crypto::sha256(data);
  const std::size_t chunk = GetParam();
  crypto::Sha256 h;
  for (std::size_t off = 0; off < data.size(); off += chunk) {
    h.update(ByteView(data).subspan(off, std::min(chunk, data.size() - off)));
  }
  EXPECT_EQ(h.finish(), expected);
}

INSTANTIATE_TEST_SUITE_P(Chunks, HashChunking,
                         ::testing::Values(1, 3, 63, 64, 65, 100, 777));

// --- AES round trip across key sizes. ----------------------------------

class AesKeySizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AesKeySizes, EncryptDecryptIsIdentity) {
  HmacDrbg drbg(to_bytes(std::string_view("aes-prop")));
  const crypto::Aes aes(drbg.generate(GetParam()));
  for (int i = 0; i < 50; ++i) {
    const Bytes pt = drbg.generate(16);
    std::uint8_t ct[16];
    std::uint8_t back[16];
    aes.encrypt_block(pt.data(), ct);
    aes.decrypt_block(ct, back);
    EXPECT_TRUE(ct_equal(ByteView(back, 16), pt));
    EXPECT_FALSE(ct_equal(ByteView(ct, 16), pt)) << "ECB must not be identity";
  }
}

INSTANTIATE_TEST_SUITE_P(KeySizes, AesKeySizes, ::testing::Values(16, 24, 32));

// --- XTS round trip across sector sizes. --------------------------------

class XtsSectorSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(XtsSectorSizes, RoundTripAndTweakSeparation) {
  HmacDrbg drbg(to_bytes(std::string_view("xts-prop")));
  const crypto::AesXts xts(drbg.generate(64));
  const Bytes original = drbg.generate(GetParam());
  Bytes a = original;
  Bytes b = original;
  xts.encrypt_sector(1, a);
  xts.encrypt_sector(2, b);
  EXPECT_NE(a, b);
  xts.decrypt_sector(1, a);
  xts.decrypt_sector(2, b);
  EXPECT_EQ(a, original);
  EXPECT_EQ(b, original);
}

INSTANTIATE_TEST_SUITE_P(Sectors, XtsSectorSizes,
                         ::testing::Values(16, 512, 4096, 16384));

// --- AEAD round trip across payload sizes incl. empty. ------------------

class AeadPayloads : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AeadPayloads, SealOpenRoundTrip) {
  HmacDrbg drbg(to_bytes(std::string_view("aead-prop")));
  const crypto::AeadCtrHmac aead(drbg.generate(64));
  const Bytes pt = drbg.generate(GetParam());
  const Bytes aad = drbg.generate(GetParam() % 32);
  const Bytes sealed = aead.seal(drbg.generate(16), aad, pt);
  auto opened = aead.open(aad, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, pt);
  // Any single-byte corruption is caught.
  if (!sealed.empty()) {
    Rng rng(GetParam() + 1);
    Bytes corrupted = sealed;
    corrupted[rng.next_below(corrupted.size())] ^= 0x20;
    EXPECT_FALSE(aead.open(aad, corrupted).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Payloads, AeadPayloads,
                         ::testing::Values(0, 1, 15, 16, 17, 255, 4096));

// --- KDF output length sweep. -------------------------------------------

class KdfLengths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KdfLengths, HkdfPrefixConsistencyAndLength) {
  const Bytes ikm = to_bytes(std::string_view("input key material"));
  const Bytes salt = to_bytes(std::string_view("salt"));
  const Bytes info = to_bytes(std::string_view("info"));
  const Bytes okm = crypto::hkdf_sha256(ikm, salt, info, GetParam());
  EXPECT_EQ(okm.size(), GetParam());
  // Prefix property: a longer output begins with the shorter one.
  const Bytes longer = crypto::hkdf_sha256(ikm, salt, info, GetParam() + 16);
  EXPECT_TRUE(std::equal(okm.begin(), okm.end(), longer.begin()));
}

INSTANTIATE_TEST_SUITE_P(Lengths, KdfLengths,
                         ::testing::Values(1, 16, 31, 32, 33, 64, 100));

// --- EC group laws on both curves with random scalars. ------------------

class EcGroupLaws : public ::testing::TestWithParam<const crypto::Curve*> {};

TEST_P(EcGroupLaws, AdditionIsCommutativeAndAssociative) {
  const crypto::Curve& curve = *GetParam();
  HmacDrbg drbg(to_bytes(std::string_view("ec-laws")),
                to_bytes(curve.params().name));
  const auto pt = [&](std::uint64_t k) {
    return curve.scalar_mult_base(crypto::U384::from_u64(k));
  };
  const auto a = pt(123456789), b = pt(987654321), c = pt(555555);
  const auto ab = curve.add(a, b);
  const auto ba = curve.add(b, a);
  EXPECT_EQ(ab.x.limbs, ba.x.limbs);
  const auto ab_c = curve.add(ab, c);
  const auto a_bc = curve.add(a, curve.add(b, c));
  EXPECT_EQ(ab_c.x.limbs, a_bc.x.limbs);
  EXPECT_EQ(ab_c.y.limbs, a_bc.y.limbs);
}

TEST_P(EcGroupLaws, ScalarDistributivityRandom) {
  const crypto::Curve& curve = *GetParam();
  HmacDrbg drbg(to_bytes(std::string_view("ec-dist")),
                to_bytes(curve.params().name));
  const auto& fn = curve.scalar_field();
  for (int i = 0; i < 3; ++i) {
    const crypto::U384 a =
        fn.reduce(crypto::U384::from_bytes_be(drbg.generate(48)));
    const crypto::U384 b =
        fn.reduce(crypto::U384::from_bytes_be(drbg.generate(48)));
    const crypto::U384 sum = fn.from_mont(
        fn.add(fn.to_mont(a), fn.to_mont(b)));  // (a+b) mod n
    const auto lhs = curve.scalar_mult_base(sum);
    const auto rhs =
        curve.add(curve.scalar_mult_base(a), curve.scalar_mult_base(b));
    if (lhs.infinity) {
      EXPECT_TRUE(rhs.infinity);
    } else {
      EXPECT_EQ(lhs.x.limbs, rhs.x.limbs);
      EXPECT_EQ(lhs.y.limbs, rhs.y.limbs);
    }
    EXPECT_TRUE(lhs.infinity || curve.on_curve(lhs));
  }
}

TEST_P(EcGroupLaws, NegationViaOrderMinusOne) {
  const crypto::Curve& curve = *GetParam();
  crypto::U384 n_minus_1;
  crypto::sub_with_borrow(n_minus_1, curve.params().n,
                          crypto::U384::from_u64(1));
  const auto minus_g = curve.scalar_mult_base(n_minus_1);
  const auto g = curve.generator();
  EXPECT_EQ(minus_g.x.limbs, g.x.limbs) << "-G has the same x";
  // G + (-G) == infinity.
  EXPECT_TRUE(curve.add(g, minus_g).infinity);
}

INSTANTIATE_TEST_SUITE_P(Curves, EcGroupLaws,
                         ::testing::Values(&crypto::p256(), &crypto::p384()),
                         [](const auto& info) {
                           return info.param->params().name == "P-256"
                                      ? std::string("P256")
                                      : std::string("P384");
                         });

// --- ECIES round trip across payload sizes. ------------------------------

class EciesPayloads : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EciesPayloads, SealOpenRoundTrip) {
  HmacDrbg drbg(to_bytes(std::string_view("ecies-prop")));
  const auto recipient = crypto::ec_generate(crypto::p256(), drbg);
  const Bytes pt = drbg.generate(GetParam());
  auto sealed = crypto::ecies_seal(
      crypto::p256(), recipient.public_encoded(crypto::p256()), pt, drbg);
  ASSERT_TRUE(sealed.ok());
  auto opened = crypto::ecies_open(crypto::p256(), recipient.d, *sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, pt);
  // The wrong recipient cannot open.
  const auto other = crypto::ec_generate(crypto::p256(), drbg);
  EXPECT_FALSE(crypto::ecies_open(crypto::p256(), other.d, *sealed).ok());
}

INSTANTIATE_TEST_SUITE_P(Payloads, EciesPayloads,
                         ::testing::Values(0, 32, 100, 1000));

// --- Merkle trees across leaf counts. ------------------------------------

class MerkleLeafCounts : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleLeafCounts, EveryLeafProvesAndNoCrossProofs) {
  const std::size_t leaves = GetParam();
  Rng rng(leaves);
  Bytes data = rng.next_bytes(leaves * 64);
  const auto tree = crypto::MerkleTree::from_blocks(data, 64);
  ASSERT_EQ(tree.leaf_count(), leaves);
  for (std::size_t i = 0; i < leaves; ++i) {
    const auto leaf =
        crypto::MerkleTree::hash_leaf(ByteView(data).subspan(i * 64, 64));
    EXPECT_TRUE(crypto::MerkleTree::verify_path(leaf, i, tree.path(i), leaves,
                                                tree.root()));
    // The proof for leaf i must not validate any other index.
    const std::size_t other = (i + 1) % leaves;
    if (other != i) {
      EXPECT_FALSE(crypto::MerkleTree::verify_path(
          leaf, other, tree.path(i), leaves, tree.root()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(LeafCounts, MerkleLeafCounts,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 33));

// --- U384 ring laws with random values. -----------------------------------

TEST(U384Properties, AddSubRoundTripRandom) {
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const crypto::U384 a = crypto::U384::from_bytes_be(rng.next_bytes(48));
    const crypto::U384 b = crypto::U384::from_bytes_be(rng.next_bytes(48));
    crypto::U384 sum, back;
    const std::uint64_t carry = crypto::add_with_carry(sum, a, b);
    const std::uint64_t borrow = crypto::sub_with_borrow(back, sum, b);
    // (a + b) - b == a modulo 2^384; carry and borrow must agree.
    EXPECT_EQ(back.limbs, a.limbs);
    EXPECT_EQ(carry, borrow);
  }
}

TEST(U384Properties, MontgomeryMatchesSchoolbookSmall) {
  // Cross-check Montgomery arithmetic against 128-bit native arithmetic
  // for random 32-bit operands under random 61-bit odd moduli.
  Rng rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t m = (rng.next_u64() >> 3) | 1;
    if (m < 3) continue;
    const crypto::MontCtx ctx(crypto::U384::from_u64(m));
    const std::uint64_t a = rng.next_u64() % m;
    const std::uint64_t b = rng.next_u64() % m;
    const auto product = ctx.from_mont(
        ctx.mul(ctx.to_mont(crypto::U384::from_u64(a)),
                ctx.to_mont(crypto::U384::from_u64(b))));
    const auto expected = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(a) * b) % m);
    EXPECT_EQ(product.limbs[0], expected) << "m=" << m;
  }
}

// =====================================================================
// Storage properties
// =====================================================================

// --- dm-crypt behaves exactly like a plain device (shadow model). ---------

TEST(CryptShadowModel, RandomOpsMatchShadow) {
  auto disk = std::make_shared<storage::MemDisk>(512, 64);
  HmacDrbg drbg(to_bytes(std::string_view("shadow")));
  auto device = *storage::CryptVolume::format(disk, drbg.generate(32),
                                              drbg.generate(32));
  std::map<std::uint64_t, Bytes> shadow;
  Rng rng(42);
  for (int op = 0; op < 500; ++op) {
    const std::uint64_t block = rng.next_below(device->block_count());
    if (rng.next_below(2) == 0) {
      const Bytes data = rng.next_bytes(512);
      ASSERT_TRUE(device->write_block(block, data).ok());
      shadow[block] = data;
    } else {
      Bytes out(512);
      ASSERT_TRUE(device->read_block(block, out).ok());
      const auto it = shadow.find(block);
      if (it != shadow.end()) {
        EXPECT_EQ(out, it->second) << "block " << block;
      }
    }
  }
}

// --- verity detects corruption at every byte region. ----------------------

class VerityCorruptionOffsets : public ::testing::TestWithParam<double> {};

TEST_P(VerityCorruptionOffsets, CorruptionAnywhereIsDetected) {
  auto data_dev = std::make_shared<storage::MemDisk>(4096, 8);
  auto hash_dev = std::make_shared<storage::MemDisk>(4096, 16);
  Rng rng(5);
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(data_dev->write_block(i, rng.next_bytes(4096)).ok());
  }
  auto meta = storage::Verity::format(*data_dev, *hash_dev);
  ASSERT_TRUE(meta.ok());
  auto device = storage::Verity::open(data_dev, hash_dev, meta->root_hash);
  ASSERT_TRUE(device.ok());

  const auto offset = static_cast<std::uint64_t>(
      GetParam() * static_cast<double>(data_dev->size_bytes() - 1));
  data_dev->raw_tamper(offset, 0x01);
  EXPECT_FALSE((*device)->verify_all().ok())
      << "corruption at byte " << offset << " must be detected";
}

INSTANTIATE_TEST_SUITE_P(Offsets, VerityCorruptionOffsets,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.99));

// --- imagefs round trip with random file sets. ----------------------------

class ImageFsRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ImageFsRandom, SerializeParsePreservesEverything) {
  Rng rng(GetParam());
  storage::ImageFs fs;
  std::map<std::string, Bytes> model;
  const std::size_t file_count = 1 + rng.next_below(20);
  for (std::size_t i = 0; i < file_count; ++i) {
    const std::string path = "/f/" + std::to_string(rng.next_u64() % 1000);
    const Bytes content = rng.next_bytes(rng.next_below(10000));
    fs.add_file(path, content);
    model[path] = content;
  }
  auto parsed = storage::ImageFs::parse(fs.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->file_count(), model.size());
  for (const auto& [path, content] : model) {
    auto read = parsed->read_file(path);
    ASSERT_TRUE(read.ok()) << path;
    EXPECT_EQ(*read, content);
  }
  // Canonicity: the parsed filesystem reserializes to identical bytes.
  EXPECT_EQ(parsed->serialize(), fs.serialize());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImageFsRandom,
                         ::testing::Values(1, 2, 3, 4, 5));

// =====================================================================
// Protocol properties
// =====================================================================

// --- HTTP framing round trip with random contents. -------------------------

class HttpRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HttpRandom, RequestResponseRoundTrip) {
  Rng rng(GetParam());
  net::HttpRequest request;
  request.method = rng.next_below(2) ? "GET" : "POST";
  request.path = "/p" + std::to_string(rng.next_u64());
  request.host = "h" + std::to_string(rng.next_u64());
  const std::size_t header_count = rng.next_below(10);
  for (std::size_t i = 0; i < header_count; ++i) {
    request.headers["h" + std::to_string(i)] =
        std::string(rng.next_below(50), 'x');
  }
  request.body = rng.next_bytes(rng.next_below(5000));
  auto parsed = net::HttpRequest::parse(request.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->method, request.method);
  EXPECT_EQ(parsed->path, request.path);
  EXPECT_EQ(parsed->headers, request.headers);
  EXPECT_EQ(parsed->body, request.body);

  net::HttpResponse response;
  response.status = 100 + static_cast<int>(rng.next_below(500));
  response.body = rng.next_bytes(rng.next_below(5000));
  auto parsed_response = net::HttpResponse::parse(response.serialize());
  ASSERT_TRUE(parsed_response.ok());
  EXPECT_EQ(parsed_response->status, response.status);
  EXPECT_EQ(parsed_response->body, response.body);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HttpRandom, ::testing::Range<std::uint64_t>(0, 8));

// --- Shamir: threshold boundary across (t, n) pairs. ------------------------

struct ShamirParams {
  std::uint32_t threshold;
  std::uint32_t shares;
};

class ShamirSweep : public ::testing::TestWithParam<ShamirParams> {};

TEST_P(ShamirSweep, ExactlyThresholdSharesRecover) {
  const auto [t, n] = GetParam();
  HmacDrbg drbg(to_bytes(std::string_view("shamir-sweep")));
  const crypto::U384 secret = crypto::p256().scalar_field().reduce(
      crypto::U384::from_bytes_be(drbg.generate(48)));
  auto shares = ic::shamir_split(secret, t, n, drbg);
  ASSERT_TRUE(shares.ok());

  // t shares recover.
  std::vector<ic::SecretShare> subset(shares->begin(), shares->begin() + t);
  EXPECT_EQ(*ic::shamir_recover(subset), secret);
  // t-1 shares do not (overwhelmingly).
  if (t > 1) {
    subset.pop_back();
    EXPECT_FALSE(*ic::shamir_recover(subset) == secret);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Thresholds, ShamirSweep,
    ::testing::Values(ShamirParams{1, 1}, ShamirParams{2, 3},
                      ShamirParams{3, 5}, ShamirParams{5, 7},
                      ShamirParams{7, 10}));

// --- Subnet fault tolerance across f. ---------------------------------------

class SubnetFaults : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SubnetFaults, ExactlyFFaultsMaskedFPlusOneNot) {
  const std::uint32_t f = GetParam();
  HmacDrbg drbg(to_bytes(std::string_view("subnet-sweep")));
  ic::Subnet subnet(f, drbg);
  subnet.install_canister("kv", ic::KeyValueCanister{});
  ASSERT_EQ(subnet.replica_count(), 3 * f + 1);

  // f corrupt replicas: still certifies and verifies.
  for (std::uint32_t i = 0; i < f; ++i) {
    subnet.set_byzantine(i, ic::ByzantineMode::kCorruptExecution);
  }
  Bytes arg = to_bytes(std::string_view("k"));
  arg.push_back(0);
  append(arg, std::string_view("v"));
  auto ok = subnet.update("kv", "set", arg);
  ASSERT_TRUE(ok.ok()) << "f=" << f << " faults must be masked";
  EXPECT_TRUE(ic::verify_certificate(ok->certificate, ok->reply,
                                     subnet.public_keys(), subnet.threshold())
                  .ok());

  // f+1 faults: certification must fail (never a bogus certificate).
  subnet.set_byzantine(f, ic::ByzantineMode::kSilent);
  auto broken = subnet.update("kv", "set", arg);
  EXPECT_FALSE(broken.ok()) << "f+1 faults must not certify";
}

INSTANTIATE_TEST_SUITE_P(FaultBudgets, SubnetFaults, ::testing::Values(1, 2));

// --- Sealing keys: uniqueness across (platform, image) grid. ----------------

TEST(SealingKeyProperties, DistinctAcrossPlatformAndImage) {
  std::vector<Bytes> keys;
  for (const char* platform_seed : {"plat-1", "plat-2", "plat-3"}) {
    for (const char* image : {"image-a", "image-b"}) {
      sevsnp::AmdSp sp(to_bytes(std::string_view(platform_seed)),
                       sevsnp::TcbVersion{2, 0, 8, 115});
      EXPECT_TRUE(sp.launch_start(0).ok());
      EXPECT_TRUE(sp.launch_update(to_bytes(std::string_view(image))).ok());
      EXPECT_TRUE(sp.launch_finish().ok());
      sevsnp::KeyDerivationPolicy policy;
      policy.context = "disk";
      keys.push_back(*sp.derive_key(policy));
    }
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    for (std::size_t j = i + 1; j < keys.size(); ++j) {
      EXPECT_NE(keys[i], keys[j]) << i << " vs " << j;
    }
  }
}

}  // namespace
}  // namespace revelio

// Durable state tier (PR 9): the append-only KV engine under every fault
// the seeded storage backend can produce, plus the consumers wired on top
// of it — the durable audit chain, the revocation set, and the
// warm-restart read-through of the VCEK / chain-verification caches.
//
// The centerpiece is the crash matrix: every single byte offset of a
// scripted workload becomes a kill point, and after recovery the store
// must hold exactly what it acked — zero lost acked writes, zero
// resurrected deleted keys — or refuse to open at all. The same matrix
// runs with the duplicate-tail fault armed. A post-recovery gateway soak
// then proves the trust decisions stay fail-closed on top of a recovered
// store: revocations survive, tampered frames are caught, and the
// persisted audit chain re-verifies end to end.
#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "imagebuild/builder.hpp"
#include "obs/audit_store.hpp"
#include "pki/ca.hpp"
#include "pki/chain_cache.hpp"
#include "revelio/revelio_vm.hpp"
#include "revelio/revocation.hpp"
#include "revelio/sp_node.hpp"
#include "revelio/vcek_cache.hpp"
#include "revelio/web_extension.hpp"
#include "store/crc32c.hpp"
#include "store/kv_store.hpp"
#include "store/storage_env.hpp"

namespace revelio {
namespace {

using store::FaultPlan;
using store::KvStore;
using store::KvStoreOptions;
using store::MemStorageEnv;

Bytes B(std::string_view s) { return to_bytes(s); }

std::unique_ptr<KvStore> must_open(MemStorageEnv& env,
                                   KvStoreOptions opts = {}) {
  auto kv = KvStore::open(env, opts);
  EXPECT_TRUE(kv.ok()) << (kv.ok() ? "" : kv.error().to_string());
  return kv.ok() ? std::move(*kv) : nullptr;
}

// ------------------------------------------------------------ KV basics

TEST(KvStore, PutGetEraseSurviveReopen) {
  MemStorageEnv env;
  {
    auto kv = must_open(env);
    ASSERT_TRUE(kv);
    ASSERT_TRUE(kv->put(B("alpha"), B("1")).ok());
    ASSERT_TRUE(kv->put(B("beta"), B("2")).ok());
    ASSERT_TRUE(kv->put(B("alpha"), B("3")).ok());  // overwrite
    ASSERT_TRUE(kv->erase(B("beta")).ok());
    EXPECT_EQ(kv->size(), 1u);
    ASSERT_TRUE(kv->get(B("alpha")).has_value());
    EXPECT_EQ(*kv->get(B("alpha")), B("3"));
    EXPECT_FALSE(kv->get(B("beta")).has_value());
  }
  // Reopen replays the WAL: same state, no truncation, no corruption.
  auto kv = must_open(env);
  ASSERT_TRUE(kv);
  EXPECT_EQ(kv->size(), 1u);
  EXPECT_EQ(*kv->get(B("alpha")), B("3"));
  EXPECT_FALSE(kv->recovery().truncated_tail);
  EXPECT_EQ(kv->recovery().wal_frames_replayed, 4u);
}

TEST(KvStore, ForEachPrefixVisitsInLexicographicOrder) {
  MemStorageEnv env;
  auto kv = must_open(env);
  ASSERT_TRUE(kv);
  ASSERT_TRUE(kv->put(B("a/2"), B("x")).ok());
  ASSERT_TRUE(kv->put(B("a/1"), B("y")).ok());
  ASSERT_TRUE(kv->put(B("b/1"), B("z")).ok());
  std::vector<std::string> seen;
  kv->for_each_prefix(B("a/"), [&](ByteView key, ByteView) {
    seen.push_back(to_string(key));
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "a/1");
  EXPECT_EQ(seen[1], "a/2");
}

TEST(KvStore, CompactionPreservesStateAndCollectsGarbage) {
  MemStorageEnv env;
  auto kv = must_open(env);
  ASSERT_TRUE(kv);
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(kv->put(B("key" + std::to_string(i % 4)),
                        B("v" + std::to_string(i)))
                    .ok());
  }
  ASSERT_TRUE(kv->erase(B("key3")).ok());
  const uint64_t gen_before = kv->recovery().generation;
  ASSERT_TRUE(kv->compact().ok());
  EXPECT_EQ(kv->stats().compactions, 1u);
  EXPECT_EQ(kv->size(), 3u);
  EXPECT_EQ(*kv->get(B("key0")), B("v28"));

  // Old generation's files are gone, the new snapshot + empty WAL exist.
  EXPECT_FALSE(env.exists(KvStore::wal_name(gen_before)));
  kv.reset();
  auto re = must_open(env);
  ASSERT_TRUE(re);
  EXPECT_EQ(re->recovery().generation, gen_before + 1);
  EXPECT_EQ(re->recovery().snapshot_keys, 3u);
  EXPECT_EQ(*re->get(B("key2")), B("v30"));
  EXPECT_FALSE(re->get(B("key3")).has_value());
}

TEST(KvStore, AutoCompactionKicksInAtThreshold) {
  MemStorageEnv env;
  KvStoreOptions opts;
  opts.compact_threshold_bytes = 256;
  auto kv = must_open(env, opts);
  ASSERT_TRUE(kv);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(kv->put(B("hot"), B(std::string(24, 'x'))).ok());
  }
  EXPECT_GE(kv->stats().compactions, 1u);
  EXPECT_EQ(kv->size(), 1u);
  // The live WAL stayed bounded instead of growing with every overwrite.
  EXPECT_LT(kv->stats().wal_bytes, 256u + 64u);
}

// ----------------------------------------------------- fault injection

TEST(KvStore, TransientAppendFailureIsRetryableAndDoesNotWedge) {
  MemStorageEnv env;
  auto kv = must_open(env);
  ASSERT_TRUE(kv);
  FaultPlan plan;
  plan.fail_appends = 2;
  env.set_fault_plan(plan);

  const Status first = kv->put(B("k"), B("v"));
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.error().code, "store.io_transient");
  EXPECT_TRUE(first.error().is_transient()) << "retry must be allowed";
  const Status second = kv->put(B("k"), B("v"));
  ASSERT_FALSE(second.ok());

  // Third attempt: the fault budget is spent, the store never wedged.
  ASSERT_TRUE(kv->put(B("k"), B("v")).ok());
  EXPECT_EQ(*kv->get(B("k")), B("v"));
}

TEST(KvStore, CrashWedgesStoreUntilReopen) {
  MemStorageEnv env;
  auto kv = must_open(env);
  ASSERT_TRUE(kv);
  ASSERT_TRUE(kv->put(B("durable"), B("yes")).ok());

  FaultPlan plan;
  plan.crash_at_bytes =
      static_cast<int64_t>(env.bytes_appended()) + 5;  // mid-frame
  env.set_fault_plan(plan);
  const Status torn = kv->put(B("torn"), B("write"));
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.error().code, "store.io_crashed");
  EXPECT_FALSE(torn.error().is_transient());

  // Every further mutation is refused: the WAL tail state is unknown.
  EXPECT_FALSE(kv->put(B("x"), B("y")).ok());
  EXPECT_FALSE(kv->erase(B("durable")).ok());

  kv.reset();
  env.crash_and_recover();
  // The torn bytes were never synced, so the reboot discards them: the
  // durable WAL ends cleanly at the last acked frame. (A *durable* torn
  // tail — a partial write that reached the platter — is produced by the
  // duplicate-tail fault and the flip matrix below.)
  auto re = must_open(env);
  ASSERT_TRUE(re);
  EXPECT_EQ(*re->get(B("durable")), B("yes"));
  EXPECT_FALSE(re->get(B("torn")).has_value()) << "unacked write gone";
}

TEST(KvStore, DropSyncCrashLosesTailButRecoversConsistently) {
  MemStorageEnv env;
  auto kv = must_open(env);
  ASSERT_TRUE(kv);
  ASSERT_TRUE(kv->put(B("before"), B("fault")).ok());

  FaultPlan plan;
  plan.drop_sync = true;  // the device lies about every barrier from here
  env.set_fault_plan(plan);
  ASSERT_TRUE(kv->put(B("lied"), B("1")).ok());
  ASSERT_TRUE(kv->erase(B("before")).ok());

  kv.reset();
  env.crash_and_recover();
  // The betrayed acks are gone — that is the fault model, not a store bug.
  // What the store must still guarantee: recovery succeeds and lands on a
  // consistent prefix of the acked history.
  auto re = must_open(env);
  ASSERT_TRUE(re);
  EXPECT_EQ(*re->get(B("before")), B("fault"));
  EXPECT_FALSE(re->get(B("lied")).has_value());
}

// -------------------------------------------------- fail-closed opens

TEST(KvStore, MissingManifestWithDataFilesFailsClosed) {
  MemStorageEnv env;
  {
    auto kv = must_open(env);
    ASSERT_TRUE(kv);
    ASSERT_TRUE(kv->put(B("k"), B("v")).ok());
  }
  ASSERT_TRUE(env.remove_file(KvStore::kManifestName).ok());
  auto reopened = KvStore::open(env);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.error().code, "store.manifest_mismatch");
}

TEST(KvStore, EveryManifestByteFlipFailsClosed) {
  // The manifest is exactly 20 bytes; a flip anywhere (magic, generation,
  // CRC) must refuse the open — never point at the wrong generation.
  for (size_t pos = 0; pos < 20; ++pos) {
    MemStorageEnv env;
    {
      auto kv = must_open(env);
      ASSERT_TRUE(kv);
      ASSERT_TRUE(kv->put(B("k"), B("v")).ok());
    }
    ASSERT_TRUE(env.corrupt_durable_byte(KvStore::kManifestName, pos));
    auto reopened = KvStore::open(env);
    ASSERT_FALSE(reopened.ok()) << "manifest flip at " << pos;
    EXPECT_EQ(reopened.error().code, "store.manifest_mismatch")
        << "manifest flip at " << pos;
  }
}

TEST(KvStore, EverySnapshotByteFlipFailsClosed) {
  MemStorageEnv env;
  uint64_t gen = 0;
  {
    auto kv = must_open(env);
    ASSERT_TRUE(kv);
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(
          kv->put(B("key" + std::to_string(i)), B("value")).ok());
    }
    ASSERT_TRUE(kv->compact().ok());
    // compact() bumps the on-disk generation past what open() recorded.
    gen = kv->recovery().generation + 1;
  }
  ASSERT_TRUE(env.exists(KvStore::snap_name(gen)));
  const auto snap = env.read_file(KvStore::snap_name(gen));
  ASSERT_TRUE(snap.ok());
  for (size_t pos = 0; pos < snap->size(); ++pos) {
    MemStorageEnv trial;
    {
      auto kv = must_open(trial);
      ASSERT_TRUE(kv);
      for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(
            kv->put(B("key" + std::to_string(i)), B("value")).ok());
      }
      ASSERT_TRUE(kv->compact().ok());
    }
    ASSERT_TRUE(trial.corrupt_durable_byte(KvStore::snap_name(gen), pos));
    auto reopened = KvStore::open(trial);
    ASSERT_FALSE(reopened.ok()) << "snapshot flip at " << pos;
    EXPECT_EQ(reopened.error().code, "store.corrupt")
        << "snapshot flip at " << pos;
  }
}

TEST(KvStore, MidLogByteFlipFailsClosedTailFlipRecoversPrefix) {
  // Build a reference WAL once to learn its layout.
  const auto build = [](MemStorageEnv& env) {
    auto kv = must_open(env);
    ASSERT_TRUE(kv);
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(kv->put(B("key" + std::to_string(i)),
                          B("value" + std::to_string(i)))
                      .ok());
    }
  };
  MemStorageEnv ref;
  build(ref);
  const auto wal = ref.read_file(KvStore::wal_name(1));
  ASSERT_TRUE(wal.ok());
  // Each frame: 8-byte header + payload(op + klen + key + vlen + val).
  const size_t frame = 8 + 1 + 4 + 4 + 4 + 6;
  ASSERT_EQ(wal->size(), 6 * frame);
  const size_t last_frame_start = wal->size() - frame;

  for (size_t pos = 0; pos < wal->size(); ++pos) {
    MemStorageEnv trial;
    build(trial);
    ASSERT_TRUE(trial.corrupt_durable_byte(KvStore::wal_name(1), pos));
    auto reopened = KvStore::open(trial);
    if (pos < last_frame_start) {
      // Interior damage: intact frames exist beyond it, so this is bit
      // rot / tampering, never a torn tail. Fail closed.
      ASSERT_FALSE(reopened.ok()) << "WAL flip at " << pos;
      EXPECT_EQ(reopened.error().code, "store.corrupt")
          << "WAL flip at " << pos;
    } else {
      // Damage to the final frame is indistinguishable from a crash torn
      // write; the store recovers the verified prefix (5 intact writes)
      // and drops only the damaged tail. CRC guarantees it can never
      // serve a damaged value.
      ASSERT_TRUE(reopened.ok()) << "tail flip at " << pos << ": "
                                 << reopened.error().to_string();
      EXPECT_TRUE((*reopened)->recovery().truncated_tail);
      EXPECT_EQ((*reopened)->size(), 5u);
      EXPECT_EQ(*(*reopened)->get(B("key4")), B("value4"));
    }
  }
}

// -------------------------------------------------------- crash matrix

/// The scripted workload for the crash matrix: interleaved puts,
/// overwrites and erases over a small key set. Returns how many ops were
/// acked before the crash point fired; `model` tracks the acked state.
size_t run_workload(KvStore& kv, std::map<Bytes, Bytes>& model) {
  size_t acked = 0;
  for (int i = 0; i < 12; ++i) {
    const Bytes key = B("k" + std::to_string(i % 4));
    if (i % 5 == 3) {
      if (kv.erase(key).ok()) {
        model.erase(key);
        ++acked;
      } else {
        return acked;
      }
    } else {
      const Bytes value = B("v" + std::to_string(i));
      if (kv.put(key, value).ok()) {
        model[key] = value;
        ++acked;
      } else {
        return acked;
      }
    }
  }
  return acked;
}

/// One matrix cell: kill the world after `kill_at` appended bytes, then
/// recover and demand exactly the acked state back.
void run_crash_cell(int64_t kill_at, bool duplicate_tail) {
  MemStorageEnv env;
  FaultPlan plan;
  plan.crash_at_bytes = kill_at;
  plan.duplicate_tail = duplicate_tail;
  env.set_fault_plan(plan);

  std::map<Bytes, Bytes> model;
  size_t acked = 0;
  {
    auto kv = KvStore::open(env);
    if (!kv.ok()) {
      // The kill point fired during open (manifest/WAL creation): nothing
      // was ever acked, so an empty store after reboot is correct.
      ASSERT_EQ(kv.error().code, "store.io_crashed")
          << kv.error().to_string();
    } else {
      acked = run_workload(**kv, model);
    }
  }

  env.crash_and_recover();
  auto revived = KvStore::open(env);
  ASSERT_TRUE(revived.ok()) << "kill@" << kill_at
                            << (duplicate_tail ? "+dup" : "") << ": "
                            << revived.error().to_string();

  // Zero lost acked writes, zero resurrected deleted keys, nothing extra.
  EXPECT_EQ((*revived)->size(), model.size())
      << "kill@" << kill_at << " acked=" << acked;
  for (const auto& [key, value] : model) {
    const auto got = (*revived)->get(key);
    ASSERT_TRUE(got.has_value())
        << "kill@" << kill_at << ": lost acked key " << to_string(key);
    EXPECT_EQ(*got, value) << "kill@" << kill_at;
  }
  for (int i = 0; i < 4; ++i) {
    const Bytes key = B("k" + std::to_string(i));
    if (model.count(key) == 0) {
      EXPECT_FALSE((*revived)->get(key).has_value())
          << "kill@" << kill_at << ": resurrected " << to_string(key);
    }
  }
}

TEST(KvStoreCrashMatrix, EveryByteOffsetKillPointLosesNothingAcked) {
  // Size the matrix: run the workload once with no faults and count bytes.
  MemStorageEnv sizing;
  std::map<Bytes, Bytes> model;
  {
    auto kv = must_open(sizing);
    ASSERT_TRUE(kv);
    ASSERT_EQ(run_workload(*kv, model), 12u);
  }
  const int64_t total = static_cast<int64_t>(sizing.bytes_appended());
  ASSERT_GT(total, 0);

  // Every byte offset, 0..total inclusive: kills inside the manifest
  // write, inside every WAL frame header, every payload byte, and at
  // every frame boundary.
  for (int64_t kill = 0; kill <= total; ++kill) {
    run_crash_cell(kill, /*duplicate_tail=*/false);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "matrix stopped at kill point " << kill;
    }
  }
}

TEST(KvStoreCrashMatrix, DuplicateTailReplayIsIdempotent) {
  MemStorageEnv sizing;
  std::map<Bytes, Bytes> model;
  {
    auto kv = must_open(sizing);
    ASSERT_TRUE(kv);
    ASSERT_EQ(run_workload(*kv, model), 12u);
  }
  const int64_t total = static_cast<int64_t>(sizing.bytes_appended());
  for (int64_t kill = 0; kill <= total; ++kill) {
    run_crash_cell(kill, /*duplicate_tail=*/true);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "dup-tail matrix stopped at kill point " << kill;
    }
  }
}

// --------------------------------------------------- revocation tier

TEST(RevocationSet, PersistsAcrossReopen) {
  MemStorageEnv env;
  sevsnp::Measurement m = sevsnp::Measurement::from(Bytes(48, 0xaa));
  sevsnp::ChipId chip = sevsnp::ChipId::from(Bytes(64, 0xbb));
  crypto::Digest32 vcek_fp = crypto::sha256(B("some-vcek-der"));
  {
    auto kv = must_open(env);
    ASSERT_TRUE(kv);
    auto set = RevocationSet::open(*kv);
    ASSERT_TRUE(set.ok());
    ASSERT_TRUE((*set)->revoke_measurement(m, "CVE").ok());
    ASSERT_TRUE((*set)->revoke_chip(chip, "leaked").ok());
    ASSERT_TRUE((*set)->revoke_vcek(vcek_fp, "amd-crl").ok());
    EXPECT_EQ((*set)->size(), 3u);
  }
  env.crash_and_recover();  // revocations must survive a hard reboot
  auto kv = must_open(env);
  ASSERT_TRUE(kv);
  auto set = RevocationSet::open(*kv);
  ASSERT_TRUE(set.ok()) << set.error().to_string();
  EXPECT_EQ((*set)->size(), 3u);
  EXPECT_TRUE((*set)->is_measurement_revoked(m));
  EXPECT_TRUE((*set)->is_chip_revoked(chip));
  EXPECT_TRUE((*set)->is_vcek_revoked(vcek_fp));
  EXPECT_FALSE((*set)->is_measurement_revoked(
      sevsnp::Measurement::from(Bytes(48, 0x01))));
}

TEST(RevocationSet, MalformedPersistedEntryFailsClosed) {
  MemStorageEnv env;
  auto kv = must_open(env);
  ASSERT_TRUE(kv);
  // An entry with a bogus kind (or a wrong-length id) must refuse the
  // open: silently skipping it could drop a real revocation.
  ASSERT_TRUE(kv->put(B("revoked/x/short"), B("why")).ok());
  auto set = RevocationSet::open(*kv);
  ASSERT_FALSE(set.ok());
  EXPECT_EQ(set.error().code, "revocation.corrupt");
}

// ------------------------------------------------- durable audit chain

obs::AuditRecord soak_record(std::uint64_t i, bool accepted) {
  obs::AuditRecord rec;
  rec.session = i;
  rec.virt_us = 1000 * i;
  rec.accepted = accepted;
  rec.checks = accepted ? 0x3f : 0x07;
  rec.failure_step = accepted ? "" : "report_sig";
  rec.measurement.data.fill(static_cast<std::uint8_t>(i + 1));
  rec.vcek_chain.data.fill(static_cast<std::uint8_t>(i + 2));
  rec.tcb = 0x0200080073ull;
  rec.evidence_digest.data.fill(static_cast<std::uint8_t>(i + 3));
  return rec;
}

TEST(DurableAudit, AppendThroughPersistsAndReopenReverifies) {
  MemStorageEnv env;
  crypto::Digest32 head{};
  {
    auto kv = must_open(env);
    ASSERT_TRUE(kv);
    auto durable = obs::open_durable_audit(*kv, /*checkpoint_interval=*/4);
    ASSERT_TRUE(durable.ok()) << durable.error().to_string();
    EXPECT_EQ(durable->restored_records, 0u);
    for (std::uint64_t i = 0; i < 10; ++i) {
      durable->log->append(soak_record(i, i % 4 != 0));
    }
    EXPECT_EQ(durable->log->sink_failures(), 0u);
    head = durable->log->head();
  }
  env.crash_and_recover();
  auto kv = must_open(env);
  ASSERT_TRUE(kv);
  auto revived = obs::open_durable_audit(*kv, /*checkpoint_interval=*/4);
  ASSERT_TRUE(revived.ok()) << revived.error().to_string();
  EXPECT_EQ(revived->restored_records, 10u);
  EXPECT_EQ(revived->restored_checkpoints, 2u);
  EXPECT_FALSE(revived->reconciled_torn_frame);
  EXPECT_EQ(revived->log->head(), head);

  // The chain keeps extending seamlessly and still verifies end to end.
  revived->log->append(soak_record(10, true));
  const auto verdict = obs::AuditLog::verify(revived->log->serialize());
  ASSERT_TRUE(verdict.ok()) << verdict.error().to_string();
  EXPECT_EQ(verdict->records, 11u);

  // And the offline path reads the same chain straight from the store.
  auto stream = obs::load_audit_stream(*kv);
  ASSERT_TRUE(stream.ok()) << stream.error().to_string();
  ASSERT_TRUE(obs::AuditLog::verify(*stream).ok());
}

TEST(DurableAudit, SingleFlippedPersistedByteFailsClosed) {
  MemStorageEnv env;
  auto kv = must_open(env);
  ASSERT_TRUE(kv);
  {
    auto durable = obs::open_durable_audit(*kv, /*checkpoint_interval=*/4);
    ASSERT_TRUE(durable.ok());
    for (std::uint64_t i = 0; i < 6; ++i) {
      durable->log->append(soak_record(i, true));
    }
  }
  // Tamper with one persisted frame through the KV layer itself (the
  // store's CRCs cannot see this — only the hash chain can).
  char buf[32];
  std::snprintf(buf, sizeof(buf), "audit/f/%016" PRIx64, std::uint64_t{2});
  auto frame = kv->get(B(buf));
  ASSERT_TRUE(frame.has_value());
  Bytes tampered = *frame;
  tampered[tampered.size() / 2] ^= 0x01;
  ASSERT_TRUE(kv->put(B(buf), tampered).ok());

  auto reopened = obs::open_durable_audit(*kv, /*checkpoint_interval=*/4);
  ASSERT_FALSE(reopened.ok()) << "tampered chain must not open";
  EXPECT_EQ(reopened.error().code, "audit.tamper");
  auto stream = obs::load_audit_stream(*kv);
  ASSERT_FALSE(stream.ok());
}

TEST(DurableAudit, TornFinalFrameIsReconciledInteriorGapIsNot) {
  MemStorageEnv env;
  auto kv = must_open(env);
  ASSERT_TRUE(kv);
  std::uint64_t frames = 0;
  {
    auto durable = obs::open_durable_audit(*kv, /*checkpoint_interval=*/4);
    ASSERT_TRUE(durable.ok());
    for (std::uint64_t i = 0; i < 5; ++i) {
      durable->log->append(soak_record(i, true));
    }
    frames = durable->log->records() + durable->log->checkpoints();
  }
  // Simulate the crash window between "frame persisted" and "head
  // persisted": add a frame whose head never landed. The reopen must drop
  // exactly that frame and resume from the verified prefix.
  const Bytes body = soak_record(99, true).serialize();
  Bytes frame_value;
  append_u8(frame_value, 0x01);  // record frame type
  append(frame_value, body);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "audit/f/%016" PRIx64, frames);
  ASSERT_TRUE(kv->put(B(buf), frame_value).ok());

  auto revived = obs::open_durable_audit(*kv, /*checkpoint_interval=*/4);
  ASSERT_TRUE(revived.ok()) << revived.error().to_string();
  EXPECT_TRUE(revived->reconciled_torn_frame);
  EXPECT_EQ(revived->restored_records, 5u);

  // An interior gap (a frame missing mid-sequence) is damage, not a torn
  // tail: fail closed.
  MemStorageEnv env2;
  auto kv2 = must_open(env2);
  ASSERT_TRUE(kv2);
  {
    auto durable = obs::open_durable_audit(*kv2, /*checkpoint_interval=*/4);
    ASSERT_TRUE(durable.ok());
    for (std::uint64_t i = 0; i < 5; ++i) {
      durable->log->append(soak_record(i, true));
    }
  }
  std::snprintf(buf, sizeof(buf), "audit/f/%016" PRIx64, std::uint64_t{1});
  ASSERT_TRUE(kv2->erase(B(buf)).ok());
  auto broken = obs::open_durable_audit(*kv2, /*checkpoint_interval=*/4);
  ASSERT_FALSE(broken.ok());
}

TEST(DurableAudit, CheckpointIntervalMismatchFailsClosed) {
  MemStorageEnv env;
  auto kv = must_open(env);
  ASSERT_TRUE(kv);
  {
    auto durable = obs::open_durable_audit(*kv, /*checkpoint_interval=*/4);
    ASSERT_TRUE(durable.ok());
    durable->log->append(soak_record(0, true));
  }
  auto mismatched = obs::open_durable_audit(*kv, /*checkpoint_interval=*/8);
  ASSERT_FALSE(mismatched.ok());
}

// --------------------------------------- cache warm-restart read-through

TEST(VcekCachePersistence, WarmRestartServesChainsWithZeroFetches) {
  crypto::HmacDrbg drbg(B("vcek-persist"));
  auto ca = pki::CertificateAuthority::create_root(
      crypto::p384(), {"AMD-ARK", "TX", "US"}, 0,
      365ull * 24 * 3600 * 1000 * 1000, drbg);
  const auto key = crypto::ec_generate(crypto::p256(), drbg);
  auto make_cert = [&](const std::string& cn) {
    return ca.issue_for_key("P-256", key.public_encoded(crypto::p256()),
                            {cn, "TX", "US"}, {}, 0,
                            365ull * 24 * 3600 * 1000 * 1000);
  };
  core::KdsService::VcekResponse response{make_cert("VCEK"), make_cert("ASK"),
                                    make_cert("ARK")};
  const sevsnp::ChipId chip = sevsnp::ChipId::from(Bytes(64, 0x42));
  const sevsnp::TcbVersion tcb{2, 0, 8, 115};

  MemStorageEnv env;
  {
    auto kv = must_open(env);
    ASSERT_TRUE(kv);
    core::VcekCache cache(4, 8);
    cache.attach_store(kv.get());
    int fetches = 0;
    auto fetched = cache.get_or_fetch(chip, tcb, [&] {
      ++fetches;
      return Result<core::KdsService::VcekResponse>(response);
    });
    ASSERT_TRUE(fetched.ok());
    EXPECT_EQ(fetches, 1);
    EXPECT_EQ(cache.stats().fetches, 1u);
    EXPECT_EQ(cache.stats().store_hits, 0u);
  }

  // Restart: new process, new cache, same disk. The KDS must not be hit.
  env.crash_and_recover();
  auto kv = must_open(env);
  ASSERT_TRUE(kv);
  core::VcekCache warm(4, 8);
  warm.attach_store(kv.get());
  auto served = warm.get_or_fetch(chip, tcb, [&]() {
    ADD_FAILURE() << "warm restart must not refetch";
    return Result<core::KdsService::VcekResponse>(
        Error::make("kds.error", "unexpected fetch"));
  });
  ASSERT_TRUE(served.ok()) << served.error().to_string();
  EXPECT_EQ(warm.stats().fetches, 0u);
  EXPECT_EQ(warm.stats().store_hits, 1u);
  EXPECT_EQ(served->vcek.serialize(), response.vcek.serialize());
  EXPECT_EQ(served->ark.serialize(), response.ark.serialize());

  // A corrupted persisted record is a miss, never trusted: the fetch
  // function runs again and repairs the entry.
  Bytes store_key = B("vcek/");
  append(store_key, chip.view());
  append_u64be(store_key, tcb.encode());
  ASSERT_TRUE(kv->put(store_key, B("garbage")).ok());
  core::VcekCache repaired(4, 8);
  repaired.attach_store(kv.get());
  int refetches = 0;
  auto again = repaired.get_or_fetch(chip, tcb, [&] {
    ++refetches;
    return Result<core::KdsService::VcekResponse>(response);
  });
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(refetches, 1);
  EXPECT_EQ(repaired.stats().store_hits, 0u);
}

TEST(ChainCachePersistence, WarmRestartSkipsReverification) {
  crypto::HmacDrbg drbg(B("chain-persist"));
  const std::uint64_t year = 365ull * 24 * 3600 * 1000 * 1000;
  auto ca = pki::CertificateAuthority::create_root(
      crypto::p384(), {"Root", "TX", "US"}, 0, year, drbg);
  const auto key = crypto::ec_generate(crypto::p256(), drbg);
  const auto leaf =
      ca.issue_for_key("P-256", key.public_encoded(crypto::p256()),
                       {"leaf.example", "TX", "US"}, {"leaf.example"}, 0,
                       year);
  const std::vector<pki::Certificate> inters;
  const std::vector<pki::Certificate> roots{ca.certificate()};
  pki::ChainVerifyOptions options;
  options.now_us = year / 2;
  options.dns_name = "leaf.example";

  MemStorageEnv env;
  {
    auto kv = must_open(env);
    ASSERT_TRUE(kv);
    pki::ShardedChainCache cache(4, 16);
    cache.attach_store(kv.get());
    ASSERT_TRUE(cache.verify(leaf, inters, roots, options).ok());
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().store_hits, 0u);
  }

  env.crash_and_recover();
  auto kv = must_open(env);
  ASSERT_TRUE(kv);
  pki::ShardedChainCache warm(4, 16);
  warm.attach_store(kv.get());
  // Same chain bytes: served from the persisted verdict (store_hit).
  ASSERT_TRUE(warm.verify(leaf, inters, roots, options).ok());
  EXPECT_EQ(warm.stats().store_hits, 1u);
  // Second call: now an ordinary in-memory hit.
  ASSERT_TRUE(warm.verify(leaf, inters, roots, options).ok());
  EXPECT_EQ(warm.stats().hits, 1u);

  // Outside the persisted validity window the verdict is NOT honored.
  pki::ChainVerifyOptions expired = options;
  expired.now_us = 2 * year;
  pki::ShardedChainCache strict(4, 16);
  strict.attach_store(kv.get());
  EXPECT_FALSE(strict.verify(leaf, inters, roots, expired).ok());
  EXPECT_EQ(strict.stats().store_hits, 0u);

  // An attacker swapping chain bytes gets a different fingerprint — the
  // persisted verdict cannot be replayed for a different chain.
  const auto other =
      ca.issue_for_key("P-256", key.public_encoded(crypto::p256()),
                       {"other.example", "TX", "US"}, {"other.example"}, 0,
                       year);
  pki::ChainVerifyOptions other_opts = options;
  other_opts.dns_name = "other.example";
  pki::ShardedChainCache fresh(4, 16);
  fresh.attach_store(kv.get());
  ASSERT_TRUE(fresh.verify(other, inters, roots, other_opts).ok());
  EXPECT_EQ(fresh.stats().store_hits, 0u) << "different chain, real verify";
}

// -------------------------------------------- post-recovery gateway soak

struct SoakFixture : ::testing::Test {
  SoakFixture()
      : network(clock),
        drbg(B("store-soak")),
        kds(drbg),
        kds_service(kds, network, {"kds.amd.com", 443}),
        acme(clock, drbg) {
    imagebuild::BaseImage base;
    base.name = "ubuntu";
    base.tag = "20.04";
    base.packages = {{"nginx", "1.18",
                      {{"/usr/sbin/nginx", B("nginx-binary")}}}};
    base_digest = registry.publish(base);
    image = build_image("app-v1");
    expected = vm::Hypervisor::expected_measurement(
        image.kernel_blob, image.initrd_blob, image.cmdline);
  }

  imagebuild::VmImage build_image(const std::string& app) {
    imagebuild::BuildInputs inputs;
    inputs.base_image_digest = base_digest;
    inputs.service_files["/opt/service/app"] = B(app);
    inputs.initrd.services = {{"app", "/opt/service/app", 50.0}};
    inputs.initrd.allowed_inbound_ports = {"443", "8443"};
    imagebuild::ImageBuilder builder(registry);
    return *builder.build(inputs);
  }

  std::unique_ptr<core::RevelioVm> deploy_node(
      const std::string& host, const imagebuild::VmImage& img) {
    auto platform = std::make_unique<sevsnp::AmdSp>(
        to_bytes("platform-" + host), sevsnp::TcbVersion{2, 0, 8, 115});
    kds.register_platform(*platform);
    core::RevelioVmConfig config;
    config.domain = kDomain;
    config.host = host;
    config.image = img;
    config.kds_address = {"kds.amd.com", 443};
    net::HttpRouter routes;
    routes.route("GET", "/", [](const net::HttpRequest&) {
      return net::HttpResponse::ok(B("app"));
    });
    auto node = core::RevelioVm::deploy(*platform, network, config,
                                        std::move(routes));
    EXPECT_TRUE(node.ok());
    platforms.push_back(std::move(platform));
    return std::move(*node);
  }

  static constexpr const char* kDomain = "svc.revelio.app";
  SimClock clock;
  net::Network network;
  crypto::HmacDrbg drbg;
  sevsnp::KeyDistributionServer kds;
  core::KdsService kds_service;
  pki::AcmeIssuer acme;
  imagebuild::PackageRegistry registry;
  crypto::Digest32 base_digest;
  imagebuild::VmImage image;
  sevsnp::Measurement expected;
  std::vector<std::unique_ptr<sevsnp::AmdSp>> platforms;
};

TEST_F(SoakFixture, GatewayStaysFailClosedAfterCrashRecovery) {
  auto node = deploy_node("10.0.0.1", image);
  core::SpNodeConfig sp_config;
  sp_config.domain = kDomain;
  sp_config.kds_address = {"kds.amd.com", 443};
  sp_config.expected_measurements = {expected};
  core::SpNode sp(network, acme, sp_config);
  sp.approve_node(node->bootstrap_address(), platforms[0]->chip_id());
  ASSERT_TRUE(sp.provision_fleet().ok());
  network.dns_set_a(kDomain, "10.0.0.1");

  MemStorageEnv env;
  sevsnp::Measurement bad_measurement =
      sevsnp::Measurement::from(Bytes(48, 0x66));

  // ---- life before the crash: durable gateway state accumulates.
  {
    auto kv = must_open(env);
    ASSERT_TRUE(kv);
    auto durable = obs::open_durable_audit(*kv, /*checkpoint_interval=*/4);
    ASSERT_TRUE(durable.ok());
    auto revocations = RevocationSet::open(*kv);
    ASSERT_TRUE(revocations.ok());
    ASSERT_TRUE(
        (*revocations)->revoke_measurement(bad_measurement, "CVE").ok());

    core::Browser browser(network, "laptop", acme.trusted_roots(),
                          crypto::HmacDrbg(B("user")));
    core::WebExtensionConfig config;
    config.kds_address = {"kds.amd.com", 443};
    config.audit_log = durable->log.get();
    config.revocation_set = revocations->get();
    core::WebExtension extension(browser, config);
    core::SiteRegistration site;
    site.expected_measurements = {expected};
    extension.register_site(kDomain, site);
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(extension.get(kDomain, 443, "/").ok());
      browser.drop_session(kDomain);
    }
    EXPECT_EQ(durable->log->sink_failures(), 0u);
  }

  // ---- the machine dies.
  env.crash_and_recover();

  // ---- reboot: everything reopens from disk and re-verifies.
  auto kv = must_open(env);
  ASSERT_TRUE(kv);
  auto durable = obs::open_durable_audit(*kv, /*checkpoint_interval=*/4);
  ASSERT_TRUE(durable.ok()) << durable.error().to_string();
  EXPECT_EQ(durable->restored_records, 3u);
  auto revocations = RevocationSet::open(*kv);
  ASSERT_TRUE(revocations.ok());
  EXPECT_TRUE((*revocations)->is_measurement_revoked(bad_measurement));

  core::Browser browser(network, "laptop2", acme.trusted_roots(),
                        crypto::HmacDrbg(B("user2")));
  core::WebExtensionConfig config;
  config.kds_address = {"kds.amd.com", 443};
  config.audit_log = durable->log.get();
  config.revocation_set = revocations->get();
  core::WebExtension extension(browser, config);

  // The genuine node still attests (no unverified acceptance, no spurious
  // rejection after recovery).
  core::SiteRegistration site;
  site.expected_measurements = {expected};
  extension.register_site(kDomain, site);
  auto ok_result = extension.get(kDomain, 443, "/");
  ASSERT_TRUE(ok_result.ok()) << ok_result.error().to_string();
  EXPECT_TRUE(ok_result->checks.all_ok());

  // The recovered revocation set still kills trust: revoke the live
  // node's measurement and the same server is refused.
  ASSERT_TRUE((*revocations)->revoke_measurement(expected, "post-boot").ok());
  browser.drop_session(kDomain);
  auto refused = extension.get(kDomain, 443, "/");
  ASSERT_FALSE(refused.ok()) << "revoked measurement accepted post-recovery";
  EXPECT_EQ(refused.error().code, "extension.attestation_failed");

  // Every verdict above (pre-crash accepts, post-recovery accept and
  // reject) lives in one continuous chain that re-verifies end to end —
  // both from the live log and straight from the store.
  const auto verdict = obs::AuditLog::verify(durable->log->serialize());
  ASSERT_TRUE(verdict.ok()) << verdict.error().to_string();
  EXPECT_EQ(verdict->records, 5u);
  EXPECT_EQ(verdict->accepted, 4u);
  EXPECT_EQ(verdict->rejected, 1u);
  auto stream = obs::load_audit_stream(*kv);
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(obs::AuditLog::verify(*stream).ok());
}

}  // namespace
}  // namespace revelio

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/parallel.hpp"

namespace revelio::common {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{64}, std::size_t{1000},
                              std::size_t{4097}}) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(
        n,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
          }
        },
        1);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " index " << i;
    }
  }
}

TEST(ThreadPool, ResultsIdenticalAcrossWidths) {
  const std::size_t n = 10000;
  const auto fill = [n](ThreadPool& pool) {
    std::vector<std::uint64_t> out(n);
    pool.parallel_for(
        n,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            // Cheap per-slot mixing; any pure function of i works.
            std::uint64_t v = (i + 1) * 0x9e3779b97f4a7c15ULL;
            v ^= v >> 29;
            out[i] = v;
          }
        },
        64);
    return out;
  };
  ThreadPool one(1);
  ThreadPool four(4);
  ThreadPool nine(9);
  const auto reference = fill(one);
  EXPECT_EQ(fill(four), reference);
  EXPECT_EQ(fill(nine), reference);
}

TEST(ThreadPool, ChunkLayoutIsStaticAcrossRuns) {
  ThreadPool pool(5);
  const auto layout = [&pool] {
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    pool.parallel_for(
        997,
        [&](std::size_t begin, std::size_t end) {
          std::lock_guard<std::mutex> lock(mu);
          chunks.emplace_back(begin, end);
        },
        10);
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  const auto first = layout();
  // The partition must be a function of (n, grain, width) only — identical
  // on every run regardless of which lane claims which chunk.
  EXPECT_EQ(layout(), first);
  EXPECT_EQ(layout(), first);
  // And it must tile [0, n) without gaps or overlap.
  std::size_t expect_begin = 0;
  for (const auto& [begin, end] : first) {
    EXPECT_EQ(begin, expect_begin);
    EXPECT_LT(begin, end);
    expect_begin = end;
  }
  EXPECT_EQ(expect_begin, 997u);
}

TEST(ThreadPool, SmallLoopsRunInlineOnCaller) {
  ThreadPool pool(4);
  const auto self = std::this_thread::get_id();
  // n < 2 * min_grain must not be shipped to workers at all.
  pool.parallel_for(
      3,
      [&](std::size_t, std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), self);
      },
      2);
}

TEST(ThreadPool, WidthCountsCallerAsALane) {
  ThreadPool one(1);
  EXPECT_EQ(one.width(), 1u);
  ThreadPool three(3);
  EXPECT_EQ(three.width(), 3u);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  // Regression guard for generation handling: back-to-back jobs on one pool
  // must not leak chunks between jobs or deadlock the join.
  ThreadPool pool(3);
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(
        100,
        [&](std::size_t begin, std::size_t end) {
          total.fetch_add(end - begin, std::memory_order_relaxed);
        },
        4);
  }
  EXPECT_EQ(total.load(), 200u * 100u);
}

TEST(ThreadPool, GlobalPoolWorks) {
  std::vector<std::uint64_t> out(512);
  parallel_for(
      out.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) out[i] = i;
      },
      16);
  for (std::size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], i);
}

}  // namespace
}  // namespace revelio::common

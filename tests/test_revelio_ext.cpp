// Tests for the extension features layered on the paper's core: the
// mutually-attested VM-to-VM secure channel (§5.2.2's second identity use)
// and the Auditor (the delegated-verification workflow of D2/§3.4.7).
#include <gtest/gtest.h>

#include "imagebuild/builder.hpp"
#include "revelio/auditor.hpp"
#include "vm/hypervisor.hpp"
#include "revelio/secure_channel.hpp"

namespace revelio::core {
namespace {

using crypto::HmacDrbg;

// ------------------------------------------------------- secure channel

struct ChannelFixture : ::testing::Test {
  ChannelFixture()
      : drbg(to_bytes(std::string_view("channel-tests"))), kds(drbg) {}

  /// Simulates a VM with a given image blob: launches a guest on a fresh
  /// platform and creates the channel identity the way RevelioVm does.
  ChannelIdentity make_identity(const std::string& platform_seed,
                                std::string_view image_blob) {
    auto sp = std::make_unique<sevsnp::AmdSp>(
        to_bytes(platform_seed), sevsnp::TcbVersion{2, 0, 8, 115});
    kds.register_platform(*sp);
    EXPECT_TRUE(sp->launch_start(0x30000).ok());
    EXPECT_TRUE(sp->launch_update(to_bytes(image_blob)).ok());
    EXPECT_TRUE(sp->launch_finish().ok());

    HmacDrbg keygen(to_bytes(platform_seed),
                    to_bytes(std::string_view("identity")));
    ChannelIdentity identity;
    identity.key = crypto::ec_generate(crypto::p256(), keygen);
    const Bytes pubkey = identity.key.public_encoded(crypto::p256());
    auto report = sp->get_report(EvidenceBundle::bind(pubkey));
    EXPECT_TRUE(report.ok());
    identity.evidence = EvidenceBundle{std::move(*report), pubkey};
    measurements.push_back(identity.evidence.report.measurement);
    platforms.push_back(std::move(sp));
    return identity;
  }

  KdsService::VcekResponse kds_for(const ChannelIdentity& identity) {
    auto vcek = kds.fetch_vcek(identity.evidence.report.chip_id,
                               identity.evidence.report.reported_tcb);
    EXPECT_TRUE(vcek.ok());
    return {*vcek, kds.ask_certificate(), kds.ark_certificate()};
  }

  PeerPolicy policy_trusting_all() {
    PeerPolicy policy;
    policy.trusted_measurements = measurements;
    return policy;
  }

  /// Full handshake helper; returns (initiator channel, responder channel).
  std::pair<SecureChannel, SecureChannel> establish(
      const ChannelIdentity& alice, const ChannelIdentity& bob) {
    const PeerPolicy policy = policy_trusting_all();
    Bytes alice_state;
    const ChannelHello hello1 =
        SecureChannel::initiate(alice, drbg, alice_state);
    auto responded = SecureChannel::respond(bob, policy, hello1,
                                            kds_for(alice), drbg, 0);
    EXPECT_TRUE(responded.ok()) << responded.error().to_string();
    auto completed = SecureChannel::complete(alice, policy, alice_state,
                                             responded->first,
                                             kds_for(bob), 0);
    EXPECT_TRUE(completed.ok()) << completed.error().to_string();
    return {std::move(*completed), std::move(responded->second)};
  }

  HmacDrbg drbg;
  sevsnp::KeyDistributionServer kds;
  std::vector<std::unique_ptr<sevsnp::AmdSp>> platforms;
  std::vector<sevsnp::Measurement> measurements;
};

TEST_F(ChannelFixture, HandshakeAndBidirectionalTraffic) {
  const auto alice = make_identity("platform-a", "image-v1");
  const auto bob = make_identity("platform-b", "image-v1");
  auto [a, b] = establish(alice, bob);

  const Bytes sealed = a.send(to_bytes(std::string_view("state chunk 1")));
  auto received = b.receive(sealed);
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(to_string(*received), "state chunk 1");

  const Bytes reply = b.send(to_bytes(std::string_view("ack")));
  auto got = a.receive(reply);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(to_string(*got), "ack");
}

TEST_F(ChannelFixture, PeersLearnEachOthersMeasurement) {
  const auto alice = make_identity("platform-a", "image-v1");
  const auto bob = make_identity("platform-b", "image-v2");
  auto [a, b] = establish(alice, bob);
  EXPECT_EQ(a.peer_measurement(), bob.evidence.report.measurement);
  EXPECT_EQ(b.peer_measurement(), alice.evidence.report.measurement);
}

TEST_F(ChannelFixture, ReplayedPayloadRejected) {
  const auto alice = make_identity("platform-a", "image-v1");
  const auto bob = make_identity("platform-b", "image-v1");
  auto [a, b] = establish(alice, bob);
  const Bytes sealed = a.send(to_bytes(std::string_view("once")));
  ASSERT_TRUE(b.receive(sealed).ok());
  const auto replay = b.receive(sealed);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.error().code, "channel.auth_failed");
}

TEST_F(ChannelFixture, TamperedPayloadRejected) {
  const auto alice = make_identity("platform-a", "image-v1");
  const auto bob = make_identity("platform-b", "image-v1");
  auto [a, b] = establish(alice, bob);
  Bytes sealed = a.send(to_bytes(std::string_view("payload")));
  sealed[sealed.size() / 2] ^= 0x01;
  EXPECT_FALSE(b.receive(sealed).ok());
}

TEST_F(ChannelFixture, UntrustedMeasurementRefused) {
  const auto alice = make_identity("platform-a", "image-good");
  const auto mallory = make_identity("platform-m", "image-backdoored");
  PeerPolicy policy;
  policy.trusted_measurements = {alice.evidence.report.measurement};

  Bytes state;
  const ChannelHello hello = SecureChannel::initiate(mallory, drbg, state);
  const auto r = SecureChannel::respond(alice, policy, hello,
                                        kds_for(mallory), drbg, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "channel.untrusted_measurement");
}

TEST_F(ChannelFixture, StolenEvidenceWithoutKeyRefused) {
  // Mallory replays Alice's (genuine) evidence but cannot sign with
  // Alice's identity key.
  const auto alice = make_identity("platform-a", "image-v1");
  const auto bob = make_identity("platform-b", "image-v1");
  HmacDrbg mallory_drbg(to_bytes(std::string_view("mallory")));
  const auto mallory_key = crypto::ec_generate(crypto::p256(), mallory_drbg);

  ChannelHello forged;
  forged.evidence = alice.evidence.serialize();
  const auto eph = crypto::ec_generate(crypto::p256(), mallory_drbg);
  forged.ephemeral_pub = eph.public_encoded(crypto::p256());
  const auto hash = crypto::sha384(forged.evidence);
  forged.signature = crypto::ecdsa_sign(crypto::p256(), mallory_key.d,
                                        hash.view())
                         .encode(crypto::p256());

  const auto r = SecureChannel::respond(bob, policy_trusting_all(), forged,
                                        kds_for(alice), drbg, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "channel.bad_initiator_signature");
}

TEST_F(ChannelFixture, HelloSerializationRoundTrip) {
  const auto alice = make_identity("platform-a", "image-v1");
  Bytes state;
  const ChannelHello hello = SecureChannel::initiate(alice, drbg, state);
  auto parsed = ChannelHello::parse(hello.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->evidence, hello.evidence);
  EXPECT_EQ(parsed->ephemeral_pub, hello.ephemeral_pub);
  EXPECT_EQ(parsed->signature, hello.signature);
  EXPECT_FALSE(ChannelHello::parse(to_bytes(std::string_view("junk"))).ok());
}

TEST_F(ChannelFixture, TcbFloorEnforcedOnPeers) {
  const auto alice = make_identity("platform-a", "image-v1");
  const auto bob = make_identity("platform-b", "image-v1");
  PeerPolicy policy = policy_trusting_all();
  policy.minimum_tcb = sevsnp::TcbVersion{9, 9, 9, 200};
  Bytes state;
  const ChannelHello hello = SecureChannel::initiate(alice, drbg, state);
  EXPECT_FALSE(
      SecureChannel::respond(bob, policy, hello, kds_for(alice), drbg, 0)
          .ok());
}

// --------------------------------------------------------------- auditor

struct AuditorFixture : ::testing::Test {
  AuditorFixture() {
    imagebuild::BaseImage base;
    base.name = "ubuntu";
    base.tag = "20.04";
    base.packages = {{"nginx", "1.18",
                      {{"/usr/sbin/nginx",
                        to_bytes(std::string_view("nginx-binary"))}}}};
    digest = registry.publish(base);
  }

  imagebuild::BuildInputs good_inputs() {
    imagebuild::BuildInputs inputs;
    inputs.base_image_digest = digest;
    inputs.service_files["/opt/app"] = to_bytes(std::string_view("app-v1"));
    inputs.initrd.services = {{"app", "/opt/app", 10.0}};
    inputs.initrd.allowed_inbound_ports = {"443"};
    return inputs;
  }

  imagebuild::PackageRegistry registry;
  crypto::Digest32 digest;
};

TEST_F(AuditorFixture, CleanBuildPasses) {
  Auditor auditor(registry);
  const AuditReport report = auditor.audit(good_inputs());
  EXPECT_TRUE(report.reproducible);
  EXPECT_TRUE(report.passed());
  EXPECT_EQ(report.count(AuditFinding::Severity::kCritical), 0u);
}

TEST_F(AuditorFixture, MeasurementMatchesDeployment) {
  Auditor auditor(registry);
  const AuditReport report = auditor.audit(good_inputs());
  imagebuild::ImageBuilder builder(registry);
  const auto image = *builder.build(good_inputs());
  EXPECT_EQ(report.measurement,
            vm::Hypervisor::expected_measurement(
                image.kernel_blob, image.initrd_blob, image.cmdline));
}

TEST_F(AuditorFixture, UnpinnedBaseImageIsCritical) {
  Auditor auditor(registry);
  auto inputs = good_inputs();
  inputs.base_image_digest.reset();
  const AuditReport report = auditor.audit(inputs);
  EXPECT_FALSE(report.passed());
}

TEST_F(AuditorFixture, DisabledVerityIsCritical) {
  Auditor auditor(registry);
  auto inputs = good_inputs();
  inputs.initrd.setup_verity = false;
  EXPECT_FALSE(auditor.audit(inputs).passed());
}

TEST_F(AuditorFixture, OpenSshPortIsCritical) {
  Auditor auditor(registry);
  auto inputs = good_inputs();
  inputs.initrd.allowed_inbound_ports.push_back("22");
  const AuditReport report = auditor.audit(inputs);
  EXPECT_FALSE(report.passed());
}

TEST_F(AuditorFixture, OpenFirewallIsCritical) {
  Auditor auditor(registry);
  auto inputs = good_inputs();
  inputs.initrd.block_inbound_network = false;
  EXPECT_FALSE(auditor.audit(inputs).passed());
}

TEST_F(AuditorFixture, MissingCryptIsOnlyWarning) {
  Auditor auditor(registry);
  auto inputs = good_inputs();
  inputs.initrd.setup_crypt = false;
  const AuditReport report = auditor.audit(inputs);
  EXPECT_TRUE(report.passed());
  EXPECT_GE(report.count(AuditFinding::Severity::kWarning), 1u);
}

TEST_F(AuditorFixture, PublishOnlyOnPass) {
  Auditor auditor(registry);
  TrustedRegistry trusted;
  auto good = auditor.audit_and_publish(good_inputs(), "svc", trusted);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(trusted.is_acceptable("svc", *good));

  auto bad_inputs = good_inputs();
  bad_inputs.initrd.setup_verity = false;
  auto bad = auditor.audit_and_publish(bad_inputs, "svc", trusted);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, "auditor.rejected");
}

TEST_F(AuditorFixture, UnknownBaseImageReportsBuildFailure) {
  Auditor auditor(registry);
  auto inputs = good_inputs();
  crypto::Digest32 bogus;
  bogus[0] = 0xff;
  inputs.base_image_digest = bogus;
  const AuditReport report = auditor.audit(inputs);
  EXPECT_FALSE(report.reproducible);
  EXPECT_FALSE(report.passed());
}

}  // namespace
}  // namespace revelio::core

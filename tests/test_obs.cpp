#include <gtest/gtest.h>

#include "common/log.hpp"
#include "common/sim_clock.hpp"
#include "imagebuild/builder.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pki/ca.hpp"
#include "pki/chain_cache.hpp"
#include "revelio/revelio_vm.hpp"
#include "revelio/sp_node.hpp"
#include "revelio/web_extension.hpp"

namespace revelio {
namespace {

/// The tracer is process-wide; every test that enables it restores the
/// defaults on exit so tests stay order-independent.
struct TracerGuard {
  TracerGuard() {
    obs::tracer().clear();
    obs::tracer().set_enabled(true);
  }
  ~TracerGuard() {
    obs::tracer().set_enabled(false);
    obs::tracer().set_log_spans(false);
    obs::tracer().set_real_clock(nullptr);
    obs::tracer().set_max_finished(100000);
    obs::tracer().clear();
  }
};

const obs::SpanRecord* find_span(const std::string& name) {
  for (const auto& span : obs::tracer().finished_spans()) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

const obs::SpanRecord* find_span_by_id(std::uint64_t id) {
  for (const auto& span : obs::tracer().finished_spans()) {
    if (span.id == id) return &span;
  }
  return nullptr;
}

/// Name of the parent span, or "" for roots / missing parents.
std::string parent_name(const obs::SpanRecord& span) {
  if (span.parent_id == 0) return {};
  const auto* parent = find_span_by_id(span.parent_id);
  return parent == nullptr ? std::string{} : parent->name;
}

// --------------------------------------------------------------- tracing

TEST(Trace, NestingOrderingAndAttrs) {
  TracerGuard guard;
  {
    obs::Span root("root");
    root.attr("who", "outer");
    {
      obs::Span child("child");
      child.attr("n", std::uint64_t{7});
      obs::Span grandchild("grandchild");
    }
    obs::Span sibling("sibling");
  }
  // Completion order: children precede their parents.
  const auto& spans = obs::tracer().finished_spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "grandchild");
  EXPECT_EQ(spans[1].name, "child");
  EXPECT_EQ(spans[2].name, "sibling");
  EXPECT_EQ(spans[3].name, "root");
  // Parent links reconstruct the tree.
  EXPECT_EQ(parent_name(spans[0]), "child");
  EXPECT_EQ(parent_name(spans[1]), "root");
  EXPECT_EQ(parent_name(spans[2]), "root");
  EXPECT_EQ(spans[3].parent_id, 0u);
  // Attributes stick to the right span.
  EXPECT_EQ(spans[3].attr("who"), "outer");
  EXPECT_EQ(spans[1].attr("n"), "7");
  EXPECT_EQ(spans[0].attr("n"), "");
  EXPECT_EQ(obs::tracer().open_spans(), 0u);
}

TEST(Trace, DisabledSpansCostNothing) {
  obs::tracer().clear();
  obs::tracer().set_enabled(false);
  obs::Span span("invisible");
  span.attr("k", "v");
  EXPECT_EQ(span.id(), 0u);
  span.end();
  EXPECT_TRUE(obs::tracer().finished_spans().empty());
}

TEST(Trace, VirtualAndRealDurations) {
  TracerGuard guard;
  SimClock clock;  // registers as SimClock::current()
  // Deterministic fake real clock: +500 ns per query.
  std::uint64_t fake_ns = 0;
  obs::tracer().set_real_clock([&fake_ns] { return fake_ns += 500; });

  obs::Span root("root");
  clock.advance_us(10);
  obs::Span child("child");
  clock.advance_us(5);
  child.end();
  root.end();

  const auto* child_rec = find_span("child");
  const auto* root_rec = find_span("root");
  ASSERT_NE(child_rec, nullptr);
  ASSERT_NE(root_rec, nullptr);
  EXPECT_EQ(root_rec->virt_start_us, 0u);
  EXPECT_EQ(root_rec->virt_us(), 15u);
  EXPECT_EQ(child_rec->virt_start_us, 10u);
  EXPECT_EQ(child_rec->virt_us(), 5u);
  // Clock queries: root begin (500), child begin (1000), child end (1500),
  // root end (2000).
  EXPECT_DOUBLE_EQ(child_rec->real_us(), 0.5);
  EXPECT_DOUBLE_EQ(root_rec->real_us(), 1.5);
}

TEST(Trace, FinishedSpansJsonGolden) {
  TracerGuard guard;
  SimClock clock;
  std::uint64_t fake_ns = 0;
  obs::tracer().set_real_clock([&fake_ns] { return fake_ns += 500; });

  obs::Span root("root");
  clock.advance_us(10);
  obs::Span child("child");
  child.attr("k", "v");
  clock.advance_us(5);
  child.end();
  root.end();

  EXPECT_EQ(
      obs::tracer().finished_spans_json(),
      "[{\"id\":2,\"parent_id\":1,\"name\":\"child\","
      "\"virt_start_us\":10,\"virt_us\":5,\"real_us\":0.5,\"lane\":0,"
      "\"attrs\":{\"k\":\"v\"}},"
      "{\"id\":1,\"parent_id\":0,\"name\":\"root\","
      "\"virt_start_us\":0,\"virt_us\":15,\"real_us\":1.5,\"lane\":0,"
      "\"attrs\":{}}]");
}

TEST(Trace, ChromeTraceFormat) {
  TracerGuard guard;
  SimClock clock;
  std::uint64_t fake_ns = 1000000;
  obs::tracer().set_real_clock([&fake_ns] { return fake_ns += 1000; });
  {
    obs::Span span("work");
    clock.advance_us(3);
  }
  const std::string trace = obs::tracer().chrome_trace_json();
  // Two thread_name metadata events + one complete event per clock.
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"virtual clock (sim)\""), std::string::npos);
  EXPECT_NE(trace.find("\"real clock (cpu)\""), std::string::npos);
  // Virtual row: tid 1, µs straight off the sim clock.
  EXPECT_NE(trace.find("\"name\":\"work\",\"cat\":\"virt\",\"ph\":\"X\","
                       "\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":3"),
            std::string::npos);
  // Real row: tid 2, rebased to the earliest span -> ts 0, dur 1 µs.
  EXPECT_NE(trace.find("\"name\":\"work\",\"cat\":\"real\",\"ph\":\"X\","
                       "\"pid\":1,\"tid\":2,\"ts\":0,\"dur\":1"),
            std::string::npos);
}

TEST(Trace, BoundedHistoryDropsOldest) {
  TracerGuard guard;
  obs::tracer().set_max_finished(2);
  for (int i = 0; i < 3; ++i) {
    obs::Span span("span-" + std::to_string(i));
  }
  EXPECT_EQ(obs::tracer().finished_spans().size(), 2u);
  EXPECT_EQ(obs::tracer().dropped_spans(), 1u);
  EXPECT_EQ(obs::tracer().finished_spans().front().name, "span-1");
}

// ------------------------------------------------------- log correlation

TEST(Trace, SpanLogCorrelation) {
  TracerGuard guard;
  const LogLevel saved_level = log_level();
  set_log_level(LogLevel::kDebug);
  obs::tracer().set_log_spans(true);

  LogBuffer capture;
  capture.install();
  {
    obs::Span outer("outer");
    obs::Span inner("inner");
    log_debug("app", "work inside the inner span");
  }
  capture.uninstall();
  set_log_level(saved_level);

  EXPECT_TRUE(capture.contains("span#1 begin outer"));
  EXPECT_TRUE(capture.contains("span#2 begin inner parent=#1"));
  EXPECT_TRUE(capture.contains("work inside the inner span"));
  EXPECT_TRUE(capture.contains("span#2 end inner"));
  EXPECT_TRUE(capture.contains("span#1 end outer"));
  // Ordering: begin lines precede the app log line, which precedes the ends.
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_NE(lines[2].find("work inside"), std::string::npos);
}

TEST(Log, BufferCapturesAndRestoresStderrSink) {
  LogBuffer capture(2);  // tiny ring: keeps only the 2 newest lines
  capture.install();
  log_warn("a", "first");
  log_warn("b", "second");
  log_warn("c", "third");
  capture.uninstall();
  log_warn("d", "after uninstall");  // must not reach the buffer

  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "[WARN ] b second");
  EXPECT_EQ(lines[1], "[WARN ] c third");
  EXPECT_FALSE(capture.contains("after uninstall"));
}

// ----------------------------------------------------------------- metrics

TEST(Metrics, CounterSaturatesInsteadOfWrapping) {
  obs::MetricsRegistry reg;
  auto& c = reg.counter("x.count");
  c.inc(UINT64_MAX - 1);
  c.inc();  // exactly at the ceiling
  EXPECT_EQ(c.value(), UINT64_MAX);
  c.inc(42);  // would wrap; must pin
  EXPECT_EQ(c.value(), UINT64_MAX);
}

TEST(Metrics, LabelsRenderPrometheusStyle) {
  obs::MetricsRegistry reg;
  EXPECT_EQ(obs::MetricsRegistry::render_key("n", {}), "n");
  EXPECT_EQ(obs::MetricsRegistry::render_key(
                "tls.handshake.fail.count",
                {{"reason", "pki.expired"}, {"server", "x"}}),
            "tls.handshake.fail.count{reason=pki.expired,server=x}");
  reg.counter("c", {{"r", "ok"}}).inc();
  reg.counter("c", {{"r", "bad"}}).inc(3);
  EXPECT_EQ(reg.counter_value("c", {{"r", "ok"}}), 1u);
  EXPECT_EQ(reg.counter_value("c", {{"r", "bad"}}), 3u);
  EXPECT_EQ(reg.counter_value("c"), 0u);          // unlabeled is distinct
  EXPECT_EQ(reg.counter_value("missing"), 0u);    // absent reads as zero
}

TEST(Metrics, HistogramBucketBoundaries) {
  obs::MetricsRegistry reg;
  auto& h = reg.histogram("lat", {1.0, 5.0, 10.0});
  h.observe(0.5);   // <= 1
  h.observe(1.0);   // boundary: still the first bucket (le semantics)
  h.observe(1.001); // > 1, <= 5
  h.observe(10.0);  // boundary of the last finite bucket
  h.observe(10.5);  // +inf
  const auto& counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 23.001);
}

TEST(Metrics, RegistryJsonGolden) {
  obs::MetricsRegistry reg;
  reg.counter("a.count").inc(2);
  reg.counter("b.count", {{"r", "ok"}}).inc();
  reg.gauge("g").set(1.5);
  auto& h = reg.histogram("h", {1.0, 2.0});
  h.observe(0.5);
  h.observe(3.0);
  EXPECT_EQ(reg.to_json(),
            "{\"counters\":{\"a.count\":2,\"b.count{r=ok}\":1},"
            "\"gauges\":{\"g\":1.5},"
            "\"histograms\":{\"h\":{\"buckets\":["
            "{\"le\":1,\"count\":1},{\"le\":2,\"count\":0},"
            "{\"le\":\"+inf\",\"count\":1}],\"count\":2,\"sum\":3.5}}}");
}

TEST(Metrics, JsonEscaping) {
  EXPECT_EQ(obs::json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(obs::json_number(0.5), "0.5");
  EXPECT_EQ(obs::json_number(3.0), "3");
  EXPECT_EQ(obs::json_number(1e14), "100000000000000");
}

// ----------------------------------------------- chain cache -> registry

TEST(Metrics, ChainCacheReportsToRegistry) {
  crypto::HmacDrbg drbg(to_bytes(std::string_view("obs-chain-cache")));
  constexpr std::uint64_t kYearUs = 365ull * 24 * 3600 * 1000 * 1000;
  auto root = pki::CertificateAuthority::create_root(
      crypto::p384(), {"Root", "Obs", "US"}, 0, kYearUs, drbg);
  auto inter = pki::CertificateAuthority::create_intermediate(
      crypto::p384(), {"Inter", "Obs", "US"}, 0, kYearUs, root, drbg);
  const auto leaf_key = crypto::ec_generate(crypto::p384(), drbg);
  const pki::Certificate leaf = inter.issue_for_key(
      "P-384", leaf_key.public_encoded(crypto::p384()), {"Leaf", "Obs", "US"},
      {}, 0, kYearUs);

  auto& m = obs::metrics();
  const auto hits0 = m.counter_value("pki.chain_cache.hit.count");
  const auto misses0 = m.counter_value("pki.chain_cache.miss.count");
  const auto expiry0 = m.counter_value("pki.chain_cache.expiry.count");
  const auto ok0 =
      m.counter_value("pki.chain_verify.result.count", {{"result", "ok"}});

  pki::ChainVerificationCache cache;
  pki::ChainVerifyOptions options;
  options.now_us = 1000;
  EXPECT_TRUE(cache
                  .verify(leaf, {inter.certificate()}, {root.certificate()},
                          options)
                  .ok());  // miss + full verify
  EXPECT_TRUE(cache
                  .verify(leaf, {inter.certificate()}, {root.certificate()},
                          options)
                  .ok());  // hit
  options.now_us = 2 * kYearUs;  // outside every validity window
  EXPECT_FALSE(cache
                   .verify(leaf, {inter.certificate()}, {root.certificate()},
                           options)
                   .ok());  // expiry, then failed re-verify (not cached)

  EXPECT_EQ(m.counter_value("pki.chain_cache.hit.count"), hits0 + 1);
  EXPECT_EQ(m.counter_value("pki.chain_cache.miss.count"), misses0 + 2);
  EXPECT_EQ(m.counter_value("pki.chain_cache.expiry.count"), expiry0 + 1);
  EXPECT_EQ(
      m.counter_value("pki.chain_verify.result.count", {{"result", "ok"}}),
      ok0 + 1);
  // Per-instance stats agree with the process-wide counters.
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.window_rejects, 1u);
}

// -------------------------------------- end-to-end: attested GET span tree

/// Single-node deployment, enough for one attested GET through the
/// extension (same shape as the quickstart, minus the commentary).
struct ObsE2eFixture : ::testing::Test {
  ObsE2eFixture()
      : network(clock),
        drbg(to_bytes(std::string_view("obs-e2e"))),
        kds(drbg),
        kds_service(kds, network, {"kds.amd.com", 443}),
        acme(clock, drbg),
        platform(to_bytes(std::string_view("obs-platform")),
                 sevsnp::TcbVersion{2, 0, 8, 115}) {
    kds.register_platform(platform);

    imagebuild::PackageRegistry registry;
    imagebuild::BaseImage base;
    base.name = "ubuntu";
    base.tag = "20.04";
    base.packages = {{"nginx", "1.18",
                      {{"/usr/sbin/nginx",
                        to_bytes(std::string_view("nginx-binary"))}}}};
    imagebuild::BuildInputs inputs;
    inputs.base_image_digest = registry.publish(base);
    inputs.service_files["/opt/service/app"] =
        to_bytes(std::string_view("app-v1"));
    inputs.initrd.services = {{"app", "/opt/service/app", 50.0}};
    inputs.initrd.allowed_inbound_ports = {"443", "8443"};
    imagebuild::ImageBuilder builder(registry);
    const auto image = *builder.build(inputs);
    expected = vm::Hypervisor::expected_measurement(
        image.kernel_blob, image.initrd_blob, image.cmdline);

    net::HttpRouter routes;
    routes.route("GET", "/", [](const net::HttpRequest&) {
      return net::HttpResponse::ok(to_bytes(std::string_view("ok")),
                                   "text/html");
    });
    core::RevelioVmConfig config;
    config.domain = "obs.revelio.app";
    config.host = "10.0.0.1";
    config.image = image;
    config.kds_address = {"kds.amd.com", 443};
    auto deployed =
        core::RevelioVm::deploy(platform, network, config, std::move(routes));
    node = std::move(*deployed);

    core::SpNodeConfig sp_config;
    sp_config.domain = "obs.revelio.app";
    sp_config.kds_address = {"kds.amd.com", 443};
    sp_config.expected_measurements = {expected};
    sp = std::make_unique<core::SpNode>(network, acme, sp_config);
    sp->approve_node(node->bootstrap_address(), platform.chip_id());
    auto outcomes = sp->provision_fleet();
    EXPECT_TRUE(outcomes.ok());
    network.dns_set_a("obs.revelio.app", "10.0.0.1");
  }

  SimClock clock;
  net::Network network;
  crypto::HmacDrbg drbg;
  sevsnp::KeyDistributionServer kds;
  core::KdsService kds_service;
  pki::AcmeIssuer acme;
  sevsnp::AmdSp platform;
  sevsnp::Measurement expected;
  std::unique_ptr<core::RevelioVm> node;
  std::unique_ptr<core::SpNode> sp;
};

TEST_F(ObsE2eFixture, AttestedGetProducesTheDocumentedSpanTree) {
  core::Browser browser(network, "laptop", acme.trusted_roots(),
                        crypto::HmacDrbg(to_bytes(std::string_view("user"))));
  core::WebExtensionConfig ext_config;
  ext_config.kds_address = {"kds.amd.com", 443};
  core::WebExtension extension(browser, ext_config);
  core::SiteRegistration site;
  site.expected_measurements = {expected};
  extension.register_site("obs.revelio.app", site);

  TracerGuard guard;  // tracing on only for the request under test
  auto verified = extension.get("obs.revelio.app", 443, "/");
  ASSERT_TRUE(verified.ok()) << verified.error().to_string();
  EXPECT_TRUE(verified->checks.all_ok());

  // Root: one session validation in attest mode that succeeded.
  const auto* session = find_span("ext.session_validate");
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->parent_id, 0u);
  EXPECT_EQ(session->attr("mode"), "attest");
  EXPECT_EQ(session->attr("result"), "ok");

  // TLS handshake under the session, with its phases under it.
  const auto* handshake = find_span("tls.handshake");
  ASSERT_NE(handshake, nullptr);
  EXPECT_EQ(parent_name(*handshake), "ext.session_validate");
  EXPECT_EQ(handshake->attr("result"), "ok");
  const auto* hello = find_span("tls.hello_roundtrip");
  ASSERT_NE(hello, nullptr);
  EXPECT_EQ(parent_name(*hello), "tls.handshake");
  const auto* transcript = find_span("tls.transcript_verify");
  ASSERT_NE(transcript, nullptr);
  EXPECT_EQ(parent_name(*transcript), "tls.handshake");

  // The attestation pass under the session, its steps under it.
  const auto* attest = find_span("ext.attest");
  ASSERT_NE(attest, nullptr);
  EXPECT_EQ(parent_name(*attest), "ext.session_validate");
  EXPECT_EQ(attest->attr("result"), "ok");
  const auto* evidence = find_span("ext.evidence_fetch");
  ASSERT_NE(evidence, nullptr);
  EXPECT_EQ(parent_name(*evidence), "ext.attest");
  const auto* kds_fetch = find_span("ext.kds_fetch");
  ASSERT_NE(kds_fetch, nullptr);
  EXPECT_EQ(parent_name(*kds_fetch), "ext.attest");

  // Report verification nests the chain walk and the signature check.
  const auto* report = find_span("sevsnp.report_verify");
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(parent_name(*report), "ext.attest");
  EXPECT_EQ(report->attr("result"), "ok");
  const auto* signature = find_span("sevsnp.signature_verify");
  ASSERT_NE(signature, nullptr);
  EXPECT_EQ(parent_name(*signature), "sevsnp.report_verify");
  bool chain_under_report = false;
  bool chain_under_handshake = false;
  for (const auto& span : obs::tracer().finished_spans()) {
    if (span.name != "pki.chain_verify") continue;
    EXPECT_EQ(span.attr("result"), "ok");
    if (parent_name(span) == "sevsnp.report_verify") chain_under_report = true;
    if (parent_name(span) == "tls.handshake") chain_under_handshake = true;
  }
  EXPECT_TRUE(chain_under_report);    // VCEK chain during report verify
  EXPECT_TRUE(chain_under_handshake); // web PKI chain during the handshake

  // Virtual time propagates: the KDS round trip dominates the attest span.
  EXPECT_GE(attest->virt_us(), kds_fetch->virt_us());
  EXPECT_GE(session->virt_us(), attest->virt_us());
  EXPECT_GT(kds_fetch->virt_us(), 0u);
}

TEST_F(ObsE2eFixture, MonitoredGetAndRegistryLookupEmitMetrics) {
  core::Browser browser(network, "laptop", acme.trusted_roots(),
                        crypto::HmacDrbg(to_bytes(std::string_view("user2"))));
  core::WebExtensionConfig ext_config;
  ext_config.kds_address = {"kds.amd.com", 443};
  core::WebExtension extension(browser, ext_config);

  // Delegated measurement judgement: a registry instead of a manual pin.
  core::TrustedRegistry registry;
  registry.publish("obs", expected);
  core::SiteRegistration site;
  site.registry = &registry;
  site.registry_service = "obs";
  extension.register_site("obs.revelio.app", site);

  auto& m = obs::metrics();
  const auto attest_ok0 =
      m.counter_value("ext.attest.result.count", {{"result", "ok"}});
  const auto monitor0 = m.counter_value("ext.monitor.count");
  const auto lookup0 =
      m.counter_value("registry.lookup.count", {{"result", "acceptable"}});
  const auto handshake0 = m.counter_value("tls.handshake.count");

  ASSERT_TRUE(extension.get("obs.revelio.app", 443, "/").ok());  // attests
  ASSERT_TRUE(extension.get("obs.revelio.app", 443, "/").ok());  // monitors

  EXPECT_EQ(m.counter_value("ext.attest.result.count", {{"result", "ok"}}),
            attest_ok0 + 1);
  EXPECT_EQ(m.counter_value("ext.monitor.count"), monitor0 + 1);
  EXPECT_EQ(
      m.counter_value("registry.lookup.count", {{"result", "acceptable"}}),
      lookup0 + 1);
  EXPECT_EQ(m.counter_value("tls.handshake.count"), handshake0 + 1);
}

}  // namespace
}  // namespace revelio

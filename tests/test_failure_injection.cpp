// Failure injection: the distributed workflows under network faults,
// unavailable dependencies and malformed protocol messages. The system
// must fail *closed* (no unverified trust) and *partially* (healthy nodes
// unaffected by sick ones).
#include <gtest/gtest.h>

#include "imagebuild/builder.hpp"
#include "revelio/revelio_vm.hpp"
#include "revelio/revocation.hpp"
#include "revelio/sp_node.hpp"
#include "revelio/web_extension.hpp"

namespace revelio::core {
namespace {

using crypto::HmacDrbg;

constexpr const char* kDomain = "svc.revelio.app";

struct FaultFixture : ::testing::Test {
  FaultFixture()
      : network(clock),
        drbg(to_bytes(std::string_view("fault-tests"))),
        kds(drbg),
        kds_service(kds, network, {"kds.amd.com", 443}),
        acme(clock, drbg) {
    imagebuild::BaseImage base;
    base.name = "ubuntu";
    base.tag = "20.04";
    base.packages = {{"nginx", "1.18",
                      {{"/usr/sbin/nginx",
                        to_bytes(std::string_view("nginx-binary"))}}}};
    base_digest = registry.publish(base);

    imagebuild::BuildInputs inputs;
    inputs.base_image_digest = base_digest;
    inputs.service_files["/opt/service/app"] =
        to_bytes(std::string_view("app-v1"));
    inputs.initrd.services = {{"app", "/opt/service/app", 50.0}};
    inputs.initrd.allowed_inbound_ports = {"443", "8443"};
    imagebuild::ImageBuilder builder(registry);
    image = *builder.build(inputs);
    expected = vm::Hypervisor::expected_measurement(
        image.kernel_blob, image.initrd_blob, image.cmdline);
  }

  std::unique_ptr<RevelioVm> deploy_node(const std::string& host) {
    auto platform = std::make_unique<sevsnp::AmdSp>(
        to_bytes("platform-" + host), sevsnp::TcbVersion{2, 0, 8, 115});
    kds.register_platform(*platform);
    RevelioVmConfig config;
    config.domain = kDomain;
    config.host = host;
    config.image = image;
    config.kds_address = {"kds.amd.com", 443};
    net::HttpRouter routes;
    routes.route("GET", "/", [](const net::HttpRequest&) {
      return net::HttpResponse::ok(to_bytes(std::string_view("app")));
    });
    auto node =
        RevelioVm::deploy(*platform, network, config, std::move(routes));
    EXPECT_TRUE(node.ok());
    platforms.push_back(std::move(platform));
    return std::move(*node);
  }

  std::unique_ptr<SpNode> make_sp() {
    SpNodeConfig config;
    config.domain = kDomain;
    config.kds_address = {"kds.amd.com", 443};
    config.expected_measurements = {expected};
    return std::make_unique<SpNode>(network, acme, config);
  }

  SimClock clock;
  net::Network network;
  HmacDrbg drbg;
  sevsnp::KeyDistributionServer kds;
  KdsService kds_service;
  pki::AcmeIssuer acme;
  imagebuild::PackageRegistry registry;
  crypto::Digest32 base_digest;
  imagebuild::VmImage image;
  sevsnp::Measurement expected;
  std::vector<std::unique_ptr<sevsnp::AmdSp>> platforms;
};

// ------------------------------------------------------ network faults

TEST_F(FaultFixture, UnreachableNodeFailsAttestationOthersProceed) {
  auto node1 = deploy_node("10.0.0.1");
  auto node2 = deploy_node("10.0.0.2");
  auto sp = make_sp();
  sp->approve_node(node1->bootstrap_address(), platforms[0]->chip_id());
  sp->approve_node(node2->bootstrap_address(), platforms[1]->chip_id());

  // All traffic to node 2 is dropped (host down / partition).
  network.set_interceptor(
      [](const net::Address&, const net::Address& to, ByteView) {
        if (to.host == "10.0.0.2") return net::MitmAction::drop();
        return net::MitmAction::forward();
      });
  auto outcomes = sp->provision_fleet();
  ASSERT_TRUE(outcomes.ok());
  EXPECT_TRUE((*outcomes)[0].attested);
  EXPECT_FALSE((*outcomes)[1].attested);
  EXPECT_TRUE(node1->serving_tls());
  EXPECT_FALSE(node2->serving_tls());
}

TEST_F(FaultFixture, AllNodesDownFailsProvisioningCleanly) {
  auto node = deploy_node("10.0.0.1");
  auto sp = make_sp();
  sp->approve_node(node->bootstrap_address(), platforms[0]->chip_id());
  network.set_interceptor([](const net::Address&, const net::Address&,
                             ByteView) { return net::MitmAction::drop(); });
  auto outcomes = sp->provision_fleet();
  ASSERT_FALSE(outcomes.ok());
  EXPECT_EQ(outcomes.error().code, "sp.no_healthy_nodes");
}

TEST_F(FaultFixture, TamperedBundleInTransitRejected) {
  auto node = deploy_node("10.0.0.1");
  auto sp = make_sp();
  sp->approve_node(node->bootstrap_address(), platforms[0]->chip_id());
  // A MITM flips one byte of every response going to the SP? We cannot
  // touch responses, so flip the request path instead — the node will 404,
  // which the SP must treat as a failed node, not a crash.
  network.set_interceptor(
      [](const net::Address&, const net::Address& to, ByteView request) {
        if (to.port == 8443) {
          Bytes mangled = to_bytes(request);
          if (mangled.size() > 20) mangled[15] ^= 0x01;
          return net::MitmAction::tamper(std::move(mangled));
        }
        return net::MitmAction::forward();
      });
  auto csr = sp->attest_node(node->bootstrap_address());
  EXPECT_FALSE(csr.ok());
}

TEST_F(FaultFixture, KdsOutageFailsAttestationClosed) {
  auto node = deploy_node("10.0.0.1");
  auto sp = make_sp();
  sp->approve_node(node->bootstrap_address(), platforms[0]->chip_id());
  ASSERT_TRUE(sp->provision_fleet().ok());
  network.dns_set_a(kDomain, "10.0.0.1");

  // KDS goes down AFTER provisioning; a fresh end-user cannot attest and
  // must NOT be shown the page as verified.
  network.set_interceptor(
      [](const net::Address&, const net::Address& to, ByteView) {
        if (to.host == "kds.amd.com") return net::MitmAction::drop();
        return net::MitmAction::forward();
      });
  Browser browser(network, "laptop", acme.trusted_roots(),
                  HmacDrbg(to_bytes(std::string_view("user"))));
  WebExtensionConfig ext_config;
  ext_config.kds_address = {"kds.amd.com", 443};
  WebExtension extension(browser, ext_config);
  SiteRegistration site;
  site.expected_measurements = {expected};
  extension.register_site(kDomain, site);
  auto r = extension.get(kDomain, 443, "/");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "extension.attestation_failed");
}

TEST_F(FaultFixture, ReattestationAfterServerRestartSucceeds) {
  auto node = deploy_node("10.0.0.1");
  auto sp = make_sp();
  sp->approve_node(node->bootstrap_address(), platforms[0]->chip_id());
  ASSERT_TRUE(sp->provision_fleet().ok());
  network.dns_set_a(kDomain, "10.0.0.1");

  Browser browser(network, "laptop", acme.trusted_roots(),
                  HmacDrbg(to_bytes(std::string_view("user"))));
  WebExtensionConfig ext_config;
  ext_config.kds_address = {"kds.amd.com", 443};
  WebExtension extension(browser, ext_config);
  SiteRegistration site;
  site.expected_measurements = {expected};
  extension.register_site(kDomain, site);
  ASSERT_TRUE(extension.get(kDomain, 443, "/").ok());

  // The genuine server restarts (same VM, sessions dropped). The browser
  // reconnects; the extension re-attests the new session transparently.
  browser.drop_session(kDomain);
  auto again = extension.get(kDomain, 443, "/");
  ASSERT_TRUE(again.ok()) << again.error().to_string();
  EXPECT_TRUE(again->checks.all_ok());
  EXPECT_EQ(extension.attestations_performed(), 2u);
  EXPECT_EQ(extension.kds_fetches(), 1u) << "VCEK cache still valid";
}

// -------------------------------------------------- malformed messages

TEST_F(FaultFixture, BootstrapEndpointRejectsGarbageAndUnknownPaths) {
  auto node = deploy_node("10.0.0.1");
  // Garbage frame.
  auto raw = network.call({"x", 1}, node->bootstrap_address(),
                          to_bytes(std::string_view("not-http")));
  ASSERT_TRUE(raw.ok());
  auto response = net::HttpResponse::parse(*raw);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 400);

  // Unknown path.
  net::HttpRequest request;
  request.method = "GET";
  request.path = "/revelio/unknown";
  raw = network.call({"x", 1}, node->bootstrap_address(),
                     request.serialize());
  response = net::HttpResponse::parse(*raw);
  EXPECT_EQ(response->status, 404);

  // Malformed certificate install body.
  request.method = "POST";
  request.path = "/revelio/certificate";
  request.body = to_bytes(std::string_view("garbage"));
  raw = network.call({"x", 1}, node->bootstrap_address(),
                     request.serialize());
  response = net::HttpResponse::parse(*raw);
  EXPECT_EQ(response->status, 400);

  // Key request before any identity is installed.
  request.path = "/revelio/key-request";
  request.body = node->identity_evidence().serialize();
  raw = network.call({"x", 1}, node->bootstrap_address(),
                     request.serialize());
  response = net::HttpResponse::parse(*raw);
  EXPECT_EQ(response->status, 503);
}

TEST_F(FaultFixture, CertificateForWrongDomainRefused) {
  auto node = deploy_node("10.0.0.1");
  // Hand-issue a certificate for a different domain and push it.
  HmacDrbg ca_drbg(to_bytes(std::string_view("other-ca")));
  auto root = pki::CertificateAuthority::create_root(
      crypto::p384(), {"Root", "X", "US"}, 0,
      365ull * 24 * 3600 * 1000 * 1000, ca_drbg);
  const auto cert = root.issue_for_key(
      "P-256", node->identity_public_key(), {"other.example", "X", "US"},
      {"other.example"}, 0, 365ull * 24 * 3600 * 1000 * 1000);

  Bytes body;
  auto field = [&body](ByteView v) {
    append_u32be(body, static_cast<std::uint32_t>(v.size()));
    append(body, v);
  };
  field(cert.serialize());
  append_u32be(body, 0);  // no chain
  field(to_bytes(std::string_view("10.0.0.1")));
  append_u32be(body, 8443);

  net::HttpRequest request;
  request.method = "POST";
  request.path = "/revelio/certificate";
  request.body = std::move(body);
  auto raw = network.call({"x", 1}, node->bootstrap_address(),
                          request.serialize());
  auto response = net::HttpResponse::parse(*raw);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 400);
  EXPECT_FALSE(node->serving_tls());
}

TEST_F(FaultFixture, KdsServiceRejectsMalformedAndUnknownRequests) {
  // Malformed request size.
  auto raw = network.call({"x", 1}, {"kds.amd.com", 443},
                          to_bytes(std::string_view("short")));
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(to_string(ByteView(*raw).subspan(0, 2)), "ER");

  // Unknown chip.
  Bytes request(64 + 8, 0xaa);
  raw = network.call({"x", 1}, {"kds.amd.com", 443}, request);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(to_string(ByteView(*raw).subspan(0, 2)), "ER");

  // Client helper surfaces the error.
  sevsnp::ChipId unknown = sevsnp::ChipId::from(Bytes(64, 0xaa));
  auto fetched = KdsService::fetch(network, {"x", 1}, {"kds.amd.com", 443},
                                   unknown, sevsnp::TcbVersion{});
  ASSERT_FALSE(fetched.ok());
  EXPECT_EQ(fetched.error().code, "kds.error");
}

TEST_F(FaultFixture, AcmeChallengeIsSingleUse) {
  const auto key = crypto::ec_generate(crypto::p256(), drbg);
  const auto csr = pki::make_csr(crypto::p256(), key, {kDomain, "S", "US"},
                                 {kDomain});
  const std::string token = acme.request_challenge("acct", kDomain);
  network.dns_set_txt("_acme-challenge." + std::string(kDomain), token);
  auto lookup = [this](const std::string& name) {
    return network.dns_txt(name);
  };
  ASSERT_TRUE(acme.finalize("acct", csr, lookup).ok());
  // The consumed challenge cannot authorize a second issuance.
  const auto again = acme.finalize("acct", csr, lookup);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().code, "acme.no_challenge");
}

TEST_F(FaultFixture, FirewallBlocksUnlistedBootstrapPort) {
  // An image that does not allow the bootstrap port: the VM must refuse to
  // expose its provisioning endpoints (and the SP round then fails).
  imagebuild::BuildInputs inputs;
  inputs.base_image_digest = base_digest;
  inputs.service_files["/opt/service/app"] =
      to_bytes(std::string_view("app-v1"));
  inputs.initrd.services = {{"app", "/opt/service/app", 50.0}};
  inputs.initrd.allowed_inbound_ports = {"443"};  // 8443 missing
  imagebuild::ImageBuilder builder(registry);
  const auto locked_image = *builder.build(inputs);

  auto platform = std::make_unique<sevsnp::AmdSp>(
      to_bytes(std::string_view("locked-platform")),
      sevsnp::TcbVersion{2, 0, 8, 115});
  kds.register_platform(*platform);
  RevelioVmConfig config;
  config.domain = kDomain;
  config.host = "10.0.0.7";
  config.image = locked_image;
  config.kds_address = {"kds.amd.com", 443};
  auto node =
      RevelioVm::deploy(*platform, network, config, net::HttpRouter{});
  ASSERT_TRUE(node.ok());
  EXPECT_FALSE(network.is_listening((*node)->bootstrap_address()));
  platforms.push_back(std::move(platform));
}

// ------------------------------------------------ storage error taxonomy

TEST(ErrorTaxonomy, StorageCodesSplitTransientFromPermanent) {
  // A recoverable I/O hiccup may be retried: the WAL frame either landed
  // or it didn't, and recovery truncates a torn tail.
  EXPECT_TRUE(Error::make("store.io_transient", "EINTR").is_transient());
  // Integrity failures must never be retried — corrupt bytes do not
  // become honest on the second read, and retrying an attacker-induced
  // failure just hands the attacker more attempts.
  EXPECT_FALSE(Error::make("store.corrupt", "bad CRC").is_transient());
  EXPECT_FALSE(
      Error::make("store.manifest_mismatch", "bad gen").is_transient());
  EXPECT_FALSE(Error::make("store.io_crashed", "wedged").is_transient());
  // The existing split is unchanged.
  EXPECT_TRUE(Error::make("net.timeout", "").is_transient());
  EXPECT_FALSE(Error::make("attest.bad_signature", "").is_transient());
}

// ------------------------------------------------- revocation fail-closed

TEST_F(FaultFixture, RevokedMeasurementFailsAttestationClosed) {
  auto node = deploy_node("10.0.0.1");
  auto sp = make_sp();
  sp->approve_node(node->bootstrap_address(), platforms[0]->chip_id());
  ASSERT_TRUE(sp->provision_fleet().ok());
  network.dns_set_a(kDomain, "10.0.0.1");

  RevocationSet revocations;
  Browser browser(network, "laptop", acme.trusted_roots(),
                  HmacDrbg(to_bytes(std::string_view("user"))));
  WebExtensionConfig ext_config;
  ext_config.kds_address = {"kds.amd.com", 443};
  ext_config.revocation_set = &revocations;
  WebExtension extension(browser, ext_config);
  SiteRegistration site;
  site.expected_measurements = {expected};
  extension.register_site(kDomain, site);

  // Empty revocation set: the page attests fine.
  ASSERT_TRUE(extension.get(kDomain, 443, "/").ok());
  EXPECT_GE(revocations.stats().checks, 1u);

  // The image's measurement is revoked (vulnerability disclosed). The
  // same genuine server — valid report, valid VCEK chain, expected
  // measurement — must now be refused, before any signature work.
  ASSERT_TRUE(revocations.revoke_measurement(expected, "CVE-2026-0001").ok());
  browser.drop_session(kDomain);
  auto r = extension.get(kDomain, 443, "/");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "extension.attestation_failed");
  EXPECT_GE(revocations.stats().hits, 1u);
}

TEST_F(FaultFixture, RevokedChipFailsAttestationClosed) {
  auto node = deploy_node("10.0.0.1");
  auto sp = make_sp();
  sp->approve_node(node->bootstrap_address(), platforms[0]->chip_id());
  ASSERT_TRUE(sp->provision_fleet().ok());
  network.dns_set_a(kDomain, "10.0.0.1");

  RevocationSet revocations;
  ASSERT_TRUE(
      revocations.revoke_chip(platforms[0]->chip_id(), "compromised host")
          .ok());
  Browser browser(network, "laptop", acme.trusted_roots(),
                  HmacDrbg(to_bytes(std::string_view("user"))));
  WebExtensionConfig ext_config;
  ext_config.kds_address = {"kds.amd.com", 443};
  ext_config.revocation_set = &revocations;
  WebExtension extension(browser, ext_config);
  SiteRegistration site;
  site.expected_measurements = {expected};
  extension.register_site(kDomain, site);

  auto r = extension.get(kDomain, 443, "/");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "extension.attestation_failed");
  EXPECT_GE(revocations.stats().hits, 1u);
}

}  // namespace
}  // namespace revelio::core

#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "crypto/aes.hpp"
#include "crypto/bigint.hpp"
#include "crypto/drbg.hpp"
#include "crypto/ec.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/hmac.hpp"
#include "crypto/kdf.hpp"
#include "crypto/merkle.hpp"
#include "crypto/modes.hpp"
#include "crypto/sha2.hpp"

namespace revelio::crypto {
namespace {

Bytes H(std::string_view hex) {
  auto v = from_hex(hex);
  EXPECT_TRUE(v.has_value()) << hex;
  return *v;
}

// ---------------------------------------------------------------- SHA-2

TEST(Sha256, Fips180Abc) {
  EXPECT_EQ(to_hex(sha256(to_bytes(std::string_view("abc"))).view()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(sha256({}).view()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, TwoBlockMessage) {
  const auto msg = to_bytes(std::string_view(
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"));
  EXPECT_EQ(to_hex(sha256(msg).view()),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, StreamingMatchesOneShot) {
  const Bytes data = to_bytes(std::string_view(
      "The quick brown fox jumps over the lazy dog, repeatedly."));
  Sha256 h;
  // Feed in awkward chunk sizes crossing block boundaries.
  std::size_t off = 0;
  const std::size_t chunks[] = {1, 3, 17, 64, 5, 100};
  for (std::size_t c : chunks) {
    const std::size_t take = std::min(c, data.size() - off);
    h.update(ByteView(data.data() + off, take));
    off += take;
    if (off == data.size()) break;
  }
  EXPECT_EQ(to_hex(h.finish().view()), to_hex(sha256(data).view()));
}

TEST(Sha256, MillionA) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish().view()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha384, Fips180Abc) {
  EXPECT_EQ(to_hex(sha384(to_bytes(std::string_view("abc"))).view()),
            "cb00753f45a35e8bb5a03d699ac65007272c32ab0eded1631a8b605a43ff5bed"
            "8086072ba1e7cc2358baeca134c825a7");
}

TEST(Sha512, Fips180Abc) {
  EXPECT_EQ(to_hex(sha512(to_bytes(std::string_view("abc"))).view()),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512, EmptyString) {
  EXPECT_EQ(to_hex(sha512({}).view()),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

// ---------------------------------------------------------------- HMAC

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const auto mac = hmac_sha256(key, to_bytes(std::string_view("Hi There")));
  EXPECT_EQ(to_hex(mac.view()),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const auto mac =
      hmac_sha256(to_bytes(std::string_view("Jefe")),
                  to_bytes(std::string_view("what do ya want for nothing?")));
  EXPECT_EQ(to_hex(mac.view()),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data).view()),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  const auto mac = hmac_sha256(
      key, to_bytes(std::string_view("Test Using Larger Than Block-Size Key "
                                     "- Hash Key First")));
  EXPECT_EQ(to_hex(mac.view()),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, Sha384Variant) {
  // RFC 4231 case 1 for HMAC-SHA-384.
  const Bytes key(20, 0x0b);
  const auto mac = hmac_sha384(key, to_bytes(std::string_view("Hi There")));
  EXPECT_EQ(to_hex(mac.view()),
            "afd03944d84895626b0825f4ab46907f15f9dadbe4101ec682aa034c7cebc59c"
            "faea9ea9076ede7f4af152e8b2fa9cb6");
}

// ---------------------------------------------------------------- KDFs

TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = H("000102030405060708090a0b0c");
  const Bytes info = H("f0f1f2f3f4f5f6f7f8f9");
  const Bytes okm = hkdf_sha256(ikm, salt, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, Rfc5869Case3EmptySaltInfo) {
  const Bytes ikm(22, 0x0b);
  const Bytes okm = hkdf_sha256(ikm, {}, {}, 42);
  EXPECT_EQ(to_hex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Pbkdf2, Rfc7914Vector1) {
  const Bytes dk = pbkdf2_sha256(to_bytes(std::string_view("password")),
                                 to_bytes(std::string_view("salt")), 1, 32);
  EXPECT_EQ(to_hex(dk),
            "120fb6cffcf8b32c43e7225256c4f837a86548c92ccc35480805987cb70be17b");
}

TEST(Pbkdf2, Rfc7914Vector2) {
  const Bytes dk = pbkdf2_sha256(to_bytes(std::string_view("password")),
                                 to_bytes(std::string_view("salt")), 2, 32);
  EXPECT_EQ(to_hex(dk),
            "ae4d0c95af6b46d32d0adff928f06dd02a303f8ef3c251dfd6e2d85a95474c43");
}

TEST(Pbkdf2, MultiBlockOutput) {
  // 40-byte output forces two PRF blocks.
  const Bytes dk =
      pbkdf2_sha256(to_bytes(std::string_view("passwordPASSWORDpassword")),
                    to_bytes(std::string_view("saltSALTsaltSALTsaltSALTsaltSAL"
                                              "Tsalt")),
                    4096, 40);
  EXPECT_EQ(to_hex(dk),
            "348c89dbcbd32b2f32d814b8116e84cf2b17347ebc1800181c4e2a1fb8dd53e1"
            "c635518c7dac47e9");
}

// ---------------------------------------------------------------- DRBG

TEST(HmacDrbg, DeterministicForSameSeed) {
  HmacDrbg a(to_bytes(std::string_view("seed material")));
  HmacDrbg b(to_bytes(std::string_view("seed material")));
  EXPECT_EQ(a.generate(48), b.generate(48));
}

TEST(HmacDrbg, DifferentSeedsDiverge) {
  HmacDrbg a(to_bytes(std::string_view("seed-1")));
  HmacDrbg b(to_bytes(std::string_view("seed-2")));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(HmacDrbg, PersonalizationSeparatesStreams) {
  HmacDrbg a(to_bytes(std::string_view("seed")),
             to_bytes(std::string_view("role-a")));
  HmacDrbg b(to_bytes(std::string_view("seed")),
             to_bytes(std::string_view("role-b")));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(HmacDrbg, SequentialCallsDiffer) {
  HmacDrbg drbg(to_bytes(std::string_view("seed")));
  EXPECT_NE(drbg.generate(32), drbg.generate(32));
}

TEST(HmacDrbg, ReseedChangesOutput) {
  HmacDrbg a(to_bytes(std::string_view("seed")));
  HmacDrbg b(to_bytes(std::string_view("seed")));
  b.reseed(to_bytes(std::string_view("extra entropy")));
  EXPECT_NE(a.generate(32), b.generate(32));
}

// ---------------------------------------------------------------- AES

TEST(Aes, Fips197Aes128) {
  const Bytes key = H("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = H("00112233445566778899aabbccddeeff");
  Aes aes(key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex(ByteView(ct, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
  std::uint8_t back[16];
  aes.decrypt_block(ct, back);
  EXPECT_EQ(to_hex(ByteView(back, 16)), to_hex(pt));
}

TEST(Aes, Fips197Aes192) {
  const Bytes key = H("000102030405060708090a0b0c0d0e0f1011121314151617");
  const Bytes pt = H("00112233445566778899aabbccddeeff");
  Aes aes(key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex(ByteView(ct, 16)), "dda97ca4864cdfe06eaf70a0ec0d7191");
}

TEST(Aes, Fips197Aes256) {
  const Bytes key =
      H("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes pt = H("00112233445566778899aabbccddeeff");
  Aes aes(key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex(ByteView(ct, 16)), "8ea2b7ca516745bfeafc49904b496089");
  std::uint8_t back[16];
  aes.decrypt_block(ct, back);
  EXPECT_EQ(to_hex(ByteView(back, 16)), to_hex(pt));
}

// ---------------------------------------------------------------- Modes

TEST(AesXts, RoundTripAndSectorSeparation) {
  HmacDrbg drbg(to_bytes(std::string_view("xts-key")));
  const Bytes key = drbg.generate(64);
  AesXts xts(key);

  Bytes sector(512);
  for (std::size_t i = 0; i < sector.size(); ++i) {
    sector[i] = static_cast<std::uint8_t>(i);
  }
  Bytes a = sector;
  Bytes b = sector;
  xts.encrypt_sector(0, a);
  xts.encrypt_sector(1, b);
  EXPECT_NE(a, b) << "same plaintext must differ across sectors";
  EXPECT_NE(a, sector);

  xts.decrypt_sector(0, a);
  xts.decrypt_sector(1, b);
  EXPECT_EQ(a, sector);
  EXPECT_EQ(b, sector);
}

TEST(AesXts, WrongSectorFailsToDecrypt) {
  HmacDrbg drbg(to_bytes(std::string_view("xts-key-2")));
  AesXts xts(drbg.generate(64));
  Bytes sector(64, 0x5a);
  const Bytes original = sector;
  xts.encrypt_sector(7, sector);
  xts.decrypt_sector(8, sector);
  EXPECT_NE(sector, original);
}

// IEEE 1619-2007 XTS-AES-128 test vectors (32-byte key = key1 || key2).
// These pin the exact cipher + tweak arithmetic, so they hold for both the
// AES-NI and the scalar core (run with REVELIO_NO_ISA=1 for the latter).
TEST(AesXts, Ieee1619Vector1) {
  const Bytes key(32, 0x00);
  AesXts xts(key);
  Bytes data(32, 0x00);
  xts.encrypt_sector(0, data);
  EXPECT_EQ(to_hex(ByteView(data)),
            "917cf69ebd68b2ec9b9fe9a3eadda692cd43d2f59598ed858c02c2652fbf922e");
  xts.decrypt_sector(0, data);
  EXPECT_EQ(data, Bytes(32, 0x00));
}

TEST(AesXts, Ieee1619Vector2) {
  Bytes key(32, 0x11);
  std::fill(key.begin() + 16, key.end(), 0x22);
  AesXts xts(key);
  Bytes data(32, 0x44);
  xts.encrypt_sector(0x3333333333ULL, data);
  EXPECT_EQ(to_hex(ByteView(data)),
            "c454185e6a16936e39334038acef838bfb186fff7480adc4289382ecd6d394f0");
  xts.decrypt_sector(0x3333333333ULL, data);
  EXPECT_EQ(data, Bytes(32, 0x44));
}

TEST(AesXts, BlocksWithinSectorDiffer) {
  HmacDrbg drbg(to_bytes(std::string_view("xts-key-3")));
  AesXts xts(drbg.generate(64));
  Bytes sector(48, 0x00);  // three identical all-zero blocks
  xts.encrypt_sector(3, sector);
  EXPECT_FALSE(std::equal(sector.begin(), sector.begin() + 16,
                          sector.begin() + 16));
  EXPECT_FALSE(std::equal(sector.begin() + 16, sector.begin() + 32,
                          sector.begin() + 32));
}

TEST(AesCtr, KeystreamIsInvolution) {
  HmacDrbg drbg(to_bytes(std::string_view("ctr-key")));
  const Aes cipher(drbg.generate(32));
  const FixedBytes<16> iv = FixedBytes<16>::from(drbg.generate(16));
  Bytes data = to_bytes(std::string_view("counter mode payload over a few "
                                         "blocks of text to exercise wrap"));
  const Bytes original = data;
  aes_ctr_xor(cipher, iv, data);
  EXPECT_NE(data, original);
  aes_ctr_xor(cipher, iv, data);
  EXPECT_EQ(data, original);
}

TEST(AeadCtrHmac, SealOpenRoundTrip) {
  HmacDrbg drbg(to_bytes(std::string_view("aead-key")));
  AeadCtrHmac aead(drbg.generate(64));
  const Bytes nonce = drbg.generate(16);
  const Bytes aad = to_bytes(std::string_view("header"));
  const Bytes pt = to_bytes(std::string_view("secret payload"));
  const Bytes sealed = aead.seal(nonce, aad, pt);
  EXPECT_EQ(sealed.size(), pt.size() + AeadCtrHmac::kOverhead);
  auto opened = aead.open(aad, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, pt);
}

TEST(AeadCtrHmac, TamperedCiphertextRejected) {
  HmacDrbg drbg(to_bytes(std::string_view("aead-key-2")));
  AeadCtrHmac aead(drbg.generate(64));
  Bytes sealed = aead.seal(drbg.generate(16), {},
                           to_bytes(std::string_view("payload")));
  sealed[AeadCtrHmac::kNonceSize] ^= 0x01;
  const auto r = aead.open({}, sealed);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "aead.bad_tag");
}

TEST(AeadCtrHmac, WrongAadRejected) {
  HmacDrbg drbg(to_bytes(std::string_view("aead-key-3")));
  AeadCtrHmac aead(drbg.generate(64));
  const Bytes sealed = aead.seal(drbg.generate(16),
                                 to_bytes(std::string_view("aad-1")),
                                 to_bytes(std::string_view("payload")));
  EXPECT_FALSE(aead.open(to_bytes(std::string_view("aad-2")), sealed).ok());
}

TEST(AeadCtrHmac, TruncatedBlobRejected) {
  HmacDrbg drbg(to_bytes(std::string_view("aead-key-4")));
  AeadCtrHmac aead(drbg.generate(64));
  const Bytes tiny(10, 0);
  EXPECT_EQ(aead.open({}, tiny).error().code, "aead.truncated");
}

// ---------------------------------------------------------------- BigInt

TEST(U384, ByteRoundTrip) {
  const Bytes raw = H("0102030405060708090a0b0c0d0e0f10");
  const U384 v = U384::from_bytes_be(raw);
  EXPECT_EQ(to_hex(v.to_bytes_be(16)), to_hex(raw));
  EXPECT_EQ(v.bit_length(), 121u);  // leading byte 0x01
}

TEST(U384, CompareAndZero) {
  EXPECT_TRUE(U384::zero().is_zero());
  const U384 one = U384::from_u64(1);
  const U384 two = U384::from_u64(2);
  EXPECT_LT(one.cmp(two), 0);
  EXPECT_GT(two.cmp(one), 0);
  EXPECT_EQ(one.cmp(one), 0);
}

TEST(U384, AddSubCarryChain) {
  // (2^384 - 1) + 1 overflows to zero with carry.
  U384 max;
  max.limbs.fill(~0ULL);
  U384 r;
  const std::uint64_t carry = add_with_carry(r, max, U384::from_u64(1));
  EXPECT_EQ(carry, 1u);
  EXPECT_TRUE(r.is_zero());

  const std::uint64_t borrow =
      sub_with_borrow(r, U384::zero(), U384::from_u64(1));
  EXPECT_EQ(borrow, 1u);
  EXPECT_EQ(r.limbs, max.limbs);
}

TEST(MontCtx, MulMatchesSmallModulus) {
  // Modulus 101 (prime): verify Montgomery mul against plain arithmetic.
  const MontCtx ctx(U384::from_u64(101));
  for (std::uint64_t a = 0; a < 101; a += 7) {
    for (std::uint64_t b = 0; b < 101; b += 11) {
      const U384 am = ctx.to_mont(U384::from_u64(a));
      const U384 bm = ctx.to_mont(U384::from_u64(b));
      const U384 product = ctx.from_mont(ctx.mul(am, bm));
      EXPECT_EQ(product.limbs[0], (a * b) % 101);
    }
  }
}

TEST(MontCtx, PowAndFermatInverse) {
  const MontCtx ctx(U384::from_u64(1000003));  // prime
  const U384 a = ctx.to_mont(U384::from_u64(123456));
  const U384 inv = ctx.inv(a);
  const U384 product = ctx.from_mont(ctx.mul(a, inv));
  EXPECT_EQ(product.limbs[0], 1u);
}

TEST(MontCtx, ReduceLargeValue) {
  const MontCtx ctx(U384::from_u64(97));
  U384 big;
  big.limbs.fill(~0ULL);  // 2^384 - 1
  const U384 r = ctx.reduce(big);
  // 2^384 mod 97: verify via repeated squaring in plain arithmetic.
  std::uint64_t expect = 1;
  for (int i = 0; i < 384; ++i) expect = (expect * 2) % 97;
  // reduce(2^384 - 1) == (2^384 - 1) mod 97 == expect - 1 mod 97
  EXPECT_EQ(r.limbs[0], (expect + 97 - 1) % 97);
}

TEST(MontCtx, AddSubModular) {
  const MontCtx ctx(U384::from_u64(13));
  const U384 a = U384::from_u64(9);
  const U384 b = U384::from_u64(7);
  EXPECT_EQ(ctx.add(a, b).limbs[0], 3u);   // 16 mod 13
  EXPECT_EQ(ctx.sub(b, a).limbs[0], 11u);  // -2 mod 13
}

// ---------------------------------------------------------------- EC

TEST(EcP256, GeneratorOnCurve) {
  EXPECT_TRUE(p256().on_curve(p256().generator()));
}

TEST(EcP384, GeneratorOnCurve) {
  EXPECT_TRUE(p384().on_curve(p384().generator()));
}

TEST(EcP256, KnownDoubleOfGenerator) {
  const auto two_g = p256().scalar_mult_base(U384::from_u64(2));
  EXPECT_EQ(to_hex(two_g.x.to_bytes_be(32)),
            "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978");
  EXPECT_EQ(to_hex(two_g.y.to_bytes_be(32)),
            "07775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1");
}

TEST(EcP256, AddMatchesDouble) {
  const auto g = p256().generator();
  const auto sum = p256().add(g, g);
  const auto dbl = p256().scalar_mult_base(U384::from_u64(2));
  EXPECT_EQ(sum.x.limbs, dbl.x.limbs);
  EXPECT_EQ(sum.y.limbs, dbl.y.limbs);
}

TEST(EcP384, AddMatchesDouble) {
  const auto g = p384().generator();
  const auto sum = p384().add(g, g);
  const auto dbl = p384().scalar_mult_base(U384::from_u64(2));
  EXPECT_EQ(sum.x.limbs, dbl.x.limbs);
  EXPECT_EQ(sum.y.limbs, dbl.y.limbs);
}

TEST(EcP256, ScalarMultDistributes) {
  // (a + b) G == aG + bG for several pairs.
  const std::uint64_t pairs[][2] = {{2, 3}, {10, 7}, {123456, 654321}};
  for (const auto& pair : pairs) {
    const auto lhs = p256().scalar_mult_base(U384::from_u64(pair[0] + pair[1]));
    const auto rhs = p256().add(p256().scalar_mult_base(U384::from_u64(pair[0])),
                                p256().scalar_mult_base(U384::from_u64(pair[1])));
    EXPECT_EQ(lhs.x.limbs, rhs.x.limbs);
    EXPECT_EQ(lhs.y.limbs, rhs.y.limbs);
  }
}

TEST(EcP256, OrderTimesGeneratorIsInfinity) {
  const auto r = p256().scalar_mult_base(p256().params().n);
  EXPECT_TRUE(r.infinity);
}

TEST(EcP384, OrderTimesGeneratorIsInfinity) {
  const auto r = p384().scalar_mult_base(p384().params().n);
  EXPECT_TRUE(r.infinity);
}

TEST(EcP256, RandomScalarsLandOnCurve) {
  HmacDrbg drbg(to_bytes(std::string_view("ec-scalars")));
  for (int i = 0; i < 8; ++i) {
    const U384 k = U384::from_bytes_be(drbg.generate(32));
    const auto pt = p256().scalar_mult_base(p256().scalar_field().reduce(k));
    if (!pt.infinity) { EXPECT_TRUE(p256().on_curve(pt)); }
  }
}

TEST(EcP384, RandomScalarsLandOnCurve) {
  HmacDrbg drbg(to_bytes(std::string_view("ec-scalars-384")));
  for (int i = 0; i < 4; ++i) {
    const U384 k = U384::from_bytes_be(drbg.generate(48));
    const auto pt = p384().scalar_mult_base(p384().scalar_field().reduce(k));
    if (!pt.infinity) { EXPECT_TRUE(p384().on_curve(pt)); }
  }
}

TEST(Ec, PointEncodingRoundTrip) {
  const auto g2 = p256().scalar_mult_base(U384::from_u64(5));
  const Bytes enc = p256().encode_point(g2);
  EXPECT_EQ(enc.size(), 65u);
  const auto back = p256().decode_point(enc);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->x.limbs, g2.x.limbs);
  EXPECT_EQ(back->y.limbs, g2.y.limbs);
}

TEST(Ec, DecodeRejectsOffCurvePoint) {
  auto enc = p256().encode_point(p256().generator());
  enc[40] ^= 0x01;  // corrupt a coordinate byte
  const auto result = p256().decode_point(enc);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "ec.point_not_on_curve");
}

TEST(Ec, DecodeRejectsBadLengthOrPrefix) {
  const Bytes short_buf(10, 0);
  const auto too_short = p256().decode_point(short_buf);
  ASSERT_FALSE(too_short.ok());
  EXPECT_EQ(too_short.error().code, "ec.bad_point_encoding");
  auto enc = p256().encode_point(p256().generator());
  enc[0] = 0x02;
  const auto bad_prefix = p256().decode_point(enc);
  ASSERT_FALSE(bad_prefix.ok());
  EXPECT_EQ(bad_prefix.error().code, "ec.bad_point_encoding");
}

TEST(Ec, DecodeRejectsNonCanonicalCoordinate) {
  // x = p (the field prime itself) is out of range even though x mod p
  // would land on a representable value.
  Bytes enc;
  enc.push_back(0x04);
  append(enc, p256().params().p.to_bytes_be(32));
  append(enc, p256().generator().y.to_bytes_be(32));
  const auto result = p256().decode_point(enc);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "ec.coordinate_out_of_range");
}

// ---------------------------------------------------------------- ECDSA

class EcdsaCurves : public ::testing::TestWithParam<const Curve*> {};

TEST_P(EcdsaCurves, SignVerifyRoundTrip) {
  const Curve& curve = *GetParam();
  HmacDrbg drbg(to_bytes(std::string_view("ecdsa-keys")),
                to_bytes(curve.params().name));
  const EcKeyPair kp = ec_generate(curve, drbg);
  EXPECT_TRUE(curve.on_curve(kp.q));

  const auto hash = sha384(to_bytes(std::string_view("message to sign")));
  const EcdsaSignature sig = ecdsa_sign(curve, kp.d, hash.view());
  EXPECT_TRUE(ecdsa_verify(curve, kp.q, hash.view(), sig));
}

TEST_P(EcdsaCurves, WrongMessageFails) {
  const Curve& curve = *GetParam();
  HmacDrbg drbg(to_bytes(std::string_view("ecdsa-keys-2")),
                to_bytes(curve.params().name));
  const EcKeyPair kp = ec_generate(curve, drbg);
  const auto h1 = sha384(to_bytes(std::string_view("message A")));
  const auto h2 = sha384(to_bytes(std::string_view("message B")));
  const EcdsaSignature sig = ecdsa_sign(curve, kp.d, h1.view());
  EXPECT_FALSE(ecdsa_verify(curve, kp.q, h2.view(), sig));
}

TEST_P(EcdsaCurves, WrongKeyFails) {
  const Curve& curve = *GetParam();
  HmacDrbg drbg(to_bytes(std::string_view("ecdsa-keys-3")),
                to_bytes(curve.params().name));
  const EcKeyPair signer = ec_generate(curve, drbg);
  const EcKeyPair other = ec_generate(curve, drbg);
  const auto hash = sha384(to_bytes(std::string_view("message")));
  const EcdsaSignature sig = ecdsa_sign(curve, signer.d, hash.view());
  EXPECT_FALSE(ecdsa_verify(curve, other.q, hash.view(), sig));
}

TEST_P(EcdsaCurves, SignatureIsDeterministic) {
  const Curve& curve = *GetParam();
  HmacDrbg drbg(to_bytes(std::string_view("ecdsa-keys-4")),
                to_bytes(curve.params().name));
  const EcKeyPair kp = ec_generate(curve, drbg);
  const auto hash = sha384(to_bytes(std::string_view("stable message")));
  const auto s1 = ecdsa_sign(curve, kp.d, hash.view());
  const auto s2 = ecdsa_sign(curve, kp.d, hash.view());
  EXPECT_EQ(s1.encode(curve), s2.encode(curve));
}

TEST_P(EcdsaCurves, TamperedSignatureComponentsFail) {
  const Curve& curve = *GetParam();
  HmacDrbg drbg(to_bytes(std::string_view("ecdsa-keys-5")),
                to_bytes(curve.params().name));
  const EcKeyPair kp = ec_generate(curve, drbg);
  const auto hash = sha384(to_bytes(std::string_view("message")));
  EcdsaSignature sig = ecdsa_sign(curve, kp.d, hash.view());
  sig.r.limbs[0] ^= 1;
  EXPECT_FALSE(ecdsa_verify(curve, kp.q, hash.view(), sig));
}

TEST_P(EcdsaCurves, EncodingRoundTrip) {
  const Curve& curve = *GetParam();
  HmacDrbg drbg(to_bytes(std::string_view("ecdsa-keys-6")),
                to_bytes(curve.params().name));
  const EcKeyPair kp = ec_generate(curve, drbg);
  const auto hash = sha384(to_bytes(std::string_view("encode me")));
  const EcdsaSignature sig = ecdsa_sign(curve, kp.d, hash.view());
  const Bytes enc = sig.encode(curve);
  const auto back = EcdsaSignature::decode(curve, enc);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(ecdsa_verify(curve, kp.q, hash.view(), *back));
}

TEST_P(EcdsaCurves, RejectsZeroOrOutOfRangeComponents) {
  const Curve& curve = *GetParam();
  HmacDrbg drbg(to_bytes(std::string_view("ecdsa-keys-7")),
                to_bytes(curve.params().name));
  const EcKeyPair kp = ec_generate(curve, drbg);
  const auto hash = sha384(to_bytes(std::string_view("message")));
  EcdsaSignature sig = ecdsa_sign(curve, kp.d, hash.view());
  EcdsaSignature zero_r = sig;
  zero_r.r = U384::zero();
  EXPECT_FALSE(ecdsa_verify(curve, kp.q, hash.view(), zero_r));
  EcdsaSignature big_s = sig;
  big_s.s = curve.params().n;
  EXPECT_FALSE(ecdsa_verify(curve, kp.q, hash.view(), big_s));
}

INSTANTIATE_TEST_SUITE_P(Curves, EcdsaCurves,
                         ::testing::Values(&p256(), &p384()),
                         [](const auto& info) {
                           return info.param->params().name == "P-256"
                                      ? std::string("P256")
                                      : std::string("P384");
                         });

TEST(Ecdh, SharedSecretAgrees) {
  HmacDrbg drbg(to_bytes(std::string_view("ecdh")));
  const EcKeyPair alice = ec_generate(p256(), drbg);
  const EcKeyPair bob = ec_generate(p256(), drbg);
  const auto s1 = ecdh_shared_secret(p256(), alice.d, bob.q);
  const auto s2 = ecdh_shared_secret(p256(), bob.d, alice.q);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s1, *s2);
}

TEST(Ecdh, RejectsInvalidPeer) {
  HmacDrbg drbg(to_bytes(std::string_view("ecdh-2")));
  const EcKeyPair alice = ec_generate(p256(), drbg);
  Curve::Point bogus{U384::from_u64(1), U384::from_u64(2), false};
  EXPECT_FALSE(ecdh_shared_secret(p256(), alice.d, bogus).ok());
  EXPECT_FALSE(
      ecdh_shared_secret(p256(), alice.d, Curve::Point::at_infinity()).ok());
}

// ------------------------------------- ECDSA known-answer vectors (CAVP)
//
// Signature values from RFC 6979 (deterministic ECDSA test vectors, which
// exercise the same SigVer math as NIST CAVP): any correct verifier must
// accept them. Our signer uses its own deterministic nonce construction,
// so the *sign* KAT checks public-key derivation d -> Q and that our own
// signatures verify under the vector keys, not nonce equality.

TEST(EcdsaKat, P256Rfc6979PublicKeyDerivation) {
  const U384 d = U384::from_hex(
      "c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721");
  const auto q = p256().scalar_mult_base(d);
  ASSERT_FALSE(q.infinity);
  EXPECT_EQ(to_hex(q.x.to_bytes_be(32)),
            "60fed4ba255a9d31c961eb74c6356d68c049b8923b61fa6ce669622e60f29fb6");
  EXPECT_EQ(to_hex(q.y.to_bytes_be(32)),
            "7903fe1008b8bc99a41ae9e95628bc64f2f1b20c2d7e9f5177a3c294d4462299");
}

TEST(EcdsaKat, P256Rfc6979Sha256SampleVerifies) {
  const Curve::Point q{
      U384::from_hex("60fed4ba255a9d31c961eb74c6356d68c049b8923b61fa6ce66962"
                     "2e60f29fb6"),
      U384::from_hex("7903fe1008b8bc99a41ae9e95628bc64f2f1b20c2d7e9f5177a3c2"
                     "94d4462299"),
      false};
  const auto hash = sha256(to_bytes(std::string_view("sample")));
  EcdsaSignature sig;
  sig.r = U384::from_hex(
      "efd48b2aacb6a8fd1140dd9cd45e81d69d2c877b56aaf991c34d0ea84eaf3716");
  sig.s = U384::from_hex(
      "f7cb1c942d657c41d436c7a1b6e29f65f3e900dbb9aff4064dc4ab2f843acda8");
  EXPECT_TRUE(ecdsa_verify(p256(), q, hash.view(), sig));
  // A single flipped message bit must fail.
  const auto wrong = sha256(to_bytes(std::string_view("samplf")));
  EXPECT_FALSE(ecdsa_verify(p256(), q, wrong.view(), sig));
}

TEST(EcdsaKat, P256Rfc6979Sha256TestVerifies) {
  const Curve::Point q{
      U384::from_hex("60fed4ba255a9d31c961eb74c6356d68c049b8923b61fa6ce66962"
                     "2e60f29fb6"),
      U384::from_hex("7903fe1008b8bc99a41ae9e95628bc64f2f1b20c2d7e9f5177a3c2"
                     "94d4462299"),
      false};
  const auto hash = sha256(to_bytes(std::string_view("test")));
  EcdsaSignature sig;
  sig.r = U384::from_hex(
      "f1abb023518351cd71d881567b1ea663ed3efcf6c5132b354f28d3b0b7d38367");
  sig.s = U384::from_hex(
      "019f4113742a2b14bd25926b49c649155f267e60d3814b4c0cc84250e46f0083");
  EXPECT_TRUE(ecdsa_verify(p256(), q, hash.view(), sig));
  // Swapped components must fail.
  EcdsaSignature swapped{sig.s, sig.r};
  EXPECT_FALSE(ecdsa_verify(p256(), q, hash.view(), swapped));
}

TEST(EcdsaKat, P384Rfc6979PublicKeyDerivation) {
  const U384 d = U384::from_hex(
      "6b9d3dad2e1b8c1c05b19875b6659f4de23c3b667bf297ba9aa47740787137d8"
      "96d5724e4c70a825f872c9ea60d2edf5");
  const auto q = p384().scalar_mult_base(d);
  ASSERT_FALSE(q.infinity);
  EXPECT_EQ(to_hex(q.x.to_bytes_be(48)),
            "ec3a4e415b4e19a4568618029f427fa5da9a8bc4ae92e02e06aae5286b300c64"
            "def8f0ea9055866064a254515480bc13");
  EXPECT_EQ(to_hex(q.y.to_bytes_be(48)),
            "8015d9b72d7d57244ea8ef9ac0c621896708a59367f9dfb9f54ca84b3f1c9db1"
            "288b231c3ae0d4fe7344fd2533264720");
}

TEST(EcdsaKat, P384Rfc6979Sha384SampleVerifies) {
  const Curve::Point q{
      U384::from_hex("ec3a4e415b4e19a4568618029f427fa5da9a8bc4ae92e02e06aae5"
                     "286b300c64def8f0ea9055866064a254515480bc13"),
      U384::from_hex("8015d9b72d7d57244ea8ef9ac0c621896708a59367f9dfb9f54ca8"
                     "4b3f1c9db1288b231c3ae0d4fe7344fd2533264720"),
      false};
  const auto hash = sha384(to_bytes(std::string_view("sample")));
  EcdsaSignature sig;
  sig.r = U384::from_hex(
      "94edbb92a5ecb8aad4736e56c691916b3f88140666ce9fa73d64c4ea95ad133c"
      "81a648152e44acf96e36dd1e80fabe46");
  sig.s = U384::from_hex(
      "99ef4aeb15f178cea1fe40db2603138f130e740a19624526203b6351d0a3a94f"
      "a329c145786e679e7b82c71a38628ac8");
  EXPECT_TRUE(ecdsa_verify(p384(), q, hash.view(), sig));
}

TEST(EcdsaKat, OwnSignaturesVerifyUnderVectorKeys) {
  // Our deterministic nonce differs from RFC 6979, so r/s differ, but the
  // signature must still verify under the vector's key pair.
  const U384 d = U384::from_hex(
      "c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721");
  const auto q = p256().scalar_mult_base(d);
  const auto hash = sha256(to_bytes(std::string_view("sample")));
  const auto sig = ecdsa_sign(p256(), d, hash.view());
  EXPECT_TRUE(ecdsa_verify(p256(), q, hash.view(), sig));
}

TEST(Ec, VerifyTableCacheServesRepeatedKeys) {
  HmacDrbg drbg(to_bytes(std::string_view("cache-check")));
  const EcKeyPair kp = ec_generate(p256(), drbg);
  const auto hash = sha384(to_bytes(std::string_view("cached message")));
  const auto sig = ecdsa_sign(p256(), kp.d, hash.view());
  const auto before = p256().verify_cache_stats();
  EXPECT_TRUE(ecdsa_verify(p256(), kp.q, hash.view(), sig));
  EXPECT_TRUE(ecdsa_verify(p256(), kp.q, hash.view(), sig));
  const auto after = p256().verify_cache_stats();
  // First verify may hit or miss (other tests share the singleton), but the
  // second one must be served from the per-key table cache.
  EXPECT_GE(after.hits, before.hits + 1);
}

// ------------------------------------------------- extra known answers

TEST(Sha384, EmptyString) {
  EXPECT_EQ(to_hex(sha384({}).view()),
            "38b060a751ac96384cd9327eb1b1e36a21fdb71114be07434c0cc7bf63f6e1da"
            "274edebfe76f65fbd51ad2f14898b95b");
}

TEST(Sha384, TwoBlockMessage) {
  const auto msg = to_bytes(std::string_view(
      "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
      "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"));
  EXPECT_EQ(to_hex(sha384(msg).view()),
            "09330c33f71147e83d192fc782cd1b4753111b173b3b05d22fa08086e3b0f712"
            "fcc7c71a557e2db966c3e9fa91746039");
}

TEST(Hmac, Rfc4231Case4TruncatedKeyData) {
  // key = 0x0102..0x19, data = 0xcd x 50.
  Bytes key(25);
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i + 1);
  }
  const Bytes data(50, 0xcd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data).view()),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(Aes, Fips197Aes192Decrypt) {
  const Bytes key = H("000102030405060708090a0b0c0d0e0f1011121314151617");
  const Bytes ct = H("dda97ca4864cdfe06eaf70a0ec0d7191");
  Aes aes(key);
  std::uint8_t pt[16];
  aes.decrypt_block(ct.data(), pt);
  EXPECT_EQ(to_hex(ByteView(pt, 16)), "00112233445566778899aabbccddeeff");
}

TEST(U384, ToBytesTruncatesHighZeros) {
  const U384 v = U384::from_u64(0xabcd);
  EXPECT_EQ(to_hex(v.to_bytes_be(2)), "abcd");
  EXPECT_EQ(to_hex(v.to_bytes_be(4)), "0000abcd");
}

TEST(U384, BitLengthEdges) {
  EXPECT_EQ(U384::zero().bit_length(), 0u);
  EXPECT_EQ(U384::from_u64(1).bit_length(), 1u);
  U384 top;
  top.limbs[5] = 1ULL << 63;
  EXPECT_EQ(top.bit_length(), 384u);
  EXPECT_TRUE(top.bit(383));
  EXPECT_FALSE(top.bit(0));
}

TEST(MontCtx, OneIsMontgomeryIdentity) {
  const MontCtx ctx(U384::from_u64(1000003));
  const U384 a = ctx.to_mont(U384::from_u64(777));
  EXPECT_EQ(ctx.from_mont(ctx.mul(a, ctx.one())).limbs[0], 777u);
}

TEST(EcP384, GeneratorOrderBoundary) {
  // (n-1)G + G == infinity on P-384 too.
  U384 n_minus_1;
  sub_with_borrow(n_minus_1, p384().params().n, U384::from_u64(1));
  const auto almost = p384().scalar_mult_base(n_minus_1);
  ASSERT_FALSE(almost.infinity);
  EXPECT_TRUE(p384().add(almost, p384().generator()).infinity);
}

TEST(Ecdsa, VerifyRejectsInfinityAndOffCurveKeys) {
  HmacDrbg drbg(to_bytes(std::string_view("edge")));
  const EcKeyPair kp = ec_generate(p256(), drbg);
  const auto hash = sha384(to_bytes(std::string_view("m")));
  const auto sig = ecdsa_sign(p256(), kp.d, hash.view());
  EXPECT_FALSE(
      ecdsa_verify(p256(), Curve::Point::at_infinity(), hash.view(), sig));
  Curve::Point off{U384::from_u64(5), U384::from_u64(7), false};
  EXPECT_FALSE(ecdsa_verify(p256(), off, hash.view(), sig));
}

// ---------------------------------------------------------------- Merkle

TEST(Merkle, SingleLeaf) {
  const Bytes block(16, 0xaa);
  const auto tree = MerkleTree::from_blocks(block, 16);
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_EQ(tree.root(), MerkleTree::hash_leaf(block));
}

TEST(Merkle, PathVerifiesForEveryLeaf) {
  Bytes data(4096 * 5 + 100, 0);  // 6 blocks, last partial
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31);
  }
  const auto tree = MerkleTree::from_blocks(data, 4096);
  ASSERT_EQ(tree.leaf_count(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    const std::size_t off = i * 4096;
    Bytes block(4096, 0);
    const std::size_t len = std::min<std::size_t>(4096, data.size() - off);
    std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(off), len,
                block.begin());
    const auto leaf = MerkleTree::hash_leaf(block);
    EXPECT_TRUE(MerkleTree::verify_path(leaf, i, tree.path(i),
                                        tree.leaf_count(), tree.root()));
  }
}

TEST(Merkle, WrongLeafFailsPath) {
  Bytes data(4096 * 4, 0x11);
  const auto tree = MerkleTree::from_blocks(data, 4096);
  Bytes tampered(4096, 0x11);
  tampered[0] ^= 0x01;
  const auto leaf = MerkleTree::hash_leaf(tampered);
  EXPECT_FALSE(MerkleTree::verify_path(leaf, 0, tree.path(0),
                                       tree.leaf_count(), tree.root()));
}

TEST(Merkle, WrongIndexFailsPath) {
  Bytes data(4096 * 4, 0x22);
  data[0] = 1;  // make leaf 0 distinct
  const auto tree = MerkleTree::from_blocks(data, 4096);
  Bytes block0(4096, 0x22);
  block0[0] = 1;
  const auto leaf = MerkleTree::hash_leaf(block0);
  EXPECT_TRUE(MerkleTree::verify_path(leaf, 0, tree.path(0),
                                      tree.leaf_count(), tree.root()));
  EXPECT_FALSE(MerkleTree::verify_path(leaf, 1, tree.path(0),
                                       tree.leaf_count(), tree.root()));
}

TEST(Merkle, DomainSeparationLeafVsInner) {
  // A 64-byte "block" equal to two concatenated digests must not hash to the
  // same value as the inner node over those digests.
  const Digest32 a = sha256(to_bytes(std::string_view("left")));
  const Digest32 b = sha256(to_bytes(std::string_view("right")));
  const Bytes concat_ab = concat(a.view(), b.view());
  EXPECT_FALSE(MerkleTree::hash_leaf(concat_ab) ==
               MerkleTree::hash_inner(a, b));
}

TEST(Merkle, SerializeDeserializeRoundTrip) {
  Bytes data(4096 * 7, 0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  const auto tree = MerkleTree::from_blocks(data, 4096);
  const Bytes serialized = tree.serialize();
  const auto back = MerkleTree::deserialize(serialized);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->root(), tree.root());
  EXPECT_EQ(back->leaf_count(), tree.leaf_count());
}

TEST(Merkle, DeserializeRejectsTamperedNodes) {
  Bytes data(4096 * 4, 0x33);
  const auto tree = MerkleTree::from_blocks(data, 4096);
  Bytes serialized = tree.serialize();
  serialized[serialized.size() - 1] ^= 0x01;  // corrupt the root level
  EXPECT_FALSE(MerkleTree::deserialize(serialized).ok());
}

TEST(Merkle, DeserializeRejectsOverflowingNodeCount) {
  Bytes blob;
  append_u64be(blob, 1);  // leaf_count
  append_u64be(blob, 1);  // level_count
  // node_count * 32 wraps to 0 mod 2^64: the old multiply-based bounds
  // check accepted this header and then indexed far past the buffer.
  append_u64be(blob, 0x0800000000000000ULL);
  const auto result = MerkleTree::deserialize(blob);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "merkle.truncated_nodes");
}

TEST(Merkle, RootChangesWithAnyBlock) {
  Bytes data(4096 * 3, 0x44);
  const auto base = MerkleTree::from_blocks(data, 4096);
  for (std::size_t block = 0; block < 3; ++block) {
    Bytes mutated = data;
    mutated[block * 4096 + 17] ^= 0x80;
    const auto tree = MerkleTree::from_blocks(mutated, 4096);
    EXPECT_FALSE(tree.root() == base.root());
  }
}

TEST(Merkle, OddLeafCountsBuildConsistently) {
  for (std::size_t blocks : {1u, 2u, 3u, 5u, 9u, 17u}) {
    Bytes data(64 * blocks);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::uint8_t>(i ^ blocks);
    }
    const auto tree = MerkleTree::from_blocks(data, 64);
    EXPECT_EQ(tree.leaf_count(), blocks);
    for (std::size_t i = 0; i < blocks; ++i) {
      const auto leaf =
          MerkleTree::hash_leaf(ByteView(data).subspan(i * 64, 64));
      EXPECT_TRUE(MerkleTree::verify_path(leaf, i, tree.path(i), blocks,
                                          tree.root()));
    }
  }
}

}  // namespace
}  // namespace revelio::crypto

file(REMOVE_RECURSE
  "CMakeFiles/bench_ssl_cert_ops.dir/bench/bench_ssl_cert_ops.cpp.o"
  "CMakeFiles/bench_ssl_cert_ops.dir/bench/bench_ssl_cert_ops.cpp.o.d"
  "bench/bench_ssl_cert_ops"
  "bench/bench_ssl_cert_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ssl_cert_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

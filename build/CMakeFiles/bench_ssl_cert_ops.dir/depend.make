# Empty dependencies file for bench_ssl_cert_ops.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_boot_latency.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_boot_latency.dir/bench/bench_boot_latency.cpp.o"
  "CMakeFiles/bench_boot_latency.dir/bench/bench_boot_latency.cpp.o.d"
  "bench/bench_boot_latency"
  "bench/bench_boot_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_boot_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

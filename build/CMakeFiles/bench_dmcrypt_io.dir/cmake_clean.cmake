file(REMOVE_RECURSE
  "CMakeFiles/bench_dmcrypt_io.dir/bench/bench_dmcrypt_io.cpp.o"
  "CMakeFiles/bench_dmcrypt_io.dir/bench/bench_dmcrypt_io.cpp.o.d"
  "bench/bench_dmcrypt_io"
  "bench/bench_dmcrypt_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dmcrypt_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

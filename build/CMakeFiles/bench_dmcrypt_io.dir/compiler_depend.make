# Empty compiler generated dependencies file for bench_dmcrypt_io.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_dmverity_read.dir/bench/bench_dmverity_read.cpp.o"
  "CMakeFiles/bench_dmverity_read.dir/bench/bench_dmverity_read.cpp.o.d"
  "bench/bench_dmverity_read"
  "bench/bench_dmverity_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dmverity_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

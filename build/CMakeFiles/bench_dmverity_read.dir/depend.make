# Empty dependencies file for bench_dmverity_read.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_client_attestation.dir/bench/bench_client_attestation.cpp.o"
  "CMakeFiles/bench_client_attestation.dir/bench/bench_client_attestation.cpp.o.d"
  "bench/bench_client_attestation"
  "bench/bench_client_attestation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_client_attestation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

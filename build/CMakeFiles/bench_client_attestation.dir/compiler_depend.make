# Empty compiler generated dependencies file for bench_client_attestation.
# This may be replaced when dependencies are built.

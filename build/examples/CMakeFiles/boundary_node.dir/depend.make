# Empty dependencies file for boundary_node.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/boundary_node.dir/boundary_node.cpp.o"
  "CMakeFiles/boundary_node.dir/boundary_node.cpp.o.d"
  "boundary_node"
  "boundary_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boundary_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

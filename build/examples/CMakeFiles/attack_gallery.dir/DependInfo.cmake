
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/attack_gallery.cpp" "examples/CMakeFiles/attack_gallery.dir/attack_gallery.cpp.o" "gcc" "examples/CMakeFiles/attack_gallery.dir/attack_gallery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/revelio/CMakeFiles/revelio_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/revelio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/imagebuild/CMakeFiles/revelio_imagebuild.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/revelio_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/revelio_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sevsnp/CMakeFiles/revelio_sevsnp.dir/DependInfo.cmake"
  "/root/repo/build/src/pki/CMakeFiles/revelio_pki.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/revelio_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/revelio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for cryptpad_suite.
# This may be replaced when dependencies are built.

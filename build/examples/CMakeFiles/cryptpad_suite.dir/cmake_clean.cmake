file(REMOVE_RECURSE
  "CMakeFiles/cryptpad_suite.dir/cryptpad_suite.cpp.o"
  "CMakeFiles/cryptpad_suite.dir/cryptpad_suite.cpp.o.d"
  "cryptpad_suite"
  "cryptpad_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptpad_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[test_common]=] "/root/repo/build/tests/test_common")
set_tests_properties([=[test_common]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;8;revelio_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[test_crypto]=] "/root/repo/build/tests/test_crypto")
set_tests_properties([=[test_crypto]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;9;revelio_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[test_storage]=] "/root/repo/build/tests/test_storage")
set_tests_properties([=[test_storage]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;10;revelio_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[test_pki]=] "/root/repo/build/tests/test_pki")
set_tests_properties([=[test_pki]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;11;revelio_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[test_sevsnp]=] "/root/repo/build/tests/test_sevsnp")
set_tests_properties([=[test_sevsnp]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;12;revelio_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[test_net]=] "/root/repo/build/tests/test_net")
set_tests_properties([=[test_net]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;13;revelio_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[test_vm]=] "/root/repo/build/tests/test_vm")
set_tests_properties([=[test_vm]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;14;revelio_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[test_ic]=] "/root/repo/build/tests/test_ic")
set_tests_properties([=[test_ic]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;15;revelio_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[test_revelio]=] "/root/repo/build/tests/test_revelio")
set_tests_properties([=[test_revelio]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;16;revelio_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[test_revelio_ext]=] "/root/repo/build/tests/test_revelio_ext")
set_tests_properties([=[test_revelio_ext]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;17;revelio_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[test_properties]=] "/root/repo/build/tests/test_properties")
set_tests_properties([=[test_properties]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;18;revelio_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[test_failure_injection]=] "/root/repo/build/tests/test_failure_injection")
set_tests_properties([=[test_failure_injection]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;19;revelio_test;/root/repo/tests/CMakeLists.txt;0;")

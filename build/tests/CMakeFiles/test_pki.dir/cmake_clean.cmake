file(REMOVE_RECURSE
  "CMakeFiles/test_pki.dir/test_pki.cpp.o"
  "CMakeFiles/test_pki.dir/test_pki.cpp.o.d"
  "test_pki"
  "test_pki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

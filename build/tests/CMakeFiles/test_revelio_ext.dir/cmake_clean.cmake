file(REMOVE_RECURSE
  "CMakeFiles/test_revelio_ext.dir/test_revelio_ext.cpp.o"
  "CMakeFiles/test_revelio_ext.dir/test_revelio_ext.cpp.o.d"
  "test_revelio_ext"
  "test_revelio_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_revelio_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

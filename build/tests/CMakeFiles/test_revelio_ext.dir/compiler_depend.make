# Empty compiler generated dependencies file for test_revelio_ext.
# This may be replaced when dependencies are built.

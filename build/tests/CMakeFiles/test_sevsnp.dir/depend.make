# Empty dependencies file for test_sevsnp.
# This may be replaced when dependencies are built.

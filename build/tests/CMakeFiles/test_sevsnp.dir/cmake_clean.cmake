file(REMOVE_RECURSE
  "CMakeFiles/test_sevsnp.dir/test_sevsnp.cpp.o"
  "CMakeFiles/test_sevsnp.dir/test_sevsnp.cpp.o.d"
  "test_sevsnp"
  "test_sevsnp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sevsnp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

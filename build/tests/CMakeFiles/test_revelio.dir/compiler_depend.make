# Empty compiler generated dependencies file for test_revelio.
# This may be replaced when dependencies are built.

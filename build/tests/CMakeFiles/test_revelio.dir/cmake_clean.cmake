file(REMOVE_RECURSE
  "CMakeFiles/test_revelio.dir/test_revelio.cpp.o"
  "CMakeFiles/test_revelio.dir/test_revelio.cpp.o.d"
  "test_revelio"
  "test_revelio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_revelio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

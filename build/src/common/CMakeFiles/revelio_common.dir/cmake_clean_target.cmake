file(REMOVE_RECURSE
  "librevelio_common.a"
)

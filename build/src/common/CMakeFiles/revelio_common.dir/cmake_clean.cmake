file(REMOVE_RECURSE
  "CMakeFiles/revelio_common.dir/hex.cpp.o"
  "CMakeFiles/revelio_common.dir/hex.cpp.o.d"
  "CMakeFiles/revelio_common.dir/log.cpp.o"
  "CMakeFiles/revelio_common.dir/log.cpp.o.d"
  "CMakeFiles/revelio_common.dir/rng.cpp.o"
  "CMakeFiles/revelio_common.dir/rng.cpp.o.d"
  "CMakeFiles/revelio_common.dir/sim_clock.cpp.o"
  "CMakeFiles/revelio_common.dir/sim_clock.cpp.o.d"
  "librevelio_common.a"
  "librevelio_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revelio_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for revelio_common.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for revelio_sevsnp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/revelio_sevsnp.dir/amd_sp.cpp.o"
  "CMakeFiles/revelio_sevsnp.dir/amd_sp.cpp.o.d"
  "CMakeFiles/revelio_sevsnp.dir/attestation_report.cpp.o"
  "CMakeFiles/revelio_sevsnp.dir/attestation_report.cpp.o.d"
  "CMakeFiles/revelio_sevsnp.dir/guest_channel.cpp.o"
  "CMakeFiles/revelio_sevsnp.dir/guest_channel.cpp.o.d"
  "CMakeFiles/revelio_sevsnp.dir/kds.cpp.o"
  "CMakeFiles/revelio_sevsnp.dir/kds.cpp.o.d"
  "librevelio_sevsnp.a"
  "librevelio_sevsnp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revelio_sevsnp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

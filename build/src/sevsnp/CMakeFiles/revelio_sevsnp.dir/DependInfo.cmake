
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sevsnp/amd_sp.cpp" "src/sevsnp/CMakeFiles/revelio_sevsnp.dir/amd_sp.cpp.o" "gcc" "src/sevsnp/CMakeFiles/revelio_sevsnp.dir/amd_sp.cpp.o.d"
  "/root/repo/src/sevsnp/attestation_report.cpp" "src/sevsnp/CMakeFiles/revelio_sevsnp.dir/attestation_report.cpp.o" "gcc" "src/sevsnp/CMakeFiles/revelio_sevsnp.dir/attestation_report.cpp.o.d"
  "/root/repo/src/sevsnp/guest_channel.cpp" "src/sevsnp/CMakeFiles/revelio_sevsnp.dir/guest_channel.cpp.o" "gcc" "src/sevsnp/CMakeFiles/revelio_sevsnp.dir/guest_channel.cpp.o.d"
  "/root/repo/src/sevsnp/kds.cpp" "src/sevsnp/CMakeFiles/revelio_sevsnp.dir/kds.cpp.o" "gcc" "src/sevsnp/CMakeFiles/revelio_sevsnp.dir/kds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/revelio_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/revelio_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/pki/CMakeFiles/revelio_pki.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

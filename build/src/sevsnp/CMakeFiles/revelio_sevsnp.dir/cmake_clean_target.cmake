file(REMOVE_RECURSE
  "librevelio_sevsnp.a"
)

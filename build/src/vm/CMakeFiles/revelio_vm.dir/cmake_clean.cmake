file(REMOVE_RECURSE
  "CMakeFiles/revelio_vm.dir/blobs.cpp.o"
  "CMakeFiles/revelio_vm.dir/blobs.cpp.o.d"
  "CMakeFiles/revelio_vm.dir/firmware.cpp.o"
  "CMakeFiles/revelio_vm.dir/firmware.cpp.o.d"
  "CMakeFiles/revelio_vm.dir/guest.cpp.o"
  "CMakeFiles/revelio_vm.dir/guest.cpp.o.d"
  "CMakeFiles/revelio_vm.dir/hypervisor.cpp.o"
  "CMakeFiles/revelio_vm.dir/hypervisor.cpp.o.d"
  "librevelio_vm.a"
  "librevelio_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revelio_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

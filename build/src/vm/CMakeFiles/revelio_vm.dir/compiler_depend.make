# Empty compiler generated dependencies file for revelio_vm.
# This may be replaced when dependencies are built.

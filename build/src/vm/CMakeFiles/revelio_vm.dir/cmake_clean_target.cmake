file(REMOVE_RECURSE
  "librevelio_vm.a"
)

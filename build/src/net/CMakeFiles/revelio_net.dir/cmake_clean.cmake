file(REMOVE_RECURSE
  "CMakeFiles/revelio_net.dir/http.cpp.o"
  "CMakeFiles/revelio_net.dir/http.cpp.o.d"
  "CMakeFiles/revelio_net.dir/network.cpp.o"
  "CMakeFiles/revelio_net.dir/network.cpp.o.d"
  "CMakeFiles/revelio_net.dir/tls.cpp.o"
  "CMakeFiles/revelio_net.dir/tls.cpp.o.d"
  "librevelio_net.a"
  "librevelio_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revelio_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

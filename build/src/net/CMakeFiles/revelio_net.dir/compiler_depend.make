# Empty compiler generated dependencies file for revelio_net.
# This may be replaced when dependencies are built.

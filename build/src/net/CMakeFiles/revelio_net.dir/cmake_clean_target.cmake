file(REMOVE_RECURSE
  "librevelio_net.a"
)

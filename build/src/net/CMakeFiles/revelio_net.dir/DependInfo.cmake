
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/http.cpp" "src/net/CMakeFiles/revelio_net.dir/http.cpp.o" "gcc" "src/net/CMakeFiles/revelio_net.dir/http.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/revelio_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/revelio_net.dir/network.cpp.o.d"
  "/root/repo/src/net/tls.cpp" "src/net/CMakeFiles/revelio_net.dir/tls.cpp.o" "gcc" "src/net/CMakeFiles/revelio_net.dir/tls.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/revelio_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/revelio_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/pki/CMakeFiles/revelio_pki.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

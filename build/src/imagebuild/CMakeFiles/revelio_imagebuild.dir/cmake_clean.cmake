file(REMOVE_RECURSE
  "CMakeFiles/revelio_imagebuild.dir/builder.cpp.o"
  "CMakeFiles/revelio_imagebuild.dir/builder.cpp.o.d"
  "CMakeFiles/revelio_imagebuild.dir/registry.cpp.o"
  "CMakeFiles/revelio_imagebuild.dir/registry.cpp.o.d"
  "librevelio_imagebuild.a"
  "librevelio_imagebuild.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revelio_imagebuild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

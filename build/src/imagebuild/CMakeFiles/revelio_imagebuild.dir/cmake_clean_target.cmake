file(REMOVE_RECURSE
  "librevelio_imagebuild.a"
)

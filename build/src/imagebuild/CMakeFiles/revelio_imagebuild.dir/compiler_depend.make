# Empty compiler generated dependencies file for revelio_imagebuild.
# This may be replaced when dependencies are built.

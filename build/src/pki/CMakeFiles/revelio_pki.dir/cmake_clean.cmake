file(REMOVE_RECURSE
  "CMakeFiles/revelio_pki.dir/acme.cpp.o"
  "CMakeFiles/revelio_pki.dir/acme.cpp.o.d"
  "CMakeFiles/revelio_pki.dir/ca.cpp.o"
  "CMakeFiles/revelio_pki.dir/ca.cpp.o.d"
  "CMakeFiles/revelio_pki.dir/cert.cpp.o"
  "CMakeFiles/revelio_pki.dir/cert.cpp.o.d"
  "librevelio_pki.a"
  "librevelio_pki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revelio_pki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for revelio_pki.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librevelio_pki.a"
)

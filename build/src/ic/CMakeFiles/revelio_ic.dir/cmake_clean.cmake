file(REMOVE_RECURSE
  "CMakeFiles/revelio_ic.dir/boundary_node.cpp.o"
  "CMakeFiles/revelio_ic.dir/boundary_node.cpp.o.d"
  "CMakeFiles/revelio_ic.dir/canister.cpp.o"
  "CMakeFiles/revelio_ic.dir/canister.cpp.o.d"
  "CMakeFiles/revelio_ic.dir/service_worker.cpp.o"
  "CMakeFiles/revelio_ic.dir/service_worker.cpp.o.d"
  "CMakeFiles/revelio_ic.dir/shamir.cpp.o"
  "CMakeFiles/revelio_ic.dir/shamir.cpp.o.d"
  "CMakeFiles/revelio_ic.dir/subnet.cpp.o"
  "CMakeFiles/revelio_ic.dir/subnet.cpp.o.d"
  "librevelio_ic.a"
  "librevelio_ic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revelio_ic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "librevelio_ic.a"
)

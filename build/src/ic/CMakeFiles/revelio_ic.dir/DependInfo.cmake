
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ic/boundary_node.cpp" "src/ic/CMakeFiles/revelio_ic.dir/boundary_node.cpp.o" "gcc" "src/ic/CMakeFiles/revelio_ic.dir/boundary_node.cpp.o.d"
  "/root/repo/src/ic/canister.cpp" "src/ic/CMakeFiles/revelio_ic.dir/canister.cpp.o" "gcc" "src/ic/CMakeFiles/revelio_ic.dir/canister.cpp.o.d"
  "/root/repo/src/ic/service_worker.cpp" "src/ic/CMakeFiles/revelio_ic.dir/service_worker.cpp.o" "gcc" "src/ic/CMakeFiles/revelio_ic.dir/service_worker.cpp.o.d"
  "/root/repo/src/ic/shamir.cpp" "src/ic/CMakeFiles/revelio_ic.dir/shamir.cpp.o" "gcc" "src/ic/CMakeFiles/revelio_ic.dir/shamir.cpp.o.d"
  "/root/repo/src/ic/subnet.cpp" "src/ic/CMakeFiles/revelio_ic.dir/subnet.cpp.o" "gcc" "src/ic/CMakeFiles/revelio_ic.dir/subnet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/revelio_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/revelio_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/revelio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pki/CMakeFiles/revelio_pki.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for revelio_ic.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/revelio_core.dir/auditor.cpp.o"
  "CMakeFiles/revelio_core.dir/auditor.cpp.o.d"
  "CMakeFiles/revelio_core.dir/evidence.cpp.o"
  "CMakeFiles/revelio_core.dir/evidence.cpp.o.d"
  "CMakeFiles/revelio_core.dir/revelio_vm.cpp.o"
  "CMakeFiles/revelio_core.dir/revelio_vm.cpp.o.d"
  "CMakeFiles/revelio_core.dir/secure_channel.cpp.o"
  "CMakeFiles/revelio_core.dir/secure_channel.cpp.o.d"
  "CMakeFiles/revelio_core.dir/sp_node.cpp.o"
  "CMakeFiles/revelio_core.dir/sp_node.cpp.o.d"
  "CMakeFiles/revelio_core.dir/trusted_registry.cpp.o"
  "CMakeFiles/revelio_core.dir/trusted_registry.cpp.o.d"
  "CMakeFiles/revelio_core.dir/web_extension.cpp.o"
  "CMakeFiles/revelio_core.dir/web_extension.cpp.o.d"
  "librevelio_core.a"
  "librevelio_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revelio_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/revelio_crypto.dir/aes.cpp.o"
  "CMakeFiles/revelio_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/revelio_crypto.dir/bigint.cpp.o"
  "CMakeFiles/revelio_crypto.dir/bigint.cpp.o.d"
  "CMakeFiles/revelio_crypto.dir/drbg.cpp.o"
  "CMakeFiles/revelio_crypto.dir/drbg.cpp.o.d"
  "CMakeFiles/revelio_crypto.dir/ec.cpp.o"
  "CMakeFiles/revelio_crypto.dir/ec.cpp.o.d"
  "CMakeFiles/revelio_crypto.dir/ecdsa.cpp.o"
  "CMakeFiles/revelio_crypto.dir/ecdsa.cpp.o.d"
  "CMakeFiles/revelio_crypto.dir/ecies.cpp.o"
  "CMakeFiles/revelio_crypto.dir/ecies.cpp.o.d"
  "CMakeFiles/revelio_crypto.dir/hmac.cpp.o"
  "CMakeFiles/revelio_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/revelio_crypto.dir/kdf.cpp.o"
  "CMakeFiles/revelio_crypto.dir/kdf.cpp.o.d"
  "CMakeFiles/revelio_crypto.dir/merkle.cpp.o"
  "CMakeFiles/revelio_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/revelio_crypto.dir/modes.cpp.o"
  "CMakeFiles/revelio_crypto.dir/modes.cpp.o.d"
  "CMakeFiles/revelio_crypto.dir/sha2.cpp.o"
  "CMakeFiles/revelio_crypto.dir/sha2.cpp.o.d"
  "librevelio_crypto.a"
  "librevelio_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revelio_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "librevelio_crypto.a"
)

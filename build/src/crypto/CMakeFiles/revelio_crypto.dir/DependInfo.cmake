
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cpp" "src/crypto/CMakeFiles/revelio_crypto.dir/aes.cpp.o" "gcc" "src/crypto/CMakeFiles/revelio_crypto.dir/aes.cpp.o.d"
  "/root/repo/src/crypto/bigint.cpp" "src/crypto/CMakeFiles/revelio_crypto.dir/bigint.cpp.o" "gcc" "src/crypto/CMakeFiles/revelio_crypto.dir/bigint.cpp.o.d"
  "/root/repo/src/crypto/drbg.cpp" "src/crypto/CMakeFiles/revelio_crypto.dir/drbg.cpp.o" "gcc" "src/crypto/CMakeFiles/revelio_crypto.dir/drbg.cpp.o.d"
  "/root/repo/src/crypto/ec.cpp" "src/crypto/CMakeFiles/revelio_crypto.dir/ec.cpp.o" "gcc" "src/crypto/CMakeFiles/revelio_crypto.dir/ec.cpp.o.d"
  "/root/repo/src/crypto/ecdsa.cpp" "src/crypto/CMakeFiles/revelio_crypto.dir/ecdsa.cpp.o" "gcc" "src/crypto/CMakeFiles/revelio_crypto.dir/ecdsa.cpp.o.d"
  "/root/repo/src/crypto/ecies.cpp" "src/crypto/CMakeFiles/revelio_crypto.dir/ecies.cpp.o" "gcc" "src/crypto/CMakeFiles/revelio_crypto.dir/ecies.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/crypto/CMakeFiles/revelio_crypto.dir/hmac.cpp.o" "gcc" "src/crypto/CMakeFiles/revelio_crypto.dir/hmac.cpp.o.d"
  "/root/repo/src/crypto/kdf.cpp" "src/crypto/CMakeFiles/revelio_crypto.dir/kdf.cpp.o" "gcc" "src/crypto/CMakeFiles/revelio_crypto.dir/kdf.cpp.o.d"
  "/root/repo/src/crypto/merkle.cpp" "src/crypto/CMakeFiles/revelio_crypto.dir/merkle.cpp.o" "gcc" "src/crypto/CMakeFiles/revelio_crypto.dir/merkle.cpp.o.d"
  "/root/repo/src/crypto/modes.cpp" "src/crypto/CMakeFiles/revelio_crypto.dir/modes.cpp.o" "gcc" "src/crypto/CMakeFiles/revelio_crypto.dir/modes.cpp.o.d"
  "/root/repo/src/crypto/sha2.cpp" "src/crypto/CMakeFiles/revelio_crypto.dir/sha2.cpp.o" "gcc" "src/crypto/CMakeFiles/revelio_crypto.dir/sha2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/revelio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for revelio_crypto.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/revelio_storage.dir/block_device.cpp.o"
  "CMakeFiles/revelio_storage.dir/block_device.cpp.o.d"
  "CMakeFiles/revelio_storage.dir/dm_crypt.cpp.o"
  "CMakeFiles/revelio_storage.dir/dm_crypt.cpp.o.d"
  "CMakeFiles/revelio_storage.dir/dm_verity.cpp.o"
  "CMakeFiles/revelio_storage.dir/dm_verity.cpp.o.d"
  "CMakeFiles/revelio_storage.dir/imagefs.cpp.o"
  "CMakeFiles/revelio_storage.dir/imagefs.cpp.o.d"
  "CMakeFiles/revelio_storage.dir/mem_disk.cpp.o"
  "CMakeFiles/revelio_storage.dir/mem_disk.cpp.o.d"
  "CMakeFiles/revelio_storage.dir/partition.cpp.o"
  "CMakeFiles/revelio_storage.dir/partition.cpp.o.d"
  "librevelio_storage.a"
  "librevelio_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revelio_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

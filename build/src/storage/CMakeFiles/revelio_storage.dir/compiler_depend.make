# Empty compiler generated dependencies file for revelio_storage.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librevelio_storage.a"
)

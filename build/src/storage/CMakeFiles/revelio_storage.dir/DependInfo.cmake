
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/block_device.cpp" "src/storage/CMakeFiles/revelio_storage.dir/block_device.cpp.o" "gcc" "src/storage/CMakeFiles/revelio_storage.dir/block_device.cpp.o.d"
  "/root/repo/src/storage/dm_crypt.cpp" "src/storage/CMakeFiles/revelio_storage.dir/dm_crypt.cpp.o" "gcc" "src/storage/CMakeFiles/revelio_storage.dir/dm_crypt.cpp.o.d"
  "/root/repo/src/storage/dm_verity.cpp" "src/storage/CMakeFiles/revelio_storage.dir/dm_verity.cpp.o" "gcc" "src/storage/CMakeFiles/revelio_storage.dir/dm_verity.cpp.o.d"
  "/root/repo/src/storage/imagefs.cpp" "src/storage/CMakeFiles/revelio_storage.dir/imagefs.cpp.o" "gcc" "src/storage/CMakeFiles/revelio_storage.dir/imagefs.cpp.o.d"
  "/root/repo/src/storage/mem_disk.cpp" "src/storage/CMakeFiles/revelio_storage.dir/mem_disk.cpp.o" "gcc" "src/storage/CMakeFiles/revelio_storage.dir/mem_disk.cpp.o.d"
  "/root/repo/src/storage/partition.cpp" "src/storage/CMakeFiles/revelio_storage.dir/partition.cpp.o" "gcc" "src/storage/CMakeFiles/revelio_storage.dir/partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/revelio_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/revelio_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

// Trusted registry of "golden" measurements (§3.4.7, D2).
//
// End-users who cannot rebuild the image themselves delegate the judgement
// of what a good measurement is: to an auditing company, or to an on-chain
// DAO where the community votes (the paper names the Internet Computer's
// NNS). This registry models both: direct publication by an auditor, and
// quorum voting; plus revocation of obsolete measurements, which is what
// stops the §6.1.4 rollback attack.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "sevsnp/attestation_report.hpp"

namespace revelio::core {

class TrustedRegistry {
 public:
  // --- Auditor path: direct publication -------------------------------

  /// Publishes a measurement as good for `service` (e.g. a new release).
  void publish(const std::string& service,
               const sevsnp::Measurement& measurement);

  /// Revokes a measurement (obsolete release with known bugs). Revocation
  /// wins over publication, permanently.
  void revoke(const std::string& service,
              const sevsnp::Measurement& measurement);

  /// Currently acceptable measurements for a service.
  std::vector<sevsnp::Measurement> good_measurements(
      const std::string& service) const;

  /// The check verifiers call.
  bool is_acceptable(const std::string& service,
                     const sevsnp::Measurement& measurement) const;
  bool is_revoked(const std::string& service,
                  const sevsnp::Measurement& measurement) const;

  // --- DAO path: community voting --------------------------------------

  /// Registers an eligible voter (an NNS neuron, in IC terms).
  void register_voter(const std::string& voter);

  /// Opens a proposal to bless `measurement` for `service`; returns its id.
  std::uint64_t propose(const std::string& service,
                        const sevsnp::Measurement& measurement);

  /// Casts a vote. When yes-votes reach a strict majority of registered
  /// voters, the measurement is published automatically.
  Status vote(std::uint64_t proposal_id, const std::string& voter,
              bool approve);

  struct Proposal {
    std::string service;
    sevsnp::Measurement measurement;
    std::set<std::string> yes;
    std::set<std::string> no;
    bool adopted = false;
    bool rejected = false;
  };
  Result<Proposal> proposal(std::uint64_t id) const;

 private:
  using Key = std::pair<std::string, Bytes>;  // (service, measurement bytes)

  std::set<Key> good_;
  std::set<Key> revoked_;
  std::set<std::string> voters_;
  std::map<std::uint64_t, Proposal> proposals_;
  std::uint64_t next_proposal_ = 1;
};

}  // namespace revelio::core

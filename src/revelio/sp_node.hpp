// SP node: the service provider's isolated provisioning machine (§5.3).
//
// Lives outside the public cloud, holds the DNS API credentials and the
// ACME account, and drives certificate management: it attests every fleet
// node (report signature + chain, measurement, CSR binding, chip-id and IP
// allowlists), picks a leader, obtains one shared SSL certificate for the
// leader's CSR (respecting CA rate limits, §3.4.6), and distributes it —
// after which the nodes fetch the private key from the leader themselves
// (Fig 4).
#pragma once

#include <set>

#include "net/http.hpp"
#include "net/resilience.hpp"
#include "pki/acme.hpp"
#include "revelio/evidence.hpp"
#include "revelio/trusted_registry.hpp"

namespace revelio::core {

struct SpNodeConfig {
  std::string domain;
  std::string acme_account = "revelio-sp";
  net::Address kds_address;
  /// Acceptable launch measurements for fleet nodes (from the reproducible
  /// build, or the trusted registry).
  std::vector<sevsnp::Measurement> expected_measurements;
  std::optional<sevsnp::TcbVersion> minimum_tcb;
  /// Transient-transport retry policy for node fetches, certificate
  /// distribution and ACME issuance (an `acme.unavailable` outage is
  /// transient; every attestation failure is permanent and never retried).
  net::RetryPolicy retry{.max_attempts = 1};
  /// Virtual-time budget for one provision_fleet() round (0 = unlimited).
  double provision_deadline_ms = 0.0;
};

/// Per-node provisioning outcome (observability + Table 2 accounting).
struct NodeAttestation {
  net::Address bootstrap_address;
  bool attested = false;
  std::string failure;  // empty when attested
  Bytes public_key;     // the node's identity key (from the CSR)
};

class SpNode {
 public:
  SpNode(net::Network& network, pki::AcmeIssuer& acme, SpNodeConfig config);

  /// Registers an approved node: its provisioning address and the chip it
  /// is expected to run on (§5.3.1's chip-id + IP check).
  void approve_node(const net::Address& bootstrap_address,
                    const sevsnp::ChipId& chip_id);

  /// Full provisioning round: attest all approved nodes, lead with the
  /// first healthy one, obtain the shared certificate, distribute it.
  /// Returns per-node outcomes (provisioning succeeds if >=1 node works).
  Result<std::vector<NodeAttestation>> provision_fleet();

  /// Attests a single node by fetching and validating its CSR bundle.
  Result<pki::CertificateSigningRequest> attest_node(
      const net::Address& bootstrap_address);

  const std::optional<pki::Certificate>& issued_certificate() const {
    return certificate_;
  }

  /// True when the issued certificate is inside its renewal overlap window:
  /// `now_us >= not_after - overlap_us` (or no certificate exists yet).
  /// Rotation itself is a provision_fleet() re-run — the round is
  /// idempotent over the approved set, obtains a fresh certificate under
  /// the same ACME rate limits, and redistributes it while the old one is
  /// still valid, so sessions never observe a gap (§3.4.6). The old
  /// certificate keeps verifying until its own not_after passes; pki's
  /// half-open validity window then fails it closed and clients
  /// re-handshake against the rotated one.
  bool renewal_due(std::uint64_t now_us, std::uint64_t overlap_us) const {
    if (!certificate_) return true;
    // Compared without `now_us + overlap_us`: the sum wraps std::uint64_t
    // for century-scale overlap windows (used elsewhere in this codebase
    // as "never expires"), which would suppress rotation exactly when the
    // caller asked for the widest window.
    const std::uint64_t not_after = certificate_->not_after_us;
    return not_after <= now_us || not_after - now_us <= overlap_us;
  }

 private:
  Result<pki::Certificate> obtain_certificate(
      const pki::CertificateSigningRequest& leader_csr,
      const net::Deadline& deadline);
  Status distribute_certificate(const net::Address& node,
                                const net::Address& leader,
                                const net::Deadline& deadline);

  net::Network* network_;
  pki::AcmeIssuer* acme_;
  SpNodeConfig config_;
  crypto::HmacDrbg retry_jitter_{to_bytes("sp-retry-jitter")};
  net::Address own_address_{"sp-node.internal", 9000};
  std::map<net::Address, Bytes> approved_;  // address -> chip id bytes
  std::optional<pki::Certificate> certificate_;
  std::vector<pki::Certificate> chain_;
};

}  // namespace revelio::core

// Auditor: the delegated verification workflow (requirement D2, §3.4.7).
//
// Most end-users cannot rebuild a VM image and judge its security; the
// paper delegates that to an auditing company or a DAO. The Auditor class
// is that party's tool: given the public sources (build inputs), it
// reproduces the image, derives the expected launch measurement, performs
// configurable policy lints over the build (network posture, verity,
// SEV-SNP enablement, measured cmdline root hash), and — on a clean pass —
// publishes the measurement to a TrustedRegistry that end-users' web
// extensions consult.
#pragma once

#include "imagebuild/builder.hpp"
#include "revelio/trusted_registry.hpp"

namespace revelio::core {

struct AuditFinding {
  enum class Severity { kInfo, kWarning, kCritical };
  Severity severity;
  std::string check;
  std::string detail;
};

struct AuditReport {
  bool reproducible = false;
  sevsnp::Measurement measurement;
  std::vector<AuditFinding> findings;

  bool passed() const {
    if (!reproducible) return false;
    for (const auto& finding : findings) {
      if (finding.severity == AuditFinding::Severity::kCritical) return false;
    }
    return true;
  }
  std::size_t count(AuditFinding::Severity severity) const {
    std::size_t n = 0;
    for (const auto& finding : findings) {
      if (finding.severity == severity) ++n;
    }
    return n;
  }
};

class Auditor {
 public:
  explicit Auditor(const imagebuild::PackageRegistry& registry)
      : builder_(registry) {}

  /// Full audit: double-build for reproducibility, derive the expected
  /// measurement, lint the configuration.
  AuditReport audit(const imagebuild::BuildInputs& inputs) const;

  /// Audit and, if it passes, publish the measurement for `service`.
  Result<sevsnp::Measurement> audit_and_publish(
      const imagebuild::BuildInputs& inputs, const std::string& service,
      TrustedRegistry& registry) const;

 private:
  imagebuild::ImageBuilder builder_;
};

}  // namespace revelio::core

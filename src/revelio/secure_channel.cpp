#include "revelio/secure_channel.hpp"

#include "crypto/kdf.hpp"

namespace revelio::core {

namespace {

constexpr std::string_view kTranscriptTag = "revelio-secure-channel-v1";

void append_field(Bytes& out, ByteView v) {
  append_u32be(out, static_cast<std::uint32_t>(v.size()));
  append(out, v);
}

/// The transcript both identity signatures cover: both evidence bundles
/// and both ephemerals, role-tagged, so neither side's contribution can be
/// swapped or reflected.
crypto::Digest48 transcript(ByteView initiator_evidence,
                            ByteView initiator_eph,
                            ByteView responder_evidence,
                            ByteView responder_eph) {
  crypto::Sha384 h;
  h.update(to_bytes(kTranscriptTag));
  Bytes framed;
  append_field(framed, initiator_evidence);
  append_field(framed, initiator_eph);
  append_field(framed, responder_evidence);
  append_field(framed, responder_eph);
  h.update(framed);
  return h.finish();
}

struct SessionKeys {
  Bytes initiator_to_responder;
  Bytes responder_to_initiator;
};

SessionKeys derive_session_keys(ByteView shared_secret,
                                const crypto::Digest48& th) {
  SessionKeys keys;
  keys.initiator_to_responder = crypto::hkdf_sha256(
      shared_secret, th.view(), to_bytes(std::string_view("i2r")),
      crypto::AeadCtrHmac::kKeySize);
  keys.responder_to_initiator = crypto::hkdf_sha256(
      shared_secret, th.view(), to_bytes(std::string_view("r2i")),
      crypto::AeadCtrHmac::kKeySize);
  return keys;
}

FixedBytes<16> seq_nonce(std::uint64_t seq) {
  FixedBytes<16> nonce;
  for (int i = 0; i < 8; ++i) {
    nonce[8 + i] = static_cast<std::uint8_t>(seq >> (56 - 8 * i));
  }
  return nonce;
}

Bytes seq_aad(std::uint64_t seq) {
  Bytes aad;
  append_u64be(aad, seq);
  return aad;
}

}  // namespace

Bytes ChannelHello::serialize() const {
  Bytes out;
  append(out, std::string_view("RSCH1"));
  append_field(out, evidence);
  append_field(out, ephemeral_pub);
  append_field(out, signature);
  return out;
}

Result<ChannelHello> ChannelHello::parse(ByteView data) {
  if (data.size() < 5 || to_string(data.subspan(0, 5)) != "RSCH1") {
    return Error::make("channel.bad_hello");
  }
  std::size_t off = 5;
  ChannelHello hello;
  auto read_field = [&](Bytes& out) {
    if (off + 4 > data.size()) return false;
    const std::uint32_t len = read_u32be(data, off);
    off += 4;
    if (off + len > data.size()) return false;
    out = to_bytes(data.subspan(off, len));
    off += len;
    return true;
  };
  if (!read_field(hello.evidence) || !read_field(hello.ephemeral_pub) ||
      !read_field(hello.signature)) {
    return Error::make("channel.bad_hello", "truncated");
  }
  return hello;
}

Status verify_channel_peer(const EvidenceBundle& bundle,
                           const KdsService::VcekResponse& kds,
                           const PeerPolicy& policy, std::uint64_t now_us) {
  if (!bundle.binding_ok()) {
    return Error::make("channel.binding_mismatch",
                       "REPORT_DATA does not cover the identity key");
  }
  sevsnp::ReportVerifyOptions options;
  options.now_us = now_us;
  options.minimum_tcb = policy.minimum_tcb;
  if (auto st = sevsnp::verify_report(bundle.report, kds.vcek, {kds.ask},
                                      {kds.ark}, options);
      !st.ok()) {
    return st;
  }
  for (const auto& m : policy.trusted_measurements) {
    if (bundle.report.measurement == m) return Status::success();
  }
  return Error::make("channel.untrusted_measurement",
                     "peer image not in the trusted set");
}

SecureChannel::SecureChannel(Bytes send_key, Bytes recv_key,
                             sevsnp::Measurement peer_measurement)
    : send_aead_(send_key),
      recv_aead_(recv_key),
      peer_measurement_(peer_measurement) {}

ChannelHello SecureChannel::initiate(const ChannelIdentity& self,
                                     crypto::HmacDrbg& entropy,
                                     Bytes& state_out) {
  const crypto::EcKeyPair eph = crypto::ec_generate(crypto::p256(), entropy);
  ChannelHello hello;
  hello.evidence = self.evidence.serialize();
  hello.ephemeral_pub = eph.public_encoded(crypto::p256());
  // The initiator cannot sign the full transcript yet (no responder data);
  // it signs its own contribution, the responder signs the full transcript.
  const auto partial = transcript(hello.evidence, hello.ephemeral_pub, {}, {});
  hello.signature = crypto::ecdsa_sign(crypto::p256(), self.key.d,
                                       partial.view())
                        .encode(crypto::p256());
  // Initiator keeps its ephemeral scalar until complete().
  state_out = eph.d.to_bytes_be(32);
  return hello;
}

Result<std::pair<ChannelHello, SecureChannel>> SecureChannel::respond(
    const ChannelIdentity& self, const PeerPolicy& policy,
    const ChannelHello& initiator_hello,
    const KdsService::VcekResponse& initiator_kds, crypto::HmacDrbg& entropy,
    std::uint64_t now_us) {
  // 1. Verify the initiator's evidence and signature.
  auto bundle = EvidenceBundle::parse(initiator_hello.evidence);
  if (!bundle.ok()) return bundle.error();
  if (auto st = verify_channel_peer(*bundle, initiator_kds, policy, now_us);
      !st.ok()) {
    return st.error();
  }
  const auto initiator_pub = crypto::p256().decode_point(bundle->payload);
  if (!initiator_pub.ok()) {
    return Error::make("channel.bad_identity_key",
                       initiator_pub.error().to_string());
  }
  auto init_sig = crypto::EcdsaSignature::decode(crypto::p256(),
                                                 initiator_hello.signature);
  if (!init_sig.ok()) return init_sig.error();
  const auto partial = transcript(initiator_hello.evidence,
                                  initiator_hello.ephemeral_pub, {}, {});
  if (!crypto::ecdsa_verify(crypto::p256(), *initiator_pub, partial.view(),
                            *init_sig)) {
    return Error::make("channel.bad_initiator_signature",
                       "hello not signed by the attested identity key");
  }

  // 2. Responder's ephemeral + ECDH.
  const auto initiator_eph =
      crypto::p256().decode_point(initiator_hello.ephemeral_pub);
  if (!initiator_eph.ok()) {
    return Error::make("channel.bad_ephemeral",
                       initiator_eph.error().to_string());
  }
  const crypto::EcKeyPair eph = crypto::ec_generate(crypto::p256(), entropy);
  auto shared =
      crypto::ecdh_shared_secret(crypto::p256(), eph.d, *initiator_eph);
  if (!shared.ok()) return shared.error();

  // 3. Responder hello with a full-transcript signature.
  ChannelHello hello;
  hello.evidence = self.evidence.serialize();
  hello.ephemeral_pub = eph.public_encoded(crypto::p256());
  const auto th = transcript(initiator_hello.evidence,
                             initiator_hello.ephemeral_pub, hello.evidence,
                             hello.ephemeral_pub);
  hello.signature =
      crypto::ecdsa_sign(crypto::p256(), self.key.d, th.view())
          .encode(crypto::p256());

  const SessionKeys keys = derive_session_keys(*shared, th);
  SecureChannel channel(keys.responder_to_initiator,
                        keys.initiator_to_responder,
                        bundle->report.measurement);
  return std::make_pair(std::move(hello), std::move(channel));
}

Result<SecureChannel> SecureChannel::complete(
    const ChannelIdentity& self, const PeerPolicy& policy,
    ByteView initiator_state, const ChannelHello& responder_hello,
    const KdsService::VcekResponse& responder_kds, std::uint64_t now_us) {
  // 1. Verify the responder's evidence.
  auto bundle = EvidenceBundle::parse(responder_hello.evidence);
  if (!bundle.ok()) return bundle.error();
  if (auto st = verify_channel_peer(*bundle, responder_kds, policy, now_us);
      !st.ok()) {
    return st.error();
  }
  const auto responder_pub = crypto::p256().decode_point(bundle->payload);
  if (!responder_pub.ok()) {
    return Error::make("channel.bad_identity_key",
                       responder_pub.error().to_string());
  }

  // 2. Recompute the full transcript and verify the responder's signature.
  const crypto::U384 eph_d = crypto::U384::from_bytes_be(initiator_state);
  const Bytes my_eph_pub =
      crypto::p256().encode_point(crypto::p256().scalar_mult_base(eph_d));
  const Bytes my_evidence = self.evidence.serialize();
  const auto th = transcript(my_evidence, my_eph_pub,
                             responder_hello.evidence,
                             responder_hello.ephemeral_pub);
  auto sig = crypto::EcdsaSignature::decode(crypto::p256(),
                                            responder_hello.signature);
  if (!sig.ok()) return sig.error();
  if (!crypto::ecdsa_verify(crypto::p256(), *responder_pub, th.view(),
                            *sig)) {
    return Error::make("channel.bad_responder_signature",
                       "transcript not signed by the attested identity key");
  }

  // 3. ECDH + session keys.
  const auto responder_eph =
      crypto::p256().decode_point(responder_hello.ephemeral_pub);
  if (!responder_eph.ok()) {
    return Error::make("channel.bad_ephemeral",
                       responder_eph.error().to_string());
  }
  auto shared = crypto::ecdh_shared_secret(crypto::p256(), eph_d,
                                           *responder_eph);
  if (!shared.ok()) return shared.error();
  const SessionKeys keys = derive_session_keys(*shared, th);
  return SecureChannel(keys.initiator_to_responder,
                       keys.responder_to_initiator,
                       bundle->report.measurement);
}

Bytes SecureChannel::send(ByteView plaintext) {
  const std::uint64_t seq = send_seq_++;
  return send_aead_.seal(seq_nonce(seq).view(), seq_aad(seq), plaintext);
}

Result<Bytes> SecureChannel::receive(ByteView sealed) {
  auto plaintext = recv_aead_.open(seq_aad(recv_seq_), sealed);
  if (!plaintext.ok()) {
    return Error::make("channel.auth_failed",
                       "payload rejected (replay, reorder or tamper)");
  }
  ++recv_seq_;
  return plaintext;
}

}  // namespace revelio::core

#include "revelio/revelio_vm.hpp"

#include <chrono>

#include "crypto/ecies.hpp"
#include "obs/metrics.hpp"

namespace revelio::core {

namespace {

/// AMD-SP monotonic counter slot stamping the sealed TLS identity record.
constexpr std::size_t kIdentityCounterSlot = 0;

/// Parses "host:port" from a length-prefixed wire field layout used by the
/// certificate-install message.
struct Reader {
  ByteView data;
  std::size_t off = 0;
  bool failed = false;

  std::uint32_t u32() {
    if (off + 4 > data.size()) {
      failed = true;
      return 0;
    }
    const std::uint32_t v = read_u32be(data, off);
    off += 4;
    return v;
  }
  std::uint64_t u64() {
    if (off + 8 > data.size()) {
      failed = true;
      return 0;
    }
    const std::uint64_t v = read_u64be(data, off);
    off += 8;
    return v;
  }
  Bytes bytes() {
    const std::uint32_t len = u32();
    if (failed || off + len > data.size()) {
      failed = true;
      return {};
    }
    Bytes b = to_bytes(data.subspan(off, len));
    off += len;
    return b;
  }
};

void append_field(Bytes& out, ByteView v) {
  append_u32be(out, static_cast<std::uint32_t>(v.size()));
  append(out, v);
}

}  // namespace

Result<std::unique_ptr<RevelioVm>> RevelioVm::deploy(
    sevsnp::AmdSp& sp, net::Network& network, RevelioVmConfig config,
    net::HttpRouter app_routes) {
  auto node = std::unique_ptr<RevelioVm>(new RevelioVm());
  node->config_ = std::move(config);
  node->network_ = &network;
  node->app_routes_ = std::move(app_routes);
  node->https_address_ = {node->config_.host, node->config_.https_port};
  node->bootstrap_address_ = {node->config_.host,
                              node->config_.bootstrap_port};
  std::vector<net::Address> kds_replicas{node->config_.kds_address};
  kds_replicas.insert(kds_replicas.end(), node->config_.kds_mirrors.begin(),
                      node->config_.kds_mirrors.end());
  node->kds_failover_.emplace(std::move(kds_replicas),
                              net::CircuitBreaker::Config{}, "vm-kds");
  node->retry_jitter_.reseed(to_bytes(node->config_.host));

  // 1. Measured direct boot through the (untrusted) hypervisor.
  vm::Hypervisor hypervisor(sp, network.clock());
  vm::LaunchConfig launch;
  launch.kernel_blob = node->config_.image.kernel_blob;
  launch.initrd_blob = node->config_.image.initrd_blob;
  launch.cmdline = node->config_.image.cmdline;
  node->disk_ = node->config_.existing_disk
                    ? node->config_.existing_disk
                    : node->config_.image.instantiate_disk();
  launch.disk = node->disk_;
  auto guest = hypervisor.launch(launch);
  if (!guest.ok()) return guest.error();
  node->guest_ = std::move(*guest);

  // 2. Guest init: verity, sealed volume, services.
  auto report = node->guest_->boot();
  if (!report.ok()) return report.error();
  node->boot_report_ = std::move(*report);

  // 3. Revelio first-boot service: identity creation (§5.2.2). The
  // identity is derived from the measurement-bound sealing entropy, so a
  // reboot of the same image on the same chip recreates the same identity.
  if (auto st = node->create_identity(sp, network); !st.ok()) {
    return st.error();
  }

  // 4. Reboot path: unseal a previously installed TLS identity and resume
  // serving immediately (no SP round needed). A counter-stamp mismatch
  // (volume rollback, torn persist) restores nothing: the stale record is
  // discarded, rollback_detected() reports it, and the node boots
  // unprovisioned so the next SP round re-seals a fresh identity.
  auto restored = node->load_tls_identity();
  if (!restored.ok()) return restored.error();
  if (*restored) {
    if (auto st = node->start_tls_server(network); !st.ok()) {
      return st.error();
    }
  }

  // 5. Network endpoints (subject to the measured firewall posture).
  node->register_endpoints(network);
  return node;
}

Status RevelioVm::create_identity(sevsnp::AmdSp& sp, net::Network& network) {
  (void)sp;
  (void)network;
  const auto start = std::chrono::steady_clock::now();

  auto& channel = guest_->channel();
  // Identity entropy comes from the measured context via the protected
  // channel; a different image (or chip) yields a different identity.
  sevsnp::KeyDerivationPolicy id_policy;
  id_policy.mix_measurement = true;
  id_policy.context = "revelio-vm-identity";
  auto seed = channel.request_key(id_policy, 48);
  if (!seed.ok()) return seed.error();
  crypto::HmacDrbg keygen(*seed, to_bytes(std::string_view("identity")));
  identity_ = crypto::ec_generate(crypto::p256(), keygen);

  sevsnp::KeyDerivationPolicy rng_policy;
  rng_policy.mix_measurement = true;
  rng_policy.context = "revelio-vm-entropy";
  auto rng_seed = channel.request_key(rng_policy, 48);
  if (!rng_seed.ok()) return rng_seed.error();
  entropy_ = crypto::HmacDrbg(*rng_seed, to_bytes(config_.host));

  // CSR for the service domain (§5.2.2).
  csr_ = pki::make_csr(crypto::p256(), identity_,
                       {config_.domain, "Revelio Service", "CH"},
                       {config_.domain});

  // Report #1: REPORT_DATA = sha256(public key).
  const Bytes pubkey = identity_.public_encoded(crypto::p256());
  auto id_report = channel.request_report(EvidenceBundle::bind(pubkey));
  if (!id_report.ok()) return id_report.error();
  identity_evidence_ = EvidenceBundle{std::move(*id_report), pubkey};

  // Report #2: REPORT_DATA = sha256(CSR).
  const Bytes csr_bytes = csr_.serialize();
  auto csr_report = channel.request_report(EvidenceBundle::bind(csr_bytes));
  if (!csr_report.ok()) return csr_report.error();
  csr_evidence_ = EvidenceBundle{std::move(*csr_report), csr_bytes};

  const double real_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  guest_->clock().advance_ms(real_ms);
  boot_report_.phases.push_back(
      vm::BootPhase{"identity creation", real_ms, real_ms});
  return Status::success();
}

void RevelioVm::register_endpoints(net::Network& network) {
  // The bootstrap surface carries only self-authenticating evidence and
  // provisioning messages; it must still be on an allowed port.
  if (guest_->inbound_allowed(config_.bootstrap_port)) {
    network.listen(bootstrap_address_,
                   [this](ByteView raw, const net::Address&) {
                     auto request = net::HttpRequest::parse(raw);
                     if (!request.ok()) {
                       return net::HttpResponse::error(400, "bad frame")
                           .serialize();
                     }
                     return handle_bootstrap(*request).serialize();
                   });
  }
}

net::HttpResponse RevelioVm::dispatch(const net::HttpRequest& request) {
  if (request.path == "/.well-known/revelio-attestation") {
    return net::HttpResponse::ok(identity_evidence_.serialize(),
                                 "application/revelio-evidence");
  }
  return app_routes_.dispatch(request);
}

net::HttpResponse RevelioVm::handle_bootstrap(
    const net::HttpRequest& request) {
  if (request.method == "GET" && request.path == "/revelio/csr-bundle") {
    return net::HttpResponse::ok(csr_evidence_.serialize(),
                                 "application/revelio-evidence");
  }
  if (request.method == "POST" && request.path == "/revelio/certificate") {
    return handle_certificate_install(request);
  }
  if (request.method == "POST" && request.path == "/revelio/key-request") {
    return handle_key_request(request);
  }
  return net::HttpResponse::not_found();
}

net::HttpResponse RevelioVm::handle_certificate_install(
    const net::HttpRequest& request) {
  // Body: cert | chain_count | chain... | leader_host | leader_port(u32)
  Reader r{request.body};
  const Bytes cert_bytes = r.bytes();
  auto cert = pki::Certificate::parse(cert_bytes);
  if (!cert.ok()) return net::HttpResponse::error(400, "bad certificate");
  const std::uint32_t chain_count = r.u32();
  if (chain_count > 8) return net::HttpResponse::error(400, "chain too long");
  std::vector<pki::Certificate> chain;
  for (std::uint32_t i = 0; i < chain_count && !r.failed; ++i) {
    auto link = pki::Certificate::parse(r.bytes());
    if (!link.ok()) return net::HttpResponse::error(400, "bad chain");
    chain.push_back(std::move(*link));
  }
  const Bytes leader_host = r.bytes();
  const std::uint32_t leader_port = r.u32();
  if (r.failed) return net::HttpResponse::error(400, "truncated");

  if (!cert->matches_dns(config_.domain)) {
    return net::HttpResponse::error(400, "certificate names wrong domain");
  }
  tls_certificate_ = std::move(*cert);
  tls_chain_ = std::move(chain);

  if (tls_certificate_->public_key == identity_public_key()) {
    // We are the leader: the certified key is ours.
    tls_private_key_ = identity_.d;
    if (auto st = persist_tls_identity(); !st.ok()) {
      return net::HttpResponse::error(500, st.error().to_string());
    }
    if (auto st = start_tls_server(*network_); !st.ok()) {
      return net::HttpResponse::error(500, st.error().to_string());
    }
    return net::HttpResponse::ok(to_bytes(std::string_view("leader-ready")));
  }

  // Otherwise fetch the shared private key from the leader (Fig 4).
  const net::Address leader{to_string(leader_host),
                            static_cast<std::uint16_t>(leader_port)};
  if (auto st = acquire_key_from_leader(leader); !st.ok()) {
    return net::HttpResponse::error(502, st.error().to_string());
  }
  if (auto st = start_tls_server(*network_); !st.ok()) {
    return net::HttpResponse::error(500, st.error().to_string());
  }
  return net::HttpResponse::ok(to_bytes(std::string_view("node-ready")));
}

Status RevelioVm::verify_peer_bundle(const EvidenceBundle& bundle) {
  if (!bundle.binding_ok()) {
    return Error::make("revelio.binding_mismatch",
                       "REPORT_DATA does not cover the payload");
  }
  auto kds = net::with_retries(
      network_->clock(), retry_jitter_, config_.retry,
      net::Deadline::unlimited(), "vm.kds_fetch", [&] {
        return kds_failover_->execute(
            network_->clock(), [&](const net::Address& kds_addr) {
              return KdsService::fetch(*network_, https_address_, kds_addr,
                                       bundle.report.chip_id,
                                       bundle.report.reported_tcb);
            });
      });
  if (!kds.ok()) return kds.error();
  sevsnp::ReportVerifyOptions options;
  options.now_us = network_->clock().now_us();
  if (auto st = sevsnp::verify_report(bundle.report, kds->vcek, {kds->ask},
                                      {kds->ark}, options);
      !st.ok()) {
    return st;
  }
  // Measurement must match a trusted peer image (usually our own).
  bool trusted = bundle.report.measurement == guest_->measurement();
  for (const auto& m : config_.trusted_peer_measurements) {
    trusted = trusted || bundle.report.measurement == m;
  }
  if (!trusted) {
    return Error::make("revelio.untrusted_measurement",
                       "peer runs an unknown image");
  }
  return Status::success();
}

net::HttpResponse RevelioVm::handle_key_request(
    const net::HttpRequest& request) {
  if (!tls_private_key_ || !tls_certificate_) {
    return net::HttpResponse::error(503, "no TLS identity installed yet");
  }
  if (!(tls_certificate_->public_key == identity_public_key())) {
    return net::HttpResponse::error(403, "not the leader");
  }
  auto bundle = EvidenceBundle::parse(request.body);
  if (!bundle.ok()) return net::HttpResponse::error(400, "bad bundle");
  if (auto st = verify_peer_bundle(*bundle); !st.ok()) {
    return net::HttpResponse::error(403, st.error().to_string());
  }
  // Wrap the private key for the attested peer's public key.
  auto wrapped =
      crypto::ecies_seal(crypto::p256(), bundle->payload,
                         tls_private_key_->to_bytes_be(32), entropy_);
  if (!wrapped.ok()) {
    return net::HttpResponse::error(500, wrapped.error().to_string());
  }
  // Response: leader evidence bundle | wrapped key.
  Bytes body;
  append_field(body, identity_evidence_.serialize());
  append_field(body, *wrapped);
  return net::HttpResponse::ok(std::move(body),
                               "application/revelio-keywrap");
}

Status RevelioVm::acquire_key_from_leader(const net::Address& leader) {
  net::HttpRequest request;
  request.method = "POST";
  request.path = "/revelio/key-request";
  request.host = config_.domain;
  request.body = identity_evidence_.serialize();
  // The key request is idempotent (the leader just re-wraps the same key),
  // so resending after a transport loss is safe.
  auto raw = net::with_retries(
      network_->clock(), retry_jitter_, config_.retry,
      net::Deadline::unlimited(), "vm.key_request",
      [&] { return network_->call(https_address_, leader, request.serialize()); });
  if (!raw.ok()) return raw.error();
  auto response = net::HttpResponse::parse(*raw);
  if (!response.ok()) return response.error();
  if (response->status != 200) {
    return Error::make("revelio.key_request_refused",
                       to_string(response->body));
  }
  Reader r{response->body};
  const Bytes leader_bundle_bytes = r.bytes();
  const Bytes wrapped = r.bytes();
  if (r.failed) return Error::make("revelio.bad_key_response");

  // Mutually attest: validate the leader's evidence before trusting the key.
  auto leader_bundle = EvidenceBundle::parse(leader_bundle_bytes);
  if (!leader_bundle.ok()) return leader_bundle.error();
  if (auto st = verify_peer_bundle(*leader_bundle); !st.ok()) return st;
  // The leader's attested key must be the one in the certificate.
  if (!(leader_bundle->payload == tls_certificate_->public_key)) {
    return Error::make("revelio.leader_key_mismatch",
                       "certificate key is not the attested leader key");
  }

  auto key_bytes = crypto::ecies_open(crypto::p256(), identity_.d, wrapped);
  if (!key_bytes.ok()) return key_bytes.error();
  const crypto::U384 key = crypto::U384::from_bytes_be(*key_bytes);
  // Sanity: the received private key must match the certificate.
  const auto derived = crypto::p256().scalar_mult_base(key);
  if (!(crypto::p256().encode_point(derived) ==
        tls_certificate_->public_key)) {
    return Error::make("revelio.key_cert_mismatch",
                       "received key does not match the certificate");
  }
  tls_private_key_ = key;
  return persist_tls_identity();
}

Status RevelioVm::refresh_evidence() {
  // The identity key pair and CSR are unchanged — only the reports are
  // re-signed, so the new bundles bind the same public key and CSR bytes
  // under the VCEK of the chip's current (post-update) TCB.
  auto& channel = guest_->channel();
  const Bytes pubkey = identity_.public_encoded(crypto::p256());
  auto id_report = channel.request_report(EvidenceBundle::bind(pubkey));
  if (!id_report.ok()) return id_report.error();
  const Bytes csr_bytes = csr_.serialize();
  auto csr_report = channel.request_report(EvidenceBundle::bind(csr_bytes));
  if (!csr_report.ok()) return csr_report.error();
  identity_evidence_ = EvidenceBundle{std::move(*id_report), pubkey};
  csr_evidence_ = EvidenceBundle{std::move(*csr_report), csr_bytes};
  return Status::success();
}

Status RevelioVm::persist_tls_identity() {
  // The private key (and the certificate it belongs to) lives in the
  // sealed (dm-crypt) partition: unreadable at rest, after migration to a
  // different image, and after decommissioning (§5.3.1, F6).
  auto volume = guest_->data_volume();
  if (!volume) return Error::make("revelio.no_sealed_volume");
  if (!tls_private_key_ || !tls_certificate_) {
    return Error::make("revelio.no_tls_identity", "nothing to persist");
  }
  // Rollback defence: every persist advances the AMD-SP's measurement-
  // bound monotonic counter and stamps the new value into the sealed
  // record. The counter lives in the chip, out of the host's reach, so a
  // host that later serves an older volume snapshot presents a stale
  // stamp — load_tls_identity refuses it (§6.1.4 applied to state).
  //
  // Ordering matters for availability: stamp the record with counter+1,
  // write it durably, and only then advance the chip counter. An ordinary
  // write failure therefore leaves the counter untouched and the
  // previously sealed record still matching — the node stays bootable. A
  // crash in the window between the write and the increment leaves the
  // stamp one AHEAD of the chip; load_tls_identity treats any mismatch
  // the same way (discard, re-provision), never as trusted state.
  auto counter =
      guest_->channel().request_counter(kIdentityCounterSlot, false);
  if (!counter.ok()) return counter.error();
  const std::uint64_t stamp = *counter + 1;
  Bytes record;
  append(record, std::string_view("TLSID2"));
  append_u64be(record, stamp);
  append_field(record, tls_private_key_->to_bytes_be(32));
  append_field(record, tls_certificate_->serialize());
  append_u32be(record, static_cast<std::uint32_t>(tls_chain_.size()));
  for (const auto& link : tls_chain_) append_field(record, link.serialize());
  if (record.size() > volume->block_size()) {
    return Error::make("revelio.identity_too_large");
  }
  record.resize(volume->block_size(), 0);
  if (auto st = volume->write_block(0, record); !st.ok()) return st;
  auto advanced = guest_->channel().request_counter(kIdentityCounterSlot, true);
  if (!advanced.ok()) return advanced.error();
  if (*advanced != stamp) {
    // Another persist raced this one between read and increment; the
    // record on disk no longer matches the chip. Surface it — the next
    // boot will discard and re-provision rather than serve it.
    return Error::make("revelio.counter_skew",
                       "chip counter advanced to " + std::to_string(*advanced) +
                           ", stamped " + std::to_string(stamp));
  }
  return Status::success();
}

Result<bool> RevelioVm::load_tls_identity() {
  auto volume = guest_->data_volume();
  if (!volume) return false;  // image built without a sealed volume
  Bytes record(volume->block_size());
  if (auto st = volume->read_block(0, record); !st.ok()) return st.error();
  constexpr std::string_view kTag = "TLSID2";
  if (record.size() < kTag.size() ||
      to_string(ByteView(record).subspan(0, kTag.size())) != kTag) {
    return false;  // first boot: nothing persisted yet
  }
  Reader r{record, kTag.size()};
  const std::uint64_t stamped = r.u64();
  // Freshness first: the stamp must equal the chip counter exactly. Less
  // means the host rolled the volume back to an older snapshot (or a
  // persist's durable write was lost after the counter moved); more means
  // a torn persist crashed between write and increment. Either way the
  // identity inside must not be trusted or served — but detection must
  // not brick the node either: the record is discarded unserved, the
  // detection is surfaced (rollback_detected() + metric, for operator
  // alerting — see docs/OPERATIONS.md), and boot falls through to the
  // fresh-provision path. The next SP round re-attests this VM from
  // scratch and re-seals a new identity with a fresh stamp. Fail closed
  // on trust, not on availability.
  auto counter =
      guest_->channel().request_counter(kIdentityCounterSlot, false);
  if (!counter.ok()) return counter.error();
  if (stamped != *counter) {
    rollback_detected_ = true;
    rollback_detail_ = "sealed identity stamp " + std::to_string(stamped) +
                       " != chip counter " + std::to_string(*counter);
    obs::metrics().counter("revelio.rollback.detected.count").inc();
    return false;
  }
  const Bytes key_bytes = r.bytes();
  const Bytes cert_bytes = r.bytes();
  const std::uint32_t chain_count = r.u32();
  if (r.failed || key_bytes.size() != 32 || chain_count > 8) {
    return Error::make("revelio.corrupt_persisted_identity");
  }
  auto cert = pki::Certificate::parse(cert_bytes);
  if (!cert.ok()) return cert.error();
  std::vector<pki::Certificate> chain;
  for (std::uint32_t i = 0; i < chain_count; ++i) {
    auto link = pki::Certificate::parse(r.bytes());
    if (!link.ok()) return link.error();
    chain.push_back(std::move(*link));
  }
  if (r.failed) return Error::make("revelio.corrupt_persisted_identity");

  const crypto::U384 key = crypto::U384::from_bytes_be(key_bytes);
  const auto derived = crypto::p256().scalar_mult_base(key);
  if (!(crypto::p256().encode_point(derived) == cert->public_key)) {
    return Error::make("revelio.corrupt_persisted_identity",
                       "key does not match certificate");
  }
  tls_private_key_ = key;
  tls_certificate_ = std::move(*cert);
  tls_chain_ = std::move(chain);
  return true;
}

Status RevelioVm::start_tls_server(net::Network& network) {
  if (!tls_private_key_ || !tls_certificate_) {
    return Error::make("revelio.no_tls_identity");
  }
  if (!guest_->inbound_allowed(config_.https_port)) {
    return Error::make("revelio.port_blocked",
                       "https port not in the measured firewall allowlist");
  }
  net::TlsServerIdentity identity;
  identity.curve = &crypto::p256();
  identity.key =
      crypto::EcKeyPair{*tls_private_key_,
                        crypto::p256().scalar_mult_base(*tls_private_key_)};
  identity.certificate = *tls_certificate_;
  identity.intermediates = tls_chain_;
  tls_server_ = std::make_unique<net::TlsServer>(
      std::move(identity),
      [this](ByteView plaintext, const net::Address&) {
        auto request = net::HttpRequest::parse(plaintext);
        if (!request.ok()) {
          return net::HttpResponse::error(400, "bad frame").serialize();
        }
        return dispatch(*request).serialize();
      },
      crypto::HmacDrbg(entropy_.generate(32),
                       to_bytes(std::string_view("tls-server"))));
  tls_server_->install(network, https_address_);
  return Status::success();
}

}  // namespace revelio::core

#include "revelio/vcek_cache.hpp"

#include <algorithm>
#include <optional>

#include "obs/metrics.hpp"

namespace revelio::core {

namespace {

constexpr std::string_view kVcekKeyPrefix = "vcek/";

Bytes vcek_store_key(const VcekCache::Key& key) {
  Bytes k;
  k.reserve(kVcekKeyPrefix.size() + key.first.size() + 8);
  append(k, kVcekKeyPrefix);
  append(k, key.first);
  append_u64be(k, key.second);
  return k;
}

// Durable record: the (chip, TCB) identity the chain was fetched for,
// echoed ahead of three u32be-length-prefixed certificate serializations
// (vcek, ask, ark). Exact-parse — trailing bytes make the record invalid.
//
// The echo is what binds a record to its key. A VCEK cert subject names
// only the chip, not the TCB, so without the echo a record copied (or
// mis-written) under another (chip, TCB) key — say the pre-update chain
// surfacing under the post-update key — would parse cleanly and serve a
// stale VCEK as if it were fresh. parse_response rejects any record whose
// embedded identity differs from the key it was looked up by; the
// mismatch is treated as a miss and repaired by a real KDS fetch.
Bytes serialize_response(const VcekCache::Key& key,
                         const KdsService::VcekResponse& response) {
  Bytes out;
  append(out, key.first);
  append_u64be(out, key.second);
  for (const pki::Certificate* cert :
       {&response.vcek, &response.ask, &response.ark}) {
    const Bytes s = cert->serialize();
    append_u32be(out, static_cast<std::uint32_t>(s.size()));
    append(out, s);
  }
  return out;
}

std::optional<KdsService::VcekResponse> parse_response(
    const VcekCache::Key& key, ByteView data) {
  if (data.size() < key.first.size() + 8) return std::nullopt;
  if (!std::equal(key.first.begin(), key.first.end(), data.begin())) {
    return std::nullopt;  // record bound to a different chip
  }
  if (read_u64be(data, key.first.size()) != key.second) {
    return std::nullopt;  // record bound to a different TCB version
  }
  data = data.subspan(key.first.size() + 8);
  KdsService::VcekResponse response;
  for (pki::Certificate* cert : {&response.vcek, &response.ask,
                                 &response.ark}) {
    if (data.size() < 4) return std::nullopt;
    const std::uint32_t len = read_u32be(data, 0);
    data = data.subspan(4);
    if (data.size() < len) return std::nullopt;
    auto parsed = pki::Certificate::parse(data.subspan(0, len));
    if (!parsed.ok()) return std::nullopt;
    *cert = std::move(*parsed);
    data = data.subspan(len);
  }
  if (!data.empty()) return std::nullopt;
  return response;
}

}  // namespace

VcekCache::VcekCache(std::size_t shards, std::size_t capacity_per_shard)
    : capacity_per_shard_(capacity_per_shard == 0 ? 1 : capacity_per_shard) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::size_t VcekCache::shard_index(const Key& key) const {
  // FNV-1a over the chip id bytes then the encoded TCB: cheap, stable, and
  // spreads sequential chip ids across shards.
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto byte : key.first) {
    h ^= static_cast<std::uint64_t>(byte);
    h *= 1099511628211ULL;
  }
  for (std::size_t i = 0; i < 8; ++i) {
    h ^= (key.second >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(h % shards_.size());
}

bool VcekCache::lookup(Shard& shard, const Key& key,
                       KdsService::VcekResponse* out) {
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return false;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.second);
  *out = it->second.first;
  return true;
}

void VcekCache::insert(Shard& shard, const Key& key,
                       const KdsService::VcekResponse& response) {
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.entries.count(key) != 0) return;
  if (shard.entries.size() >= capacity_per_shard_) {
    shard.entries.erase(shard.lru.back());
    shard.lru.pop_back();
  }
  shard.lru.push_front(key);
  shard.entries.emplace(key, std::make_pair(response, shard.lru.begin()));
}

void VcekCache::attach_store(store::KvStore* kv) {
  store_.store(kv, std::memory_order_release);
}

Result<KdsService::VcekResponse> VcekCache::get_or_fetch(
    const sevsnp::ChipId& chip, sevsnp::TcbVersion tcb, const FetchFn& fetch) {
  const Key key = std::make_pair(chip.bytes(), tcb.encode());
  Shard& shard = *shards_[shard_index(key)];

  KdsService::VcekResponse cached;
  if (lookup(shard, key, &cached)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().counter("kds.fetch.hit.count").inc();
    return cached;
  }

  bool coalesced = false;
  auto result = shard.flights.run(key, &coalesced, [&] {
    // Leader. Re-check the shard first: a previous flight may have filled
    // the entry between our miss and the flight starting.
    KdsService::VcekResponse refilled;
    if (lookup(shard, key, &refilled)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      obs::metrics().counter("kds.fetch.hit.count").inc();
      return Result<KdsService::VcekResponse>(refilled);
    }

    // Durable tier before the network: a chain persisted by a previous
    // run serves this miss with zero KDS traffic. Coalesced followers
    // inherit it through the flight, like a real fetch. Anything that
    // fails to parse is a plain miss — the KDS round trip repairs it.
    store::KvStore* kv = store_.load(std::memory_order_acquire);
    if (kv != nullptr) {
      if (const auto stored = kv->get(vcek_store_key(key))) {
        if (auto parsed = parse_response(key, *stored)) {
          store_hits_.fetch_add(1, std::memory_order_relaxed);
          obs::metrics().counter("kds.fetch.store_hit.count").inc();
          insert(shard, key, *parsed);
          return Result<KdsService::VcekResponse>(std::move(*parsed));
        }
      }
    }

    fetches_.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().counter("kds.fetch.count").inc();
    Result<KdsService::VcekResponse> fetched = fetch();
    if (!fetched.ok()) return fetched;  // failures are never cached

    // Insert BEFORE the flight publishes: once any waiter observes the
    // result, the entry is already servable — no window where a fresh
    // caller misses a chain that a finished flight just fetched.
    insert(shard, key, *fetched);
    if (kv != nullptr) {
      // Best effort: a failed write-through costs a re-fetch after the
      // next restart, nothing else.
      if (!kv->put(vcek_store_key(key),
                   serialize_response(key, *fetched)).ok()) {
        store_write_failures_.fetch_add(1, std::memory_order_relaxed);
        obs::metrics().counter("kds.fetch.store_write_failure.count").inc();
      }
    }
    return fetched;
  });

  if (coalesced) {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().counter("kds.fetch.coalesced.count").inc();
  }
  if (!result.ok()) failures_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

VcekCache::Stats VcekCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.fetches = fetches_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.failures = failures_.load(std::memory_order_relaxed);
  s.store_hits = store_hits_.load(std::memory_order_relaxed);
  s.store_write_failures =
      store_write_failures_.load(std::memory_order_relaxed);
  return s;
}

std::size_t VcekCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->entries.size();
  }
  return total;
}

std::size_t VcekCache::shard_size(std::size_t i) const {
  std::lock_guard<std::mutex> lock(shards_[i]->mu);
  return shards_[i]->entries.size();
}

void VcekCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->entries.clear();
    shard->lru.clear();
  }
}

}  // namespace revelio::core

#include "revelio/vcek_cache.hpp"

#include "obs/metrics.hpp"

namespace revelio::core {

VcekCache::VcekCache(std::size_t shards, std::size_t capacity_per_shard)
    : capacity_per_shard_(capacity_per_shard == 0 ? 1 : capacity_per_shard) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::size_t VcekCache::shard_index(const Key& key) const {
  // FNV-1a over the chip id bytes then the encoded TCB: cheap, stable, and
  // spreads sequential chip ids across shards.
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto byte : key.first) {
    h ^= static_cast<std::uint64_t>(byte);
    h *= 1099511628211ULL;
  }
  for (std::size_t i = 0; i < 8; ++i) {
    h ^= (key.second >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(h % shards_.size());
}

bool VcekCache::lookup(Shard& shard, const Key& key,
                       KdsService::VcekResponse* out) {
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return false;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.second);
  *out = it->second.first;
  return true;
}

Result<KdsService::VcekResponse> VcekCache::get_or_fetch(
    const sevsnp::ChipId& chip, sevsnp::TcbVersion tcb, const FetchFn& fetch) {
  const Key key = std::make_pair(chip.bytes(), tcb.encode());
  Shard& shard = *shards_[shard_index(key)];

  KdsService::VcekResponse cached;
  if (lookup(shard, key, &cached)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().counter("kds.fetch.hit.count").inc();
    return cached;
  }

  bool coalesced = false;
  auto result = shard.flights.run(key, &coalesced, [&] {
    // Leader. Re-check the shard first: a previous flight may have filled
    // the entry between our miss and the flight starting.
    KdsService::VcekResponse refilled;
    if (lookup(shard, key, &refilled)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      obs::metrics().counter("kds.fetch.hit.count").inc();
      return Result<KdsService::VcekResponse>(refilled);
    }

    fetches_.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().counter("kds.fetch.count").inc();
    Result<KdsService::VcekResponse> fetched = fetch();
    if (!fetched.ok()) return fetched;  // failures are never cached

    // Insert BEFORE the flight publishes: once any waiter observes the
    // result, the entry is already servable — no window where a fresh
    // caller misses a chain that a finished flight just fetched.
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.entries.count(key) == 0) {
      if (shard.entries.size() >= capacity_per_shard_) {
        shard.entries.erase(shard.lru.back());
        shard.lru.pop_back();
      }
      shard.lru.push_front(key);
      shard.entries.emplace(
          key, std::make_pair(*fetched, shard.lru.begin()));
    }
    return fetched;
  });

  if (coalesced) {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    obs::metrics().counter("kds.fetch.coalesced.count").inc();
  }
  if (!result.ok()) failures_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

VcekCache::Stats VcekCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.fetches = fetches_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.failures = failures_.load(std::memory_order_relaxed);
  return s;
}

std::size_t VcekCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->entries.size();
  }
  return total;
}

std::size_t VcekCache::shard_size(std::size_t i) const {
  std::lock_guard<std::mutex> lock(shards_[i]->mu);
  return shards_[i]->entries.size();
}

void VcekCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->entries.clear();
    shard->lru.clear();
  }
}

}  // namespace revelio::core

#include "revelio/sp_node.hpp"

namespace revelio::core {

namespace {
void append_field(Bytes& out, ByteView v) {
  append_u32be(out, static_cast<std::uint32_t>(v.size()));
  append(out, v);
}
}  // namespace

SpNode::SpNode(net::Network& network, pki::AcmeIssuer& acme,
               SpNodeConfig config)
    : network_(&network), acme_(&acme), config_(std::move(config)) {}

void SpNode::approve_node(const net::Address& bootstrap_address,
                          const sevsnp::ChipId& chip_id) {
  approved_[bootstrap_address] = chip_id.bytes();
}

Result<pki::CertificateSigningRequest> SpNode::attest_node(
    const net::Address& bootstrap_address) {
  // The node must be pre-approved: an impersonator with a *valid* report
  // from some other machine still fails the chip-id + address check.
  const auto approved_it = approved_.find(bootstrap_address);
  if (approved_it == approved_.end()) {
    return Error::make("sp.node_not_approved", bootstrap_address.to_string());
  }

  // 1. Retrieve the report-CSR bundle.
  net::HttpRequest request;
  request.method = "GET";
  request.path = "/revelio/csr-bundle";
  request.host = config_.domain;
  auto raw = net::with_retries(
      network_->clock(), retry_jitter_, config_.retry,
      net::Deadline::unlimited(), "sp.csr_fetch", [&] {
        return network_->call(own_address_, bootstrap_address,
                              request.serialize());
      });
  if (!raw.ok()) return raw.error();
  auto response = net::HttpResponse::parse(*raw);
  if (!response.ok()) return response.error();
  if (response->status != 200) {
    return Error::make("sp.bundle_fetch_failed",
                       std::to_string(response->status));
  }
  auto bundle = EvidenceBundle::parse(response->body);
  if (!bundle.ok()) return bundle.error();

  // 2. CSR hash must be imprinted in REPORT_DATA (§5.2.2).
  if (!bundle->binding_ok()) {
    return Error::make("sp.binding_mismatch",
                       "CSR hash not bound into the report");
  }
  // 3. Chip id must match the approved platform for this address.
  if (bundle->report.chip_id.bytes() != approved_it->second) {
    return Error::make("sp.chip_mismatch",
                       "report comes from an unapproved chip");
  }
  // 4. Signature + endorsement chain via the KDS.
  auto kds = net::with_retries(
      network_->clock(), retry_jitter_, config_.retry,
      net::Deadline::unlimited(), "sp.kds_fetch", [&] {
        return KdsService::fetch(*network_, own_address_, config_.kds_address,
                                 bundle->report.chip_id,
                                 bundle->report.reported_tcb);
      });
  if (!kds.ok()) return kds.error();
  sevsnp::ReportVerifyOptions options;
  options.now_us = network_->clock().now_us();
  options.minimum_tcb = config_.minimum_tcb;
  if (auto st = sevsnp::verify_report(bundle->report, kds->vcek, {kds->ask},
                                      {kds->ark}, options);
      !st.ok()) {
    return Error::make("sp.report_invalid", st.error().to_string());
  }
  // 5. Measurement must be an expected (non-revoked) image.
  bool acceptable = false;
  for (const auto& m : config_.expected_measurements) {
    acceptable = acceptable || bundle->report.measurement == m;
  }
  if (!acceptable) {
    return Error::make("sp.measurement_mismatch",
                       "node runs an unexpected image");
  }
  // 6. The CSR itself must verify and name our domain.
  auto csr = pki::CertificateSigningRequest::parse(bundle->payload);
  if (!csr.ok()) return csr.error();
  if (!csr->verify()) {
    return Error::make("sp.bad_csr", "proof of possession failed");
  }
  bool names_domain = false;
  for (const auto& san : csr->san_dns) {
    names_domain = names_domain || san == config_.domain;
  }
  if (!names_domain) {
    return Error::make("sp.bad_csr", "CSR does not name the service domain");
  }
  return csr;
}

Result<pki::Certificate> SpNode::obtain_certificate(
    const pki::CertificateSigningRequest& leader_csr,
    const net::Deadline& deadline) {
  // DNS-01: the SP node controls the domain's DNS (the credentials never
  // leave its premises).
  const std::string token =
      acme_->request_challenge(config_.acme_account, config_.domain);
  network_->dns_set_txt("_acme-challenge." + config_.domain, token);
  // An `acme.unavailable` outage is transient and retried on backoff; an
  // issuance *refusal* (bad CSR, failed challenge, rate limit) is final.
  auto cert = net::with_retries(
      network_->clock(), retry_jitter_, config_.retry, deadline,
      "sp.acme_finalize", [&] {
        return acme_->finalize(config_.acme_account, leader_csr,
                               [this](const std::string& name) {
                                 return network_->dns_txt(name);
                               });
      });
  network_->dns_clear_txt("_acme-challenge." + config_.domain);
  return cert;
}

Status SpNode::distribute_certificate(const net::Address& node,
                                      const net::Address& leader,
                                      const net::Deadline& deadline) {
  Bytes body;
  append_field(body, certificate_->serialize());
  append_u32be(body, static_cast<std::uint32_t>(chain_.size()));
  for (const auto& link : chain_) append_field(body, link.serialize());
  append_field(body, to_bytes(leader.host));
  append_u32be(body, leader.port);

  net::HttpRequest request;
  request.method = "POST";
  request.path = "/revelio/certificate";
  request.host = config_.domain;
  request.body = std::move(body);
  // Certificate installation is idempotent on the node, so re-sending
  // after a transport loss is safe.
  auto raw = net::with_retries(
      network_->clock(), retry_jitter_, config_.retry, deadline,
      "sp.distribute",
      [&] { return network_->call(own_address_, node, request.serialize()); });
  if (!raw.ok()) return raw.error();
  auto response = net::HttpResponse::parse(*raw);
  if (!response.ok()) return response.error();
  if (response->status != 200) {
    return Error::make("sp.distribution_failed", to_string(response->body));
  }
  return Status::success();
}

Result<std::vector<NodeAttestation>> SpNode::provision_fleet() {
  if (approved_.empty()) {
    return Error::make("sp.no_nodes", "no approved nodes registered");
  }
  std::vector<NodeAttestation> outcomes;
  std::optional<net::Address> leader;
  std::optional<pki::CertificateSigningRequest> leader_csr;
  // The whole round shares one virtual-time budget, threaded through the
  // issuance and distribution sub-calls.
  const net::Deadline deadline =
      config_.provision_deadline_ms > 0.0
          ? net::Deadline::after_ms(network_->clock(),
                                    config_.provision_deadline_ms)
          : net::Deadline::unlimited();

  // Round 1: attest everyone; first healthy node becomes the leader.
  for (const auto& [address, chip] : approved_) {
    NodeAttestation outcome;
    outcome.bootstrap_address = address;
    auto csr = attest_node(address);
    if (csr.ok()) {
      outcome.attested = true;
      outcome.public_key = csr->public_key;
      if (!leader) {
        leader = address;
        leader_csr = std::move(*csr);
      }
    } else {
      outcome.failure = csr.error().to_string();
    }
    outcomes.push_back(std::move(outcome));
  }
  if (!leader) {
    return Error::make("sp.no_healthy_nodes",
                       "every node failed attestation");
  }

  // Round 2: one shared certificate for the leader's key (§3.4.6).
  auto cert = obtain_certificate(*leader_csr, deadline);
  if (!cert.ok()) return cert.error();
  certificate_ = std::move(*cert);
  chain_ = acme_->intermediates();

  // Round 3: distribute; the leader installs directly, the others fetch the
  // wrapped key from the leader during the same exchange (Fig 4).
  // The leader must be first so it is ready to serve key requests.
  if (auto st = distribute_certificate(*leader, *leader, deadline); !st.ok()) {
    return st.error();
  }
  for (auto& outcome : outcomes) {
    if (!outcome.attested || outcome.bootstrap_address == *leader) continue;
    if (auto st = distribute_certificate(outcome.bootstrap_address, *leader,
                                         deadline);
        !st.ok()) {
      outcome.attested = false;
      outcome.failure = st.error().to_string();
    }
  }
  return outcomes;
}

}  // namespace revelio::core

#include "revelio/auditor.hpp"

#include "vm/hypervisor.hpp"

namespace revelio::core {

namespace {

using Severity = AuditFinding::Severity;

void lint(AuditReport& report, const imagebuild::BuildInputs& inputs) {
  auto add = [&report](Severity severity, std::string check,
                       std::string detail) {
    report.findings.push_back(
        AuditFinding{severity, std::move(check), std::move(detail)});
  };

  if (!inputs.base_image_digest) {
    add(Severity::kCritical, "base-image-pinning",
        "base image pulled by mutable tag; rebuilds will drift");
  }
  if (!inputs.kernel.sev_snp_enabled) {
    add(Severity::kCritical, "sev-snp",
        "kernel built without SEV-SNP guest support: no sealing, no reports");
  }
  if (!inputs.initrd.setup_verity || !inputs.kernel.enforce_verity) {
    add(Severity::kCritical, "dm-verity",
        "rootfs integrity protection disabled: runtime tampering undetected");
  }
  if (!inputs.initrd.setup_crypt) {
    add(Severity::kWarning, "dm-crypt",
        "no sealed data volume: persistent state readable by the host");
  }
  if (!inputs.initrd.block_inbound_network) {
    add(Severity::kCritical, "firewall",
        "inbound connections unrestricted: management access possible");
  }
  for (const auto& port : inputs.initrd.allowed_inbound_ports) {
    if (port == "22") {
      add(Severity::kCritical, "firewall",
          "ssh port open: the provider can modify the VM after attestation");
    }
  }
  for (const auto& [path, content] : inputs.service_files) {
    if (content.empty()) {
      add(Severity::kWarning, "artifacts", "empty service file: " + path);
    }
  }
  if (inputs.initrd.services.empty()) {
    add(Severity::kInfo, "services", "image starts no services");
  }
}

}  // namespace

AuditReport Auditor::audit(const imagebuild::BuildInputs& inputs) const {
  AuditReport report;

  // Reproducibility: two independent builds must agree bit-for-bit.
  auto first = builder_.build(inputs);
  if (!first.ok()) {
    report.findings.push_back(AuditFinding{
        Severity::kCritical, "build", first.error().to_string()});
    return report;
  }
  imagebuild::BuildOptions second_env;
  second_env.wall_clock_us = 1234567890;  // a different "machine"
  second_env.build_path = "/auditor/rebuild";
  auto second = builder_.build(inputs, second_env);
  if (!second.ok() || !(first->digest() == second->digest())) {
    report.findings.push_back(AuditFinding{
        Severity::kCritical, "reproducibility",
        "independent rebuild produced different bits"});
    return report;
  }
  report.reproducible = true;
  report.measurement = vm::Hypervisor::expected_measurement(
      first->kernel_blob, first->initrd_blob, first->cmdline);

  lint(report, inputs);
  return report;
}

Result<sevsnp::Measurement> Auditor::audit_and_publish(
    const imagebuild::BuildInputs& inputs, const std::string& service,
    TrustedRegistry& registry) const {
  const AuditReport report = audit(inputs);
  if (!report.passed()) {
    std::string reasons;
    for (const auto& finding : report.findings) {
      if (finding.severity == Severity::kCritical) {
        if (!reasons.empty()) reasons += "; ";
        reasons += finding.check + ": " + finding.detail;
      }
    }
    if (!report.reproducible && reasons.empty()) {
      reasons = "build not reproducible";
    }
    return Error::make("auditor.rejected", reasons);
  }
  registry.publish(service, report.measurement);
  return report.measurement;
}

}  // namespace revelio::core

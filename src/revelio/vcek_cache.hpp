// Shared VCEK-chain cache with single-flight KDS fetch coalescing.
//
// Every attesting client needs the VCEK certificate chain for the
// (chip id, TCB) its server's report names, and the chain only changes on
// a firmware update — yet a gateway's concurrent sessions would otherwise
// each pay the full KDS round trip (or, worse, all of them at once on a
// cold cache: the thundering herd AMD's production KDS is documented to
// rate-limit). This cache gives the gateway one shared store:
//
//  - Lock-striped LRU: the key hashes to one of K independent shards,
//    each with its own mutex and capacity, so sessions resolving
//    *different* chips don't contend.
//  - Single-flight misses: concurrent misses on the SAME key coalesce
//    into one KDS fetch (common/single_flight.hpp); the leader inserts
//    the response into the shard before publishing, so followers and all
//    later callers hit. Fetch failures are never cached and are delivered
//    to every coalesced waiter; retries belong inside the fetch function.
//
// Metrics (process-wide via obs::metrics(), or the session registry when
// one is bound): kds.fetch.count — real fetches executed (the acceptance
// signal for dedup: N concurrent cold sessions must leave this at 1);
// kds.fetch.hit.count — cache hits; kds.fetch.coalesced.count — callers
// that waited on another caller's fetch instead of issuing their own.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/single_flight.hpp"
#include "revelio/evidence.hpp"
#include "store/kv_store.hpp"

namespace revelio::core {

/// Thread-safe sharded VCEK store. Values are whole KdsService::VcekResponse
/// bundles (VCEK + ASK + ARK), copied out on every hit — the certificates
/// are small and a copy keeps hits lock-free for the caller.
class VcekCache {
 public:
  /// Cache key: (raw chip id bytes, encoded TCB version).
  using Key = std::pair<Bytes, std::uint64_t>;
  /// The actual KDS round trip, supplied by the caller so the cache stays
  /// ignorant of transport, retries and failover. Runs outside all cache
  /// locks; at most one instance per key runs at a time.
  using FetchFn = std::function<Result<KdsService::VcekResponse>()>;

  explicit VcekCache(std::size_t shards = 8,
                     std::size_t capacity_per_shard = 64);

  /// Returns the cached chain for (chip, tcb), or executes `fetch` —
  /// coalescing with any concurrent fetch of the same key — and caches the
  /// response on success. Thread-safe; the dominant concurrent pattern
  /// (every session asking for the same chip) costs one fetch total.
  Result<KdsService::VcekResponse> get_or_fetch(const sevsnp::ChipId& chip,
                                                sevsnp::TcbVersion tcb,
                                                const FetchFn& fetch);

  /// Durable tier behind the shards (attach_store): fetched chains are
  /// written through under "vcek/<chip><tcb>" and consulted before paying a
  /// KDS round trip, so a restarted gateway resolves known (chip, TCB)
  /// pairs with zero fetches. The persisted bytes carry no authority —
  /// every certificate loaded from the store is still chain-walked to the
  /// pinned ARK by the verify path, so a corrupted or malicious record can
  /// only cause a re-fetch or a verification failure, never silent trust.
  /// Each record embeds the (chip, TCB) identity it was fetched for and is
  /// rejected when that identity differs from the key it is looked up by —
  /// a chain-valid record surfacing under the wrong TCB (e.g. a pre-update
  /// chain after a fleet TCB update) parses as a miss, never a hit.
  /// Unparseable records are treated as a miss. The store must be
  /// thread-safe for the cache's callers and must outlive the cache.
  void attach_store(store::KvStore* kv);

  struct Stats {
    std::uint64_t hits = 0;       // served from a shard without fetching
    std::uint64_t fetches = 0;    // FetchFn actually executed (leaders)
    std::uint64_t coalesced = 0;  // waited on another caller's fetch
    std::uint64_t failures = 0;   // get_or_fetch calls that returned error
    std::uint64_t store_hits = 0;  // served from the durable tier, no fetch
    std::uint64_t store_write_failures = 0;  // write-throughs that failed
  };
  /// Atomic counters; readable at any time from any thread.
  Stats stats() const;

  /// Entries currently cached, summed over shards.
  std::size_t size() const;
  std::size_t shard_count() const { return shards_.size(); }
  /// Entry count of one shard (tests: key distribution, eviction).
  std::size_t shard_size(std::size_t i) const;
  /// Which shard a key routes to (FNV-1a over chip bytes + TCB, mod K).
  std::size_t shard_index(const Key& key) const;
  void clear();

 private:
  struct Shard {
    std::mutex mu;
    std::list<Key> lru;  // front = most recently used
    std::map<Key, std::pair<KdsService::VcekResponse,
                            std::list<Key>::iterator>>
        entries;
    common::SingleFlight<Key, KdsService::VcekResponse> flights;
  };

  /// Looks `key` up in `shard`, refreshing LRU order on a hit.
  bool lookup(Shard& shard, const Key& key, KdsService::VcekResponse* out);
  /// Inserts into `shard` under its mutex (no-op if already present).
  void insert(Shard& shard, const Key& key,
              const KdsService::VcekResponse& response);

  std::size_t capacity_per_shard_;
  // unique_ptr: Shard owns a mutex, the array must never move.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<store::KvStore*> store_{nullptr};

  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> fetches_{0};
  mutable std::atomic<std::uint64_t> coalesced_{0};
  mutable std::atomic<std::uint64_t> failures_{0};
  mutable std::atomic<std::uint64_t> store_hits_{0};
  mutable std::atomic<std::uint64_t> store_write_failures_{0};
};

}  // namespace revelio::core

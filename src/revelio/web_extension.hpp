// Browser + Revelio web extension (§5.3.2).
//
// The Browser models what Firefox gives the extension: HTTPS fetches over
// cached TLS sessions, plus the API to query the public key of the current
// connection. The WebExtension intercepts every request to a registered
// domain: on a fresh session it fetches the attestation evidence from the
// well-known URL, pulls the VCEK chain from the (simulated) AMD KDS —
// caching it, since the VCEK only rotates with firmware updates —
// validates chain, signature, measurement (against a manual registration
// or a delegated TrustedRegistry) and the TLS binding; on every subsequent
// request it re-checks that the connection still terminates at the
// attested key, which is what defeats the certificate-swap redirect attack.
#pragma once

#include <map>
#include <optional>

#include "net/http.hpp"
#include "net/resilience.hpp"
#include "net/tls.hpp"
#include "revelio/evidence.hpp"
#include "revelio/trusted_registry.hpp"
#include "revelio/vcek_cache.hpp"

namespace revelio::obs {
class AuditLog;  // obs/audit_log.hpp
}  // namespace revelio::obs

namespace revelio {
class RevocationSet;  // revelio/revocation.hpp
}  // namespace revelio

namespace revelio::fleet {
class TcbHorizon;  // fleet/tcb_horizon.hpp
}  // namespace revelio::fleet

namespace revelio::core {

class Browser {
 public:
  Browser(net::Network& network, std::string client_host,
          std::vector<pki::Certificate> trust_roots, crypto::HmacDrbg entropy);

  struct FetchResult {
    net::HttpResponse response;
    Bytes tls_server_key;  // the "connection context" API
    bool new_session = false;
  };

  /// HTTPS GET/POST through the per-domain session cache; reconnects (and
  /// reports new_session) if the server reset the session.
  Result<FetchResult> fetch(const std::string& domain, std::uint16_t port,
                            const net::HttpRequest& request);
  Result<FetchResult> get(const std::string& domain, std::uint16_t port,
                          const std::string& path);

  /// Establishes (or reuses) the TLS session to `domain` without issuing a
  /// request and returns the server's public key. The staged gateway path
  /// uses this as its handshake stage so the TLS round trips land in their
  /// own wake interval instead of being folded into the first page fetch.
  Result<Bytes> connect(const std::string& domain, std::uint16_t port);

  void drop_session(const std::string& domain);
  const std::string& host() const { return client_host_; }
  net::Network& network() { return *network_; }

  /// Replaces the private handshake chain cache with a shared verifier
  /// (e.g. the gateway's ShardedChainCache — thread-safe, so many browsers
  /// on many lanes can share it). Pass nullptr to revert to the private
  /// cache. The verifier must outlive the browser.
  void set_chain_cache(pki::ChainVerifier* cache) {
    external_chain_cache_ = cache;
  }

  /// Handshake chain-verification cache stats (benchmarks read these).
  pki::ChainVerificationCache::Stats chain_cache_stats() const {
    return chain_cache_->stats();
  }

 private:
  Result<net::TlsSession*> session_for(const std::string& domain,
                                       std::uint16_t port, bool& created);

  net::Network* network_;
  std::string client_host_;
  std::vector<pki::Certificate> trust_roots_;
  crypto::HmacDrbg entropy_;
  std::map<std::string, net::TlsSession> sessions_;
  /// Reconnects to a known server revalidate its chain from this cache
  /// (behind unique_ptr: the cache holds a mutex, Browser stays movable).
  std::unique_ptr<pki::ChainVerificationCache> chain_cache_;
  /// When set (set_chain_cache), used instead of chain_cache_.
  pki::ChainVerifier* external_chain_cache_ = nullptr;
  std::uint16_t next_port_ = 40000;
};

/// How a registered site's measurement is judged.
struct SiteRegistration {
  /// Manual registration: the user supplies expected measurement(s)
  /// computed from the reproducible build or received out of band.
  std::vector<sevsnp::Measurement> expected_measurements;
  /// Delegated: consult a third-party registry (auditor / DAO).
  const TrustedRegistry* registry = nullptr;
  std::string registry_service;
  std::optional<sevsnp::TcbVersion> minimum_tcb;
};

/// Outcome of one attestation pass — what the extension's UI would render.
struct AttestationChecks {
  bool evidence_fetched = false;
  bool binding_ok = false;       // REPORT_DATA covers the served key
  bool chain_ok = false;         // VCEK chains to the AMD root
  bool signature_ok = false;     // report signed by that VCEK
  bool measurement_ok = false;   // measurement is a known-good image
  bool tls_binding_ok = false;   // session terminates at the attested key
  std::string failure;
  /// Machine-readable step id of the first failed check ("" when all pass):
  /// evidence_fetch | evidence_parse | binding | kds_fetch | revocation |
  /// tcb_horizon | chain | report_verify | measurement | tls_binding.
  /// Mirrors the `result` label
  /// on the ext.attest.result.count metric and the ext.attest span.
  std::string failure_step;

  bool all_ok() const {
    return evidence_fetched && binding_ok && chain_ok && signature_ok &&
           measurement_ok && tls_binding_ok;
  }
};

struct WebExtensionConfig {
  net::Address kds_address;
  /// Read-only KDS mirrors tried, in order, when kds_address (or an earlier
  /// mirror) is transiently unreachable or its breaker is open. The VCEK
  /// chain is self-authenticating (it must chain to the pinned AMD root),
  /// so fetching it from any mirror is safe.
  std::vector<net::Address> kds_mirrors;
  bool cache_vcek = true;
  /// Simulated cost of querying the browser's connection context on every
  /// monitored request (the paper's 115.0 ms vs 100.9 ms plain delta).
  double connection_check_overhead_ms = 14.0;
  /// Transient-transport retry policy for page fetches, evidence fetches
  /// and KDS calls. max_attempts = 1 keeps the resilience layer in the
  /// path (counters, spans, failover) without changing timing — chaos
  /// configs raise it.
  net::RetryPolicy retry{.max_attempts = 1};
  /// Virtual-time budget for one full attestation pass (0 = unlimited),
  /// threaded as a Deadline through evidence + KDS sub-calls.
  double attest_deadline_ms = 0.0;
  /// Breaker config shared by the per-KDS-replica circuit breakers.
  net::CircuitBreaker::Config kds_breaker;
  /// Gateway mode: a shared, thread-safe chain verifier (typically the
  /// engine's ShardedChainCache) used for report-chain verification in
  /// place of the extension's private cache. Must outlive the extension.
  pki::ChainVerifier* shared_chain_cache = nullptr;
  /// Gateway mode: a shared VCEK cache with single-flight fetch
  /// coalescing, replacing the private per-extension VCEK map (and making
  /// cache_vcek irrelevant). Must outlive the extension.
  VcekCache* shared_vcek_cache = nullptr;
  /// When set, every attestation verdict — accept or reject, blocking or
  /// staged path — is appended to this tamper-evident chain (measurement,
  /// VCEK chain digest, TCB, checks bitmap, failure step, evidence
  /// digest). Must outlive the extension; appends are thread-safe.
  obs::AuditLog* audit_log = nullptr;
  /// Session id stamped on this extension's audit records (the gateway
  /// sets it to the session index; a lone extension can leave 0).
  std::uint64_t audit_session_id = 0;
  /// When set, the verify stage consults this set *before* any signature
  /// work and rejects fail-closed (failure_step "revocation") if the
  /// report's measurement, chip, or the fetched VCEK certificate has been
  /// revoked — on every path: blocking, staged, and batch. Must outlive
  /// the extension; checks are thread-safe.
  const RevocationSet* revocation_set = nullptr;
  /// When set, the verify stage also consults the fleet's per-chip TCB
  /// update horizons *before* any signature work and rejects fail-closed
  /// (failure_step "tcb_horizon") any report whose TCB is below its
  /// chip's announced minimum once the horizon instant has passed — on
  /// every path: blocking, staged, and batch. Must outlive the extension;
  /// checks are thread-safe.
  const fleet::TcbHorizon* tcb_horizon = nullptr;
};

class WebExtension {
 public:
  WebExtension(Browser& browser, WebExtensionConfig config);

  void register_site(const std::string& domain, SiteRegistration site);
  bool is_registered(const std::string& domain) const {
    return sites_.count(domain) > 0;
  }

  /// Opportunistic discovery (§5.3.2): probes the well-known URL; returns
  /// true if the site serves Revelio evidence (user would be prompted to
  /// pin a measurement).
  Result<bool> discover(const std::string& domain, std::uint16_t port);

  struct Verified {
    net::HttpResponse response;
    AttestationChecks checks;
  };

  /// Intercepted fetch: attests on first access / session change, monitors
  /// the connection afterwards. Fails closed on any check failure.
  Result<Verified> fetch(const std::string& domain, std::uint16_t port,
                         const net::HttpRequest& request);
  Result<Verified> get(const std::string& domain, std::uint16_t port,
                       const std::string& path);

  /// The attestation pipeline of fetch(), cut at its I/O boundaries so an
  /// event-driven engine can run one stage per wake and park the session
  /// between them. Stage order is fixed:
  ///
  ///   handshake() -> fetch_evidence() -> fetch_kds() -> verify()
  ///     -> fetch_page(path)
  ///
  /// Each stage returns Status: transport errors propagate with their
  /// original code; failed *checks* return "extension.attestation_failed"
  /// (fail closed, same as fetch()), with the step recorded in
  /// checks().failure_step. Calling a stage out of order is a programming
  /// error and returns "extension.stage_order". The checks sequence and
  /// side effects (caches, DomainState, metrics) match the blocking path;
  /// the only intended difference is that the page fetch happens *after*
  /// verification, so it takes the monitoring path and pays
  /// connection_check_overhead_ms.
  ///
  /// Thread safety: none — one StagedAttestation belongs to one session,
  /// and the parent extension/browser must be externally serialized per
  /// world, exactly like the blocking path.
  class StagedAttestation {
   public:
    /// TLS connect (or session reuse); captures the server key.
    Status handshake();
    /// Evidence fetch from the well-known URL + parse + REPORT_DATA
    /// binding check.
    Status fetch_evidence();
    /// VCEK chain from the KDS via the shared single-flight cache (or the
    /// private one), with retry x failover.
    Status fetch_kds();
    /// Pure compute: chain walk, report signature, measurement policy, TLS
    /// binding. Records the attested DomainState on success.
    Status verify();
    /// Batched alternative to verify(), split at the signature check.
    /// verify_prepare() runs the chain walk, key/signature decode and
    /// signed-body digest for THIS session and returns the triple a batch
    /// verifier needs; the caller checks the signature out of line —
    /// typically one crypto::ecdsa_verify_batch pass across many sessions
    /// — and hands the verdict to verify_finish(), which applies the same
    /// policy checks, verdict bookkeeping and state updates as verify().
    /// A failed verify_prepare() is terminal exactly like a failed
    /// verify(); statuses and audit records are identical either way.
    Result<sevsnp::PreparedReportVerify> verify_prepare();
    Status verify_finish(bool signature_ok);
    /// Monitored page fetch over the now-attested session.
    Result<net::HttpResponse> fetch_page(const std::string& path);

    const AttestationChecks& checks() const { return checks_; }
    const std::string& domain() const { return domain_; }

   private:
    friend class WebExtension;
    friend std::vector<Status> batch_verify_sessions(
        const std::vector<StagedAttestation*>& sessions);
    StagedAttestation(WebExtension& ext, std::string domain,
                      std::uint16_t port)
        : ext_(&ext), domain_(std::move(domain)), port_(port) {}

    enum class Stage : std::uint8_t {
      kHandshake,
      kEvidence,
      kKds,
      kVerify,
      kPage,
      kDone,
    };
    Status wrong_stage(const char* want) const;

    WebExtension* ext_;
    std::string domain_;
    std::uint16_t port_ = 0;
    Stage next_ = Stage::kHandshake;
    bool prepared_ = false;  // verify_prepare succeeded, awaiting finish
    net::Deadline deadline_;
    Bytes session_key_;
    AttestationChecks checks_;
    std::optional<EvidenceBundle> bundle_;
    std::optional<KdsService::VcekResponse> kds_;
    /// Audit digests precomputed by the batch verifier (8-way SHA-256 over
    /// equal-size evidence/chain encodings); note_verdict falls back to
    /// hashing inline when unset, so digests are identical either way.
    std::optional<crypto::Digest32> audit_evidence_digest_;
    std::optional<crypto::Digest32> audit_chain_digest_;
  };

  /// Starts a staged attestation pass against a registered site. The
  /// returned object borrows this extension and its browser; drive it one
  /// stage at a time (see StagedAttestation).
  StagedAttestation begin_session(const std::string& domain,
                                  std::uint16_t port) {
    return StagedAttestation(*this, domain, port);
  }

  const AttestationChecks* last_checks(const std::string& domain) const;

  /// Drops the attested state (e.g. the user clicked "re-verify").
  void invalidate(const std::string& domain);

  // --- stats (benchmarks read these) -----------------------------------
  std::uint64_t kds_fetches() const { return kds_fetches_; }
  std::uint64_t vcek_cache_hits() const { return vcek_cache_hits_; }
  std::uint64_t attestations_performed() const { return attestations_; }
  pki::ChainVerificationCache::Stats chain_cache_stats() const {
    return chain_cache_->stats();
  }

 private:
  struct DomainState {
    bool attested = false;
    Bytes attested_key;
    AttestationChecks checks;
  };

  /// Emits the "ext.attest" span + ext.attest.result.count counter around
  /// attest_impl, which holds the actual check sequence.
  Result<AttestationChecks> attest(const std::string& domain,
                                   std::uint16_t port,
                                   const Bytes& session_key,
                                   const net::Deadline& deadline);
  Result<AttestationChecks> attest_impl(const std::string& domain,
                                        std::uint16_t port,
                                        const Bytes& session_key,
                                        const net::Deadline& deadline);
  Result<KdsService::VcekResponse> fetch_vcek(const sevsnp::ChipId& chip,
                                              sevsnp::TcbVersion tcb,
                                              const net::Deadline& deadline);
  /// Shared stage bodies (blocking attest_impl and StagedAttestation both
  /// call these, so check order and side effects cannot drift apart).
  /// Fetches + parses the evidence and checks the REPORT_DATA binding;
  /// on failure `checks` carries the step and the optional is empty.
  std::optional<EvidenceBundle> stage_evidence(const std::string& domain,
                                               std::uint16_t port,
                                               const net::Deadline& deadline,
                                               AttestationChecks& checks);
  /// Fail-closed revocation gate (config_.revocation_set): true when no
  /// identity in the evidence is revoked (or no set is configured). Runs
  /// before any signature work on every verify path.
  bool check_revocation(const EvidenceBundle& bundle,
                        const KdsService::VcekResponse& kds,
                        AttestationChecks& checks);
  /// Fail-closed fleet TCB-horizon gate (config_.tcb_horizon): true when
  /// the report's TCB is acceptable for its chip at the current virtual
  /// instant (or no horizon set is configured). Runs next to the
  /// revocation gate, before any signature work, on every verify path.
  bool check_tcb_horizon(const EvidenceBundle& bundle,
                         AttestationChecks& checks);
  /// Chain/signature/measurement/TLS-binding checks; records the attested
  /// DomainState and returns true iff everything passed.
  bool stage_verify(const std::string& domain, const EvidenceBundle& bundle,
                    const KdsService::VcekResponse& kds,
                    const Bytes& session_key, AttestationChecks& checks);
  /// Maps a (split or blocking) report-verify Status onto the checks
  /// struct: chain failures vs report_verify failures, exactly as the
  /// blocking path has always classified them. True iff st is ok.
  static bool apply_verify_status(const Status& st,
                                  AttestationChecks& checks);
  /// Post-signature policy: measurement pin/registry, TLS binding, and the
  /// attested DomainState write. Shared by stage_verify and the batch
  /// path's verify_finish.
  bool verify_policy(const std::string& domain, const EvidenceBundle& bundle,
                     const Bytes& session_key, AttestationChecks& checks);
  /// Emits the ext.attest.result.count counter (shared by both paths).
  static void note_attest_result(const std::string& result);
  /// Terminal-verdict bookkeeping shared by both paths: a kVerdict flight
  /// event, and — when config_.audit_log is set — an AuditRecord built
  /// from whatever evidence the session got as far as gathering (`bundle`
  /// and `kds` may be null when the corresponding fetch never succeeded).
  /// The digest pointers let the batch path hand in evidence/chain hashes
  /// it computed 8 sessions at a time (Sha256x8); null = hash inline.
  void note_verdict(const AttestationChecks& checks,
                    const EvidenceBundle* bundle,
                    const KdsService::VcekResponse* kds, bool accepted,
                    const crypto::Digest32* evidence_digest = nullptr,
                    const crypto::Digest32* chain_digest = nullptr);

  Browser* browser_;
  WebExtensionConfig config_;
  /// KDS replica list (kds_address first, then mirrors), one breaker each.
  net::Failover kds_failover_;
  /// Seeded jitter source for retry backoff; deterministic per extension.
  crypto::HmacDrbg retry_jitter_;
  std::map<std::string, SiteRegistration> sites_;
  std::map<std::string, DomainState> state_;
  /// Memoizes the ARK -> ASK -> VCEK chain walk across attestations.
  std::unique_ptr<pki::ChainVerificationCache> chain_cache_;
  /// What report verification actually uses: config_.shared_chain_cache
  /// when provided, else chain_cache_.get().
  pki::ChainVerifier* chain_verifier_ = nullptr;
  std::map<std::pair<Bytes, std::uint64_t>, KdsService::VcekResponse>
      vcek_cache_;
  std::uint64_t kds_fetches_ = 0;
  std::uint64_t vcek_cache_hits_ = 0;
  std::uint64_t attestations_ = 0;
};

/// Runs the verify stage for many staged sessions — typically the whole
/// wavefront a SessionEngine batch dispatch hands over — in one pass:
/// per-session verify_prepare, ONE crypto::ecdsa_verify_batch over every
/// prepared signature (the per-signature offender fallback lives inside
/// it), audit evidence/chain digests hashed eight sessions at a time, then
/// per-session verify_finish. The returned statuses are slot-parallel with
/// `sessions` and identical to what each session's own verify() would have
/// produced; null entries are skipped and left as success.
std::vector<Status> batch_verify_sessions(
    const std::vector<WebExtension::StagedAttestation*>& sessions);

}  // namespace revelio::core

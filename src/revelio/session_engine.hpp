// Concurrent attestation gateway: the session engine.
//
// The paper evaluates one client attesting one Revelio VM; a deployment
// fronts *many* clients at once. SessionEngine drives N independent client
// sessions over a task-queue thread pool (common/parallel.hpp — each
// session is one dynamically-claimed task, so long sessions don't convoy),
// sharing exactly two pieces of state across them, both built for
// concurrency:
//
//  - a ShardedChainCache (pki/chain_cache.hpp): certificate-chain verdicts,
//    lock-striped so unrelated chains don't contend;
//  - a VcekCache (revelio/vcek_cache.hpp): VCEK chains from the KDS, with
//    single-flight so a cold cache costs ONE fetch no matter how many
//    sessions stampede it.
//
// Everything else is per-session. The simulation's core objects (Network,
// SimClock, TLS sessions) are single-threaded by design, so each session
// (or each lane) drives its own world replica; the engine's per-thread
// bindings keep the worlds from bleeding into each other:
//
//  - SimClock resolution is thread-local (common/sim_clock.hpp) — a worker
//    binds its world's clock with ScopedClockCurrent;
//  - each session gets its own Tracer bound via ScopedThreadTracer, so
//    interleaved sessions produce coherent, isolated traces;
//  - with isolate_obs, each session records into a private MetricsRegistry
//    that the engine folds into the process registry when the session ends
//    (obs/metrics.hpp merge_from — safe under concurrent session-end).
//
// The Report separates the two clocks: real_elapsed_ms is wall time of the
// whole run; the virtual-latency percentiles and the lane-model makespan
// come from the per-session virtual durations the session function
// reports, which are deterministic — benchmarks gate on them (see
// bench/bench_gateway.cpp).
// run_staged() is the event-driven successor to run(): sessions become
// explicit state machines over a deterministic virtual-time EventLoop
// (common/event_loop.hpp). One dispatched *stage* runs synchronously; the
// virtual time it consumes (network round trips, retry backoff, chaos
// timeouts) becomes the session's park interval, and the session costs a
// 40-byte heap event — not a blocked thread — until its wake. That is what
// lets one worker carry thousands of in-flight sessions (the 100k-session
// level in bench_gateway). Admission control bounds the in-flight gated
// stages (evidence/KDS fetches) with park-or-shed overload policy, all
// exported as gw.* metrics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "obs/trace.hpp"
#include "pki/chain_cache.hpp"
#include "revelio/vcek_cache.hpp"

namespace revelio::obs {
class AuditLog;  // obs/audit_log.hpp — engine links revelio_audit
}  // namespace revelio::obs

namespace revelio::core {

/// The session state machine driven by run_staged(). Stage order for a
/// full gateway session:
///
///   handshake -> evidence_fetch -> kds_fetch -> verify -> page_fetch
///     -> done | failed
///
/// The session function may skip stages (a monitored reconnect goes
/// handshake -> page_fetch) but may only move forward; kDone/kFailed are
/// terminal.
enum class SessionState : std::uint8_t {
  kHandshake,
  kEvidenceFetch,
  kKdsFetch,
  kVerify,
  kPageFetch,
  kDone,
  kFailed,
};

const char* to_string(SessionState state);
/// The SessionState overload above would otherwise hide the byte-level
/// to_string(ByteView) from the enclosing namespace for code inside core.
using revelio::to_string;

/// Per-session flight recorder policy for run_staged (obs/flight_recorder
/// .hpp). Every session continuously records its last `ring_events` engine
/// events; only anomalous sessions (failed, shed, or in the virtual-latency
/// tail at or beyond `tail_quantile`) dump their timeline into
/// StagedReport::anomaly_dumps. The rings' fixed memory cost is reported in
/// StagedReport::recorder_bytes and counted into engine_bytes, next to the
/// parked-session budget.
struct FlightRecorderConfig {
  bool enabled = false;
  std::size_t ring_events = 32;  // 16 bytes/event
  double tail_quantile = 0.99;
  /// Cap on dumped timelines per run (failures first, then tail sessions).
  std::size_t max_dumps = 128;
};

struct SessionEngineConfig {
  /// Worker lanes (0 = ThreadPool::default_thread_count()). Also the lane
  /// count of the virtual-time makespan model in Report.
  unsigned workers = 0;
  std::size_t chain_cache_shards = 8;
  std::size_t chain_cache_capacity_per_shard = 64;
  std::size_t vcek_cache_shards = 8;
  std::size_t vcek_cache_capacity_per_shard = 64;
  /// Give each session a private MetricsRegistry for its duration.
  bool isolate_obs = true;
  /// Fold each session's private registry into the process-wide one when
  /// the session ends (only meaningful with isolate_obs).
  bool merge_metrics = true;
  /// Enable each session's private tracer (spans cost nothing otherwise).
  bool trace_sessions = false;
  /// Per-session flight recorder (run_staged only).
  FlightRecorderConfig flight_recorder;
  /// Optional attestation audit chain. The engine appends a rejected
  /// verdict (failure_step "admission_shed") for every session shed by
  /// admission control — shed sessions never reach the web extension, yet
  /// the audit trail must still account for them. Stage functions append
  /// their own verdicts (see WebExtensionConfig::audit_log). Must outlive
  /// the run; appends are thread-safe.
  obs::AuditLog* audit_log = nullptr;
  /// Called on the driver thread at the top of every run_staged batch with
  /// the loop's current virtual time (µs). This is the deterministic
  /// injection point for fleet lifecycle operations — TCB updates,
  /// revocation pushes, certificate rotations — mid-soak: the hook runs
  /// before the batch's stages are dispatched, so every session dispatched
  /// at or after a lifecycle op's instant observes its effects
  /// (fleet::LifecycleEngine::hook() adapts to this signature). No stages
  /// are in flight while it runs.
  std::function<void(std::uint64_t now_us)> on_virtual_time;
};

/// What one session sees while it runs. The cache pointers are shared with
/// every other session and safe to use concurrently; everything a session
/// builds beyond them must be its own.
struct SessionContext {
  std::size_t index = 0;                     // session number in [0, N)
  pki::ChainVerifier* chain_cache = nullptr; // the engine's sharded cache
  VcekCache* vcek_cache = nullptr;           // the engine's VCEK cache
  /// The session's tracer (already bound to the thread; enabled iff
  /// trace_sessions). Read finished spans from it before returning — it
  /// dies with the session.
  obs::Tracer* tracer = nullptr;
  /// Out-parameter: the session's virtual duration, reported by the
  /// session function (e.g. the world clock's delta across the session).
  /// Feeds the Report's percentiles and makespan.
  double virt_ms = 0.0;
};

/// One client session: attest, fetch, verify — whatever the caller stages.
/// Runs on a pool lane; must only touch the shared caches through ctx and
/// its own per-session/per-lane state. A failed Status marks the session
/// failed in the Report; the engine itself never interprets the error.
using SessionFn = std::function<Status(SessionContext&)>;

/// What one *stage* of a staged session sees. Shared-cache rules are the
/// same as SessionContext; the tracer and (with isolate_obs) the metrics
/// registry are per-dispatch, merged into the process registry when the
/// stage returns.
struct StagedContext {
  std::size_t index = 0;                      // session number in [0, N)
  SessionState state = SessionState::kHandshake;  // the stage to run NOW
  pki::ChainVerifier* chain_cache = nullptr;
  VcekCache* vcek_cache = nullptr;
  obs::Tracer* tracer = nullptr;
  /// Virtual time the session has accumulated across earlier stages.
  double total_virt_ms = 0.0;

  /// Out: virtual duration of this stage (e.g. the world clock's delta
  /// across it). The engine parks the session for exactly this long before
  /// dispatching the returned state — the stage's I/O time IS the wake
  /// delay.
  double stage_virt_ms = 0.0;
  /// Out: why the session failed; read only when kFailed is returned.
  Status failure = Status::success();
};

/// Runs ctx.state and returns the NEXT state (kDone/kFailed to finish).
/// Called once per dispatch; must be safe to run concurrently with stages
/// of sessions on *other* tracks (sessions sharing a track never overlap).
using StagedSessionFn = std::function<SessionState(StagedContext&)>;

/// Maps a session to its event-loop track (= independence class; sessions
/// sharing a single-threaded world replica must share a track). Default:
/// every session its own track.
using TrackFn = std::function<std::size_t(std::size_t)>;

/// One session's slice of a batched stage dispatch. `ctx` carries exactly
/// what a per-session dispatch would see; the batch function fills
/// ctx.stage_virt_ms / ctx.failure and `next` for every item, as
/// StagedSessionFn would have.
struct StagedBatchItem {
  StagedContext ctx;
  SessionState next = SessionState::kFailed;
};

/// Runs one stage for a whole batch of sessions in a single pool task.
/// Items arrive in deterministic ready order. The function must be pure
/// compute plus shared-cache access — a batched stage cannot park
/// mid-stage, and the engine records zero I/O wait for it.
using StagedBatchFn = std::function<void(std::vector<StagedBatchItem>&)>;

/// Opt-in batched dispatch for ONE stage of run_staged. When every ready
/// session of a track group is parked at `stage`, the engine coalesces
/// those groups — across tracks — into a single pool task and hands them
/// to `fn` together instead of dispatching one stage per session. That is
/// what lets the verify stage amortize one multi-scalar ECDSA pass and one
/// multi-buffer hash walk over the whole wavefront. Track groups with any
/// session at a different stage keep per-session dispatch, so sessions
/// sharing a world replica still never run concurrently. Per-session
/// verdicts, audit records, and the transcript digest are bit-identical to
/// unbatched dispatch.
struct BatchStageConfig {
  SessionState stage = SessionState::kVerify;
  StagedBatchFn fn;           // empty = batching off
  /// Wavefronts smaller than this dispatch per-session (nothing to
  /// amortize).
  std::size_t min_batch = 2;
};

/// Backpressure for the two remote-fetch stages. A gated stage holds one
/// unit of its gate's capacity from dispatch until the session's next wake
/// (the park IS the in-flight fetch); a session arriving at a full gate is
/// parked in the gate's FIFO (kPark) or failed closed with
/// "gw.admission.shed" (kShed, or kPark with the FIFO at max_parked).
struct AdmissionConfig {
  /// Max in-flight evidence/BN fetches (0 = unlimited).
  std::size_t max_inflight_evidence = 0;
  /// Max in-flight KDS fetches (0 = unlimited).
  std::size_t max_inflight_kds = 0;
  enum class Overload { kPark, kShed };
  Overload on_overload = Overload::kPark;
  /// Park-queue bound per gate before shedding anyway (0 = unbounded).
  std::size_t max_parked = 0;
};

class SessionEngine {
 public:
  explicit SessionEngine(SessionEngineConfig config = {});

  struct Report {
    std::size_t sessions = 0;
    std::size_t succeeded = 0;
    std::size_t failed = 0;
    /// Per-session outcome, indexed by session number.
    std::vector<Status> outcomes;
    /// Per-session virtual duration as reported via ctx.virt_ms.
    std::vector<double> session_virt_ms;

    /// Wall-clock time of the whole run (not deterministic; not gated).
    double real_elapsed_ms = 0.0;
    double sessions_per_real_sec = 0.0;

    /// Deterministic virtual-time lane model: session i is charged to lane
    /// i % workers and lanes run in parallel, so the makespan is the
    /// heaviest lane's total. This is what "concurrency" means under a
    /// simulated clock — and what the gateway bench gates on.
    double virt_makespan_ms = 0.0;
    double sessions_per_virtual_sec = 0.0;
    double virt_p50_ms = 0.0;
    double virt_p95_ms = 0.0;
    double virt_p99_ms = 0.0;

    pki::ChainVerificationCache::Stats chain_stats;  // summed over shards
    VcekCache::Stats vcek_stats;
  };

  /// Runs `sessions` instances of `fn` over the pool and aggregates. Not
  /// re-entrant: one run() at a time per engine (the shared caches persist
  /// across runs; construct a fresh engine for cold-cache measurements).
  Report run(std::size_t sessions, const SessionFn& fn);

  struct StagedReport {
    std::size_t sessions = 0;
    std::size_t succeeded = 0;
    std::size_t failed = 0;  // includes shed
    std::size_t shed = 0;    // failed by admission control, never verified
    std::vector<Status> outcomes;
    std::vector<SessionState> final_states;
    std::vector<double> session_virt_ms;

    /// Wall-clock time of the whole run (not deterministic; not gated).
    double real_elapsed_ms = 0.0;
    double sessions_per_real_sec = 0.0;

    /// Virtual completion time of the last session — the event loop's last
    /// wake instant. Unlike run()'s lane model this is *measured* from the
    /// schedule, so overlap is real: N sessions of latency L that overlap
    /// perfectly finish at L, not N*L/workers.
    double virt_makespan_ms = 0.0;
    double sessions_per_virtual_sec = 0.0;
    double virt_p50_ms = 0.0;
    double virt_p95_ms = 0.0;
    double virt_p99_ms = 0.0;
    /// Split of total session virtual time into I/O waits (reported by
    /// net/resilience via note_virtual_wait) vs everything else.
    double wait_virt_ms = 0.0;
    double service_virt_ms = 0.0;

    // Event-loop shape.
    std::uint64_t events_dispatched = 0;
    std::uint64_t batches = 0;
    std::size_t max_batch = 0;
    /// High-water parked population (loop events + gate FIFOs) — the
    /// sessions simultaneously in flight without holding a thread.
    std::size_t peak_parked = 0;
    double parked_per_worker = 0.0;

    // Admission control.
    std::size_t peak_inflight_evidence = 0;
    std::size_t peak_inflight_kds = 0;
    std::size_t peak_queue_depth = 0;  // both gate FIFOs, summed
    /// p99 of time spent parked in a gate FIFO before capacity freed.
    double wake_p99_ms = 0.0;

    /// Engine-owned bytes per session in flight: session cells + the event
    /// heap + gate FIFO slots at their peaks. Flat in session count by
    /// construction; the bench gates on it.
    std::size_t engine_bytes = 0;
    double bytes_per_parked_session = 0.0;

    /// SHA-256 (hex) over every session's (index, final state, outcome
    /// code, virtual duration) — same seed, same digest, bit for bit.
    std::string transcript_digest;

    /// Per-stage tail-latency attribution: virtual time split into I/O
    /// wait vs service, with log-bucket quantiles (obs::Summary), one row
    /// per stage that ran at least once, in state-machine order. Also
    /// exported into the process registry as summaries
    /// gw.stage.{wait,service}.ms{stage=...}.
    struct StageBreakdown {
      SessionState stage = SessionState::kHandshake;
      std::uint64_t count = 0;  // dispatches of this stage
      double wait_p50_ms = 0.0;
      double wait_p99_ms = 0.0;
      double service_p50_ms = 0.0;
      double service_p99_ms = 0.0;
      double wait_total_ms = 0.0;
      double service_total_ms = 0.0;
      /// Measured wall-clock compute of the stage's dispatches — the cost
      /// the virtual clock cannot see (verify is pure compute and has zero
      /// virtual time). Batched dispatches attribute their batch's wall
      /// time evenly across members. Not deterministic; the batching gate
      /// in bench_gateway compares it batched-vs-unbatched within one run.
      double real_p50_ms = 0.0;
      double real_p99_ms = 0.0;
      double real_total_ms = 0.0;
      /// Dispatches of this stage that went through the batch hook.
      std::uint64_t batched = 0;
    };
    std::vector<StageBreakdown> stage_breakdown;

    /// Batch-hook shape: invocations of the batch fn and the largest
    /// wavefront it received (0 when no hook is installed).
    std::uint64_t batch_calls = 0;
    std::size_t max_stage_batch = 0;

    /// Flight-recorder anomaly dumps (JSON, one per anomalous session —
    /// failed/shed first, then the >= tail_quantile latency tail), capped
    /// at FlightRecorderConfig::max_dumps. Empty when the recorder is off.
    std::vector<std::string> anomaly_dumps;
    /// Fixed ring cost of all session recorders (0 when off); also
    /// included in engine_bytes.
    std::size_t recorder_bytes = 0;

    pki::ChainVerificationCache::Stats chain_stats;
    VcekCache::Stats vcek_stats;
  };

  /// Event-driven run: every session starts at virtual t=0 in kHandshake;
  /// ready stages are dispatched over the pool in deterministic batches
  /// (grouped by track — see TrackFn) and parked between stages on the
  /// event loop. Deterministic for fixed (sessions, fn behavior, admission,
  /// track, workers) — the transcript digest is the proof. Same
  /// re-entrancy rule as run().
  StagedReport run_staged(std::size_t sessions, const StagedSessionFn& fn,
                          const AdmissionConfig& admission = {},
                          const TrackFn& track = {},
                          const BatchStageConfig& batching = {});

  /// Lanes the engine schedules on (== the makespan model's lane count).
  unsigned workers() const;

  pki::ShardedChainCache& chain_cache() { return chain_cache_; }
  VcekCache& vcek_cache() { return vcek_cache_; }

 private:
  SessionEngineConfig config_;
  pki::ShardedChainCache chain_cache_;
  VcekCache vcek_cache_;
};

}  // namespace revelio::core

// Concurrent attestation gateway: the session engine.
//
// The paper evaluates one client attesting one Revelio VM; a deployment
// fronts *many* clients at once. SessionEngine drives N independent client
// sessions over a task-queue thread pool (common/parallel.hpp — each
// session is one dynamically-claimed task, so long sessions don't convoy),
// sharing exactly two pieces of state across them, both built for
// concurrency:
//
//  - a ShardedChainCache (pki/chain_cache.hpp): certificate-chain verdicts,
//    lock-striped so unrelated chains don't contend;
//  - a VcekCache (revelio/vcek_cache.hpp): VCEK chains from the KDS, with
//    single-flight so a cold cache costs ONE fetch no matter how many
//    sessions stampede it.
//
// Everything else is per-session. The simulation's core objects (Network,
// SimClock, TLS sessions) are single-threaded by design, so each session
// (or each lane) drives its own world replica; the engine's per-thread
// bindings keep the worlds from bleeding into each other:
//
//  - SimClock resolution is thread-local (common/sim_clock.hpp) — a worker
//    binds its world's clock with ScopedClockCurrent;
//  - each session gets its own Tracer bound via ScopedThreadTracer, so
//    interleaved sessions produce coherent, isolated traces;
//  - with isolate_obs, each session records into a private MetricsRegistry
//    that the engine folds into the process registry when the session ends
//    (obs/metrics.hpp merge_from — safe under concurrent session-end).
//
// The Report separates the two clocks: real_elapsed_ms is wall time of the
// whole run; the virtual-latency percentiles and the lane-model makespan
// come from the per-session virtual durations the session function
// reports, which are deterministic — benchmarks gate on them (see
// bench/bench_gateway.cpp).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/result.hpp"
#include "obs/trace.hpp"
#include "pki/chain_cache.hpp"
#include "revelio/vcek_cache.hpp"

namespace revelio::core {

struct SessionEngineConfig {
  /// Worker lanes (0 = ThreadPool::default_thread_count()). Also the lane
  /// count of the virtual-time makespan model in Report.
  unsigned workers = 0;
  std::size_t chain_cache_shards = 8;
  std::size_t chain_cache_capacity_per_shard = 64;
  std::size_t vcek_cache_shards = 8;
  std::size_t vcek_cache_capacity_per_shard = 64;
  /// Give each session a private MetricsRegistry for its duration.
  bool isolate_obs = true;
  /// Fold each session's private registry into the process-wide one when
  /// the session ends (only meaningful with isolate_obs).
  bool merge_metrics = true;
  /// Enable each session's private tracer (spans cost nothing otherwise).
  bool trace_sessions = false;
};

/// What one session sees while it runs. The cache pointers are shared with
/// every other session and safe to use concurrently; everything a session
/// builds beyond them must be its own.
struct SessionContext {
  std::size_t index = 0;                     // session number in [0, N)
  pki::ChainVerifier* chain_cache = nullptr; // the engine's sharded cache
  VcekCache* vcek_cache = nullptr;           // the engine's VCEK cache
  /// The session's tracer (already bound to the thread; enabled iff
  /// trace_sessions). Read finished spans from it before returning — it
  /// dies with the session.
  obs::Tracer* tracer = nullptr;
  /// Out-parameter: the session's virtual duration, reported by the
  /// session function (e.g. the world clock's delta across the session).
  /// Feeds the Report's percentiles and makespan.
  double virt_ms = 0.0;
};

/// One client session: attest, fetch, verify — whatever the caller stages.
/// Runs on a pool lane; must only touch the shared caches through ctx and
/// its own per-session/per-lane state. A failed Status marks the session
/// failed in the Report; the engine itself never interprets the error.
using SessionFn = std::function<Status(SessionContext&)>;

class SessionEngine {
 public:
  explicit SessionEngine(SessionEngineConfig config = {});

  struct Report {
    std::size_t sessions = 0;
    std::size_t succeeded = 0;
    std::size_t failed = 0;
    /// Per-session outcome, indexed by session number.
    std::vector<Status> outcomes;
    /// Per-session virtual duration as reported via ctx.virt_ms.
    std::vector<double> session_virt_ms;

    /// Wall-clock time of the whole run (not deterministic; not gated).
    double real_elapsed_ms = 0.0;
    double sessions_per_real_sec = 0.0;

    /// Deterministic virtual-time lane model: session i is charged to lane
    /// i % workers and lanes run in parallel, so the makespan is the
    /// heaviest lane's total. This is what "concurrency" means under a
    /// simulated clock — and what the gateway bench gates on.
    double virt_makespan_ms = 0.0;
    double sessions_per_virtual_sec = 0.0;
    double virt_p50_ms = 0.0;
    double virt_p95_ms = 0.0;
    double virt_p99_ms = 0.0;

    pki::ChainVerificationCache::Stats chain_stats;  // summed over shards
    VcekCache::Stats vcek_stats;
  };

  /// Runs `sessions` instances of `fn` over the pool and aggregates. Not
  /// re-entrant: one run() at a time per engine (the shared caches persist
  /// across runs; construct a fresh engine for cold-cache measurements).
  Report run(std::size_t sessions, const SessionFn& fn);

  /// Lanes the engine schedules on (== the makespan model's lane count).
  unsigned workers() const;

  pki::ShardedChainCache& chain_cache() { return chain_cache_; }
  VcekCache& vcek_cache() { return vcek_cache_; }

 private:
  SessionEngineConfig config_;
  pki::ShardedChainCache chain_cache_;
  VcekCache vcek_cache_;
};

}  // namespace revelio::core

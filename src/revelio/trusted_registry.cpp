#include "revelio/trusted_registry.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace revelio::core {

void TrustedRegistry::publish(const std::string& service,
                              const sevsnp::Measurement& measurement) {
  good_.insert({service, measurement.bytes()});
}

void TrustedRegistry::revoke(const std::string& service,
                             const sevsnp::Measurement& measurement) {
  revoked_.insert({service, measurement.bytes()});
  good_.erase({service, measurement.bytes()});
}

std::vector<sevsnp::Measurement> TrustedRegistry::good_measurements(
    const std::string& service) const {
  std::vector<sevsnp::Measurement> out;
  for (const auto& [svc, bytes] : good_) {
    if (svc == service) out.push_back(sevsnp::Measurement::from(bytes));
  }
  return out;
}

bool TrustedRegistry::is_revoked(const std::string& service,
                                 const sevsnp::Measurement& m) const {
  return revoked_.count({service, m.bytes()}) > 0;
}

bool TrustedRegistry::is_acceptable(const std::string& service,
                                    const sevsnp::Measurement& m) const {
  obs::Span span("registry.lookup");
  span.attr("service", service);
  const char* result = nullptr;
  bool acceptable = false;
  if (is_revoked(service, m)) {
    result = "revoked";
  } else if (good_.count({service, m.bytes()}) > 0) {
    result = "acceptable";
    acceptable = true;
  } else {
    result = "unknown";
  }
  span.attr("result", result);
  obs::metrics().counter("registry.lookup.count", {{"result", result}}).inc();
  return acceptable;
}

void TrustedRegistry::register_voter(const std::string& voter) {
  voters_.insert(voter);
}

std::uint64_t TrustedRegistry::propose(const std::string& service,
                                       const sevsnp::Measurement& m) {
  const std::uint64_t id = next_proposal_++;
  Proposal proposal;
  proposal.service = service;
  proposal.measurement = m;
  proposals_[id] = std::move(proposal);
  return id;
}

Status TrustedRegistry::vote(std::uint64_t proposal_id,
                             const std::string& voter, bool approve) {
  const auto it = proposals_.find(proposal_id);
  if (it == proposals_.end()) {
    return Error::make("registry.no_such_proposal");
  }
  if (voters_.count(voter) == 0) {
    return Error::make("registry.not_a_voter", voter);
  }
  Proposal& proposal = it->second;
  if (proposal.adopted || proposal.rejected) {
    return Error::make("registry.proposal_closed");
  }
  if (proposal.yes.count(voter) || proposal.no.count(voter)) {
    return Error::make("registry.already_voted", voter);
  }
  (approve ? proposal.yes : proposal.no).insert(voter);

  const std::size_t quorum = voters_.size() / 2 + 1;
  if (proposal.yes.size() >= quorum) {
    proposal.adopted = true;
    publish(proposal.service, proposal.measurement);
  } else if (proposal.no.size() >= quorum) {
    proposal.rejected = true;
  }
  return Status::success();
}

Result<TrustedRegistry::Proposal> TrustedRegistry::proposal(
    std::uint64_t id) const {
  const auto it = proposals_.find(id);
  if (it == proposals_.end()) {
    return Error::make("registry.no_such_proposal");
  }
  return it->second;
}

}  // namespace revelio::core

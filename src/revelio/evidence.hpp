// Attestation evidence bundles and the KDS network frontend.
//
// An EvidenceBundle is what a Revelio VM exposes at its well-known URL and
// what nodes exchange during mutual attestation: the SNP report plus the
// payload (public key or CSR) whose hash is bound into REPORT_DATA.
// KdsService puts the AMD Key Distribution Server on the simulated network
// so verifiers pay a realistic round trip for VCEK fetches (Table 3).
#pragma once

#include "net/network.hpp"
#include "pki/cert.hpp"
#include "sevsnp/kds.hpp"

namespace revelio::core {

/// Report + the REPORT_DATA preimage it endorses.
struct EvidenceBundle {
  sevsnp::AttestationReport report;
  Bytes payload;  // public key (SEC1) or serialized CSR

  /// REPORT_DATA layout: sha256(payload) in bytes 0..31, zero elsewhere.
  static sevsnp::ReportData bind(ByteView payload);

  /// Checks that report.report_data matches `payload`.
  bool binding_ok() const;

  Bytes serialize() const;
  static Result<EvidenceBundle> parse(ByteView data);
};

/// Serves VCEK certificates and the ARK/ASK chain over the network, as
/// https://kdsintf.amd.com does. Responses are certificates — signed data —
/// so the transport needs no additional protection.
class KdsService {
 public:
  KdsService(sevsnp::KeyDistributionServer& kds, net::Network& network,
             net::Address address);

  const net::Address& address() const { return address_; }

  /// Client helper: fetch (vcek, ask, ark) for a report's chip over the
  /// network. `from` is the caller's address (latency accounting).
  struct VcekResponse {
    pki::Certificate vcek;
    pki::Certificate ask;
    pki::Certificate ark;
  };
  static Result<VcekResponse> fetch(net::Network& network,
                                    const net::Address& from,
                                    const net::Address& kds_address,
                                    const sevsnp::ChipId& chip_id,
                                    sevsnp::TcbVersion tcb);

 private:
  Bytes handle(ByteView request);

  sevsnp::KeyDistributionServer* kds_;
  net::Address address_;
};

}  // namespace revelio::core

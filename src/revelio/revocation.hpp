// Revocation set consulted fail-closed in the attestation verify stage.
//
// The paper's fleet-lifecycle story (ROADMAP item 3) needs a way to kill
// trust *after* the fact: a launch measurement whose image turned out to
// be exploitable, a chip whose endorsement key leaked, a VCEK certificate
// AMD revoked. This set holds all three kinds, keyed by their canonical
// binary identity:
//
//   measurement  48-byte launch digest
//   chip         64-byte CHIP_ID
//   vcek         32-byte certificate fingerprint (sha256 over the DER)
//
// The verify stage checks the set *before* any signature work: a revoked
// identity is rejected no matter how valid its evidence is, and the
// rejection is audited with failure_step "revocation".
//
// Persistence: open() backs the set with the durable KV tier so
// revocations outlive a gateway restart — forgetting a revocation on
// reboot would be a fail-open. Entries live under "revoked/<kind>/<id>"
// with the human-readable reason as the value; open() fails closed on any
// malformed persisted entry rather than silently skipping it.
//
// Thread-safe: checks take a mutex; the set is read-mostly and far off
// the crypto hot path.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/sha2.hpp"
#include "sevsnp/attestation_report.hpp"
#include "store/kv_store.hpp"

namespace revelio {

class RevocationSet {
 public:
  /// In-memory set (tests, ephemeral gateways).
  RevocationSet() = default;

  /// Store-backed set: loads every persisted entry and writes new
  /// revocations through. Fails closed ("revocation.corrupt") if any
  /// persisted entry is malformed. The store must outlive the set.
  static Result<std::unique_ptr<RevocationSet>> open(store::KvStore& kv);

  /// Revocations return an error when the durable write fails — but the
  /// entry is ALWAYS active in memory from this call on (revoking more
  /// than asked is safe; forgetting a revocation is not).
  Status revoke_measurement(const sevsnp::Measurement& measurement,
                            const std::string& reason = {});
  Status revoke_chip(const sevsnp::ChipId& chip,
                     const std::string& reason = {});
  Status revoke_vcek(const crypto::Digest32& cert_fingerprint,
                     const std::string& reason = {});

  bool is_measurement_revoked(const sevsnp::Measurement& measurement) const;
  bool is_chip_revoked(const sevsnp::ChipId& chip) const;
  bool is_vcek_revoked(const crypto::Digest32& cert_fingerprint) const;

  struct Stats {
    std::uint64_t entries = 0;
    std::uint64_t checks = 0;  // is_*_revoked calls
    std::uint64_t hits = 0;    // checks that found a revocation
  };
  Stats stats() const;
  std::size_t size() const;

 private:
  Status revoke(char kind, ByteView id, const std::string& reason);
  bool is_revoked(char kind, ByteView id) const;

  mutable std::mutex mu_;
  std::set<Bytes> entries_;  // kind byte || id bytes
  store::KvStore* kv_ = nullptr;
  mutable std::uint64_t checks_ = 0;
  mutable std::uint64_t hits_ = 0;
};

}  // namespace revelio

// Mutually-attested secure channel between two Revelio VMs.
//
// §5.2.2: the per-VM identity key pair "will either be the TLS identity …
// or it can be used for secure data exchange between VMs after a mutual
// attestation has taken place". This implements that second use: both
// sides exchange identity evidence bundles, verify each other's report
// (chain, signature, REPORT_DATA binding, measurement), then run a
// signed ECDH over the attested identity keys to derive AEAD session keys.
// The resulting channel carries arbitrary application payloads between
// enclaves — replication traffic, state hand-off, etc.
#pragma once

#include "crypto/modes.hpp"
#include "revelio/evidence.hpp"

namespace revelio::core {

/// The policy both endpoints enforce on each other.
struct PeerPolicy {
  std::vector<sevsnp::Measurement> trusted_measurements;
  std::optional<sevsnp::TcbVersion> minimum_tcb;
};

/// One endpoint's long-lived channel identity: the VM identity key plus
/// its evidence bundle (as produced by RevelioVm at first boot).
struct ChannelIdentity {
  crypto::EcKeyPair key;        // P-256 identity key
  EvidenceBundle evidence;      // report binding sha256(public key)
};

/// Handshake message: evidence + ephemeral key + signature over transcript.
struct ChannelHello {
  Bytes evidence;       // serialized EvidenceBundle
  Bytes ephemeral_pub;  // SEC1 P-256
  Bytes signature;      // by the identity key over the transcript

  Bytes serialize() const;
  static Result<ChannelHello> parse(ByteView data);
};

/// An established, mutually-attested session.
class SecureChannel {
 public:
  /// Initiator side: builds the opening hello.
  static ChannelHello initiate(const ChannelIdentity& self,
                               crypto::HmacDrbg& entropy, Bytes& state_out);

  /// Responder side: verifies the initiator, answers, and establishes.
  static Result<std::pair<ChannelHello, SecureChannel>> respond(
      const ChannelIdentity& self, const PeerPolicy& policy,
      const ChannelHello& initiator_hello,
      const KdsService::VcekResponse& initiator_kds,
      crypto::HmacDrbg& entropy, std::uint64_t now_us);

  /// Initiator side: verifies the responder and establishes.
  static Result<SecureChannel> complete(
      const ChannelIdentity& self, const PeerPolicy& policy,
      ByteView initiator_state, const ChannelHello& responder_hello,
      const KdsService::VcekResponse& responder_kds, std::uint64_t now_us);

  /// Seals a payload to the peer (sequence-numbered, replay-safe).
  Bytes send(ByteView plaintext);

  /// Opens a payload from the peer.
  Result<Bytes> receive(ByteView sealed);

  /// The peer's verified launch measurement (for application policy).
  const sevsnp::Measurement& peer_measurement() const {
    return peer_measurement_;
  }

 private:
  SecureChannel(Bytes send_key, Bytes recv_key,
                sevsnp::Measurement peer_measurement);

  crypto::AeadCtrHmac send_aead_;
  crypto::AeadCtrHmac recv_aead_;
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;
  sevsnp::Measurement peer_measurement_;
};

/// Shared verification: evidence bundle + KDS chain + policy. Exposed for
/// reuse and tests.
Status verify_channel_peer(const EvidenceBundle& bundle,
                           const KdsService::VcekResponse& kds,
                           const PeerPolicy& policy, std::uint64_t now_us);

}  // namespace revelio::core

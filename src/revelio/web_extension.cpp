#include "revelio/web_extension.hpp"

#include "crypto/ecdsa.hpp"
#include "crypto/sha2.hpp"
#include "fleet/tcb_horizon.hpp"
#include "obs/audit_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "revelio/revocation.hpp"

namespace revelio::core {

Browser::Browser(net::Network& network, std::string client_host,
                 std::vector<pki::Certificate> trust_roots,
                 crypto::HmacDrbg entropy)
    : network_(&network),
      client_host_(std::move(client_host)),
      trust_roots_(std::move(trust_roots)),
      entropy_(std::move(entropy)),
      chain_cache_(std::make_unique<pki::ChainVerificationCache>()) {}

Result<net::TlsSession*> Browser::session_for(const std::string& domain,
                                              std::uint16_t port,
                                              bool& created) {
  created = false;
  const auto it = sessions_.find(domain);
  if (it != sessions_.end()) return &it->second;

  auto address = network_->resolve(domain, port);
  if (!address.ok()) return address.error();

  net::TlsTrustConfig trust;
  trust.roots = trust_roots_;
  trust.server_name = domain;
  trust.now_us = network_->clock().now_us();
  trust.chain_cache = external_chain_cache_ != nullptr ? external_chain_cache_
                                                       : chain_cache_.get();
  auto session = net::TlsSession::connect(
      *network_, {client_host_, next_port_++}, *address, trust, entropy_);
  if (!session.ok()) return session.error();
  created = true;
  const auto [inserted, is_new] = sessions_.emplace(domain, std::move(*session));
  (void)is_new;
  return &inserted->second;
}

Result<Browser::FetchResult> Browser::fetch(const std::string& domain,
                                            std::uint16_t port,
                                            const net::HttpRequest& request) {
  bool created = false;
  auto session = session_for(domain, port, created);
  if (!session.ok()) return session.error();

  auto raw = (*session)->request(request.serialize());
  if (!raw.ok()) {
    // Session reset or record failure: reconnect once, as browsers do.
    sessions_.erase(domain);
    auto fresh = session_for(domain, port, created);
    if (!fresh.ok()) return fresh.error();
    session = fresh;
    raw = (*session)->request(request.serialize());
    if (!raw.ok()) return raw.error();
  }
  auto response = net::HttpResponse::parse(*raw);
  if (!response.ok()) return response.error();
  return FetchResult{std::move(*response), (*session)->server_public_key(),
                     created};
}

Result<Browser::FetchResult> Browser::get(const std::string& domain,
                                          std::uint16_t port,
                                          const std::string& path) {
  net::HttpRequest request;
  request.method = "GET";
  request.path = path;
  request.host = domain;
  return fetch(domain, port, request);
}

Result<Bytes> Browser::connect(const std::string& domain,
                               std::uint16_t port) {
  bool created = false;
  auto session = session_for(domain, port, created);
  if (!session.ok()) return session.error();
  return (*session)->server_public_key();
}

void Browser::drop_session(const std::string& domain) {
  sessions_.erase(domain);
}

namespace {
std::vector<net::Address> kds_replicas(const WebExtensionConfig& config) {
  std::vector<net::Address> replicas{config.kds_address};
  replicas.insert(replicas.end(), config.kds_mirrors.begin(),
                  config.kds_mirrors.end());
  return replicas;
}
}  // namespace

WebExtension::WebExtension(Browser& browser, WebExtensionConfig config)
    : browser_(&browser),
      config_(std::move(config)),
      kds_failover_(kds_replicas(config_), config_.kds_breaker, "kds"),
      retry_jitter_(to_bytes("ext-retry-jitter"), to_bytes(browser.host())),
      chain_cache_(std::make_unique<pki::ChainVerificationCache>()),
      chain_verifier_(config_.shared_chain_cache != nullptr
                          ? config_.shared_chain_cache
                          : static_cast<pki::ChainVerifier*>(
                                chain_cache_.get())) {}

void WebExtension::register_site(const std::string& domain,
                                 SiteRegistration site) {
  sites_[domain] = std::move(site);
  state_.erase(domain);
}

void WebExtension::invalidate(const std::string& domain) {
  state_.erase(domain);
}

const AttestationChecks* WebExtension::last_checks(
    const std::string& domain) const {
  const auto it = state_.find(domain);
  return it == state_.end() ? nullptr : &it->second.checks;
}

Result<bool> WebExtension::discover(const std::string& domain,
                                    std::uint16_t port) {
  auto result = browser_->get(domain, port, "/.well-known/revelio-attestation");
  if (!result.ok()) return result.error();
  if (result->response.status != 200) return false;
  return EvidenceBundle::parse(result->response.body).ok();
}

Result<KdsService::VcekResponse> WebExtension::fetch_vcek(
    const sevsnp::ChipId& chip, sevsnp::TcbVersion tcb,
    const net::Deadline& deadline) {
  if (config_.shared_vcek_cache != nullptr) {
    // Gateway mode: hit the shared cache; on a miss, this extension's own
    // resilience stack (retry x failover, breakers) becomes the
    // single-flight leader's fetch — concurrent sessions missing on the
    // same (chip, tcb) wait for it instead of stampeding the KDS.
    bool fetched = false;  // did THIS call run the leader fetch?
    auto result = config_.shared_vcek_cache->get_or_fetch(chip, tcb, [&] {
      fetched = true;
      obs::Span span("ext.kds_fetch");
      ++kds_fetches_;
      obs::metrics().counter("ext.kds_fetch.count").inc();
      SimClock& clock = browser_->network().clock();
      auto response = net::with_retries(
          clock, retry_jitter_, config_.retry, deadline, "ext.kds_fetch", [&] {
            return kds_failover_.execute(clock, [&](const net::Address& kds) {
              return KdsService::fetch(browser_->network(),
                                       {browser_->host(), 39999}, kds, chip,
                                       tcb);
            });
          });
      span.attr("result", response.ok() ? "ok" : response.error().code);
      return response;
    });
    // Single-flight followers land on the hit side: they paid a wait, not
    // a fetch — the flight timeline should say so.
    obs::flight_record(fetched ? obs::FlightEventType::kCacheMiss
                               : obs::FlightEventType::kCacheHit,
                       /*arg=*/1);
    return result;
  }

  const auto key = std::make_pair(chip.bytes(), tcb.encode());
  if (config_.cache_vcek) {
    const auto it = vcek_cache_.find(key);
    if (it != vcek_cache_.end()) {
      ++vcek_cache_hits_;
      obs::metrics().counter("ext.vcek_cache.hit.count").inc();
      obs::flight_record(obs::FlightEventType::kCacheHit, /*arg=*/1);
      return it->second;
    }
  }
  obs::flight_record(obs::FlightEventType::kCacheMiss, /*arg=*/1);
  obs::Span span("ext.kds_fetch");
  ++kds_fetches_;
  obs::metrics().counter("ext.kds_fetch.count").inc();
  SimClock& clock = browser_->network().clock();
  // Retry wraps failover: each attempt sweeps the replica list (skipping
  // open breakers), and the backoff between attempts is what lets an open
  // breaker reach its half-open probe window.
  auto response = net::with_retries(
      clock, retry_jitter_, config_.retry, deadline, "ext.kds_fetch", [&] {
        return kds_failover_.execute(clock, [&](const net::Address& kds) {
          return KdsService::fetch(browser_->network(),
                                   {browser_->host(), 39999}, kds, chip, tcb);
        });
      });
  span.attr("result", response.ok() ? "ok" : response.error().code);
  if (!response.ok()) return response.error();
  if (config_.cache_vcek) vcek_cache_[key] = *response;
  return response;
}

Result<AttestationChecks> WebExtension::attest(const std::string& domain,
                                               std::uint16_t port,
                                               const Bytes& session_key,
                                               const net::Deadline& deadline) {
  obs::Span span("ext.attest");
  span.attr("domain", domain);
  auto checks = attest_impl(domain, port, session_key, deadline);
  const std::string result =
      !checks.ok() ? checks.error().code
                   : (checks->all_ok() ? "ok" : checks->failure_step);
  span.attr("result", result);
  note_attest_result(result);
  return checks;
}

void WebExtension::note_attest_result(const std::string& result) {
  obs::metrics()
      .counter("ext.attest.result.count", {{"result", result}})
      .inc();
}

void WebExtension::note_verdict(const AttestationChecks& checks,
                                const EvidenceBundle* bundle,
                                const KdsService::VcekResponse* kds,
                                bool accepted,
                                const crypto::Digest32* evidence_digest,
                                const crypto::Digest32* chain_digest) {
  obs::flight_record(obs::FlightEventType::kVerdict, accepted ? 1 : 0);
  if (config_.audit_log == nullptr) return;
  obs::AuditRecord rec;
  rec.session = config_.audit_session_id;
  rec.virt_us = browser_->network().clock().now_us();
  rec.accepted = accepted;
  rec.failure_step = checks.failure_step;
  if (checks.evidence_fetched) rec.checks |= obs::AuditRecord::kEvidenceFetched;
  if (checks.binding_ok) rec.checks |= obs::AuditRecord::kBindingOk;
  if (checks.chain_ok) rec.checks |= obs::AuditRecord::kChainOk;
  if (checks.signature_ok) rec.checks |= obs::AuditRecord::kSignatureOk;
  if (checks.measurement_ok) rec.checks |= obs::AuditRecord::kMeasurementOk;
  if (checks.tls_binding_ok) rec.checks |= obs::AuditRecord::kTlsBindingOk;
  if (bundle != nullptr) {
    // What the verdict was based on: the exact evidence bytes and the
    // claimed launch measurement / TCB inside them.
    rec.measurement = bundle->report.measurement;
    rec.tcb = bundle->report.reported_tcb.encode();
    rec.evidence_digest = evidence_digest != nullptr
                              ? *evidence_digest
                              : crypto::sha256(bundle->serialize());
  }
  if (kds != nullptr) {
    // One digest binding all three certificates the chain walk consumed.
    if (chain_digest != nullptr) {
      rec.vcek_chain = *chain_digest;
    } else {
      Bytes chain_der;
      append(chain_der, kds->vcek.serialize());
      append(chain_der, kds->ask.serialize());
      append(chain_der, kds->ark.serialize());
      rec.vcek_chain = crypto::sha256(chain_der);
    }
  }
  config_.audit_log->append(rec);
}

std::optional<EvidenceBundle> WebExtension::stage_evidence(
    const std::string& domain, std::uint16_t port,
    const net::Deadline& deadline, AttestationChecks& checks) {
  ++attestations_;

  // 1. Fetch the evidence from the well-known URL over the same session.
  obs::Span evidence_span("ext.evidence_fetch");
  SimClock& clock = browser_->network().clock();
  auto evidence_response = net::with_retries(
      clock, retry_jitter_, config_.retry, deadline, "ext.evidence_fetch",
      [&] {
        return browser_->get(domain, port, "/.well-known/revelio-attestation");
      });
  if (!evidence_response.ok() || evidence_response->response.status != 200) {
    evidence_span.attr("result", "fetch_failed");
    checks.failure = "evidence fetch failed";
    checks.failure_step = "evidence_fetch";
    return std::nullopt;
  }
  auto bundle = EvidenceBundle::parse(evidence_response->response.body);
  if (!bundle.ok()) {
    evidence_span.attr("result", "unparseable");
    checks.failure = "evidence unparseable";
    checks.failure_step = "evidence_parse";
    return std::nullopt;
  }
  evidence_span.attr("result", "ok");
  evidence_span.end();
  checks.evidence_fetched = true;

  // 2. REPORT_DATA must cover the served payload (the VM's identity key).
  if (!bundle->binding_ok()) {
    checks.failure = "REPORT_DATA does not cover the payload";
    checks.failure_step = "binding";
    return std::nullopt;
  }
  checks.binding_ok = true;
  return *bundle;
}

Result<AttestationChecks> WebExtension::attest_impl(
    const std::string& domain, std::uint16_t port, const Bytes& session_key,
    const net::Deadline& deadline) {
  AttestationChecks checks;

  // Stages 1-2: evidence fetch + parse + REPORT_DATA binding.
  auto bundle = stage_evidence(domain, port, deadline, checks);
  if (!bundle.has_value()) {
    note_verdict(checks, nullptr, nullptr, false);
    return checks;
  }

  // 3. VCEK chain from the AMD KDS (cached across sessions).
  auto kds = fetch_vcek(bundle->report.chip_id, bundle->report.reported_tcb,
                        deadline);
  if (!kds.ok()) {
    checks.failure = "VCEK fetch failed: " + kds.error().to_string();
    checks.failure_step = "kds_fetch";
    note_verdict(checks, &*bundle, nullptr, false);
    return checks;
  }

  // Stages 4-5: verification, measurement policy, TLS binding.
  const bool ok = stage_verify(domain, *bundle, *kds, session_key, checks);
  note_verdict(checks, &*bundle, &*kds, ok);
  return checks;
}

bool WebExtension::apply_verify_status(const Status& st,
                                       AttestationChecks& checks) {
  if (!st.ok()) {
    // Distinguish chain failures from signature failures for the UI.
    if (st.error().code == "snp.vcek_chain_invalid") {
      checks.failure = st.error().to_string();
      checks.failure_step = "chain";
      return false;
    }
    checks.chain_ok = true;
    checks.failure = st.error().to_string();
    checks.failure_step = "report_verify";
    return false;
  }
  checks.chain_ok = true;
  checks.signature_ok = true;
  return true;
}

bool WebExtension::verify_policy(const std::string& domain,
                                 const EvidenceBundle& bundle,
                                 const Bytes& session_key,
                                 AttestationChecks& checks) {
  const SiteRegistration& site = sites_.at(domain);
  // 4. Measurement: manual pin or delegated registry.
  bool acceptable = false;
  for (const auto& m : site.expected_measurements) {
    acceptable = acceptable || bundle.report.measurement == m;
  }
  if (site.registry != nullptr) {
    acceptable = acceptable ||
                 site.registry->is_acceptable(site.registry_service,
                                              bundle.report.measurement);
  }
  if (!acceptable) {
    checks.failure = "measurement not in the accepted set";
    checks.failure_step = "measurement";
    return false;
  }
  checks.measurement_ok = true;

  // 5. The TLS endpoint must terminate at the attested key (§3.4.5).
  if (!(session_key == bundle.payload)) {
    checks.failure = "TLS connection does not terminate at the attested key";
    checks.failure_step = "tls_binding";
    return false;
  }
  checks.tls_binding_ok = true;

  DomainState state;
  state.attested = true;
  state.attested_key = bundle.payload;
  state.checks = checks;
  state_[domain] = std::move(state);
  return true;
}

bool WebExtension::check_revocation(const EvidenceBundle& bundle,
                                    const KdsService::VcekResponse& kds,
                                    AttestationChecks& checks) {
  if (config_.revocation_set == nullptr) return true;
  const RevocationSet& set = *config_.revocation_set;
  std::string what;
  if (set.is_measurement_revoked(bundle.report.measurement)) {
    what = "measurement";
  } else if (set.is_chip_revoked(bundle.report.chip_id)) {
    what = "chip";
  } else if (set.is_vcek_revoked(kds.vcek.fingerprint())) {
    what = "VCEK certificate";
  } else {
    return true;
  }
  checks.failure = what + " is revoked";
  checks.failure_step = "revocation";
  obs::metrics()
      .counter("ext.attest.revoked.count", {{"kind", what}})
      .inc();
  return false;
}

bool WebExtension::check_tcb_horizon(const EvidenceBundle& bundle,
                                     AttestationChecks& checks) {
  if (config_.tcb_horizon == nullptr) return true;
  const std::uint64_t now_us = browser_->network().clock().now_us();
  if (config_.tcb_horizon->acceptable(bundle.report.chip_id,
                                      bundle.report.reported_tcb, now_us)) {
    return true;
  }
  checks.failure = "report TCB is below the chip's update horizon";
  checks.failure_step = "tcb_horizon";
  obs::metrics().counter("ext.attest.tcb_horizon.count").inc();
  return false;
}

bool WebExtension::stage_verify(const std::string& domain,
                                const EvidenceBundle& bundle,
                                const KdsService::VcekResponse& kds,
                                const Bytes& session_key,
                                AttestationChecks& checks) {
  // Revocation and the fleet TCB horizon are checked before a single
  // signature is examined: evidence from a revoked identity or below its
  // chip's update horizon must not even reach the crypto.
  if (!check_revocation(bundle, kds, checks)) return false;
  if (!check_tcb_horizon(bundle, checks)) return false;
  const SiteRegistration& site = sites_.at(domain);
  sevsnp::ReportVerifyOptions options;
  options.now_us = browser_->network().clock().now_us();
  options.minimum_tcb = site.minimum_tcb;
  options.chain_cache = chain_verifier_;
  const auto verify = sevsnp::verify_report(bundle.report, kds.vcek,
                                            {kds.ask}, {kds.ark}, options);
  if (!apply_verify_status(verify, checks)) return false;
  return verify_policy(domain, bundle, session_key, checks);
}

Result<WebExtension::Verified> WebExtension::fetch(
    const std::string& domain, std::uint16_t port,
    const net::HttpRequest& request) {
  if (sites_.count(domain) == 0) {
    return Error::make("extension.site_not_registered", domain);
  }
  obs::Span span("ext.session_validate");
  span.attr("domain", domain);
  span.attr("path", request.path);
  SimClock& clock = browser_->network().clock();
  const net::Deadline deadline =
      config_.attest_deadline_ms > 0.0
          ? net::Deadline::after_ms(clock, config_.attest_deadline_ms)
          : net::Deadline::unlimited();
  auto result = net::with_retries(
      clock, retry_jitter_, config_.retry, deadline, "ext.fetch",
      [&] { return browser_->fetch(domain, port, request); });
  if (!result.ok()) {
    span.attr("mode", "fetch");
    span.attr("result", result.error().code);
    return result.error();
  }

  auto state_it = state_.find(domain);
  const bool need_full_attestation =
      state_it == state_.end() || !state_it->second.attested ||
      result->new_session;

  if (need_full_attestation) {
    span.attr("mode", "attest");
    auto checks = attest(domain, port, result->tls_server_key, deadline);
    if (!checks.ok()) {
      span.attr("result", checks.error().code);
      return checks.error();
    }
    if (!checks->all_ok()) {
      // Fail closed: surface the response-less verdict to the caller.
      state_[domain].checks = *checks;
      state_[domain].attested = false;
      span.attr("result", "extension.attestation_failed");
      return Error::make("extension.attestation_failed", checks->failure);
    }
    span.attr("result", "ok");
    return Verified{std::move(result->response), *checks};
  }

  // Monitoring path: every request validates that the connection still
  // terminates at the attested key (the redirect defence).
  span.attr("mode", "monitor");
  obs::metrics().counter("ext.monitor.count").inc();
  browser_->network().clock().advance_ms(config_.connection_check_overhead_ms);
  if (!(result->tls_server_key == state_it->second.attested_key)) {
    state_it->second.attested = false;
    state_it->second.checks.tls_binding_ok = false;
    state_it->second.checks.failure =
        "connection re-terminated at a different key";
    state_it->second.checks.failure_step = "tls_binding";
    obs::metrics()
        .counter("ext.monitor.fail.count", {{"reason", "key_changed"}})
        .inc();
    span.attr("result", "extension.connection_hijacked");
    return Error::make("extension.connection_hijacked",
                       "TLS endpoint changed after attestation");
  }
  span.attr("result", "ok");
  return Verified{std::move(result->response), state_it->second.checks};
}

Result<WebExtension::Verified> WebExtension::get(const std::string& domain,
                                                 std::uint16_t port,
                                                 const std::string& path) {
  net::HttpRequest request;
  request.method = "GET";
  request.path = path;
  request.host = domain;
  return fetch(domain, port, request);
}

// --- StagedAttestation ------------------------------------------------------

Status WebExtension::StagedAttestation::wrong_stage(const char* want) const {
  return Error::make("extension.stage_order",
                     std::string("expected stage ") + want);
}

Status WebExtension::StagedAttestation::handshake() {
  if (next_ != Stage::kHandshake) return wrong_stage("handshake");
  if (ext_->sites_.count(domain_) == 0) {
    return Error::make("extension.site_not_registered", domain_);
  }
  SimClock& clock = ext_->browser_->network().clock();
  deadline_ = ext_->config_.attest_deadline_ms > 0.0
                  ? net::Deadline::after_ms(clock,
                                            ext_->config_.attest_deadline_ms)
                  : net::Deadline::unlimited();
  auto key = ext_->browser_->connect(domain_, port_);
  if (!key.ok()) return key.error();
  session_key_ = std::move(*key);
  next_ = Stage::kEvidence;
  return Status::success();
}

Status WebExtension::StagedAttestation::fetch_evidence() {
  if (next_ != Stage::kEvidence) return wrong_stage("fetch_evidence");
  bundle_ = ext_->stage_evidence(domain_, port_, deadline_, checks_);
  if (!bundle_.has_value()) {
    ext_->note_attest_result(checks_.failure_step);
    ext_->note_verdict(checks_, nullptr, nullptr, false);
    return Error::make("extension.attestation_failed", checks_.failure);
  }
  next_ = Stage::kKds;
  return Status::success();
}

Status WebExtension::StagedAttestation::fetch_kds() {
  if (next_ != Stage::kKds) return wrong_stage("fetch_kds");
  auto kds = ext_->fetch_vcek(bundle_->report.chip_id,
                              bundle_->report.reported_tcb, deadline_);
  if (!kds.ok()) {
    checks_.failure = "VCEK fetch failed: " + kds.error().to_string();
    checks_.failure_step = "kds_fetch";
    ext_->note_attest_result(checks_.failure_step);
    ext_->note_verdict(checks_, &*bundle_, nullptr, false);
    return Error::make("extension.attestation_failed", checks_.failure);
  }
  kds_ = std::move(*kds);
  next_ = Stage::kVerify;
  return Status::success();
}

Status WebExtension::StagedAttestation::verify() {
  if (next_ != Stage::kVerify) return wrong_stage("verify");
  const bool ok =
      ext_->stage_verify(domain_, *bundle_, *kds_, session_key_, checks_);
  ext_->note_verdict(checks_, &*bundle_, &*kds_, ok);
  if (!ok) {
    // Fail closed, mirroring fetch(): record the verdict so last_checks()
    // shows why, and never serve the page.
    ext_->state_[domain_].checks = checks_;
    ext_->state_[domain_].attested = false;
    ext_->note_attest_result(checks_.failure_step);
    return Error::make("extension.attestation_failed", checks_.failure);
  }
  ext_->note_attest_result("ok");
  next_ = Stage::kPage;
  return Status::success();
}

Result<sevsnp::PreparedReportVerify>
WebExtension::StagedAttestation::verify_prepare() {
  if (next_ != Stage::kVerify || prepared_) {
    return wrong_stage("verify").error();
  }
  if (!ext_->check_revocation(*bundle_, *kds_, checks_) ||
      !ext_->check_tcb_horizon(*bundle_, checks_)) {
    // Terminal like any other failed verify: audited, counted, fail closed
    // — and the signature batch never sees this session.
    ext_->note_verdict(checks_, &*bundle_, &*kds_, false);
    ext_->state_[domain_].checks = checks_;
    ext_->state_[domain_].attested = false;
    ext_->note_attest_result(checks_.failure_step);
    return Error::make("extension.attestation_failed", checks_.failure);
  }
  sevsnp::ReportVerifyOptions options;
  options.now_us = ext_->browser_->network().clock().now_us();
  options.minimum_tcb = ext_->sites_.at(domain_).minimum_tcb;
  options.chain_cache = ext_->chain_verifier_;
  auto prepared = sevsnp::prepare_report_verify(
      bundle_->report, kds_->vcek, {kds_->ask}, {kds_->ark}, options);
  if (!prepared.ok()) {
    // Terminal, exactly like a failed verify(): same counters, same audit
    // record, same state writes, same error.
    const Status st = prepared.error();
    sevsnp::record_report_verify_result(st);
    apply_verify_status(st, checks_);
    ext_->note_verdict(checks_, &*bundle_, &*kds_, false);
    ext_->state_[domain_].checks = checks_;
    ext_->state_[domain_].attested = false;
    ext_->note_attest_result(checks_.failure_step);
    return Error::make("extension.attestation_failed", checks_.failure);
  }
  // The VCEK is a well-known base every session of this gateway verifies
  // against — share its precomputed tables process-wide.
  crypto::p384().pin_verify_tables(prepared->vcek_pub);
  prepared_ = true;
  return *prepared;
}

Status WebExtension::StagedAttestation::verify_finish(bool signature_ok) {
  if (next_ != Stage::kVerify || !prepared_) return wrong_stage("verify");
  prepared_ = false;
  sevsnp::ReportVerifyOptions options;
  options.minimum_tcb = ext_->sites_.at(domain_).minimum_tcb;
  const Status st =
      sevsnp::finish_report_verify(bundle_->report, signature_ok, options);
  sevsnp::record_report_verify_result(st);
  bool ok = apply_verify_status(st, checks_);
  if (ok) ok = ext_->verify_policy(domain_, *bundle_, session_key_, checks_);
  ext_->note_verdict(
      checks_, &*bundle_, &*kds_, ok,
      audit_evidence_digest_ ? &*audit_evidence_digest_ : nullptr,
      audit_chain_digest_ ? &*audit_chain_digest_ : nullptr);
  if (!ok) {
    ext_->state_[domain_].checks = checks_;
    ext_->state_[domain_].attested = false;
    ext_->note_attest_result(checks_.failure_step);
    return Error::make("extension.attestation_failed", checks_.failure);
  }
  ext_->note_attest_result("ok");
  next_ = Stage::kPage;
  return Status::success();
}

Result<net::HttpResponse> WebExtension::StagedAttestation::fetch_page(
    const std::string& path) {
  if (next_ != Stage::kPage) {
    auto err = wrong_stage("fetch_page");
    return err.error();
  }
  // The session is attested now, so this takes fetch()'s monitoring path
  // (connection-context re-check included).
  auto verified = ext_->get(domain_, port_, path);
  if (!verified.ok()) return verified.error();
  next_ = Stage::kDone;
  return std::move(verified->response);
}

std::vector<Status> batch_verify_sessions(
    const std::vector<WebExtension::StagedAttestation*>& sessions) {
  using StagedAttestation = WebExtension::StagedAttestation;
  std::vector<Status> out(sessions.size(), Status::success());

  // Per-session prepare: chain walk, key/signature decode, signed-body
  // digest. A failure is terminal for that slot and bookkept exactly like a
  // failed verify(); the slot simply doesn't join the signature batch.
  std::vector<crypto::EcdsaBatchItem> items;
  std::vector<std::size_t> slots;  // items[j] belongs to sessions[slots[j]]
  items.reserve(sessions.size());
  slots.reserve(sessions.size());
  for (std::size_t k = 0; k < sessions.size(); ++k) {
    StagedAttestation* session = sessions[k];
    if (session == nullptr) continue;
    auto prep = session->verify_prepare();
    if (!prep.ok()) {
      out[k] = prep.error();
      continue;
    }
    crypto::EcdsaBatchItem item;
    item.pub = prep->vcek_pub;
    append(item.msg_hash, prep->digest.view());
    item.sig = prep->signature;
    items.push_back(std::move(item));
    slots.push_back(k);
  }
  if (items.empty()) return out;

  // Audit digests, eight sessions per multi-buffer SHA-256 pass. The lanes
  // advance in lockstep, so only aligned runs of equal-length encodings
  // batch; every other slot keeps note_verdict's inline hashing, which
  // produces the identical digest.
  std::vector<Bytes> evidence(slots.size());
  std::vector<Bytes> chains(slots.size());
  for (std::size_t j = 0; j < slots.size(); ++j) {
    const StagedAttestation& session = *sessions[slots[j]];
    evidence[j] = session.bundle_->serialize();
    Bytes der;
    append(der, session.kds_->vcek.serialize());
    append(der, session.kds_->ask.serialize());
    append(der, session.kds_->ark.serialize());
    chains[j] = std::move(der);
  }
  const auto hash_runs =
      [&](const std::vector<Bytes>& encodings,
          std::optional<crypto::Digest32> StagedAttestation::*member) {
        constexpr std::size_t kLanes = crypto::Sha256x8::kLanes;
        std::size_t j = 0;
        while (j + kLanes <= encodings.size()) {
          bool uniform = true;
          for (std::size_t l = 1; l < kLanes; ++l) {
            uniform = uniform && encodings[j + l].size() == encodings[j].size();
          }
          if (!uniform) {
            ++j;
            continue;
          }
          ByteView views[kLanes];
          crypto::Digest32 digests[kLanes];
          for (std::size_t l = 0; l < kLanes; ++l) views[l] = encodings[j + l];
          crypto::sha256_x8(views, digests);
          for (std::size_t l = 0; l < kLanes; ++l) {
            sessions[slots[j + l]]->*member = digests[l];
          }
          j += kLanes;
        }
      };
  hash_runs(evidence, &StagedAttestation::audit_evidence_digest_);
  hash_runs(chains, &StagedAttestation::audit_chain_digest_);

  // ONE interleaved multi-scalar pass over every prepared signature; the
  // per-signature offender fallback lives inside ecdsa_verify_batch, so a
  // forged signature fails exactly its own session.
  obs::Span span("sevsnp.batch_signature_verify");
  span.attr("batch", static_cast<std::uint64_t>(items.size()));
  const std::vector<bool> verdicts =
      crypto::ecdsa_verify_batch(crypto::p384(), items);
  std::size_t rejected = 0;
  for (std::size_t j = 0; j < slots.size(); ++j) {
    rejected += verdicts[j] ? 0 : 1;
    out[slots[j]] = sessions[slots[j]]->verify_finish(verdicts[j]);
  }
  span.attr("rejected", static_cast<std::uint64_t>(rejected));
  return out;
}

}  // namespace revelio::core

#include "revelio/revocation.hpp"

namespace revelio {

namespace {

constexpr std::string_view kPrefix = "revoked/";

std::size_t id_size_for(char kind) {
  switch (kind) {
    case 'm':
      return sevsnp::Measurement::size();
    case 'c':
      return sevsnp::ChipId::size();
    case 'v':
      return crypto::Digest32::size();
    default:
      return 0;
  }
}

Bytes entry_key(char kind, ByteView id) {
  Bytes key;
  key.reserve(1 + id.size());
  append_u8(key, static_cast<std::uint8_t>(kind));
  append(key, id);
  return key;
}

Bytes store_key(char kind, ByteView id) {
  Bytes key;
  key.reserve(kPrefix.size() + 2 + id.size());
  append(key, kPrefix);
  append_u8(key, static_cast<std::uint8_t>(kind));
  append_u8(key, '/');
  append(key, id);
  return key;
}

}  // namespace

Result<std::unique_ptr<RevocationSet>> RevocationSet::open(store::KvStore& kv) {
  auto set = std::make_unique<RevocationSet>();
  set->kv_ = &kv;
  Status bad = Status::success();
  kv.for_each_prefix(to_bytes(kPrefix), [&](ByteView key, ByteView) {
    if (!bad.ok()) return;
    // key = "revoked/" <kind> "/" <id>
    if (key.size() < kPrefix.size() + 2) {
      bad = Error::make("revocation.corrupt", "persisted key too short");
      return;
    }
    const char kind = static_cast<char>(key[kPrefix.size()]);
    const std::size_t want = id_size_for(kind);
    const ByteView id = key.subspan(kPrefix.size() + 2);
    if (want == 0 || key[kPrefix.size() + 1] != '/' || id.size() != want) {
      bad = Error::make("revocation.corrupt",
                        "malformed persisted revocation entry");
      return;
    }
    set->entries_.insert(entry_key(kind, id));
  });
  if (!bad.ok()) return bad.error();
  return set;
}

Status RevocationSet::revoke(char kind, ByteView id, const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.insert(entry_key(kind, id));
  if (kv_ == nullptr) return Status::success();
  return kv_->put(store_key(kind, id), to_bytes(reason));
}

bool RevocationSet::is_revoked(char kind, ByteView id) const {
  std::lock_guard<std::mutex> lock(mu_);
  ++checks_;
  const bool hit = entries_.count(entry_key(kind, id)) != 0;
  if (hit) ++hits_;
  return hit;
}

Status RevocationSet::revoke_measurement(const sevsnp::Measurement& measurement,
                                         const std::string& reason) {
  return revoke('m', measurement.view(), reason);
}

Status RevocationSet::revoke_chip(const sevsnp::ChipId& chip,
                                  const std::string& reason) {
  return revoke('c', chip.view(), reason);
}

Status RevocationSet::revoke_vcek(const crypto::Digest32& cert_fingerprint,
                                  const std::string& reason) {
  return revoke('v', cert_fingerprint.view(), reason);
}

bool RevocationSet::is_measurement_revoked(
    const sevsnp::Measurement& measurement) const {
  return is_revoked('m', measurement.view());
}

bool RevocationSet::is_chip_revoked(const sevsnp::ChipId& chip) const {
  return is_revoked('c', chip.view());
}

bool RevocationSet::is_vcek_revoked(
    const crypto::Digest32& cert_fingerprint) const {
  return is_revoked('v', cert_fingerprint.view());
}

RevocationSet::Stats RevocationSet::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{entries_.size(), checks_, hits_};
}

std::size_t RevocationSet::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace revelio

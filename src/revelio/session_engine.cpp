#include "revelio/session_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>
#include <optional>
#include <unordered_map>

#include "common/event_loop.hpp"
#include "common/hex.hpp"
#include "common/parallel.hpp"
#include "crypto/sha2.hpp"
#include "obs/audit_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace revelio::core {

namespace {

/// Nearest-rank percentile over a sorted sample (q in (0, 1]).
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

}  // namespace

const char* to_string(SessionState state) {
  switch (state) {
    case SessionState::kHandshake: return "handshake";
    case SessionState::kEvidenceFetch: return "evidence_fetch";
    case SessionState::kKdsFetch: return "kds_fetch";
    case SessionState::kVerify: return "verify";
    case SessionState::kPageFetch: return "page_fetch";
    case SessionState::kDone: return "done";
    case SessionState::kFailed: return "failed";
  }
  return "?";
}

SessionEngine::SessionEngine(SessionEngineConfig config)
    : config_(config),
      chain_cache_(config.chain_cache_shards,
                   config.chain_cache_capacity_per_shard),
      vcek_cache_(config.vcek_cache_shards,
                  config.vcek_cache_capacity_per_shard) {}

unsigned SessionEngine::workers() const {
  return config_.workers == 0 ? common::ThreadPool::default_thread_count()
                              : config_.workers;
}

SessionEngine::Report SessionEngine::run(std::size_t sessions,
                                         const SessionFn& fn) {
  Report report;
  report.sessions = sessions;
  report.outcomes.assign(sessions, Status::success());
  report.session_virt_ms.assign(sessions, 0.0);
  if (sessions == 0) return report;

  const auto real_start = std::chrono::steady_clock::now();
  common::ThreadPool pool(workers());
  pool.for_tasks(sessions, [&](std::size_t i) {
    // Per-session observability: its own tracer always (the process
    // tracer is not thread-safe), its own metrics registry when isolating.
    obs::MetricsRegistry session_metrics;
    obs::Tracer session_tracer;
    session_tracer.set_enabled(config_.trace_sessions);
    {
      obs::ScopedThreadTracer tracer_scope(session_tracer);
      std::optional<obs::ScopedThreadMetrics> metrics_scope;
      if (config_.isolate_obs) metrics_scope.emplace(session_metrics);

      SessionContext ctx;
      ctx.index = i;
      ctx.chain_cache = &chain_cache_;
      ctx.vcek_cache = &vcek_cache_;
      ctx.tracer = &session_tracer;
      report.outcomes[i] = fn(ctx);
      report.session_virt_ms[i] = ctx.virt_ms;
    }
    // Bindings restored: metrics() is the process registry again. Folding
    // here — concurrently with other sessions ending — is the case the
    // locked histogram merge exists for.
    if (config_.isolate_obs && config_.merge_metrics) {
      obs::metrics().merge_from(session_metrics);
    }
  });
  const auto real_end = std::chrono::steady_clock::now();

  report.real_elapsed_ms =
      std::chrono::duration<double, std::milli>(real_end - real_start).count();
  for (const auto& st : report.outcomes) {
    if (st.ok()) {
      ++report.succeeded;
    } else {
      ++report.failed;
    }
  }
  if (report.real_elapsed_ms > 0.0) {
    report.sessions_per_real_sec = static_cast<double>(sessions) /
                                   (report.real_elapsed_ms / 1000.0);
  }

  // Virtual-time lane model: deterministic round-robin assignment (session
  // i -> lane i % workers), independent of which OS thread actually ran
  // which task. That keeps the makespan — and everything derived from it —
  // reproducible run to run.
  std::vector<double> lanes(std::min<std::size_t>(workers(), sessions), 0.0);
  for (std::size_t i = 0; i < sessions; ++i) {
    lanes[i % lanes.size()] += report.session_virt_ms[i];
  }
  report.virt_makespan_ms = *std::max_element(lanes.begin(), lanes.end());
  if (report.virt_makespan_ms > 0.0) {
    report.sessions_per_virtual_sec = static_cast<double>(sessions) /
                                      (report.virt_makespan_ms / 1000.0);
  }

  std::vector<double> sorted = report.session_virt_ms;
  std::sort(sorted.begin(), sorted.end());
  report.virt_p50_ms = percentile(sorted, 0.50);
  report.virt_p95_ms = percentile(sorted, 0.95);
  report.virt_p99_ms = percentile(sorted, 0.99);

  report.chain_stats = chain_cache_.stats();
  report.vcek_stats = vcek_cache_.stats();
  return report;
}

namespace {

/// Which admission gate a stage passes through. 0 = ungated.
enum : std::uint8_t { kGateNone = 0, kGateEvidence = 1, kGateKds = 2 };

std::uint8_t gate_for(SessionState state, const AdmissionConfig& admission) {
  if (state == SessionState::kEvidenceFetch &&
      admission.max_inflight_evidence > 0) {
    return kGateEvidence;
  }
  if (state == SessionState::kKdsFetch && admission.max_inflight_kds > 0) {
    return kGateKds;
  }
  return kGateNone;
}

/// Everything the engine keeps per session — this struct (plus one pending
/// heap event) IS the cost of a parked session, which is why it stays
/// plain data.
struct Cell {
  SessionState next = SessionState::kHandshake;  // stage to run at wake
  std::uint8_t holds = kGateNone;  // gate capacity held through the park
  double total_virt_ms = 0.0;
  double wait_virt_ms = 0.0;
  common::EventLoop::Micros queued_at_us = 0;  // set while in a gate FIFO
};

/// What one dispatched stage produced (slot-indexed; written by exactly
/// one pool lane, read by the driver after the batch join).
struct StageResult {
  SessionState next = SessionState::kFailed;
  double stage_virt_ms = 0.0;
  double wait_ms = 0.0;
  /// Wall-clock compute of this dispatch (an even share of the batch's
  /// wall time when batched).
  double real_ms = 0.0;
  bool batched = false;
  Status failure = Status::success();
};

common::EventLoop::Micros to_us(double ms) {
  return ms <= 0.0 ? 0
                   : static_cast<common::EventLoop::Micros>(ms * 1000.0 + 0.5);
}

}  // namespace

SessionEngine::StagedReport SessionEngine::run_staged(
    std::size_t sessions, const StagedSessionFn& fn,
    const AdmissionConfig& admission, const TrackFn& track,
    const BatchStageConfig& batching) {
  StagedReport report;
  report.sessions = sessions;
  report.outcomes.assign(sessions, Status::success());
  report.final_states.assign(sessions, SessionState::kFailed);
  report.session_virt_ms.assign(sessions, 0.0);
  if (sessions == 0) {
    report.transcript_digest = to_hex(crypto::Sha256().finish().view());
    return report;
  }

  const auto real_start = std::chrono::steady_clock::now();
  const auto track_of = [&](std::size_t i) { return track ? track(i) : i; };

  common::EventLoop loop;
  std::vector<Cell> cells(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    loop.schedule_at(0, track_of(i), i);
  }

  struct Gate {
    std::size_t limit = 0;
    std::size_t inflight = 0;
    std::deque<std::size_t> fifo;
    std::size_t peak_inflight = 0;
  };
  Gate gates[3];
  gates[kGateEvidence].limit = admission.max_inflight_evidence;
  gates[kGateKds].limit = admission.max_inflight_kds;

  auto& metrics = obs::metrics();
  obs::Gauge& parked_gauge = metrics.gauge("gw.sessions.parked");
  obs::Gauge& running_gauge = metrics.gauge("gw.sessions.running");
  obs::Gauge& queue_gauge = metrics.gauge("gw.admission.queue_depth");
  obs::Counter& park_counter = metrics.counter("gw.admission.park.count");
  obs::Counter& shed_counter = metrics.counter("gw.admission.shed.count");
  // Log-bucketed summary, not a fixed-bucket histogram: gate-FIFO waits
  // span microseconds to whole chaos timeouts, and the tail is the point.
  obs::Summary& wake_summary = metrics.summary("gw.wake.latency.ms");
  std::vector<double> wake_latencies;

  // Per-session flight recorders: a fixed 16-byte/event ring each,
  // preallocated up front so record() never touches the heap. Stage-body
  // events arrive through the thread binding in run_stage; driver-side
  // events (park/wake/admission) are stamped with the loop clock directly.
  const FlightRecorderConfig& fr = config_.flight_recorder;
  std::vector<obs::FlightRecorder> recorders;
  if (fr.enabled) {
    recorders.reserve(sessions);
    for (std::size_t i = 0; i < sessions; ++i) {
      recorders.emplace_back(fr.ring_events);
    }
  }
  const auto flight = [&](std::size_t i, obs::FlightEventType type,
                          std::uint16_t arg, std::uint32_t value,
                          common::EventLoop::Micros t_us) {
    if (fr.enabled) recorders[i].record_at(t_us, type, arg, value);
  };

  // Per-stage wait-vs-service attribution, accumulated on the driver in
  // post-pass order (single-threaded — no summary lock contention while
  // stages run). kDone is the bound: only real stages index these.
  constexpr std::size_t kStageCount =
      static_cast<std::size_t>(SessionState::kDone);
  obs::Summary stage_wait[kStageCount];
  obs::Summary stage_service[kStageCount];
  obs::Summary stage_real[kStageCount];
  double stage_wait_total[kStageCount] = {};
  double stage_service_total[kStageCount] = {};
  double stage_real_total[kStageCount] = {};
  std::uint64_t stage_batched[kStageCount] = {};

  const auto finalize = [&](std::size_t i, SessionState state, Status st) {
    Cell& c = cells[i];
    if (c.holds != kGateNone) {  // terminal exit from a gated stage
      --gates[c.holds].inflight;
      c.holds = kGateNone;
    }
    report.final_states[i] = state;
    report.outcomes[i] = std::move(st);
    report.session_virt_ms[i] = c.total_virt_ms;
    report.wait_virt_ms += c.wait_virt_ms;
  };

  common::ThreadPool pool(workers());
  std::vector<common::EventLoop::Event> batch;
  std::vector<std::size_t> ready;        // session indices to dispatch now
  std::vector<StageResult> results;      // slot-parallel with `ready`
  std::vector<std::vector<std::size_t>> groups;  // ready slots, by track
  std::vector<std::size_t> batch_slots;  // ready slots routed to the hook
  // Virtual completion time of the latest-finishing session, including its
  // final stage (which needs no wake and so never reaches the loop clock).
  double makespan_ms = 0.0;

  while (true) {
    loop.next_batch(batch);
    if (batch.empty()) break;  // gate FIFOs are empty too: a non-empty
                               // FIFO implies a capacity holder, and every
                               // holder has a wake pending in the loop
    const common::EventLoop::Micros now_us = loop.now_us();
    // Lifecycle hook: fleet operations fire here, on the driver thread,
    // with no stages in flight — deterministic in virtual time.
    if (config_.on_virtual_time) config_.on_virtual_time(now_us);
    ready.clear();

    // 1. Waking sessions release the gate capacity their park was holding
    //    (the in-flight fetch completed at this instant).
    for (const auto& e : batch) {
      Cell& c = cells[e.payload];
      if (c.holds != kGateNone) {
        --gates[c.holds].inflight;
        c.holds = kGateNone;
      }
      flight(e.payload, obs::FlightEventType::kWake,
             static_cast<std::uint16_t>(c.next), 0, now_us);
    }

    // 2. Freed capacity goes to gate-parked sessions first, FIFO.
    for (std::uint8_t g : {kGateEvidence, kGateKds}) {
      Gate& gate = gates[g];
      while (!gate.fifo.empty() && gate.inflight < gate.limit) {
        const std::size_t i = gate.fifo.front();
        gate.fifo.pop_front();
        ++gate.inflight;
        cells[i].holds = g;
        const double waited =
            static_cast<double>(now_us - cells[i].queued_at_us) / 1000.0;
        wake_summary.observe(waited);
        wake_latencies.push_back(waited);
        flight(i, obs::FlightEventType::kWake,
               static_cast<std::uint16_t>(cells[i].next), 0, now_us);
        ready.push_back(i);
      }
      gate.peak_inflight = std::max(gate.peak_inflight, gate.inflight);
    }

    // 3. Admission for the batch itself, in deterministic batch order.
    for (const auto& e : batch) {
      const std::size_t i = e.payload;
      Cell& c = cells[i];
      const std::uint8_t g = gate_for(c.next, admission);
      if (g == kGateNone) {
        ready.push_back(i);
        continue;
      }
      Gate& gate = gates[g];
      if (gate.inflight < gate.limit) {
        ++gate.inflight;
        c.holds = g;
        gate.peak_inflight = std::max(gate.peak_inflight, gate.inflight);
        flight(i, obs::FlightEventType::kAdmission, g, 0, now_us);
        ready.push_back(i);
      } else if (admission.on_overload == AdmissionConfig::Overload::kPark &&
                 (admission.max_parked == 0 ||
                  gate.fifo.size() < admission.max_parked)) {
        c.queued_at_us = now_us;
        gate.fifo.push_back(i);
        park_counter.inc();
        flight(i, obs::FlightEventType::kAdmission, g, 1, now_us);
      } else {
        // Shed: fail closed. The session never reaches verify, so it can
        // never be counted as an accepted (trusted) session.
        shed_counter.inc();
        ++report.shed;
        flight(i, obs::FlightEventType::kAdmission, g, 2, now_us);
        makespan_ms =
            std::max(makespan_ms, static_cast<double>(now_us) / 1000.0);
        if (config_.audit_log != nullptr) {
          // Shed sessions never reach the web extension, so the engine
          // itself must leave their rejected verdict in the audit trail.
          obs::AuditRecord rec;
          rec.session = static_cast<std::uint64_t>(i);
          rec.virt_us = now_us;
          rec.accepted = false;
          rec.failure_step = "admission_shed";
          config_.audit_log->append(rec);
        }
        finalize(i, SessionState::kFailed,
                 Error::make("gw.admission.shed", to_string(c.next)));
      }
    }
    const std::size_t queued =
        gates[kGateEvidence].fifo.size() + gates[kGateKds].fifo.size();
    report.peak_queue_depth = std::max(report.peak_queue_depth, queued);
    queue_gauge.set(static_cast<double>(queued));
    running_gauge.set(static_cast<double>(ready.size()));

    // 4. Dispatch the ready stages over the pool, grouped by track so
    //    sessions sharing a world replica never run concurrently. Groups
    //    materialize in first-appearance order of the (track, seq)-ordered
    //    ready list, and each slot writes only results[slot] — the outcome
    //    is identical however lanes claim the groups.
    results.assign(ready.size(), StageResult{});
    const auto run_stage = [&](std::size_t slot) {
      const std::size_t i = ready[slot];
      Cell& c = cells[i];
      obs::MetricsRegistry session_metrics;
      obs::Tracer session_tracer;
      session_tracer.set_enabled(config_.trace_sessions);
      StageResult r;
      {
        obs::ScopedThreadTracer tracer_scope(session_tracer);
        std::optional<obs::ScopedThreadMetrics> metrics_scope;
        if (config_.isolate_obs) metrics_scope.emplace(session_metrics);
        // Bind the session's recorder so deep charge sites (retry backoff,
        // VCEK cache probes) hit this session's ring via flight_record().
        std::optional<obs::ScopedFlightRecorder> recorder_scope;
        if (fr.enabled) recorder_scope.emplace(recorders[i]);
        common::VirtualWaitScope waits;

        StagedContext ctx;
        ctx.index = i;
        ctx.state = c.next;
        ctx.chain_cache = &chain_cache_;
        ctx.vcek_cache = &vcek_cache_;
        ctx.tracer = &session_tracer;
        ctx.total_virt_ms = c.total_virt_ms;
        flight(i, obs::FlightEventType::kStageEnter,
               static_cast<std::uint16_t>(c.next), 0, now_us);
        const auto real_t0 = std::chrono::steady_clock::now();
        r.next = fn(ctx);
        r.real_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - real_t0)
                        .count();
        r.stage_virt_ms = ctx.stage_virt_ms;
        r.failure = std::move(ctx.failure);
        r.wait_ms = waits.waited_ms();
        flight(i, obs::FlightEventType::kStageExit,
               static_cast<std::uint16_t>(c.next),
               static_cast<std::uint32_t>(to_us(r.stage_virt_ms)),
               now_us + to_us(r.stage_virt_ms));
      }
      if (config_.isolate_obs && config_.merge_metrics) {
        obs::metrics().merge_from(session_metrics);
      }
      results[slot] = std::move(r);
    };
    groups.clear();
    {
      std::unordered_map<std::size_t, std::size_t> group_of;
      for (std::size_t slot = 0; slot < ready.size(); ++slot) {
        const std::size_t t = track_of(ready[slot]);
        const auto [it, fresh] = group_of.emplace(t, groups.size());
        if (fresh) groups.emplace_back();
        groups[it->second].push_back(slot);
      }
    }
    // Batch-hook coalescing: a track group whose EVERY ready member is
    // parked at the batch stage is subsumed whole into one cross-track
    // batch task (its members run sequentially inside that task, so track
    // isolation holds). Mixed groups keep per-session dispatch.
    batch_slots.clear();
    if (batching.fn) {
      std::vector<std::size_t> subsumed;  // group indices fully at the stage
      std::size_t coalesced = 0;
      for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        const bool all_at_stage = std::all_of(
            groups[gi].begin(), groups[gi].end(), [&](std::size_t slot) {
              return cells[ready[slot]].next == batching.stage;
            });
        if (all_at_stage) {
          subsumed.push_back(gi);
          coalesced += groups[gi].size();
        }
      }
      // Commit only when there is something to amortize; otherwise groups
      // stay untouched and everything dispatches per-session.
      if (coalesced >= std::max<std::size_t>(batching.min_batch, 1)) {
        std::vector<std::vector<std::size_t>> kept;
        kept.reserve(groups.size() - subsumed.size());
        std::size_t s = 0;
        for (std::size_t gi = 0; gi < groups.size(); ++gi) {
          if (s < subsumed.size() && subsumed[s] == gi) {
            ++s;
            batch_slots.insert(batch_slots.end(), groups[gi].begin(),
                               groups[gi].end());
          } else {
            kept.push_back(std::move(groups[gi]));
          }
        }
        groups = std::move(kept);
      }
    }
    const auto run_batch = [&]() {
      const auto real_t0 = std::chrono::steady_clock::now();
      // One observability scope for the whole batch: a single registry
      // merged once, one tracer — the batch is one unit of work.
      obs::MetricsRegistry batch_metrics;
      obs::Tracer batch_tracer;
      batch_tracer.set_enabled(config_.trace_sessions);
      std::vector<StagedBatchItem> items(batch_slots.size());
      {
        obs::ScopedThreadTracer tracer_scope(batch_tracer);
        std::optional<obs::ScopedThreadMetrics> metrics_scope;
        if (config_.isolate_obs) metrics_scope.emplace(batch_metrics);
        for (std::size_t k = 0; k < batch_slots.size(); ++k) {
          const std::size_t i = ready[batch_slots[k]];
          StagedContext& ctx = items[k].ctx;
          ctx.index = i;
          ctx.state = batching.stage;
          ctx.chain_cache = &chain_cache_;
          ctx.vcek_cache = &vcek_cache_;
          ctx.tracer = &batch_tracer;
          ctx.total_virt_ms = cells[i].total_virt_ms;
          flight(i, obs::FlightEventType::kStageEnter,
                 static_cast<std::uint16_t>(batching.stage), 1, now_us);
        }
        batching.fn(items);
      }
      if (config_.isolate_obs && config_.merge_metrics) {
        obs::metrics().merge_from(batch_metrics);
      }
      const double batch_real_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - real_t0)
              .count();
      const double share =
          batch_real_ms / static_cast<double>(batch_slots.size());
      for (std::size_t k = 0; k < batch_slots.size(); ++k) {
        const std::size_t slot = batch_slots[k];
        const std::size_t i = ready[slot];
        StageResult r;
        r.next = items[k].next;
        r.stage_virt_ms = items[k].ctx.stage_virt_ms;
        r.failure = std::move(items[k].ctx.failure);
        r.wait_ms = 0.0;  // batched stages are pure compute by contract
        r.real_ms = share;
        r.batched = true;
        flight(i, obs::FlightEventType::kStageExit,
               static_cast<std::uint16_t>(batching.stage),
               static_cast<std::uint32_t>(to_us(r.stage_virt_ms)),
               now_us + to_us(r.stage_virt_ms));
        results[slot] = std::move(r);
      }
    };
    const std::size_t task_count =
        groups.size() + (batch_slots.empty() ? 0 : 1);
    if (pool.width() <= 1 || task_count <= 1) {
      if (!batch_slots.empty()) run_batch();
      for (const auto& g : groups) {
        for (const std::size_t slot : g) run_stage(slot);
      }
    } else {
      pool.for_tasks(task_count, [&](std::size_t gi) {
        if (gi < groups.size()) {
          for (const std::size_t slot : groups[gi]) run_stage(slot);
        } else {
          run_batch();
        }
      });
    }
    if (!batch_slots.empty()) {
      ++report.batch_calls;
      report.max_stage_batch =
          std::max(report.max_stage_batch, batch_slots.size());
    }

    // 5. Post-pass on the driver thread, in ready order: advance the state
    //    machines and schedule wakes. Single-threaded scheduling is what
    //    keeps event seq numbers — and the whole schedule — deterministic.
    for (std::size_t slot = 0; slot < ready.size(); ++slot) {
      const std::size_t i = ready[slot];
      StageResult& r = results[slot];
      Cell& c = cells[i];
      c.total_virt_ms += r.stage_virt_ms;
      const double stage_wait_ms = std::min(r.wait_ms, r.stage_virt_ms);
      c.wait_virt_ms += stage_wait_ms;
      // c.next still names the stage that just ran (advanced below).
      const auto stage_idx = static_cast<std::size_t>(c.next);
      if (stage_idx < kStageCount) {
        stage_wait[stage_idx].observe(stage_wait_ms);
        stage_service[stage_idx].observe(r.stage_virt_ms - stage_wait_ms);
        stage_wait_total[stage_idx] += stage_wait_ms;
        stage_service_total[stage_idx] += r.stage_virt_ms - stage_wait_ms;
        stage_real[stage_idx].observe(r.real_ms);
        stage_real_total[stage_idx] += r.real_ms;
        if (r.batched) ++stage_batched[stage_idx];
      }
      if (r.next == SessionState::kDone || r.next == SessionState::kFailed) {
        makespan_ms = std::max(makespan_ms, static_cast<double>(now_us) /
                                                    1000.0 +
                                                r.stage_virt_ms);
      }
      if (r.next == SessionState::kDone) {
        finalize(i, SessionState::kDone, Status::success());
      } else if (r.next == SessionState::kFailed) {
        finalize(i, SessionState::kFailed,
                 r.failure.ok() ? Error::make("gw.session_failed",
                                              "stage reported failure")
                                : std::move(r.failure));
      } else {
        c.next = r.next;
        flight(i, obs::FlightEventType::kPark,
               static_cast<std::uint16_t>(r.next),
               static_cast<std::uint32_t>(to_us(r.stage_virt_ms)),
               now_us);
        loop.schedule_after(to_us(r.stage_virt_ms), track_of(i), i);
      }
    }
    const std::size_t parked =
        loop.pending() + gates[kGateEvidence].fifo.size() +
        gates[kGateKds].fifo.size();
    report.peak_parked = std::max(report.peak_parked, parked);
    parked_gauge.set(static_cast<double>(parked));
  }
  running_gauge.set(0.0);
  const auto real_end = std::chrono::steady_clock::now();

  // ---- aggregation -------------------------------------------------------
  report.real_elapsed_ms =
      std::chrono::duration<double, std::milli>(real_end - real_start).count();
  if (report.real_elapsed_ms > 0.0) {
    report.sessions_per_real_sec =
        static_cast<double>(sessions) / (report.real_elapsed_ms / 1000.0);
  }
  for (const auto& st : report.outcomes) {
    if (st.ok()) {
      ++report.succeeded;
    } else {
      ++report.failed;
    }
  }

  const auto& stats = loop.stats();
  report.events_dispatched = stats.dispatched;
  report.batches = stats.batches;
  report.max_batch = stats.max_batch;
  report.virt_makespan_ms = makespan_ms;
  if (report.virt_makespan_ms > 0.0) {
    report.sessions_per_virtual_sec =
        static_cast<double>(sessions) / (report.virt_makespan_ms / 1000.0);
  }
  report.parked_per_worker =
      static_cast<double>(report.peak_parked) / static_cast<double>(workers());
  report.peak_inflight_evidence = gates[kGateEvidence].peak_inflight;
  report.peak_inflight_kds = gates[kGateKds].peak_inflight;

  std::vector<double> sorted = report.session_virt_ms;
  std::sort(sorted.begin(), sorted.end());
  report.virt_p50_ms = percentile(sorted, 0.50);
  report.virt_p95_ms = percentile(sorted, 0.95);
  report.virt_p99_ms = percentile(sorted, 0.99);
  std::sort(wake_latencies.begin(), wake_latencies.end());
  report.wake_p99_ms = percentile(wake_latencies, 0.99);
  double total_virt = 0.0;
  for (const double v : report.session_virt_ms) total_virt += v;
  report.service_virt_ms = total_virt - report.wait_virt_ms;

  // Per-stage wait-vs-service rows, state-machine order; fold the same
  // summaries into the process registry for exporters.
  for (std::size_t s = 0; s < kStageCount; ++s) {
    if (stage_wait[s].count() == 0) continue;
    StagedReport::StageBreakdown row;
    row.stage = static_cast<SessionState>(s);
    row.count = stage_wait[s].count();
    row.wait_p50_ms = stage_wait[s].quantile(0.50);
    row.wait_p99_ms = stage_wait[s].quantile(0.99);
    row.service_p50_ms = stage_service[s].quantile(0.50);
    row.service_p99_ms = stage_service[s].quantile(0.99);
    row.wait_total_ms = stage_wait_total[s];
    row.service_total_ms = stage_service_total[s];
    row.real_p50_ms = stage_real[s].quantile(0.50);
    row.real_p99_ms = stage_real[s].quantile(0.99);
    row.real_total_ms = stage_real_total[s];
    row.batched = stage_batched[s];
    report.stage_breakdown.push_back(row);
    const obs::Labels labels = {{"stage", to_string(row.stage)}};
    metrics.summary("gw.stage.wait.ms", labels).merge_from(stage_wait[s]);
    metrics.summary("gw.stage.service.ms", labels)
        .merge_from(stage_service[s]);
    metrics.summary("gw.stage.real.ms", labels).merge_from(stage_real[s]);
  }

  // Dump-on-anomaly: failed/shed sessions first (their timelines answer
  // "why did this fail"), then the virtual-latency tail at or beyond the
  // configured quantile, up to max_dumps total.
  if (fr.enabled) {
    for (const auto& rec : recorders) report.recorder_bytes += rec.bytes();
    const double tail_ms =
        sorted.empty() ? 0.0
                       : percentile(sorted, std::clamp(fr.tail_quantile,
                                                       0.0, 1.0));
    const auto dump = [&](std::size_t i, const char* reason) {
      if (report.anomaly_dumps.size() >= fr.max_dumps) return;
      report.anomaly_dumps.push_back(
          recorders[i].to_json(static_cast<std::uint64_t>(i), reason));
    };
    for (std::size_t i = 0; i < sessions; ++i) {
      if (report.outcomes[i].ok()) continue;
      dump(i, report.outcomes[i].error().code == "gw.admission.shed"
                  ? "shed"
                  : "failed");
    }
    for (std::size_t i = 0; i < sessions; ++i) {
      if (!report.outcomes[i].ok()) continue;
      if (report.session_virt_ms[i] >= tail_ms) dump(i, "p99_tail");
    }
  }

  report.engine_bytes = sessions * sizeof(Cell) + loop.peak_heap_bytes() +
                        report.peak_queue_depth * sizeof(std::size_t) +
                        report.recorder_bytes;
  if (report.peak_parked > 0) {
    report.bytes_per_parked_session =
        static_cast<double>(report.engine_bytes) /
        static_cast<double>(report.peak_parked);
  }

  // Transcript digest: the run's observable outcome, hashed in session
  // order. Two same-seed runs must produce the same hex string bit for bit.
  // Virtual durations are hashed at the loop's own granularity (integer
  // microseconds): the raw doubles carry sub-picosecond accumulation dust
  // whose distribution depends on real thread interleaving, which is below
  // anything the schedule can express and would make equal schedules hash
  // unequal.
  crypto::Sha256 digest;
  for (std::size_t i = 0; i < sessions; ++i) {
    std::uint8_t rec[17];
    std::uint64_t idx = static_cast<std::uint64_t>(i);
    std::memcpy(rec, &idx, 8);
    rec[8] = static_cast<std::uint8_t>(report.final_states[i]);
    const std::uint64_t virt_us = static_cast<std::uint64_t>(
        std::llround(report.session_virt_ms[i] * 1000.0));
    std::memcpy(rec + 9, &virt_us, 8);
    digest.update(ByteView(rec, sizeof(rec)));
    if (!report.outcomes[i].ok()) {
      digest.update(to_bytes(report.outcomes[i].error().code));
    }
  }
  report.transcript_digest = to_hex(digest.finish().view());

  report.chain_stats = chain_cache_.stats();
  report.vcek_stats = vcek_cache_.stats();
  return report;
}

}  // namespace revelio::core

#include "revelio/session_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>

#include "common/parallel.hpp"
#include "obs/metrics.hpp"

namespace revelio::core {

namespace {

/// Nearest-rank percentile over a sorted sample (q in (0, 1]).
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

}  // namespace

SessionEngine::SessionEngine(SessionEngineConfig config)
    : config_(config),
      chain_cache_(config.chain_cache_shards,
                   config.chain_cache_capacity_per_shard),
      vcek_cache_(config.vcek_cache_shards,
                  config.vcek_cache_capacity_per_shard) {}

unsigned SessionEngine::workers() const {
  return config_.workers == 0 ? common::ThreadPool::default_thread_count()
                              : config_.workers;
}

SessionEngine::Report SessionEngine::run(std::size_t sessions,
                                         const SessionFn& fn) {
  Report report;
  report.sessions = sessions;
  report.outcomes.assign(sessions, Status::success());
  report.session_virt_ms.assign(sessions, 0.0);
  if (sessions == 0) return report;

  const auto real_start = std::chrono::steady_clock::now();
  common::ThreadPool pool(workers());
  pool.for_tasks(sessions, [&](std::size_t i) {
    // Per-session observability: its own tracer always (the process
    // tracer is not thread-safe), its own metrics registry when isolating.
    obs::MetricsRegistry session_metrics;
    obs::Tracer session_tracer;
    session_tracer.set_enabled(config_.trace_sessions);
    {
      obs::ScopedThreadTracer tracer_scope(session_tracer);
      std::optional<obs::ScopedThreadMetrics> metrics_scope;
      if (config_.isolate_obs) metrics_scope.emplace(session_metrics);

      SessionContext ctx;
      ctx.index = i;
      ctx.chain_cache = &chain_cache_;
      ctx.vcek_cache = &vcek_cache_;
      ctx.tracer = &session_tracer;
      report.outcomes[i] = fn(ctx);
      report.session_virt_ms[i] = ctx.virt_ms;
    }
    // Bindings restored: metrics() is the process registry again. Folding
    // here — concurrently with other sessions ending — is the case the
    // locked histogram merge exists for.
    if (config_.isolate_obs && config_.merge_metrics) {
      obs::metrics().merge_from(session_metrics);
    }
  });
  const auto real_end = std::chrono::steady_clock::now();

  report.real_elapsed_ms =
      std::chrono::duration<double, std::milli>(real_end - real_start).count();
  for (const auto& st : report.outcomes) {
    if (st.ok()) {
      ++report.succeeded;
    } else {
      ++report.failed;
    }
  }
  if (report.real_elapsed_ms > 0.0) {
    report.sessions_per_real_sec = static_cast<double>(sessions) /
                                   (report.real_elapsed_ms / 1000.0);
  }

  // Virtual-time lane model: deterministic round-robin assignment (session
  // i -> lane i % workers), independent of which OS thread actually ran
  // which task. That keeps the makespan — and everything derived from it —
  // reproducible run to run.
  std::vector<double> lanes(std::min<std::size_t>(workers(), sessions), 0.0);
  for (std::size_t i = 0; i < sessions; ++i) {
    lanes[i % lanes.size()] += report.session_virt_ms[i];
  }
  report.virt_makespan_ms = *std::max_element(lanes.begin(), lanes.end());
  if (report.virt_makespan_ms > 0.0) {
    report.sessions_per_virtual_sec = static_cast<double>(sessions) /
                                      (report.virt_makespan_ms / 1000.0);
  }

  std::vector<double> sorted = report.session_virt_ms;
  std::sort(sorted.begin(), sorted.end());
  report.virt_p50_ms = percentile(sorted, 0.50);
  report.virt_p95_ms = percentile(sorted, 0.95);
  report.virt_p99_ms = percentile(sorted, 0.99);

  report.chain_stats = chain_cache_.stats();
  report.vcek_stats = vcek_cache_.stats();
  return report;
}

}  // namespace revelio::core

// RevelioVm: a web-facing service inside an attested confidential VM.
//
// Composes the whole stack of §5: measured direct boot of the built image,
// dm-verity rootfs, sealed data volume, first-boot identity creation
// (§5.2.2) — a P-256 key pair plus two attestation reports binding the
// public key and the CSR into REPORT_DATA — and the HTTP surface: the
// application routes, the `/.well-known/revelio-attestation` endpoint the
// web extension fetches, and the provisioning endpoints the SP node and
// peer nodes use for certificate and key distribution (§5.3.1, Fig 4).
#pragma once

#include <memory>

#include "imagebuild/builder.hpp"
#include "net/http.hpp"
#include "net/resilience.hpp"
#include "net/tls.hpp"
#include "revelio/evidence.hpp"
#include "vm/hypervisor.hpp"

namespace revelio::core {

struct RevelioVmConfig {
  std::string domain;      // the service's DNS name
  std::string host;        // network host this VM answers at
  std::uint16_t https_port = 443;
  std::uint16_t bootstrap_port = 8443;  // SP-side provisioning endpoints
  imagebuild::VmImage image;

  /// Reboot path: reuse an existing disk (with its sealed data volume)
  /// instead of instantiating a fresh one from the image. The VM unseals
  /// its persisted TLS identity and resumes serving without a new SP
  /// provisioning round (F6).
  std::shared_ptr<storage::MemDisk> existing_disk;

  /// Expected measurements of fleet peers (baked into the image at build
  /// time in the paper; here passed alongside it). Used during mutual
  /// attestation of key exchange.
  std::vector<sevsnp::Measurement> trusted_peer_measurements;
  /// KDS address for VCEK fetches during mutual attestation.
  net::Address kds_address;
  /// Ordered KDS mirrors tried when the primary is transiently down; the
  /// fetched chain still has to verify against the pinned AMD root.
  std::vector<net::Address> kds_mirrors;
  /// Transient-transport retry policy for KDS fetches and the leader key
  /// exchange. Defaults to a single attempt (no behavioural change).
  net::RetryPolicy retry{.max_attempts = 1};
};

class RevelioVm {
 public:
  /// Launches and boots the VM on `sp`, creates its identity, and registers
  /// its endpoints on the network. Fails on any integrity violation.
  static Result<std::unique_ptr<RevelioVm>> deploy(
      sevsnp::AmdSp& sp, net::Network& network, RevelioVmConfig config,
      net::HttpRouter app_routes);

  // --- Observability ----------------------------------------------------

  const vm::BootReport& boot_report() const { return boot_report_; }
  const vm::GuestVm& guest() const { return *guest_; }
  const sevsnp::Measurement& measurement() const {
    return guest_->measurement();
  }

  /// Evidence bundle: report with REPORT_DATA = sha256(identity pubkey).
  const EvidenceBundle& identity_evidence() const {
    return identity_evidence_;
  }
  /// Evidence bundle: report with REPORT_DATA = sha256(CSR).
  const EvidenceBundle& csr_evidence() const { return csr_evidence_; }
  const pki::CertificateSigningRequest& csr() const { return csr_; }
  Bytes identity_public_key() const {
    return identity_.public_encoded(crypto::p256());
  }

  bool serving_tls() const { return tls_server_ != nullptr; }

  /// True when boot found a sealed identity whose monotonic-counter stamp
  /// did not match the chip (volume rollback, or a torn/lost persist).
  /// The record was discarded unserved; the VM booted unprovisioned and
  /// the next SP provisioning round re-seals a fresh identity. Operators
  /// alert on this signal (and on the revelio.rollback.detected.count
  /// metric) — see docs/OPERATIONS.md.
  bool rollback_detected() const { return rollback_detected_; }
  /// Stamp-vs-counter detail for the detection above (empty when none).
  const std::string& rollback_detail() const { return rollback_detail_; }
  const net::Address& https_address() const { return https_address_; }
  const net::Address& bootstrap_address() const { return bootstrap_address_; }

  /// The disk backing this VM (hand to `existing_disk` to reboot it).
  std::shared_ptr<storage::MemDisk> disk() const { return disk_; }

  /// Re-requests both attestation reports (identity and CSR) from the
  /// AMD-SP so the evidence carries the chip's *current* TCB. Operators
  /// call this after a staged firmware update: evidence minted before the
  /// update names the old TCB and is rejected once the fleet's update
  /// horizon passes (failure_step "tcb_horizon"); refreshing re-signs the
  /// unchanged identity under the post-update VCEK.
  Status refresh_evidence();

  /// Direct HTTP dispatch (used by tests; network traffic arrives via the
  /// registered handlers).
  net::HttpResponse dispatch(const net::HttpRequest& request);

 private:
  RevelioVm() = default;

  Status create_identity(sevsnp::AmdSp& sp, net::Network& network);
  Status persist_tls_identity();
  /// Restores a persisted TLS identity from the sealed volume, if any.
  Result<bool> load_tls_identity();
  void register_endpoints(net::Network& network);
  net::HttpResponse handle_bootstrap(const net::HttpRequest& request);
  net::HttpResponse handle_certificate_install(const net::HttpRequest& req);
  net::HttpResponse handle_key_request(const net::HttpRequest& request);
  Status start_tls_server(net::Network& network);
  Status acquire_key_from_leader(const net::Address& leader);

  /// Mutual-attestation helper: verifies a peer bundle against the KDS
  /// chain and this node's trusted measurements.
  Status verify_peer_bundle(const EvidenceBundle& bundle);

  RevelioVmConfig config_;
  net::Network* network_ = nullptr;
  /// KDS replica set (primary + mirrors); built once config_ is known.
  std::optional<net::Failover> kds_failover_;
  crypto::HmacDrbg retry_jitter_{to_bytes("vm-retry-jitter")};
  std::shared_ptr<storage::MemDisk> disk_;
  std::unique_ptr<vm::GuestVm> guest_;
  vm::BootReport boot_report_;

  crypto::EcKeyPair identity_;        // per-VM key pair (§5.2.2)
  EvidenceBundle identity_evidence_;
  EvidenceBundle csr_evidence_;
  pki::CertificateSigningRequest csr_;
  crypto::HmacDrbg entropy_{Bytes{}};  // reseeded from the sealing key

  // Installed shared TLS identity (leader's key + ACME certificate).
  std::optional<pki::Certificate> tls_certificate_;
  std::vector<pki::Certificate> tls_chain_;
  std::optional<crypto::U384> tls_private_key_;
  std::unique_ptr<net::TlsServer> tls_server_;
  bool rollback_detected_ = false;
  std::string rollback_detail_;

  net::HttpRouter app_routes_;
  net::Address https_address_;
  net::Address bootstrap_address_;
};

}  // namespace revelio::core

#include "revelio/evidence.hpp"

namespace revelio::core {

sevsnp::ReportData EvidenceBundle::bind(ByteView payload) {
  const crypto::Digest32 digest = crypto::sha256(payload);
  sevsnp::ReportData rd;
  std::copy(digest.begin(), digest.end(), rd.begin());
  return rd;
}

bool EvidenceBundle::binding_ok() const {
  return report.report_data == bind(payload);
}

Bytes EvidenceBundle::serialize() const {
  Bytes out;
  append(out, std::string_view("REVB1"));
  const Bytes report_bytes = report.serialize();
  append_u32be(out, static_cast<std::uint32_t>(report_bytes.size()));
  append(out, report_bytes);
  append_u32be(out, static_cast<std::uint32_t>(payload.size()));
  append(out, payload);
  return out;
}

Result<EvidenceBundle> EvidenceBundle::parse(ByteView data) {
  if (data.size() < 5 || to_string(data.subspan(0, 5)) != "REVB1") {
    return Error::make("revelio.bad_evidence_bundle");
  }
  std::size_t off = 5;
  if (off + 4 > data.size()) return Error::make("revelio.bad_evidence_bundle");
  const std::uint32_t report_len = read_u32be(data, off);
  off += 4;
  if (off + report_len + 4 > data.size()) {
    return Error::make("revelio.bad_evidence_bundle");
  }
  EvidenceBundle bundle;
  auto report = sevsnp::AttestationReport::parse(data.subspan(off, report_len));
  if (!report.ok()) return report.error();
  bundle.report = std::move(*report);
  off += report_len;
  const std::uint32_t payload_len = read_u32be(data, off);
  off += 4;
  if (off + payload_len > data.size()) {
    return Error::make("revelio.bad_evidence_bundle");
  }
  bundle.payload = to_bytes(data.subspan(off, payload_len));
  return bundle;
}

KdsService::KdsService(sevsnp::KeyDistributionServer& kds,
                       net::Network& network, net::Address address)
    : kds_(&kds), address_(std::move(address)) {
  network.listen(address_, [this](ByteView request, const net::Address&) {
    return handle(request);
  });
}

Bytes KdsService::handle(ByteView request) {
  // Request: chip_id(64) | tcb(8). Response: "OK" + 3 length-prefixed certs
  // or "ER" + message.
  auto fail = [](const std::string& message) {
    Bytes out = to_bytes(std::string_view("ER"));
    append(out, message);
    return out;
  };
  if (request.size() != 64 + 8) return fail("bad request size");
  const sevsnp::ChipId chip_id = sevsnp::ChipId::from(request.subspan(0, 64));
  const sevsnp::TcbVersion tcb =
      sevsnp::TcbVersion::decode(read_u64be(request, 64));
  auto vcek = kds_->fetch_vcek(chip_id, tcb);
  if (!vcek.ok()) return fail(vcek.error().to_string());

  Bytes out = to_bytes(std::string_view("OK"));
  const pki::Certificate* certs[] = {&*vcek, &kds_->ask_certificate(),
                                     &kds_->ark_certificate()};
  for (const pki::Certificate* cert : certs) {
    const Bytes bytes = cert->serialize();
    append_u32be(out, static_cast<std::uint32_t>(bytes.size()));
    append(out, bytes);
  }
  return out;
}

Result<KdsService::VcekResponse> KdsService::fetch(
    net::Network& network, const net::Address& from,
    const net::Address& kds_address, const sevsnp::ChipId& chip_id,
    sevsnp::TcbVersion tcb) {
  Bytes request = chip_id.bytes();
  append_u64be(request, tcb.encode());
  auto response = network.call(from, kds_address, request);
  if (!response.ok()) return response.error();
  const ByteView data = *response;
  if (data.size() < 2) return Error::make("kds.bad_response");
  if (to_string(data.subspan(0, 2)) == "ER") {
    return Error::make("kds.error", to_string(data.subspan(2)));
  }
  std::size_t off = 2;
  std::vector<pki::Certificate> certs;
  for (int i = 0; i < 3; ++i) {
    if (off + 4 > data.size()) return Error::make("kds.bad_response");
    const std::uint32_t len = read_u32be(data, off);
    off += 4;
    if (off + len > data.size()) return Error::make("kds.bad_response");
    auto cert = pki::Certificate::parse(data.subspan(off, len));
    if (!cert.ok()) return cert.error();
    certs.push_back(std::move(*cert));
    off += len;
  }
  return VcekResponse{std::move(certs[0]), std::move(certs[1]),
                      std::move(certs[2])};
}

}  // namespace revelio::core

#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace revelio::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::fabs(v) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace revelio::obs

#include "obs/audit_store.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace revelio::obs {

namespace {

constexpr std::string_view kMetaKey = "audit/meta";
constexpr std::string_view kHeadKey = "audit/head";
constexpr std::string_view kFramePrefix = "audit/f/";

std::string frame_key(std::uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, seq);
  return std::string(kFramePrefix) + buf;
}

struct StoredChain {
  std::uint32_t interval = 0;
  std::vector<Bytes> frames;  // type byte || body, in seq order
  crypto::Digest32 head{};    // stored running head (genesis if absent)
  bool have_head = false;
};

crypto::Digest32 genesis() {
  // The chain's genesis head; the seed string is part of the public audit
  // format (see audit_log.cpp).
  static const char kSeed[] = "revelio-audit-v1";
  return crypto::sha256(ByteView(
      reinterpret_cast<const std::uint8_t*>(kSeed), sizeof(kSeed) - 1));
}

Result<StoredChain> read_chain(store::KvStore& kv) {
  StoredChain out;
  const auto meta = kv.get(to_bytes(kMetaKey));
  if (!meta.has_value()) {
    return Error::make("audit.store_empty", "no audit metadata in store");
  }
  if (meta->size() != 4) {
    return Error::make("audit.bad_header", "audit/meta has wrong size");
  }
  out.interval = read_u32be(*meta, 0);
  if (out.interval == 0) {
    return Error::make("audit.bad_header", "audit/meta interval is 0");
  }

  bool contiguous = true;
  std::uint64_t expect = 0;
  kv.for_each_prefix(to_bytes(kFramePrefix), [&](ByteView key, ByteView val) {
    // Keys are fixed-width hex, so lexicographic order is numeric order.
    const std::string name = revelio::to_string(key);
    if (name.size() != kFramePrefix.size() + 16) {
      contiguous = false;
      ++expect;
      out.frames.push_back(to_bytes(val));
      return;
    }
    char* end = nullptr;
    const std::uint64_t seq =
        std::strtoull(name.c_str() + kFramePrefix.size(), &end, 16);
    if (end == nullptr || *end != '\0' || seq != expect) contiguous = false;
    ++expect;
    out.frames.push_back(to_bytes(val));
  });
  if (!contiguous) {
    return Error::make("audit.tamper", "audit frame sequence has gaps");
  }

  if (const auto head = kv.get(to_bytes(kHeadKey)); head.has_value()) {
    if (head->size() != 32) {
      return Error::make("audit.tamper", "audit/head has wrong size");
    }
    out.head = crypto::Digest32::from(*head);
    out.have_head = true;
  } else {
    out.head = genesis();
  }
  return out;
}

Bytes concat_frames(const std::vector<Bytes>& frames, std::size_t count) {
  Bytes out;
  for (std::size_t i = 0; i < count; ++i) append(out, ByteView(frames[i]));
  return out;
}

struct LoadedStream {
  Bytes stream;
  std::uint32_t interval = 0;
  bool reconciled = false;
};

Result<LoadedStream> load_reconciled(store::KvStore& kv) {
  auto chain = read_chain(kv);
  if (!chain.ok()) return chain.error();

  LoadedStream out;
  out.interval = chain->interval;
  out.stream = AuditLog::assemble_stream(
      chain->interval, concat_frames(chain->frames, chain->frames.size()),
      chain->head);
  const auto full = AuditLog::verify(out.stream);
  if (full.ok()) return out;

  // A crash between a frame put and its head put leaves exactly one frame
  // the stored head does not cover. Dropping it must yield a stream the
  // head verifies; anything else is damage we refuse to paper over.
  if (!chain->frames.empty()) {
    Bytes retry = AuditLog::assemble_stream(
        chain->interval,
        concat_frames(chain->frames, chain->frames.size() - 1), chain->head);
    if (AuditLog::verify(retry).ok()) {
      out.stream = std::move(retry);
      out.reconciled = true;
      return out;
    }
  }
  return full.error();
}

}  // namespace

Result<Bytes> load_audit_stream(store::KvStore& kv) {
  auto loaded = load_reconciled(kv);
  if (!loaded.ok()) return loaded.error();
  return std::move(loaded->stream);
}

Result<DurableAudit> open_durable_audit(store::KvStore& kv,
                                        std::size_t checkpoint_interval) {
  if (checkpoint_interval == 0) checkpoint_interval = 1;

  DurableAudit out;
  out.log = std::make_unique<AuditLog>(checkpoint_interval);

  const bool fresh = !kv.get(to_bytes(kMetaKey)).has_value();
  crypto::Digest32 running_head = genesis();
  std::uint64_t next_seq = 0;

  if (fresh) {
    Bytes meta;
    append_u32be(meta, static_cast<std::uint32_t>(checkpoint_interval));
    if (auto st = kv.put(to_bytes(kMetaKey), meta); !st.ok()) return st.error();
  } else {
    auto loaded = load_reconciled(kv);
    if (!loaded.ok()) return loaded.error();
    if (loaded->interval != checkpoint_interval) {
      return Error::make("audit.bad_header",
                         "persisted checkpoint interval " +
                             std::to_string(loaded->interval) +
                             " != requested " +
                             std::to_string(checkpoint_interval));
    }
    if (auto st = out.log->restore(loaded->stream); !st.ok()) {
      return st.error();
    }
    out.restored_records = out.log->records();
    out.restored_checkpoints = out.log->checkpoints();
    out.reconciled_torn_frame = loaded->reconciled;
    running_head = out.log->head();
    next_seq = out.restored_records + out.restored_checkpoints;
  }

  struct SinkState {
    store::KvStore* kv;
    std::uint64_t seq;
    crypto::Digest32 head;
    bool broken = false;
  };
  auto state = std::make_shared<SinkState>(
      SinkState{&kv, next_seq, running_head});
  out.log->set_sink([state](std::uint8_t type, ByteView body) -> Status {
    if (state->broken) {
      return Error::make("store.io_crashed",
                         "audit persistence latched off after earlier failure");
    }
    Bytes value;
    value.reserve(1 + body.size());
    append_u8(value, type);
    append(value, body);
    if (auto st = state->kv->put(to_bytes(frame_key(state->seq)), value);
        !st.ok()) {
      state->broken = true;
      return st;
    }
    const crypto::Digest32 next =
        AuditLog::chain_step(state->head, type, body);
    if (auto st = state->kv->put(to_bytes(kHeadKey), next.view()); !st.ok()) {
      state->broken = true;
      return st;
    }
    state->head = next;
    ++state->seq;
    return Status::success();
  });
  return out;
}

}  // namespace revelio::obs
